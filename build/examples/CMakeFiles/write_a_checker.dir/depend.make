# Empty dependencies file for write_a_checker.
# This may be replaced when dependencies are built.
