file(REMOVE_RECURSE
  "CMakeFiles/write_a_checker.dir/write_a_checker.cpp.o"
  "CMakeFiles/write_a_checker.dir/write_a_checker.cpp.o.d"
  "write_a_checker"
  "write_a_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_a_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
