file(REMOVE_RECURSE
  "CMakeFiles/sim_vs_static.dir/sim_vs_static.cpp.o"
  "CMakeFiles/sim_vs_static.dir/sim_vs_static.cpp.o.d"
  "sim_vs_static"
  "sim_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
