# Empty compiler generated dependencies file for sim_vs_static.
# This may be replaced when dependencies are built.
