# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_write_a_checker "/root/repo/build/examples/write_a_checker")
set_tests_properties(example_write_a_checker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_audit "/root/repo/build/examples/protocol_audit" "sci")
set_tests_properties(example_protocol_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sim_vs_static "/root/repo/build/examples/sim_vs_static")
set_tests_properties(example_sim_vs_static PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
