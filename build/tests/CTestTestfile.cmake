# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sema[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_metal[1]_include.cmake")
include("/root/repo/build/tests/test_global[1]_include.cmake")
include("/root/repo/build/tests/test_checkers[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_flash[1]_include.cmake")
include("/root/repo/build/tests/test_path_walker[1]_include.cmake")
include("/root/repo/build/tests/test_ledger[1]_include.cmake")
include("/root/repo/build/tests/test_sim_units[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
