file(REMOVE_RECURSE
  "CMakeFiles/test_checkers.dir/checkers/buffer_mgmt_test.cc.o"
  "CMakeFiles/test_checkers.dir/checkers/buffer_mgmt_test.cc.o.d"
  "CMakeFiles/test_checkers.dir/checkers/buffer_race_test.cc.o"
  "CMakeFiles/test_checkers.dir/checkers/buffer_race_test.cc.o.d"
  "CMakeFiles/test_checkers.dir/checkers/lanes_test.cc.o"
  "CMakeFiles/test_checkers.dir/checkers/lanes_test.cc.o.d"
  "CMakeFiles/test_checkers.dir/checkers/msg_length_test.cc.o"
  "CMakeFiles/test_checkers.dir/checkers/msg_length_test.cc.o.d"
  "CMakeFiles/test_checkers.dir/checkers/other_checkers_test.cc.o"
  "CMakeFiles/test_checkers.dir/checkers/other_checkers_test.cc.o.d"
  "test_checkers"
  "test_checkers.pdb"
  "test_checkers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
