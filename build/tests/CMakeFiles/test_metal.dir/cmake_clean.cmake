file(REMOVE_RECURSE
  "CMakeFiles/test_metal.dir/metal/engine_test.cc.o"
  "CMakeFiles/test_metal.dir/metal/engine_test.cc.o.d"
  "CMakeFiles/test_metal.dir/metal/metal_parser_test.cc.o"
  "CMakeFiles/test_metal.dir/metal/metal_parser_test.cc.o.d"
  "test_metal"
  "test_metal.pdb"
  "test_metal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
