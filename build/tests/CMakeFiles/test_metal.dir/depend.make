# Empty dependencies file for test_metal.
# This may be replaced when dependencies are built.
