file(REMOVE_RECURSE
  "CMakeFiles/test_cfg.dir/cfg/cfg_test.cc.o"
  "CMakeFiles/test_cfg.dir/cfg/cfg_test.cc.o.d"
  "CMakeFiles/test_cfg.dir/cfg/path_stats_test.cc.o"
  "CMakeFiles/test_cfg.dir/cfg/path_stats_test.cc.o.d"
  "test_cfg"
  "test_cfg.pdb"
  "test_cfg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
