file(REMOVE_RECURSE
  "CMakeFiles/test_global.dir/global/flowgraph_test.cc.o"
  "CMakeFiles/test_global.dir/global/flowgraph_test.cc.o.d"
  "test_global"
  "test_global.pdb"
  "test_global[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
