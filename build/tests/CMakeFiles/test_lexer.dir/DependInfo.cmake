
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/lexer_test.cc" "tests/CMakeFiles/test_lexer.dir/lang/lexer_test.cc.o" "gcc" "tests/CMakeFiles/test_lexer.dir/lang/lexer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checkers/CMakeFiles/mc_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/global/CMakeFiles/mc_global.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/mc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/metal/CMakeFiles/mc_metal.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/mc_match.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
