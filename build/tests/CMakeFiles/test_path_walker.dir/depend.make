# Empty dependencies file for test_path_walker.
# This may be replaced when dependencies are built.
