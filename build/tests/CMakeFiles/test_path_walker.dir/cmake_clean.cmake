file(REMOVE_RECURSE
  "CMakeFiles/test_path_walker.dir/metal/path_walker_test.cc.o"
  "CMakeFiles/test_path_walker.dir/metal/path_walker_test.cc.o.d"
  "test_path_walker"
  "test_path_walker.pdb"
  "test_path_walker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
