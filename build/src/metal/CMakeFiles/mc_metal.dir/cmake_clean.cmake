file(REMOVE_RECURSE
  "CMakeFiles/mc_metal.dir/engine.cc.o"
  "CMakeFiles/mc_metal.dir/engine.cc.o.d"
  "CMakeFiles/mc_metal.dir/metal_parser.cc.o"
  "CMakeFiles/mc_metal.dir/metal_parser.cc.o.d"
  "CMakeFiles/mc_metal.dir/state_machine.cc.o"
  "CMakeFiles/mc_metal.dir/state_machine.cc.o.d"
  "libmc_metal.a"
  "libmc_metal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_metal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
