
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metal/engine.cc" "src/metal/CMakeFiles/mc_metal.dir/engine.cc.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/engine.cc.o.d"
  "/root/repo/src/metal/metal_parser.cc" "src/metal/CMakeFiles/mc_metal.dir/metal_parser.cc.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/metal_parser.cc.o.d"
  "/root/repo/src/metal/state_machine.cc" "src/metal/CMakeFiles/mc_metal.dir/state_machine.cc.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/state_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/mc_match.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
