file(REMOVE_RECURSE
  "libmc_metal.a"
)
