# Empty dependencies file for mc_flash.
# This may be replaced when dependencies are built.
