file(REMOVE_RECURSE
  "libmc_flash.a"
)
