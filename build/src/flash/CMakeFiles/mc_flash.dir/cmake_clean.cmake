file(REMOVE_RECURSE
  "CMakeFiles/mc_flash.dir/macros.cc.o"
  "CMakeFiles/mc_flash.dir/macros.cc.o.d"
  "CMakeFiles/mc_flash.dir/protocol_spec.cc.o"
  "CMakeFiles/mc_flash.dir/protocol_spec.cc.o.d"
  "libmc_flash.a"
  "libmc_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
