file(REMOVE_RECURSE
  "libmc_support.a"
)
