file(REMOVE_RECURSE
  "CMakeFiles/mc_support.dir/diagnostics.cc.o"
  "CMakeFiles/mc_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/mc_support.dir/source_manager.cc.o"
  "CMakeFiles/mc_support.dir/source_manager.cc.o.d"
  "CMakeFiles/mc_support.dir/text.cc.o"
  "CMakeFiles/mc_support.dir/text.cc.o.d"
  "libmc_support.a"
  "libmc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
