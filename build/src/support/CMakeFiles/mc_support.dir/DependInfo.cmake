
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/diagnostics.cc" "src/support/CMakeFiles/mc_support.dir/diagnostics.cc.o" "gcc" "src/support/CMakeFiles/mc_support.dir/diagnostics.cc.o.d"
  "/root/repo/src/support/source_manager.cc" "src/support/CMakeFiles/mc_support.dir/source_manager.cc.o" "gcc" "src/support/CMakeFiles/mc_support.dir/source_manager.cc.o.d"
  "/root/repo/src/support/text.cc" "src/support/CMakeFiles/mc_support.dir/text.cc.o" "gcc" "src/support/CMakeFiles/mc_support.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
