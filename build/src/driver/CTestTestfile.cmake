# CMake generated Testfile for 
# Source directory: /root/repo/src/driver
# Build directory: /root/repo/build/src/driver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mccheck_list "/root/repo/build/src/driver/mccheck" "--list")
set_tests_properties(mccheck_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/driver/CMakeLists.txt;4;add_test;/root/repo/src/driver/CMakeLists.txt;0;")
add_test(mccheck_protocol_clean "/root/repo/build/src/driver/mccheck" "--protocol" "coma")
set_tests_properties(mccheck_protocol_clean PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/src/driver/CMakeLists.txt;5;add_test;/root/repo/src/driver/CMakeLists.txt;0;")
add_test(mccheck_emit_corpus "/root/repo/build/src/driver/mccheck" "--emit-corpus" "bitvector" "/root/repo/build/src/driver/corpus_out")
set_tests_properties(mccheck_emit_corpus PROPERTIES  FIXTURES_SETUP "corpus_files" _BACKTRACE_TRIPLES "/root/repo/src/driver/CMakeLists.txt;11;add_test;/root/repo/src/driver/CMakeLists.txt;0;")
add_test(mccheck_check_emitted_file "/root/repo/build/src/driver/mccheck" "/root/repo/build/src/driver/corpus_out/bitvector/retry_spin_bitvector.c")
set_tests_properties(mccheck_check_emitted_file PROPERTIES  FIXTURES_REQUIRED "corpus_files" _BACKTRACE_TRIPLES "/root/repo/src/driver/CMakeLists.txt;16;add_test;/root/repo/src/driver/CMakeLists.txt;0;")
add_test(mccheck_metal_on_emitted_file "/root/repo/build/src/driver/mccheck" "--metal" "/root/repo/src/checkers/metal/msglen_check.metal" "/root/repo/build/src/driver/corpus_out/bitvector/retry_spin_bitvector.c")
set_tests_properties(mccheck_metal_on_emitted_file PROPERTIES  FIXTURES_REQUIRED "corpus_files" _BACKTRACE_TRIPLES "/root/repo/src/driver/CMakeLists.txt;21;add_test;/root/repo/src/driver/CMakeLists.txt;0;")
