/* bitvector protocol: normal routine */
void sub_PIRemoteUpgrade2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 1;
    int t2 = 10;
    t2 = (t2 >> 1) & 0x104;
    t2 = t2 ^ (t1 << 4);
    t2 = t0 + 4;
    t2 = t2 + 2;
    t2 = t2 ^ (t1 << 4);
    t1 = t1 - t0;
    t2 = t1 + 1;
    t2 = t0 + 2;
    t1 = t1 + 4;
    t1 = t2 + 4;
    t1 = (t0 >> 1) & 0x215;
    t2 = (t2 >> 1) & 0x217;
    t2 = (t2 >> 1) & 0x40;
    if (t0 > 8) {
        t2 = (t0 >> 1) & 0x184;
        t2 = (t0 >> 1) & 0x102;
        t1 = t0 + 7;
    }
    else {
        t2 = t1 - t2;
        t1 = (t1 >> 1) & 0x188;
        t2 = t0 - t1;
    }
    t2 = t1 + 7;
    t2 = (t1 >> 1) & 0x150;
    t1 = t2 ^ (t1 << 3);
    t1 = (t0 >> 1) & 0x100;
    t1 = (t2 >> 1) & 0x39;
    t1 = t1 - t2;
    t1 = t2 + 8;
    t1 = t1 ^ (t2 << 1);
    t1 = t1 ^ (t1 << 1);
    t2 = t0 ^ (t1 << 2);
    t2 = (t2 >> 1) & 0x41;
    t2 = t1 + 4;
    if (t0 > 5) {
        t2 = t2 - t2;
        t1 = t2 ^ (t2 << 2);
        t2 = (t2 >> 1) & 0x83;
    }
    else {
        t2 = (t2 >> 1) & 0x90;
        t1 = t1 + 3;
        t1 = t2 - t0;
    }
    t1 = t0 ^ (t0 << 2);
    t2 = (t1 >> 1) & 0x185;
    t1 = t1 + 7;
    t2 = t2 ^ (t1 << 3);
    t1 = t0 - t2;
    t2 = (t1 >> 1) & 0x1;
    t1 = t2 ^ (t1 << 2);
    t2 = t1 + 3;
    t2 = t1 - t2;
    t1 = t1 + 7;
    t1 = t2 ^ (t0 << 1);
    t1 = (t0 >> 1) & 0x217;
    t1 = t0 - t1;
    t2 = t1 - t1;
    t2 = t2 - t0;
    t2 = t2 - t2;
    t1 = t1 ^ (t1 << 2);
    t1 = t1 - t1;
    t1 = t2 + 6;
}
