/* bitvector protocol: hardware handler */
void IOLocalReplace(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 14;
    int t2 = 30;
    t2 = t1 - t1;
    t1 = t0 - t1;
    t1 = t1 - t1;
    t2 = t1 - t0;
    if (t1 > 2) {
        t2 = t2 - t0;
        t1 = t1 ^ (t0 << 2);
        t1 = (t0 >> 1) & 0x64;
    }
    else {
        t1 = t1 + 4;
        t1 = t2 - t0;
        t1 = t0 + 8;
    }
    t1 = t1 + 4;
    t2 = t2 + 6;
    t2 = (t0 >> 1) & 0x155;
    t1 = t0 ^ (t2 << 4);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 - t0;
    t1 = (t2 >> 1) & 0x24;
    t2 = t1 ^ (t1 << 4);
    t2 = t2 - t1;
    t2 = (t1 >> 1) & 0x28;
    t2 = t0 - t1;
    t1 = t2 - t0;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t1 >> 1) & 0x234;
    t2 = (t2 >> 1) & 0x103;
    t2 = t0 + 5;
    t2 = t0 ^ (t1 << 3);
    t1 = t1 + 1;
    t2 = (t0 >> 1) & 0x155;
    t1 = t0 - t0;
    t2 = t2 - t2;
    t1 = t2 - t0;
    t2 = t2 + 1;
    t1 = (t2 >> 1) & 0x252;
    t1 = t2 + 9;
    t2 = t2 + 9;
    t2 = t1 ^ (t2 << 2);
    t1 = t0 - t0;
    t1 = t2 ^ (t2 << 2);
    t2 = t2 + 6;
    t1 = t1 - t0;
    FREE_DB();
}
