/* bitvector protocol: hardware handler */
void PIRemoteNak(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 4;
    int t2 = 11;
    if (t2 > 12) {
        t2 = t1 ^ (t2 << 2);
        t2 = (t1 >> 1) & 0x253;
        t1 = (t2 >> 1) & 0x230;
    }
    else {
        t2 = (t2 >> 1) & 0x1;
        t1 = (t0 >> 1) & 0x219;
        t2 = (t1 >> 1) & 0x34;
    }
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t2 = t0 ^ (t2 << 1);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 - t1;
    t1 = (t2 >> 1) & 0x8;
    t1 = (t1 >> 1) & 0x114;
    t2 = t1 - t2;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 + 6;
    t2 = t0 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x245;
    t2 = t1 ^ (t1 << 3);
    t2 = t2 + 3;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t1 = t0 - t0;
    t2 = (t1 >> 1) & 0x220;
    t1 = t2 + 6;
    t2 = t2 ^ (t1 << 4);
    t1 = t1 + 6;
    t1 = t1 + 9;
    t1 = t2 + 9;
    t2 = (t0 >> 1) & 0x139;
    t2 = t2 ^ (t0 << 4);
    t1 = t2 - t1;
    t1 = t1 + 3;
    t1 = (t2 >> 1) & 0x12;
    t2 = t1 ^ (t0 << 1);
    t2 = t2 ^ (t1 << 3);
    t2 = (t2 >> 1) & 0x103;
    t1 = t1 + 6;
    t1 = (t1 >> 1) & 0x176;
    t1 = (t2 >> 1) & 0x178;
    free_if_urgent_bitvector();
    no_free_needed();
}
