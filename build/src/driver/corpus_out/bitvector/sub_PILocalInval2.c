/* bitvector protocol: normal routine */
void sub_PILocalInval2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 11;
    int t2 = 4;
    int db = 0;
    t2 = t2 + 9;
    t1 = t2 ^ (t0 << 2);
    t2 = t0 ^ (t1 << 3);
    if (t1 > 4) {
        t2 = t1 ^ (t1 << 4);
        t2 = t1 ^ (t2 << 4);
        t2 = t1 + 7;
    }
    else {
        t1 = t2 + 3;
        t2 = t0 + 6;
        t1 = (t1 >> 1) & 0x252;
    }
    t2 = t2 ^ (t0 << 2);
    t1 = t0 - t1;
    if (t1 > 9) {
        t2 = t2 + 5;
        t1 = t1 - t0;
        t2 = t2 - t2;
    }
    else {
        t2 = t0 + 6;
        t1 = (t2 >> 1) & 0x228;
        t1 = t2 ^ (t1 << 1);
    }
    t1 = t2 - t2;
    t1 = t1 + 8;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t0 >> 1) & 0x160;
    t1 = t1 - t2;
    t2 = (t0 >> 1) & 0x130;
    t1 = t2 ^ (t0 << 1);
    t1 = (t0 >> 1) & 0x217;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = (t0 >> 1) & 0x70;
    t1 = (t0 >> 1) & 0x75;
    t2 = (t1 >> 1) & 0x174;
    t1 = t0 ^ (t1 << 2);
    t2 = (t0 >> 1) & 0x51;
    t1 = t1 ^ (t2 << 3);
    t2 = t1 + 9;
    t2 = (t1 >> 1) & 0x229;
    t1 = t0 + 3;
    t2 = t1 + 5;
    t1 = t0 - t2;
    t2 = t1 ^ (t2 << 3);
    t2 = t0 - t2;
    t2 = t1 ^ (t1 << 3);
    t2 = t0 + 9;
    t1 = t2 - t2;
}
