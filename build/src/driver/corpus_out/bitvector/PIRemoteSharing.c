/* bitvector protocol: hardware handler */
void PIRemoteSharing(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 2;
    int t2 = 4;
    t1 = (t2 >> 1) & 0x52;
    t1 = t2 ^ (t0 << 1);
    t1 = t0 + 4;
    t1 = t2 ^ (t0 << 4);
    t1 = (t0 >> 1) & 0x59;
    if (t1 > 10) {
        t2 = t2 - t2;
        t2 = t0 - t0;
        t1 = t0 ^ (t1 << 3);
    }
    else {
        t2 = t0 ^ (t0 << 1);
        t2 = (t2 >> 1) & 0x153;
        t2 = (t0 >> 1) & 0x255;
    }
    t1 = t2 ^ (t1 << 4);
    t2 = t1 - t1;
    t1 = t2 + 7;
    t1 = t1 - t0;
    t2 = t0 ^ (t1 << 2);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 - t1;
    t2 = t2 ^ (t1 << 3);
    t1 = t1 + 4;
    t1 = (t1 >> 1) & 0x73;
    t2 = t1 + 9;
    t2 = t2 ^ (t0 << 4);
    t1 = (t1 >> 1) & 0x149;
    t2 = (t0 >> 1) & 0x133;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t2 + 2;
    t1 = t1 - t2;
    t1 = t0 - t0;
    t1 = t0 ^ (t1 << 4);
    t2 = t0 - t0;
    t1 = (t1 >> 1) & 0x194;
    t2 = t1 + 4;
    t1 = (t2 >> 1) & 0x138;
    t2 = (t1 >> 1) & 0x125;
    t1 = t1 + 2;
    t2 = (t0 >> 1) & 0x207;
    t1 = t1 + 7;
    t1 = t1 + 5;
    t2 = t1 + 8;
    t2 = (t2 >> 1) & 0x122;
    t1 = t1 + 3;
    t2 = t2 + 2;
    t2 = t1 + 9;
    FREE_DB();
}
