/* bitvector protocol: hardware handler */
void PILocalReplace(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 23;
    int t2 = 19;
    t1 = t2 ^ (t1 << 2);
    t2 = t0 ^ (t1 << 1);
    t1 = t0 + 6;
    t1 = t1 + 1;
    if (t0 > 5) {
        t1 = t1 ^ (t0 << 4);
        t2 = (t2 >> 1) & 0x19;
        t1 = t1 ^ (t2 << 2);
    }
    else {
        t1 = t2 ^ (t0 << 3);
        t1 = t0 + 6;
        t1 = t1 + 7;
    }
    t1 = (t1 >> 1) & 0x25;
    t2 = t0 + 7;
    t1 = t1 + 3;
    if (t2 > 13) {
        t2 = t1 ^ (t1 << 1);
        t2 = t2 ^ (t0 << 3);
        t1 = t1 + 5;
    }
    else {
        t1 = t2 + 5;
        t1 = t2 + 4;
        t2 = (t0 >> 1) & 0x71;
    }
    t1 = t1 + 7;
    t1 = t0 - t0;
    t1 = t0 ^ (t0 << 3);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t2 ^ (t0 << 2);
    t2 = t1 - t0;
    t1 = t1 - t2;
    t2 = (t0 >> 1) & 0x117;
    t2 = t2 + 6;
    t1 = t1 - t2;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t1 >> 1) & 0x185;
    t2 = (t2 >> 1) & 0x41;
    t2 = t2 + 8;
    t2 = (t1 >> 1) & 0x1;
    t2 = (t0 >> 1) & 0x233;
    t2 = (t0 >> 1) & 0x224;
    t1 = t2 + 8;
    t2 = t0 ^ (t1 << 2);
    t1 = t2 ^ (t1 << 1);
    t2 = t0 - t1;
    t2 = t1 - t0;
    t1 = t0 + 5;
    t2 = t0 + 8;
    t1 = t1 ^ (t1 << 3);
    t1 = (t1 >> 1) & 0x208;
    t1 = t0 ^ (t2 << 3);
    FREE_DB();
}
