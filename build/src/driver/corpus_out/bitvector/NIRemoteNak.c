/* bitvector protocol: hardware handler */
void NIRemoteNak(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 10;
    int t2 = 23;
    if (t2 > 2) {
        t2 = t2 - t1;
        t2 = t2 ^ (t2 << 4);
        t1 = t1 + 6;
    }
    else {
        t2 = t2 + 5;
        t2 = (t1 >> 1) & 0x164;
        t2 = t2 - t0;
    }
    if (t2 > 2) {
        t1 = t2 + 7;
        t1 = t1 ^ (t2 << 4);
        t1 = (t1 >> 1) & 0x121;
    }
    else {
        t1 = (t2 >> 1) & 0x88;
        t2 = t0 + 7;
        t2 = t1 - t0;
    }
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t2 = t1 + 9;
    t2 = t0 - t0;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(MSG_INVAL, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    lanes_helper_bitvector();
    t1 = t2 + 1;
    t1 = t1 + 5;
    t1 = (t2 >> 1) & 0x249;
    t2 = (t1 >> 1) & 0x108;
    t2 = t2 + 2;
    t1 = t1 ^ (t0 << 3);
    t1 = t1 + 3;
    t2 = t2 ^ (t1 << 4);
    t1 = t2 + 2;
    t2 = t1 - t0;
    t1 = t0 ^ (t1 << 1);
    t1 = t2 + 3;
    t2 = t2 - t0;
    t2 = (t0 >> 1) & 0x70;
    t2 = (t2 >> 1) & 0x252;
    t1 = t1 - t0;
    FREE_DB();
}
