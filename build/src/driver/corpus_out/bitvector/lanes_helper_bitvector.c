/* bitvector protocol: helper routine */
void lanes_helper_bitvector(void) {
    PROC_HOOK();
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(MSG_INVAL, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
}
