/* bitvector protocol: hardware handler */
void IORemoteAck(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 13;
    if (t1 > 11) {
        t2 = (t2 >> 1) & 0x122;
        t1 = (t1 >> 1) & 0x137;
        t2 = t2 - t0;
    }
    else {
        t1 = t1 - t2;
        t1 = (t2 >> 1) & 0x4;
        t1 = t1 + 1;
    }
    if (t2 > 9) {
        t2 = t2 + 6;
        t1 = (t1 >> 1) & 0x168;
        t2 = t0 ^ (t2 << 2);
    }
    else {
        t1 = t2 + 7;
        t1 = t2 - t1;
        t2 = t1 - t1;
    }
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    if ((t0 & 15) == 9) {
        PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_NOWAIT, F_DEC, F_NULL);
    }
    t1 = t2 - t0;
    t2 = t1 ^ (t0 << 4);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t2 - t2;
    t1 = t1 - t2;
    t1 = t2 + 2;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t1 = (t0 >> 1) & 0x99;
    t1 = t0 ^ (t2 << 4);
    t2 = t0 + 4;
    t1 = t0 - t2;
    t2 = t2 - t2;
    t1 = (t2 >> 1) & 0x196;
    t2 = t2 - t0;
    t2 = t0 ^ (t1 << 3);
    t1 = t1 - t2;
    t1 = t2 - t1;
    t2 = (t1 >> 1) & 0x187;
    t2 = t1 - t1;
    t2 = (t0 >> 1) & 0x67;
    t1 = t2 ^ (t2 << 4);
    t2 = t2 ^ (t2 << 4);
    t1 = (t0 >> 1) & 0x220;
    t2 = t0 - t1;
    FREE_DB();
}
