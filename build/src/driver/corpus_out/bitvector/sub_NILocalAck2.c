/* bitvector protocol: normal routine */
void sub_NILocalAck2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 18;
    int db = 0;
    t1 = t2 - t1;
    t1 = t2 - t0;
    t2 = (t2 >> 1) & 0x62;
    t2 = t0 - t1;
    t2 = t0 + 5;
    if (t1 > 3) {
        t1 = (t0 >> 1) & 0x91;
        t2 = t2 + 6;
        t2 = (t2 >> 1) & 0x233;
    }
    else {
        t1 = t1 - t1;
        t2 = (t2 >> 1) & 0x214;
        t1 = (t2 >> 1) & 0x158;
    }
    t1 = t1 ^ (t1 << 2);
    t2 = t1 ^ (t1 << 4);
    t2 = (t0 >> 1) & 0x117;
    t1 = t1 - t1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t2 - t2;
    t1 = t2 - t0;
    t1 = t0 ^ (t1 << 3);
    t2 = (t1 >> 1) & 0x149;
    t1 = t2 + 2;
    t1 = t2 + 7;
    t1 = t2 + 8;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t1 = t0 ^ (t0 << 2);
    t1 = t0 ^ (t2 << 3);
    t2 = t1 ^ (t1 << 3);
    t2 = t1 ^ (t2 << 4);
    t1 = t0 - t2;
    t1 = t0 + 4;
    t2 = (t2 >> 1) & 0x168;
    t1 = t2 + 3;
    t1 = t2 - t2;
    t2 = t0 + 1;
    t1 = t1 + 8;
    t2 = t2 - t1;
    t2 = (t2 >> 1) & 0x174;
    t2 = t1 ^ (t1 << 3);
    t1 = (t2 >> 1) & 0x168;
    t2 = t1 ^ (t1 << 4);
    t2 = (t2 >> 1) & 0x117;
    t1 = t1 + 1;
}
