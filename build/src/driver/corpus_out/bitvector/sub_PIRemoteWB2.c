/* bitvector protocol: normal routine */
void sub_PIRemoteWB2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 16;
    int t2 = 17;
    t2 = t1 ^ (t0 << 3);
    t2 = (t1 >> 1) & 0x152;
    t1 = t1 - t2;
    t1 = t0 - t1;
    t1 = t0 + 2;
    t2 = (t0 >> 1) & 0x3;
    t1 = t1 ^ (t2 << 1);
    t1 = (t2 >> 1) & 0x117;
    t1 = t1 - t0;
    t2 = (t1 >> 1) & 0x39;
    t2 = t0 - t1;
    t2 = (t1 >> 1) & 0x17;
    t1 = t0 ^ (t2 << 4);
    t1 = t1 + 6;
    t2 = t0 ^ (t2 << 1);
    t1 = (t2 >> 1) & 0x88;
    t2 = (t1 >> 1) & 0x125;
    t2 = (t0 >> 1) & 0x237;
    if (t2 > 2) {
        t1 = t0 - t1;
        t1 = t0 - t1;
        t2 = t1 ^ (t0 << 3);
    }
    else {
        t2 = t0 - t2;
        t1 = t0 - t0;
        t2 = (t1 >> 1) & 0x210;
    }
    t1 = (t0 >> 1) & 0x114;
    t2 = t1 ^ (t1 << 3);
    t2 = (t1 >> 1) & 0x39;
    t1 = t2 + 4;
    t2 = t1 + 2;
    t2 = t0 ^ (t2 << 3);
    t1 = t2 + 1;
    t1 = t1 - t1;
    t2 = t2 - t2;
    t1 = t1 - t2;
    t2 = (t1 >> 1) & 0x117;
    t2 = t1 + 3;
    t1 = t1 - t2;
    t1 = (t2 >> 1) & 0x201;
    t2 = t2 - t0;
    t1 = t1 + 3;
    t1 = t0 ^ (t0 << 3);
    t2 = t1 + 8;
    t1 = (t2 >> 1) & 0x70;
    t2 = t2 + 2;
    t2 = t0 + 2;
    t1 = t0 - t1;
    t2 = t0 ^ (t2 << 2);
    t2 = t0 ^ (t2 << 3);
    t2 = t2 - t0;
}
