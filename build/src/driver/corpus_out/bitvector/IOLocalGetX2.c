/* bitvector protocol: hardware handler */
void IOLocalGetX2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 12;
    t2 = t0 + 4;
    t2 = (t0 >> 1) & 0x26;
    t2 = t0 - t2;
    t1 = t1 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x121;
    t2 = (t2 >> 1) & 0x2;
    t2 = (t1 >> 1) & 0x40;
    t2 = t2 - t2;
    t1 = (t2 >> 1) & 0x209;
    t2 = t1 - t0;
    t2 = t2 - t2;
    t1 = t0 + 8;
    if (t0 > 7) {
        t1 = t1 - t0;
        t1 = (t1 >> 1) & 0x233;
        t1 = t1 - t1;
    }
    else {
        t1 = t0 - t1;
        t1 = t2 ^ (t2 << 4);
        t2 = (t2 >> 1) & 0x230;
    }
    t1 = (t1 >> 1) & 0x53;
    t2 = t0 + 5;
    t1 = (t1 >> 1) & 0x40;
    t2 = t2 ^ (t2 << 1);
    t1 = t2 ^ (t2 << 1);
    t2 = t0 + 3;
    t1 = t2 ^ (t0 << 2);
    t2 = t2 ^ (t1 << 2);
    t1 = t0 + 4;
    t1 = (t1 >> 1) & 0x58;
    t1 = (t0 >> 1) & 0x124;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t0 ^ (t1 << 3);
    t1 = (t0 >> 1) & 0x87;
    t1 = (t2 >> 1) & 0x23;
    t2 = t0 + 6;
    t1 = t2 + 4;
    t2 = t1 ^ (t0 << 4);
    t2 = t2 - t1;
    t1 = t1 - t1;
    t2 = t0 + 1;
    t2 = t0 + 2;
    t1 = t0 + 4;
    t2 = t2 + 1;
    t2 = t0 - t2;
    t2 = (t1 >> 1) & 0x72;
    t1 = t2 ^ (t1 << 3);
    t2 = t2 - t0;
    t1 = (t1 >> 1) & 0x101;
    t1 = t1 - t1;
    t1 = t2 - t2;
    t1 = t1 ^ (t0 << 3);
    t1 = t2 + 4;
    t2 = t2 + 9;
    t1 = (t0 >> 1) & 0x54;
    t2 = t0 - t2;
    t2 = t0 + 4;
    t1 = t0 ^ (t1 << 2);
    FREE_DB();
}
