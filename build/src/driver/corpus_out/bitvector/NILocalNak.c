/* bitvector protocol: hardware handler */
void NILocalNak(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 14;
    int t2 = 28;
    if (t2 > 5) {
        t2 = (t2 >> 1) & 0x251;
        t1 = t1 - t1;
        t2 = t2 ^ (t2 << 3);
    }
    else {
        t2 = t2 ^ (t2 << 3);
        t2 = t2 + 6;
        t2 = (t0 >> 1) & 0x181;
    }
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t2 = t0 - t1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_NAK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t0 - t0;
    t1 = t2 ^ (t2 << 1);
    t2 = t1 - t2;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t0 - t0;
    t1 = t2 - t2;
    t2 = (t0 >> 1) & 0x230;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t1 = (t2 >> 1) & 0x56;
    t2 = (t2 >> 1) & 0x41;
    t1 = t1 + 9;
    t1 = (t2 >> 1) & 0x242;
    t2 = t1 - t1;
    t2 = (t0 >> 1) & 0x1;
    if ((t0 & 15) == 3) {
        FREE_DB();
    }
    t2 = (t2 >> 1) & 0x83;
    t2 = t0 ^ (t0 << 1);
    t1 = t1 - t1;
    t2 = t0 ^ (t1 << 4);
    t2 = t1 + 7;
    t2 = (t1 >> 1) & 0x50;
    t1 = t1 ^ (t2 << 1);
    t2 = t1 + 6;
    t2 = (t2 >> 1) & 0x73;
    t2 = t0 - t1;
    t2 = (t0 >> 1) & 0x47;
    t2 = (t1 >> 1) & 0x57;
    t2 = t0 ^ (t0 << 1);
    t1 = t2 ^ (t2 << 4);
    t1 = t2 + 9;
    t2 = t2 ^ (t0 << 3);
    t2 = t2 - t2;
    t1 = (t2 >> 1) & 0x127;
    t2 = t0 ^ (t2 << 3);
    t2 = t0 - t0;
    FREE_DB();
}
