/* bitvector protocol: normal routine */
void sub_PIRemoteInval2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 5;
    int t2 = 13;
    int db = 0;
    t2 = t0 ^ (t0 << 2);
    t1 = t1 - t0;
    t1 = t2 - t1;
    t1 = t1 + 9;
    t2 = (t1 >> 1) & 0x113;
    t2 = t0 + 2;
    t1 = t0 ^ (t0 << 2);
    if (t1 > 7) {
        t1 = t1 ^ (t2 << 2);
        t2 = (t2 >> 1) & 0x172;
        t1 = (t2 >> 1) & 0x238;
    }
    else {
        t1 = t2 ^ (t0 << 2);
        t1 = t0 ^ (t0 << 1);
        t2 = (t0 >> 1) & 0x107;
    }
    t1 = t0 + 4;
    t1 = t2 + 8;
    t2 = t0 ^ (t0 << 1);
    t1 = (t1 >> 1) & 0x160;
    t1 = (t0 >> 1) & 0x23;
    t2 = t0 ^ (t2 << 2);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 + 9;
    t2 = t2 ^ (t0 << 2);
    t2 = t2 - t2;
    t2 = t1 + 2;
    t1 = t0 ^ (t0 << 4);
    t2 = t2 - t2;
    t2 = (t0 >> 1) & 0x205;
    t2 = t2 ^ (t2 << 4);
    t1 = t2 ^ (t1 << 1);
    t2 = t0 - t0;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t1 = t1 - t1;
    t1 = t0 + 8;
    t2 = (t0 >> 1) & 0x129;
    t2 = t2 + 3;
    t2 = (t1 >> 1) & 0x103;
    t1 = t1 - t2;
    t1 = t2 - t2;
    t2 = t1 + 6;
    t2 = t2 + 9;
    t2 = t1 ^ (t1 << 2);
    t2 = t0 + 4;
    t2 = (t0 >> 1) & 0x86;
    t1 = t1 + 6;
    t1 = t1 - t0;
    t1 = (t1 >> 1) & 0x165;
    t1 = t2 ^ (t0 << 3);
    t2 = t1 + 5;
    t2 = t0 + 7;
    t2 = t0 + 3;
    t1 = t0 + 9;
}
