/* bitvector protocol: hardware handler */
void NILocalPut2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 13;
    int t2 = 8;
    t1 = (t2 >> 1) & 0x50;
    t1 = t0 - t2;
    t1 = t0 + 5;
    t2 = t1 ^ (t2 << 1);
    t2 = t0 - t0;
    t2 = (t2 >> 1) & 0x250;
    t2 = (t0 >> 1) & 0x128;
    if (t2 > 11) {
        t2 = t0 - t1;
        t1 = (t1 >> 1) & 0x146;
        t1 = t0 - t0;
    }
    else {
        t2 = t2 ^ (t2 << 4);
        t1 = t1 ^ (t0 << 2);
        t2 = t2 - t1;
    }
    t2 = t0 + 2;
    t2 = (t0 >> 1) & 0x157;
    t2 = (t2 >> 1) & 0x220;
    t1 = t0 ^ (t2 << 4);
    t2 = t2 - t1;
    t2 = (t1 >> 1) & 0x203;
    if (t0 > 2) {
        t1 = (t2 >> 1) & 0x123;
        t2 = t1 - t2;
        t1 = t2 - t0;
    }
    else {
        t1 = t1 ^ (t1 << 1);
        t1 = t0 - t2;
        t2 = t1 - t1;
    }
    t2 = t0 + 8;
    t2 = (t1 >> 1) & 0x166;
    t1 = t0 + 3;
    t1 = t0 - t1;
    t1 = (t0 >> 1) & 0x151;
    t1 = t0 + 9;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 + 8;
    t2 = t2 - t0;
    t1 = t1 + 4;
    t2 = t2 ^ (t2 << 2);
    t1 = t1 ^ (t1 << 2);
    t2 = (t1 >> 1) & 0x181;
    t1 = t2 - t1;
    t2 = (t2 >> 1) & 0x60;
    t1 = (t0 >> 1) & 0x222;
    t2 = (t2 >> 1) & 0x230;
    t1 = t0 + 8;
    t2 = (t2 >> 1) & 0x60;
    t2 = t2 + 8;
    t2 = (t2 >> 1) & 0x248;
    t1 = (t1 >> 1) & 0x154;
    t1 = t2 + 8;
    t1 = t0 + 2;
    t2 = t1 - t1;
    t1 = t2 ^ (t1 << 4);
    t2 = t2 ^ (t1 << 2);
    FREE_DB();
}
