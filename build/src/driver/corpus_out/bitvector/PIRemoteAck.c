/* bitvector protocol: hardware handler */
void PIRemoteAck(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 6;
    t2 = t2 ^ (t2 << 3);
    t1 = t1 - t2;
    t1 = t0 ^ (t1 << 1);
    t2 = t0 ^ (t2 << 1);
    if ((t0 & 7) == 5) {
        MISCBUS_READ_DB(t0, t1);
    }
    t2 = t2 - t1;
    t2 = (t0 >> 1) & 0x222;
    t1 = t0 - t2;
    t2 = (t2 >> 1) & 0x232;
    t1 = t2 + 9;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t2 - t1;
    t2 = t0 + 6;
    t1 = t0 + 3;
    t1 = t2 ^ (t0 << 2);
    t1 = t1 + 1;
    t2 = t2 ^ (t1 << 2);
    t2 = t1 + 6;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = (t0 >> 1) & 0x66;
    t2 = t2 ^ (t0 << 1);
    t2 = t1 + 3;
    t2 = t1 ^ (t0 << 1);
    t2 = t2 - t1;
    t2 = t0 + 4;
    t1 = (t0 >> 1) & 0x111;
    t2 = t1 - t0;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t1 = t1 ^ (t1 << 3);
    t2 = t1 + 3;
    t2 = t1 + 5;
    t2 = (t0 >> 1) & 0x246;
    t1 = t1 - t0;
    t1 = t2 - t2;
    t1 = t2 + 1;
    t1 = t0 - t2;
    t2 = t2 - t0;
    t1 = (t0 >> 1) & 0x70;
    t1 = t2 + 5;
    t2 = (t2 >> 1) & 0x19;
    t1 = (t0 >> 1) & 0x144;
    t1 = t0 - t0;
    t1 = t2 ^ (t0 << 2);
    t1 = t2 - t0;
    t2 = (t0 >> 1) & 0x72;
    t1 = (t1 >> 1) & 0x203;
    t1 = t0 - t1;
    t1 = (t0 >> 1) & 0x119;
    t1 = t2 ^ (t1 << 4);
    t1 = t1 ^ (t1 << 1);
    FREE_DB();
}
