/* bitvector protocol: normal routine */
void sub_PILocalUpgrade2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 13;
    int t2 = 7;
    t2 = (t1 >> 1) & 0x150;
    t1 = t1 ^ (t0 << 4);
    t1 = (t2 >> 1) & 0x85;
    t1 = t0 - t2;
    t1 = t1 ^ (t0 << 3);
    t1 = t1 ^ (t0 << 2);
    t1 = t1 - t0;
    t2 = t0 + 6;
    t2 = (t1 >> 1) & 0x104;
    t2 = t2 ^ (t2 << 4);
    t1 = t1 - t1;
    t1 = t0 ^ (t0 << 3);
    t1 = (t0 >> 1) & 0x195;
    t2 = t1 + 1;
    t1 = t1 - t2;
    t2 = (t1 >> 1) & 0x236;
    t1 = t2 - t2;
    t1 = t2 - t0;
    t1 = t0 + 1;
    t2 = t2 + 7;
    t2 = t0 + 1;
    t2 = t2 + 6;
    t2 = t2 ^ (t2 << 1);
    if (t1 > 2) {
        t1 = (t2 >> 1) & 0x39;
        t1 = t0 ^ (t0 << 3);
        t1 = t1 + 8;
    }
    else {
        t1 = t2 - t0;
        t2 = t2 - t2;
        t2 = t0 - t0;
    }
    t1 = t1 ^ (t0 << 2);
    t2 = t2 ^ (t1 << 1);
    t2 = (t2 >> 1) & 0x171;
    t1 = t1 - t1;
    t1 = t1 ^ (t2 << 4);
    t1 = (t2 >> 1) & 0x54;
    t1 = (t1 >> 1) & 0x72;
    t2 = (t1 >> 1) & 0x203;
    t1 = t0 ^ (t2 << 2);
    t2 = t1 - t0;
    t1 = t0 ^ (t2 << 2);
    t2 = t1 - t1;
    t2 = t1 + 3;
    t2 = t2 - t2;
    t1 = t2 - t0;
    t1 = t1 ^ (t2 << 2);
    t1 = t1 - t0;
    t2 = t2 + 9;
    t2 = t0 - t0;
    t2 = t0 + 8;
    t2 = (t0 >> 1) & 0x78;
    t2 = (t2 >> 1) & 0x109;
    t2 = t2 - t1;
    t1 = t0 ^ (t0 << 2);
    t2 = t0 + 1;
    t1 = t0 + 7;
    t1 = t1 ^ (t1 << 1);
    t1 = t1 - t0;
    t1 = (t2 >> 1) & 0x61;
}
