/* bitvector protocol: normal routine */
void sub_IOLocalUncWrite2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 1;
    int t2 = 25;
    t1 = (t1 >> 1) & 0x106;
    t1 = t0 + 3;
    t2 = t0 ^ (t1 << 1);
    t2 = t1 + 1;
    t2 = t0 ^ (t2 << 3);
    t1 = (t1 >> 1) & 0x190;
    t2 = t1 ^ (t1 << 1);
    t2 = t2 + 4;
    t1 = (t1 >> 1) & 0x108;
    t1 = t0 - t0;
    t1 = t1 - t1;
    t2 = t1 + 8;
    t2 = t2 - t1;
    t1 = (t2 >> 1) & 0x74;
    t2 = t0 + 8;
    t1 = (t2 >> 1) & 0x81;
    t1 = t2 - t2;
    t1 = t0 ^ (t2 << 4);
    t1 = t2 ^ (t1 << 3);
    if (t2 > 3) {
        t2 = t0 ^ (t2 << 2);
        t2 = t1 - t2;
        t2 = t2 ^ (t2 << 1);
    }
    else {
        t2 = t1 + 8;
        t1 = (t1 >> 1) & 0x140;
        t2 = (t0 >> 1) & 0x132;
    }
    t1 = t2 + 2;
    t1 = t2 - t1;
    t1 = t1 + 6;
    t1 = t0 + 2;
    t1 = t1 - t1;
    t2 = t0 - t2;
    t1 = t2 ^ (t2 << 1);
    t2 = t1 - t1;
    t1 = t1 ^ (t2 << 4);
    t1 = t0 + 5;
    t2 = t0 - t2;
    t2 = t1 - t1;
    t1 = t1 + 6;
    t2 = t2 - t0;
    t1 = t2 - t2;
    t2 = (t1 >> 1) & 0x44;
    t2 = t0 ^ (t1 << 2);
    t1 = t0 + 9;
    t2 = (t1 >> 1) & 0x146;
    t1 = t0 - t1;
    t1 = (t0 >> 1) & 0x206;
    t1 = (t1 >> 1) & 0x209;
    t1 = t1 ^ (t2 << 3);
    t2 = t2 - t0;
    t2 = (t0 >> 1) & 0x166;
}
