/* bitvector protocol: normal routine */
void sub_NIRemoteAck2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 22;
    int t2 = 20;
    t1 = t2 - t1;
    t2 = (t2 >> 1) & 0x68;
    t1 = (t0 >> 1) & 0x122;
    t2 = t0 + 3;
    t2 = t2 ^ (t2 << 3);
    t2 = t1 ^ (t0 << 1);
    t1 = t1 ^ (t2 << 1);
    t2 = (t1 >> 1) & 0x74;
    t2 = t0 + 2;
    t1 = t2 - t0;
    t2 = (t1 >> 1) & 0x144;
    if (t0 > 6) {
        t2 = (t0 >> 1) & 0x62;
        t1 = (t1 >> 1) & 0x168;
        t2 = t1 - t0;
    }
    else {
        t2 = t0 ^ (t1 << 4);
        t2 = t0 + 7;
        t1 = t0 + 3;
    }
    t1 = t1 ^ (t0 << 4);
    t1 = t1 + 1;
    t1 = t0 + 3;
    t2 = t0 ^ (t0 << 2);
    t1 = (t1 >> 1) & 0x7;
    t2 = t1 + 2;
    t1 = (t1 >> 1) & 0x151;
    t2 = t1 + 8;
    t1 = t0 - t0;
    t2 = t1 + 8;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 ^ (t2 << 3);
    t2 = t0 ^ (t0 << 4);
    t2 = (t2 >> 1) & 0x231;
    t1 = t0 - t2;
    t2 = t1 ^ (t1 << 3);
    t2 = t2 + 7;
    t1 = t2 - t2;
    t2 = t0 ^ (t2 << 1);
    t1 = t2 ^ (t2 << 2);
    t1 = t2 - t2;
    t1 = t0 + 5;
    t1 = t1 + 3;
    t2 = t1 ^ (t2 << 2);
    t2 = (t2 >> 1) & 0x137;
    t2 = (t0 >> 1) & 0x5;
    t2 = t0 + 2;
    t1 = t0 + 6;
    t2 = t0 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x42;
    t2 = t0 ^ (t1 << 3);
    t2 = t2 - t0;
    t1 = t2 - t1;
    t1 = (t1 >> 1) & 0x55;
    t2 = t2 - t2;
    t1 = t1 + 5;
}
