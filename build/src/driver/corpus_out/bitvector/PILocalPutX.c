/* bitvector protocol: hardware handler */
void PILocalPutX(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 0;
    int t2 = 10;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
