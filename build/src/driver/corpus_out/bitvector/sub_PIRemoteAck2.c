/* bitvector protocol: normal routine */
void sub_PIRemoteAck2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 14;
    int t2 = 23;
    t2 = t2 - t1;
    t2 = (t0 >> 1) & 0x14;
    t1 = t0 ^ (t1 << 2);
    t2 = t0 - t2;
    t2 = t2 - t2;
    t2 = t0 - t2;
    t1 = t2 ^ (t1 << 4);
    t1 = t2 ^ (t0 << 3);
    t1 = (t0 >> 1) & 0x234;
    t1 = t0 + 5;
    if (t1 > 7) {
        t2 = t2 ^ (t1 << 3);
        t1 = t2 - t0;
        t1 = t2 + 5;
    }
    else {
        t2 = t0 + 5;
        t2 = t0 + 2;
        t1 = t1 - t2;
    }
    t1 = t2 - t1;
    t1 = t1 ^ (t0 << 2);
    t1 = t1 - t0;
    t2 = t2 ^ (t0 << 4);
    t2 = (t2 >> 1) & 0x83;
    t2 = t0 ^ (t1 << 3);
    t2 = (t0 >> 1) & 0x88;
    t1 = t2 ^ (t0 << 1);
    t1 = t2 - t1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 - t2;
    t2 = t2 ^ (t1 << 2);
    t2 = t0 - t2;
    t1 = t2 - t1;
    t2 = t2 - t1;
    t2 = t2 - t1;
    t1 = t1 ^ (t2 << 3);
    t1 = (t1 >> 1) & 0x210;
    t2 = t0 - t2;
    t2 = t0 + 1;
    t2 = t0 ^ (t2 << 3);
    t2 = t2 ^ (t0 << 3);
    t2 = (t0 >> 1) & 0x193;
    t1 = (t2 >> 1) & 0x31;
    t2 = t0 - t0;
    t1 = (t2 >> 1) & 0x66;
    t2 = t2 - t2;
    t1 = (t1 >> 1) & 0x210;
    t1 = (t0 >> 1) & 0x253;
    t1 = (t2 >> 1) & 0x212;
    t2 = t1 + 6;
    t1 = t0 - t1;
    t2 = t2 - t0;
    t2 = (t1 >> 1) & 0x76;
}
