/* bitvector protocol: hardware handler */
void NIRemoteInval(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 7;
    int t2 = 1;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
