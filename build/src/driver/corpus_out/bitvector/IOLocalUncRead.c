/* bitvector protocol: hardware handler */
void IOLocalUncRead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 16;
    int t2 = 1;
    t1 = t1 ^ (t2 << 3);
    t2 = (t1 >> 1) & 0x244;
    t2 = t2 + 5;
    if (t1 > 6) {
        t2 = t1 + 7;
        t2 = t1 - t0;
        t2 = t2 ^ (t0 << 1);
    }
    else {
        t2 = t2 + 1;
        t1 = t1 ^ (t2 << 4);
        t1 = t0 + 4;
    }
    t1 = (t1 >> 1) & 0x146;
    t1 = (t1 >> 1) & 0x241;
    t1 = t0 + 3;
    if (t1 > 13) {
        t1 = t1 + 7;
        t2 = (t2 >> 1) & 0x69;
        t2 = (t0 >> 1) & 0x97;
    }
    else {
        t2 = t2 - t1;
        t2 = (t1 >> 1) & 0x237;
        t2 = t2 ^ (t0 << 4);
    }
    t2 = t1 ^ (t0 << 2);
    t1 = t0 + 6;
    t1 = t1 - t0;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t0 - t0;
    t1 = (t1 >> 1) & 0x120;
    t1 = t0 - t2;
    t1 = (t0 >> 1) & 0x31;
    t1 = t1 - t2;
    t2 = t2 - t0;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = (t2 >> 1) & 0x151;
    t2 = t0 - t2;
    t2 = t1 - t2;
    t2 = (t0 >> 1) & 0x167;
    t1 = t0 + 4;
    t1 = (t1 >> 1) & 0x79;
    t1 = t2 - t2;
    t2 = (t2 >> 1) & 0x237;
    t1 = t1 ^ (t0 << 2);
    t2 = (t2 >> 1) & 0x101;
    t1 = t2 + 5;
    t1 = t0 - t2;
    t2 = (t1 >> 1) & 0x66;
    t1 = (t0 >> 1) & 0x118;
    t2 = (t2 >> 1) & 0x164;
    t2 = t0 + 6;
    FREE_DB();
}
