/* bitvector protocol: software handler */
void SwPIRemotePutX2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 22;
    int t2 = 21;
    int db = 0;
    t2 = (t0 >> 1) & 0x64;
    t2 = (t2 >> 1) & 0x249;
    t2 = t1 ^ (t2 << 1);
    t2 = t2 + 4;
    t1 = t2 ^ (t2 << 3);
    t1 = t2 + 2;
    if (t1 > 12) {
        t2 = t0 + 5;
        t1 = t2 - t2;
        t2 = t0 + 9;
    }
    else {
        t1 = (t1 >> 1) & 0x144;
        t1 = t1 - t0;
        t2 = t0 ^ (t2 << 3);
    }
    t1 = t2 - t1;
    t2 = t2 + 3;
    t1 = t0 - t2;
    t2 = t1 - t0;
    t2 = t2 ^ (t2 << 1);
    t1 = t0 ^ (t2 << 1);
    if (t1 > 5) {
        t1 = t2 + 5;
        t2 = t0 - t0;
        t2 = t2 + 8;
    }
    else {
        t1 = (t1 >> 1) & 0x176;
        t1 = t2 - t0;
        t1 = t0 - t1;
    }
    t2 = t1 - t1;
    t1 = t1 ^ (t0 << 3);
    t1 = t0 ^ (t0 << 1);
    t2 = t0 - t0;
    t2 = t2 - t1;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t0 + 1;
    t2 = t2 ^ (t1 << 2);
    t1 = t1 + 3;
    t2 = t2 - t2;
    t1 = t2 ^ (t2 << 3);
    t2 = t1 + 7;
    t1 = t2 - t2;
    t1 = (t2 >> 1) & 0x26;
    t1 = (t2 >> 1) & 0x224;
    t2 = (t0 >> 1) & 0x8;
    t2 = t0 + 4;
    t1 = t1 + 9;
    t2 = t2 - t2;
    t2 = t1 - t0;
    t2 = (t0 >> 1) & 0x60;
    t1 = t2 ^ (t0 << 3);
}
