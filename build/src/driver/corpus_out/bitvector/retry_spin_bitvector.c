/* bitvector protocol: helper routine */
void retry_spin_bitvector(void) {
    PROC_HOOK();
    int t0 = 1;
    if (RETRY_NEEDED()) {
        retry_spin_bitvector();
    }
}
