/* bitvector protocol: hardware handler */
void NILocalReplace(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 23;
    t1 = t1 + 1;
    t2 = t1 ^ (t2 << 4);
    t1 = t0 ^ (t1 << 4);
    if (t0 > 12) {
        t1 = t2 + 6;
        t1 = t0 + 3;
        t1 = t2 - t2;
    }
    else {
        t2 = t0 - t2;
        t2 = (t0 >> 1) & 0x4;
        t1 = (t2 >> 1) & 0x86;
    }
    t1 = t0 ^ (t1 << 3);
    t1 = t2 + 9;
    t1 = (t0 >> 1) & 0x21;
    if (t2 > 8) {
        t1 = t2 - t1;
        t2 = t2 + 2;
        t1 = t2 + 6;
    }
    else {
        t2 = t2 + 7;
        t2 = t2 ^ (t1 << 2);
        t1 = t2 ^ (t1 << 1);
    }
    t2 = t2 + 5;
    t1 = t1 ^ (t1 << 3);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_IACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 - t0;
    t2 = t2 + 2;
    t2 = t2 ^ (t1 << 1);
    t1 = (t2 >> 1) & 0x102;
    t2 = t0 + 1;
    t2 = t0 + 1;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t2 + 8;
    t2 = t2 - t2;
    t1 = t2 ^ (t2 << 4);
    t1 = t1 - t1;
    t1 = (t2 >> 1) & 0x174;
    t2 = t2 - t1;
    t1 = (t2 >> 1) & 0x160;
    t1 = (t0 >> 1) & 0x60;
    t1 = t2 - t1;
    t1 = t1 - t1;
    t1 = t0 + 6;
    t1 = (t1 >> 1) & 0x130;
    t2 = t2 ^ (t1 << 1);
    t1 = t1 ^ (t2 << 3);
    t1 = t0 + 8;
    t1 = t2 - t1;
    FREE_DB();
}
