/* bitvector protocol: normal routine */
void sub_IORemoteUncWrite2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 17;
    int t2 = 18;
    t2 = t2 - t2;
    t2 = (t0 >> 1) & 0x25;
    t2 = t0 + 8;
    t2 = t2 ^ (t0 << 4);
    t2 = (t2 >> 1) & 0x164;
    t1 = t2 - t1;
    t2 = t0 - t2;
    t1 = t1 - t1;
    t2 = t1 - t2;
    t2 = t0 - t2;
    t2 = t0 + 4;
    t2 = t2 + 3;
    t1 = t2 ^ (t2 << 3);
    t2 = t1 - t1;
    t2 = t1 + 6;
    t1 = t0 ^ (t0 << 4);
    t2 = (t0 >> 1) & 0x13;
    t1 = t1 + 2;
    t2 = t0 ^ (t1 << 2);
    t1 = t0 ^ (t0 << 3);
    t1 = t1 ^ (t2 << 2);
    if (t1 > 3) {
        t1 = t1 - t0;
        t1 = t1 ^ (t2 << 2);
        t2 = t0 + 9;
    }
    else {
        t2 = (t2 >> 1) & 0x200;
        t2 = t2 - t2;
        t2 = t2 - t2;
    }
    t2 = t2 + 7;
    t1 = (t0 >> 1) & 0x144;
    t1 = (t0 >> 1) & 0x80;
    t1 = t2 - t0;
    t1 = t1 - t0;
    t1 = t2 + 2;
    t1 = t1 + 4;
    t1 = (t2 >> 1) & 0x158;
    t1 = t2 ^ (t2 << 3);
    t1 = t2 + 7;
    t1 = t0 ^ (t0 << 4);
    t1 = (t1 >> 1) & 0x92;
    t2 = t1 + 1;
    t2 = t2 ^ (t0 << 1);
    t2 = (t1 >> 1) & 0x135;
    t1 = t0 ^ (t0 << 1);
    t2 = (t1 >> 1) & 0x44;
    t2 = t1 - t1;
    t1 = t1 ^ (t0 << 1);
    t2 = t0 + 1;
    t2 = t1 ^ (t2 << 3);
    t2 = (t2 >> 1) & 0x185;
    t1 = t2 + 7;
    t1 = t0 + 5;
    t2 = t0 ^ (t1 << 4);
    t1 = t2 + 4;
    t2 = t0 ^ (t1 << 3);
}
