/* bitvector protocol: hardware handler */
void IOLocalGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 18;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
