/* bitvector protocol: hardware handler */
void NIRemoteGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 26;
    int t2 = 0;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
