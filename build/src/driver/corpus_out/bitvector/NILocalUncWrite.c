/* bitvector protocol: hardware handler */
void NILocalUncWrite(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 23;
    int t2 = 17;
    t1 = t2 ^ (t0 << 4);
    t2 = t0 + 4;
    t2 = (t1 >> 1) & 0x96;
    if (t0 > 5) {
        t2 = t2 + 8;
        t1 = t1 ^ (t1 << 1);
        t2 = t1 ^ (t0 << 2);
    }
    else {
        t2 = t0 + 7;
        t1 = (t0 >> 1) & 0x182;
        t1 = (t0 >> 1) & 0x148;
    }
    t1 = t2 + 9;
    t1 = t2 ^ (t2 << 4);
    t2 = t1 + 5;
    if (t0 > 10) {
        t1 = (t0 >> 1) & 0x99;
        t2 = t1 - t2;
        t1 = (t0 >> 1) & 0x239;
    }
    else {
        t2 = t1 - t1;
        t1 = t2 - t1;
        t1 = t0 ^ (t0 << 1);
    }
    t1 = t1 + 1;
    t2 = t2 ^ (t1 << 1);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t2 ^ (t2 << 1);
    t1 = t1 + 9;
    t1 = t1 + 3;
    t2 = (t1 >> 1) & 0x183;
    t2 = (t1 >> 1) & 0x9;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t1 + 6;
    t2 = (t0 >> 1) & 0x237;
    t1 = (t0 >> 1) & 0x101;
    t1 = t1 + 6;
    t1 = t1 - t2;
    t2 = t2 - t1;
    t2 = t2 - t1;
    t2 = t1 ^ (t0 << 4);
    t2 = t0 - t2;
    t1 = (t1 >> 1) & 0x128;
    t1 = t2 ^ (t0 << 3);
    t1 = t0 - t2;
    t1 = t1 - t2;
    t2 = t0 - t0;
    t2 = t2 + 2;
    t1 = t0 - t1;
    FREE_DB();
}
