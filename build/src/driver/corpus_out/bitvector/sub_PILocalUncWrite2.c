/* bitvector protocol: normal routine */
void sub_PILocalUncWrite2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 31;
    int t2 = 1;
    t1 = t1 + 1;
    t2 = t1 - t2;
    t2 = t0 ^ (t2 << 2);
    t2 = (t2 >> 1) & 0x244;
    t2 = t1 - t0;
    t1 = t2 ^ (t1 << 1);
    t1 = t1 + 7;
    t1 = (t1 >> 1) & 0x47;
    t2 = (t1 >> 1) & 0x182;
    t2 = t0 + 2;
    t2 = t0 + 8;
    t2 = t0 ^ (t2 << 4);
    if (t2 > 8) {
        t1 = t1 - t2;
        t1 = t0 ^ (t1 << 3);
        t1 = t2 ^ (t1 << 4);
    }
    else {
        t2 = t2 - t1;
        t1 = (t0 >> 1) & 0x230;
        t1 = t0 - t1;
    }
    t2 = (t2 >> 1) & 0x34;
    t1 = t1 - t1;
    t1 = t0 - t2;
    t1 = t2 - t2;
    t1 = (t1 >> 1) & 0x41;
    t2 = t1 - t2;
    t2 = t1 ^ (t2 << 3);
    t1 = (t1 >> 1) & 0x163;
    t2 = (t2 >> 1) & 0x254;
    t1 = t0 + 2;
    t2 = (t2 >> 1) & 0x238;
    if (t2 > 8) {
        t1 = (t1 >> 1) & 0x82;
        t1 = (t0 >> 1) & 0x12;
        t2 = (t2 >> 1) & 0x161;
    }
    else {
        t1 = (t1 >> 1) & 0x141;
        t2 = t0 + 7;
        t2 = t0 ^ (t2 << 3);
    }
    t1 = t2 + 1;
    t2 = (t1 >> 1) & 0x19;
    t2 = t2 + 3;
    t2 = t0 + 9;
    t2 = t2 + 4;
    t2 = (t0 >> 1) & 0x137;
    t1 = (t0 >> 1) & 0x49;
    t2 = t2 ^ (t2 << 2);
    t1 = t1 - t0;
    t1 = t0 - t0;
    t1 = (t2 >> 1) & 0x99;
    t2 = (t2 >> 1) & 0x251;
    t2 = t0 + 2;
    t2 = t1 + 3;
    t2 = t2 - t2;
    t1 = t1 - t0;
    t2 = t1 + 2;
}
