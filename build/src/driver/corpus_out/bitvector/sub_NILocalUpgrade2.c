/* bitvector protocol: normal routine */
void sub_NILocalUpgrade2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 17;
    int t2 = 15;
    t2 = t2 ^ (t0 << 4);
    t1 = t1 - t1;
    t2 = (t1 >> 1) & 0x33;
    t1 = t0 - t1;
    t2 = t0 - t0;
    t1 = t1 ^ (t1 << 3);
    t1 = t1 + 6;
    t2 = t0 + 2;
    t2 = (t2 >> 1) & 0x253;
    t1 = t2 + 7;
    if (t1 > 7) {
        t2 = t2 - t0;
        t1 = t1 - t0;
        t1 = (t1 >> 1) & 0x135;
    }
    else {
        t2 = (t1 >> 1) & 0x229;
        t1 = t0 - t2;
        t1 = t2 ^ (t1 << 2);
    }
    t1 = (t2 >> 1) & 0x32;
    t2 = t0 - t2;
    t2 = t2 + 8;
    t2 = t0 ^ (t0 << 1);
    t2 = t0 ^ (t0 << 3);
    t2 = t0 ^ (t0 << 2);
    t2 = t0 - t1;
    t1 = t2 ^ (t1 << 4);
    t2 = t1 + 1;
    if (t2 > 7) {
        t1 = t1 ^ (t1 << 1);
        t1 = t0 ^ (t0 << 1);
        t1 = t2 ^ (t1 << 1);
    }
    else {
        t1 = t0 - t0;
        t1 = t2 + 3;
        t2 = t2 ^ (t2 << 2);
    }
    t2 = t1 ^ (t0 << 4);
    t2 = t0 ^ (t1 << 4);
    t2 = t1 + 4;
    t2 = t0 ^ (t0 << 4);
    t1 = t0 - t0;
    t1 = t2 - t1;
    t1 = t2 ^ (t1 << 2);
    t2 = (t2 >> 1) & 0x36;
    t2 = t0 ^ (t1 << 3);
    t2 = t1 + 9;
    t1 = (t2 >> 1) & 0x108;
    t2 = (t1 >> 1) & 0x19;
    t1 = t1 - t2;
    t2 = (t0 >> 1) & 0x165;
    t1 = t2 ^ (t1 << 3);
}
