/* bitvector protocol: hardware handler */
void NILocalInval(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 16;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
