/* bitvector protocol: hardware handler */
void IOLocalUncWrite(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 6;
    t2 = t2 - t1;
    t2 = t0 ^ (t0 << 1);
    if (t2 > 4) {
        t1 = t1 - t1;
        t2 = t0 - t0;
        t1 = t2 ^ (t1 << 1);
    }
    else {
        t1 = t2 + 8;
        t2 = (t2 >> 1) & 0x74;
        t2 = (t2 >> 1) & 0x98;
    }
    t1 = t1 + 1;
    t1 = t2 ^ (t2 << 4);
    if (t1 > 9) {
        t1 = t1 - t2;
        t2 = t0 ^ (t2 << 1);
        t2 = t1 - t2;
    }
    else {
        t1 = (t2 >> 1) & 0x171;
        t2 = t1 ^ (t0 << 3);
        t2 = t1 + 5;
    }
    t1 = t0 + 2;
    t2 = t2 + 1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 ^ (t1 << 1);
    t2 = t1 + 7;
    t1 = (t1 >> 1) & 0x8;
    t1 = t1 ^ (t1 << 4);
    t1 = t2 + 9;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t2 >> 1) & 0x194;
    t2 = t0 - t2;
    t1 = t1 ^ (t1 << 2);
    t2 = t2 ^ (t0 << 2);
    t2 = t0 ^ (t1 << 4);
    t1 = t0 + 5;
    t1 = t2 + 9;
    t1 = t0 + 9;
    t2 = t0 ^ (t1 << 3);
    t1 = t2 - t1;
    t2 = t2 + 5;
    t2 = t2 - t0;
    t2 = t0 - t2;
    t1 = t2 ^ (t2 << 4);
    t2 = t2 - t0;
    FREE_DB();
}
