/* bitvector protocol: hardware handler */
void IORemoteGetX2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 6;
    int t2 = 8;
    t2 = (t2 >> 1) & 0x20;
    t2 = t1 - t2;
    t2 = t0 - t2;
    t2 = (t0 >> 1) & 0x185;
    t1 = t1 ^ (t2 << 3);
    t2 = t1 + 7;
    t1 = (t2 >> 1) & 0x85;
    if (t1 > 5) {
        t2 = (t1 >> 1) & 0x92;
        t1 = (t2 >> 1) & 0x40;
        t1 = t0 - t0;
    }
    else {
        t2 = t1 ^ (t1 << 4);
        t2 = (t0 >> 1) & 0x104;
        t1 = t2 ^ (t0 << 2);
    }
    t2 = t0 ^ (t0 << 1);
    t2 = t0 - t0;
    t1 = (t0 >> 1) & 0x120;
    t1 = t1 ^ (t1 << 2);
    t1 = t1 + 7;
    t1 = t1 ^ (t1 << 1);
    t2 = t1 + 8;
    if (t0 > 12) {
        t1 = t0 - t2;
        t2 = (t1 >> 1) & 0x42;
        t2 = t1 - t0;
    }
    else {
        t2 = t2 ^ (t2 << 3);
        t2 = t1 + 3;
        t2 = t2 ^ (t0 << 1);
    }
    t2 = (t2 >> 1) & 0x177;
    t2 = t1 ^ (t0 << 3);
    t1 = (t2 >> 1) & 0x190;
    t2 = (t2 >> 1) & 0x40;
    t1 = t0 ^ (t1 << 2);
    t1 = t0 ^ (t0 << 4);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_ACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 + 9;
    t1 = t2 - t1;
    t1 = (t1 >> 1) & 0x23;
    t2 = t0 + 8;
    t1 = (t0 >> 1) & 0x131;
    t1 = t0 ^ (t1 << 2);
    t2 = (t1 >> 1) & 0x25;
    t1 = t1 ^ (t0 << 3);
    t1 = (t1 >> 1) & 0x109;
    t1 = (t0 >> 1) & 0x189;
    t2 = t0 - t1;
    t2 = t0 - t0;
    t2 = t1 + 1;
    t1 = t2 + 1;
    t2 = t2 + 9;
    t2 = t2 ^ (t1 << 3);
    t1 = t1 - t1;
    t1 = t0 + 2;
    t1 = t0 - t1;
    t2 = t2 ^ (t0 << 2);
    FREE_DB();
}
