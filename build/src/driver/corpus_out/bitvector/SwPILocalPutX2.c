/* bitvector protocol: software handler */
void SwPILocalPutX2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 3;
    int t2 = 11;
    int db = 0;
    t2 = t1 + 6;
    t1 = t0 ^ (t1 << 4);
    t2 = t2 - t0;
    t1 = t2 ^ (t0 << 2);
    if (t0 > 9) {
        t2 = (t2 >> 1) & 0x196;
        t2 = t0 ^ (t2 << 1);
        t1 = t0 - t1;
    }
    else {
        t2 = (t1 >> 1) & 0x250;
        t1 = (t1 >> 1) & 0x220;
        t2 = (t1 >> 1) & 0x189;
    }
    t1 = t2 ^ (t2 << 3);
    t2 = t1 ^ (t0 << 3);
    t1 = t1 + 6;
    t1 = t0 ^ (t1 << 4);
    if (t0 > 8) {
        t1 = t0 ^ (t0 << 3);
        t2 = t0 ^ (t1 << 2);
        t1 = (t1 >> 1) & 0x111;
    }
    else {
        t2 = t1 ^ (t2 << 2);
        t1 = t0 ^ (t1 << 4);
        t1 = (t0 >> 1) & 0x9;
    }
    t2 = (t1 >> 1) & 0x24;
    t2 = t2 ^ (t0 << 3);
    t1 = t0 + 1;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t1 - t2;
    t1 = t2 ^ (t2 << 2);
    t2 = t2 ^ (t0 << 4);
    t2 = t0 - t2;
    t1 = t1 ^ (t2 << 3);
    t2 = (t2 >> 1) & 0x182;
    t2 = t0 ^ (t2 << 4);
    t2 = t0 ^ (t1 << 3);
    t1 = t1 ^ (t0 << 1);
    t2 = t1 + 2;
    t2 = (t2 >> 1) & 0x228;
    t1 = (t1 >> 1) & 0x192;
    t1 = t2 + 6;
    t1 = t1 ^ (t0 << 2);
}
