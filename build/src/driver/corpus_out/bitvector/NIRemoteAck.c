/* bitvector protocol: hardware handler */
void NIRemoteAck(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 6;
    int t2 = 22;
    t2 = t2 ^ (t2 << 2);
    t1 = (t2 >> 1) & 0x1;
    if (t0 > 10) {
        t1 = t1 + 8;
        t2 = t1 + 1;
        t2 = t2 - t1;
    }
    else {
        t2 = t1 - t2;
        t2 = (t0 >> 1) & 0x160;
        t2 = (t0 >> 1) & 0x63;
    }
    t2 = t0 - t1;
    t2 = t1 ^ (t1 << 4);
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t1 = t1 - t1;
    t2 = t0 + 2;
    t1 = t1 + 7;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    if ((t0 & 15) == 9) {
        PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_NOWAIT, F_DEC, F_NULL);
    }
    t1 = t1 - t2;
    t2 = (t2 >> 1) & 0x190;
    t2 = t2 + 3;
    t2 = t2 + 2;
    t2 = t1 + 6;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 + 5;
    t2 = (t0 >> 1) & 0x245;
    t2 = t1 + 5;
    t2 = t2 + 9;
    t1 = t1 + 6;
    t2 = (t2 >> 1) & 0x8;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t2 = t2 + 9;
    t1 = (t1 >> 1) & 0x187;
    t2 = t0 - t0;
    t1 = t1 - t1;
    t2 = t1 - t0;
    t2 = t2 - t2;
    t2 = t0 + 2;
    t1 = t2 - t1;
    t1 = t0 + 5;
    t1 = t0 - t1;
    t2 = t2 + 4;
    t1 = (t1 >> 1) & 0x216;
    t1 = t1 - t0;
    t1 = t0 ^ (t1 << 3);
    t1 = t0 - t1;
    t1 = (t0 >> 1) & 0x65;
    t1 = t1 + 2;
    t2 = t1 ^ (t2 << 1);
    t2 = (t1 >> 1) & 0x108;
    FREE_DB();
}
