/* bitvector protocol: normal routine */
void sub_NIRemoteUpgrade2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 3;
    t2 = t1 + 4;
    t1 = t2 + 4;
    t2 = t2 + 8;
    t1 = t2 + 6;
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x4;
    t2 = t0 - t2;
    t1 = t2 ^ (t1 << 3);
    t1 = (t0 >> 1) & 0x32;
    t1 = t2 - t1;
    t1 = t1 ^ (t2 << 1);
    t1 = t2 + 3;
    t1 = t2 ^ (t1 << 1);
    t2 = t0 + 1;
    t2 = t0 + 2;
    t2 = t0 + 6;
    t1 = t2 ^ (t2 << 3);
    t2 = t0 ^ (t0 << 2);
    if (t0 > 2) {
        t2 = t1 ^ (t2 << 4);
        t2 = t0 + 8;
        t2 = t1 + 1;
    }
    else {
        t1 = t2 ^ (t0 << 1);
        t2 = t2 + 5;
        t1 = (t1 >> 1) & 0x36;
    }
    t1 = t0 + 9;
    t2 = t0 + 5;
    t2 = t2 ^ (t2 << 2);
    t2 = t1 - t2;
    t1 = (t0 >> 1) & 0x42;
    t1 = t1 - t2;
    t1 = t0 + 2;
    t2 = t2 ^ (t2 << 2);
    t1 = t1 - t0;
    t2 = t1 ^ (t0 << 4);
    t1 = t2 + 9;
    t2 = (t2 >> 1) & 0x183;
    t2 = (t1 >> 1) & 0x185;
    t1 = t0 + 3;
    t1 = t1 ^ (t2 << 4);
    t2 = t0 - t1;
    t1 = t2 ^ (t0 << 1);
    t2 = t0 - t1;
    t2 = t0 + 8;
    t2 = t0 - t0;
    t1 = t0 ^ (t0 << 1);
    t1 = t1 + 2;
    t2 = t2 ^ (t2 << 2);
    t2 = (t1 >> 1) & 0x96;
}
