/* bitvector protocol: hardware handler */
void IORemotePut(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 22;
    int t2 = 7;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
