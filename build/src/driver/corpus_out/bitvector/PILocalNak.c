/* bitvector protocol: hardware handler */
void PILocalNak(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 10;
    int t2 = 18;
    t1 = t0 - t0;
    t2 = t2 + 4;
    t2 = t0 ^ (t2 << 2);
    t2 = (t2 >> 1) & 0x245;
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t1 = t0 + 1;
    t1 = t2 + 4;
    t2 = t0 ^ (t0 << 3);
    t2 = t0 ^ (t0 << 2);
    t1 = (t2 >> 1) & 0x198;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    if ((t0 & 15) == 9) {
        PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_NOWAIT, F_DEC, F_NULL);
    }
    t2 = t0 ^ (t1 << 3);
    t2 = t0 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x119;
    t2 = (t2 >> 1) & 0x231;
    t2 = t1 + 7;
    t1 = (t0 >> 1) & 0x16;
    t1 = t0 - t2;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t2 + 2;
    t1 = t1 + 2;
    t2 = t0 - t1;
    t2 = t1 - t0;
    t2 = t0 - t1;
    t1 = t1 - t2;
    t2 = t0 + 8;
    t2 = (t0 >> 1) & 0x143;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t2 = t0 ^ (t1 << 3);
    t1 = t1 + 3;
    t1 = t1 + 4;
    t1 = (t2 >> 1) & 0x127;
    t1 = t0 + 4;
    t2 = (t1 >> 1) & 0x85;
    t1 = (t2 >> 1) & 0x102;
    t2 = (t2 >> 1) & 0x8;
    t2 = t2 - t0;
    t1 = (t2 >> 1) & 0x77;
    t2 = t2 ^ (t1 << 4);
    t1 = t1 + 5;
    t1 = t2 ^ (t2 << 2);
    t2 = t2 - t2;
    t2 = t2 - t1;
    t2 = (t1 >> 1) & 0x248;
    t1 = (t2 >> 1) & 0x73;
    t1 = t0 ^ (t0 << 4);
    t1 = (t2 >> 1) & 0x6;
    t1 = (t1 >> 1) & 0x19;
    t2 = t0 - t1;
    FREE_DB();
}
