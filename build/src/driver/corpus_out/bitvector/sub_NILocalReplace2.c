/* bitvector protocol: normal routine */
void sub_NILocalReplace2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 12;
    int t2 = 2;
    t1 = t2 - t2;
    t1 = (t2 >> 1) & 0x213;
    t2 = t0 ^ (t1 << 4);
    t2 = t2 ^ (t1 << 1);
    t2 = t1 - t1;
    t2 = t2 ^ (t2 << 1);
    t2 = t1 + 3;
    t2 = t2 + 4;
    t2 = t0 - t1;
    t1 = t1 ^ (t2 << 2);
    if (t0 > 7) {
        t2 = (t2 >> 1) & 0x67;
        t1 = t1 ^ (t2 << 1);
        t1 = t1 + 3;
    }
    else {
        t1 = t1 - t0;
        t2 = t2 + 3;
        t2 = t0 + 6;
    }
    t1 = t1 ^ (t1 << 3);
    t2 = t2 - t1;
    t2 = t2 - t2;
    t1 = t0 ^ (t0 << 1);
    t2 = t1 ^ (t1 << 2);
    t2 = t1 - t2;
    t1 = (t2 >> 1) & 0x120;
    t2 = t0 + 2;
    t2 = (t1 >> 1) & 0x27;
    t1 = t0 + 7;
    if (t2 > 12) {
        t1 = (t2 >> 1) & 0x239;
        t2 = t1 + 7;
        t1 = t0 - t2;
    }
    else {
        t1 = (t1 >> 1) & 0x121;
        t2 = t0 - t0;
        t2 = t2 ^ (t0 << 1);
    }
    t2 = t2 + 9;
    t1 = t2 + 1;
    t2 = t2 + 1;
    t1 = t2 + 1;
    t1 = t2 + 8;
    t1 = t2 + 9;
    t2 = t1 ^ (t1 << 4);
    t1 = t1 + 8;
    t2 = (t1 >> 1) & 0x2;
    t2 = (t1 >> 1) & 0x158;
    t2 = (t0 >> 1) & 0x150;
    t1 = t0 ^ (t2 << 2);
    t1 = t2 + 5;
    t1 = t2 - t2;
    t2 = (t1 >> 1) & 0x113;
    t1 = t0 + 5;
}
