/* bitvector protocol: hardware handler */
void NIRemoteIORead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 23;
    t2 = (t1 >> 1) & 0x52;
    t1 = t1 ^ (t0 << 2);
    t1 = t0 ^ (t2 << 4);
    t2 = (t1 >> 1) & 0x85;
    if (t1 > 8) {
        t1 = (t2 >> 1) & 0x252;
        t1 = t0 ^ (t0 << 4);
        t1 = t0 - t2;
    }
    else {
        t2 = t2 ^ (t1 << 2);
        t2 = (t2 >> 1) & 0x73;
        t1 = (t1 >> 1) & 0x251;
    }
    t2 = t1 + 9;
    t1 = t1 + 2;
    t1 = t0 + 3;
    if (t2 > 5) {
        t2 = t2 - t1;
        t1 = t2 - t0;
        t2 = t0 + 7;
    }
    else {
        t2 = t1 ^ (t1 << 2);
        t1 = t1 - t2;
        t1 = t2 ^ (t1 << 3);
    }
    t2 = t0 - t2;
    t2 = t1 ^ (t2 << 1);
    t2 = t1 - t0;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 + 2;
    t1 = t2 ^ (t1 << 3);
    t2 = t2 ^ (t2 << 2);
    t2 = t1 ^ (t0 << 1);
    t1 = t1 - t1;
    t1 = t1 ^ (t2 << 2);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 ^ (t2 << 3);
    t2 = t2 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x36;
    t1 = t1 + 6;
    t1 = (t0 >> 1) & 0x142;
    t1 = t2 - t1;
    t1 = t2 - t1;
    t2 = t2 + 1;
    t1 = t0 - t2;
    t1 = t1 + 7;
    t1 = t2 + 1;
    t2 = (t1 >> 1) & 0x90;
    t1 = (t2 >> 1) & 0x231;
    t2 = t1 - t2;
    t2 = t0 + 7;
    t2 = t0 ^ (t0 << 2);
    FREE_DB();
}
