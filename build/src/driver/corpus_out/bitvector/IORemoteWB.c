/* bitvector protocol: hardware handler */
void IORemoteWB(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 15;
    t2 = t2 ^ (t2 << 3);
    t1 = (t2 >> 1) & 0x15;
    t1 = t0 ^ (t1 << 2);
    t2 = (t0 >> 1) & 0x87;
    if (t0 > 4) {
        t2 = t2 + 9;
        t2 = (t0 >> 1) & 0x191;
        t2 = t1 + 4;
    }
    else {
        t1 = t1 + 1;
        t1 = t1 ^ (t0 << 4);
        t1 = t0 + 3;
    }
    t2 = t0 + 1;
    t1 = t0 ^ (t2 << 1);
    t1 = t2 - t0;
    if (t2 > 8) {
        t1 = (t0 >> 1) & 0x80;
        t1 = t2 + 3;
        t1 = (t2 >> 1) & 0x12;
    }
    else {
        t2 = t1 + 5;
        t2 = t1 + 1;
        t2 = t1 - t1;
    }
    t2 = t2 - t0;
    t2 = t2 - t2;
    t1 = t0 + 4;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 ^ (t1 << 4);
    t2 = t2 + 5;
    t1 = t0 + 8;
    t2 = t1 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x34;
    t2 = t1 ^ (t2 << 2);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 ^ (t0 << 2);
    t2 = t2 - t0;
    t1 = (t0 >> 1) & 0x181;
    t2 = t1 + 6;
    t1 = t1 + 9;
    t1 = (t0 >> 1) & 0x243;
    t1 = (t0 >> 1) & 0x176;
    t2 = t1 + 1;
    t2 = t2 ^ (t2 << 3);
    t1 = t2 + 1;
    t2 = t1 - t2;
    t2 = (t1 >> 1) & 0x94;
    t2 = t0 - t0;
    t1 = t1 + 1;
    t2 = (t1 >> 1) & 0x170;
    t2 = t1 ^ (t0 << 4);
    FREE_DB();
}
