/* bitvector protocol: hardware handler */
void IOLocalInval(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 24;
    int t2 = 20;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
