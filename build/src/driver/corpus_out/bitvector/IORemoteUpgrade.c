/* bitvector protocol: hardware handler */
void IORemoteUpgrade(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 23;
    int t2 = 14;
    t2 = t2 - t2;
    if (t1 > 6) {
        t1 = t1 ^ (t0 << 3);
        t1 = (t0 >> 1) & 0x100;
        t1 = t1 ^ (t2 << 4);
    }
    else {
        t2 = t2 - t0;
        t2 = t2 + 7;
        t2 = (t2 >> 1) & 0x47;
    }
    t1 = t2 + 5;
    if (t1 > 13) {
        t2 = t1 - t1;
        t1 = t2 - t0;
        t2 = (t2 >> 1) & 0x9;
    }
    else {
        t1 = t1 ^ (t2 << 2);
        t1 = t0 - t0;
        t2 = t0 ^ (t1 << 3);
    }
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t2 + 2;
    t2 = t0 + 9;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t1 ^ (t1 << 4);
    t2 = t0 - t1;
    t1 = t1 + 5;
    t1 = t1 - t2;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    while (IO_STATUS_REG() == 0) {
        t1 = t2 + 1;
    }
    t1 = t2 - t1;
    t1 = t2 - t2;
    t1 = t0 + 7;
    t2 = (t2 >> 1) & 0x150;
    t1 = t1 + 1;
    t2 = t0 + 3;
    t1 = (t1 >> 1) & 0x33;
    t1 = t2 + 8;
    t1 = t1 + 3;
    t1 = t2 + 3;
    t1 = t0 + 3;
    t1 = t0 ^ (t2 << 2);
    t1 = t1 + 1;
    t2 = (t1 >> 1) & 0x150;
    t2 = t1 - t0;
    FREE_DB();
}
