/* bitvector protocol: hardware handler */
void PIRemoteGetX2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 5;
    int t2 = 12;
    t2 = t2 + 9;
    t1 = (t2 >> 1) & 0x71;
    t1 = (t1 >> 1) & 0x67;
    t2 = t1 + 3;
    t1 = t0 - t1;
    t1 = t1 - t1;
    t1 = t1 + 4;
    if (t1 > 10) {
        t1 = t0 + 4;
        t1 = t0 + 3;
        t2 = t1 + 7;
    }
    else {
        t1 = t0 - t2;
        t2 = t2 - t2;
        t2 = t0 + 3;
    }
    t2 = t1 - t0;
    t2 = (t1 >> 1) & 0x109;
    t1 = t1 ^ (t1 << 1);
    t1 = t1 + 2;
    t1 = t0 ^ (t1 << 1);
    t2 = (t0 >> 1) & 0x43;
    t1 = t1 ^ (t1 << 2);
    if (t2 > 13) {
        t1 = t0 + 1;
        t2 = t1 - t2;
        t1 = t0 + 6;
    }
    else {
        t2 = t1 - t1;
        t2 = (t1 >> 1) & 0x19;
        t2 = t1 + 4;
    }
    t2 = t2 - t2;
    t1 = (t0 >> 1) & 0x125;
    t2 = t1 ^ (t0 << 4);
    t1 = (t2 >> 1) & 0x26;
    t2 = t2 - t1;
    t1 = t0 - t2;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 ^ (t2 << 2);
    t1 = t1 ^ (t2 << 1);
    t1 = t0 - t1;
    t2 = t0 - t2;
    t2 = (t2 >> 1) & 0x111;
    t2 = (t0 >> 1) & 0x50;
    t2 = t1 - t0;
    t1 = (t1 >> 1) & 0x194;
    t2 = t1 ^ (t0 << 2);
    t1 = t2 - t1;
    t2 = t0 + 4;
    t1 = (t2 >> 1) & 0x210;
    t1 = t2 ^ (t2 << 1);
    t1 = (t0 >> 1) & 0x121;
    t2 = t2 + 4;
    t1 = (t0 >> 1) & 0x143;
    t2 = t2 + 6;
    t1 = (t1 >> 1) & 0x13;
    t2 = t0 ^ (t1 << 2);
    t2 = t2 ^ (t0 << 4);
    FREE_DB();
}
