/* bitvector protocol: hardware handler */
void IOLocalAck(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 15;
    int t2 = 2;
    t1 = t2 + 8;
    t2 = t0 + 3;
    t1 = t1 - t2;
    t2 = t1 ^ (t0 << 1);
    if ((t0 & 7) == 5) {
        MISCBUS_READ_DB(t0, t1);
    }
    t1 = t0 + 7;
    t2 = (t2 >> 1) & 0x157;
    t2 = (t0 >> 1) & 0x88;
    t1 = t2 ^ (t0 << 1);
    t1 = (t0 >> 1) & 0x54;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t2 + 1;
    t1 = t2 + 6;
    t2 = (t0 >> 1) & 0x197;
    t1 = t0 + 9;
    t1 = t0 + 6;
    t1 = t0 - t1;
    t2 = t0 ^ (t2 << 3);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t0 - t1;
    t1 = t0 ^ (t0 << 4);
    t2 = t0 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x157;
    t2 = t1 + 7;
    t2 = t0 ^ (t2 << 4);
    t2 = t1 - t1;
    t2 = (t2 >> 1) & 0x79;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t1 = (t1 >> 1) & 0x136;
    t2 = t2 ^ (t1 << 4);
    t2 = t0 + 1;
    t2 = t2 - t0;
    t1 = t2 - t1;
    t1 = t2 - t2;
    t2 = (t2 >> 1) & 0x178;
    t1 = t2 - t1;
    t2 = (t0 >> 1) & 0x2;
    t1 = (t0 >> 1) & 0x132;
    t1 = (t1 >> 1) & 0x176;
    t2 = t0 - t1;
    t2 = (t1 >> 1) & 0x103;
    t1 = t1 ^ (t2 << 2);
    t2 = t2 + 5;
    t1 = (t1 >> 1) & 0x112;
    t1 = t1 ^ (t1 << 4);
    t1 = t1 + 6;
    t2 = (t2 >> 1) & 0x182;
    t1 = (t2 >> 1) & 0x163;
    t1 = t1 + 2;
    t2 = t0 - t0;
    FREE_DB();
}
