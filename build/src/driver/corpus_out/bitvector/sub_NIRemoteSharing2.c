/* bitvector protocol: normal routine */
void sub_NIRemoteSharing2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 6;
    int t2 = 2;
    t2 = t2 + 8;
    t1 = t1 ^ (t0 << 1);
    t2 = t1 + 8;
    t2 = t2 + 8;
    t2 = t1 ^ (t1 << 3);
    t2 = t1 ^ (t0 << 4);
    t2 = t0 - t1;
    t1 = (t1 >> 1) & 0x65;
    t1 = (t1 >> 1) & 0x160;
    t1 = t1 + 5;
    t2 = t0 + 3;
    if (t0 > 10) {
        t2 = t1 ^ (t2 << 2);
        t2 = t1 ^ (t1 << 1);
        t2 = (t2 >> 1) & 0x125;
    }
    else {
        t1 = t2 + 2;
        t1 = (t0 >> 1) & 0x250;
        t1 = t0 - t2;
    }
    t1 = (t2 >> 1) & 0x204;
    t2 = t1 ^ (t2 << 2);
    t2 = t1 + 5;
    t1 = (t0 >> 1) & 0x160;
    t2 = t1 - t0;
    t2 = t2 - t1;
    t2 = (t1 >> 1) & 0x85;
    t1 = t2 ^ (t1 << 3);
    t2 = t1 + 1;
    t1 = t0 - t0;
    t2 = t1 ^ (t2 << 4);
    if (t1 > 5) {
        t1 = t2 - t2;
        t2 = t0 + 4;
        t1 = t2 + 4;
    }
    else {
        t2 = (t0 >> 1) & 0x114;
        t2 = t0 + 5;
        t2 = t1 + 1;
    }
    t2 = t2 - t1;
    t1 = t1 ^ (t0 << 2);
    t2 = (t1 >> 1) & 0x40;
    t2 = (t2 >> 1) & 0x198;
    t1 = (t1 >> 1) & 0x159;
    t1 = (t2 >> 1) & 0x241;
    t1 = t1 - t0;
    t2 = t1 - t2;
    t2 = t2 - t0;
    t2 = (t0 >> 1) & 0x179;
    t1 = t1 - t0;
    t1 = t1 + 8;
    t1 = (t0 >> 1) & 0x253;
    t1 = t2 - t0;
    t1 = (t1 >> 1) & 0x203;
    t2 = t1 - t1;
    t1 = t1 ^ (t2 << 2);
}
