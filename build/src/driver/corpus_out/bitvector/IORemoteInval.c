/* bitvector protocol: hardware handler */
void IORemoteInval(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 10;
    int t2 = 22;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
