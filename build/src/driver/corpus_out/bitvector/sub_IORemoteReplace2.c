/* bitvector protocol: normal routine */
void sub_IORemoteReplace2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 14;
    int t2 = 21;
    t2 = t1 + 1;
    t2 = t1 - t1;
    t1 = t1 + 2;
    t1 = t0 ^ (t2 << 4);
    t1 = t0 - t0;
    t2 = (t1 >> 1) & 0x135;
    t1 = t2 - t0;
    t2 = t2 ^ (t1 << 3);
    t2 = t0 + 4;
    t2 = t1 - t1;
    t2 = t0 - t2;
    t1 = t0 - t2;
    t2 = t0 - t2;
    t2 = t2 + 8;
    t1 = t2 - t0;
    t2 = (t1 >> 1) & 0x193;
    t1 = t2 + 5;
    t2 = t0 ^ (t0 << 2);
    t2 = t1 - t0;
    t2 = t0 + 2;
    t2 = t0 - t2;
    if (t1 > 5) {
        t1 = t0 - t2;
        t2 = t2 ^ (t1 << 3);
        t2 = t0 ^ (t2 << 2);
    }
    else {
        t1 = t2 - t2;
        t2 = t2 + 5;
        t1 = t2 + 2;
    }
    t2 = t2 - t1;
    t2 = t0 - t0;
    t2 = (t2 >> 1) & 0x237;
    t1 = (t1 >> 1) & 0x98;
    t2 = t0 + 4;
    t2 = t2 + 2;
    t2 = t1 - t0;
    t1 = (t2 >> 1) & 0x168;
    t2 = t0 + 8;
    t1 = (t0 >> 1) & 0x72;
    t1 = (t2 >> 1) & 0x27;
    t2 = t2 ^ (t2 << 3);
    t1 = (t2 >> 1) & 0x172;
    t2 = t0 - t1;
    t2 = t1 ^ (t0 << 4);
    t2 = (t2 >> 1) & 0x169;
    t1 = t1 - t1;
    t1 = t2 - t1;
    t1 = t2 ^ (t2 << 4);
    t2 = t0 + 1;
    t1 = t1 - t2;
    t2 = t2 - t2;
    t2 = t1 - t2;
    t2 = t1 ^ (t2 << 3);
    t1 = t0 ^ (t1 << 1);
    t1 = t1 - t0;
    t2 = t2 - t2;
}
