/* bitvector protocol: hardware handler */
void IOLocalWB(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 16;
    int t2 = 12;
    t1 = t0 - t0;
    t1 = t2 - t2;
    t2 = t0 ^ (t1 << 1);
    t1 = t0 ^ (t2 << 4);
    if (t0 > 13) {
        t1 = t2 ^ (t0 << 1);
        t1 = t0 - t0;
        t2 = t0 - t2;
    }
    else {
        t2 = t1 + 5;
        t1 = t1 + 9;
        t2 = t1 ^ (t1 << 2);
    }
    t1 = t2 + 4;
    t2 = t2 ^ (t1 << 4);
    t1 = t0 - t0;
    if (t0 > 9) {
        t2 = t0 - t2;
        t1 = t0 + 9;
        t1 = t0 + 4;
    }
    else {
        t1 = t1 - t0;
        t2 = t0 + 9;
        t1 = t2 + 3;
    }
    t1 = t2 + 6;
    t1 = t1 ^ (t0 << 1);
    t2 = t2 + 3;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_NAK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 - t2;
    t1 = (t0 >> 1) & 0x246;
    t1 = t1 + 3;
    t2 = t1 ^ (t2 << 2);
    t1 = t2 ^ (t0 << 2);
    t1 = t0 ^ (t1 << 1);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t1 + 3;
    t1 = t0 - t1;
    t2 = t2 + 1;
    t2 = (t0 >> 1) & 0x168;
    t2 = t1 - t1;
    t1 = t0 ^ (t1 << 2);
    t1 = t1 - t1;
    t1 = t2 + 9;
    t1 = t0 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x133;
    t2 = t1 - t1;
    t2 = t0 ^ (t2 << 1);
    t1 = t0 - t2;
    t2 = t2 - t0;
    t2 = t1 + 6;
    t1 = t1 - t1;
    FREE_DB();
}
