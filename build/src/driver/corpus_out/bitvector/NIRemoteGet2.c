/* bitvector protocol: hardware handler */
void NIRemoteGet2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 8;
    int t2 = 30;
    t2 = t1 - t1;
    t1 = (t0 >> 1) & 0x82;
    t1 = t2 + 3;
    t2 = t2 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x214;
    t2 = t2 - t0;
    if (t0 > 7) {
        t2 = (t1 >> 1) & 0x71;
        t1 = t0 + 2;
        t1 = t1 - t0;
    }
    else {
        t1 = t0 ^ (t2 << 3);
        t2 = t1 ^ (t1 << 4);
        t1 = t2 - t0;
    }
    t2 = t0 - t2;
    t1 = t2 - t2;
    t1 = t2 ^ (t2 << 3);
    t2 = t1 + 4;
    t1 = t2 ^ (t2 << 3);
    t2 = t2 + 9;
    if (t2 > 9) {
        t1 = t1 - t0;
        t1 = t2 + 8;
        t1 = t0 - t2;
    }
    else {
        t2 = t1 ^ (t1 << 3);
        t1 = t1 - t2;
        t2 = (t1 >> 1) & 0x87;
    }
    t2 = t0 - t2;
    t1 = t2 ^ (t1 << 3);
    t1 = t2 ^ (t1 << 3);
    t2 = t1 - t0;
    t2 = t2 + 7;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 + 5;
    t1 = t2 ^ (t2 << 2);
    t2 = t0 ^ (t1 << 4);
    t2 = t2 + 2;
    t2 = t0 + 5;
    t1 = t1 + 3;
    t1 = t0 ^ (t2 << 3);
    t2 = t0 ^ (t0 << 2);
    t2 = t2 - t2;
    t2 = (t2 >> 1) & 0x60;
    t2 = t0 + 9;
    t2 = t1 + 8;
    t2 = t0 ^ (t1 << 4);
    t2 = t2 - t1;
    t2 = (t2 >> 1) & 0x89;
    t2 = t1 + 4;
    t1 = t2 ^ (t1 << 3);
    t1 = t1 ^ (t2 << 2);
    t1 = t0 ^ (t2 << 4);
    t2 = t0 + 5;
    FREE_DB();
}
