/* bitvector protocol: normal routine */
void sub_IORemoteUncRead2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 21;
    int t2 = 7;
    t2 = t0 + 8;
    t1 = t1 ^ (t2 << 1);
    t1 = t1 ^ (t2 << 1);
    t2 = t1 + 8;
    t2 = t1 + 7;
    t1 = t2 ^ (t1 << 2);
    t1 = t1 - t0;
    t2 = (t1 >> 1) & 0x159;
    t2 = t0 - t0;
    t2 = t1 - t0;
    t1 = t2 - t1;
    t1 = t0 + 3;
    if (t1 > 9) {
        t2 = t1 - t0;
        t1 = t1 ^ (t1 << 1);
        t2 = t1 - t0;
    }
    else {
        t2 = t0 - t2;
        t2 = (t1 >> 1) & 0x199;
        t1 = (t1 >> 1) & 0x182;
    }
    t2 = t2 - t2;
    t1 = (t2 >> 1) & 0x99;
    t2 = (t1 >> 1) & 0x249;
    t1 = t0 - t2;
    t2 = t2 - t1;
    t1 = (t0 >> 1) & 0x229;
    t2 = (t1 >> 1) & 0x181;
    t2 = (t2 >> 1) & 0x208;
    t1 = t0 - t1;
    t2 = (t1 >> 1) & 0x242;
    t1 = (t1 >> 1) & 0x20;
    if (t0 > 10) {
        t2 = t2 ^ (t1 << 4);
        t1 = t0 - t2;
        t2 = t0 - t2;
    }
    else {
        t2 = t0 - t2;
        t1 = (t2 >> 1) & 0x12;
        t2 = t0 + 7;
    }
    t2 = t1 - t1;
    t1 = (t1 >> 1) & 0x93;
    t1 = t2 + 3;
    t1 = (t2 >> 1) & 0x238;
    t1 = t2 - t2;
    t2 = t0 - t2;
    t2 = t0 - t0;
    t2 = t2 + 6;
    t1 = (t2 >> 1) & 0x108;
    t1 = (t1 >> 1) & 0x163;
    t1 = t0 ^ (t1 << 2);
    t2 = t2 - t1;
    t1 = (t2 >> 1) & 0x79;
    t1 = t0 + 8;
    t1 = t2 ^ (t0 << 1);
    t1 = (t2 >> 1) & 0x113;
    t2 = (t0 >> 1) & 0x19;
}
