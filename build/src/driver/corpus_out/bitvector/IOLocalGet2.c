/* bitvector protocol: hardware handler */
void IOLocalGet2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 8;
    t2 = t2 ^ (t0 << 1);
    t2 = t2 ^ (t0 << 1);
    t1 = t1 - t2;
    t1 = t1 - t1;
    t1 = (t1 >> 1) & 0x96;
    if (t2 > 7) {
        t1 = t2 + 2;
        t2 = t0 - t2;
        t2 = t0 ^ (t0 << 1);
    }
    else {
        t2 = t0 + 2;
        t1 = t0 + 7;
        t2 = (t1 >> 1) & 0x88;
    }
    t2 = (t0 >> 1) & 0x234;
    t2 = t1 + 9;
    t2 = t0 - t1;
    t2 = (t2 >> 1) & 0x166;
    if (t1 > 3) {
        t2 = (t0 >> 1) & 0x168;
        t1 = t0 ^ (t1 << 2);
        t2 = t1 + 2;
    }
    else {
        t1 = t1 ^ (t1 << 4);
        t1 = t2 - t0;
        t1 = (t2 >> 1) & 0x154;
    }
    t1 = (t0 >> 1) & 0x124;
    t1 = t0 - t0;
    t2 = t2 ^ (t0 << 1);
    t1 = t0 + 8;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 - t2;
    t1 = t0 + 6;
    t2 = t2 - t1;
    t1 = t0 ^ (t2 << 1);
    t1 = t2 ^ (t1 << 2);
    t1 = t1 + 3;
    t2 = t1 - t2;
    t2 = t0 ^ (t1 << 1);
    t1 = t1 - t1;
    t1 = t2 + 9;
    t2 = (t2 >> 1) & 0x243;
    t1 = t0 + 1;
    t1 = t1 ^ (t1 << 1);
    t2 = (t1 >> 1) & 0x85;
    t2 = t2 ^ (t2 << 4);
    t2 = t0 ^ (t1 << 1);
    t1 = t2 + 6;
    t1 = t0 - t0;
    FREE_DB();
}
