/* bitvector protocol: normal routine */
void sub_IORemoteAck2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 6;
    t1 = (t2 >> 1) & 0x102;
    t1 = (t1 >> 1) & 0x3;
    t1 = t0 + 7;
    t1 = t2 - t0;
    t1 = t2 + 1;
    if (t1 > 11) {
        t2 = t0 - t2;
        t2 = t0 - t2;
        t1 = t0 + 4;
    }
    else {
        t2 = (t1 >> 1) & 0x194;
        t1 = t2 - t2;
        t1 = t1 ^ (t1 << 2);
    }
    t1 = t0 + 3;
    t1 = t2 + 8;
    t2 = t1 + 8;
    t2 = t2 + 1;
    t1 = t0 ^ (t2 << 3);
    if (t1 > 10) {
        t2 = t0 - t0;
        t2 = t1 + 7;
        t1 = t0 ^ (t1 << 4);
    }
    else {
        t2 = (t1 >> 1) & 0x242;
        t2 = t1 - t1;
        t2 = t0 - t2;
    }
    t1 = t2 + 7;
    t1 = t0 - t0;
    t1 = t2 ^ (t2 << 3);
    t1 = t2 - t2;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 ^ (t2 << 1);
    t2 = t1 - t2;
    t2 = t2 + 5;
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x35;
    t1 = (t1 >> 1) & 0x70;
    t2 = t2 + 9;
    t1 = t2 + 5;
    t2 = t2 ^ (t2 << 4);
    t1 = (t0 >> 1) & 0x250;
    t1 = (t0 >> 1) & 0x137;
    t2 = t2 + 9;
    t1 = t2 - t2;
    t1 = t2 + 3;
    t2 = t1 - t0;
    t2 = (t0 >> 1) & 0x7;
    t2 = t0 ^ (t1 << 3);
    t2 = (t1 >> 1) & 0x4;
}
