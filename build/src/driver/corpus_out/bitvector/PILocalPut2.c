/* bitvector protocol: hardware handler */
void PILocalPut2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 3;
    t1 = (t0 >> 1) & 0x181;
    t2 = (t1 >> 1) & 0x2;
    t2 = t1 - t2;
    t2 = t1 - t2;
    t1 = t2 - t1;
    if (t1 > 9) {
        t2 = (t1 >> 1) & 0x53;
        t1 = t1 + 1;
        t2 = t2 - t2;
    }
    else {
        t1 = t2 ^ (t2 << 3);
        t1 = t1 - t2;
        t2 = t2 + 4;
    }
    t2 = t2 ^ (t1 << 1);
    t2 = t0 - t0;
    t1 = (t0 >> 1) & 0x223;
    t1 = t0 - t0;
    if (t1 > 13) {
        t2 = t2 - t0;
        t1 = t0 - t2;
        t1 = t1 - t1;
    }
    else {
        t2 = t2 + 1;
        t2 = t2 + 3;
        t2 = t1 ^ (t1 << 3);
    }
    t2 = (t2 >> 1) & 0x212;
    t2 = t0 ^ (t1 << 2);
    t1 = t0 + 8;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = (t2 >> 1) & 0x167;
    t2 = t0 ^ (t2 << 4);
    t2 = t0 + 1;
    t1 = t2 ^ (t2 << 3);
    t1 = t0 + 4;
    t2 = (t0 >> 1) & 0x177;
    t1 = t1 ^ (t0 << 2);
    t2 = t2 + 2;
    t1 = t2 + 5;
    t1 = (t0 >> 1) & 0x175;
    t1 = t0 ^ (t0 << 3);
    t2 = t2 ^ (t1 << 1);
    t1 = (t0 >> 1) & 0x255;
    t1 = t1 ^ (t0 << 1);
    t1 = t2 + 4;
    t2 = (t0 >> 1) & 0x23;
    t1 = t1 - t2;
    t2 = t2 + 4;
    FREE_DB();
}
