/* bitvector protocol: hardware handler */
void IORemoteReplace(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 28;
    int t2 = 16;
    t2 = (t2 >> 1) & 0x146;
    t1 = (t0 >> 1) & 0x51;
    t2 = t2 + 9;
    t2 = (t1 >> 1) & 0x108;
    t1 = t1 + 9;
    t1 = t2 ^ (t2 << 3);
    if (t2 > 5) {
        t1 = t0 + 5;
        t1 = (t1 >> 1) & 0x43;
        t1 = t2 + 1;
    }
    else {
        t1 = t0 ^ (t2 << 2);
        t1 = t1 + 5;
        t2 = t1 - t2;
    }
    t1 = t2 + 2;
    t2 = t2 - t0;
    t1 = t2 + 2;
    t2 = t1 + 7;
    t1 = t2 ^ (t0 << 3);
    t1 = t2 - t2;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 - t2;
    t1 = t2 - t1;
    t1 = t2 ^ (t2 << 3);
    t2 = t2 - t0;
    t2 = t2 + 2;
    t1 = t0 - t1;
    t1 = t2 + 6;
    t1 = (t1 >> 1) & 0x218;
    t1 = t0 + 8;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t1 + 9;
    t2 = t2 - t0;
    t1 = (t0 >> 1) & 0x65;
    t2 = (t2 >> 1) & 0x24;
    t2 = t0 + 2;
    t2 = (t2 >> 1) & 0x211;
    t2 = t2 - t0;
    t1 = t2 - t0;
    t1 = t2 - t0;
    t2 = t1 + 1;
    t1 = t0 - t0;
    t2 = t2 - t2;
    t1 = t2 ^ (t0 << 3);
    t2 = t2 + 1;
    t1 = t0 + 8;
    t1 = t2 - t1;
    t1 = (t2 >> 1) & 0x143;
    t1 = t1 + 1;
    t1 = t2 - t2;
    FREE_DB();
}
