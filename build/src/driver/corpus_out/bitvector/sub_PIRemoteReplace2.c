/* bitvector protocol: normal routine */
void sub_PIRemoteReplace2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 14;
    int t2 = 20;
    t1 = (t2 >> 1) & 0x25;
    t2 = t2 - t2;
    t2 = t1 ^ (t2 << 2);
    t2 = t2 - t1;
    t2 = (t1 >> 1) & 0x42;
    t2 = t2 + 6;
    t1 = t2 - t0;
    t2 = (t0 >> 1) & 0x68;
    t2 = (t0 >> 1) & 0x234;
    if (t2 > 5) {
        t2 = t2 ^ (t1 << 2);
        t1 = (t0 >> 1) & 0x28;
        t2 = t2 ^ (t0 << 2);
    }
    else {
        t1 = t1 ^ (t1 << 4);
        t2 = t1 ^ (t1 << 2);
        t1 = t2 ^ (t0 << 1);
    }
    t2 = t2 + 7;
    t2 = t1 + 1;
    t1 = t1 - t1;
    t1 = t2 ^ (t0 << 4);
    t1 = t2 + 9;
    t1 = (t2 >> 1) & 0x211;
    t1 = t0 - t1;
    t1 = t2 - t0;
    if (t0 > 6) {
        t1 = t0 ^ (t2 << 4);
        t1 = t2 - t2;
        t1 = t0 + 1;
    }
    else {
        t2 = t1 + 7;
        t1 = t2 + 6;
        t2 = t2 + 4;
    }
    t2 = t2 - t1;
    t2 = t2 + 2;
    t1 = (t2 >> 1) & 0x26;
    t1 = (t2 >> 1) & 0x11;
    t2 = t2 - t0;
    t1 = t2 + 1;
    t2 = t2 ^ (t0 << 1);
    t2 = t0 + 4;
    t2 = (t1 >> 1) & 0x145;
    t1 = t2 ^ (t2 << 3);
    t2 = (t2 >> 1) & 0x60;
    t2 = t2 ^ (t1 << 1);
    t1 = t2 - t2;
    t1 = t1 - t0;
    t1 = (t1 >> 1) & 0x88;
}
