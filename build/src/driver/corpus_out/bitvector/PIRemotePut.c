/* bitvector protocol: hardware handler */
void PIRemotePut(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 28;
    int t2 = 15;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
