/* bitvector protocol: helper routine */
void upd_sharers_bitvector_0(void) {
    PROC_HOOK();
    DIR_LOAD();
    DIR_WRITE(sharers, 1);
}
