/* bitvector protocol: normal routine */
void sub_PILocalWB2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 11;
    int t2 = 27;
    t2 = (t2 >> 1) & 0x24;
    t2 = t2 - t2;
    t2 = t0 ^ (t0 << 2);
    t1 = t2 - t0;
    t1 = t0 + 7;
    t1 = (t2 >> 1) & 0x11;
    t1 = (t1 >> 1) & 0x235;
    t1 = (t0 >> 1) & 0x113;
    t2 = t0 + 2;
    if (t0 > 11) {
        t2 = t0 + 5;
        t1 = t1 + 9;
        t1 = t1 - t1;
    }
    else {
        t2 = t1 - t0;
        t1 = t2 + 4;
        t2 = t2 + 2;
    }
    t1 = t2 - t0;
    t2 = t0 - t2;
    t1 = t0 + 6;
    t2 = t1 - t0;
    t1 = t1 ^ (t0 << 4);
    t2 = t1 + 1;
    t2 = (t0 >> 1) & 0x60;
    t1 = t1 + 1;
    t1 = t0 ^ (t2 << 2);
    if (t1 > 3) {
        t1 = t0 + 4;
        t1 = t0 + 7;
        t2 = t1 - t0;
    }
    else {
        t1 = t0 + 7;
        t1 = (t1 >> 1) & 0x250;
        t1 = t2 ^ (t0 << 3);
    }
    t1 = t2 ^ (t0 << 3);
    t1 = t1 + 9;
    t2 = t0 + 9;
    t2 = t0 ^ (t0 << 2);
    t2 = t0 - t2;
    t2 = (t1 >> 1) & 0x25;
    t1 = t0 - t2;
    t2 = (t0 >> 1) & 0x51;
    t1 = t2 + 3;
    t2 = (t1 >> 1) & 0x222;
    t2 = t1 ^ (t2 << 1);
    t2 = (t2 >> 1) & 0x13;
    t1 = t2 + 2;
    t1 = (t2 >> 1) & 0x80;
    t1 = t2 ^ (t1 << 1);
}
