/* bitvector protocol: hardware handler */
void PILocalUpgrade(void) {
    int t0 = MSG_WORD0();
    int t1 = 3;
    int t2 = 16;
    t2 = t0 ^ (t0 << 4);
    if (t2 > 12) {
        t1 = t0 - t1;
        t2 = t1 ^ (t1 << 3);
        t2 = t0 - t0;
    }
    else {
        t2 = t0 + 5;
        t2 = t1 - t1;
        t2 = t1 - t2;
    }
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t1 = (t1 >> 1) & 0x171;
    t1 = t0 ^ (t0 << 2);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 ^ (t1 << 3);
    t1 = t0 - t2;
    t2 = (t2 >> 1) & 0x164;
    t1 = (t1 >> 1) & 0x8;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t2 - t2;
    t2 = t0 - t2;
    t1 = t2 + 4;
    t1 = t2 ^ (t1 << 4);
    t1 = (t2 >> 1) & 0x222;
    t2 = (t0 >> 1) & 0x71;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t2 = t2 - t2;
    t1 = t1 ^ (t0 << 2);
    t1 = t2 + 2;
    t1 = t1 + 2;
    t2 = t2 + 5;
    t2 = t1 + 2;
    t1 = (t0 >> 1) & 0x61;
    t1 = t0 + 1;
    t1 = t2 - t2;
    t1 = (t1 >> 1) & 0x125;
    t2 = t2 - t1;
    t1 = t2 - t0;
    t2 = t2 ^ (t0 << 1);
    t1 = t0 - t2;
    t2 = t2 + 9;
    t1 = t2 + 6;
    t1 = (t2 >> 1) & 0x254;
    t1 = t1 ^ (t1 << 4);
    t1 = t1 - t1;
    FREE_DB();
}
