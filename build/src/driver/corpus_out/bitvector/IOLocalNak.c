/* bitvector protocol: hardware handler */
void IOLocalNak(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 8;
    int t2 = 19;
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t2 = t2 + 3;
    t2 = t2 - t1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 ^ (t1 << 1);
    t2 = t1 - t1;
    t2 = t0 + 9;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t1 + 6;
    t2 = t0 - t1;
    t1 = t2 - t2;
    t1 = t0 ^ (t1 << 3);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t1 = (t0 >> 1) & 0x56;
    t2 = (t0 >> 1) & 0x88;
    t1 = t1 ^ (t2 << 1);
    t2 = t1 + 2;
    t2 = (t2 >> 1) & 0x88;
    t2 = t1 + 5;
    t1 = t0 ^ (t0 << 4);
    if ((t0 & 15) == 3) {
        FREE_DB();
    }
    t1 = (t1 >> 1) & 0x50;
    t2 = t1 - t0;
    t1 = t2 - t1;
    t1 = t0 - t1;
    t1 = t1 ^ (t1 << 2);
    t2 = t2 ^ (t0 << 2);
    t2 = t2 - t2;
    t2 = t1 + 3;
    t1 = t1 + 1;
    t2 = (t1 >> 1) & 0x232;
    t2 = (t2 >> 1) & 0x73;
    t2 = t0 + 5;
    t2 = t2 ^ (t1 << 3);
    t2 = t0 + 1;
    t1 = t1 + 2;
    t1 = (t0 >> 1) & 0x49;
    t2 = (t0 >> 1) & 0x114;
    t1 = t2 + 5;
    t1 = t0 ^ (t0 << 4);
    t1 = t0 - t2;
    t2 = (t2 >> 1) & 0x213;
    FREE_DB();
}
