/* bitvector protocol: normal routine */
void sub_NIRemoteNak2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 26;
    int t2 = 21;
    t1 = t1 + 3;
    t1 = t2 ^ (t1 << 3);
    t2 = t2 - t1;
    t2 = (t1 >> 1) & 0x30;
    t1 = t2 - t2;
    t1 = t0 - t1;
    t2 = t2 + 4;
    if (t2 > 5) {
        t2 = t1 - t1;
        t1 = t0 + 5;
        t2 = (t0 >> 1) & 0x146;
    }
    else {
        t2 = (t2 >> 1) & 0x144;
        t2 = t0 + 4;
        t1 = t2 + 5;
    }
    t2 = t1 + 6;
    t1 = (t0 >> 1) & 0x239;
    t2 = t2 + 6;
    t2 = (t1 >> 1) & 0x72;
    t1 = t1 ^ (t0 << 1);
    t1 = (t0 >> 1) & 0x186;
    t1 = t1 + 2;
    if (t1 > 6) {
        t1 = t1 + 4;
        t2 = t1 ^ (t1 << 3);
        t1 = t0 + 9;
    }
    else {
        t1 = t1 ^ (t2 << 1);
        t1 = (t0 >> 1) & 0x73;
        t1 = t0 + 6;
    }
    t1 = (t2 >> 1) & 0x122;
    t1 = t1 - t1;
    t1 = t2 + 7;
    t2 = t1 ^ (t0 << 3);
    t2 = t1 + 7;
    t1 = t0 - t1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t1 >> 1) & 0x161;
    t1 = t0 ^ (t1 << 4);
    t2 = t0 + 2;
    t2 = t0 ^ (t0 << 2);
    t1 = (t2 >> 1) & 0x118;
    t2 = t1 + 2;
    t2 = t0 ^ (t1 << 3);
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x82;
    t1 = t2 + 3;
    t2 = t1 - t0;
    t1 = (t0 >> 1) & 0x174;
    t1 = t1 + 8;
    t2 = t0 - t0;
    t1 = t2 - t1;
    t1 = (t0 >> 1) & 0x243;
    t1 = t2 + 6;
    t2 = t2 ^ (t1 << 3);
    t2 = t1 ^ (t0 << 2);
    t1 = t2 - t0;
    t1 = t2 ^ (t0 << 4);
}
