/* bitvector protocol: normal routine */
void sub_PILocalAck2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 18;
    int t2 = 14;
    int db = 0;
    t1 = t2 + 9;
    t1 = t2 - t0;
    t1 = t2 ^ (t1 << 4);
    t2 = t1 ^ (t0 << 3);
    if (t1 > 12) {
        t2 = t0 + 8;
        t2 = t2 ^ (t2 << 1);
        t2 = (t2 >> 1) & 0x181;
    }
    else {
        t1 = t0 - t1;
        t1 = t2 ^ (t2 << 4);
        t1 = (t2 >> 1) & 0x41;
    }
    t2 = (t1 >> 1) & 0x243;
    t2 = t0 ^ (t2 << 4);
    t2 = t2 ^ (t0 << 1);
    t2 = t1 + 8;
    if (t2 > 7) {
        t2 = t2 + 2;
        t1 = t0 - t0;
        t1 = t1 ^ (t1 << 4);
    }
    else {
        t1 = t2 - t0;
        t2 = t1 + 5;
        t2 = t0 ^ (t2 << 1);
    }
    t1 = (t0 >> 1) & 0x11;
    t1 = (t2 >> 1) & 0x211;
    t1 = t2 + 9;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 - t2;
    t2 = (t2 >> 1) & 0x41;
    t1 = (t0 >> 1) & 0x82;
    t2 = t0 ^ (t2 << 1);
    t2 = t0 ^ (t1 << 4);
    t1 = (t2 >> 1) & 0x252;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t1 ^ (t0 << 4);
    t1 = t0 + 4;
    t2 = (t2 >> 1) & 0x61;
    t2 = t0 + 1;
    t2 = (t0 >> 1) & 0x93;
    t2 = t0 + 7;
    t2 = t2 - t2;
    t2 = (t0 >> 1) & 0x35;
    t2 = t0 ^ (t0 << 3);
    t2 = t0 + 8;
    t2 = t2 - t2;
    t2 = t2 - t2;
    t1 = t0 + 4;
    t2 = t1 - t0;
    t1 = t0 ^ (t1 << 4);
    t1 = t1 + 8;
    t2 = t2 ^ (t1 << 4);
}
