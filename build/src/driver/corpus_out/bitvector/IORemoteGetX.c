/* bitvector protocol: hardware handler */
void IORemoteGetX(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 29;
    int t2 = 1;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
