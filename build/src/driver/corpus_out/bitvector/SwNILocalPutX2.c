/* bitvector protocol: software handler */
void SwNILocalPutX2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 8;
    int db = 0;
    t2 = t2 - t1;
    t1 = t1 - t1;
    t2 = t0 - t1;
    t1 = t2 + 7;
    t2 = t0 ^ (t1 << 4);
    t1 = (t2 >> 1) & 0x192;
    if (t2 > 13) {
        t1 = t0 ^ (t0 << 1);
        t1 = (t1 >> 1) & 0x124;
        t1 = t1 - t0;
    }
    else {
        t2 = t0 - t2;
        t1 = t2 + 6;
        t1 = t0 - t0;
    }
    t1 = (t2 >> 1) & 0x174;
    t2 = t1 ^ (t0 << 3);
    t1 = t2 - t0;
    t2 = t2 - t2;
    t1 = (t0 >> 1) & 0x109;
    t2 = (t2 >> 1) & 0x75;
    if (t1 > 3) {
        t1 = t1 + 5;
        t1 = (t0 >> 1) & 0x187;
        t1 = t0 - t1;
    }
    else {
        t1 = t0 - t0;
        t2 = t0 ^ (t0 << 4);
        t2 = t2 ^ (t2 << 2);
    }
    t2 = t1 - t2;
    t1 = t0 + 6;
    t2 = (t0 >> 1) & 0x55;
    t2 = t0 ^ (t1 << 4);
    t2 = t2 - t2;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t2 - t2;
    t2 = t0 + 7;
    t2 = t0 ^ (t2 << 4);
    t2 = t1 - t1;
    t2 = t0 + 1;
    t2 = t0 + 3;
    t2 = (t2 >> 1) & 0x246;
    t1 = t2 ^ (t0 << 3);
    t1 = (t0 >> 1) & 0x185;
    t2 = (t1 >> 1) & 0x150;
    t1 = t1 + 7;
    t1 = (t2 >> 1) & 0x212;
    t1 = t0 - t2;
    t1 = t0 + 8;
    t1 = (t1 >> 1) & 0x184;
    t1 = t1 + 4;
}
