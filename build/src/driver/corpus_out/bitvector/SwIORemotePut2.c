/* bitvector protocol: software handler */
void SwIORemotePut2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 20;
    int t2 = 30;
    int db = 0;
    t1 = t1 - t2;
    t1 = t1 + 6;
    t1 = t2 - t0;
    t1 = t0 + 8;
    if (t1 > 12) {
        t2 = t1 + 8;
        t1 = t2 + 3;
        t2 = t1 - t2;
    }
    else {
        t2 = t2 + 6;
        t1 = t2 + 8;
        t1 = (t0 >> 1) & 0x96;
    }
    t1 = t1 + 1;
    t2 = (t0 >> 1) & 0x205;
    t2 = t0 ^ (t1 << 4);
    t2 = t2 - t2;
    if (t0 > 6) {
        t1 = (t1 >> 1) & 0x137;
        t2 = (t2 >> 1) & 0x137;
        t1 = (t0 >> 1) & 0x47;
    }
    else {
        t2 = t1 + 8;
        t2 = t0 ^ (t2 << 2);
        t2 = (t2 >> 1) & 0x46;
    }
    t2 = t2 + 1;
    t2 = t1 ^ (t0 << 3);
    t2 = t1 + 5;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t0 + 6;
    t1 = (t1 >> 1) & 0x115;
    t2 = t0 - t0;
    t2 = t1 - t0;
    t2 = t2 - t2;
    t1 = t0 - t2;
    t2 = t0 - t0;
    t2 = t1 ^ (t0 << 2);
    t2 = (t2 >> 1) & 0x59;
    t2 = t0 ^ (t1 << 1);
    t2 = t2 ^ (t1 << 1);
    t1 = t2 + 8;
    t2 = (t0 >> 1) & 0x223;
    t2 = t1 ^ (t2 << 4);
}
