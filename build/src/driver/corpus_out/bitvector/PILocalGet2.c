/* bitvector protocol: hardware handler */
void PILocalGet2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 19;
    int t2 = 1;
    t2 = t1 - t1;
    t1 = t2 + 7;
    t1 = t0 ^ (t1 << 4);
    t2 = t2 + 7;
    t2 = t2 ^ (t0 << 1);
    t2 = t0 - t0;
    t2 = t0 + 1;
    if (t1 > 5) {
        t1 = t0 - t1;
        t2 = t0 + 6;
        t2 = (t1 >> 1) & 0x126;
    }
    else {
        t1 = t0 - t0;
        t2 = t1 + 8;
        t2 = t1 + 9;
    }
    t1 = t0 + 7;
    t2 = t0 - t0;
    t1 = t1 + 2;
    t2 = t2 + 7;
    t1 = t1 ^ (t2 << 1);
    t1 = t2 ^ (t1 << 2);
    if (t0 > 8) {
        t1 = t1 - t2;
        t2 = t1 - t0;
        t1 = t2 + 5;
    }
    else {
        t1 = t1 ^ (t1 << 2);
        t2 = (t0 >> 1) & 0x27;
        t1 = t2 ^ (t1 << 3);
    }
    t1 = t0 ^ (t0 << 2);
    t2 = t0 ^ (t1 << 3);
    t1 = (t2 >> 1) & 0x137;
    t2 = t1 ^ (t0 << 4);
    t1 = (t1 >> 1) & 0x176;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 - t0;
    t1 = t1 + 3;
    t1 = t2 ^ (t1 << 1);
    t1 = (t0 >> 1) & 0x203;
    t1 = t2 ^ (t1 << 2);
    t1 = t2 + 4;
    t1 = t2 + 1;
    t2 = t2 + 2;
    t2 = t0 + 8;
    t2 = (t1 >> 1) & 0x26;
    t1 = t1 ^ (t0 << 2);
    t1 = (t1 >> 1) & 0x208;
    t1 = t0 - t1;
    t2 = t1 - t0;
    t2 = t0 + 5;
    t1 = t1 ^ (t0 << 1);
    t2 = t0 + 4;
    t2 = (t0 >> 1) & 0x189;
    t2 = t1 + 2;
    t2 = (t2 >> 1) & 0x158;
    FREE_DB();
}
