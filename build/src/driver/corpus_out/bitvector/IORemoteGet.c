/* bitvector protocol: hardware handler */
void IORemoteGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 24;
    int t2 = 2;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
