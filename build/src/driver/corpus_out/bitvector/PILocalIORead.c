/* bitvector protocol: hardware handler */
void PILocalIORead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 30;
    int t2 = 25;
    t2 = t1 - t0;
    t1 = t2 ^ (t0 << 1);
    t1 = (t0 >> 1) & 0x125;
    t2 = t1 ^ (t2 << 2);
    t1 = t2 - t2;
    t1 = t0 ^ (t0 << 1);
    t2 = (t2 >> 1) & 0x67;
    if (t2 > 13) {
        t2 = t2 + 4;
        t2 = t1 - t0;
        t2 = (t0 >> 1) & 0x8;
    }
    else {
        t2 = t0 - t0;
        t2 = t1 ^ (t2 << 2);
        t2 = (t0 >> 1) & 0x63;
    }
    t2 = (t1 >> 1) & 0x87;
    t1 = t0 + 6;
    t2 = t1 - t1;
    t1 = t1 ^ (t1 << 4);
    t1 = (t2 >> 1) & 0x141;
    t2 = t0 + 6;
    t1 = t0 - t2;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 - t1;
    t1 = t0 ^ (t1 << 2);
    t2 = t1 + 4;
    t1 = (t0 >> 1) & 0x108;
    t1 = t1 + 8;
    t1 = t1 ^ (t2 << 2);
    t1 = t0 - t0;
    t2 = t2 + 7;
    t1 = t2 ^ (t1 << 1);
    t1 = t1 - t1;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t1 >> 1) & 0x213;
    t1 = t2 - t1;
    t2 = t1 - t1;
    t1 = t1 + 7;
    t2 = t0 + 1;
    t2 = t2 + 6;
    t1 = t2 + 5;
    t1 = (t2 >> 1) & 0x74;
    t2 = t0 ^ (t0 << 4);
    t1 = t1 - t0;
    t2 = (t2 >> 1) & 0x45;
    t1 = (t0 >> 1) & 0x202;
    t2 = t2 ^ (t2 << 2);
    t1 = t1 - t0;
    t1 = t2 + 6;
    t1 = (t2 >> 1) & 0x141;
    t1 = t0 + 2;
    t2 = t0 - t0;
    t1 = t0 + 6;
    t1 = t2 + 5;
    FREE_DB();
}
