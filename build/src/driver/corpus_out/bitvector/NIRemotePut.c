/* bitvector protocol: hardware handler */
void NIRemotePut(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 5;
    int t2 = 14;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
