/* bitvector protocol: normal routine */
void sub_PILocalNak2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 5;
    t2 = (t0 >> 1) & 0x236;
    t2 = (t2 >> 1) & 0x39;
    t1 = t2 + 4;
    t1 = t0 - t0;
    t1 = t2 - t0;
    t2 = t0 - t2;
    t2 = t1 ^ (t2 << 3);
    t1 = t2 - t0;
    if (t1 > 12) {
        t2 = (t0 >> 1) & 0x218;
        t2 = t2 - t1;
        t1 = (t2 >> 1) & 0x134;
    }
    else {
        t1 = t0 ^ (t1 << 1);
        t1 = t1 - t2;
        t2 = (t1 >> 1) & 0x250;
    }
    t2 = t1 ^ (t2 << 3);
    t1 = (t0 >> 1) & 0x56;
    t1 = t2 + 1;
    t1 = t2 + 7;
    t1 = (t2 >> 1) & 0x174;
    t2 = (t2 >> 1) & 0x67;
    t2 = (t1 >> 1) & 0x215;
    if (t1 > 11) {
        t1 = t0 ^ (t2 << 3);
        t1 = t2 + 3;
        t2 = t0 - t1;
    }
    else {
        t2 = t0 + 6;
        t1 = (t0 >> 1) & 0x138;
        t2 = t0 + 6;
    }
    t1 = t0 + 4;
    t1 = t1 ^ (t2 << 3);
    t2 = t1 + 5;
    t1 = t0 - t2;
    t2 = t0 + 2;
    t1 = (t1 >> 1) & 0x91;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 + 5;
    t2 = (t1 >> 1) & 0x31;
    t2 = (t2 >> 1) & 0x224;
    t1 = t1 - t1;
    t1 = (t0 >> 1) & 0x152;
    t2 = t0 + 4;
    t2 = t1 + 9;
    t1 = t2 - t1;
    t1 = (t2 >> 1) & 0x76;
    t1 = (t2 >> 1) & 0x105;
    t1 = t2 ^ (t1 << 3);
    t2 = (t2 >> 1) & 0x101;
    t2 = t1 - t2;
    t2 = t2 + 3;
    t1 = t0 + 9;
    t1 = t1 ^ (t2 << 2);
    t2 = t1 - t0;
    t2 = (t0 >> 1) & 0x226;
    t2 = t1 ^ (t0 << 2);
    t1 = t2 ^ (t0 << 2);
    t1 = t1 ^ (t0 << 4);
}
