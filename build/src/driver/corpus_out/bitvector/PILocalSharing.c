/* bitvector protocol: hardware handler */
void PILocalSharing(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 3;
    int t2 = 10;
    t2 = t1 + 1;
    t1 = t1 ^ (t2 << 4);
    if (t2 > 6) {
        t2 = t0 + 3;
        t1 = t1 - t0;
        t2 = t0 ^ (t1 << 4);
    }
    else {
        t2 = t2 + 9;
        t1 = (t2 >> 1) & 0x178;
        t2 = (t0 >> 1) & 0x98;
    }
    t2 = t1 - t2;
    t1 = (t1 >> 1) & 0x74;
    if (t1 > 9) {
        t1 = t2 - t0;
        t2 = (t1 >> 1) & 0x228;
        t2 = t1 + 9;
    }
    else {
        t1 = t2 - t0;
        t1 = t2 - t2;
        t1 = t2 + 1;
    }
    t2 = t0 - t2;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 - t0;
    t2 = t0 - t0;
    t2 = (t0 >> 1) & 0x179;
    t2 = t1 + 2;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t0 >> 1) & 0x246;
    t2 = t0 ^ (t2 << 2);
    t2 = (t2 >> 1) & 0x102;
    t2 = (t2 >> 1) & 0x201;
    t2 = (t1 >> 1) & 0x37;
    t2 = t1 + 5;
    t2 = t2 ^ (t2 << 2);
    t2 = (t0 >> 1) & 0x97;
    t2 = t0 ^ (t0 << 1);
    t1 = (t0 >> 1) & 0x152;
    t1 = t1 + 3;
    t1 = t0 - t2;
    t2 = t1 + 3;
    t1 = t2 + 8;
    t1 = t0 ^ (t2 << 2);
    FREE_DB();
}
