/* bitvector protocol: hardware handler */
void NIRemoteUncRead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 9;
    t2 = t2 + 2;
    t2 = t0 + 4;
    if (t0 > 11) {
        t2 = t0 ^ (t0 << 2);
        t2 = t2 + 3;
        t2 = t2 - t2;
    }
    else {
        t1 = t1 ^ (t2 << 2);
        t2 = t1 ^ (t0 << 4);
        t2 = t1 - t1;
    }
    t2 = t2 ^ (t1 << 1);
    t1 = t2 - t1;
    if (t0 > 7) {
        t1 = t1 - t0;
        t1 = t0 + 7;
        t2 = t2 + 1;
    }
    else {
        t2 = t2 - t1;
        t1 = t1 + 1;
        t2 = (t2 >> 1) & 0x169;
    }
    t2 = t0 + 4;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 - t2;
    t2 = t1 + 8;
    t1 = t0 - t2;
    t1 = t2 ^ (t2 << 3);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = (t2 >> 1) & 0x64;
    t1 = (t1 >> 1) & 0x38;
    t2 = t1 + 4;
    t1 = (t0 >> 1) & 0x126;
    t1 = (t2 >> 1) & 0x224;
    t1 = t1 + 4;
    t1 = (t0 >> 1) & 0x205;
    t1 = t2 ^ (t2 << 3);
    t2 = (t2 >> 1) & 0x253;
    t2 = t1 - t0;
    t2 = (t2 >> 1) & 0x151;
    t2 = t1 - t2;
    t2 = t0 ^ (t1 << 3);
    t2 = t2 + 1;
    t1 = t2 - t0;
    FREE_DB();
}
