/* bitvector protocol: software handler */
void SwNIRemotePut2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 31;
    int t2 = 18;
    int db = 0;
    t1 = t1 - t1;
    t2 = t0 + 3;
    t2 = (t2 >> 1) & 0x14;
    t1 = t0 ^ (t2 << 1);
    t1 = t1 ^ (t1 << 1);
    t1 = t1 ^ (t1 << 3);
    t2 = t1 - t0;
    t2 = t0 ^ (t2 << 4);
    t2 = t1 ^ (t1 << 2);
    t2 = t2 ^ (t1 << 1);
    t2 = t1 - t2;
    if (t1 > 2) {
        t1 = (t2 >> 1) & 0x109;
        t1 = t0 ^ (t2 << 2);
        t1 = (t2 >> 1) & 0x248;
    }
    else {
        t1 = (t1 >> 1) & 0x145;
        t1 = t0 - t1;
        t2 = (t2 >> 1) & 0x239;
    }
    t1 = t1 - t2;
    t1 = (t2 >> 1) & 0x48;
    t2 = t2 - t0;
    t2 = t1 ^ (t1 << 1);
    t1 = (t0 >> 1) & 0x247;
    t2 = t2 + 7;
    t2 = t0 - t1;
    t2 = t0 - t0;
    t2 = (t2 >> 1) & 0x95;
    t1 = t0 - t2;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t1 = t1 - t1;
    t2 = t2 + 9;
    t1 = (t2 >> 1) & 0x224;
    t1 = (t1 >> 1) & 0x187;
    t1 = (t2 >> 1) & 0x128;
    t1 = t1 ^ (t1 << 1);
    t2 = t2 - t1;
    t2 = t1 ^ (t2 << 1);
    t1 = (t2 >> 1) & 0x114;
    t2 = t0 ^ (t1 << 2);
    t2 = (t1 >> 1) & 0x221;
    t2 = t2 - t1;
    t1 = t1 + 5;
    t1 = t1 + 3;
    t1 = t2 - t0;
    t2 = t0 + 3;
    t2 = t1 - t1;
    t2 = t2 + 5;
    t1 = (t1 >> 1) & 0x149;
    t1 = t2 - t0;
}
