/* bitvector protocol: helper routine */
void free_if_urgent_bitvector(void) {
    PROC_HOOK();
    int t0 = URGENCY_LEVEL();
    if (t0 > 3) {
        FREE_DB();
    }
}
