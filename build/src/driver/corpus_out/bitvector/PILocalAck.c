/* bitvector protocol: hardware handler */
void PILocalAck(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 2;
    int t2 = 29;
    if (t2 > 7) {
        t2 = t1 ^ (t1 << 4);
        t2 = (t1 >> 1) & 0x85;
        t1 = t0 + 3;
    }
    else {
        t1 = t1 ^ (t2 << 3);
        t2 = t1 - t1;
        t1 = t2 - t1;
    }
    if ((t0 & 7) == 5) {
        MISCBUS_READ_DB(t0, t1);
    }
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_IACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 + 1;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = (t0 >> 1) & 0x50;
    t2 = t0 + 6;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t2 = t1 + 1;
    t2 = t2 ^ (t2 << 2);
    t2 = t0 ^ (t1 << 3);
    t1 = t2 + 4;
    retry_spin_bitvector();
    t1 = t1 ^ (t0 << 3);
    t2 = t1 ^ (t0 << 1);
    t1 = t1 ^ (t0 << 4);
    t1 = t2 - t1;
    t2 = t1 ^ (t1 << 2);
    t2 = (t0 >> 1) & 0x160;
    t2 = t0 ^ (t2 << 1);
    t2 = t1 - t0;
    t1 = t0 + 9;
    t1 = t0 - t0;
    t1 = t2 + 3;
    t1 = t0 ^ (t2 << 3);
    t1 = t0 + 7;
    t2 = t2 - t1;
    t2 = (t0 >> 1) & 0x115;
    t2 = t0 + 8;
    t1 = (t0 >> 1) & 0x155;
    t1 = t1 ^ (t0 << 3);
    t2 = t2 ^ (t0 << 1);
    t1 = t2 + 2;
    FREE_DB();
}
