/* bitvector protocol: normal routine */
void sub_PIRemoteUncRead2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 4;
    int t2 = 2;
    t1 = (t1 >> 1) & 0x131;
    t1 = t2 - t2;
    t2 = t1 - t0;
    t2 = t2 + 2;
    t1 = t1 + 7;
    t1 = t2 - t2;
    t2 = (t1 >> 1) & 0x122;
    t2 = t0 - t1;
    t1 = (t2 >> 1) & 0x81;
    if (t1 > 11) {
        t1 = t2 - t0;
        t2 = t2 ^ (t0 << 4);
        t2 = t1 + 3;
    }
    else {
        t1 = t1 ^ (t2 << 3);
        t2 = t0 ^ (t1 << 3);
        t1 = t2 ^ (t0 << 3);
    }
    t2 = t0 ^ (t1 << 2);
    t2 = t1 ^ (t1 << 4);
    t1 = t1 + 9;
    t2 = (t2 >> 1) & 0x239;
    t2 = (t1 >> 1) & 0x150;
    t1 = t0 - t1;
    t1 = t1 + 5;
    t2 = t1 + 4;
    if (t2 > 10) {
        t2 = t0 + 4;
        t1 = t0 + 5;
        t1 = t1 + 1;
    }
    else {
        t2 = t2 - t2;
        t2 = t2 ^ (t1 << 4);
        t1 = t1 + 5;
    }
    t2 = (t2 >> 1) & 0x21;
    t2 = t2 ^ (t1 << 4);
    t1 = t0 ^ (t0 << 2);
    t2 = t2 + 3;
    t1 = t1 ^ (t2 << 2);
    t1 = (t2 >> 1) & 0x90;
    t2 = t0 - t2;
    t1 = t2 - t1;
    t1 = t1 - t0;
    t2 = t2 + 2;
    t2 = t1 - t2;
    t1 = t1 - t0;
    t1 = t1 ^ (t2 << 2);
    t1 = t2 - t1;
    t1 = t1 - t0;
}
