/* bitvector protocol: hardware handler */
void NIRemoteWB(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 16;
    int t2 = 19;
    t2 = t0 ^ (t1 << 3);
    t2 = t0 - t1;
    t1 = t0 ^ (t2 << 1);
    t1 = t1 + 3;
    t1 = t2 - t1;
    t1 = t1 + 5;
    t1 = t0 - t1;
    if (t0 > 11) {
        t2 = (t1 >> 1) & 0x150;
        t1 = (t0 >> 1) & 0x155;
        t2 = (t0 >> 1) & 0x162;
    }
    else {
        t2 = t0 ^ (t2 << 4);
        t2 = t0 ^ (t2 << 2);
        t2 = t2 - t2;
    }
    t1 = t0 ^ (t0 << 2);
    t1 = t2 - t2;
    t1 = t2 - t0;
    t2 = t0 + 5;
    t2 = (t1 >> 1) & 0x103;
    t1 = (t2 >> 1) & 0x119;
    t1 = t2 + 9;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_ACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t2 >> 1) & 0x108;
    t1 = t1 ^ (t1 << 4);
    t1 = t2 ^ (t1 << 4);
    t2 = t1 ^ (t1 << 4);
    t2 = t2 - t2;
    t1 = t2 - t2;
    t1 = (t2 >> 1) & 0x7;
    t2 = (t0 >> 1) & 0x188;
    t1 = t0 - t1;
    t1 = (t2 >> 1) & 0x132;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t0 - t1;
    t2 = t2 ^ (t0 << 4);
    t1 = t2 ^ (t1 << 3);
    t2 = t2 + 5;
    t1 = t0 + 4;
    t2 = t0 ^ (t1 << 3);
    t1 = t1 - t1;
    t2 = t1 - t2;
    t1 = t2 ^ (t1 << 4);
    t1 = (t1 >> 1) & 0x230;
    t2 = t2 + 5;
    t1 = t0 + 6;
    t1 = (t2 >> 1) & 0x135;
    t2 = t1 - t1;
    t2 = t1 + 3;
    t2 = t1 ^ (t2 << 2);
    t1 = t0 - t0;
    t1 = (t2 >> 1) & 0x55;
    t1 = t1 - t1;
    t1 = t1 - t1;
    t1 = (t0 >> 1) & 0x144;
    FREE_DB();
}
