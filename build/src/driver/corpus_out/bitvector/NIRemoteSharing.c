/* bitvector protocol: hardware handler */
void NIRemoteSharing(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 13;
    int t2 = 30;
    t1 = t0 ^ (t0 << 1);
    t1 = (t2 >> 1) & 0x147;
    t1 = t2 - t2;
    t2 = (t2 >> 1) & 0x15;
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x181;
    if (t0 > 8) {
        t2 = (t2 >> 1) & 0x219;
        t1 = t2 + 3;
        t2 = t1 + 5;
    }
    else {
        t2 = t0 - t0;
        t2 = (t2 >> 1) & 0x27;
        t1 = t1 ^ (t1 << 4);
    }
    t2 = t2 - t0;
    t2 = t1 - t1;
    t2 = t1 ^ (t2 << 1);
    t1 = t0 ^ (t2 << 4);
    t2 = t2 + 9;
    t1 = t0 + 5;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t0 >> 1) & 0x14;
    t2 = (t0 >> 1) & 0x14;
    t1 = t0 - t0;
    t2 = (t2 >> 1) & 0x30;
    t1 = t1 + 1;
    t1 = t2 ^ (t1 << 4);
    t2 = t2 - t0;
    t2 = t0 + 3;
    t2 = (t2 >> 1) & 0x162;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t2 >> 1) & 0x94;
    t1 = t0 ^ (t0 << 2);
    t2 = (t2 >> 1) & 0x92;
    t1 = t1 - t0;
    t1 = (t1 >> 1) & 0x77;
    t2 = (t2 >> 1) & 0x128;
    t1 = t2 ^ (t0 << 4);
    t2 = t1 ^ (t0 << 4);
    t2 = t1 - t0;
    t1 = t1 + 6;
    t2 = (t0 >> 1) & 0x53;
    t2 = t2 - t2;
    t1 = t0 ^ (t2 << 3);
    t1 = t1 - t1;
    t1 = t1 + 9;
    t1 = t2 - t1;
    t1 = (t1 >> 1) & 0x91;
    t2 = (t2 >> 1) & 0x219;
    t1 = (t1 >> 1) & 0x156;
    FREE_DB();
}
