/* bitvector protocol: hardware handler */
void IORemoteIORead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 5;
    int t2 = 21;
    t1 = (t0 >> 1) & 0x66;
    t2 = (t1 >> 1) & 0x124;
    t2 = t1 + 4;
    t2 = (t1 >> 1) & 0x61;
    t1 = t1 + 7;
    t2 = t0 + 9;
    t1 = t2 + 9;
    if (t2 > 8) {
        t1 = (t1 >> 1) & 0x25;
        t1 = t2 ^ (t2 << 2);
        t2 = t2 - t2;
    }
    else {
        t1 = t2 + 7;
        t1 = t2 - t2;
        t2 = (t0 >> 1) & 0x248;
    }
    t1 = t2 ^ (t1 << 3);
    t2 = (t2 >> 1) & 0x126;
    t2 = (t2 >> 1) & 0x34;
    t2 = t2 - t2;
    t2 = t1 + 5;
    t2 = t2 ^ (t0 << 2);
    t2 = t2 - t0;
    if (t1 > 4) {
        t2 = (t2 >> 1) & 0x152;
        t2 = t0 - t0;
        t1 = t1 ^ (t2 << 2);
    }
    else {
        t2 = t1 - t2;
        t2 = t0 ^ (t1 << 2);
        t2 = (t0 >> 1) & 0x226;
    }
    t2 = t1 ^ (t1 << 2);
    t2 = (t1 >> 1) & 0x194;
    t1 = (t0 >> 1) & 0x148;
    t2 = (t2 >> 1) & 0x168;
    t1 = t2 + 3;
    t1 = t2 ^ (t0 << 3);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_IACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t0 ^ (t0 << 4);
    t2 = t1 + 1;
    t2 = (t2 >> 1) & 0x122;
    t2 = t1 - t0;
    t1 = t2 - t0;
    t1 = t1 + 8;
    t1 = t2 ^ (t0 << 4);
    t1 = t0 + 5;
    t2 = t1 + 9;
    t1 = t2 - t2;
    t1 = (t2 >> 1) & 0x9;
    t2 = t1 - t0;
    t1 = t0 ^ (t0 << 1);
    t1 = t0 + 4;
    t2 = t0 + 3;
    t1 = t0 ^ (t1 << 3);
    t2 = (t1 >> 1) & 0x90;
    t2 = (t1 >> 1) & 0x150;
    t2 = t1 - t1;
    t1 = (t1 >> 1) & 0x174;
    t1 = t2 + 6;
    FREE_DB();
}
