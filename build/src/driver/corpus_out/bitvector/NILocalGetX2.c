/* bitvector protocol: hardware handler */
void NILocalGetX2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 16;
    int t2 = 2;
    t2 = t1 ^ (t1 << 2);
    t1 = (t1 >> 1) & 0x100;
    t1 = t1 - t2;
    t2 = t2 - t1;
    t2 = t2 ^ (t2 << 1);
    if (t0 > 13) {
        t2 = t2 ^ (t1 << 1);
        t2 = (t1 >> 1) & 0x237;
        t2 = (t1 >> 1) & 0x158;
    }
    else {
        t2 = (t0 >> 1) & 0x19;
        t1 = t0 - t2;
        t1 = (t2 >> 1) & 0x141;
    }
    t1 = (t2 >> 1) & 0x7;
    t1 = t0 - t0;
    t1 = t2 ^ (t0 << 1);
    t2 = t2 ^ (t2 << 3);
    if (t0 > 7) {
        t2 = t1 - t1;
        t1 = t2 + 9;
        t2 = t1 + 7;
    }
    else {
        t1 = (t1 >> 1) & 0x158;
        t1 = t2 ^ (t0 << 3);
        t2 = t0 + 3;
    }
    t2 = (t2 >> 1) & 0x128;
    t1 = (t0 >> 1) & 0x38;
    t1 = t2 + 8;
    t2 = (t0 >> 1) & 0x69;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_IACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = (t0 >> 1) & 0x178;
    t2 = t1 ^ (t1 << 1);
    t2 = t1 ^ (t0 << 2);
    t1 = t1 - t0;
    t1 = t2 + 3;
    t1 = t0 - t1;
    t2 = (t0 >> 1) & 0x6;
    t2 = t2 + 3;
    t2 = t0 - t0;
    t1 = t1 - t1;
    t1 = t1 - t2;
    t2 = (t1 >> 1) & 0x201;
    t2 = t2 ^ (t1 << 2);
    t2 = t2 - t0;
    t2 = (t0 >> 1) & 0x185;
    t1 = t1 ^ (t0 << 3);
    t1 = t0 - t0;
    t1 = t0 + 9;
    FREE_DB();
}
