/* bitvector protocol: hardware handler */
void IORemoteUncRead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 1;
    int t2 = 4;
    t1 = t2 ^ (t0 << 4);
    t2 = t2 ^ (t2 << 2);
    t2 = t2 ^ (t2 << 2);
    t2 = t0 ^ (t2 << 4);
    t1 = t0 + 1;
    if (t2 > 9) {
        t1 = t2 ^ (t0 << 4);
        t1 = t1 ^ (t1 << 4);
        t1 = t0 ^ (t1 << 1);
    }
    else {
        t1 = (t1 >> 1) & 0x220;
        t2 = t2 ^ (t0 << 4);
        t2 = (t0 >> 1) & 0x110;
    }
    t2 = t1 ^ (t2 << 4);
    t2 = t2 ^ (t2 << 3);
    t1 = t1 ^ (t2 << 2);
    t2 = t0 - t2;
    t2 = (t2 >> 1) & 0x33;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t1 >> 1) & 0x23;
    t2 = t0 ^ (t1 << 3);
    t1 = t2 + 1;
    t1 = t0 - t0;
    t2 = t2 ^ (t0 << 2);
    t1 = t2 ^ (t0 << 4);
    t2 = t0 + 2;
    t1 = (t0 >> 1) & 0x24;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 + 1;
    t2 = (t0 >> 1) & 0x28;
    t1 = t1 - t1;
    t1 = t1 + 6;
    t1 = t1 - t1;
    t1 = (t1 >> 1) & 0x28;
    t1 = t2 ^ (t2 << 1);
    t2 = t2 + 1;
    t2 = (t2 >> 1) & 0x209;
    t2 = t0 - t2;
    t2 = (t1 >> 1) & 0x10;
    t1 = t0 - t0;
    t2 = t2 - t1;
    t2 = t2 ^ (t0 << 1);
    t2 = (t1 >> 1) & 0x224;
    t2 = t1 - t1;
    t2 = t2 - t2;
    t2 = (t2 >> 1) & 0x70;
    FREE_DB();
}
