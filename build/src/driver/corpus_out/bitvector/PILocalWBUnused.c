/* bitvector protocol: hardware handler */
void PILocalWBUnused(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 7;
    int t2 = 17;
    t2 = t0 - t0;
    t2 = t2 ^ (t2 << 2);
    if (t2 > 11) {
        t2 = (t2 >> 1) & 0x173;
        t1 = t1 + 6;
        t2 = (t2 >> 1) & 0x243;
    }
    else {
        t1 = t2 ^ (t2 << 4);
        t1 = t0 ^ (t0 << 2);
        t2 = t2 + 5;
    }
    t1 = (t0 >> 1) & 0x201;
    if (t1 > 4) {
        t1 = t2 ^ (t2 << 4);
        t1 = (t2 >> 1) & 0x75;
        t1 = t1 + 2;
    }
    else {
        t2 = (t1 >> 1) & 0x164;
        t2 = t0 ^ (t2 << 1);
        t2 = t0 ^ (t2 << 3);
    }
    t1 = (t1 >> 1) & 0x73;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 ^ (t0 << 3);
    t1 = (t1 >> 1) & 0x78;
    t2 = t1 ^ (t1 << 2);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 - t2;
    t2 = t1 - t1;
    t2 = (t0 >> 1) & 0x208;
    t1 = t1 + 7;
    if ((t0 & 15) == 3) {
        FREE_DB();
    }
    t1 = t2 + 8;
    t2 = t1 + 1;
    t1 = t0 ^ (t0 << 2);
    t1 = (t1 >> 1) & 0x33;
    t2 = t2 + 1;
    t2 = (t1 >> 1) & 0x249;
    t1 = t2 ^ (t0 << 4);
    t1 = (t1 >> 1) & 0x241;
    t1 = t0 - t1;
    t2 = t2 ^ (t2 << 4);
    t2 = t2 ^ (t1 << 2);
    t2 = t2 + 9;
    t1 = t1 ^ (t2 << 1);
    t2 = t1 + 9;
    t2 = (t1 >> 1) & 0x236;
    t2 = t0 ^ (t1 << 3);
    t2 = (t1 >> 1) & 0x57;
    t1 = t1 ^ (t0 << 4);
    FREE_DB();
}
