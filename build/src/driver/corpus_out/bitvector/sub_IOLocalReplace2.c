/* bitvector protocol: normal routine */
void sub_IOLocalReplace2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 2;
    int t2 = 10;
    t1 = t0 - t0;
    t1 = t1 ^ (t1 << 3);
    t1 = t1 - t1;
    t2 = t1 ^ (t2 << 3);
    t1 = t2 + 7;
    t1 = (t1 >> 1) & 0x114;
    t1 = (t0 >> 1) & 0x193;
    t1 = t0 ^ (t2 << 4);
    t2 = t2 + 3;
    t2 = t1 ^ (t0 << 1);
    if (t2 > 10) {
        t2 = t2 + 4;
        t2 = t2 + 8;
        t1 = (t0 >> 1) & 0x234;
    }
    else {
        t2 = t1 ^ (t0 << 3);
        t2 = t1 ^ (t1 << 1);
        t1 = t0 ^ (t0 << 1);
    }
    t1 = (t2 >> 1) & 0x170;
    t2 = t0 + 7;
    t2 = (t2 >> 1) & 0x170;
    t2 = t0 ^ (t0 << 1);
    t2 = t2 - t2;
    t1 = t0 - t2;
    t1 = t0 - t0;
    t2 = t2 + 8;
    t2 = t0 + 9;
    if (t1 > 4) {
        t2 = t1 + 2;
        t1 = t1 ^ (t0 << 1);
        t2 = t2 + 1;
    }
    else {
        t2 = t1 - t0;
        t1 = t1 - t2;
        t1 = t1 - t1;
    }
    t2 = t0 + 7;
    t1 = (t2 >> 1) & 0x230;
    t2 = t2 ^ (t1 << 1);
    t2 = t1 + 4;
    t1 = (t1 >> 1) & 0x212;
    t2 = t0 ^ (t2 << 2);
    t1 = t1 ^ (t2 << 3);
    t1 = t1 + 3;
    t1 = (t1 >> 1) & 0x209;
    t1 = t0 ^ (t0 << 4);
    t1 = t2 - t1;
    t1 = (t0 >> 1) & 0x19;
    t2 = (t2 >> 1) & 0x27;
    t1 = t0 + 5;
    t1 = (t2 >> 1) & 0x77;
    t1 = t2 + 1;
}
