/* bitvector protocol: normal routine */
void sub_PIRemoteSharing2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 21;
    t2 = t0 + 6;
    t2 = t1 - t0;
    t1 = t0 ^ (t2 << 1);
    t2 = t1 + 9;
    t1 = t2 ^ (t2 << 4);
    t1 = t0 - t1;
    t2 = t2 + 8;
    t2 = t0 - t2;
    t1 = (t0 >> 1) & 0x55;
    if (t1 > 11) {
        t1 = (t0 >> 1) & 0x138;
        t2 = t0 ^ (t2 << 2);
        t1 = (t0 >> 1) & 0x15;
    }
    else {
        t1 = (t2 >> 1) & 0x41;
        t1 = t0 ^ (t2 << 1);
        t1 = t1 - t0;
    }
    t2 = t0 + 7;
    t2 = t0 + 1;
    t1 = t1 ^ (t0 << 2);
    t1 = (t1 >> 1) & 0x121;
    t2 = t0 - t1;
    t1 = (t1 >> 1) & 0x128;
    t2 = t0 - t1;
    t1 = t0 - t2;
    if (t1 > 10) {
        t1 = t2 - t1;
        t2 = t0 ^ (t2 << 2);
        t1 = t1 + 2;
    }
    else {
        t1 = (t1 >> 1) & 0x182;
        t2 = (t1 >> 1) & 0x110;
        t2 = t0 + 8;
    }
    t1 = t1 + 7;
    t1 = t1 + 5;
    t2 = t0 + 2;
    t1 = t0 + 1;
    t2 = t1 + 1;
    t2 = t0 + 8;
    t2 = t0 - t2;
    t2 = t0 + 9;
    t2 = t0 - t0;
    t2 = t1 + 6;
    t1 = t0 ^ (t0 << 4);
    t1 = t2 ^ (t2 << 4);
    t2 = t0 ^ (t0 << 3);
    t1 = t0 + 2;
    t2 = t2 + 2;
}
