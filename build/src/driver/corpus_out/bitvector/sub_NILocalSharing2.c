/* bitvector protocol: normal routine */
void sub_NILocalSharing2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 23;
    int t2 = 12;
    t1 = t0 ^ (t1 << 4);
    t2 = t1 - t2;
    t1 = t0 - t0;
    t1 = t0 + 2;
    t1 = t0 - t0;
    t1 = t2 - t2;
    t2 = t2 - t2;
    t1 = (t0 >> 1) & 0x128;
    t2 = (t2 >> 1) & 0x236;
    t1 = t2 + 3;
    t1 = t1 - t0;
    t1 = t0 + 7;
    t1 = t2 + 8;
    t2 = t2 ^ (t1 << 3);
    t1 = t0 + 4;
    t2 = t1 - t0;
    t1 = t2 ^ (t0 << 3);
    t1 = t0 + 7;
    t1 = t2 + 4;
    if (t1 > 12) {
        t2 = t0 + 1;
        t2 = (t1 >> 1) & 0x136;
        t1 = (t0 >> 1) & 0x64;
    }
    else {
        t1 = t1 ^ (t1 << 3);
        t2 = t1 - t0;
        t2 = t1 + 4;
    }
    t1 = (t1 >> 1) & 0x56;
    t2 = t1 - t0;
    t1 = t2 - t0;
    t2 = t2 - t2;
    t2 = t0 ^ (t0 << 4);
    t2 = t1 - t2;
    t1 = t1 - t1;
    t1 = t2 + 5;
    t2 = t1 ^ (t0 << 4);
    t1 = t0 - t1;
    t1 = t2 ^ (t2 << 2);
    t2 = t2 ^ (t1 << 1);
    t2 = t0 ^ (t1 << 4);
    t1 = t2 - t0;
    t2 = t2 ^ (t2 << 1);
    t2 = (t0 >> 1) & 0x216;
    t1 = (t1 >> 1) & 0x120;
    t1 = t0 ^ (t2 << 4);
    t2 = t1 - t0;
    t2 = t0 + 4;
    t2 = (t0 >> 1) & 0x72;
    t2 = t1 - t0;
    t2 = (t0 >> 1) & 0x160;
    t2 = (t1 >> 1) & 0x13;
    t2 = t0 ^ (t1 << 4);
}
