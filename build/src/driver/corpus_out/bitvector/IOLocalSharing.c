/* bitvector protocol: hardware handler */
void IOLocalSharing(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 6;
    int t2 = 0;
    t1 = t2 - t1;
    t1 = t0 - t2;
    if (t0 > 3) {
        t2 = t1 - t2;
        t2 = t2 - t1;
        t1 = t2 ^ (t2 << 2);
    }
    else {
        t2 = t0 + 2;
        t2 = t0 + 4;
        t2 = t0 - t1;
    }
    t2 = t1 + 1;
    t1 = t0 + 4;
    if (t1 > 5) {
        t1 = t0 + 2;
        t1 = t1 ^ (t0 << 3);
        t1 = t0 + 1;
    }
    else {
        t2 = (t1 >> 1) & 0x85;
        t1 = t0 + 7;
        t1 = (t0 >> 1) & 0x186;
    }
    t2 = (t2 >> 1) & 0x22;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 + 4;
    t1 = t2 ^ (t2 << 3);
    t1 = t2 ^ (t2 << 2);
    t2 = t2 + 1;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = (t2 >> 1) & 0x147;
    t1 = t1 + 5;
    t2 = (t0 >> 1) & 0x89;
    t1 = t1 + 1;
    t2 = (t1 >> 1) & 0x7;
    t2 = (t1 >> 1) & 0x230;
    t2 = t2 + 1;
    t2 = t0 - t0;
    t1 = t2 + 8;
    t1 = t0 ^ (t0 << 3);
    t1 = t1 + 9;
    t1 = t2 + 4;
    t2 = t0 - t2;
    t2 = (t0 >> 1) & 0x78;
    t2 = t2 ^ (t0 << 4);
    FREE_DB();
}
