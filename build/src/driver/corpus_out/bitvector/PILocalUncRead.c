/* bitvector protocol: hardware handler */
void PILocalUncRead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 15;
    int t2 = 10;
    t2 = t1 - t2;
    t1 = t0 ^ (t0 << 4);
    t2 = t0 - t1;
    t1 = (t0 >> 1) & 0x216;
    if (t1 > 5) {
        t1 = t2 - t0;
        t1 = t2 - t2;
        t2 = t0 + 8;
    }
    else {
        t2 = t2 + 6;
        t1 = t2 - t1;
        t1 = t2 ^ (t2 << 4);
    }
    t2 = t1 - t1;
    t1 = t0 + 9;
    t2 = t1 + 1;
    t1 = t1 ^ (t1 << 4);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = (t1 >> 1) & 0x17;
    t1 = t2 - t1;
    t1 = (t0 >> 1) & 0x186;
    t1 = t0 ^ (t0 << 3);
    t1 = (t0 >> 1) & 0x18;
    t1 = t0 ^ (t2 << 4);
    t2 = t2 - t1;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t0 ^ (t1 << 2);
    t1 = t2 + 5;
    t1 = t0 + 7;
    t1 = t1 + 6;
    t1 = (t2 >> 1) & 0x37;
    t1 = t0 - t2;
    t1 = t1 ^ (t0 << 4);
    t1 = t2 + 4;
    t1 = t0 ^ (t1 << 1);
    t2 = (t2 >> 1) & 0x8;
    t1 = (t0 >> 1) & 0x41;
    t1 = t1 - t2;
    t1 = t2 ^ (t2 << 1);
    t1 = (t2 >> 1) & 0x228;
    t1 = t2 ^ (t1 << 3);
    t1 = t2 - t0;
    t1 = t2 + 1;
    t2 = (t1 >> 1) & 0x25;
    FREE_DB();
}
