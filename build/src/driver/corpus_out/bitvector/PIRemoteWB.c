/* bitvector protocol: hardware handler */
void PIRemoteWB(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 10;
    int t2 = 6;
    t2 = t2 + 6;
    t2 = (t0 >> 1) & 0x41;
    t1 = t2 + 3;
    t2 = t0 + 4;
    if (t0 > 9) {
        t2 = (t0 >> 1) & 0x206;
        t1 = t2 ^ (t0 << 2);
        t2 = t0 - t0;
    }
    else {
        t1 = t1 - t0;
        t2 = t0 - t0;
        t2 = t2 - t0;
    }
    t1 = t2 - t1;
    t1 = (t1 >> 1) & 0x64;
    t1 = (t0 >> 1) & 0x93;
    t1 = (t0 >> 1) & 0x46;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = (t0 >> 1) & 0x175;
    t1 = t2 - t2;
    t1 = t2 + 6;
    t1 = t1 ^ (t1 << 3);
    t2 = t1 ^ (t2 << 2);
    t2 = t1 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x237;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t1 + 3;
    t2 = t0 + 9;
    t1 = t1 + 6;
    t1 = t1 ^ (t0 << 4);
    t1 = t0 - t2;
    t2 = t0 + 2;
    t2 = t0 - t0;
    t2 = t1 ^ (t1 << 1);
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x30;
    t1 = t2 ^ (t2 << 3);
    t1 = t1 + 3;
    t2 = (t1 >> 1) & 0x31;
    t1 = (t0 >> 1) & 0x181;
    t1 = t1 + 4;
    t2 = (t2 >> 1) & 0x69;
    t1 = t1 - t1;
    t2 = (t1 >> 1) & 0x132;
    FREE_DB();
}
