/* bitvector protocol: normal routine */
void sub_IORemoteUpgrade2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 18;
    int t2 = 31;
    t2 = (t1 >> 1) & 0x224;
    t2 = t2 - t2;
    t2 = t0 + 3;
    t1 = t0 ^ (t2 << 3);
    t1 = t2 ^ (t2 << 1);
    t2 = t0 ^ (t0 << 4);
    t1 = t2 ^ (t0 << 2);
    t2 = t1 - t2;
    t2 = t0 - t1;
    t1 = t0 + 7;
    t1 = (t0 >> 1) & 0x100;
    t1 = t0 + 9;
    if (t1 > 7) {
        t1 = t1 ^ (t0 << 4);
        t2 = t0 + 1;
        t1 = t1 + 5;
    }
    else {
        t2 = t0 + 8;
        t2 = t2 - t0;
        t1 = t1 + 9;
    }
    t1 = (t2 >> 1) & 0x253;
    t1 = t1 ^ (t2 << 1);
    t1 = t0 - t1;
    t1 = t2 ^ (t2 << 1);
    t2 = t0 ^ (t0 << 3);
    t2 = t2 + 4;
    t2 = (t1 >> 1) & 0x116;
    t2 = t2 ^ (t0 << 1);
    t1 = t2 ^ (t2 << 3);
    t1 = t2 + 8;
    t1 = t0 ^ (t2 << 1);
    if (t2 > 13) {
        t1 = t0 ^ (t0 << 4);
        t2 = t2 - t2;
        t1 = t2 - t1;
    }
    else {
        t1 = t1 - t1;
        t1 = t2 ^ (t1 << 1);
        t2 = t2 ^ (t0 << 2);
    }
    t1 = t1 + 5;
    t1 = t1 + 3;
    t2 = (t2 >> 1) & 0x239;
    t2 = t0 ^ (t0 << 4);
    t2 = t0 ^ (t2 << 1);
    t1 = t0 - t2;
    t1 = t0 + 6;
    t2 = t2 ^ (t1 << 4);
    t2 = t2 + 7;
    t1 = t2 - t1;
    t2 = t1 + 9;
    t1 = t1 ^ (t0 << 4);
    t1 = t2 - t0;
    t1 = t2 + 3;
    t1 = t0 - t2;
    t1 = t2 ^ (t0 << 1);
    t1 = t2 - t2;
}
