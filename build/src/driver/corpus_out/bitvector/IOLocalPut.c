/* bitvector protocol: hardware handler */
void IOLocalPut(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 1;
    int t2 = 24;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
