/* bitvector protocol: hardware handler */
void IOLocalUpgrade(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 4;
    int t2 = 6;
    t2 = t2 - t2;
    t2 = t2 ^ (t2 << 3);
    if (t1 > 2) {
        t2 = t0 ^ (t0 << 2);
        t1 = t1 - t2;
        t1 = (t0 >> 1) & 0x132;
    }
    else {
        t2 = (t1 >> 1) & 0x161;
        t1 = (t1 >> 1) & 0x159;
        t1 = (t1 >> 1) & 0x114;
    }
    t1 = t2 ^ (t0 << 3);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_ACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 + 7;
    t2 = t1 - t2;
    t2 = t2 + 9;
    t1 = t0 ^ (t2 << 2);
    t2 = DIR_BASE + (t0 << 3);
    t1 = DIR_READ(state);
    DIR_WRITEBACK();
    t2 = t2 + 1;
    t1 = t2 - t2;
    t1 = t0 - t2;
    t1 = (t0 >> 1) & 0x148;
    t1 = t1 + 1;
    t2 = (t2 >> 1) & 0x133;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t2 = (t0 >> 1) & 0x13;
    t2 = t2 ^ (t2 << 2);
    t1 = (t2 >> 1) & 0x56;
    t2 = t0 + 1;
    t1 = (t2 >> 1) & 0x95;
    t1 = t2 ^ (t1 << 1);
    t1 = t1 + 1;
    t2 = t0 ^ (t1 << 1);
    t1 = t0 + 9;
    t2 = t2 - t0;
    t1 = t1 - t2;
    t1 = (t0 >> 1) & 0x78;
    t2 = t1 + 4;
    t1 = t1 - t2;
    t2 = (t0 >> 1) & 0x248;
    t1 = t2 - t1;
    t1 = t0 + 9;
    t1 = (t2 >> 1) & 0x62;
    t2 = t2 - t0;
    t2 = t2 + 4;
    FREE_DB();
}
