/* bitvector protocol: normal routine */
void sub_IOLocalAck2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 7;
    int t2 = 5;
    int db = 0;
    t2 = t0 - t0;
    t1 = t1 + 7;
    t1 = t0 + 9;
    if (t1 > 4) {
        t2 = t0 - t2;
        t1 = t0 ^ (t1 << 3);
        t1 = (t1 >> 1) & 0x20;
    }
    else {
        t1 = (t1 >> 1) & 0x199;
        t2 = (t1 >> 1) & 0x151;
        t1 = t2 + 1;
    }
    t1 = t2 - t0;
    t2 = t1 - t0;
    t2 = t1 ^ (t1 << 4);
    if (t0 > 11) {
        t2 = t1 ^ (t0 << 4);
        t2 = t2 - t0;
        t2 = (t1 >> 1) & 0x40;
    }
    else {
        t1 = t2 - t0;
        t1 = (t0 >> 1) & 0x101;
        t2 = t2 - t0;
    }
    t2 = t0 + 7;
    t1 = t1 ^ (t0 << 2);
    t2 = (t2 >> 1) & 0x247;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_NAK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = (t0 >> 1) & 0x9;
    t1 = t1 ^ (t0 << 2);
    t1 = t0 ^ (t1 << 2);
    t1 = t0 ^ (t0 << 1);
    t2 = t2 + 9;
    t1 = (t2 >> 1) & 0x209;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t2 + 3;
    t1 = t0 + 8;
    t2 = t0 - t1;
    t1 = t1 ^ (t1 << 3);
    t2 = t0 ^ (t0 << 4);
    t1 = t0 - t2;
    t1 = t2 + 5;
    t2 = t1 + 5;
    t1 = t0 - t2;
    t2 = t2 ^ (t1 << 1);
    t2 = t2 ^ (t0 << 4);
    t1 = t0 - t1;
    t2 = (t2 >> 1) & 0x89;
    t2 = t1 + 3;
    t1 = t1 + 1;
    t2 = t2 ^ (t2 << 3);
}
