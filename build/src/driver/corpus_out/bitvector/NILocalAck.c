/* bitvector protocol: hardware handler */
void NILocalAck(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 11;
    int t2 = 0;
    if (t1 > 13) {
        t1 = t2 ^ (t2 << 3);
        t2 = t0 ^ (t2 << 4);
        t1 = (t2 >> 1) & 0x173;
    }
    else {
        t2 = t2 + 4;
        t1 = t1 ^ (t0 << 4);
        t1 = (t2 >> 1) & 0x27;
    }
    if (t1 > 4) {
        t1 = t0 - t2;
        t1 = t0 - t0;
        t1 = t2 ^ (t2 << 2);
    }
    else {
        t2 = (t2 >> 1) & 0x214;
        t1 = (t2 >> 1) & 0x52;
        t2 = t0 - t1;
    }
    if ((t0 & 7) == 5) {
        MISCBUS_READ_DB(t0, t1);
    }
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_NAK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 ^ (t2 << 2);
    t1 = t2 + 3;
    t2 = t0 - t2;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t2 >> 1) & 0x255;
    t2 = t0 ^ (t2 << 2);
    t2 = t1 + 2;
    t2 = (t1 >> 1) & 0x222;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    IO_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_IO_REPLY();
    t2 = t1 - t0;
    t2 = (t1 >> 1) & 0x202;
    t1 = t0 + 6;
    t1 = t2 - t0;
    t1 = (t0 >> 1) & 0x125;
    t2 = t1 + 9;
    t1 = t0 ^ (t2 << 3);
    t1 = t0 + 1;
    t1 = t2 - t0;
    t2 = (t1 >> 1) & 0x236;
    t2 = t0 + 8;
    t1 = t1 - t0;
    t2 = (t2 >> 1) & 0x139;
    t2 = t2 - t1;
    t2 = t0 - t2;
    t1 = t1 - t0;
    t1 = t1 ^ (t1 << 2);
    FREE_DB();
}
