/* bitvector protocol: hardware handler */
void PIRemoteReplace(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 17;
    int t2 = 16;
    t2 = t2 ^ (t2 << 4);
    t1 = t1 + 8;
    t2 = t2 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x239;
    t1 = t2 - t1;
    t2 = (t0 >> 1) & 0x166;
    t2 = t1 + 8;
    if (t1 > 11) {
        t1 = t0 + 9;
        t2 = t2 - t0;
        t2 = (t1 >> 1) & 0x115;
    }
    else {
        t1 = t2 ^ (t0 << 4);
        t2 = t1 ^ (t0 << 4);
        t2 = (t1 >> 1) & 0x155;
    }
    t2 = (t0 >> 1) & 0x100;
    t1 = (t2 >> 1) & 0x248;
    t1 = t1 ^ (t1 << 2);
    t1 = t1 - t0;
    t1 = t2 + 6;
    t2 = t1 + 1;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t1 - t2;
    t1 = t2 - t2;
    t2 = t0 - t1;
    t2 = t2 - t2;
    t2 = (t0 >> 1) & 0x196;
    t2 = (t0 >> 1) & 0x242;
    t2 = t2 - t0;
    t2 = t2 + 1;
    t1 = t1 ^ (t1 << 4);
    t2 = t0 ^ (t1 << 1);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = (t2 >> 1) & 0x38;
    t1 = (t1 >> 1) & 0x19;
    t2 = t1 ^ (t2 << 1);
    t2 = t0 ^ (t0 << 1);
    t1 = t2 - t0;
    t1 = (t0 >> 1) & 0x145;
    t2 = t0 + 8;
    t2 = t1 + 7;
    t2 = t1 + 7;
    t1 = t1 - t1;
    t1 = (t1 >> 1) & 0x75;
    t1 = (t2 >> 1) & 0x145;
    t1 = t1 + 5;
    t2 = t1 + 3;
    t2 = t0 + 6;
    t2 = t1 ^ (t2 << 3);
    t1 = t1 ^ (t1 << 2);
    t2 = t1 - t0;
    t1 = t1 ^ (t2 << 2);
    t1 = t0 ^ (t0 << 2);
    FREE_DB();
}
