/* bitvector protocol: normal routine */
void sub_IOLocalUncRead2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 21;
    int t2 = 3;
    t1 = (t2 >> 1) & 0x29;
    t2 = t0 - t1;
    t1 = t2 ^ (t1 << 4);
    t2 = t2 ^ (t1 << 3);
    t2 = (t2 >> 1) & 0x54;
    t1 = t0 ^ (t1 << 1);
    t2 = t1 ^ (t2 << 1);
    t1 = t0 - t0;
    t2 = (t1 >> 1) & 0x61;
    t1 = t1 + 9;
    t2 = t0 ^ (t0 << 2);
    if (t1 > 12) {
        t2 = (t1 >> 1) & 0x234;
        t1 = t2 - t2;
        t2 = t0 - t1;
    }
    else {
        t2 = t2 ^ (t0 << 2);
        t1 = t1 - t0;
        t1 = t1 ^ (t1 << 2);
    }
    t2 = (t1 >> 1) & 0x197;
    t1 = t1 ^ (t1 << 1);
    t1 = t1 - t0;
    t2 = t0 + 1;
    t2 = t0 ^ (t1 << 1);
    t2 = t0 + 5;
    t2 = t2 - t1;
    t2 = t2 ^ (t0 << 1);
    t1 = t0 ^ (t1 << 4);
    t1 = (t0 >> 1) & 0x194;
    if (t0 > 9) {
        t1 = t2 - t0;
        t1 = t0 ^ (t0 << 1);
        t1 = (t1 >> 1) & 0x182;
    }
    else {
        t2 = t2 + 8;
        t2 = t0 ^ (t2 << 2);
        t2 = t1 - t1;
    }
    t2 = t1 - t2;
    t2 = (t2 >> 1) & 0x243;
    t1 = t1 ^ (t2 << 3);
    t2 = t0 + 2;
    t1 = t1 + 9;
    t1 = (t1 >> 1) & 0x174;
    t1 = t2 ^ (t0 << 1);
    t2 = t1 - t2;
    t1 = t2 - t1;
    t1 = t2 - t1;
    t2 = t2 - t1;
    t2 = t1 + 7;
    t2 = t1 - t0;
    t1 = t1 ^ (t1 << 4);
    t2 = (t0 >> 1) & 0x101;
    t1 = t2 ^ (t1 << 3);
}
