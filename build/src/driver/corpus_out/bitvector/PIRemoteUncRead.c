/* bitvector protocol: hardware handler */
void PIRemoteUncRead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 0;
    int t2 = 13;
    t1 = t2 - t1;
    t1 = t2 + 8;
    if (t1 > 7) {
        t1 = t0 + 6;
        t2 = t0 + 4;
        t2 = t1 - t0;
    }
    else {
        t1 = (t0 >> 1) & 0x235;
        t2 = (t0 >> 1) & 0x72;
        t2 = t0 ^ (t1 << 3);
    }
    t2 = t1 ^ (t1 << 1);
    if (t2 > 6) {
        t1 = t2 - t1;
        t2 = t0 ^ (t2 << 3);
        t2 = (t0 >> 1) & 0x173;
    }
    else {
        t2 = t2 - t0;
        t1 = t1 ^ (t0 << 4);
        t2 = (t2 >> 1) & 0x15;
    }
    t1 = (t0 >> 1) & 0x7;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = (t2 >> 1) & 0x45;
    t2 = t1 - t2;
    t1 = (t0 >> 1) & 0x160;
    t2 = t0 ^ (t0 << 4);
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t1 - t1;
    t1 = t2 - t2;
    t2 = (t1 >> 1) & 0x177;
    t2 = t2 + 1;
    t1 = t0 - t1;
    t1 = t0 - t0;
    t2 = t1 + 6;
    t1 = t0 + 1;
    t2 = (t1 >> 1) & 0x63;
    t2 = t1 - t2;
    t2 = (t2 >> 1) & 0x201;
    t1 = t2 - t0;
    t2 = (t2 >> 1) & 0x245;
    t1 = t0 ^ (t2 << 1);
    t2 = t0 ^ (t1 << 1);
    FREE_DB();
}
