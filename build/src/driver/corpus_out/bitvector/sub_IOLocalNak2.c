/* bitvector protocol: normal routine */
void sub_IOLocalNak2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 22;
    int t2 = 25;
    t1 = t1 + 6;
    t2 = t2 - t2;
    t1 = t1 + 3;
    t2 = t0 - t0;
    t2 = t1 - t0;
    t1 = (t2 >> 1) & 0x194;
    t2 = t2 ^ (t0 << 1);
    if (t0 > 13) {
        t1 = (t1 >> 1) & 0x34;
        t2 = t1 + 6;
        t2 = t0 - t2;
    }
    else {
        t1 = t1 ^ (t2 << 3);
        t2 = t2 - t2;
        t2 = (t2 >> 1) & 0x23;
    }
    t1 = t2 + 3;
    t1 = t1 - t1;
    t2 = (t0 >> 1) & 0x72;
    t2 = t1 - t0;
    t2 = t2 - t0;
    t2 = t1 - t1;
    t2 = t2 ^ (t2 << 1);
    if (t1 > 11) {
        t2 = (t1 >> 1) & 0x255;
        t2 = t1 + 9;
        t1 = t1 - t1;
    }
    else {
        t2 = t1 + 8;
        t2 = t1 + 7;
        t2 = t2 ^ (t0 << 1);
    }
    t2 = t0 + 7;
    t2 = t0 ^ (t0 << 4);
    t1 = (t2 >> 1) & 0x144;
    t1 = (t0 >> 1) & 0x82;
    t1 = t2 - t1;
    t2 = (t0 >> 1) & 0x208;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_ACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t0 >> 1) & 0x28;
    t2 = (t0 >> 1) & 0x187;
    t2 = t1 + 9;
    t2 = t0 + 4;
    t2 = t2 ^ (t2 << 2);
    t1 = t2 ^ (t0 << 2);
    t1 = (t0 >> 1) & 0x19;
    t1 = (t1 >> 1) & 0x243;
    t2 = (t0 >> 1) & 0x9;
    t1 = t1 - t1;
    t2 = (t0 >> 1) & 0x31;
    t1 = t2 - t2;
    t2 = (t1 >> 1) & 0x107;
    t1 = t1 - t1;
    t1 = t1 ^ (t1 << 3);
    t2 = t1 - t0;
    t1 = t2 + 5;
    t2 = t2 - t1;
    t2 = t2 ^ (t2 << 3);
    t2 = t1 + 7;
    t2 = t0 + 7;
}
