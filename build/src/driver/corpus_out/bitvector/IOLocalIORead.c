/* bitvector protocol: hardware handler */
void IOLocalIORead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 12;
    int t2 = 29;
    t1 = (t1 >> 1) & 0x174;
    t2 = t2 + 2;
    t1 = (t2 >> 1) & 0x102;
    t1 = t0 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x243;
    t2 = t2 ^ (t2 << 2);
    if (t0 > 6) {
        t2 = t2 - t2;
        t2 = t1 ^ (t1 << 3);
        t1 = t1 ^ (t2 << 4);
    }
    else {
        t1 = t2 - t2;
        t1 = (t1 >> 1) & 0x97;
        t2 = t1 + 3;
    }
    t1 = t0 - t0;
    t1 = (t1 >> 1) & 0x185;
    t2 = t2 ^ (t0 << 3);
    t2 = (t1 >> 1) & 0x239;
    t1 = t0 ^ (t1 << 3);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t1 = t0 ^ (t0 << 4);
    t2 = t0 + 4;
    t2 = t1 - t0;
    t1 = t0 ^ (t1 << 1);
    t2 = t1 ^ (t0 << 1);
    t2 = t0 + 2;
    t1 = t2 ^ (t2 << 3);
    t1 = (t0 >> 1) & 0x138;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = (t1 >> 1) & 0x233;
    t2 = t2 ^ (t0 << 1);
    t2 = t0 + 1;
    t1 = t0 ^ (t1 << 3);
    t2 = t1 + 5;
    t2 = t1 + 6;
    t2 = t1 ^ (t1 << 3);
    t1 = t0 + 5;
    t2 = t0 - t1;
    t1 = t0 ^ (t1 << 4);
    t1 = t0 ^ (t1 << 3);
    t2 = t2 + 9;
    t2 = t1 + 5;
    t1 = (t0 >> 1) & 0x82;
    t2 = t1 + 5;
    t2 = (t2 >> 1) & 0x231;
    t1 = t0 + 3;
    t2 = (t1 >> 1) & 0x147;
    t2 = (t1 >> 1) & 0x61;
    FREE_DB();
}
