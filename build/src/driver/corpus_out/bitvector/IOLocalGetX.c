/* bitvector protocol: hardware handler */
void IOLocalGetX(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 21;
    int t2 = 5;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
