/* bitvector protocol: hardware handler */
void NILocalUncRead(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 10;
    int t2 = 16;
    t1 = t1 + 7;
    t1 = (t2 >> 1) & 0x251;
    t2 = (t2 >> 1) & 0x156;
    if (t0 > 3) {
        t2 = t0 - t2;
        t2 = t0 ^ (t1 << 1);
        t1 = t2 + 4;
    }
    else {
        t1 = (t1 >> 1) & 0x45;
        t2 = t1 - t1;
        t1 = t2 + 9;
    }
    t1 = t0 - t1;
    t1 = (t1 >> 1) & 0x216;
    if (t1 > 11) {
        t2 = t2 ^ (t2 << 4);
        t1 = t1 + 5;
        t1 = t1 + 5;
    }
    else {
        t1 = (t2 >> 1) & 0x113;
        t1 = t2 - t1;
        t2 = t0 ^ (t0 << 2);
    }
    t1 = t0 + 9;
    t1 = t0 - t0;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 - t1;
    t1 = t0 - t2;
    t2 = t2 ^ (t0 << 2);
    t2 = t1 + 2;
    t2 = t0 - t1;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t2 + 2;
    t2 = t0 ^ (t1 << 1);
    t1 = t2 ^ (t2 << 4);
    t1 = t1 - t0;
    t1 = t1 - t2;
    t1 = t0 ^ (t0 << 4);
    t2 = t2 + 8;
    t1 = t0 + 5;
    t1 = t0 - t1;
    t1 = t0 ^ (t1 << 2);
    t2 = t1 - t2;
    t2 = (t0 >> 1) & 0x156;
    t1 = (t2 >> 1) & 0x3;
    t2 = t1 - t0;
    t2 = t0 - t1;
    FREE_DB();
}
