/* bitvector protocol: software handler */
void SwIOLocalPutX2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 11;
    int t2 = 21;
    int db = 0;
    t1 = t1 ^ (t0 << 4);
    t1 = (t2 >> 1) & 0x205;
    t1 = t2 + 7;
    t1 = (t1 >> 1) & 0x33;
    t1 = t2 ^ (t0 << 1);
    t1 = t0 ^ (t2 << 4);
    t2 = (t0 >> 1) & 0x110;
    t2 = t1 - t1;
    t2 = (t2 >> 1) & 0x236;
    t2 = (t1 >> 1) & 0x63;
    if (t2 > 12) {
        t1 = t2 ^ (t0 << 2);
        t2 = t1 - t1;
        t2 = (t0 >> 1) & 0x208;
    }
    else {
        t2 = (t1 >> 1) & 0x235;
        t2 = (t2 >> 1) & 0x160;
        t1 = t0 + 3;
    }
    t2 = t1 ^ (t1 << 1);
    t1 = t0 + 9;
    t2 = (t1 >> 1) & 0x193;
    t1 = (t0 >> 1) & 0x20;
    t1 = t1 ^ (t2 << 4);
    t1 = t1 + 7;
    t1 = t2 + 3;
    t1 = t2 + 4;
    t2 = (t1 >> 1) & 0x240;
    t2 = t0 + 3;
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t2 = t0 ^ (t2 << 1);
    t1 = t0 - t1;
    t1 = t0 ^ (t2 << 2);
    t1 = t0 ^ (t0 << 3);
    t2 = (t0 >> 1) & 0x38;
    t1 = t2 + 4;
    t2 = t2 - t0;
    t2 = t2 + 9;
    t2 = t0 - t1;
    t1 = t1 + 9;
    t2 = t2 ^ (t0 << 4);
    t2 = t0 ^ (t1 << 2);
    t1 = (t0 >> 1) & 0x244;
    t2 = t1 + 8;
    t1 = t1 ^ (t1 << 4);
    t1 = t0 + 7;
    t1 = t2 ^ (t2 << 2);
    t2 = t1 + 3;
    t1 = t2 - t2;
    t2 = t1 + 6;
}
