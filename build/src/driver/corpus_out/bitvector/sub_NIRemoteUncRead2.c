/* bitvector protocol: normal routine */
void sub_NIRemoteUncRead2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 12;
    int t2 = 21;
    t1 = (t0 >> 1) & 0x211;
    t2 = t2 - t1;
    t2 = t2 + 2;
    t2 = t1 - t0;
    t2 = (t0 >> 1) & 0x35;
    t1 = t1 - t2;
    t1 = (t2 >> 1) & 0x247;
    t2 = (t0 >> 1) & 0x246;
    t1 = (t2 >> 1) & 0x161;
    t1 = t2 - t1;
    t1 = t0 - t1;
    t1 = t0 + 8;
    t2 = t0 + 3;
    t1 = t0 - t0;
    t2 = t1 + 2;
    t2 = t0 + 2;
    t1 = t2 - t0;
    t1 = (t0 >> 1) & 0x36;
    t2 = t1 + 3;
    t2 = t1 ^ (t0 << 4);
    t1 = (t2 >> 1) & 0x177;
    t2 = t0 + 3;
    if (t1 > 4) {
        t2 = t2 + 9;
        t2 = t2 ^ (t2 << 4);
        t1 = t1 + 7;
    }
    else {
        t2 = t1 - t0;
        t1 = t0 + 2;
        t2 = t1 ^ (t1 << 2);
    }
    t1 = t0 + 3;
    t1 = (t2 >> 1) & 0x117;
    t2 = t2 - t0;
    t2 = t1 ^ (t1 << 2);
    t1 = t1 ^ (t0 << 2);
    t2 = (t1 >> 1) & 0x64;
    t2 = t1 ^ (t1 << 3);
    t1 = (t1 >> 1) & 0x91;
    t1 = (t0 >> 1) & 0x33;
    t1 = (t0 >> 1) & 0x73;
    t2 = t1 ^ (t0 << 4);
    t1 = t2 + 4;
    t2 = t0 - t1;
    t2 = t2 - t0;
    t2 = t2 - t1;
    t1 = t2 ^ (t1 << 1);
    t1 = t1 ^ (t0 << 2);
    t1 = t1 ^ (t0 << 4);
    t1 = t0 + 3;
    t1 = (t2 >> 1) & 0x208;
    t2 = (t2 >> 1) & 0x212;
    t1 = t2 - t2;
    t2 = t0 - t0;
    t2 = t0 + 1;
    t1 = t2 - t2;
    t1 = (t0 >> 1) & 0x83;
    t1 = t2 + 2;
    t2 = t2 + 4;
}
