/* bitvector protocol: hardware handler */
void NIRemoteUpgrade(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 0;
    int t2 = 14;
    t2 = t0 - t2;
    t2 = t2 - t0;
    t1 = t2 ^ (t2 << 1);
    t2 = t0 + 9;
    t1 = t1 ^ (t2 << 1);
    t2 = (t2 >> 1) & 0x187;
    t2 = (t0 >> 1) & 0x38;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_GET, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = (t2 >> 1) & 0x12;
    t2 = (t0 >> 1) & 0x227;
    t1 = t0 + 8;
    t1 = t0 - t0;
    t2 = t1 ^ (t1 << 2);
    t2 = t2 ^ (t0 << 2);
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x158;
    t2 = (t2 >> 1) & 0x22;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t2 = t0 - t2;
    t1 = t1 ^ (t0 << 4);
    t1 = t0 - t2;
    t1 = t2 - t2;
    t1 = (t0 >> 1) & 0x31;
    t2 = t1 + 3;
    t1 = t2 + 5;
    t1 = t2 - t0;
    t2 = t2 - t1;
    t2 = t1 ^ (t2 << 2);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    while (PI_STATUS_REG() == 0) {
        t0 = t1 + 1;
    }
    t2 = t2 ^ (t1 << 1);
    t2 = (t0 >> 1) & 0x67;
    t2 = t2 - t1;
    t2 = t2 + 4;
    t2 = t1 - t1;
    t1 = t1 - t2;
    t2 = t2 + 1;
    t1 = t2 - t1;
    t1 = (t2 >> 1) & 0x115;
    t1 = t2 ^ (t2 << 4);
    t1 = (t2 >> 1) & 0x62;
    t2 = t1 - t2;
    t2 = (t0 >> 1) & 0x228;
    t1 = t0 + 5;
    t2 = t2 ^ (t0 << 1);
    t1 = (t2 >> 1) & 0x234;
    t1 = t1 + 1;
    t1 = t0 - t0;
    t2 = (t1 >> 1) & 0x53;
    t1 = t2 + 1;
    t2 = (t2 >> 1) & 0x100;
    FREE_DB();
}
