/* bitvector protocol: normal routine */
void sub_IOLocalUpgrade2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 4;
    int t2 = 21;
    t2 = (t0 >> 1) & 0x29;
    t2 = t2 + 1;
    t1 = (t1 >> 1) & 0x193;
    t1 = t1 + 7;
    t1 = t1 + 3;
    t2 = t0 ^ (t0 << 4);
    t2 = t0 - t0;
    t2 = t1 + 3;
    t2 = t1 ^ (t1 << 4);
    t2 = t1 ^ (t2 << 2);
    t2 = t1 - t0;
    if (t1 > 3) {
        t2 = (t0 >> 1) & 0x122;
        t2 = t2 ^ (t0 << 1);
        t1 = (t1 >> 1) & 0x123;
    }
    else {
        t2 = (t0 >> 1) & 0x154;
        t1 = (t0 >> 1) & 0x101;
        t1 = t1 ^ (t0 << 4);
    }
    t2 = (t0 >> 1) & 0x60;
    t2 = t0 - t0;
    t1 = t0 ^ (t0 << 2);
    t1 = (t2 >> 1) & 0x224;
    t2 = t0 - t0;
    t2 = t0 + 3;
    t1 = t1 - t2;
    t1 = t0 - t0;
    t1 = t1 - t0;
    t1 = t0 + 6;
    if (t1 > 13) {
        t2 = (t2 >> 1) & 0x45;
        t1 = t0 - t0;
        t1 = t2 ^ (t1 << 2);
    }
    else {
        t2 = t0 - t0;
        t2 = (t2 >> 1) & 0x169;
        t1 = t2 ^ (t1 << 3);
    }
    t2 = t2 - t0;
    t2 = (t1 >> 1) & 0x143;
    t2 = t1 + 9;
    t1 = t2 + 9;
    t2 = t0 ^ (t1 << 4);
    t1 = (t2 >> 1) & 0x69;
    t2 = (t1 >> 1) & 0x251;
    t1 = (t1 >> 1) & 0x1;
    t1 = t1 - t2;
    t2 = t1 + 8;
    t1 = t0 ^ (t2 << 2);
    t2 = t2 ^ (t0 << 1);
    t1 = t1 + 3;
    t2 = t0 - t0;
    t1 = t2 ^ (t0 << 4);
    t1 = t2 ^ (t2 << 2);
    t1 = t0 + 2;
}
