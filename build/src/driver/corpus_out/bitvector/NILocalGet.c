/* bitvector protocol: hardware handler */
void NILocalGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 24;
    int t2 = 13;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
