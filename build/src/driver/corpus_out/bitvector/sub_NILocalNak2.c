/* bitvector protocol: normal routine */
void sub_NILocalNak2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 27;
    t1 = (t2 >> 1) & 0x23;
    t1 = (t1 >> 1) & 0x108;
    t1 = t2 ^ (t1 << 3);
    t1 = t1 - t2;
    t1 = t2 ^ (t2 << 1);
    t2 = (t0 >> 1) & 0x202;
    t1 = t1 ^ (t2 << 3);
    if (t0 > 2) {
        t2 = t1 - t2;
        t2 = t1 + 7;
        t1 = t1 - t1;
    }
    else {
        t1 = (t2 >> 1) & 0x16;
        t1 = (t2 >> 1) & 0x141;
        t2 = (t2 >> 1) & 0x73;
    }
    t2 = t1 - t2;
    t1 = t0 ^ (t2 << 3);
    t1 = (t0 >> 1) & 0x189;
    t1 = t2 ^ (t0 << 4);
    t1 = t1 + 9;
    t1 = t0 - t2;
    t1 = t1 + 2;
    if (t2 > 5) {
        t1 = t1 ^ (t1 << 1);
        t1 = t0 - t2;
        t1 = (t2 >> 1) & 0x188;
    }
    else {
        t1 = t1 ^ (t0 << 3);
        t2 = t1 - t2;
        t1 = (t1 >> 1) & 0x120;
    }
    t1 = t2 + 5;
    t2 = (t2 >> 1) & 0x59;
    t2 = (t0 >> 1) & 0x116;
    t1 = t2 + 1;
    t2 = t0 + 4;
    t2 = t0 ^ (t1 << 1);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_ACK, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 ^ (t0 << 3);
    t2 = t0 + 7;
    t1 = t2 - t0;
    t1 = t0 - t0;
    t2 = t1 ^ (t1 << 1);
    t1 = (t1 >> 1) & 0x28;
    t1 = (t2 >> 1) & 0x162;
    t2 = t2 + 5;
    t2 = (t1 >> 1) & 0x66;
    t1 = (t1 >> 1) & 0x207;
    t1 = t2 + 5;
    t1 = (t1 >> 1) & 0x160;
    t1 = t1 ^ (t1 << 1);
    t1 = t0 - t2;
    t1 = t0 ^ (t2 << 3);
    t1 = (t1 >> 1) & 0x127;
    t2 = (t0 >> 1) & 0x57;
    t2 = t1 ^ (t1 << 1);
    t2 = t1 - t2;
    t1 = (t1 >> 1) & 0x44;
}
