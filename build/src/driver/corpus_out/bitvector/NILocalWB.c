/* bitvector protocol: hardware handler */
void NILocalWB(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 25;
    int t2 = 0;
    t2 = t2 ^ (t0 << 4);
    t2 = (t2 >> 1) & 0x136;
    t2 = t1 + 6;
    if (t1 > 11) {
        t1 = t2 - t0;
        t1 = t1 - t2;
        t2 = (t0 >> 1) & 0x35;
    }
    else {
        t1 = t1 ^ (t0 << 1);
        t1 = t0 ^ (t2 << 2);
        t1 = t1 ^ (t2 << 2);
    }
    t2 = t2 ^ (t2 << 2);
    t2 = t0 - t1;
    t2 = t0 - t1;
    if (t0 > 2) {
        t2 = t1 + 4;
        t1 = t0 - t2;
        t2 = (t2 >> 1) & 0x169;
    }
    else {
        t1 = t2 ^ (t2 << 2);
        t2 = t1 ^ (t2 << 2);
        t1 = (t0 >> 1) & 0x225;
    }
    t1 = t1 - t2;
    t1 = t1 ^ (t2 << 1);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_INVAL, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t1 - t0;
    t1 = t0 ^ (t0 << 4);
    t1 = t2 - t1;
    t2 = t2 ^ (t1 << 3);
    t2 = t2 + 3;
    t2 = (t1 >> 1) & 0x245;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t2 + 3;
    t2 = (t2 >> 1) & 0x42;
    t2 = t1 + 3;
    t1 = t1 ^ (t1 << 4);
    t2 = (t2 >> 1) & 0x182;
    t1 = t1 - t1;
    t1 = t2 + 3;
    t2 = t2 ^ (t0 << 3);
    t2 = t1 ^ (t0 << 3);
    t1 = (t0 >> 1) & 0x2;
    t1 = (t0 >> 1) & 0x29;
    t1 = t2 + 6;
    t1 = t2 - t0;
    t2 = t2 - t0;
    t1 = t0 ^ (t2 << 2);
    t2 = (t0 >> 1) & 0x197;
    FREE_DB();
}
