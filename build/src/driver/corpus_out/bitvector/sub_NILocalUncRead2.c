/* bitvector protocol: normal routine */
void sub_NILocalUncRead2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 11;
    int t2 = 2;
    t2 = t0 ^ (t2 << 3);
    t1 = t1 + 5;
    t2 = t1 ^ (t0 << 2);
    t2 = (t0 >> 1) & 0x207;
    t2 = t0 + 5;
    t1 = t0 - t0;
    t1 = t0 ^ (t0 << 4);
    t2 = t0 + 3;
    t1 = t0 + 1;
    t2 = t1 ^ (t2 << 1);
    t1 = t0 + 8;
    t2 = t0 ^ (t0 << 4);
    t2 = t2 ^ (t2 << 1);
    t1 = t0 - t0;
    t1 = t2 - t1;
    t2 = t0 - t2;
    t2 = t2 - t2;
    t1 = t1 - t2;
    t1 = t0 ^ (t2 << 1);
    t1 = t1 - t0;
    t1 = t0 ^ (t0 << 2);
    if (t0 > 10) {
        t2 = t1 ^ (t1 << 1);
        t2 = t2 ^ (t1 << 3);
        t2 = (t2 >> 1) & 0x24;
    }
    else {
        t1 = t1 + 1;
        t2 = t1 - t0;
        t2 = t1 + 3;
    }
    t2 = (t1 >> 1) & 0x50;
    t1 = t1 + 4;
    t1 = t2 ^ (t2 << 4);
    t2 = (t2 >> 1) & 0x165;
    t2 = t2 - t0;
    t2 = t0 ^ (t2 << 2);
    t1 = t1 + 9;
    t1 = t2 ^ (t2 << 2);
    t2 = t1 ^ (t0 << 3);
    t2 = t0 - t0;
    t1 = t2 ^ (t1 << 2);
    t1 = t2 ^ (t0 << 4);
    t1 = t2 ^ (t0 << 2);
    t2 = t2 ^ (t0 << 1);
    t1 = t0 - t0;
    t1 = t2 + 4;
    t2 = t2 ^ (t2 << 3);
    t1 = t1 - t0;
    t2 = t0 - t0;
    t2 = (t0 >> 1) & 0x155;
    t2 = t1 - t0;
    t1 = t2 ^ (t2 << 2);
    t2 = t0 - t2;
    t2 = t2 - t0;
    t2 = t1 + 9;
    t1 = t0 ^ (t0 << 1);
    t1 = (t1 >> 1) & 0x190;
    t1 = t1 + 9;
}
