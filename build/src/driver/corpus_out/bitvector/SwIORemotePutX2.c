/* bitvector protocol: software handler */
void SwIORemotePutX2(void) {
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 28;
    int t2 = 13;
    int db = 0;
    t1 = t1 ^ (t2 << 2);
    t2 = t2 + 2;
    t1 = t1 + 5;
    t2 = t0 ^ (t1 << 3);
    t2 = t0 ^ (t0 << 1);
    if (t0 > 10) {
        t1 = t0 + 5;
        t2 = (t2 >> 1) & 0x160;
        t2 = (t2 >> 1) & 0x251;
    }
    else {
        t1 = (t2 >> 1) & 0x187;
        t2 = t0 - t1;
        t1 = t2 - t2;
    }
    t1 = t1 - t1;
    t1 = (t1 >> 1) & 0x124;
    t1 = t2 + 7;
    t2 = (t0 >> 1) & 0x176;
    if (t2 > 8) {
        t1 = (t2 >> 1) & 0x63;
        t2 = t2 ^ (t0 << 1);
        t1 = t1 ^ (t2 << 3);
    }
    else {
        t1 = t0 - t1;
        t1 = t1 - t1;
        t2 = t1 + 5;
    }
    t1 = t1 + 6;
    t2 = t0 ^ (t0 << 3);
    t2 = t0 + 5;
    t1 = t0 ^ (t2 << 3);
    db = ALLOCATE_DB();
    if (db == 0) {
        return;
    }
    MISCBUS_WRITE_DB(t0, t1);
    FREE_DB();
    t1 = t2 + 7;
    t2 = t2 ^ (t0 << 3);
    t2 = t0 - t1;
    t1 = t2 ^ (t0 << 1);
    t1 = t2 ^ (t0 << 2);
    t2 = (t0 >> 1) & 0x141;
    t1 = t0 - t1;
    t2 = t0 - t2;
    t1 = t1 ^ (t1 << 2);
    t2 = t0 + 7;
    t2 = t0 ^ (t0 << 2);
    t2 = (t1 >> 1) & 0x176;
    t2 = t2 + 8;
    t2 = t1 - t2;
}
