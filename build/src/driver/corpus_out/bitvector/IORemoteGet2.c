/* bitvector protocol: hardware handler */
void IORemoteGet2(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 4;
    int t2 = 22;
    t1 = (t2 >> 1) & 0x3;
    t1 = t1 + 8;
    t2 = t0 + 4;
    t2 = (t1 >> 1) & 0x150;
    t2 = t2 - t0;
    t1 = t2 + 7;
    t2 = t2 + 8;
    t2 = t2 ^ (t2 << 2);
    t2 = t0 ^ (t1 << 3);
    t2 = (t2 >> 1) & 0x251;
    t2 = (t2 >> 1) & 0x138;
    if (t1 > 5) {
        t2 = t2 + 6;
        t2 = t1 + 1;
        t2 = (t2 >> 1) & 0x2;
    }
    else {
        t1 = (t1 >> 1) & 0x22;
        t1 = t1 ^ (t1 << 2);
        t2 = t2 ^ (t1 << 1);
    }
    t2 = t2 + 1;
    t2 = t0 + 3;
    t1 = t2 ^ (t1 << 1);
    t1 = t0 - t2;
    t1 = t1 ^ (t1 << 1);
    t1 = t0 + 4;
    t2 = t0 + 2;
    t2 = t1 - t2;
    t2 = (t0 >> 1) & 0x123;
    t2 = t2 + 9;
    t2 = t1 + 5;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_WB, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t2 ^ (t2 << 4);
    t2 = t0 - t0;
    t2 = t2 ^ (t0 << 3);
    t2 = t1 - t2;
    t2 = t1 - t0;
    t1 = (t1 >> 1) & 0x226;
    t2 = t1 + 6;
    t1 = t1 ^ (t2 << 2);
    t2 = t2 - t2;
    t2 = t0 - t0;
    t2 = t2 - t0;
    t2 = t1 + 8;
    t2 = t0 - t0;
    t2 = (t2 >> 1) & 0x104;
    t1 = t2 ^ (t1 << 3);
    t2 = t0 + 7;
    t2 = (t2 >> 1) & 0x51;
    t1 = t1 ^ (t0 << 4);
    t1 = t0 - t1;
    t1 = t1 + 4;
    t1 = t2 - t2;
    t1 = t1 ^ (t0 << 1);
    t1 = t0 + 7;
    t1 = t0 - t2;
    t1 = (t2 >> 1) & 0x204;
    FREE_DB();
}
