/* bitvector protocol: normal routine */
void sub_NIRemoteUncWrite2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 17;
    int t2 = 1;
    t1 = t2 + 5;
    t1 = t0 - t0;
    t2 = t1 + 4;
    t2 = t1 + 5;
    t1 = (t0 >> 1) & 0x183;
    t2 = t1 ^ (t1 << 1);
    t1 = t1 + 3;
    t2 = t0 ^ (t2 << 4);
    t1 = t2 - t1;
    t2 = (t2 >> 1) & 0x55;
    if (t2 > 4) {
        t1 = t0 + 9;
        t2 = t2 ^ (t2 << 2);
        t2 = t1 - t2;
    }
    else {
        t2 = t0 - t2;
        t1 = t1 - t1;
        t1 = (t1 >> 1) & 0x112;
    }
    t2 = t1 - t1;
    t1 = (t1 >> 1) & 0x205;
    t2 = t2 + 6;
    t1 = t0 + 8;
    t1 = t0 + 7;
    t1 = (t2 >> 1) & 0x112;
    t2 = t2 + 7;
    t1 = t2 + 2;
    t1 = t2 - t2;
    t2 = t2 - t0;
    if (t0 > 2) {
        t1 = t1 - t1;
        t2 = t0 - t0;
        t1 = (t1 >> 1) & 0x236;
    }
    else {
        t2 = t1 - t1;
        t1 = t0 ^ (t2 << 4);
        t2 = t2 - t2;
    }
    t1 = t2 ^ (t1 << 1);
    t2 = (t2 >> 1) & 0x228;
    t1 = t1 ^ (t1 << 1);
    t1 = (t2 >> 1) & 0x63;
    t2 = t1 ^ (t1 << 1);
    t2 = t2 ^ (t1 << 4);
    t1 = t2 - t0;
    t1 = t0 - t1;
    t2 = t2 + 6;
    t2 = t1 + 8;
    t1 = t0 + 9;
    t2 = t0 - t0;
    t2 = t1 - t1;
    t2 = (t0 >> 1) & 0x43;
    t1 = t1 - t2;
    t2 = t0 ^ (t0 << 2);
}
