/* bitvector protocol: hardware handler */
void NILocalGetX(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    int t1 = 10;
    int t2 = 17;
    PASSTHRU_FORWARD(t0);
    FREE_DB();
}
