/* bitvector protocol: normal routine */
void sub_IOLocalWB2(void) {
    PROC_HOOK();
    int t0 = MSG_WORD0();
    int t1 = 22;
    int t2 = 14;
    t1 = (t1 >> 1) & 0x134;
    t2 = t2 + 1;
    t1 = t0 ^ (t1 << 3);
    t1 = (t2 >> 1) & 0x40;
    t2 = t2 ^ (t2 << 4);
    t1 = t1 ^ (t2 << 1);
    t2 = t0 - t1;
    t2 = t2 + 5;
    t1 = t1 - t2;
    t1 = t2 + 1;
    t2 = (t2 >> 1) & 0x99;
    if (t0 > 4) {
        t1 = t1 - t2;
        t2 = t0 ^ (t2 << 3);
        t2 = (t2 >> 1) & 0x172;
    }
    else {
        t2 = t2 + 4;
        t2 = t2 ^ (t0 << 4);
        t2 = t2 - t1;
    }
    t1 = t2 + 1;
    t2 = t1 + 9;
    t1 = t2 - t2;
    t1 = t0 + 1;
    t2 = t1 - t0;
    t1 = t1 - t2;
    t2 = t1 + 7;
    t1 = (t1 >> 1) & 0x214;
    t1 = t1 + 8;
    t1 = t2 + 5;
    if (t2 > 4) {
        t1 = t0 ^ (t2 << 4);
        t2 = t1 ^ (t1 << 4);
        t1 = t2 + 4;
    }
    else {
        t2 = (t0 >> 1) & 0x177;
        t2 = t2 - t2;
        t2 = t1 - t2;
    }
    t2 = t2 - t2;
    t1 = t0 ^ (t2 << 3);
    t1 = (t2 >> 1) & 0x204;
    t2 = t0 + 9;
    t1 = t1 - t0;
    t1 = (t0 >> 1) & 0x238;
    t2 = (t0 >> 1) & 0x115;
    t2 = t2 ^ (t2 << 3);
    t2 = t1 + 6;
    t2 = t1 + 9;
    t1 = (t2 >> 1) & 0x27;
    t2 = (t1 >> 1) & 0x100;
    t1 = t1 - t0;
    t1 = t2 - t1;
    t2 = t2 + 3;
    t1 = t2 - t1;
    t2 = t2 ^ (t0 << 4);
}
