/* bitvector protocol: hardware handler */
void IORemoteNak(void) {
    int t0 = MSG_WORD0();
    int t1 = 27;
    int t2 = 18;
    t2 = t0 ^ (t0 << 4);
    if (t0 > 3) {
        t1 = t1 ^ (t2 << 1);
        t1 = t0 ^ (t1 << 2);
        t1 = t2 + 8;
    }
    else {
        t2 = (t1 >> 1) & 0x108;
        t2 = t1 + 4;
        t2 = t0 ^ (t1 << 1);
    }
    if (t2 > 8) {
        t1 = t1 + 9;
        t1 = t2 ^ (t0 << 4);
        t1 = t2 + 8;
    }
    else {
        t1 = (t2 >> 1) & 0x2;
        t2 = t1 ^ (t2 << 4);
        t2 = t1 + 8;
    }
    WAIT_FOR_DB_FULL(t0);
    MISCBUS_READ_DB(t0, t1);
    t2 = t2 ^ (t2 << 4);
    t2 = (t1 >> 1) & 0x134;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_UPGRADE, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    t2 = t0 ^ (t1 << 4);
    t1 = (t0 >> 1) & 0x12;
    t2 = t0 ^ (t1 << 2);
    t1 = t0 + 3;
    DIR_LOAD();
    t1 = DIR_READ(state);
    if (t1 == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    t1 = t2 + 9;
    t2 = t0 ^ (t2 << 4);
    t1 = t1 ^ (t2 << 3);
    t1 = t1 ^ (t1 << 1);
    t2 = t2 ^ (t0 << 4);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, F_DEC, F_NULL);
    WAIT_FOR_PI_REPLY();
    t1 = t1 + 5;
    t1 = t0 + 5;
    t2 = t2 + 5;
    t2 = t0 ^ (t2 << 4);
    t2 = (t1 >> 1) & 0x217;
    t2 = (t2 >> 1) & 0x249;
    t1 = t2 ^ (t1 << 4);
    t1 = t0 + 1;
    t1 = (t2 >> 1) & 0x220;
    t1 = (t1 >> 1) & 0x112;
    t1 = t1 ^ (t1 << 3);
    t2 = t2 ^ (t1 << 2);
    t2 = t1 + 4;
    t2 = t2 - t2;
    t1 = (t1 >> 1) & 0x48;
    t2 = t1 - t0;
    t1 = t2 ^ (t2 << 4);
    t1 = t2 ^ (t2 << 3);
    FREE_DB();
}
