# Empty dependencies file for mccheck.
# This may be replaced when dependencies are built.
