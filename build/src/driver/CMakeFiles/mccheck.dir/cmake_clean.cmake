file(REMOVE_RECURSE
  "CMakeFiles/mccheck.dir/mccheck.cc.o"
  "CMakeFiles/mccheck.dir/mccheck.cc.o.d"
  "mccheck"
  "mccheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
