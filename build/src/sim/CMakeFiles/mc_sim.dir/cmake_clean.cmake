file(REMOVE_RECURSE
  "CMakeFiles/mc_sim.dir/interp.cc.o"
  "CMakeFiles/mc_sim.dir/interp.cc.o.d"
  "CMakeFiles/mc_sim.dir/machine.cc.o"
  "CMakeFiles/mc_sim.dir/machine.cc.o.d"
  "CMakeFiles/mc_sim.dir/workload.cc.o"
  "CMakeFiles/mc_sim.dir/workload.cc.o.d"
  "libmc_sim.a"
  "libmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
