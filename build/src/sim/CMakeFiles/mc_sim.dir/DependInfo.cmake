
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/interp.cc" "src/sim/CMakeFiles/mc_sim.dir/interp.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/interp.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/mc_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/mc_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/mc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
