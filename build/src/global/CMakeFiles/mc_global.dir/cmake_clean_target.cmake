file(REMOVE_RECURSE
  "libmc_global.a"
)
