# Empty dependencies file for mc_global.
# This may be replaced when dependencies are built.
