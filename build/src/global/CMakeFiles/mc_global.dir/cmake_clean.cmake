file(REMOVE_RECURSE
  "CMakeFiles/mc_global.dir/callgraph.cc.o"
  "CMakeFiles/mc_global.dir/callgraph.cc.o.d"
  "CMakeFiles/mc_global.dir/flowgraph.cc.o"
  "CMakeFiles/mc_global.dir/flowgraph.cc.o.d"
  "libmc_global.a"
  "libmc_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
