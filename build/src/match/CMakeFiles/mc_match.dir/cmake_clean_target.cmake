file(REMOVE_RECURSE
  "libmc_match.a"
)
