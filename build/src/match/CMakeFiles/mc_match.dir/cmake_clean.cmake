file(REMOVE_RECURSE
  "CMakeFiles/mc_match.dir/pattern.cc.o"
  "CMakeFiles/mc_match.dir/pattern.cc.o.d"
  "libmc_match.a"
  "libmc_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
