# Empty dependencies file for mc_match.
# This may be replaced when dependencies are built.
