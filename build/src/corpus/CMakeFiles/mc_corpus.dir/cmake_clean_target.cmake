file(REMOVE_RECURSE
  "libmc_corpus.a"
)
