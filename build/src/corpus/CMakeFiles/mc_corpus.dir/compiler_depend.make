# Empty compiler generated dependencies file for mc_corpus.
# This may be replaced when dependencies are built.
