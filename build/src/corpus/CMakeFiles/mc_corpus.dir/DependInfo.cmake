
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/mc_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/mc_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/ledger.cc" "src/corpus/CMakeFiles/mc_corpus.dir/ledger.cc.o" "gcc" "src/corpus/CMakeFiles/mc_corpus.dir/ledger.cc.o.d"
  "/root/repo/src/corpus/profile.cc" "src/corpus/CMakeFiles/mc_corpus.dir/profile.cc.o" "gcc" "src/corpus/CMakeFiles/mc_corpus.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/mc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
