file(REMOVE_RECURSE
  "CMakeFiles/mc_corpus.dir/generator.cc.o"
  "CMakeFiles/mc_corpus.dir/generator.cc.o.d"
  "CMakeFiles/mc_corpus.dir/ledger.cc.o"
  "CMakeFiles/mc_corpus.dir/ledger.cc.o.d"
  "CMakeFiles/mc_corpus.dir/profile.cc.o"
  "CMakeFiles/mc_corpus.dir/profile.cc.o.d"
  "libmc_corpus.a"
  "libmc_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
