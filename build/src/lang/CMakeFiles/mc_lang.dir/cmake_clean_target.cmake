file(REMOVE_RECURSE
  "libmc_lang.a"
)
