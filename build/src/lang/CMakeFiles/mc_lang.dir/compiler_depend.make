# Empty compiler generated dependencies file for mc_lang.
# This may be replaced when dependencies are built.
