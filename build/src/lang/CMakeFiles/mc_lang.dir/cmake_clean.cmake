file(REMOVE_RECURSE
  "CMakeFiles/mc_lang.dir/ast.cc.o"
  "CMakeFiles/mc_lang.dir/ast.cc.o.d"
  "CMakeFiles/mc_lang.dir/lexer.cc.o"
  "CMakeFiles/mc_lang.dir/lexer.cc.o.d"
  "CMakeFiles/mc_lang.dir/parser.cc.o"
  "CMakeFiles/mc_lang.dir/parser.cc.o.d"
  "CMakeFiles/mc_lang.dir/program.cc.o"
  "CMakeFiles/mc_lang.dir/program.cc.o.d"
  "CMakeFiles/mc_lang.dir/sema.cc.o"
  "CMakeFiles/mc_lang.dir/sema.cc.o.d"
  "CMakeFiles/mc_lang.dir/token.cc.o"
  "CMakeFiles/mc_lang.dir/token.cc.o.d"
  "CMakeFiles/mc_lang.dir/type.cc.o"
  "CMakeFiles/mc_lang.dir/type.cc.o.d"
  "libmc_lang.a"
  "libmc_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
