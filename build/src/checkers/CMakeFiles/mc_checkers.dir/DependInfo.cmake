
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkers/buffer_alloc.cc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_alloc.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_alloc.cc.o.d"
  "/root/repo/src/checkers/buffer_mgmt.cc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_mgmt.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_mgmt.cc.o.d"
  "/root/repo/src/checkers/buffer_race.cc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_race.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_race.cc.o.d"
  "/root/repo/src/checkers/buffer_race_magik.cc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_race_magik.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/buffer_race_magik.cc.o.d"
  "/root/repo/src/checkers/checker.cc" "src/checkers/CMakeFiles/mc_checkers.dir/checker.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/checker.cc.o.d"
  "/root/repo/src/checkers/directory.cc" "src/checkers/CMakeFiles/mc_checkers.dir/directory.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/directory.cc.o.d"
  "/root/repo/src/checkers/exec_restrict.cc" "src/checkers/CMakeFiles/mc_checkers.dir/exec_restrict.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/exec_restrict.cc.o.d"
  "/root/repo/src/checkers/lanes.cc" "src/checkers/CMakeFiles/mc_checkers.dir/lanes.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/lanes.cc.o.d"
  "/root/repo/build/src/checkers/metal_sources.cc" "src/checkers/CMakeFiles/mc_checkers.dir/metal_sources.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/metal_sources.cc.o.d"
  "/root/repo/src/checkers/msg_length.cc" "src/checkers/CMakeFiles/mc_checkers.dir/msg_length.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/msg_length.cc.o.d"
  "/root/repo/src/checkers/no_float.cc" "src/checkers/CMakeFiles/mc_checkers.dir/no_float.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/no_float.cc.o.d"
  "/root/repo/src/checkers/registry.cc" "src/checkers/CMakeFiles/mc_checkers.dir/registry.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/registry.cc.o.d"
  "/root/repo/src/checkers/send_wait.cc" "src/checkers/CMakeFiles/mc_checkers.dir/send_wait.cc.o" "gcc" "src/checkers/CMakeFiles/mc_checkers.dir/send_wait.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metal/CMakeFiles/mc_metal.dir/DependInfo.cmake"
  "/root/repo/build/src/global/CMakeFiles/mc_global.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/mc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/mc_match.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
