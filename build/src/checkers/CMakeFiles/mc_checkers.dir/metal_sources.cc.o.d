src/checkers/CMakeFiles/mc_checkers.dir/metal_sources.cc.o: \
 /root/repo/build/src/checkers/metal_sources.cc \
 /usr/include/stdc-predef.h /root/repo/src/checkers/metal_sources.h
