# Empty compiler generated dependencies file for mc_checkers.
# This may be replaced when dependencies are built.
