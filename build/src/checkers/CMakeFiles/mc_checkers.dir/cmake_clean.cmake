file(REMOVE_RECURSE
  "CMakeFiles/mc_checkers.dir/buffer_alloc.cc.o"
  "CMakeFiles/mc_checkers.dir/buffer_alloc.cc.o.d"
  "CMakeFiles/mc_checkers.dir/buffer_mgmt.cc.o"
  "CMakeFiles/mc_checkers.dir/buffer_mgmt.cc.o.d"
  "CMakeFiles/mc_checkers.dir/buffer_race.cc.o"
  "CMakeFiles/mc_checkers.dir/buffer_race.cc.o.d"
  "CMakeFiles/mc_checkers.dir/buffer_race_magik.cc.o"
  "CMakeFiles/mc_checkers.dir/buffer_race_magik.cc.o.d"
  "CMakeFiles/mc_checkers.dir/checker.cc.o"
  "CMakeFiles/mc_checkers.dir/checker.cc.o.d"
  "CMakeFiles/mc_checkers.dir/directory.cc.o"
  "CMakeFiles/mc_checkers.dir/directory.cc.o.d"
  "CMakeFiles/mc_checkers.dir/exec_restrict.cc.o"
  "CMakeFiles/mc_checkers.dir/exec_restrict.cc.o.d"
  "CMakeFiles/mc_checkers.dir/lanes.cc.o"
  "CMakeFiles/mc_checkers.dir/lanes.cc.o.d"
  "CMakeFiles/mc_checkers.dir/metal_sources.cc.o"
  "CMakeFiles/mc_checkers.dir/metal_sources.cc.o.d"
  "CMakeFiles/mc_checkers.dir/msg_length.cc.o"
  "CMakeFiles/mc_checkers.dir/msg_length.cc.o.d"
  "CMakeFiles/mc_checkers.dir/no_float.cc.o"
  "CMakeFiles/mc_checkers.dir/no_float.cc.o.d"
  "CMakeFiles/mc_checkers.dir/registry.cc.o"
  "CMakeFiles/mc_checkers.dir/registry.cc.o.d"
  "CMakeFiles/mc_checkers.dir/send_wait.cc.o"
  "CMakeFiles/mc_checkers.dir/send_wait.cc.o.d"
  "libmc_checkers.a"
  "libmc_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
