file(REMOVE_RECURSE
  "CMakeFiles/mc_cfg.dir/cfg.cc.o"
  "CMakeFiles/mc_cfg.dir/cfg.cc.o.d"
  "CMakeFiles/mc_cfg.dir/path_stats.cc.o"
  "CMakeFiles/mc_cfg.dir/path_stats.cc.o.d"
  "libmc_cfg.a"
  "libmc_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
