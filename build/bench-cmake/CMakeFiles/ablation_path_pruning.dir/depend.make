# Empty dependencies file for ablation_path_pruning.
# This may be replaced when dependencies are built.
