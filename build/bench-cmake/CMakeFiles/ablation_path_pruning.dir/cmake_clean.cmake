file(REMOVE_RECURSE
  "../bench/ablation_path_pruning"
  "../bench/ablation_path_pruning.pdb"
  "CMakeFiles/ablation_path_pruning.dir/ablation_path_pruning.cc.o"
  "CMakeFiles/ablation_path_pruning.dir/ablation_path_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
