file(REMOVE_RECURSE
  "../bench/engine_throughput"
  "../bench/engine_throughput.pdb"
  "CMakeFiles/engine_throughput.dir/engine_throughput.cc.o"
  "CMakeFiles/engine_throughput.dir/engine_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
