file(REMOVE_RECURSE
  "../bench/ablation_value_sensitivity"
  "../bench/ablation_value_sensitivity.pdb"
  "CMakeFiles/ablation_value_sensitivity.dir/ablation_value_sensitivity.cc.o"
  "CMakeFiles/ablation_value_sensitivity.dir/ablation_value_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
