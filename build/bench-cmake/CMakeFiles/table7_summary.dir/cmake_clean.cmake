file(REMOVE_RECURSE
  "../bench/table7_summary"
  "../bench/table7_summary.pdb"
  "CMakeFiles/table7_summary.dir/table7_summary.cc.o"
  "CMakeFiles/table7_summary.dir/table7_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
