# Empty dependencies file for table1_protocol_stats.
# This may be replaced when dependencies are built.
