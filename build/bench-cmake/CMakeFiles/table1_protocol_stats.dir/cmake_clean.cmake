file(REMOVE_RECURSE
  "../bench/table1_protocol_stats"
  "../bench/table1_protocol_stats.pdb"
  "CMakeFiles/table1_protocol_stats.dir/table1_protocol_stats.cc.o"
  "CMakeFiles/table1_protocol_stats.dir/table1_protocol_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_protocol_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
