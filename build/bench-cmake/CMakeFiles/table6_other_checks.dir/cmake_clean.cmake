file(REMOVE_RECURSE
  "../bench/table6_other_checks"
  "../bench/table6_other_checks.pdb"
  "CMakeFiles/table6_other_checks.dir/table6_other_checks.cc.o"
  "CMakeFiles/table6_other_checks.dir/table6_other_checks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_other_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
