# Empty dependencies file for table6_other_checks.
# This may be replaced when dependencies are built.
