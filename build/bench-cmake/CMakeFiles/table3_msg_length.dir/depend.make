# Empty dependencies file for table3_msg_length.
# This may be replaced when dependencies are built.
