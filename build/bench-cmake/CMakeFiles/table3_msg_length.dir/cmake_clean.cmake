file(REMOVE_RECURSE
  "../bench/table3_msg_length"
  "../bench/table3_msg_length.pdb"
  "CMakeFiles/table3_msg_length.dir/table3_msg_length.cc.o"
  "CMakeFiles/table3_msg_length.dir/table3_msg_length.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_msg_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
