file(REMOVE_RECURSE
  "../bench/table5_exec_restrict"
  "../bench/table5_exec_restrict.pdb"
  "CMakeFiles/table5_exec_restrict.dir/table5_exec_restrict.cc.o"
  "CMakeFiles/table5_exec_restrict.dir/table5_exec_restrict.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_exec_restrict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
