# Empty dependencies file for table5_exec_restrict.
# This may be replaced when dependencies are built.
