# Empty compiler generated dependencies file for table4_buffer_mgmt.
# This may be replaced when dependencies are built.
