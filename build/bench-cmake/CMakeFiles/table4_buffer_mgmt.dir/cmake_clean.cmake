file(REMOVE_RECURSE
  "../bench/table4_buffer_mgmt"
  "../bench/table4_buffer_mgmt.pdb"
  "CMakeFiles/table4_buffer_mgmt.dir/table4_buffer_mgmt.cc.o"
  "CMakeFiles/table4_buffer_mgmt.dir/table4_buffer_mgmt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_buffer_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
