file(REMOVE_RECURSE
  "../bench/ablation_authoring_styles"
  "../bench/ablation_authoring_styles.pdb"
  "CMakeFiles/ablation_authoring_styles.dir/ablation_authoring_styles.cc.o"
  "CMakeFiles/ablation_authoring_styles.dir/ablation_authoring_styles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_authoring_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
