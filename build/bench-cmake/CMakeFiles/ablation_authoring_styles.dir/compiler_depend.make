# Empty compiler generated dependencies file for ablation_authoring_styles.
# This may be replaced when dependencies are built.
