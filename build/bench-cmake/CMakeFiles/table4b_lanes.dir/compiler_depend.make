# Empty compiler generated dependencies file for table4b_lanes.
# This may be replaced when dependencies are built.
