file(REMOVE_RECURSE
  "../bench/table4b_lanes"
  "../bench/table4b_lanes.pdb"
  "CMakeFiles/table4b_lanes.dir/table4b_lanes.cc.o"
  "CMakeFiles/table4b_lanes.dir/table4b_lanes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4b_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
