# Empty dependencies file for table2_buffer_race.
# This may be replaced when dependencies are built.
