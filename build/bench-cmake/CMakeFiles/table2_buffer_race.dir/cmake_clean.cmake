file(REMOVE_RECURSE
  "../bench/table2_buffer_race"
  "../bench/table2_buffer_race.pdb"
  "CMakeFiles/table2_buffer_race.dir/table2_buffer_race.cc.o"
  "CMakeFiles/table2_buffer_race.dir/table2_buffer_race.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_buffer_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
