file(REMOVE_RECURSE
  "../bench/ablation_dynamic_vs_static"
  "../bench/ablation_dynamic_vs_static.pdb"
  "CMakeFiles/ablation_dynamic_vs_static.dir/ablation_dynamic_vs_static.cc.o"
  "CMakeFiles/ablation_dynamic_vs_static.dir/ablation_dynamic_vs_static.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
