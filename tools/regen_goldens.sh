#!/bin/sh
# Regenerate every golden file under tests/goldens/ from the current
# build. Run this after an intentional output-format or tool-version
# change, then review the diff — goldens are the authority on rendered
# diagnostics, so an unexpected delta means the change broke the
# byte-stability contract rather than evolved it.
#
# Usage:
#   tools/regen_goldens.sh [build-dir]      (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-$repo_root/build}

if [ ! -x "$build_dir/tests/test_observability" ]; then
    echo "error: $build_dir/tests/test_observability not built." >&2
    echo "Build first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

MCHECK_REGEN_GOLDENS=1 "$build_dir/tests/test_observability" \
    --gtest_brief=1 >/dev/null
MCHECK_REGEN_GOLDENS=1 "$build_dir/tests/test_recovery" \
    --gtest_brief=1 >/dev/null

echo "Regenerated goldens under tests/goldens/:"
git -C "$repo_root" status --short -- tests/goldens || true
echo "Review the diff before committing."
