#!/usr/bin/env python3
"""Command-line client for the mccheckd checking daemon.

Speaks the line-delimited JSON protocol documented in docs/daemon.md
(frozen in tools/daemon_protocol_schema.json) over either transport:

  * ``--daemon BIN`` spawns a fresh daemon and talks over its
    stdin/stdout (extra daemon flags go after ``--daemon-arg``);
  * ``--socket PATH`` connects to an already-running
    ``mccheckd --socket PATH``.

The ``check`` subcommand makes the client a drop-in for batch
``mccheck``: the response's ``output`` is written to stdout byte for
byte, its ``stderr`` text to stderr, and the process exits with the
response's ``exit_code`` — so any harness that diffs mccheck output can
diff daemon output by swapping the command line.

Examples:

  mccheckd_client.py --daemon build/src/driver/mccheckd \\
      check --protocol sci --format json
  mccheckd_client.py --socket /tmp/mc.sock status
  mccheckd_client.py --socket /tmp/mc.sock raw \\
      '{"id": 7, "method": "check", "params": {"protocol": "coma"}}'

Standard library only.
"""

import argparse
import json
import socket
import subprocess
import sys


class ProtocolError(Exception):
    """The daemon answered with an error object (or not at all)."""


class DaemonClient:
    """One connection to a daemon, over stdio-spawn or a Unix socket."""

    def __init__(self, daemon=None, daemon_args=(), socket_path=None):
        self._proc = None
        self._sock = None
        self._rx = b""
        self._next_id = 0
        if daemon is not None:
            self._proc = subprocess.Popen(
                [daemon, *daemon_args],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
            )
        elif socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.connect(socket_path)
        else:
            raise ValueError("need a daemon binary or a socket path")

    def close(self):
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._proc is not None:
            if self._proc.stdin:
                self._proc.stdin.close()
            self._proc.wait(timeout=30)
            self._proc = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _send_line(self, line):
        data = line.encode("utf-8") + b"\n"
        if self._proc is not None:
            self._proc.stdin.write(data)
            self._proc.stdin.flush()
        else:
            self._sock.sendall(data)

    def _recv_line(self):
        if self._proc is not None:
            raw = self._proc.stdout.readline()
            if not raw:
                raise ProtocolError("daemon closed the connection")
            return raw.decode("utf-8")
        while b"\n" not in self._rx:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("daemon closed the connection")
            self._rx += chunk
        line, self._rx = self._rx.split(b"\n", 1)
        return line.decode("utf-8")

    def raw_request(self, line):
        """Send one pre-encoded request line; return the decoded response."""
        self._send_line(line)
        return json.loads(self._recv_line())

    def request(self, method, params=None, request_id=None):
        """Send one request; return the ``result`` or raise ProtocolError."""
        if request_id is None:
            self._next_id += 1
            request_id = self._next_id
        body = {"id": request_id, "method": method}
        if params is not None:
            body["params"] = params
        response = self.raw_request(json.dumps(body))
        if "error" in response:
            err = response["error"]
            raise ProtocolError(
                "%s (code %s)" % (err.get("message"), err.get("code"))
            )
        if response.get("id") != request_id:
            raise ProtocolError(
                "response id %r does not match request id %r"
                % (response.get("id"), request_id)
            )
        return response["result"]

    # -- convenience wrappers ------------------------------------------

    def check(self, params):
        return self.request("check", params)

    def open(self, path, text):
        return self.request("open", {"path": path, "text": text})

    def change(self, path, text):
        return self.request("change", {"path": path, "text": text})

    def close_document(self, path):
        return self.request("close", {"path": path})

    def status(self):
        return self.request("status")

    def shutdown(self):
        return self.request("shutdown")


def _check_params(args):
    params = {}
    if args.protocol:
        params["protocol"] = args.protocol
    if args.metal:
        params["metal"] = args.metal
    if args.files:
        params["files"] = args.files
    if args.format:
        params["format"] = args.format
    if args.jobs:
        params["jobs"] = args.jobs
    if args.prune_paths:
        params["prune_paths"] = args.prune_paths
    if args.match_strategy:
        params["match_strategy"] = args.match_strategy
    if args.witness:
        params["witness"] = True
    if args.witness_limit:
        params["witness_limit"] = args.witness_limit
    if args.unit_timeout_ms:
        params["unit_timeout_ms"] = args.unit_timeout_ms
    if args.unit_max_steps:
        params["unit_max_steps"] = args.unit_max_steps
    if args.fail_fast:
        params["fail_fast"] = True
    return params


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument(
        "--daemon", help="spawn this mccheckd binary and talk over stdio"
    )
    transport.add_argument(
        "--socket", help="connect to a running mccheckd --socket PATH"
    )
    parser.add_argument(
        "--daemon-arg",
        action="append",
        default=[],
        help="extra flag for the spawned daemon (repeatable)",
    )
    parser.add_argument(
        "--no-shutdown",
        action="store_true",
        help="leave the daemon running (default: spawned daemons are"
        " shut down after the command)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run one check request")
    check.add_argument("--protocol")
    check.add_argument("--metal")
    check.add_argument("--format", choices=["text", "json", "sarif"])
    check.add_argument("--jobs", type=int)
    check.add_argument(
        "--prune-paths",
        dest="prune_paths",
        choices=["off", "correlated", "constraints"],
    )
    check.add_argument(
        "--match-strategy",
        dest="match_strategy",
        choices=["table", "legacy"],
    )
    check.add_argument("--witness", action="store_true")
    check.add_argument("--witness-limit", dest="witness_limit", type=int)
    check.add_argument(
        "--unit-timeout-ms", dest="unit_timeout_ms", type=int
    )
    check.add_argument(
        "--unit-max-steps", dest="unit_max_steps", type=int
    )
    check.add_argument("--fail-fast", dest="fail_fast", action="store_true")
    check.add_argument("files", nargs="*")

    sub.add_parser("status", help="print the daemon status object")
    sub.add_parser("shutdown", help="ask the daemon to shut down")
    raw = sub.add_parser("raw", help="send a raw request line")
    raw.add_argument("line")

    args = parser.parse_args(argv)

    client = DaemonClient(
        daemon=args.daemon,
        daemon_args=args.daemon_arg,
        socket_path=args.socket,
    )
    exit_code = 0
    try:
        if args.command == "check":
            result = client.check(_check_params(args))
            sys.stdout.write(result["output"])
            sys.stderr.write(result["stderr"])
            exit_code = result["exit_code"]
        elif args.command == "status":
            print(json.dumps(client.status(), indent=2))
        elif args.command == "shutdown":
            print(json.dumps(client.shutdown()))
            return 0
        elif args.command == "raw":
            print(json.dumps(client.raw_request(args.line)))
        if args.daemon and not args.no_shutdown:
            client.shutdown()
    except ProtocolError as err:
        print("mccheckd_client: %s" % err, file=sys.stderr)
        exit_code = 3
    finally:
        client.close()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
