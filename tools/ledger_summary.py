#!/usr/bin/env python3
"""Summarize an mccheck --ledger JSONL stream.

Reads one or more ledger files (or stdin) and prints:
  - the run manifest(s) (tool, version, flags, exit code),
  - the slowest units by wall time,
  - cache effectiveness (hit rate, visits saved),
  - budget truncations, unit failures, and degraded-parse units,
  - for --shards runs: per-slot worker restarts and retried units.

Usage:
    tools/ledger_summary.py run.jsonl [more.jsonl ...]
    mccheck --ledger /dev/stdout ... | tools/ledger_summary.py
    tools/ledger_summary.py --top 20 run.jsonl

Only the standard library is used; the input schema is frozen in
tools/ledger_schema.json.
"""

import argparse
import json
import sys


def load_events(stream, path):
    events = []
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{lineno}: not JSON: {e}")
        if "event" not in event:
            raise SystemExit(f"{path}:{lineno}: missing 'event' field")
        events.append(event)
    return events


def fmt_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def summarize_workers(events, units, top):
    """Shard-worker section: restart counts per slot, retried units."""
    worker_events = [e for e in events if e["event"] == "worker"]
    retried = [u for u in units if u.get("attempts", 1) > 1]
    if not worker_events and not retried:
        return

    print("\nshard workers:")
    slots = {}
    for e in worker_events:
        slot = slots.setdefault(e.get("worker", -1), {
            "spawn": 0, "crash": 0, "timeout_kill": 0,
            "spawn_failure": 0, "quarantine": 0})
        if e.get("action") in slot:
            slot[e["action"]] += 1
    if slots:
        print(fmt_table(
            ["slot", "spawns", "crashes", "timeout_kills",
             "spawn_failures", "quarantines"],
            [[slot, c["spawn"], c["crash"], c["timeout_kill"],
              c["spawn_failure"], c["quarantine"]]
             for slot, c in sorted(slots.items())]))
    if retried:
        worst = max(u.get("attempts", 1) for u in retried)
        print(f"  {len(retried)} unit(s) needed a retry "
              f"(max {worst} attempts)")
        for u in sorted(retried,
                        key=lambda u: -u.get("attempts", 1))[:top]:
            print(f"  retried: {u.get('function')}/{u.get('checker')} "
                  f"({u.get('attempts')} attempts, "
                  f"worker {u.get('worker', '?')})")
    else:
        print("  no retried units")


def summarize(events, top):
    starts = [e for e in events if e["event"] == "run_start"]
    units = [e for e in events if e["event"] == "unit"]
    ends = [e for e in events if e["event"] == "run_end"]

    for s in starts:
        flags = " ".join(s.get("args", []))
        print(f"run: {s.get('tool', '?')} {s.get('version', '?')}"
              f"  witness={s.get('witness')}"
              f"  witness_limit={s.get('witness_limit')}"
              f"  jobs={s.get('jobs')}")
        if flags:
            print(f"  args: {flags}")
    for e in ends:
        print(f"exit: {e.get('exit_code')}  errors={e.get('errors')}"
              f"  warnings={e.get('warnings')}  units={e.get('units')}"
              f"  total_visits={e.get('total_visits')}")
    if not units:
        print("no unit events")
        return

    print(f"\nslowest units (top {top} of {len(units)}):")
    slowest = sorted(units, key=lambda u: -u.get("wall_ms", 0.0))[:top]
    print(fmt_table(
        ["function", "checker", "wall_ms", "visits", "cache", "flags"],
        [[u.get("function", "?"), u.get("checker", "?"),
          f"{u.get('wall_ms', 0.0):.3f}", u.get("visits", 0),
          u.get("cache", "?"),
          ",".join(f for f in (
              "failed" if u.get("failed") else "",
              u.get("budget_stop") if u.get("budget_stop") != "none" else "",
              "degraded" if u.get("degraded_parse") else "") if f) or "-"]
         for u in slowest]))

    hits = sum(1 for u in units if u.get("cache") == "hit")
    misses = sum(1 for u in units if u.get("cache") == "miss")
    looked_up = hits + misses
    print("\ncache:")
    if looked_up:
        print(f"  {hits} hit(s), {misses} miss(es) "
              f"({100.0 * hits / looked_up:.1f}% hit rate)")
    else:
        print("  off")

    truncated = [u for u in units if u.get("budget_stop", "none") != "none"]
    failed = [u for u in units if u.get("failed")]
    degraded = [u for u in units if u.get("degraded_parse")]
    print("\nhealth:")
    print(f"  {len(truncated)} budget-truncated, {len(failed)} failed, "
          f"{len(degraded)} degraded-parse unit(s)")
    for u in truncated[:top]:
        print(f"  truncated: {u.get('function')}/{u.get('checker')} "
              f"({u.get('budget_stop')} budget)")
    for u in failed[:top]:
        print(f"  failed: {u.get('function')}/{u.get('checker')}")

    summarize_workers(events, units, top)


def main():
    parser = argparse.ArgumentParser(
        description="Summarize an mccheck --ledger JSONL stream.")
    parser.add_argument("ledgers", nargs="*",
                        help="ledger files (default: stdin)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the slowest-units table (default 10)")
    args = parser.parse_args()

    events = []
    if args.ledgers:
        for path in args.ledgers:
            with open(path, encoding="utf-8") as f:
                events.extend(load_events(f, path))
    else:
        events = load_events(sys.stdin, "<stdin>")
    if not events:
        raise SystemExit("no events")
    summarize(events, args.top)


if __name__ == "__main__":
    main()
