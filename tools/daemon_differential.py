#!/usr/bin/env python3
"""Daemon-vs-batch differential harness for mccheckd.

The daemon's core guarantee is that a `check` response carries the
exact bytes a batch ``mccheck`` run would put on stdout for the same
inputs — whatever is resident, however many requests came before. This
harness pins that guarantee three ways:

``protocol`` mode
    Cold and warm `check --protocol` requests in one daemon session,
    each byte-compared against a fresh batch run; the warm request must
    also prove full reuse (every unit replayed, no files re-parsed,
    resident program served).

``files`` mode
    Emit a protocol corpus to disk, then compare a daemon file check
    (cold + warm) against batch over the same file list. File mode has
    no timing table, so text output is comparable here too.

``edit`` mode
    A full edit/re-check cycle: cold check, warm check, then an on-disk
    edit followed by a re-check that must (a) match a fresh batch run
    over the edited tree byte for byte and (b) re-run *only* the edited
    file's units — the response's ``units_reused``/``files_reparsed``
    stats prove per-unit fingerprint invalidation actually engaged.

``kill`` mode
    Robustness under ungraceful death: after a successful warm-up
    check, several requests are queued and the daemon is SIGKILLed
    mid-flight (the view from a client when the daemon segfaults or the
    OOM killer fires). The client must surface a structured transport
    error within a bounded deadline — never hang on the dead pipe, and
    never misread the truncated stream as a response — and a freshly
    started daemon must then serve the exact batch bytes again.

Exits 0 when every assertion holds, 1 with a diagnostic otherwise.
Standard library only (imports the client sitting next to it).
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from mccheckd_client import DaemonClient  # noqa: E402


class Failure(Exception):
    pass


def batch_run(mccheck, args):
    """Run batch mccheck; return (stdout_bytes, exit_code)."""
    proc = subprocess.run([mccheck, *args], capture_output=True)
    return proc.stdout, proc.returncode


def require(cond, what):
    if not cond:
        raise Failure(what)


def compare(tag, daemon_result, batch_out, batch_rc):
    """Byte-compare one daemon check result against one batch run."""
    got = daemon_result["output"].encode("utf-8")
    require(
        daemon_result["exit_code"] == batch_rc,
        "%s: exit codes differ: daemon %d, batch %d"
        % (tag, daemon_result["exit_code"], batch_rc),
    )
    if got != batch_out:
        for i, (a, b) in enumerate(zip(got, batch_out)):
            if a != b:
                context = got[max(0, i - 40) : i + 40]
                raise Failure(
                    "%s: output diverges from batch at byte %d: %r"
                    % (tag, i, context)
                )
        raise Failure(
            "%s: output lengths differ: daemon %d bytes, batch %d bytes"
            % (tag, len(got), len(batch_out))
        )


def require_full_reuse(tag, stats):
    require(
        stats["units_reused"] == stats["units_total"]
        and stats["units_total"] > 0,
        "%s: expected every unit replayed, got %r" % (tag, stats),
    )
    require(
        stats["files_reparsed"] == 0,
        "%s: expected no re-parses, got %r" % (tag, stats),
    )
    require(
        stats["program_reused"],
        "%s: expected the resident program to serve, got %r" % (tag, stats),
    )


def emit_corpus(mccheck, protocol, workdir):
    corpus_dir = os.path.join(workdir, "corpus")
    proc = subprocess.run(
        [mccheck, "--emit-corpus", protocol, corpus_dir],
        capture_output=True,
    )
    if proc.returncode != 0:
        raise Failure(
            "--emit-corpus %s failed: %s" % (protocol, proc.stderr)
        )
    sources = sorted(
        glob.glob(os.path.join(corpus_dir, "**", "*.c"), recursive=True)
    )
    require(sources, "--emit-corpus %s wrote no .c files" % protocol)
    return sources


def run_protocol_mode(args, client):
    batch_out, batch_rc = batch_run(
        args.mccheck, ["--protocol", args.protocol, "--format", args.format]
    )
    require(batch_out, "batch run produced no stdout; comparison vacuous")
    params = {"protocol": args.protocol, "format": args.format}

    cold = client.check(params)
    compare("cold", cold, batch_out, batch_rc)
    require(
        not cold["stats"]["program_reused"],
        "cold check claims a resident program: %r" % cold["stats"],
    )

    warm = client.check(params)
    compare("warm", warm, batch_out, batch_rc)
    require_full_reuse("warm", warm["stats"])

    status = client.status()
    require(
        status["resident"]["protocol_snapshots"] >= 1,
        "no resident protocol snapshot after two checks: %r" % status,
    )


def run_files_mode(args, client):
    sources = emit_corpus(args.mccheck, args.protocol, args.workdir)
    batch_out, batch_rc = batch_run(
        args.mccheck, [*sources, "--format", args.format]
    )
    require(batch_out, "batch run produced no stdout; comparison vacuous")
    params = {"files": sources, "format": args.format}

    cold = client.check(params)
    compare("cold", cold, batch_out, batch_rc)

    warm = client.check(params)
    compare("warm", warm, batch_out, batch_rc)
    require_full_reuse("warm", warm["stats"])


def run_edit_mode(args, client):
    sources = emit_corpus(args.mccheck, args.protocol, args.workdir)
    fmt = ["--format", args.format]
    params = {"files": sources, "format": args.format}

    batch_out, batch_rc = batch_run(args.mccheck, [*sources, *fmt])
    require(batch_out, "batch run produced no stdout; comparison vacuous")
    cold = client.check(params)
    compare("cold", cold, batch_out, batch_rc)
    units_total = cold["stats"]["units_total"]

    warm = client.check(params)
    compare("warm", warm, batch_out, batch_rc)
    require_full_reuse("warm", warm["stats"])

    # Edit exactly one file on disk; a declaration shifts that unit's
    # token-stream fingerprints and nobody else's.
    with open(sources[0], "a") as fp:
        fp.write("int mc_daemon_edit_probe;\n")
    batch_out2, batch_rc2 = batch_run(args.mccheck, [*sources, *fmt])

    edited = client.check(params)
    compare("edited", edited, batch_out2, batch_rc2)
    stats = edited["stats"]
    require(
        stats["files_reparsed"] == 1,
        "edited: expected exactly the edited file re-parsed, got %r"
        % stats,
    )
    require(
        stats["program_reused"],
        "edited: expected an in-place snapshot update, got %r" % stats,
    )
    require(
        0 < stats["units_reused"] < units_total,
        "edited: expected only the edited file's units to re-run "
        "(0 < reused < %d), got %r" % (units_total, stats),
    )

    warm2 = client.check(params)
    compare("warm2", warm2, batch_out2, batch_rc2)
    require_full_reuse("warm2", warm2["stats"])


def run_kill_mode(args):
    from mccheckd_client import ProtocolError

    params = {"protocol": args.protocol, "format": args.format}
    batch_out, batch_rc = batch_run(
        args.mccheck, ["--protocol", args.protocol, "--format", args.format]
    )
    require(batch_out, "batch run produced no stdout; comparison vacuous")

    client = DaemonClient(daemon=args.mccheckd, daemon_args=args.daemon_args)
    try:
        cold = client.check(params)
        compare("kill-warmup", cold, batch_out, batch_rc)

        # Put the daemon under load — several requests on the wire at
        # once — then SIGKILL it mid-flight. SIGKILL is uncatchable, so
        # this is exactly what a segfault or an OOM kill looks like
        # from the client side.
        for request_id in (101, 102, 103):
            client._send_line(
                json.dumps(
                    {"id": request_id, "method": "check", "params": params}
                )
            )
        client._proc.kill()

        outcome = {}

        def reader():
            try:
                outcome["line"] = client._recv_line()
            except ProtocolError as err:
                outcome["error"] = err

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        thread.join(timeout=30)
        require(
            not thread.is_alive(),
            "kill: client still blocked on the dead daemon after 30s",
        )
        require(
            "error" in outcome,
            "kill: expected a transport error, got a response: %r"
            % outcome.get("line"),
        )
        require(
            "closed the connection" in str(outcome["error"]),
            "kill: expected the closed-connection transport error, got: %s"
            % outcome["error"],
        )
        rc = client._proc.wait(timeout=30)
        require(
            rc == -9,
            "kill: daemon exit status %r, expected SIGKILL (-9)" % rc,
        )
    finally:
        client.close()

    # The crash must not poison anything on disk: a fresh daemon serves
    # the same bytes the batch run produces.
    with DaemonClient(
        daemon=args.mccheckd, daemon_args=args.daemon_args
    ) as fresh:
        again = fresh.check(params)
        compare("kill-restart", again, batch_out, batch_rc)
        fresh.shutdown()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mccheck", required=True)
    parser.add_argument("--mccheckd", required=True)
    parser.add_argument("--workdir", required=True)
    parser.add_argument(
        "--mode",
        required=True,
        choices=["protocol", "files", "edit", "kill"],
    )
    parser.add_argument("--protocol", required=True)
    parser.add_argument("--format", default="json")
    parser.add_argument(
        "--daemon-arg", action="append", default=[], dest="daemon_args"
    )
    args = parser.parse_args(argv)

    os.makedirs(args.workdir, exist_ok=True)
    try:
        if args.mode == "kill":
            # Manages its own clients: the first daemon dies by design.
            run_kill_mode(args)
        else:
            with DaemonClient(
                daemon=args.mccheckd, daemon_args=args.daemon_args
            ) as client:
                if args.mode == "protocol":
                    run_protocol_mode(args, client)
                elif args.mode == "files":
                    run_files_mode(args, client)
                else:
                    run_edit_mode(args, client)
                client.shutdown()
    except Failure as failure:
        print(
            "daemon_differential[%s %s %s]: %s"
            % (args.mode, args.protocol, args.format, failure),
            file=sys.stderr,
        )
        return 1
    print(
        "daemon_differential[%s %s %s]: daemon and batch agree"
        % (args.mode, args.protocol, args.format)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
