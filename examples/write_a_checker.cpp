/**
 * @file
 * Writing your own checker, two ways.
 *
 * The paper's thesis is that implementors can encode system rules as
 * small compiler extensions. This example writes a brand-new rule —
 * "interrupts must be re-enabled before a handler returns" — first as a
 * textual metal state machine, then as an embedded C++ checker using the
 * PathWalker, which is the route for rules that need richer state.
 */
#include "cfg/cfg.h"
#include "checkers/checker.h"
#include "lang/program.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "metal/path_walker.h"

#include <iostream>

namespace {

using namespace mc;

/** The same rule, embedded: tracks nesting depth, which metal's flat
 *  states cannot express. */
class IrqDepthChecker : public checkers::Checker
{
  public:
    std::string name() const override { return "irq_depth"; }

    void
    checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                  checkers::CheckContext& ctx) override
    {
        struct State
        {
            int depth = 0;
            std::string key() const { return std::to_string(depth); }
            bool dead() const { return false; }
        };

        metal::PathWalker<State>::Hooks hooks;
        hooks.on_stmt = [&](State& st, const lang::Stmt& stmt) {
            const lang::CallExpr* call = lang::stmtAsCall(stmt);
            if (!call)
                return;
            std::string_view callee = call->calleeName();
            if (callee == "DISABLE_IRQ") {
                ++st.depth;
            } else if (callee == "ENABLE_IRQ") {
                if (st.depth == 0)
                    ctx.sink.error(stmt.loc, name(), "unbalanced-enable",
                                   "ENABLE_IRQ with no matching "
                                   "DISABLE_IRQ");
                else
                    --st.depth;
            }
        };
        hooks.on_exit = [&](State& st) {
            if (st.depth > 0)
                ctx.sink.error(fn.loc, name(), "irq-left-disabled",
                               "'" + fn.name +
                                   "' can return with interrupts "
                                   "disabled");
        };
        metal::PathWalker<State> walker(std::move(hooks));
        walker.walk(cfg, State{});
    }
};

} // namespace

int
main()
{
    using namespace mc;

    lang::Program program;
    program.addSource("irq.c", R"(
void TimerHandler(void) {
    DISABLE_IRQ();
    if (fast_path) {
        quick_work();
        ENABLE_IRQ();
        return;
    }
    slow_work();
    return;
}
void NestedHandler(void) {
    DISABLE_IRQ();
    DISABLE_IRQ();
    ENABLE_IRQ();
    ENABLE_IRQ();
}
)");

    // Route 1: a metal one-state machine — fine for the simple
    // "disabled at return" half of the rule.
    metal::MetalProgram textual = metal::parseMetal(R"(
sm irq_pairing {
    start:
        { DISABLE_IRQ(); } ==> disabled ;
    disabled:
        { ENABLE_IRQ(); } ==> start
      | { return; } ==> { err("returns with interrupts disabled"); }
      ;
}
)");
    support::DiagnosticSink metal_sink;
    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        metal::runStateMachine(*textual.sm, cfg, metal_sink);
    }
    std::cout << "--- textual metal checker ---\n";
    metal_sink.print(std::cout, &program.sourceManager());

    // Route 2: the embedded checker, which also handles nesting (and
    // does NOT flag NestedHandler).
    flash::ProtocolSpec spec;
    support::DiagnosticSink sink;
    IrqDepthChecker checker;
    checkers::runCheckers(program, spec, {&checker}, sink);
    std::cout << "\n--- embedded C++ checker ---\n";
    sink.print(std::cout, &program.sourceManager());

    std::cout << "\nthe embedded checker reports "
              << sink.count(support::Severity::Error)
              << " error(s): the slow path of TimerHandler leaves "
                 "interrupts off; the nested pair is fine.\n";
    return 0;
}
