/**
 * @file
 * Why static checking: the same buggy handler under the FlashLite-style
 * simulator and under the metal checkers.
 *
 * The handler leaks its data buffer on one rare path. The simulator
 * needs thousands of messages before the node deadlocks — and then all
 * you know is "the machine hung". The checker names the line
 * immediately.
 */
#include "checkers/registry.h"
#include "sim/workload.h"

#include <chrono>
#include <iostream>

int
main()
{
    using namespace mc;

    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec hs;
    hs.name = "NIRemoteReplace";
    hs.kind = flash::HandlerKind::Hardware;
    spec.addHandler(hs);
    program.addSource("NIRemoteReplace.c", R"(
void NIRemoteReplace(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int t0 = MSG_WORD0();
    DIR_LOAD();
    if (DIR_READ(state) == DIRTY) {
        DIR_WRITE(state, CLEAN);
        DIR_WRITEBACK();
    }
    if ((t0 & 15) != 7) {
        HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
        NI_SEND(MSG_ACK, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
        FREE_DB();
        return;
    }
    /* rare replacement-race path: forgets to free the buffer */
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(MSG_NAK, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
}
)");
    spec.setLane("MSG_ACK", 2);
    spec.setLane("MSG_NAK", 2);

    // --- static: the buffer management checker -------------------------
    auto set = checkers::makeAllCheckers();
    support::DiagnosticSink sink;
    auto t0 = std::chrono::steady_clock::now();
    checkers::runCheckers(program, spec, set.pointers(), sink);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "--- static checking ("
              << std::chrono::duration<double, std::milli>(t1 - t0).count()
              << " ms) ---\n";
    sink.print(std::cout, &program.sourceManager());

    // --- dynamic: simulate until the machine dies -----------------------
    std::cout << "\n--- simulation ---\n";
    sim::WorkloadDriver driver(program, spec);
    auto t2 = std::chrono::steady_clock::now();
    sim::WorkloadResult result = driver.run(1u << 20);
    auto t3 = std::chrono::steady_clock::now();
    std::cout << "handled " << result.messages_handled << " messages in "
              << std::chrono::duration<double, std::milli>(t3 - t2).count()
              << " ms; "
              << (result.deadlocked
                      ? "then the node DEADLOCKED (buffer pool empty)."
                      : "no failure observed.")
              << '\n';
    std::cout << "leaked buffers by handler (what an implementor would "
                 "have to reconstruct by hand):\n";
    for (const auto& [handler, leaks] : result.leaks_by_handler)
        std::cout << "  " << handler << ": " << leaks << '\n';

    std::cout << "\nthe checker pinpointed the leaking path at its source "
                 "line before the protocol ever ran; the simulator "
                 "reported a hung machine after "
              << result.messages_handled << " messages.\n";
    return 0;
}
