/**
 * @file
 * Quickstart: parse a FLASH-style handler, write a metal checker in ten
 * lines, and run it down every path.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */
#include "cfg/cfg.h"
#include "lang/program.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"

#include <iostream>

int
main()
{
    using namespace mc;

    // 1. A protocol handler with a buffer race on one path: the
    //    `cached` branch reads the data buffer without waiting for the
    //    hardware to finish filling it.
    lang::Program program;
    program.addSource("handler.c", R"(
void NILocalGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int addr = MSG_WORD0();
    int word0 = 0;
    if (cached) {
        WAIT_FOR_DB_FULL(addr);
    }
    word0 = MISCBUS_READ_DB(addr, word0);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);
    FREE_DB();
}
)");

    // 2. The paper's Figure 2 checker, verbatim metal.
    metal::MetalProgram checker = metal::parseMetal(R"(
sm wait_for_db {
    decl { scalar } addr, buf;
    start:
        { WAIT_FOR_DB_FULL(addr); } ==> stop
      | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); }
      ;
}
)");

    // 3. Apply it down every path of every function.
    support::DiagnosticSink sink;
    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        metal::runStateMachine(*checker.sm, cfg, sink);
    }

    // 4. Report. The race is found even though one path synchronizes
    //    correctly — the error is reachable via the other.
    sink.print(std::cout, &program.sourceManager());
    std::cout << "\n" << sink.count(support::Severity::Error)
              << " error(s) found by a "
              << metal::metalSourceLines(
                     "sm wait_for_db {\n  decl { scalar } addr, buf;\n"
                     "  start:\n    { WAIT_FOR_DB_FULL(addr); } ==> stop\n"
                     "  | { MISCBUS_READ_DB(addr, buf); } ==>\n"
                     "      { err(\"Buffer not synchronized\"); }\n  ;\n}")
              << "-line checker.\n";
    return 0;
}
