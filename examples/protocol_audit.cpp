/**
 * @file
 * A full protocol audit: generate the dyn_ptr protocol at its paper
 * scale (~18K LOC), run all nine checkers, and print a triaged findings
 * report with source excerpts — what a FLASH implementor would have seen
 * from the paper's tooling.
 */
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "support/text.h"

#include <chrono>
#include <iostream>

int
main(int argc, char** argv)
{
    using namespace mc;
    std::string protocol = argc > 1 ? argv[1] : "dyn_ptr";

    std::cout << "generating protocol '" << protocol << "'...\n";
    corpus::LoadedProtocol loaded;
    try {
        loaded = corpus::loadProtocol(corpus::profileByName(protocol));
    } catch (const std::out_of_range&) {
        std::cerr << "unknown protocol; choose one of:";
        for (const corpus::ProtocolProfile& p : corpus::paperProfiles())
            std::cerr << ' ' << p.name;
        std::cerr << '\n';
        return 1;
    }
    std::cout << "  " << loaded.gen.files.size() << " source files, "
              << loaded.gen.totalLoc() << " LOC, "
              << loaded.program->functions().size() << " routines\n\n";

    auto set = checkers::makeAllCheckers();
    support::DiagnosticSink sink;
    auto begin = std::chrono::steady_clock::now();
    auto stats = checkers::runCheckers(*loaded.program, loaded.gen.spec,
                                       set.pointers(), sink);
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();

    // Per-checker summary.
    std::vector<std::vector<std::string>> rows;
    for (const auto& s : stats)
        rows.push_back({s.checker, std::to_string(s.errors),
                        std::to_string(s.warnings),
                        std::to_string(s.applied)});
    std::cout << support::formatTable(
                     {"checker", "errors", "warnings", "applied"}, rows)
              << '\n';

    // Triaged findings: reconcile against the generator's ledger so each
    // report is labeled the way the paper's tables label it.
    std::cout << "findings (" << ms << " ms of checking):\n\n";
    for (const auto& meta : checkers::table7Meta()) {
        auto rec = corpus::reconcile(loaded.gen.ledger, sink.diagnostics(),
                                     loaded.file_function, meta.name);
        if (rec.found.empty())
            continue;
        std::cout << "[" << meta.paper_label << "]\n";
        for (const corpus::SeededItem* item : rec.found)
            std::cout << "  " << corpus::seedClassName(item->cls) << ": "
                      << item->handler << " — " << item->description
                      << '\n';
        std::cout << '\n';
    }

    // Show the first few raw diagnostics with their source lines.
    std::cout << "sample diagnostics with source excerpts:\n";
    int shown = 0;
    for (const auto& d : sink.diagnostics()) {
        if (d.severity != support::Severity::Error)
            continue;
        std::cout << "  "
                  << loaded.program->sourceManager().describe(d.loc)
                  << ": [" << d.checker << "] " << d.message << '\n';
        auto line = loaded.program->sourceManager().lineText(d.loc.file_id,
                                                             d.loc.line);
        if (!line.empty())
            std::cout << "      " << support::trim(line) << '\n';
        if (++shown == 6)
            break;
    }
    return 0;
}
