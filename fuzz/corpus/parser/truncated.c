void Truncated(void) {
  while (1) {
    int y =
