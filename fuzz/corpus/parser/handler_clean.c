void PILocalGet(void) {
  HANDLER_DEFS();
  MSG_T* m = MISCBUS_GET_MSG();
  if (m) {
    SEND(m);
  }
  FREE_MSG(m);
}
