;;; 42 +
void Ok(void) { int x = 1; }
} stray closer
int also_ok;
