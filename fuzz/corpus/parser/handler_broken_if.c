void BrokenHandler(void) {
  if (x {
  }
}
void SiblingGet(void) {
  MSG_T* m = MISCBUS_GET_MSG();
}
