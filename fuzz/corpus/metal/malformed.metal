sm broken {
    start:
        { PI_SEND( } ==>
