{ #include "flash-includes.h" }
sm fuzz_wait {
    decl { scalar } addr, buf;
    pat read_db = { MISCBUS_READ_DB(addr, buf); };
    start:
        { WAIT_FOR_DB_FULL(addr); } ==> stop
      | read_db ==> { err("Buffer not synchronized"); }
      ;
}
