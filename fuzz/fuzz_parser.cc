/**
 * @file
 * Fuzz target: the FLASH-dialect lexer + parser, strict and recovering.
 *
 * Properties enforced on arbitrary bytes:
 *   - strict mode only ever fails by throwing ParseError or LexError —
 *     no other exception type, no crash;
 *   - recovery mode never throws at all: every failure must degrade into
 *     poisoned declarations with recorded issues;
 *   - a recovering parse of malformed input is internally consistent —
 *     a degraded program has at least one recorded issue.
 */
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/program.h"

#include <cstdint>
#include <string>

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    const std::string source(reinterpret_cast<const char*>(data), size);
    {
        mc::lang::Program strict;
        try {
            strict.addSource("fuzz.c", source);
        } catch (const mc::lang::ParseError&) {
        } catch (const mc::lang::LexError&) {
        }
    }
    {
        mc::lang::Program recovering(/*recover=*/true);
        mc::lang::TranslationUnit& tu =
            recovering.addSource("fuzz.c", source);
        if (recovering.degraded() && tu.issues.empty())
            __builtin_trap();
        (void)recovering.functions();
    }
    return 0;
}

#include "replay_main.h"
