/**
 * @file
 * Fuzz target: the metal state-machine parser.
 *
 * Property: parseMetal either returns a well-formed MetalProgram (named,
 * with a state machine) or throws MetalParseError — nothing else escapes
 * on any byte sequence.
 */
#include "metal/metal_parser.h"

#include <cstdint>
#include <string>

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    const std::string source(reinterpret_cast<const char*>(data), size);
    try {
        mc::metal::MetalProgram program =
            mc::metal::parseMetal(source, "fuzz.metal");
        if (!program.sm)
            __builtin_trap();
    } catch (const mc::metal::MetalParseError&) {
    }
    return 0;
}

#include "replay_main.h"
