#ifndef MCHECK_FUZZ_REPLAY_MAIN_H
#define MCHECK_FUZZ_REPLAY_MAIN_H

/**
 * Standalone corpus-replay driver for builds without libFuzzer (gcc, or
 * clang with MCHECK_FUZZERS=OFF). Each fuzz target defines
 * LLVMFuzzerTestOneInput and includes this header last; under
 * -fsanitize=fuzzer (MCHECK_LIBFUZZER) libFuzzer supplies main and this
 * header contributes nothing.
 *
 * The replay main feeds every file named on the command line — and every
 * regular file under any directory named on it — through the target
 * exactly as libFuzzer would, so the checked-in seed corpora double as
 * regression tests on toolchains that cannot fuzz. Any escape (uncaught
 * exception, abort, sanitizer report) fails the run.
 */
#if !defined(MCHECK_LIBFUZZER)

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int
main(int argc, char** argv)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; ++i) {
        fs::path arg(argv[i]);
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            for (const fs::directory_entry& entry :
                 fs::recursive_directory_iterator(arg, ec))
                if (entry.is_regular_file())
                    inputs.push_back(entry.path());
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        std::cerr << argv[0]
                  << ": no inputs (pass seed files or corpus dirs)\n";
        return 1;
    }
    // Sorted so a crash report names a reproducible position in the run.
    std::sort(inputs.begin(), inputs.end());
    for (const fs::path& path : inputs) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << argv[0] << ": cannot read " << path << '\n';
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string bytes = buffer.str();
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size());
    }
    std::cout << argv[0] << ": replayed " << inputs.size()
              << " input(s), no escapes\n";
    return 0;
}

#endif // !MCHECK_LIBFUZZER

#endif // MCHECK_FUZZ_REPLAY_MAIN_H
