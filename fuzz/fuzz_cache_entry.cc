/**
 * @file
 * Fuzz target: the .mcu analysis-cache entry decoder.
 *
 * Properties: decodeUnit never throws or crashes on arbitrary bytes — it
 * returns false with a reason — and anything it does accept survives an
 * encode/decode round trip bit-for-bit (the checksum line pins the
 * encoding, so a lossy field would show up as a second-decode failure or
 * a field mismatch).
 */
#include "cache/analysis_cache.h"

#include <cstdint>
#include <string>

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char*>(data), size);
    mc::cache::CachedUnit unit;
    std::string error;
    if (!mc::cache::AnalysisCache::decodeUnit(text, unit, error))
        return 0;
    const std::string encoded =
        mc::cache::AnalysisCache::encodeUnit(unit);
    mc::cache::CachedUnit again;
    std::string error2;
    if (!mc::cache::AnalysisCache::decodeUnit(encoded, again, error2))
        __builtin_trap();
    if (again.checker != unit.checker || again.function != unit.function ||
        again.state != unit.state ||
        again.diags.size() != unit.diags.size())
        __builtin_trap();
    return 0;
}

#include "replay_main.h"
