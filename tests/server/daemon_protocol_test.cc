/**
 * @file
 * Protocol robustness tests for the checking daemon: every malformed,
 * oversized, unknown, or fault-injected request must yield a structured
 * error response — and must NOT poison the daemon, which is proved by
 * following each failure with a healthy request. Also pins the
 * open/change/close document semantics and the admission-control and
 * shutdown behavior of the wire loop.
 */
#include "server/daemon.h"

#include "server/protocol.h"
#include "support/fault_injection.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace mc::server {
namespace {

/** Parse a response line the daemon produced (must be valid JSON). */
JsonValue
response(Daemon& daemon, const std::string& line)
{
    std::string out = daemon.handleRequestLine(line);
    JsonValue v;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(out, v, error)) << out;
    EXPECT_TRUE(v.isObject()) << out;
    EXPECT_NE(v.get("id"), nullptr) << out;
    return v;
}

/** The error code of a response, or 0 if it succeeded. */
int
errorCode(const JsonValue& resp)
{
    const JsonValue* error = resp.get("error");
    if (!error)
        return 0;
    EXPECT_NE(error->get("code"), nullptr);
    EXPECT_NE(error->get("message"), nullptr);
    EXPECT_FALSE(error->get("message")->asString().empty());
    return static_cast<int>(error->get("code")->asInt());
}

/** A `status` request must succeed — the daemon is healthy. */
void
expectHealthy(Daemon& daemon)
{
    JsonValue resp =
        response(daemon, R"({"id": 900, "method": "status"})");
    ASSERT_EQ(errorCode(resp), 0) << resp.dump();
    const JsonValue* result = resp.get("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->get("tool")->asString(), "mccheck");
}

TEST(DaemonProtocol, MalformedJsonIsAParseError)
{
    Daemon daemon({});
    JsonValue resp = response(daemon, "{nope");
    EXPECT_EQ(errorCode(resp), protocol::kParseError);
    // A request that never parsed has no id to echo.
    EXPECT_TRUE(resp.get("id")->isNull());
    expectHealthy(daemon);
}

TEST(DaemonProtocol, NonObjectRequestsAreInvalid)
{
    Daemon daemon({});
    EXPECT_EQ(errorCode(response(daemon, "42")),
              protocol::kInvalidRequest);
    EXPECT_EQ(errorCode(response(daemon, "[]")),
              protocol::kInvalidRequest);
    EXPECT_EQ(errorCode(response(daemon, "null")),
              protocol::kInvalidRequest);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, MissingOrBadMethodIsInvalid)
{
    Daemon daemon({});
    EXPECT_EQ(errorCode(response(daemon, R"({"id": 1})")),
              protocol::kInvalidRequest);
    EXPECT_EQ(errorCode(response(daemon, R"({"id": 1, "method": 7})")),
              protocol::kInvalidRequest);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, BadIdsAreInvalid)
{
    Daemon daemon({});
    EXPECT_EQ(
        errorCode(response(daemon,
                           R"({"id": -1, "method": "status"})")),
        protocol::kInvalidRequest);
    EXPECT_EQ(
        errorCode(response(daemon,
                           R"({"id": 1.5, "method": "status"})")),
        protocol::kInvalidRequest);
    EXPECT_EQ(
        errorCode(response(daemon,
                           R"({"id": "seven", "method": "status"})")),
        protocol::kInvalidRequest);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, UnknownMethodNamesTheMethod)
{
    Daemon daemon({});
    JsonValue resp =
        response(daemon, R"({"id": 3, "method": "recheck"})");
    EXPECT_EQ(errorCode(resp), protocol::kMethodNotFound);
    EXPECT_NE(resp.get("error")->get("message")->asString().find(
                  "recheck"),
              std::string::npos);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, RequestsWithoutIdGetSequenceNumbers)
{
    Daemon daemon({});
    JsonValue first = response(daemon, R"({"method": "status"})");
    JsonValue second = response(daemon, R"({"method": "status"})");
    ASSERT_TRUE(first.get("id")->isIntegral());
    ASSERT_TRUE(second.get("id")->isIntegral());
    EXPECT_LT(first.get("id")->asInt(), second.get("id")->asInt());
}

TEST(DaemonProtocol, OversizedRequestsAreRejectedNotExecuted)
{
    DaemonOptions options;
    options.max_request_bytes = 128;
    Daemon daemon(options);
    std::string big = R"({"id": 5, "method": "status", "params": {"x": ")";
    big.append(512, 'a');
    big += "\"}}";
    JsonValue resp = response(daemon, big);
    EXPECT_EQ(errorCode(resp), protocol::kRequestTooLarge);
    // The line is rejected before parsing — no id is echoed.
    EXPECT_TRUE(resp.get("id")->isNull());
    expectHealthy(daemon);
}

TEST(DaemonProtocol, InvalidCheckParamsNameTheOffender)
{
    Daemon daemon({});
    // Unknown key.
    JsonValue resp = response(
        daemon,
        R"({"id": 1, "method": "check", "params": {"protocl": "sci"}})");
    EXPECT_EQ(errorCode(resp), protocol::kInvalidParams);
    EXPECT_NE(resp.get("error")->get("message")->asString().find(
                  "protocl"),
              std::string::npos);
    // Wrong type.
    EXPECT_EQ(errorCode(response(
                  daemon,
                  R"({"id": 2, "method": "check", )"
                  R"("params": {"files": "a.c"}})")),
              protocol::kInvalidParams);
    // Bad enum value.
    EXPECT_EQ(errorCode(response(
                  daemon,
                  R"({"id": 3, "method": "check", )"
                  R"("params": {"protocol": "sci", "format": "yaml"}})")),
              protocol::kInvalidParams);
    // Fractional jobs.
    EXPECT_EQ(errorCode(response(
                  daemon,
                  R"({"id": 4, "method": "check", )"
                  R"("params": {"protocol": "sci", "jobs": 1.5}})")),
              protocol::kInvalidParams);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, UnknownProtocolIsAFailedCheckNotACrash)
{
    Daemon daemon({});
    JsonValue resp = response(
        daemon,
        R"({"id": 1, "method": "check", )"
        R"("params": {"protocol": "no_such_protocol"}})");
    // The check ran and failed the batch way: exit 3, error on stderr.
    ASSERT_EQ(errorCode(resp), 0) << resp.dump();
    const JsonValue* result = resp.get("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->get("exit_code")->asInt(), 3);
    EXPECT_NE(result->get("stderr")->asString().find("no_such_protocol"),
              std::string::npos);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, AdmissionControlRejectsWhenSaturated)
{
    DaemonOptions options;
    options.max_in_flight = 0; // reject every check, deterministically
    Daemon daemon(options);
    JsonValue resp = response(
        daemon,
        R"({"id": 1, "method": "check", "params": {"protocol": "sci"}})");
    EXPECT_EQ(errorCode(resp), protocol::kServerBusy);
    // Only `check` is admission-controlled; status still serves.
    expectHealthy(daemon);
}

TEST(DaemonProtocol, DocumentLifecycleIsStrict)
{
    Daemon daemon({});
    // change before open: the document must already exist.
    EXPECT_EQ(errorCode(response(
                  daemon,
                  R"({"id": 1, "method": "change", )"
                  R"("params": {"path": "u.c", "text": "x"}})")),
              protocol::kInvalidParams);
    // open, then change, then close.
    JsonValue opened = response(
        daemon,
        R"({"id": 2, "method": "open", )"
        R"("params": {"path": "u.c", "text": "void f(void) {}"}})");
    ASSERT_EQ(errorCode(opened), 0) << opened.dump();
    EXPECT_EQ(opened.get("result")->get("documents")->asInt(), 1);
    EXPECT_TRUE(daemon.resident().hasDocument("u.c"));

    EXPECT_EQ(errorCode(response(
                  daemon,
                  R"({"id": 3, "method": "change", )"
                  R"("params": {"path": "u.c", "text": "int g;"}})")),
              0);
    JsonValue closed = response(
        daemon, R"({"id": 4, "method": "close", "params": {"path": "u.c"}})");
    ASSERT_EQ(errorCode(closed), 0);
    EXPECT_TRUE(closed.get("result")->get("ok")->asBool());
    EXPECT_EQ(closed.get("result")->get("documents")->asInt(), 0);
    // close of a document that is not open reports ok: false.
    JsonValue reclosed = response(
        daemon, R"({"id": 5, "method": "close", "params": {"path": "u.c"}})");
    ASSERT_EQ(errorCode(reclosed), 0);
    EXPECT_FALSE(reclosed.get("result")->get("ok")->asBool());
    // Missing params entirely.
    EXPECT_EQ(errorCode(response(daemon, R"({"id": 6, "method": "open"})")),
              protocol::kInvalidParams);
    expectHealthy(daemon);
}

TEST(DaemonProtocol, OverlayDocumentsAreCheckedWithoutDiskFiles)
{
    Daemon daemon({});
    response(daemon,
             R"({"id": 1, "method": "open", )"
             R"("params": {"path": "overlay_only.c", )"
             R"("text": "void f(void) { x = 1; }"}})");
    JsonValue resp = response(
        daemon,
        R"({"id": 2, "method": "check", )"
        R"("params": {"files": ["overlay_only.c"], "format": "json"}})");
    ASSERT_EQ(errorCode(resp), 0) << resp.dump();
    const JsonValue* result = resp.get("result");
    // The path exists only as an overlay; the check must see it (a
    // bare routine trips exec_restrict's missing-hook rule, proving the
    // overlay text — not the filesystem — was analyzed).
    EXPECT_EQ(result->get("exit_code")->asInt(), 1) << resp.dump();
    EXPECT_NE(result->get("output")->asString().find("overlay_only.c"),
              std::string::npos);
    EXPECT_NE(result->get("output")->asString().find("missing-hook"),
              std::string::npos);
}

TEST(DaemonProtocol, StatusReflectsHandledAndErroredRequests)
{
    Daemon daemon({});
    response(daemon, "{bad");
    response(daemon, R"({"id": 1, "method": "status"})");
    JsonValue resp = response(daemon, R"({"id": 2, "method": "status"})");
    const JsonValue* requests = resp.get("result")->get("requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->get("handled")->asInt(), 2);
    EXPECT_EQ(requests->get("errors")->asInt(), 1);
    ASSERT_GE(requests->get("recent")->items().size(), 2u);
}

#if defined(MCHECK_FAULT_INJECTION)
TEST(DaemonProtocol, InjectedRequestFaultIsContained)
{
    Daemon daemon({});
    // 1-in-1: every keyed probe fires while armed.
    ASSERT_TRUE(support::fault::arm("server.request:1"));
    JsonValue resp =
        response(daemon, R"({"id": 1, "method": "status"})");
    support::fault::disarm();
    EXPECT_EQ(errorCode(resp), protocol::kServerError);
    EXPECT_NE(resp.get("error")->get("message")->asString().find(
                  "server.request"),
              std::string::npos);
    // The fault was contained: the very next request is served.
    expectHealthy(daemon);
}
#endif

TEST(DaemonProtocol, ServeStreamAnswersEveryLineAndStopsOnShutdown)
{
    Daemon daemon({});
    std::istringstream in("{\"id\": 1, \"method\": \"status\"}\n"
                          "\n"
                          "{broken\n"
                          "{\"id\": 2, \"method\": \"shutdown\"}\n"
                          "{\"id\": 3, \"method\": \"status\"}\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serveStream(in, out), 0);
    EXPECT_TRUE(daemon.shutdownRequested());

    // Blank lines are skipped; everything after shutdown is unread.
    std::istringstream lines(out.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        JsonValue v;
        std::string error;
        ASSERT_TRUE(JsonValue::parse(line, v, error)) << line;
        ++count;
    }
    EXPECT_EQ(count, 3);
}

TEST(DaemonProtocol, ShutdownAcknowledges)
{
    Daemon daemon({});
    JsonValue resp =
        response(daemon, R"({"id": 1, "method": "shutdown"})");
    ASSERT_EQ(errorCode(resp), 0);
    EXPECT_TRUE(resp.get("result")->get("ok")->asBool());
    EXPECT_TRUE(daemon.shutdownRequested());
}

} // namespace
} // namespace mc::server
