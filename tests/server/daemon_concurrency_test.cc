/**
 * @file
 * Concurrency tests for the checking daemon, written to run under
 * ThreadSanitizer: many threads hammer one Daemon with overlapping
 * check/status/malformed requests, and every check response must be
 * byte-identical to the serial batch answer for its parameters —
 * execution serializes on the daemon's mutex, so interleaving may
 * affect ordering but never bytes. Also races the admission-control
 * counter to show rejections are structured errors, not crashes.
 */
#include "server/daemon.h"

#include "server/check_request.h"
#include "server/json.h"
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mc::server {
namespace {

/** Tiny deterministic sources; each trips exec_restrict (exit 1). */
const std::map<std::string, std::string>&
sources()
{
    static const std::map<std::string, std::string> files = {
        {"conc_a.c", "void HandlerA(void) { x = 1; }\n"},
        {"conc_b.c", "void HandlerB(void) { if (a) y = 2; }\n"},
        {"conc_c.c", "void HandlerC(void) { while (n) n = n - 1; }\n"},
    };
    return files;
}

std::string
batchOutput(const std::vector<std::string>& files, int& exit_code)
{
    CheckRequest request;
    request.mode = CheckRequest::Mode::Files;
    request.files = files;
    request.format = support::OutputFormat::Json;
    request.jobs = 1;
    request.read_file = [](const std::string& path, std::string& contents,
                           std::string& error) {
        auto it = sources().find(path);
        if (it == sources().end()) {
            error = "no such overlay";
            return false;
        }
        contents = it->second;
        return true;
    };
    std::ostringstream out;
    std::ostringstream err;
    exit_code = runCheckRequest(request, nullptr, nullptr, out, err)
                    .exit_code;
    return out.str();
}

std::string
checkRequestLine(const std::vector<std::string>& files)
{
    JsonValue request = JsonValue::object();
    request.set("method", JsonValue::string("check"));
    JsonValue params = JsonValue::object();
    JsonValue list = JsonValue::array();
    for (const std::string& f : files)
        list.push(JsonValue::string(f));
    params.set("files", std::move(list));
    params.set("format", JsonValue::string("json"));
    params.set("jobs", JsonValue::number(std::int64_t{1}));
    request.set("params", std::move(params));
    return request.dump();
}

TEST(DaemonConcurrency, OverlappingChecksMatchSerialBytes)
{
    // Serial ground truth, one answer per parameter set.
    const std::vector<std::vector<std::string>> file_sets = {
        {"conc_a.c"},
        {"conc_b.c", "conc_c.c"},
        {"conc_a.c", "conc_b.c", "conc_c.c"},
    };
    std::vector<std::string> expected_output(file_sets.size());
    std::vector<int> expected_exit(file_sets.size());
    for (std::size_t i = 0; i < file_sets.size(); ++i)
        expected_output[i] = batchOutput(file_sets[i], expected_exit[i]);

    DaemonOptions options;
    options.max_in_flight = 64; // admission must not fire in this test
    Daemon daemon(options);
    for (const auto& [path, text] : sources()) {
        JsonValue request = JsonValue::object();
        request.set("method", JsonValue::string("open"));
        JsonValue params = JsonValue::object();
        params.set("path", JsonValue::string(path));
        params.set("text", JsonValue::string(text));
        request.set("params", std::move(params));
        daemon.handleRequestLine(request.dump());
    }

    constexpr int kThreads = 4;
    constexpr int kIterations = 6;
    std::vector<std::string> failures(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                const std::size_t which =
                    static_cast<std::size_t>(t + i) % file_sets.size();
                std::string line = daemon.handleRequestLine(
                    checkRequestLine(file_sets[which]));
                JsonValue response;
                std::string error;
                if (!JsonValue::parse(line, response, error)) {
                    failures[t] = "unparsable response: " + line;
                    return;
                }
                const JsonValue* result = response.get("result");
                if (!result) {
                    failures[t] = "error response: " + line;
                    return;
                }
                if (result->get("output")->asString() !=
                        expected_output[which] ||
                    result->get("exit_code")->asInt() !=
                        expected_exit[which]) {
                    failures[t] =
                        "thread " + std::to_string(t) + " iteration " +
                        std::to_string(i) +
                        ": response bytes differ from serial batch run";
                    return;
                }
            }
        });
    }
    // Status and garbage traffic race the checks: decode is lock-free,
    // bookkeeping is guarded — TSan watches both.
    threads.emplace_back([&] {
        for (int i = 0; i < 3 * kIterations; ++i) {
            daemon.handleRequestLine(R"({"method": "status"})");
            daemon.handleRequestLine("{garbage");
        }
    });
    for (std::thread& thread : threads)
        thread.join();
    for (const std::string& failure : failures)
        EXPECT_EQ(failure, "");
}

TEST(DaemonConcurrency, AdmissionRejectionsAreStructuredUnderRace)
{
    DaemonOptions options;
    options.max_in_flight = 1; // most overlapping checks must be rejected
    Daemon daemon(options);
    JsonValue open = JsonValue::object();
    open.set("method", JsonValue::string("open"));
    JsonValue params = JsonValue::object();
    params.set("path", JsonValue::string("conc_a.c"));
    params.set("text", JsonValue::string(sources().at("conc_a.c")));
    open.set("params", std::move(params));
    daemon.handleRequestLine(open.dump());

    const std::string line = checkRequestLine({"conc_a.c"});
    std::vector<std::string> bad(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 4; ++i) {
                std::string out = daemon.handleRequestLine(line);
                JsonValue response;
                std::string error;
                if (!JsonValue::parse(out, response, error)) {
                    bad[t] = "unparsable response: " + out;
                    return;
                }
                // Either the check ran (result) or admission bounced it
                // with the dedicated busy code — nothing else.
                if (response.get("result"))
                    continue;
                const JsonValue* err = response.get("error");
                if (!err ||
                    err->get("code")->asInt() != protocol::kServerBusy) {
                    bad[t] = "unexpected response: " + out;
                    return;
                }
            }
        });
    }
    for (std::thread& thread : threads)
        thread.join();
    for (const std::string& failure : bad)
        EXPECT_EQ(failure, "");
    // The daemon is healthy afterwards and the in-flight gauge drained:
    // one more check must be admitted and still match batch bytes.
    int exit_code = 0;
    std::string expected = batchOutput({"conc_a.c"}, exit_code);
    std::string out = daemon.handleRequestLine(line);
    JsonValue response;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(out, response, error)) << out;
    ASSERT_NE(response.get("result"), nullptr) << out;
    EXPECT_EQ(response.get("result")->get("output")->asString(), expected);
    EXPECT_EQ(response.get("result")->get("exit_code")->asInt(), exit_code);
}

} // namespace
} // namespace mc::server
