/**
 * @file
 * ResidentState and memory-cache tests: overlay precedence for the
 * daemon's open/change/close documents, snapshot reuse with in-place
 * re-parse of exactly the changed files (stable file ids), LRU
 * eviction of file snapshots, protocol/metal snapshot reuse, and the
 * in-memory AnalysisCache mode (same encode/decode path as disk, zero
 * filesystem traffic).
 */
#include "server/resident.h"

#include "cache/analysis_cache.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace mc::server {
namespace {

/** A FileReader over an in-test map (no filesystem). */
class MapReader
{
  public:
    std::map<std::string, std::string> files;

    FileReader reader()
    {
        return [this](const std::string& path, std::string& contents,
                      std::string& error) {
            auto it = files.find(path);
            if (it == files.end()) {
                error = "cannot open " + path;
                return false;
            }
            contents = it->second;
            return true;
        };
    }
};

TEST(ResidentDocuments, OverlayShadowsDiskAndCloseRestoresIt)
{
    ResidentState resident;
    EXPECT_FALSE(resident.hasDocument("doc.c"));

    resident.openDocument("doc.c", "int overlay;\n");
    ASSERT_TRUE(resident.hasDocument("doc.c"));
    EXPECT_EQ(resident.documentCount(), 1u);

    std::string contents;
    std::string error;
    ASSERT_TRUE(resident.readFile("doc.c", contents, error));
    EXPECT_EQ(contents, "int overlay;\n");

    // Re-open replaces the overlay in place.
    resident.openDocument("doc.c", "int newer;\n");
    EXPECT_EQ(resident.documentCount(), 1u);
    ASSERT_TRUE(resident.readFile("doc.c", contents, error));
    EXPECT_EQ(contents, "int newer;\n");

    // Close drops the overlay; the path now resolves to disk (and this
    // one does not exist there).
    EXPECT_TRUE(resident.closeDocument("doc.c"));
    EXPECT_FALSE(resident.closeDocument("doc.c"));
    EXPECT_FALSE(resident.readFile("doc.c", contents, error));
    EXPECT_FALSE(error.empty());
}

TEST(ResidentPrograms, SameFileListReusesTheSnapshot)
{
    ResidentState resident;
    MapReader disk;
    disk.files["a.c"] = "void fa(void) { x = 1; }\n";
    disk.files["b.c"] = "void fb(void) { y = 2; }\n";
    const std::vector<std::string> files = {"a.c", "b.c"};

    PreparedProgram first = resident.prepareFiles(files, disk.reader());
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_FALSE(first.reused);
    EXPECT_EQ(first.files_reparsed, 2u);
    ASSERT_NE(first.program, nullptr);
    ASSERT_NE(first.cfg_cache, nullptr);
    EXPECT_EQ(resident.fileSnapshotCount(), 1u);

    PreparedProgram second = resident.prepareFiles(files, disk.reader());
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(second.reused);
    EXPECT_EQ(second.files_reparsed, 0u);
    // The very same resident program object serves again.
    EXPECT_EQ(second.program, first.program);
    EXPECT_EQ(resident.fileSnapshotCount(), 1u);
}

TEST(ResidentPrograms, EditedFileReparsesInPlaceOnly)
{
    ResidentState resident;
    MapReader disk;
    disk.files["a.c"] = "void fa(void) { x = 1; }\n";
    disk.files["b.c"] = "void fb(void) { y = 2; }\n";
    const std::vector<std::string> files = {"a.c", "b.c"};

    PreparedProgram first = resident.prepareFiles(files, disk.reader());
    ASSERT_TRUE(first.ok) << first.error;
    const std::size_t functions_before = resident.residentFunctionCount();

    // Grow b.c by one routine: exactly one file re-parses, in place.
    disk.files["b.c"] =
        "void fb(void) { y = 2; }\nvoid fb2(void) { z = 3; }\n";
    PreparedProgram second = resident.prepareFiles(files, disk.reader());
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.reused);
    EXPECT_EQ(second.files_reparsed, 1u);
    EXPECT_EQ(second.program, first.program);
    EXPECT_EQ(resident.residentFunctionCount(), functions_before + 1);

    // Unchanged again: free.
    PreparedProgram third = resident.prepareFiles(files, disk.reader());
    ASSERT_TRUE(third.ok);
    EXPECT_EQ(third.files_reparsed, 0u);
}

TEST(ResidentPrograms, DifferentFileListBuildsASecondSnapshot)
{
    ResidentState resident;
    MapReader disk;
    disk.files["a.c"] = "void fa(void) { x = 1; }\n";
    disk.files["b.c"] = "void fb(void) { y = 2; }\n";

    PreparedProgram both =
        resident.prepareFiles({"a.c", "b.c"}, disk.reader());
    ASSERT_TRUE(both.ok);
    PreparedProgram just_a = resident.prepareFiles({"a.c"}, disk.reader());
    ASSERT_TRUE(just_a.ok);
    EXPECT_FALSE(just_a.reused);
    EXPECT_NE(just_a.program, both.program);
    EXPECT_EQ(resident.fileSnapshotCount(), 2u);
}

TEST(ResidentPrograms, SnapshotsAreLruBounded)
{
    ResidentState resident;
    MapReader disk;
    for (int i = 0; i < 6; ++i)
        disk.files["f" + std::to_string(i) + ".c"] =
            "void fn" + std::to_string(i) + "(void) { x = 1; }\n";

    for (int i = 0; i < 6; ++i) {
        PreparedProgram p = resident.prepareFiles(
            {"f" + std::to_string(i) + ".c"}, disk.reader());
        ASSERT_TRUE(p.ok);
    }
    // The resident set is bounded; the oldest snapshots were evicted.
    EXPECT_LE(resident.fileSnapshotCount(), 4u);

    // The most recent list is still resident...
    PreparedProgram recent = resident.prepareFiles({"f5.c"}, disk.reader());
    EXPECT_TRUE(recent.reused);
    // ...and the evicted one rebuilds from scratch.
    PreparedProgram evicted = resident.prepareFiles({"f0.c"}, disk.reader());
    EXPECT_FALSE(evicted.reused);
}

TEST(ResidentPrograms, MissingFileFailsWithoutPoisoningTheSnapshot)
{
    ResidentState resident;
    MapReader disk;
    disk.files["a.c"] = "void fa(void) { x = 1; }\n";
    PreparedProgram ok = resident.prepareFiles({"a.c"}, disk.reader());
    ASSERT_TRUE(ok.ok);

    PreparedProgram missing =
        resident.prepareFiles({"a.c", "ghost.c"}, disk.reader());
    EXPECT_FALSE(missing.ok);
    EXPECT_NE(missing.error.find("ghost.c"), std::string::npos);

    // The original snapshot still serves.
    PreparedProgram again = resident.prepareFiles({"a.c"}, disk.reader());
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.reused);
}

TEST(ResidentPrograms, ProtocolSnapshotLoadsOnceAndReuses)
{
    ResidentState resident;
    checkers::CfgCache* cfgs = nullptr;
    bool reused = true;
    corpus::LoadedProtocol& first =
        resident.protocolSnapshot("bitvector", cfgs, reused);
    EXPECT_FALSE(reused);
    ASSERT_NE(cfgs, nullptr);
    ASSERT_NE(first.program, nullptr);
    EXPECT_EQ(resident.protocolSnapshotCount(), 1u);

    checkers::CfgCache* cfgs2 = nullptr;
    corpus::LoadedProtocol& second =
        resident.protocolSnapshot("bitvector", cfgs2, reused);
    EXPECT_TRUE(reused);
    EXPECT_EQ(&second, &first);
    EXPECT_EQ(cfgs2, cfgs);

    EXPECT_THROW(resident.protocolSnapshot("no_such", cfgs, reused),
                 std::out_of_range);
}

TEST(ResidentMetal, ProgramsAreKeyedBySourceContent)
{
    ResidentState resident;
    const std::string source = "sm probe {\n"
                               "    pat assign = { x = 1 } ;\n"
                               "    first:\n"
                               "        assign ==> { err(\"assign seen\"); } ;\n"
                               "}\n";
    const metal::MetalProgram& first =
        resident.metalProgram(source, "probe.metal");
    EXPECT_EQ(resident.metalProgramCount(), 1u);
    const metal::MetalProgram& second =
        resident.metalProgram(source, "probe.metal");
    EXPECT_EQ(&second, &first);
    EXPECT_EQ(resident.metalProgramCount(), 1u);

    // Different source text compiles a second resident program.
    resident.metalProgram(source + "\n", "probe.metal");
    EXPECT_EQ(resident.metalProgramCount(), 2u);

    EXPECT_THROW(resident.metalProgram("sm broken {", "broken.metal"),
                 metal::MetalParseError);
}

TEST(MemoryCache, StoresAndReplaysWithoutAFilesystem)
{
    std::unique_ptr<cache::AnalysisCache> cache =
        cache::AnalysisCache::inMemory();
    EXPECT_TRUE(cache->memoryBacked());
    EXPECT_FALSE(cache->readonly());
    EXPECT_EQ(cache->entryCount(), 0u);

    cache::CachedUnit unit;
    unit.checker = "lanes";
    unit.function = "PILocalGet";
    unit.state = "applied 1\n";
    cache::CachedDiagnostic diag;
    diag.severity = 1;
    diag.file = "a.c";
    diag.line = 3;
    diag.column = 1;
    diag.checker = "lanes";
    diag.rule = "lane-overflow";
    diag.message = "too many lanes";
    unit.diags.push_back(diag);
    cache->store(0xabcdefu, unit);

    EXPECT_EQ(cache->entryCount(), 1u);
    EXPECT_GT(cache->residentBytes(), 0u);

    cache::CachedUnit loaded;
    ASSERT_TRUE(cache->lookup(0xabcdefu, loaded));
    EXPECT_EQ(loaded.checker, unit.checker);
    EXPECT_EQ(loaded.function, unit.function);
    EXPECT_EQ(loaded.state, unit.state);
    ASSERT_EQ(loaded.diags.size(), 1u);
    EXPECT_EQ(loaded.diags[0].message, "too many lanes");

    cache::CachedUnit missing;
    EXPECT_FALSE(cache->lookup(0x1234u, missing));

    cache::CacheStats stats = cache->stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_TRUE(cache->takeWarnings().empty());
}

TEST(MemoryCache, TrimEvictsOldestStoredFirst)
{
    std::unique_ptr<cache::AnalysisCache> cache =
        cache::AnalysisCache::inMemory();
    cache::CachedUnit unit;
    unit.checker = "lanes";
    unit.state = "applied 1\n";
    for (std::uint64_t key = 1; key <= 3; ++key) {
        unit.function = "fn" + std::to_string(key);
        cache->store(key, unit);
    }
    const std::uint64_t total = cache->residentBytes();
    ASSERT_GT(total, 0u);

    // Room for roughly two entries: the first-stored key goes.
    cache->trim(total - total / 3);
    EXPECT_LT(cache->entryCount(), 3u);
    cache::CachedUnit out;
    EXPECT_FALSE(cache->lookup(1, out));
    EXPECT_TRUE(cache->lookup(3, out));
    EXPECT_GE(cache->stats().evictions, 1u);

    // trim(0) empties the store.
    cache->trim(0);
    EXPECT_EQ(cache->entryCount(), 0u);
    EXPECT_EQ(cache->residentBytes(), 0u);
}

} // namespace
} // namespace mc::server
