/**
 * @file
 * Randomized edit-session differential: a seeded generator drives the
 * daemon through open/change/check sequences over corpus-derived
 * sources, and after EVERY intermediate step the daemon's check
 * response must be byte-identical (output and exit code) to a fresh
 * batch runCheckRequest over the same snapshot — resident programs,
 * in-place re-parses, and fingerprint-keyed replay may never show
 * through in the bytes. Failures print the seed (SCOPED_TRACE) so any
 * divergence replays deterministically.
 */
#include "server/daemon.h"

#include "corpus/generator.h"
#include "corpus/profile.h"
#include "server/check_request.h"
#include "server/json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace mc::server {
namespace {

/** The authoritative answer: a cold batch run over `snapshot`. */
struct BatchResult
{
    std::string output;
    int exit_code = 3;
};

BatchResult
batchRun(const std::map<std::string, std::string>& snapshot,
         const std::vector<std::string>& files)
{
    CheckRequest request;
    request.mode = CheckRequest::Mode::Files;
    request.files = files;
    request.format = support::OutputFormat::Json;
    request.jobs = 2;
    request.read_file = [&snapshot](const std::string& path,
                                    std::string& contents,
                                    std::string& error) {
        auto it = snapshot.find(path);
        if (it == snapshot.end()) {
            error = "no such overlay";
            return false;
        }
        contents = it->second;
        return true;
    };
    std::ostringstream out;
    std::ostringstream err;
    CheckOutcome outcome =
        runCheckRequest(request, /*cache=*/nullptr, /*resident=*/nullptr,
                        out, err);
    return BatchResult{out.str(), outcome.exit_code};
}

JsonValue
jsonRequest(Daemon& daemon, const JsonValue& request)
{
    std::string line = daemon.handleRequestLine(request.dump());
    JsonValue response;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(line, response, error)) << line;
    EXPECT_EQ(response.get("error"), nullptr) << line;
    return response;
}

void
sendDocument(Daemon& daemon, const std::string& method,
             const std::string& path, const std::string& text)
{
    JsonValue request = JsonValue::object();
    request.set("method", JsonValue::string(method));
    JsonValue params = JsonValue::object();
    params.set("path", JsonValue::string(path));
    params.set("text", JsonValue::string(text));
    request.set("params", std::move(params));
    jsonRequest(daemon, request);
}

/** One daemon check over `files`; returns (output, exit_code, stats). */
JsonValue
daemonCheck(Daemon& daemon, const std::vector<std::string>& files)
{
    JsonValue request = JsonValue::object();
    request.set("method", JsonValue::string("check"));
    JsonValue params = JsonValue::object();
    JsonValue list = JsonValue::array();
    for (const std::string& f : files)
        list.push(JsonValue::string(f));
    params.set("files", std::move(list));
    params.set("format", JsonValue::string("json"));
    params.set("jobs", JsonValue::number(std::int64_t{2}));
    request.set("params", std::move(params));
    JsonValue response = jsonRequest(daemon, request);
    const JsonValue* result = response.get("result");
    EXPECT_NE(result, nullptr);
    return result ? *result : JsonValue();
}

/** Corpus-derived base sources: real handler code, kept small. */
std::map<std::string, std::string>
baseSources(std::size_t max_files)
{
    corpus::ProtocolProfile profile = corpus::profileByName("bitvector");
    corpus::GeneratedProtocol gen = corpus::generateProtocol(profile);
    std::map<std::string, std::string> snapshot;
    for (const corpus::GeneratedFile& file : gen.files) {
        if (snapshot.size() >= max_files)
            break;
        snapshot.emplace(file.name, file.source);
    }
    return snapshot;
}

class EditSession
{
  public:
    EditSession(std::uint32_t seed,
                std::map<std::string, std::string> base)
        : rng_(seed), snapshot_(std::move(base)), original_(snapshot_)
    {
        for (const auto& [path, _] : snapshot_)
            paths_.push_back(path);
    }

    /** Apply one random mutation through both the daemon and snapshot. */
    void mutate(Daemon& daemon)
    {
        const std::string& path = pick(paths_);
        std::string& text = snapshot_[path];
        const std::string n = std::to_string(++counter_);
        switch (rng_() % 4) {
          case 0: // benign declaration: fingerprints shift, findings don't
            text += "int probe_" + n + ";\n";
            break;
          case 1: // new routine: the unit set itself changes
            text += "void extra_" + n + "(void) { y = " + n + "; }\n";
            break;
          case 2: // parse damage: error-recovery must stay byte-stable
            text += "int broken_" + n + "(\n";
            break;
          default: // revert to the pristine generated source
            text = original_.at(path);
            break;
        }
        sendDocument(daemon, "change", path, text);
    }

    /** A random non-empty subset of the files, in stable order. */
    std::vector<std::string> someFiles()
    {
        std::vector<std::string> files;
        for (const std::string& path : paths_)
            if (rng_() % 3 != 0)
                files.push_back(path);
        if (files.empty())
            files.push_back(pick(paths_));
        return files;
    }

    const std::map<std::string, std::string>& snapshot() const
    {
        return snapshot_;
    }

  private:
    const std::string& pick(const std::vector<std::string>& v)
    {
        return v[rng_() % v.size()];
    }

    std::mt19937 rng_;
    std::map<std::string, std::string> snapshot_;
    std::map<std::string, std::string> original_;
    std::vector<std::string> paths_;
    int counter_ = 0;
};

void
runSession(std::uint32_t seed, int steps)
{
    SCOPED_TRACE("edit-session seed " + std::to_string(seed));
    Daemon daemon({});
    EditSession session(seed, baseSources(/*max_files=*/6));
    for (const auto& [path, text] : session.snapshot())
        sendDocument(daemon, "open", path, text);

    for (int step = 0; step < steps; ++step) {
        SCOPED_TRACE("step " + std::to_string(step));
        if (step > 0)
            session.mutate(daemon);
        const std::vector<std::string> files = session.someFiles();
        JsonValue result = daemonCheck(daemon, files);
        BatchResult batch = batchRun(session.snapshot(), files);
        ASSERT_NE(result.get("output"), nullptr);
        EXPECT_EQ(result.get("output")->asString(), batch.output);
        EXPECT_EQ(result.get("exit_code")->asInt(), batch.exit_code);
    }
}

TEST(DaemonProperty, EditSessionsMatchBatchSeed1)
{
    runSession(1, 10);
}

TEST(DaemonProperty, EditSessionsMatchBatchSeed2)
{
    runSession(20260807, 10);
}

TEST(DaemonProperty, EditSessionsMatchBatchSeed3)
{
    runSession(424242, 10);
}

/** Re-checking an unchanged snapshot must fully reuse resident state —
 *  and still match batch bytes exactly. */
TEST(DaemonProperty, UnchangedRecheckReusesEverything)
{
    Daemon daemon({});
    EditSession session(7, baseSources(/*max_files=*/4));
    for (const auto& [path, text] : session.snapshot())
        sendDocument(daemon, "open", path, text);

    std::vector<std::string> files;
    for (const auto& [path, _] : session.snapshot())
        files.push_back(path);

    JsonValue cold = daemonCheck(daemon, files);
    JsonValue warm = daemonCheck(daemon, files);
    EXPECT_EQ(warm.get("output")->asString(),
              cold.get("output")->asString());

    const JsonValue* stats = warm.get("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->get("files_reparsed")->asInt(), 0);
    EXPECT_TRUE(stats->get("program_reused")->asBool());
    EXPECT_GT(stats->get("units_total")->asInt(), 0);
    EXPECT_EQ(stats->get("units_reused")->asInt(),
              stats->get("units_total")->asInt());
}

} // namespace
} // namespace mc::server
