/**
 * @file
 * Wire-protocol JSON tests: parse/dump round-trips, insertion-order
 * rendering (wire bytes must be deterministic), integral-vs-fractional
 * number discipline, and rejection of everything outside the strict
 * line-protocol subset (trailing garbage, bad escapes, control
 * characters, runaway nesting).
 */
#include "server/json.h"

#include <gtest/gtest.h>

#include <string>

namespace mc::server {
namespace {

JsonValue
parseOk(const std::string& text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, v, error)) << text << ": " << error;
    return v;
}

std::string
parseFail(const std::string& text)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse(text, v, error)) << text;
    EXPECT_FALSE(error.empty()) << text;
    return error;
}

TEST(ServerJson, ScalarsRoundTrip)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool(true));
    EXPECT_EQ(parseOk("42").asInt(), 42);
    EXPECT_EQ(parseOk("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(parseOk("2.5").asDouble(), 2.5);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(ServerJson, IntegralNumbersAreDistinguished)
{
    // Integrality is value-based (JSON Schema's rule): 3, 3.0, and 3e2
    // are all whole numbers; 1.5 is not.
    EXPECT_TRUE(parseOk("3").isIntegral());
    EXPECT_TRUE(parseOk("3.0").isIntegral());
    EXPECT_TRUE(parseOk("3e2").isIntegral());
    EXPECT_FALSE(parseOk("1.5").isIntegral());

    // asInt refuses fractional values rather than truncating: a
    // malformed "jobs": 1.5 must be an error, not one thread.
    bool ok = true;
    EXPECT_EQ(parseOk("1.5").asInt(0, &ok), 0);
    EXPECT_FALSE(ok);
    ok = false;
    EXPECT_EQ(parseOk("6").asInt(0, &ok), 6);
    EXPECT_TRUE(ok);
    ok = false;
    EXPECT_EQ(parseOk("3.0").asInt(0, &ok), 3);
    EXPECT_TRUE(ok);
}

TEST(ServerJson, StringEscapesRoundTrip)
{
    JsonValue v = parseOk(R"("a\"b\\c\nd\teA")");
    EXPECT_EQ(v.asString(), "a\"b\\c\nd\teA");
    // Dumping re-escapes to a parseable spelling.
    JsonValue again = parseOk(v.dump());
    EXPECT_EQ(again.asString(), v.asString());
}

TEST(ServerJson, ObjectsPreserveInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", JsonValue::number(std::int64_t{1}));
    obj.set("alpha", JsonValue::number(std::int64_t{2}));
    obj.set("mid", JsonValue::string("x"));
    // Insertion order, not key order: response fields render in the
    // order the handler set them, keeping wire bytes deterministic.
    EXPECT_EQ(obj.dump(), R"({"zebra": 1, "alpha": 2, "mid": "x"})");

    // Overwriting keeps the original position.
    obj.set("zebra", JsonValue::number(std::int64_t{9}));
    EXPECT_EQ(obj.dump(), R"({"zebra": 9, "alpha": 2, "mid": "x"})");
}

TEST(ServerJson, ParsedObjectsKeepSourceOrder)
{
    JsonValue v = parseOk(R"({"b": 1, "a": [true, null], "c": {"d": 2}})");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "b");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "c");
    ASSERT_NE(v.get("a"), nullptr);
    EXPECT_EQ(v.get("a")->items().size(), 2u);
    EXPECT_EQ(v.get("missing"), nullptr);
    EXPECT_EQ(parseOk(v.dump()).dump(), v.dump());
}

TEST(ServerJson, WhitespaceAroundDocumentIsAccepted)
{
    EXPECT_EQ(parseOk("  {\"a\": 1}\t ").dump(), R"({"a": 1})");
}

TEST(ServerJson, TrailingGarbageIsRejected)
{
    parseFail("{} extra");
    parseFail("1 2");
    parseFail("{\"a\": 1}{\"b\": 2}");
}

TEST(ServerJson, MalformedDocumentsAreRejected)
{
    parseFail("");
    parseFail("{");
    parseFail("[1,]");
    parseFail("{\"a\" 1}");
    parseFail("{\"a\": }");
    parseFail("{'a': 1}");
    parseFail("nul");
    parseFail("+1");
    parseFail("01");
}

TEST(ServerJson, BadStringsAreRejected)
{
    parseFail("\"unterminated");
    parseFail(R"("bad \q escape")");
    parseFail(R"("short \u12")");
    parseFail("\"ctrl \x01 char\"");
}

TEST(ServerJson, RunawayNestingIsRejected)
{
    std::string deep(100, '[');
    deep += "1";
    deep.append(100, ']');
    parseFail(deep);
}

TEST(ServerJson, DumpEscapesControlCharacters)
{
    JsonValue v = JsonValue::string(std::string("a\nb\x02") + "c");
    JsonValue back = parseOk(v.dump());
    EXPECT_EQ(back.asString(), v.asString());
}

} // namespace
} // namespace mc::server
