#include "global/callgraph.h"
#include "global/flowgraph.h"

#include "lang/program.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mc::global {
namespace {

FunctionSummary
makeSummary(const std::string& name)
{
    FunctionSummary fn;
    fn.name = name;
    fn.entry = 0;
    fn.exit = 1;
    fn.blocks.resize(2);
    fn.blocks[0].succs = {1};
    Event call;
    call.kind = Event::Kind::Call;
    call.callee = "helper";
    call.loc = {1, 10, 3};
    Event send;
    send.kind = Event::Kind::Send;
    send.lane = 2;
    send.loc = {1, 11, 3};
    fn.blocks[0].events = {call, send};
    return fn;
}

TEST(FlowGraph, WriteReadRoundtrip)
{
    std::vector<FunctionSummary> in = {makeSummary("HandlerA"),
                                       makeSummary("HandlerB")};
    std::ostringstream os;
    writeSummaries(os, in);

    std::istringstream is(os.str());
    std::vector<FunctionSummary> out = readSummaries(is);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].name, "HandlerA");
    EXPECT_EQ(out[0].entry, 0);
    EXPECT_EQ(out[0].exit, 1);
    ASSERT_EQ(out[0].blocks.size(), 2u);
    ASSERT_EQ(out[0].blocks[0].events.size(), 2u);
    EXPECT_EQ(out[0].blocks[0].events[0].kind, Event::Kind::Call);
    EXPECT_EQ(out[0].blocks[0].events[0].callee, "helper");
    EXPECT_EQ(out[0].blocks[0].events[1].kind, Event::Kind::Send);
    EXPECT_EQ(out[0].blocks[0].events[1].lane, 2);
    EXPECT_EQ(out[0].blocks[0].events[1].loc.line, 11);
    EXPECT_EQ(out[0].blocks[0].succs, std::vector<int>{1});
}

TEST(FlowGraph, ReadRejectsGarbage)
{
    std::istringstream is("nonsense line\n");
    EXPECT_THROW(readSummaries(is), std::runtime_error);
}

TEST(FlowGraph, ReadRejectsEventOutsideBlock)
{
    std::istringstream is("fn f entry 0 exit 1 blocks 2\nsend 1 1 2 3\n");
    EXPECT_THROW(readSummaries(is), std::runtime_error);
}

TEST(FlowGraph, SummarizeExtractsEventsPerBlock)
{
    lang::Program program;
    program.addSource("t.c",
                      "void f(void) { if (c) { helper(); } other(); }");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));

    FunctionSummary fn = summarize("f", cfg, [](const lang::Stmt& stmt,
                                                std::vector<Event>& out) {
        if (const lang::CallExpr* call = lang::stmtAsCall(stmt)) {
            Event ev;
            ev.kind = Event::Kind::Call;
            ev.callee = std::string(call->calleeName());
            ev.loc = stmt.loc;
            out.push_back(std::move(ev));
        }
    });

    int calls = 0;
    for (const auto& bb : fn.blocks)
        calls += static_cast<int>(bb.events.size());
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(fn.blocks.size(),
              static_cast<std::size_t>(cfg.blockCount()));
}

TEST(CallGraph, FindAndCallees)
{
    std::vector<FunctionSummary> fns = {makeSummary("A")};
    CallGraph graph(std::move(fns));
    EXPECT_NE(graph.find("A"), nullptr);
    EXPECT_EQ(graph.find("Z"), nullptr);
    auto callees = graph.calleesOf("A");
    EXPECT_EQ(callees.size(), 1u);
    EXPECT_TRUE(callees.count("helper"));
}

TEST(LaneAnalysis, SimpleOverflowDetected)
{
    FunctionSummary fn;
    fn.name = "H";
    fn.entry = 0;
    fn.exit = 1;
    fn.blocks.resize(2);
    fn.blocks[0].succs = {1};
    for (int i = 0; i < 3; ++i) {
        Event send;
        send.kind = Event::Kind::Send;
        send.lane = 0;
        send.loc = {1, 10 + i, 1};
        fn.blocks[0].events.push_back(send);
    }
    CallGraph graph({fn});
    auto result = analyzeLanes(graph, "H", {1, 1, 1, 1});
    // Two sends beyond the allowance of 1, each reported once.
    EXPECT_EQ(result.violations.size(), 2u);
    EXPECT_EQ(result.max_sends[0], 2); // saturated at allowance + 1
}

TEST(LaneAnalysis, LaneWaitResets)
{
    FunctionSummary fn;
    fn.name = "H";
    fn.entry = 0;
    fn.exit = 1;
    fn.blocks.resize(2);
    fn.blocks[0].succs = {1};
    Event send;
    send.kind = Event::Kind::Send;
    send.lane = 0;
    send.loc = {1, 1, 1};
    Event wait;
    wait.kind = Event::Kind::LaneWait;
    wait.lane = 0;
    wait.loc = {1, 2, 1};
    Event send2 = send;
    send2.loc = {1, 3, 1};
    fn.blocks[0].events = {send, wait, send2};
    CallGraph graph({fn});
    auto result = analyzeLanes(graph, "H", {1, 1, 1, 1});
    EXPECT_TRUE(result.violations.empty());
}

TEST(LaneAnalysis, UnknownHandlerIsEmptyResult)
{
    CallGraph graph({});
    auto result = analyzeLanes(graph, "Nope", {1, 1, 1, 1});
    EXPECT_TRUE(result.violations.empty());
    EXPECT_TRUE(result.recursion_warnings.empty());
}

} // namespace
} // namespace mc::global
