#include "cfg/cfg.h"
#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::cfg {
namespace {

using lang::Program;

struct Built
{
    Program program;
    Cfg cfg;
};

std::unique_ptr<Built>
build(const std::string& body)
{
    auto b = std::make_unique<Built>();
    b->program.addSource("t.c", "void f(void) {" + body + "}");
    b->cfg = CfgBuilder::build(*b->program.findFunction("f"));
    return b;
}

/** Count blocks reachable from entry. */
int
reachableCount(const Cfg& cfg)
{
    std::vector<bool> seen(static_cast<std::size_t>(cfg.blockCount()));
    std::vector<int> stack{cfg.entryId()};
    seen[static_cast<std::size_t>(cfg.entryId())] = true;
    int n = 0;
    while (!stack.empty()) {
        int id = stack.back();
        stack.pop_back();
        ++n;
        for (int s : cfg.block(id).succs) {
            if (!seen[static_cast<std::size_t>(s)]) {
                seen[static_cast<std::size_t>(s)] = true;
                stack.push_back(s);
            }
        }
    }
    return n;
}

TEST(Cfg, StraightLine)
{
    auto b = build("a(); b(); c();");
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    EXPECT_EQ(entry.stmts.size(), 3u);
    ASSERT_EQ(entry.succs.size(), 1u);
    EXPECT_EQ(entry.succs[0], b->cfg.exitId());
}

TEST(Cfg, IfWithoutElseHasTwoEdges)
{
    auto b = build("if (c) a();");
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    EXPECT_TRUE(entry.isBranch());
    ASSERT_EQ(entry.succs.size(), 2u);
    // True edge first, then the skip edge.
    const BasicBlock& then_block = b->cfg.block(entry.succs[0]);
    EXPECT_EQ(then_block.stmts.size(), 1u);
}

TEST(Cfg, IfElseJoins)
{
    auto b = build("if (c) a(); else d(); e();");
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    ASSERT_EQ(entry.succs.size(), 2u);
    int then_id = entry.succs[0];
    int else_id = entry.succs[1];
    ASSERT_EQ(b->cfg.block(then_id).succs.size(), 1u);
    ASSERT_EQ(b->cfg.block(else_id).succs.size(), 1u);
    EXPECT_EQ(b->cfg.block(then_id).succs[0],
              b->cfg.block(else_id).succs[0]);
}

TEST(Cfg, WhileHasBackEdge)
{
    auto b = build("while (c) body();");
    EXPECT_EQ(b->cfg.backEdges().size(), 1u);
}

TEST(Cfg, DoWhileExecutesBodyFirst)
{
    auto b = build("do { body(); } while (c);");
    // Entry block's sole successor chain must hit the body before any
    // branch.
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    ASSERT_FALSE(entry.succs.empty());
    const BasicBlock& body = b->cfg.block(entry.succs[0]);
    ASSERT_EQ(body.stmts.size(), 1u);
    EXPECT_EQ(b->cfg.backEdges().size(), 1u);
}

TEST(Cfg, ForLoopStructure)
{
    auto b = build("for (i = 0; i < 4; i++) body();");
    EXPECT_EQ(b->cfg.backEdges().size(), 1u);
    // init statement lands in the entry block.
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    ASSERT_FALSE(entry.stmts.empty());
}

TEST(Cfg, ForeverLoopHasNoExitEdgeFromHead)
{
    auto b = build("for (;;) { if (c) break; work(); }");
    // Function must still reach the exit via break.
    bool exit_reachable = false;
    std::vector<int> stack{b->cfg.entryId()};
    std::vector<bool> seen(static_cast<std::size_t>(b->cfg.blockCount()));
    seen[static_cast<std::size_t>(b->cfg.entryId())] = true;
    while (!stack.empty()) {
        int id = stack.back();
        stack.pop_back();
        if (id == b->cfg.exitId())
            exit_reachable = true;
        for (int s : b->cfg.block(id).succs)
            if (!seen[static_cast<std::size_t>(s)]) {
                seen[static_cast<std::size_t>(s)] = true;
                stack.push_back(s);
            }
    }
    EXPECT_TRUE(exit_reachable);
}

TEST(Cfg, BreakAndContinueEdges)
{
    auto b = build("while (c) { if (x) break; if (y) continue; w(); }");
    EXPECT_GE(b->cfg.backEdges().size(), 1u);
    EXPECT_GT(reachableCount(b->cfg), 5);
}

TEST(Cfg, ReturnConnectsToExit)
{
    auto b = build("if (c) return; a();");
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    int then_id = entry.succs[0];
    const BasicBlock& ret_block = b->cfg.block(then_id);
    ASSERT_EQ(ret_block.succs.size(), 1u);
    EXPECT_EQ(ret_block.succs[0], b->cfg.exitId());
}

TEST(Cfg, SwitchFanout)
{
    auto b = build("switch (op) { case 1: a(); break; "
                   "case 2: bb(); break; default: c(); }");
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    // One edge per case arm including default.
    EXPECT_EQ(entry.succs.size(), 3u);
}

TEST(Cfg, SwitchWithoutDefaultFallsThrough)
{
    auto b = build("switch (op) { case 1: a(); break; } z();");
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    // case-arm edge plus the no-default edge.
    EXPECT_EQ(entry.succs.size(), 2u);
}

TEST(Cfg, SwitchCaseFallthroughEdge)
{
    auto b = build("switch (op) { case 1: a(); case 2: bb(); }");
    // The case-1 arm must have an edge into the case-2 arm.
    const BasicBlock& entry = b->cfg.block(b->cfg.entryId());
    ASSERT_GE(entry.succs.size(), 2u);
    int case1 = entry.succs[0];
    int case2 = entry.succs[1];
    bool fallthrough = false;
    for (int s : b->cfg.block(case1).succs)
        fallthrough |= s == case2;
    EXPECT_TRUE(fallthrough);
}

TEST(Cfg, GotoForwardAndBackward)
{
    auto b = build("again: a(); if (c) goto done; if (d) goto again; "
                   "done: z();");
    // backward goto creates a cycle.
    EXPECT_GE(b->cfg.backEdges().size(), 1u);
}

TEST(Cfg, GotoUndefinedLabelThrows)
{
    lang::Program p;
    p.addSource("t.c", "void f(void) { goto nowhere; }");
    EXPECT_THROW(CfgBuilder::build(*p.findFunction("f")),
                 std::runtime_error);
}

TEST(Cfg, UnreachableCodeStillHasBlocks)
{
    auto b = build("return; dead();");
    // The dead statement exists in some block.
    bool found = false;
    for (const BasicBlock& bb : b->cfg.blocks())
        for (const lang::Stmt* stmt : bb.stmts)
            if (lang::stmtToString(*stmt) == "dead();")
                found = true;
    EXPECT_TRUE(found);
}

TEST(Cfg, DumpContainsBlocksAndEdges)
{
    auto b = build("if (c) a();");
    std::string dump = b->cfg.dump();
    EXPECT_NE(dump.find("cfg f"), std::string::npos);
    EXPECT_NE(dump.find("[branch c]"), std::string::npos);
}

TEST(Cfg, NestedLoopsBackEdgeCount)
{
    auto b = build("while (a) { while (bb) { w(); } }");
    EXPECT_EQ(b->cfg.backEdges().size(), 2u);
}

} // namespace
} // namespace mc::cfg
