#include "cfg/cfg.h"
#include "cfg/flat_cfg.h"
#include "checkers/metal_sources.h"
#include "corpus/generator.h"
#include "corpus/profile.h"
#include "lang/ast.h"
#include "lang/program.h"
#include "metal/metal_parser.h"
#include "metal/transition_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mc::cfg {
namespace {

/**
 * Structural equality between the pointer CFG and its arena-flattened
 * view: same blocks in the same order, same statements in the same
 * order, and per-statement identifier spans identical to the AST scan.
 * This is the property the whole data-oriented core rests on — every
 * (block, pos) cell address and every mask bit is derived from this
 * layout, so any drift here silently corrupts prefiltering.
 */
void
expectFlatMatchesPointerCfg(const Cfg& cfg)
{
    const FlatCfg& flat = flatCfg(cfg);
    const std::vector<BasicBlock>& blocks = cfg.blocks();
    ASSERT_EQ(flat.blockCount(), blocks.size());

    std::uint32_t expect_row = 0;
    for (std::uint32_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock& bb = blocks[b];
        // Row spans are exactly the prefix sums of block sizes, in
        // block order: no gaps, no overlap, no reordering.
        ASSERT_EQ(flat.stmtBegin(b), expect_row);
        ASSERT_EQ(flat.stmtEnd(b) - flat.stmtBegin(b), bb.stmts.size());
        expect_row = flat.stmtEnd(b);
        for (std::size_t pos = 0; pos < bb.stmts.size(); ++pos) {
            const std::uint32_t row =
                flat.stmtBegin(b) + static_cast<std::uint32_t>(pos);
            // Statement order round-trips pointer-identically.
            ASSERT_EQ(flat.stmt(row), bb.stmts[pos]);

            // The inline ident span equals both the uncached AST scan
            // and the per-node cached scan (sorted unique).
            std::vector<support::SymbolId> fresh;
            lang::collectStmtIdentIds(*bb.stmts[pos], fresh);
            const std::vector<support::SymbolId>& cached =
                lang::stmtIdentIds(*bb.stmts[pos]);
            std::vector<support::SymbolId> span(
                flat.identBegin(row),
                flat.identBegin(row) + flat.identCount(row));
            ASSERT_EQ(span, fresh);
            ASSERT_EQ(span, cached);
            ASSERT_TRUE(std::is_sorted(span.begin(), span.end()));
            ASSERT_TRUE(std::adjacent_find(span.begin(), span.end()) ==
                        span.end());
        }
    }
    ASSERT_EQ(flat.stmtCount(), expect_row);
}

TEST(FlatCfgProperty, RoundTripsEveryFunctionOfTheFullCorpus)
{
    for (const corpus::ProtocolProfile& profile : corpus::paperProfiles()) {
        corpus::LoadedProtocol loaded = corpus::loadProtocol(profile);
        for (const lang::FunctionDecl* fn : loaded.program->functions()) {
            Cfg cfg = CfgBuilder::build(*fn);
            expectFlatMatchesPointerCfg(cfg);
        }
    }
}

TEST(FlatCfgProperty, RoundTripsAcrossGeneratorSeeds)
{
    // Property harness: re-seed the generator so the lowering pass sees
    // structurally different programs than the fixed paper corpus.
    corpus::ProtocolProfile profile = corpus::profileByName("bitvector");
    for (std::uint64_t seed : {7u, 1234u, 999983u}) {
        profile.seed = seed;
        corpus::LoadedProtocol loaded = corpus::loadProtocol(profile);
        for (const lang::FunctionDecl* fn : loaded.program->functions()) {
            Cfg cfg = CfgBuilder::build(*fn);
            expectFlatMatchesPointerCfg(cfg);
        }
    }
}

TEST(FlatCfgProperty, MaskIndexIsTheUnionHierarchyOfStatementMasks)
{
    metal::MetalProgram wait =
        metal::parseMetal(checkers::kWaitForDbMetal);
    const metal::CompiledSm& csm = wait.sm->compiled();
    const std::vector<support::SymbolId>& syms = csm.maskSyms();
    ASSERT_FALSE(syms.empty());

    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("sci"));
    for (const lang::FunctionDecl* fn : loaded.program->functions()) {
        Cfg cfg = CfgBuilder::build(*fn);
        const FlatCfg& flat = flatCfg(cfg);
        const FlatCfg::MaskIndex& index = flat.maskIndex(syms);
        ASSERT_EQ(index.stmt_mask.size(), flat.stmtCount());
        ASSERT_EQ(index.block_mask.size(), flat.blockCount());
        ASSERT_EQ(index.range_mask.size(), flat.rangeCount());

        // Statement masks: bit i set iff the row mentions syms[i].
        for (std::uint32_t row = 0; row < flat.stmtCount(); ++row) {
            std::set<support::SymbolId> mentioned(
                flat.identBegin(row),
                flat.identBegin(row) + flat.identCount(row));
            std::uint64_t expect = 0;
            for (std::size_t i = 0; i < syms.size(); ++i)
                if (mentioned.count(syms[i]))
                    expect |= std::uint64_t{1} << i;
            ASSERT_EQ(index.stmt_mask[row], expect);
        }
        // Block masks are pure ORs of their statements; range masks
        // pure ORs of their 64-block granule — never a heuristic.
        std::vector<std::uint64_t> range_expect(flat.rangeCount(), 0);
        for (std::uint32_t b = 0; b < flat.blockCount(); ++b) {
            std::uint64_t expect = 0;
            for (std::uint32_t row = flat.stmtBegin(b);
                 row < flat.stmtEnd(b); ++row)
                expect |= index.stmt_mask[row];
            ASSERT_EQ(index.block_mask[b], expect);
            range_expect[b >> FlatCfg::kRangeShift] |= expect;
        }
        for (std::uint32_t w = 0; w < flat.rangeCount(); ++w)
            ASSERT_EQ(index.range_mask[w], range_expect[w]);

        // The cache hands back the same index for the same symbol set.
        ASSERT_EQ(&flat.maskIndex(syms), &index);
    }
}

TEST(FlatCfgProperty, ArenaIdsAreProcessUniqueAndStable)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));
    std::vector<Cfg> cfgs;
    for (const lang::FunctionDecl* fn : loaded.program->functions())
        cfgs.push_back(CfgBuilder::build(*fn));
    ASSERT_GE(cfgs.size(), 2u);

    std::set<std::uint64_t> ids;
    for (const Cfg& cfg : cfgs) {
        const FlatCfg& flat = flatCfg(cfg);
        // Stable: the lazily installed arena is built once per Cfg.
        ASSERT_EQ(&flatCfg(cfg), &flat);
        ASSERT_EQ(flatCfg(cfg).id(), flat.id());
        ids.insert(flat.id());
    }
    // Unique: distinct arenas never share an id (the memo-key contract).
    ASSERT_EQ(ids.size(), cfgs.size());
}

} // namespace
} // namespace mc::cfg
