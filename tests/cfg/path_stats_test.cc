#include "cfg/path_stats.h"
#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::cfg {
namespace {

struct Built
{
    lang::Program program;
    Cfg cfg;
};

std::unique_ptr<Built>
build(const std::string& body)
{
    auto b = std::make_unique<Built>();
    b->program.addSource("t.c", "void f(void) {\n" + body + "\n}");
    b->cfg = CfgBuilder::build(*b->program.findFunction("f"));
    return b;
}

TEST(PathStats, StraightLineIsOnePath)
{
    auto b = build("a();\nb();\nc();");
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 1u);
    EXPECT_EQ(stats.max_length_lines, 3u);
    EXPECT_DOUBLE_EQ(stats.avg_length_lines, 3.0);
}

TEST(PathStats, IfDoubles)
{
    auto b = build("if (c)\na();\nz();");
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 2u);
}

TEST(PathStats, SequentialIfsMultiply)
{
    // The paper's "if-else on the same condition twice" shape: 4 paths
    // statically (the checker famously cannot prune the 2 impossible
    // ones).
    auto b = build("if (c)\na();\nelse\nb();\nif (c)\nd();\nelse\ne();");
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 4u);
}

TEST(PathStats, SwitchAddsArms)
{
    auto b = build("switch (op) {\ncase 1: a(); break;\ncase 2: b(); "
                   "break;\ndefault: c();\n}");
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 3u);
}

TEST(PathStats, LoopCountsAsAcyclic)
{
    // Back edges are excluded, so a while is take-it-or-not: 2 acyclic
    // routes only when something follows... here entry->head->exit and
    // entry->head->body->(back edge dropped): body is a dead end, so 1.
    auto b = build("while (c)\nbody();\nz();");
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 1u);
}

TEST(PathStats, MaxLongerThanAvg)
{
    auto b = build("if (c) {\na();\nb();\nd();\n}\nz();");
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 2u);
    EXPECT_GT(stats.max_length_lines, 2u);
    EXPECT_LT(stats.avg_length_lines,
              static_cast<double>(stats.max_length_lines));
}

TEST(PathStats, DeepBranchingSaturatesNotHangs)
{
    // 40 sequential ifs = 2^40 paths; DP must stay fast and exact.
    std::string body;
    for (int i = 0; i < 40; ++i)
        body += "if (c" + std::to_string(i) + ")\nx();\n";
    auto b = build(body);
    PathStats stats = computePathStats(b->cfg);
    EXPECT_EQ(stats.path_count, 1ull << 40);
}

TEST(PathStats, AggregateAcrossFunctions)
{
    ProtocolPathStats agg;
    PathStats a;
    a.path_count = 2;
    a.avg_length_lines = 10.0;
    a.max_length_lines = 12;
    PathStats b;
    b.path_count = 2;
    b.avg_length_lines = 20.0;
    b.max_length_lines = 30;
    agg.add(a);
    agg.add(b);
    EXPECT_EQ(agg.total_paths, 4u);
    EXPECT_DOUBLE_EQ(agg.avg_length_lines, 15.0);
    EXPECT_EQ(agg.max_length_lines, 30u);
}

TEST(EnumeratePaths, YieldsEachAcyclicPath)
{
    auto b = build("if (c)\na();\nelse\nb();\nz();");
    int count = 0;
    bool complete = enumeratePaths(
        b->cfg, [&](const std::vector<int>& path) {
            ++count;
            EXPECT_EQ(path.front(), b->cfg.entryId());
            EXPECT_EQ(path.back(), b->cfg.exitId());
        });
    EXPECT_TRUE(complete);
    EXPECT_EQ(count, 2);
}

TEST(EnumeratePaths, RespectsLimit)
{
    std::string body;
    for (int i = 0; i < 10; ++i)
        body += "if (c" + std::to_string(i) + ")\nx();\n";
    auto b = build(body);
    int count = 0;
    bool complete =
        enumeratePaths(b->cfg, [&](const std::vector<int>&) { ++count; },
                       16);
    EXPECT_FALSE(complete);
    EXPECT_EQ(count, 16);
}

TEST(PathStats, MatchesEnumerationOnRandomShapes)
{
    // Property check: DP count equals explicit enumeration on a spread of
    // small bodies.
    const char* bodies[] = {
        "a();",
        "if (x)\na();\nz();",
        "if (x)\na();\nelse\nb();\nif (y)\nc();",
        "switch (o) {\ncase 1: a();\ncase 2: b(); break;\ndefault: c();\n}",
        "if (x) {\nif (y)\na();\nb();\n}\nz();",
        "if (x)\nreturn;\nif (y)\nreturn;\nz();",
    };
    for (const char* body : bodies) {
        auto b = build(body);
        PathStats stats = computePathStats(b->cfg);
        std::uint64_t enumerated = 0;
        enumeratePaths(b->cfg,
                       [&](const std::vector<int>&) { ++enumerated; });
        EXPECT_EQ(stats.path_count, enumerated) << "body: " << body;
    }
}

} // namespace
} // namespace mc::cfg
