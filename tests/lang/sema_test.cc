#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::lang {
namespace {

/** Find the first expression statement's expression in `fn`. */
const Expr*
firstExpr(const FunctionDecl& fn)
{
    for (const Stmt* stmt : fn.body->stmts)
        if (stmt->skind == StmtKind::Expr)
            return static_cast<const ExprStmt*>(stmt)->expr;
    return nullptr;
}

TEST(Sema, ResolvesLocalsAndParams)
{
    Program p;
    p.addSource("t.c", "void f(int a) { int b = 2; a = b; }");
    const FunctionDecl* fn = p.findFunction("f");
    const auto* assign = static_cast<const BinaryExpr*>(firstExpr(*fn));
    const auto* lhs = static_cast<const IdentExpr*>(assign->lhs);
    const auto* rhs = static_cast<const IdentExpr*>(assign->rhs);
    ASSERT_NE(lhs->decl, nullptr);
    EXPECT_EQ(lhs->decl->dkind, DeclKind::Param);
    ASSERT_NE(rhs->decl, nullptr);
    EXPECT_EQ(rhs->decl->dkind, DeclKind::Var);
}

TEST(Sema, InnerScopeShadowsOuter)
{
    Program p;
    p.addSource("t.c", "void f(void) { int x = 1; { float x = 2.0; "
                       "y = x; } }");
    const FunctionDecl* fn = p.findFunction("f");
    // Find the inner assignment y = x.
    const Expr* found = nullptr;
    forEachStmt(*fn->body, [&](const Stmt& stmt) {
        if (stmt.skind == StmtKind::Expr) {
            const auto* e = static_cast<const ExprStmt&>(stmt).expr;
            if (e->ekind == ExprKind::Binary)
                found = static_cast<const BinaryExpr*>(e)->rhs;
        }
    });
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(p.ctx().types().isFloating(found->type));
}

TEST(Sema, FloatPropagatesThroughArithmetic)
{
    Program p;
    p.addSource("t.c", "void f(void) { float r; int i; x = r + i; }");
    const FunctionDecl* fn = p.findFunction("f");
    const Expr* found = nullptr;
    forEachStmt(*fn->body, [&](const Stmt& stmt) {
        if (stmt.skind == StmtKind::Expr)
            found = static_cast<const ExprStmt&>(stmt).expr;
    });
    const auto* assign = static_cast<const BinaryExpr*>(found);
    EXPECT_TRUE(p.ctx().types().isFloating(assign->rhs->type));
}

TEST(Sema, ComparisonIsInt)
{
    Program p;
    p.addSource("t.c", "void f(void) { float a; x = a < 1.0; }");
    const FunctionDecl* fn = p.findFunction("f");
    const Expr* found = nullptr;
    forEachStmt(*fn->body, [&](const Stmt& stmt) {
        if (stmt.skind == StmtKind::Expr)
            found = static_cast<const ExprStmt&>(stmt).expr;
    });
    const auto* assign = static_cast<const BinaryExpr*>(found);
    EXPECT_FALSE(p.ctx().types().isFloating(assign->rhs->type));
}

TEST(Sema, CallResolvesToFunctionReturnType)
{
    Program p;
    p.addSource("t.c", "float half(int x) { return 0.5; }\n"
                       "void g(void) { y = half(3); }");
    const FunctionDecl* fn = p.findFunction("g");
    const auto* assign = static_cast<const BinaryExpr*>(firstExpr(*fn));
    EXPECT_TRUE(p.ctx().types().isFloating(assign->rhs->type));
}

TEST(Sema, CrossUnitFunctionResolution)
{
    Program p;
    p.addSource("a.c", "int helper(void) { return 1; }");
    p.addSource("b.c", "void g(void) { x = helper(); }");
    const FunctionDecl* fn = p.findFunction("g");
    const auto* assign = static_cast<const BinaryExpr*>(firstExpr(*fn));
    const auto* call = static_cast<const CallExpr*>(assign->rhs);
    const auto* callee = static_cast<const IdentExpr*>(call->callee);
    ASSERT_NE(callee->decl, nullptr);
    EXPECT_EQ(callee->decl->dkind, DeclKind::Function);
}

TEST(Sema, EnumConstantsResolve)
{
    Program p;
    p.addSource("t.c", "enum Len { LEN_NODATA, LEN_WORD };\n"
                       "void f(void) { x = LEN_WORD; }");
    const FunctionDecl* fn = p.findFunction("f");
    const auto* assign = static_cast<const BinaryExpr*>(firstExpr(*fn));
    const auto* rhs = static_cast<const IdentExpr*>(assign->rhs);
    ASSERT_NE(rhs->decl, nullptr);
    EXPECT_EQ(rhs->decl->dkind, DeclKind::EnumConst);
    EXPECT_EQ(static_cast<const EnumConstDecl*>(rhs->decl)->value, 1);
}

TEST(Sema, UnknownNamesAreNullNotError)
{
    Program p;
    // FLASH macros look like undeclared calls; Sema must tolerate them.
    p.addSource("t.c", "void f(void) { PI_SEND(F_DATA, a, b); }");
    const FunctionDecl* fn = p.findFunction("f");
    const auto* call = static_cast<const CallExpr*>(firstExpr(*fn));
    const auto* callee = static_cast<const IdentExpr*>(call->callee);
    EXPECT_EQ(callee->decl, nullptr);
}

TEST(Sema, DerefAndAddressTypes)
{
    Program p;
    p.addSource("t.c", "void f(int *p) { x = *p; y = &x2; }");
    const FunctionDecl* fn = p.findFunction("f");
    const auto* assign = static_cast<const BinaryExpr*>(firstExpr(*fn));
    EXPECT_EQ(p.ctx().types().type(assign->rhs->type).kind, TypeKind::Int);
}

} // namespace
} // namespace mc::lang
