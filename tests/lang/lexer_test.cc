#include "lang/lexer.h"

#include <gtest/gtest.h>

#include <memory>

namespace mc::lang {
namespace {

/**
 * Token text views into the SourceManager's buffer, so the manager must
 * outlive the tokens: keep one per test via a static-free fixture object.
 */
struct LexResult
{
    std::unique_ptr<support::SourceManager> sm =
        std::make_unique<support::SourceManager>();
    std::vector<Token> tokens;

    const Token& operator[](std::size_t i) const { return tokens[i]; }
    std::size_t size() const { return tokens.size(); }
};

LexResult
lex(const std::string& source)
{
    LexResult result;
    result.tokens = lexString(*result.sm, "test.c", source);
    return result;
}

TEST(Lexer, EmptyInputYieldsEnd)
{
    auto toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, IdentifiersAndKeywords)
{
    auto toks = lex("int foo while PI_SEND _x");
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[0].kind, TokKind::KwInt);
    EXPECT_EQ(toks[1].kind, TokKind::Identifier);
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, TokKind::KwWhile);
    EXPECT_EQ(toks[3].kind, TokKind::Identifier);
    EXPECT_EQ(toks[3].text, "PI_SEND");
    EXPECT_EQ(toks[4].kind, TokKind::Identifier);
    EXPECT_EQ(toks[4].text, "_x");
}

TEST(Lexer, IntegerLiterals)
{
    auto toks = lex("0 42 0x1F 10UL 7u");
    EXPECT_EQ(toks[0].int_value, 0);
    EXPECT_EQ(toks[1].int_value, 42);
    EXPECT_EQ(toks[2].int_value, 31);
    EXPECT_EQ(toks[3].int_value, 10);
    EXPECT_EQ(toks[4].int_value, 7);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(toks[static_cast<std::size_t>(i)].kind,
                  TokKind::IntLiteral);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lex("1.5 2.0f 3e2 1.25e-1");
    ASSERT_GE(toks.size(), 4u);
    EXPECT_EQ(toks[0].kind, TokKind::FloatLiteral);
    EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
    EXPECT_EQ(toks[1].kind, TokKind::FloatLiteral);
    EXPECT_DOUBLE_EQ(toks[1].float_value, 2.0);
    EXPECT_EQ(toks[2].kind, TokKind::FloatLiteral);
    EXPECT_DOUBLE_EQ(toks[2].float_value, 300.0);
    EXPECT_EQ(toks[3].kind, TokKind::FloatLiteral);
    EXPECT_DOUBLE_EQ(toks[3].float_value, 0.125);
}

TEST(Lexer, IntegerThenMemberIsNotFloat)
{
    // `x.y` after a digit boundary: `5 .x` should not merge.
    auto toks = lex("a.b");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].kind, TokKind::Identifier);
    EXPECT_EQ(toks[1].kind, TokKind::Dot);
    EXPECT_EQ(toks[2].kind, TokKind::Identifier);
}

TEST(Lexer, CharAndStringLiterals)
{
    auto toks = lex("'a' '\\n' \"hi there\"");
    EXPECT_EQ(toks[0].kind, TokKind::CharLiteral);
    EXPECT_EQ(toks[0].int_value, 'a');
    EXPECT_EQ(toks[1].kind, TokKind::CharLiteral);
    EXPECT_EQ(toks[1].int_value, '\n');
    EXPECT_EQ(toks[2].kind, TokKind::StringLiteral);
    EXPECT_EQ(toks[2].text, "\"hi there\"");
}

TEST(Lexer, OperatorsGreedy)
{
    auto toks = lex("<<= >>= == != <= >= && || ++ -- -> ... << >>");
    std::vector<TokKind> expect = {
        TokKind::ShlAssign, TokKind::ShrAssign, TokKind::EqEq,
        TokKind::NotEq,     TokKind::Le,        TokKind::Ge,
        TokKind::AmpAmp,    TokKind::PipePipe,  TokKind::PlusPlus,
        TokKind::MinusMinus, TokKind::Arrow,    TokKind::Ellipsis,
        TokKind::Shl,       TokKind::Shr,       TokKind::End,
    };
    ASSERT_EQ(toks.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(toks[i].kind, expect[i]) << "token " << i;
}

TEST(Lexer, CommentsSkipped)
{
    auto toks = lex("a // line comment\n/* block\ncomment */ b");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, LocationsTracked)
{
    auto toks = lex("a\n  b");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[0].loc.column, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, DirectivesRecordedAndSkipped)
{
    support::SourceManager sm;
    std::int32_t id = sm.addFile(
        "t.c", "#include \"flash.h\"\n#define X \\\n  5\nint a;\n");
    Lexer lexer(sm, id);
    auto toks = lexer.lexAll();
    ASSERT_EQ(lexer.directives().size(), 2u);
    EXPECT_EQ(lexer.directives()[0], "include \"flash.h\"");
    EXPECT_EQ(toks[0].kind, TokKind::KwInt);
}

TEST(Lexer, HashNotAtLineStartIsError)
{
    EXPECT_THROW(lex("int a; # oops"), LexError);
}

TEST(Lexer, UnterminatedStringThrows)
{
    EXPECT_THROW(lex("\"unterminated"), LexError);
    EXPECT_THROW(lex("\"across\nlines\""), LexError);
}

TEST(Lexer, UnterminatedCommentThrows)
{
    EXPECT_THROW(lex("/* never closed"), LexError);
}

TEST(Lexer, UnexpectedCharacterThrows)
{
    EXPECT_THROW(lex("int a = @;"), LexError);
}

} // namespace
} // namespace mc::lang
