#include "lang/parser.h"
#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::lang {
namespace {

/** Parse helper returning the program (asserts at least one function). */
struct Parsed
{
    AstContext ctx;
    support::SourceManager sm;
    TranslationUnit tu;
};

std::unique_ptr<Parsed>
parse(const std::string& source)
{
    auto p = std::make_unique<Parsed>();
    p->tu = parseSource(p->ctx, p->sm, "test.c", source);
    return p;
}

const FunctionDecl&
firstFunction(const Parsed& p)
{
    auto fns = p.tu.functionDefinitions();
    EXPECT_FALSE(fns.empty());
    return *fns.front();
}

/** Parse `expr` in a statement context and render it back. */
std::string
roundtripExpr(const std::string& expr)
{
    auto p = parse("void f(void) { x = " + expr + "; }");
    const FunctionDecl& fn = firstFunction(*p);
    const Stmt* stmt = fn.body->stmts.front();
    const auto& assign = static_cast<const BinaryExpr&>(
        *static_cast<const ExprStmt*>(stmt)->expr);
    return exprToString(*assign.rhs);
}

TEST(Parser, EmptyFunction)
{
    auto p = parse("void Handler(void) { }");
    const FunctionDecl& fn = firstFunction(*p);
    EXPECT_EQ(fn.name, "Handler");
    EXPECT_TRUE(fn.params.empty());
    EXPECT_EQ(p->ctx.types().type(fn.return_type).kind, TypeKind::Void);
}

TEST(Parser, Parameters)
{
    auto p = parse("int add(int a, unsigned long b, char *s) { return a; }");
    const FunctionDecl& fn = firstFunction(*p);
    ASSERT_EQ(fn.params.size(), 3u);
    EXPECT_EQ(fn.params[0]->name, "a");
    EXPECT_EQ(p->ctx.types().type(fn.params[1]->type).kind, TypeKind::ULong);
    EXPECT_EQ(p->ctx.types().type(fn.params[2]->type).kind,
              TypeKind::Pointer);
}

TEST(Parser, PrototypeHasNoBody)
{
    auto p = parse("int helper(int x);");
    ASSERT_EQ(p->tu.decls.size(), 1u);
    const auto* fn = static_cast<const FunctionDecl*>(p->tu.decls[0]);
    EXPECT_FALSE(fn->isDefinition());
}

TEST(Parser, PrecedenceMulOverAdd)
{
    EXPECT_EQ(roundtripExpr("a + b * c"), "(a + (b * c))");
    EXPECT_EQ(roundtripExpr("(a + b) * c"), "((a + b) * c)");
}

TEST(Parser, PrecedenceLogicalChain)
{
    EXPECT_EQ(roundtripExpr("a && b || c && d"),
              "((a && b) || (c && d))");
}

TEST(Parser, PrecedenceShiftRelational)
{
    EXPECT_EQ(roundtripExpr("a << 2 < b"), "((a << 2) < b)");
}

TEST(Parser, PrecedenceBitwiseVsEquality)
{
    // C classic: == binds tighter than &.
    EXPECT_EQ(roundtripExpr("a & b == c"), "(a & (b == c))");
}

TEST(Parser, AssignmentRightAssociative)
{
    auto p = parse("void f(void) { a = b = c; }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* stmt = static_cast<const ExprStmt*>(fn.body->stmts[0]);
    EXPECT_EQ(exprToString(*stmt->expr), "(a = (b = c))");
}

TEST(Parser, TernaryExpression)
{
    EXPECT_EQ(roundtripExpr("a ? b : c"), "(a ? b : c)");
}

TEST(Parser, UnaryAndPostfix)
{
    EXPECT_EQ(roundtripExpr("-*p"), "-(*p)");
    EXPECT_EQ(roundtripExpr("!done"), "!done");
    EXPECT_EQ(roundtripExpr("i++"), "i++");
    EXPECT_EQ(roundtripExpr("--i"), "--i");
    EXPECT_EQ(roundtripExpr("&buf"), "&buf");
}

TEST(Parser, CallMemberIndexChains)
{
    EXPECT_EQ(roundtripExpr("f(a, b)"), "f(a, b)");
    EXPECT_EQ(roundtripExpr("h.nh.len"), "h.nh.len");
    EXPECT_EQ(roundtripExpr("p->next->val"), "p->next->val");
    EXPECT_EQ(roundtripExpr("arr[i][j]"), "arr[i][j]");
    EXPECT_EQ(roundtripExpr("HANDLER_GLOBALS(header).len"),
              "HANDLER_GLOBALS(header).len");
}

TEST(Parser, MacroStyleCallAsLvalue)
{
    // The FLASH idiom from Figure 3 of the paper.
    auto p = parse(
        "void f(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* stmt = static_cast<const ExprStmt*>(fn.body->stmts[0]);
    EXPECT_EQ(exprToString(*stmt->expr),
              "(HANDLER_GLOBALS(header.nh.len) = LEN_NODATA)");
}

TEST(Parser, IfElseChain)
{
    auto p = parse("void f(void) { if (a) x = 1; else if (b) x = 2; "
                   "else x = 3; }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* outer = static_cast<const IfStmt*>(fn.body->stmts[0]);
    ASSERT_NE(outer->else_branch, nullptr);
    EXPECT_EQ(outer->else_branch->skind, StmtKind::If);
}

TEST(Parser, Loops)
{
    auto p = parse("void f(void) {"
                   "  while (i < 10) i++;"
                   "  do { j--; } while (j);"
                   "  for (i = 0; i < n; i++) total += i;"
                   "  for (;;) break;"
                   "}");
    const FunctionDecl& fn = firstFunction(*p);
    ASSERT_EQ(fn.body->stmts.size(), 4u);
    EXPECT_EQ(fn.body->stmts[0]->skind, StmtKind::While);
    EXPECT_EQ(fn.body->stmts[1]->skind, StmtKind::DoWhile);
    EXPECT_EQ(fn.body->stmts[2]->skind, StmtKind::For);
    const auto* forever = static_cast<const ForStmt*>(fn.body->stmts[3]);
    EXPECT_EQ(forever->init, nullptr);
    EXPECT_EQ(forever->cond, nullptr);
    EXPECT_EQ(forever->step, nullptr);
}

TEST(Parser, SwitchWithCasesAndDefault)
{
    auto p = parse("void f(void) { switch (op) {"
                   "  case 1: a(); break;"
                   "  case 2: b();"
                   "  default: c(); break;"
                   "} }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* sw = static_cast<const SwitchStmt*>(fn.body->stmts[0]);
    const auto* body = static_cast<const CompoundStmt*>(sw->body);
    EXPECT_EQ(body->stmts[0]->skind, StmtKind::Case);
    EXPECT_EQ(body->stmts[3]->skind, StmtKind::Case);
    EXPECT_EQ(body->stmts[5]->skind, StmtKind::Default);
}

TEST(Parser, GotoAndLabels)
{
    auto p = parse("void f(void) { goto out; x = 1; out: y = 2; }");
    const FunctionDecl& fn = firstFunction(*p);
    EXPECT_EQ(fn.body->stmts[0]->skind, StmtKind::Goto);
    EXPECT_EQ(fn.body->stmts[2]->skind, StmtKind::Label);
}

TEST(Parser, LocalDeclsWithInitializers)
{
    auto p = parse("void f(void) { int i = 0, j; unsigned k = i + 1; }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* d0 = static_cast<const DeclStmt*>(fn.body->stmts[0]);
    ASSERT_EQ(d0->decls.size(), 2u);
    EXPECT_NE(d0->decls[0]->init, nullptr);
    EXPECT_EQ(d0->decls[1]->init, nullptr);
}

TEST(Parser, TypedefUsableAsType)
{
    auto p = parse("typedef unsigned long uint64;\n"
                   "void f(void) { uint64 x = 5; }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* decl = static_cast<const DeclStmt*>(fn.body->stmts[0]);
    EXPECT_EQ(p->ctx.types().type(decl->decls[0]->type).kind,
              TypeKind::ULong);
}

TEST(Parser, StructDefinitionAndSize)
{
    auto p = parse("struct Header { int len; int op; };\n"
                   "struct Big { long a; long b; };\n");
    TypeId header = p->ctx.types().named(TypeKind::Struct, "Header");
    TypeId big = p->ctx.types().named(TypeKind::Struct, "Big");
    EXPECT_EQ(p->ctx.types().sizeInBits(header), 64);
    EXPECT_EQ(p->ctx.types().sizeInBits(big), 128);
}

TEST(Parser, EnumConstantsSequence)
{
    auto p = parse("enum Op { OP_GET, OP_PUT = 5, OP_ACK };");
    const auto* e = static_cast<const EnumDecl*>(p->tu.decls[0]);
    ASSERT_EQ(e->constants.size(), 3u);
    EXPECT_EQ(e->constants[0]->value, 0);
    EXPECT_EQ(e->constants[1]->value, 5);
    EXPECT_EQ(e->constants[2]->value, 6);
}

TEST(Parser, CastExpression)
{
    EXPECT_EQ(roundtripExpr("(int)x"), "(cast)x");
    EXPECT_EQ(roundtripExpr("(char *)p"), "(cast)p");
}

TEST(Parser, SizeofBothForms)
{
    EXPECT_EQ(roundtripExpr("sizeof(int)"), "sizeof(type)");
    EXPECT_EQ(roundtripExpr("sizeof x"), "sizeof(x)");
}

TEST(Parser, CommaOperatorInExprStatement)
{
    auto p = parse("void f(void) { a = 1, b = 2; }");
    const FunctionDecl& fn = firstFunction(*p);
    const auto* stmt = static_cast<const ExprStmt*>(fn.body->stmts[0]);
    const auto& comma = static_cast<const BinaryExpr&>(*stmt->expr);
    EXPECT_EQ(comma.op, BinaryOp::Comma);
}

TEST(Parser, GlobalVariableWithArray)
{
    auto p = parse("int table[16];\nstatic int counter = 0;");
    ASSERT_EQ(p->tu.decls.size(), 2u);
    const auto* arr = static_cast<const VarDecl*>(p->tu.decls[0]);
    EXPECT_EQ(p->ctx.types().type(arr->type).kind, TypeKind::Array);
    EXPECT_EQ(p->ctx.types().type(arr->type).array_size, 16);
}

TEST(Parser, ErrorMissingSemicolon)
{
    EXPECT_THROW(parse("void f(void) { x = 1 }"), ParseError);
}

TEST(Parser, ErrorUnbalancedBrace)
{
    EXPECT_THROW(parse("void f(void) { if (a) { }"), ParseError);
}

TEST(Parser, ErrorBadExpression)
{
    EXPECT_THROW(parse("void f(void) { x = * ; }"), ParseError);
}

TEST(Parser, ProgramIndexesFunctions)
{
    Program program;
    program.addSource("a.c", "void A(void) { }");
    program.addSource("b.c", "void B(void) { A(); }");
    EXPECT_EQ(program.functions().size(), 2u);
    EXPECT_NE(program.findFunction("A"), nullptr);
    EXPECT_NE(program.findFunction("B"), nullptr);
    EXPECT_EQ(program.findFunction("C"), nullptr);
}

TEST(Parser, ProgramSharesTypedefsAcrossUnits)
{
    Program program;
    program.addSource("types.h.c", "typedef unsigned int u32;");
    // Must not throw: u32 is known from the previous unit.
    program.addSource("use.c", "void f(void) { u32 x = 1; }");
    EXPECT_NE(program.findFunction("f"), nullptr);
}

} // namespace
} // namespace mc::lang
