#include "cache/analysis_cache.h"
#include "cfg/path_stats.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "corpus/profile.h"
#include "lang/fingerprint.h"
#include "lang/program.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace mc::lang {
namespace {

using support::Rng;

/**
 * Random expression generator for round-trip properties. Produces
 * expressions from the dialect's full grammar, depth-bounded.
 */
class ExprGen
{
  public:
    explicit ExprGen(Rng& rng) : rng_(rng) {}

    std::string
    gen(int depth)
    {
        if (depth <= 0)
            return atom();
        switch (rng_.below(8)) {
          case 0:
            return atom();
          case 1:
            return "(" + gen(depth - 1) + " " + binop() + " " +
                   gen(depth - 1) + ")";
          case 2:
            return unop() + "(" + gen(depth - 1) + ")";
          case 3: {
            std::string args;
            int n = static_cast<int>(rng_.below(4));
            for (int i = 0; i < n; ++i)
                args += (i ? ", " : "") + gen(depth - 1);
            return name() + "(" + args + ")";
          }
          case 4:
            return "(" + gen(depth - 1) + " ? " + gen(depth - 1) + " : " +
                   gen(depth - 1) + ")";
          case 5:
            return name() + "[" + gen(depth - 1) + "]";
          case 6:
            return name() + "." + name();
          default:
            return name() + "->" + name();
        }
    }

  private:
    std::string
    atom()
    {
        switch (rng_.below(3)) {
          case 0: return std::to_string(rng_.below(1000));
          case 1: return name();
          default: return "'x'";
        }
    }

    std::string
    name()
    {
        static const char* names[] = {"a",  "bb", "c3",   "addr",
                                      "len", "t0", "state", "_p"};
        return names[rng_.below(8)];
    }

    std::string
    binop()
    {
        static const char* ops[] = {"+",  "-",  "*",  "/",  "%",  "<<",
                                    ">>", "<",  ">",  "<=", ">=", "==",
                                    "!=", "&",  "|",  "^",  "&&", "||"};
        return ops[rng_.below(18)];
    }

    std::string
    unop()
    {
        static const char* ops[] = {"-", "!", "~", "*", "&"};
        return ops[rng_.below(5)];
    }

    Rng& rng_;
};

/** Random statement/body generator for CFG invariants. */
class BodyGen
{
  public:
    explicit BodyGen(Rng& rng) : rng_(rng), exprs_(rng) {}

    std::string
    gen(int depth, int stmts)
    {
        std::string out;
        for (int i = 0; i < stmts; ++i)
            out += stmt(depth) + "\n";
        return out;
    }

  private:
    std::string
    stmt(int depth)
    {
        if (depth <= 0)
            return simple();
        switch (rng_.below(10)) {
          case 0:
            return "if (" + exprs_.gen(1) + ") {\n" + gen(depth - 1, 2) +
                   "}";
          case 1:
            return "if (" + exprs_.gen(1) + ") {\n" + gen(depth - 1, 2) +
                   "} else {\n" + gen(depth - 1, 2) + "}";
          case 2:
            return "while (" + exprs_.gen(1) + ") {\n" +
                   gen(depth - 1, 2) + "}";
          case 3:
            return "for (i = 0; i < " +
                   std::to_string(rng_.below(10)) + "; i++) {\n" +
                   gen(depth - 1, 1) + "}";
          case 4:
            return "do {\n" + gen(depth - 1, 1) + "} while (" +
                   exprs_.gen(1) + ");";
          case 5:
            return "switch (" + exprs_.gen(1) + ") {\ncase 1:\n" +
                   gen(depth - 1, 1) + "break;\ncase 2:\n" +
                   gen(depth - 1, 1) + "default:\n" + gen(depth - 1, 1) +
                   "}";
          case 6:
            return rng_.chance(1, 2) ? "return;" : simple();
          default:
            return simple();
        }
    }

    std::string
    simple()
    {
        switch (rng_.below(3)) {
          case 0: return "x = " + exprs_.gen(2) + ";";
          case 1: return "f(" + exprs_.gen(1) + ");";
          default: return "int v" + std::to_string(++vars_) + " = " +
                          exprs_.gen(1) + ";";
        }
    }

    Rng& rng_;
    ExprGen exprs_;
    int vars_ = 0;
};

class ExprRoundtrip : public ::testing::TestWithParam<int>
{
};

TEST_P(ExprRoundtrip, PrintParsePrintIsStable)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    ExprGen gen(rng);
    for (int i = 0; i < 50; ++i) {
        std::string text = gen.gen(4);

        AstContext ctx1;
        support::SourceManager sm1;
        TranslationUnit tu1 = parseSource(
            ctx1, sm1, "a.c", "void f(void) { x = " + text + "; }");
        const auto* stmt1 = static_cast<const ExprStmt*>(
            tu1.functionDefinitions()[0]->body->stmts[0]);
        std::string printed = exprToString(*stmt1->expr);

        // Re-parse the printed form: must be structurally identical.
        AstContext ctx2;
        support::SourceManager sm2;
        TranslationUnit tu2 = parseSource(
            ctx2, sm2, "b.c", "void f(void) { " + printed + "; }");
        const auto* stmt2 = static_cast<const ExprStmt*>(
            tu2.functionDefinitions()[0]->body->stmts[0]);
        EXPECT_TRUE(exprEquals(*stmt1->expr, *stmt2->expr))
            << "original: " << text << "\nprinted:  " << printed;
        EXPECT_EQ(printed, exprToString(*stmt2->expr));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundtrip, ::testing::Range(0, 8));

class CfgInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(CfgInvariants, RandomBodiesSatisfyStructuralInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
    BodyGen gen(rng);
    for (int i = 0; i < 20; ++i) {
        std::string body = gen.gen(3, 4);
        Program program;
        program.addSource("t" + std::to_string(i) + ".c",
                          "void f(void) {\n" + body + "}");
        const FunctionDecl* fn = program.functions().back();
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);

        // Invariant: edges are symmetric (succ lists match pred lists).
        for (const cfg::BasicBlock& bb : cfg.blocks()) {
            for (int s : bb.succs) {
                const auto& preds = cfg.block(s).preds;
                EXPECT_NE(std::count(preds.begin(), preds.end(), bb.id),
                          0)
                    << "missing pred edge in body:\n"
                    << body;
            }
            for (int p : bb.preds) {
                const auto& succs = cfg.block(p).succs;
                EXPECT_NE(std::count(succs.begin(), succs.end(), bb.id),
                          0);
            }
        }

        // Invariant: the exit block has no successors.
        EXPECT_TRUE(cfg.block(cfg.exitId()).succs.empty());

        // Invariant: every statement of the body appears in exactly one
        // block.
        std::map<const Stmt*, int> owner_count;
        for (const cfg::BasicBlock& bb : cfg.blocks())
            for (const Stmt* stmt : bb.stmts)
                ++owner_count[stmt];
        for (const auto& [stmt, count] : owner_count)
            EXPECT_EQ(count, 1);

        // Invariant: DP path count equals explicit enumeration when the
        // count is small enough to enumerate.
        cfg::PathStats stats = cfg::computePathStats(cfg);
        if (stats.path_count <= 4096) {
            std::uint64_t enumerated = 0;
            cfg::enumeratePaths(cfg, [&](const std::vector<int>&) {
                ++enumerated;
            });
            EXPECT_EQ(stats.path_count, enumerated) << body;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgInvariants, ::testing::Range(0, 8));

class LexerRobustness : public ::testing::TestWithParam<int>
{
};

TEST_P(LexerRobustness, MutatedSourceNeverCrashes)
{
    // Take a valid handler, splice random bytes in, and require the
    // frontend to either parse or throw — never crash or hang.
    const std::string base =
        "void H(void) { if (a > 2) { FREE_DB(); } x = y + 1; }";
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
    const std::string charset = "(){};=+-*/<>&|!~^%#\"'abc012 \t\n";
    for (int i = 0; i < 200; ++i) {
        std::string mutated = base;
        int edits = static_cast<int>(rng.below(4)) + 1;
        for (int e = 0; e < edits; ++e) {
            std::size_t pos = rng.below(mutated.size());
            mutated[pos] = charset[rng.below(charset.size())];
        }
        AstContext ctx;
        support::SourceManager sm;
        try {
            parseSource(ctx, sm, "fuzz.c", mutated);
        } catch (const LexError&) {
        } catch (const ParseError&) {
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerRobustness, ::testing::Range(0, 4));

// ---- generated-corpus properties --------------------------------------
//
// The corpus generator is itself a seeded random-program generator; these
// properties run it at several seeds and require (a) byte-determinism,
// (b) print -> re-parse stability for every expression it emits, and
// (c) the full checking pipeline to produce byte-identical findings from
// a cold and a warm analysis cache.

/** A miniature protocol profile whose structure varies with the seed. */
corpus::ProtocolProfile
smallProfile(std::uint64_t seed)
{
    corpus::ProtocolProfile p;
    p.name = "prop";
    p.seed = seed * 2654435761u + 97;
    p.target_loc = 700;
    p.hw_handlers = 6 + static_cast<int>(seed % 3);
    p.sw_handlers = 2;
    p.normal_routines = 4;
    p.giant_handlers = 0;
    p.passthru_percent = 25;
    p.branches_per_handler = 2;
    p.vars_per_function = 2;
    p.db_reads = 2;
    p.send_segments = 2;
    p.alloc_sites = 1;
    p.race_errors = 1;
    p.msglen_errors = 1;
    p.bm_leak = 1;
    p.lanes_errors = 1;
    p.hooks_missing = 1;
    return p;
}

/** Collect every expression reachable from a statement subtree. */
void
collectExprs(const Stmt* stmt, std::vector<const Expr*>& out)
{
    if (!stmt)
        return;
    switch (stmt->skind) {
      case StmtKind::Expr:
        out.push_back(static_cast<const ExprStmt*>(stmt)->expr);
        break;
      case StmtKind::Decl:
        for (const VarDecl* d :
             static_cast<const DeclStmt*>(stmt)->decls)
            if (d->init)
                out.push_back(d->init);
        break;
      case StmtKind::Compound:
        for (const Stmt* s :
             static_cast<const CompoundStmt*>(stmt)->stmts)
            collectExprs(s, out);
        break;
      case StmtKind::If: {
        const auto* s = static_cast<const IfStmt*>(stmt);
        out.push_back(s->cond);
        collectExprs(s->then_branch, out);
        collectExprs(s->else_branch, out);
        break;
      }
      case StmtKind::While: {
        const auto* s = static_cast<const WhileStmt*>(stmt);
        out.push_back(s->cond);
        collectExprs(s->body, out);
        break;
      }
      case StmtKind::DoWhile: {
        const auto* s = static_cast<const DoWhileStmt*>(stmt);
        collectExprs(s->body, out);
        out.push_back(s->cond);
        break;
      }
      case StmtKind::For: {
        const auto* s = static_cast<const ForStmt*>(stmt);
        collectExprs(s->init, out);
        if (s->cond)
            out.push_back(s->cond);
        if (s->step)
            out.push_back(s->step);
        collectExprs(s->body, out);
        break;
      }
      case StmtKind::Switch: {
        const auto* s = static_cast<const SwitchStmt*>(stmt);
        out.push_back(s->cond);
        collectExprs(s->body, out);
        break;
      }
      case StmtKind::Case:
        out.push_back(static_cast<const CaseStmt*>(stmt)->value);
        break;
      case StmtKind::Return:
        if (const Expr* v = static_cast<const ReturnStmt*>(stmt)->value)
            out.push_back(v);
        break;
      default:
        break;
    }
}

class GeneratedCorpus : public ::testing::TestWithParam<int>
{
};

TEST_P(GeneratedCorpus, GenerationIsByteDeterministic)
{
    SCOPED_TRACE("seed=" + std::to_string(GetParam()));
    corpus::GeneratedProtocol first =
        corpus::generateProtocol(smallProfile(GetParam()));
    corpus::GeneratedProtocol second =
        corpus::generateProtocol(smallProfile(GetParam()));
    ASSERT_FALSE(first.files.empty());
    ASSERT_EQ(first.files.size(), second.files.size());
    for (std::size_t i = 0; i < first.files.size(); ++i) {
        EXPECT_EQ(first.files[i].name, second.files[i].name);
        EXPECT_EQ(first.files[i].source, second.files[i].source);
    }
}

TEST_P(GeneratedCorpus, EveryEmittedExpressionRoundTrips)
{
    SCOPED_TRACE("seed=" + std::to_string(GetParam()));
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(smallProfile(GetParam()));
    std::size_t exprs_checked = 0;
    for (const FunctionDecl* fn : loaded.program->functions()) {
        std::vector<const Expr*> exprs;
        collectExprs(fn->body, exprs);
        for (const Expr* expr : exprs) {
            std::string printed = exprToString(*expr);
            AstContext ctx;
            support::SourceManager sm;
            TranslationUnit tu =
                parseSource(ctx, sm, "rt.c",
                            "void f(void) { " + printed + "; }");
            const auto* stmt = static_cast<const ExprStmt*>(
                tu.functionDefinitions()[0]->body->stmts[0]);
            ASSERT_TRUE(exprEquals(*expr, *stmt->expr))
                << "function " << fn->name << ", printed: " << printed;
            EXPECT_EQ(printed, exprToString(*stmt->expr));
            ++exprs_checked;
        }
    }
    EXPECT_GT(exprs_checked, 0u);
}

TEST_P(GeneratedCorpus, FingerprintsAreStableAndSeedSensitive)
{
    SCOPED_TRACE("seed=" + std::to_string(GetParam()));
    corpus::LoadedProtocol a =
        corpus::loadProtocol(smallProfile(GetParam()));
    corpus::LoadedProtocol b =
        corpus::loadProtocol(smallProfile(GetParam()));
    EXPECT_EQ(fingerprintFunctions(*a.program),
              fingerprintFunctions(*b.program));
    corpus::LoadedProtocol other =
        corpus::loadProtocol(smallProfile(GetParam() + 100));
    EXPECT_NE(fingerprintFunctions(*a.program),
              fingerprintFunctions(*other.program));
}

TEST_P(GeneratedCorpus, ColdAndWarmPipelinesProduceIdenticalBytes)
{
    SCOPED_TRACE("seed=" + std::to_string(GetParam()));
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) /
                   ("mccheck_property_cache_" +
                    std::to_string(GetParam()));
    fs::remove_all(dir);

    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(smallProfile(GetParam()));
    auto run = [&](cache::AnalysisCache* c) {
        auto set = checkers::makeAllCheckers();
        support::DiagnosticSink sink;
        checkers::ParallelRunOptions options;
        options.jobs = 2;
        options.cache = c;
        checkers::runCheckersParallel(*loaded.program, loaded.gen.spec,
                                      set.pointers(), sink, options);
        std::ostringstream out;
        sink.print(out, &loaded.program->sourceManager());
        sink.printJson(out, &loaded.program->sourceManager());
        sink.printSarif(out, &loaded.program->sourceManager());
        return out.str();
    };

    std::string uncached = run(nullptr);
    cache::AnalysisCache cold(dir.string());
    EXPECT_EQ(run(&cold), uncached);
    EXPECT_GT(cold.stats().stores, 0u);
    cache::AnalysisCache warm(dir.string());
    EXPECT_EQ(run(&warm), uncached);
    EXPECT_GT(warm.stats().hits, 0u);
    EXPECT_EQ(warm.stats().misses, 0u);
    fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedCorpus, ::testing::Range(0, 6));

} // namespace
} // namespace mc::lang
