#include "support/diagnostics.h"
#include "support/source_manager.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mc::support {
namespace {

SourceLoc
loc(int file, int line, int col)
{
    return SourceLoc{file, line, col};
}

TEST(DiagnosticSink, CollectsAndCounts)
{
    DiagnosticSink sink;
    EXPECT_TRUE(sink.error(loc(1, 5, 1), "msg_length", "data-zero-len",
                           "data send, zero len"));
    EXPECT_TRUE(sink.warning(loc(1, 9, 1), "msg_length", "suspicious",
                             "odd length"));
    EXPECT_EQ(sink.count(Severity::Error), 1);
    EXPECT_EQ(sink.count(Severity::Warning), 1);
    EXPECT_EQ(sink.countForChecker("msg_length"), 2);
    EXPECT_EQ(sink.countForChecker("msg_length", Severity::Error), 1);
    EXPECT_EQ(sink.countForChecker("other"), 0);
}

TEST(DiagnosticSink, DeduplicatesSameSite)
{
    DiagnosticSink sink;
    EXPECT_TRUE(sink.error(loc(1, 5, 1), "c", "r", "first"));
    // Same checker, rule, and location: path-sensitive engines reach the
    // same statement along many paths but the bug is one bug.
    EXPECT_FALSE(sink.error(loc(1, 5, 1), "c", "r", "again"));
    EXPECT_EQ(sink.count(Severity::Error), 1);
}

TEST(DiagnosticSink, DifferentRuleOrLocIsNotDuplicate)
{
    DiagnosticSink sink;
    EXPECT_TRUE(sink.error(loc(1, 5, 1), "c", "r1", "a"));
    EXPECT_TRUE(sink.error(loc(1, 5, 1), "c", "r2", "b"));
    EXPECT_TRUE(sink.error(loc(1, 6, 1), "c", "r1", "c"));
    EXPECT_EQ(sink.count(Severity::Error), 3);
}

TEST(DiagnosticSink, NotesAreNeverDeduplicated)
{
    DiagnosticSink sink;
    Diagnostic note;
    note.severity = Severity::Note;
    note.loc = loc(1, 2, 3);
    note.checker = "c";
    note.rule = "r";
    note.message = "n";
    EXPECT_TRUE(sink.report(note));
    EXPECT_TRUE(sink.report(note));
    EXPECT_EQ(sink.count(Severity::Note), 2);
}

TEST(DiagnosticSink, PrintIncludesSourceLine)
{
    SourceManager sm;
    std::int32_t id = sm.addFile("proto.c", "int x;\nPI_SEND(a);\n");
    DiagnosticSink sink;
    sink.error(loc(id, 2, 1), "lanes", "overflow", "lane quota exceeded");

    std::ostringstream os;
    sink.print(os, &sm);
    std::string out = os.str();
    EXPECT_NE(out.find("proto.c:2:1"), std::string::npos);
    EXPECT_NE(out.find("[lanes.overflow]"), std::string::npos);
    EXPECT_NE(out.find("PI_SEND(a);"), std::string::npos);
}

TEST(DiagnosticSink, TracePrinted)
{
    DiagnosticSink sink;
    Diagnostic d;
    d.severity = Severity::Error;
    d.loc = loc(1, 1, 1);
    d.checker = "lanes";
    d.rule = "overflow";
    d.message = "too many sends";
    d.trace = {"HandlerA (proto.c:10)", "helper_send (proto.c:99)"};
    sink.report(d);

    std::ostringstream os;
    sink.print(os, nullptr);
    EXPECT_NE(os.str().find("at HandlerA (proto.c:10)"), std::string::npos);
    EXPECT_NE(os.str().find("at helper_send (proto.c:99)"),
              std::string::npos);
}

TEST(DiagnosticSink, ClearResetsDedup)
{
    DiagnosticSink sink;
    sink.error(loc(1, 5, 1), "c", "r", "a");
    sink.clear();
    EXPECT_EQ(sink.count(Severity::Error), 0);
    EXPECT_TRUE(sink.error(loc(1, 5, 1), "c", "r", "a"));
}

TEST(SourceManager, LineTextAndDescribe)
{
    SourceManager sm;
    std::int32_t id = sm.addFile("f.c", "line one\nline two\nline three");
    EXPECT_EQ(sm.lineText(id, 1), "line one");
    EXPECT_EQ(sm.lineText(id, 2), "line two");
    EXPECT_EQ(sm.lineText(id, 3), "line three");
    EXPECT_EQ(sm.lineText(id, 4), "");
    EXPECT_EQ(sm.lineCount(id), 3);
    EXPECT_EQ(sm.describe(SourceLoc{id, 2, 7}), "f.c:2:7");
}

TEST(SourceManager, UnknownFileIsSafe)
{
    SourceManager sm;
    EXPECT_EQ(sm.fileName(0), "<unknown>");
    EXPECT_EQ(sm.fileName(99), "<unknown>");
    EXPECT_EQ(sm.lineText(99, 1), "");
}

} // namespace
} // namespace mc::support
