#include "support/metrics.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace mc::support {
namespace {

TEST(MetricsRegistry, CounterHandlesAreStableAndAccumulate)
{
    MetricsRegistry reg;
    Counter& c = reg.counter("engine.visits");
    c.add();
    c.add(41);
    EXPECT_EQ(reg.counterValue("engine.visits"), 42u);
    // Get-or-create returns the same instrument.
    EXPECT_EQ(&reg.counter("engine.visits"), &c);
    // Untouched counters read as zero without being created.
    EXPECT_EQ(reg.counterValue("engine.nope"), 0u);
    EXPECT_EQ(reg.counters().count("engine.nope"), 0u);
}

TEST(MetricsRegistry, GaugeKeepsHighWaterMark)
{
    MetricsRegistry reg;
    Gauge& g = reg.gauge("engine.peak_frontier");
    g.observe(7);
    g.observe(3);
    EXPECT_EQ(reg.gaugeValue("engine.peak_frontier"), 7u);
    g.observe(11);
    EXPECT_EQ(reg.gaugeValue("engine.peak_frontier"), 11u);
}

TEST(MetricsRegistry, ScopedTimerAccumulatesIntoTimer)
{
    MetricsRegistry reg;
    {
        ScopedTimer t(&reg.timer("engine.run"));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
        ScopedTimer t(&reg.timer("engine.run"));
    }
    const Timer& timer = reg.timer("engine.run");
    EXPECT_EQ(timer.count(), 2u);
    EXPECT_GE(timer.totalMillis(), 1.0);
}

TEST(MetricsRegistry, NullScopedTimerIsANoOp)
{
    ScopedTimer t(nullptr);
    t.stop(); // must not crash; stop twice is fine too
    t.stop();
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry reg;
    reg.counter("a").add(5);
    reg.gauge("b").observe(5);
    reg.timer("c").add(std::chrono::nanoseconds(500));
    reg.reset();
    EXPECT_EQ(reg.counterValue("a"), 0u);
    EXPECT_EQ(reg.gaugeValue("b"), 0u);
    EXPECT_EQ(reg.timer("c").count(), 0u);
    // Keys survive a reset so reports always list every metric.
    EXPECT_EQ(reg.counters().count("a"), 1u);
    EXPECT_EQ(reg.gauges().count("b"), 1u);
    EXPECT_EQ(reg.timers().count("c"), 1u);

    reg.clear();
    EXPECT_EQ(reg.counters().size(), 0u);
}

TEST(MetricsRegistry, DisabledByDefault)
{
    MetricsRegistry reg;
    EXPECT_FALSE(reg.enabled());
    reg.setEnabled(true);
    EXPECT_TRUE(reg.enabled());
}

TEST(MetricsRegistry, GlobalIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(MetricsRegistry, JsonRoundTrip)
{
    MetricsRegistry reg;
    reg.counter("engine.visits").add(123);
    reg.counter("engine.cache_hits").add(45);
    reg.gauge("engine.peak_frontier").observe(9);
    reg.timer("checker.lanes").add(std::chrono::milliseconds(3));

    std::ostringstream os;
    reg.writeJson(os);

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("counters").at("engine.visits").number, 123.0);
    EXPECT_EQ(root.at("counters").at("engine.cache_hits").number, 45.0);
    EXPECT_EQ(root.at("gauges").at("engine.peak_frontier").number, 9.0);
    const auto& timer = root.at("timers").at("checker.lanes");
    EXPECT_EQ(timer.at("count").number, 1.0);
    EXPECT_NEAR(timer.at("total_ms").number, 3.0, 0.5);
}

TEST(MetricsRegistry, EmptyRegistryWritesValidJson)
{
    MetricsRegistry reg;
    std::ostringstream os;
    reg.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_TRUE(root.at("counters").isObject());
    EXPECT_TRUE(root.at("timers").isObject());
}

TEST(MetricsRegistry, ConcurrentUpdatesMergeExactly)
{
    // Hammer one counter, one max-gauge, and one timer from several
    // threads, including racing get-or-create on the same names. Counter
    // and timer sums must be exact; the gauge must hold the global max.
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kIters; ++i) {
                reg.counter("hammer.count").add(1);
                reg.gauge("hammer.peak").observe(
                    static_cast<std::uint64_t>(t * kIters + i));
                reg.timer("hammer.time").add(std::chrono::nanoseconds(1));
            }
        });
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(reg.counterValue("hammer.count"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.gaugeValue("hammer.peak"),
              static_cast<std::uint64_t>(kThreads) * kIters - 1);
    EXPECT_EQ(reg.timer("hammer.time").count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.timer("hammer.time").totalNanos(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, TimerJsonCarriesCountMeanMinMax)
{
    MetricsRegistry reg;
    Timer& t = reg.timer("unit.time");
    t.add(std::chrono::nanoseconds(1'000'000)); // 1 ms
    t.add(std::chrono::nanoseconds(3'000'000)); // 3 ms

    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.minNanos(), 1'000'000u);
    EXPECT_EQ(t.maxNanos(), 3'000'000u);
    EXPECT_EQ(t.meanNanos(), 2'000'000.0);

    std::ostringstream os;
    reg.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    const auto& timer = root.at("timers").at("unit.time");
    EXPECT_EQ(timer.at("count").number, 2.0);
    EXPECT_NEAR(timer.at("mean_ms").number, 2.0, 0.01);
    EXPECT_NEAR(timer.at("min_ms").number, 1.0, 0.01);
    EXPECT_NEAR(timer.at("max_ms").number, 3.0, 0.01);
}

TEST(MetricsRegistry, UnusedTimerReportsZeroMinMax)
{
    MetricsRegistry reg;
    Timer& t = reg.timer("never.used");
    EXPECT_EQ(t.minNanos(), 0u);
    EXPECT_EQ(t.maxNanos(), 0u);
    EXPECT_EQ(t.meanNanos(), 0.0);
}

TEST(Histogram, PercentilesBracketObservations)
{
    Histogram h;
    // 100 observations 1..100: p50 lands in the bucket holding 50 (upper
    // bound 63), p95 in the bucket holding 95 (upper bound clamps to the
    // exact max, 100).
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.observe(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.max(), 100u);
    std::uint64_t p50 = h.percentile(50.0);
    std::uint64_t p95 = h.percentile(95.0);
    EXPECT_GE(p50, 50u);
    EXPECT_LE(p50, 63u);
    EXPECT_GE(p95, 95u);
    EXPECT_LE(p95, 100u);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, h.max());
}

TEST(Histogram, SingleValueAndZeroAndEmpty)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0u);
    h.observe(0);
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.max(), 0u);
    Histogram one;
    one.observe(369);
    EXPECT_EQ(one.percentile(50.0), 369u);
    EXPECT_EQ(one.percentile(95.0), 369u);
    EXPECT_EQ(one.max(), 369u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.observe(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(95.0), 0u);
}

TEST(MetricsRegistry, HistogramJsonCarriesPercentiles)
{
    MetricsRegistry reg;
    Histogram& h = reg.histogram("unit.visits");
    for (std::uint64_t v = 1; v <= 16; ++v)
        h.observe(v);
    EXPECT_EQ(&reg.histogram("unit.visits"), &h);

    std::ostringstream os;
    reg.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    const auto& hist = root.at("histograms").at("unit.visits");
    EXPECT_EQ(hist.at("count").number, 16.0);
    EXPECT_EQ(hist.at("max").number, 16.0);
    EXPECT_GE(hist.at("p95").number, hist.at("p50").number);

    reg.reset();
    EXPECT_EQ(reg.histograms().count("unit.visits"), 1u);
    EXPECT_EQ(reg.histogram("unit.visits").count(), 0u);
}

TEST(MetricsRegistry, PreRegisteredInstrumentsHammeredConcurrently)
{
    // The parallel runner pre-registers ledger./witness./unit.* names
    // before fanning out, then workers only update. Updates through
    // pre-registered references must merge exactly with no registration
    // race (TSan covers this test in CI).
    MetricsRegistry reg;
    reg.counter("witness.steps").add(0);
    reg.counter("ledger.events").add(0);
    reg.histogram("unit.wall_ns");
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kIters; ++i) {
                reg.counter("witness.steps").add(1);
                reg.counter("ledger.events").add(1);
                reg.histogram("unit.wall_ns")
                    .observe(static_cast<std::uint64_t>(t * kIters + i));
            }
        });
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(reg.counterValue("witness.steps"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.counterValue("ledger.events"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("unit.wall_ns").count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("unit.wall_ns").max(),
              static_cast<std::uint64_t>(kThreads) * kIters - 1);
}

TEST(MetricsRegistry, MetricNamesNeedingEscapesStayWellFormed)
{
    MetricsRegistry reg;
    reg.counter("weird\"name\\with\nescapes").add(1);
    std::ostringstream os;
    reg.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(
        root.at("counters").at("weird\"name\\with\nescapes").number, 1.0);
}

} // namespace
} // namespace mc::support
