#include "support/metrics.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace mc::support {
namespace {

TEST(MetricsRegistry, CounterHandlesAreStableAndAccumulate)
{
    MetricsRegistry reg;
    Counter& c = reg.counter("engine.visits");
    c.add();
    c.add(41);
    EXPECT_EQ(reg.counterValue("engine.visits"), 42u);
    // Get-or-create returns the same instrument.
    EXPECT_EQ(&reg.counter("engine.visits"), &c);
    // Untouched counters read as zero without being created.
    EXPECT_EQ(reg.counterValue("engine.nope"), 0u);
    EXPECT_EQ(reg.counters().count("engine.nope"), 0u);
}

TEST(MetricsRegistry, GaugeKeepsHighWaterMark)
{
    MetricsRegistry reg;
    Gauge& g = reg.gauge("engine.peak_frontier");
    g.observe(7);
    g.observe(3);
    EXPECT_EQ(reg.gaugeValue("engine.peak_frontier"), 7u);
    g.observe(11);
    EXPECT_EQ(reg.gaugeValue("engine.peak_frontier"), 11u);
}

TEST(MetricsRegistry, ScopedTimerAccumulatesIntoTimer)
{
    MetricsRegistry reg;
    {
        ScopedTimer t(&reg.timer("engine.run"));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
        ScopedTimer t(&reg.timer("engine.run"));
    }
    const Timer& timer = reg.timer("engine.run");
    EXPECT_EQ(timer.count(), 2u);
    EXPECT_GE(timer.totalMillis(), 1.0);
}

TEST(MetricsRegistry, NullScopedTimerIsANoOp)
{
    ScopedTimer t(nullptr);
    t.stop(); // must not crash; stop twice is fine too
    t.stop();
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry reg;
    reg.counter("a").add(5);
    reg.gauge("b").observe(5);
    reg.timer("c").add(std::chrono::nanoseconds(500));
    reg.reset();
    EXPECT_EQ(reg.counterValue("a"), 0u);
    EXPECT_EQ(reg.gaugeValue("b"), 0u);
    EXPECT_EQ(reg.timer("c").count(), 0u);
    // Keys survive a reset so reports always list every metric.
    EXPECT_EQ(reg.counters().count("a"), 1u);
    EXPECT_EQ(reg.gauges().count("b"), 1u);
    EXPECT_EQ(reg.timers().count("c"), 1u);

    reg.clear();
    EXPECT_EQ(reg.counters().size(), 0u);
}

TEST(MetricsRegistry, DisabledByDefault)
{
    MetricsRegistry reg;
    EXPECT_FALSE(reg.enabled());
    reg.setEnabled(true);
    EXPECT_TRUE(reg.enabled());
}

TEST(MetricsRegistry, GlobalIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(MetricsRegistry, JsonRoundTrip)
{
    MetricsRegistry reg;
    reg.counter("engine.visits").add(123);
    reg.counter("engine.cache_hits").add(45);
    reg.gauge("engine.peak_frontier").observe(9);
    reg.timer("checker.lanes").add(std::chrono::milliseconds(3));

    std::ostringstream os;
    reg.writeJson(os);

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("counters").at("engine.visits").number, 123.0);
    EXPECT_EQ(root.at("counters").at("engine.cache_hits").number, 45.0);
    EXPECT_EQ(root.at("gauges").at("engine.peak_frontier").number, 9.0);
    const auto& timer = root.at("timers").at("checker.lanes");
    EXPECT_EQ(timer.at("count").number, 1.0);
    EXPECT_NEAR(timer.at("total_ms").number, 3.0, 0.5);
}

TEST(MetricsRegistry, EmptyRegistryWritesValidJson)
{
    MetricsRegistry reg;
    std::ostringstream os;
    reg.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_TRUE(root.at("counters").isObject());
    EXPECT_TRUE(root.at("timers").isObject());
}

TEST(MetricsRegistry, ConcurrentUpdatesMergeExactly)
{
    // Hammer one counter, one max-gauge, and one timer from several
    // threads, including racing get-or-create on the same names. Counter
    // and timer sums must be exact; the gauge must hold the global max.
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kIters; ++i) {
                reg.counter("hammer.count").add(1);
                reg.gauge("hammer.peak").observe(
                    static_cast<std::uint64_t>(t * kIters + i));
                reg.timer("hammer.time").add(std::chrono::nanoseconds(1));
            }
        });
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(reg.counterValue("hammer.count"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.gaugeValue("hammer.peak"),
              static_cast<std::uint64_t>(kThreads) * kIters - 1);
    EXPECT_EQ(reg.timer("hammer.time").count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.timer("hammer.time").totalNanos(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, MetricNamesNeedingEscapesStayWellFormed)
{
    MetricsRegistry reg;
    reg.counter("weird\"name\\with\nescapes").add(1);
    std::ostringstream os;
    reg.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(
        root.at("counters").at("weird\"name\\with\nescapes").number, 1.0);
}

} // namespace
} // namespace mc::support
