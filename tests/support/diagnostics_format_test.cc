/**
 * @file
 * Golden-file tests for the machine-readable diagnostic emitters: a small
 * fixture protocol is checked with the shipped wait_for_db metal checker,
 * a lanes-style inter-procedural finding (with back-trace) is added, and
 * the JSON / SARIF renderings are compared byte-for-byte against
 * tests/goldens/. Regenerate with:
 *     MCHECK_REGEN_GOLDENS=1 build/tests/test_observability
 */
#include "cfg/cfg.h"
#include "lang/program.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "support/diagnostics.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef MCHECK_GOLDEN_DIR
#error "MCHECK_GOLDEN_DIR must be defined by the build"
#endif

namespace mc {
namespace {

/** Two handlers; the second reads the DMA buffer without waiting. */
const char* const kFixtureSource =
    "void PILocalGet(void) {\n"
    "    WAIT_FOR_DB_FULL(addr);\n"
    "    MISCBUS_READ_DB(addr, buf);\n"
    "}\n"
    "void NILocalPut(void) {\n"
    "    MISCBUS_READ_DB(addr, buf);\n"
    "}\n";

/** Build the fixture sink every emitter test shares. */
void
buildFixture(lang::Program& program, support::DiagnosticSink& sink)
{
    program.addSource("fixture.c", kFixtureSource);
    metal::MetalProgram checker = metal::parseMetal(
        "sm wait_for_db {\n"
        "  decl { scalar } addr, buf;\n"
        "  start:\n"
        "    { WAIT_FOR_DB_FULL(addr); } ==> stop\n"
        "  | { MISCBUS_READ_DB(addr, buf); } ==> "
        "{ err(\"Buffer not synchronized\"); }\n"
        "  ;\n"
        "}\n");
    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        metal::runStateMachine(*checker.sm, cfg, sink);
    }

    // A lanes-style inter-procedural finding, to exercise back-traces.
    support::Diagnostic lanes;
    lanes.severity = support::Severity::Error;
    lanes.loc = support::SourceLoc{1, 6, 5};
    lanes.checker = "lanes";
    lanes.rule = "overflow";
    lanes.message = "lane quota exceeded";
    lanes.trace = {"NILocalPut (fixture.c:5)", "helper (fixture.c:6)"};
    sink.report(lanes);
}

std::string
goldenPath(const std::string& name)
{
    return std::string(MCHECK_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open golden file " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Compare `actual` to the golden, or rewrite it in regen mode. */
void
expectMatchesGolden(const std::string& actual, const std::string& name)
{
    if (std::getenv("MCHECK_REGEN_GOLDENS")) {
        std::ofstream out(goldenPath(name));
        out << actual;
        return;
    }
    EXPECT_EQ(actual, readFile(goldenPath(name)))
        << "golden mismatch for " << name
        << " — if the output change is intentional, run "
           "tools/regen_goldens.sh and review the diff";
}

TEST(DiagnosticFormats, JsonMatchesGoldenAndParses)
{
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printJson(os, &program.sourceManager());

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("counts").at("error").number, 2.0);
    ASSERT_EQ(root.at("diagnostics").array.size(), 2u);
    // Both findings land on fixture.c:6:5, so the sorted emission order
    // breaks the tie by checker name: "lanes" before "wait_for_db".
    const auto& first = root.at("diagnostics").array[0];
    EXPECT_EQ(first.at("checker").string, "lanes");
    ASSERT_EQ(first.at("trace").array.size(), 2u);
    EXPECT_EQ(first.at("trace").array[0].string,
              "NILocalPut (fixture.c:5)");
    const auto& second = root.at("diagnostics").array[1];
    EXPECT_EQ(second.at("checker").string, "wait_for_db");
    EXPECT_EQ(second.at("file").string, "fixture.c");
    EXPECT_EQ(second.at("line").number, 6.0);

    expectMatchesGolden(os.str(), "fixture_diagnostics.json");
}

TEST(DiagnosticFormats, SarifMatchesGoldenAndParses)
{
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printSarif(os, &program.sourceManager());

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("version").string, "2.1.0");
    ASSERT_EQ(root.at("runs").array.size(), 1u);
    const auto& run = root.at("runs").array[0];
    EXPECT_EQ(run.at("tool").at("driver").at("name").string, "mccheck");
    ASSERT_EQ(run.at("results").array.size(), 2u);
    // Tie on location, so sorted emission puts "lanes" first; it carries
    // its back-trace as a SARIF stack.
    const auto& lanes = run.at("results").array[0];
    EXPECT_EQ(lanes.at("ruleId").string, "lanes.overflow");
    ASSERT_EQ(lanes.at("stacks").array.size(), 1u);
    EXPECT_EQ(lanes.at("stacks").array[0].at("frames").array.size(), 2u);
    const auto& result = run.at("results").array[1];
    EXPECT_EQ(result.at("ruleId").string,
              "wait_for_db.buffer-not-synchronized");
    EXPECT_EQ(result.at("level").string, "error");
    const auto& region = result.at("locations")
                             .array[0]
                             .at("physicalLocation")
                             .at("region");
    EXPECT_EQ(region.at("startLine").number, 6.0);

    expectMatchesGolden(os.str(), "fixture_diagnostics.sarif");
}

TEST(DiagnosticFormats, WriteDispatchesOnFormat)
{
    support::DiagnosticSink sink;
    sink.error(support::SourceLoc{1, 1, 1}, "c", "r", "m");

    std::ostringstream text, json, sarif;
    sink.write(text, support::OutputFormat::Text);
    sink.write(json, support::OutputFormat::Json);
    sink.write(sarif, support::OutputFormat::Sarif);
    EXPECT_NE(text.str().find("[c.r]"), std::string::npos);
    EXPECT_NE(json.str().find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(sarif.str().find("\"2.1.0\""), std::string::npos);
}

TEST(DiagnosticFormats, ParseOutputFormat)
{
    support::OutputFormat f = support::OutputFormat::Text;
    EXPECT_TRUE(support::parseOutputFormat("json", f));
    EXPECT_EQ(f, support::OutputFormat::Json);
    EXPECT_TRUE(support::parseOutputFormat("sarif", f));
    EXPECT_EQ(f, support::OutputFormat::Sarif);
    EXPECT_TRUE(support::parseOutputFormat("text", f));
    EXPECT_EQ(f, support::OutputFormat::Text);
    EXPECT_FALSE(support::parseOutputFormat("yaml", f));
    EXPECT_EQ(f, support::OutputFormat::Text); // untouched on failure
}

TEST(DiagnosticSink, DedupKeyIsNotFooledByDelimiters)
{
    // With string-concatenated keys, ("a\x1f" "b", "c") and ("a", "b\x1f"
    // "c") collided. The structured tuple key keeps them distinct.
    support::DiagnosticSink sink;
    support::SourceLoc at{1, 1, 1};
    EXPECT_TRUE(sink.error(at, "a\x1f"
                               "b",
                           "c", "first"));
    EXPECT_TRUE(sink.error(at, "a",
                           "b\x1f"
                           "c",
                           "second"));
    EXPECT_EQ(sink.count(support::Severity::Error), 2);
}

TEST(DiagnosticFormats, MessagesWithQuotesAndNewlinesStayWellFormed)
{
    support::DiagnosticSink sink;
    sink.error(support::SourceLoc{1, 2, 3}, "checker\"q", "rule\\b",
               "line1\nline2\t\"quoted\"");

    std::ostringstream json, sarif;
    sink.printJson(json);
    sink.printSarif(sarif);
    testjson::Value jroot, sroot;
    ASSERT_NO_THROW(jroot = testjson::parse(json.str()));
    ASSERT_NO_THROW(sroot = testjson::parse(sarif.str()));
    EXPECT_EQ(jroot.at("diagnostics").array[0].at("message").string,
              "line1\nline2\t\"quoted\"");
}

} // namespace
} // namespace mc
