/**
 * @file
 * Golden-file tests for the machine-readable diagnostic emitters: a small
 * fixture protocol is checked with the shipped wait_for_db metal checker,
 * a lanes-style inter-procedural finding (with back-trace) is added, and
 * the JSON / SARIF renderings are compared byte-for-byte against
 * tests/goldens/. Regenerate with:
 *     MCHECK_REGEN_GOLDENS=1 build/tests/test_observability
 */
#include "cfg/cfg.h"
#include "lang/program.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"
#include "support/diagnostics.h"
#include "support/witness.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef MCHECK_GOLDEN_DIR
#error "MCHECK_GOLDEN_DIR must be defined by the build"
#endif

namespace mc {
namespace {

/** Two handlers; the second reads the DMA buffer without waiting. */
const char* const kFixtureSource =
    "void PILocalGet(void) {\n"
    "    WAIT_FOR_DB_FULL(addr);\n"
    "    MISCBUS_READ_DB(addr, buf);\n"
    "}\n"
    "void NILocalPut(void) {\n"
    "    MISCBUS_READ_DB(addr, buf);\n"
    "}\n";

/** Build the fixture sink every emitter test shares. */
void
buildFixture(lang::Program& program, support::DiagnosticSink& sink)
{
    program.addSource("fixture.c", kFixtureSource);
    metal::MetalProgram checker = metal::parseMetal(
        "sm wait_for_db {\n"
        "  decl { scalar } addr, buf;\n"
        "  start:\n"
        "    { WAIT_FOR_DB_FULL(addr); } ==> stop\n"
        "  | { MISCBUS_READ_DB(addr, buf); } ==> "
        "{ err(\"Buffer not synchronized\"); }\n"
        "  ;\n"
        "}\n");
    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        metal::runStateMachine(*checker.sm, cfg, sink);
    }

    // A lanes-style inter-procedural finding, to exercise back-traces.
    support::Diagnostic lanes;
    lanes.severity = support::Severity::Error;
    lanes.loc = support::SourceLoc{1, 6, 5};
    lanes.checker = "lanes";
    lanes.rule = "overflow";
    lanes.message = "lane quota exceeded";
    lanes.trace = {"NILocalPut (fixture.c:5)", "helper (fixture.c:6)"};
    sink.report(lanes);
}

std::string
goldenPath(const std::string& name)
{
    return std::string(MCHECK_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open golden file " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Compare `actual` to the golden, or rewrite it in regen mode. */
void
expectMatchesGolden(const std::string& actual, const std::string& name)
{
    if (std::getenv("MCHECK_REGEN_GOLDENS")) {
        std::ofstream out(goldenPath(name));
        out << actual;
        return;
    }
    EXPECT_EQ(actual, readFile(goldenPath(name)))
        << "golden mismatch for " << name
        << " — if the output change is intentional, run "
           "tools/regen_goldens.sh and review the diff";
}

/** Enable witness capture for one test; restores the default (off). */
struct WitnessConfigGuard
{
    explicit WitnessConfigGuard(unsigned limit = 0)
    {
        support::setWitnessConfig(true, limit);
    }
    ~WitnessConfigGuard() { support::setWitnessConfig(false, 0); }
};

TEST(DiagnosticFormats, JsonMatchesGoldenAndParses)
{
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printJson(os, &program.sourceManager());

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("counts").at("error").number, 2.0);
    ASSERT_EQ(root.at("diagnostics").array.size(), 2u);
    // Both findings land on fixture.c:6:5, so the sorted emission order
    // breaks the tie by checker name: "lanes" before "wait_for_db".
    const auto& first = root.at("diagnostics").array[0];
    EXPECT_EQ(first.at("checker").string, "lanes");
    ASSERT_EQ(first.at("trace").array.size(), 2u);
    EXPECT_EQ(first.at("trace").array[0].string,
              "NILocalPut (fixture.c:5)");
    const auto& second = root.at("diagnostics").array[1];
    EXPECT_EQ(second.at("checker").string, "wait_for_db");
    EXPECT_EQ(second.at("file").string, "fixture.c");
    EXPECT_EQ(second.at("line").number, 6.0);

    expectMatchesGolden(os.str(), "fixture_diagnostics.json");
}

TEST(DiagnosticFormats, SarifMatchesGoldenAndParses)
{
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printSarif(os, &program.sourceManager());

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("version").string, "2.1.0");
    ASSERT_EQ(root.at("runs").array.size(), 1u);
    const auto& run = root.at("runs").array[0];
    EXPECT_EQ(run.at("tool").at("driver").at("name").string, "mccheck");
    ASSERT_EQ(run.at("results").array.size(), 2u);
    // Tie on location, so sorted emission puts "lanes" first; it carries
    // its back-trace as a SARIF stack.
    const auto& lanes = run.at("results").array[0];
    EXPECT_EQ(lanes.at("ruleId").string, "lanes.overflow");
    ASSERT_EQ(lanes.at("stacks").array.size(), 1u);
    EXPECT_EQ(lanes.at("stacks").array[0].at("frames").array.size(), 2u);
    const auto& result = run.at("results").array[1];
    EXPECT_EQ(result.at("ruleId").string,
              "wait_for_db.buffer-not-synchronized");
    EXPECT_EQ(result.at("level").string, "error");
    const auto& region = result.at("locations")
                             .array[0]
                             .at("physicalLocation")
                             .at("region");
    EXPECT_EQ(region.at("startLine").number, 6.0);

    expectMatchesGolden(os.str(), "fixture_diagnostics.sarif");
}

TEST(WitnessFormats, TextMatchesGolden)
{
    WitnessConfigGuard witness;
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.print(os, &program.sourceManager());
    EXPECT_NE(os.str().find("witness: blocks"), std::string::npos);
    EXPECT_NE(os.str().find("step start => start"), std::string::npos);
    expectMatchesGolden(os.str(), "fixture_witness.txt");
}

TEST(WitnessFormats, JsonMatchesGoldenAndParses)
{
    WitnessConfigGuard witness;
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printJson(os, &program.sourceManager());

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    ASSERT_EQ(root.at("diagnostics").array.size(), 2u);
    // The walker-sourced finding carries full provenance; the manually
    // reported lanes finding (no walk, no trail) gets the structural
    // fallback — one step at the rule's evaluation site, no block path —
    // so --witness guarantees every finding carries a witness.
    const auto& lanes = root.at("diagnostics").array[0];
    EXPECT_EQ(lanes.at("checker").string, "lanes");
    const auto& lanes_witness = lanes.at("witness");
    EXPECT_TRUE(lanes_witness.at("blocks").array.empty());
    ASSERT_EQ(lanes_witness.at("steps").array.size(), 1u);
    const auto& lanes_step = lanes_witness.at("steps").array[0];
    EXPECT_EQ(lanes_step.at("from").string, "decl");
    EXPECT_EQ(lanes_step.at("to").string, "decl");
    EXPECT_NE(lanes_step.at("note").string.find("structural"),
              std::string::npos);
    const auto& finding = root.at("diagnostics").array[1];
    EXPECT_EQ(finding.at("checker").string, "wait_for_db");
    const auto& witness_obj = finding.at("witness");
    EXPECT_FALSE(witness_obj.at("blocks").array.empty());
    ASSERT_EQ(witness_obj.at("steps").array.size(), 1u);
    const auto& step = witness_obj.at("steps").array[0];
    EXPECT_EQ(step.at("from").string, "start");
    EXPECT_EQ(step.at("to").string, "start");
    EXPECT_EQ(step.at("file").string, "fixture.c");
    EXPECT_EQ(step.at("line").number, 6.0);
    EXPECT_NE(step.at("note").string.find("rule"), std::string::npos);

    expectMatchesGolden(os.str(), "fixture_witness.json");
}

TEST(WitnessFormats, SarifCarriesCodeFlowsAndMatchesGolden)
{
    WitnessConfigGuard witness;
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printSarif(os, &program.sourceManager());

    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    const auto& run = root.at("runs").array[0];
    ASSERT_EQ(run.at("results").array.size(), 2u);
    const auto& result = run.at("results").array[1];
    EXPECT_EQ(result.at("ruleId").string,
              "wait_for_db.buffer-not-synchronized");
    ASSERT_EQ(result.at("codeFlows").array.size(), 1u);
    const auto& flow = result.at("codeFlows").array[0];
    EXPECT_NE(flow.at("message").at("text").string.find("block path"),
              std::string::npos);
    ASSERT_EQ(flow.at("threadFlows").array.size(), 1u);
    const auto& locations = flow.at("threadFlows").array[0].at("locations");
    ASSERT_FALSE(locations.array.empty());
    const auto& loc = locations.array[0].at("location");
    EXPECT_EQ(loc.at("physicalLocation")
                  .at("artifactLocation")
                  .at("uri")
                  .string,
              "fixture.c");
    EXPECT_NE(loc.at("message").at("text").string.find("start => start"),
              std::string::npos);

    expectMatchesGolden(os.str(), "fixture_witness.sarif");
}

TEST(WitnessFormats, OffByDefaultLeavesFindingsBare)
{
    // No guard: the process-wide default must be witness-off.
    lang::Program program;
    support::DiagnosticSink sink;
    buildFixture(program, sink);

    std::ostringstream os;
    sink.printJson(os, &program.sourceManager());
    EXPECT_EQ(os.str().find("\"witness\""), std::string::npos);
    for (const support::Diagnostic& d : sink.diagnostics())
        EXPECT_TRUE(d.witness.empty());
}

TEST(WitnessFormats, ReportedWitnessSurvivesSinkToSinkMerge)
{
    // The parallel runner replays private-sink findings into the shared
    // sink outside any walk; the witness attached at capture time must
    // ride along unchanged.
    lang::Program program;
    support::DiagnosticSink unit_sink;
    {
        WitnessConfigGuard witness;
        buildFixture(program, unit_sink);
    }
    support::DiagnosticSink merged;
    for (const support::Diagnostic& d : unit_sink.diagnostics())
        merged.report(d);

    std::ostringstream a, b;
    unit_sink.printJson(a, &program.sourceManager());
    merged.printJson(b, &program.sourceManager());
    EXPECT_EQ(a.str(), b.str());
}

TEST(DiagnosticFormats, WriteDispatchesOnFormat)
{
    support::DiagnosticSink sink;
    sink.error(support::SourceLoc{1, 1, 1}, "c", "r", "m");

    std::ostringstream text, json, sarif;
    sink.write(text, support::OutputFormat::Text);
    sink.write(json, support::OutputFormat::Json);
    sink.write(sarif, support::OutputFormat::Sarif);
    EXPECT_NE(text.str().find("[c.r]"), std::string::npos);
    EXPECT_NE(json.str().find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(sarif.str().find("\"2.1.0\""), std::string::npos);
}

TEST(DiagnosticFormats, ParseOutputFormat)
{
    support::OutputFormat f = support::OutputFormat::Text;
    EXPECT_TRUE(support::parseOutputFormat("json", f));
    EXPECT_EQ(f, support::OutputFormat::Json);
    EXPECT_TRUE(support::parseOutputFormat("sarif", f));
    EXPECT_EQ(f, support::OutputFormat::Sarif);
    EXPECT_TRUE(support::parseOutputFormat("text", f));
    EXPECT_EQ(f, support::OutputFormat::Text);
    EXPECT_FALSE(support::parseOutputFormat("yaml", f));
    EXPECT_EQ(f, support::OutputFormat::Text); // untouched on failure
}

TEST(DiagnosticSink, DedupKeyIsNotFooledByDelimiters)
{
    // With string-concatenated keys, ("a\x1f" "b", "c") and ("a", "b\x1f"
    // "c") collided. The structured tuple key keeps them distinct.
    support::DiagnosticSink sink;
    support::SourceLoc at{1, 1, 1};
    EXPECT_TRUE(sink.error(at, "a\x1f"
                               "b",
                           "c", "first"));
    EXPECT_TRUE(sink.error(at, "a",
                           "b\x1f"
                           "c",
                           "second"));
    EXPECT_EQ(sink.count(support::Severity::Error), 2);
}

TEST(DiagnosticFormats, MessagesWithQuotesAndNewlinesStayWellFormed)
{
    support::DiagnosticSink sink;
    sink.error(support::SourceLoc{1, 2, 3}, "checker\"q", "rule\\b",
               "line1\nline2\t\"quoted\"");

    std::ostringstream json, sarif;
    sink.printJson(json);
    sink.printSarif(sarif);
    testjson::Value jroot, sroot;
    ASSERT_NO_THROW(jroot = testjson::parse(json.str()));
    ASSERT_NO_THROW(sroot = testjson::parse(sarif.str()));
    EXPECT_EQ(jroot.at("diagnostics").array[0].at("message").string,
              "line1\nline2\t\"quoted\"");
}

} // namespace
} // namespace mc
