/**
 * @file
 * Resource-budget governor: limit tripping, latching, deadline polling,
 * and the thread-local BudgetScope install/restore discipline.
 */
#include "support/budget.h"

#include <gtest/gtest.h>

#include <thread>

namespace mc::support {
namespace {

TEST(Budget, UnlimitedByDefault)
{
    BudgetLimits limits;
    EXPECT_TRUE(limits.unlimited());
    Budget budget(limits);
    budget.chargeStep(1'000'000);
    budget.chargeBytes(1'000'000'000);
    EXPECT_FALSE(budget.exhausted());
    EXPECT_EQ(budget.stop(), BudgetStop::None);
}

TEST(Budget, StepLimitTrips)
{
    BudgetLimits limits;
    limits.max_steps = 10;
    Budget budget(limits);
    budget.chargeStep(10);
    EXPECT_FALSE(budget.exhausted());
    budget.chargeStep();
    EXPECT_TRUE(budget.exhausted());
    EXPECT_EQ(budget.stop(), BudgetStop::Steps);
    EXPECT_EQ(budget.steps(), 11u);
}

TEST(Budget, ByteLimitTrips)
{
    BudgetLimits limits;
    limits.max_bytes = 100;
    Budget budget(limits);
    budget.chargeBytes(100);
    EXPECT_FALSE(budget.exhausted());
    budget.chargeBytes(1);
    EXPECT_TRUE(budget.exhausted());
    EXPECT_EQ(budget.stop(), BudgetStop::Bytes);
}

TEST(Budget, FirstTripLatches)
{
    BudgetLimits limits;
    limits.max_steps = 1;
    limits.max_bytes = 1;
    Budget budget(limits);
    budget.chargeStep(5);
    budget.chargeBytes(5);
    EXPECT_EQ(budget.stop(), BudgetStop::Steps)
        << "first tripped limit must win and latch";
}

TEST(Budget, DeadlineTrips)
{
    BudgetLimits limits;
    limits.deadline = std::chrono::milliseconds(1);
    Budget budget(limits);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(budget.exhausted());
    EXPECT_EQ(budget.stop(), BudgetStop::Deadline);
}

TEST(Budget, StopNamesAreStable)
{
    EXPECT_STREQ(budgetStopName(BudgetStop::None), "none");
    EXPECT_STREQ(budgetStopName(BudgetStop::Deadline), "deadline");
    EXPECT_STREQ(budgetStopName(BudgetStop::Steps), "steps");
    EXPECT_STREQ(budgetStopName(BudgetStop::Bytes), "bytes");
}

TEST(BudgetScope, InstallAndRestore)
{
    EXPECT_EQ(Budget::current(), nullptr);
    Budget outer{BudgetLimits{}};
    {
        BudgetScope outer_scope(&outer);
        EXPECT_EQ(Budget::current(), &outer);
        Budget inner{BudgetLimits{}};
        {
            BudgetScope inner_scope(&inner);
            EXPECT_EQ(Budget::current(), &inner);
        }
        EXPECT_EQ(Budget::current(), &outer);
        {
            // nullptr shadows: exempts a sub-computation.
            BudgetScope shadow(nullptr);
            EXPECT_EQ(Budget::current(), nullptr);
        }
        EXPECT_EQ(Budget::current(), &outer);
    }
    EXPECT_EQ(Budget::current(), nullptr);
}

TEST(BudgetScope, PerThread)
{
    Budget main_budget{BudgetLimits{}};
    BudgetScope scope(&main_budget);
    Budget* seen = &main_budget;
    std::thread worker([&] { seen = Budget::current(); });
    worker.join();
    EXPECT_EQ(seen, nullptr)
        << "a budget must not leak across threads";
    EXPECT_EQ(Budget::current(), &main_budget);
}

} // namespace
} // namespace mc::support
