#include "support/trace.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace mc::support {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndSpanIsNoOp)
{
    TraceRecorder rec;
    EXPECT_FALSE(rec.enabled());
    {
        TraceSpan span(nullptr, "run", "engine");
        span.arg("k", "v");
    }
    EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, SpanRecordsCompleteEvent)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan span(&rec, "wait_for_db", "engine");
        span.arg("function", "PILocalGet");
    }
    std::vector<TraceEvent> events = rec.events();
    ASSERT_EQ(events.size(), 1u);
    const TraceEvent& e = events[0];
    EXPECT_EQ(e.name, "wait_for_db");
    EXPECT_EQ(e.category, "engine");
    ASSERT_EQ(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].first, "function");
    EXPECT_EQ(e.args[0].second, "PILocalGet");
}

TEST(TraceRecorder, FinishIsIdempotent)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    TraceSpan span(&rec, "run", "engine");
    span.finish();
    span.finish();
    EXPECT_EQ(rec.events().size(), 1u);
}

TEST(TraceRecorder, TimestampsAreMonotonic)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan a(&rec, "first", "engine");
    }
    {
        TraceSpan b(&rec, "second", "engine");
    }
    ASSERT_EQ(rec.events().size(), 2u);
    EXPECT_LE(rec.events()[0].ts_us, rec.events()[1].ts_us);
}

TEST(TraceRecorder, JsonIsWellFormedChromeTraceFormat)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan span(&rec, "msglen_check", "engine");
        span.arg("function", "NILocalGet");
        span.arg("visits", "42");
    }
    {
        TraceSpan span(&rec, "protocol:\"sci\"", "driver");
    }

    std::ostringstream os;
    rec.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));

    const auto& events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.array.size(), 2u);
    const auto& first = events.array[0];
    EXPECT_EQ(first.at("name").string, "msglen_check");
    EXPECT_EQ(first.at("cat").string, "engine");
    EXPECT_EQ(first.at("ph").string, "X");
    EXPECT_EQ(first.at("pid").number, 1.0);
    EXPECT_TRUE(first.has("ts"));
    EXPECT_TRUE(first.has("dur"));
    EXPECT_EQ(first.at("args").at("visits").string, "42");
    // Quote in the span name survives escaping.
    EXPECT_EQ(events.array[1].at("name").string, "protocol:\"sci\"");
}

TEST(TraceRecorder, EmptyRecorderWritesValidJson)
{
    TraceRecorder rec;
    std::ostringstream os;
    rec.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_TRUE(root.at("traceEvents").isArray());
    EXPECT_EQ(root.at("traceEvents").array.size(), 0u);
}

TEST(TraceRecorder, ClearDropsEvents)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan span(&rec, "run", "engine");
    }
    rec.clear();
    EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, ConcurrentSpansAllArriveWithDistinctTids)
{
    // Worker threads of the parallel engine record into per-thread
    // buffers; events() merges them. Every event must survive the merge,
    // carrying the recording thread's stable tid.
    TraceRecorder rec;
    rec.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kEvents = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&rec, t] {
            for (int i = 0; i < kEvents; ++i) {
                TraceSpan span(&rec, "unit." + std::to_string(t), "test");
                span.arg("i", std::to_string(i));
            }
        });
    for (std::thread& t : threads)
        t.join();

    std::vector<TraceEvent> events = rec.events();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kEvents);
    std::set<std::uint32_t> tids;
    std::map<std::string, int> per_name;
    for (const TraceEvent& e : events) {
        tids.insert(e.tid);
        ++per_name[e.name];
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(per_name["unit." + std::to_string(t)], kEvents);
    // The merged view is sorted by timestamp (tid breaks ties).
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);

    // Chrome-trace JSON of the merged buffers still parses.
    std::ostringstream os;
    rec.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_EQ(root.at("traceEvents").array.size(), events.size());
}

TEST(TraceRecorder, TwoRecordersOnOneThreadKeepSeparateBuffers)
{
    // The thread-local buffer cache is keyed by recorder identity; two
    // live recorders on the same thread must not share a buffer.
    TraceRecorder a;
    TraceRecorder b;
    a.setEnabled(true);
    b.setEnabled(true);
    {
        TraceSpan sa(&a, "for-a", "test");
    }
    {
        TraceSpan sb(&b, "for-b", "test");
    }
    std::vector<TraceEvent> ea = a.events();
    std::vector<TraceEvent> eb = b.events();
    ASSERT_EQ(ea.size(), 1u);
    ASSERT_EQ(eb.size(), 1u);
    EXPECT_EQ(ea[0].name, "for-a");
    EXPECT_EQ(eb[0].name, "for-b");
}

} // namespace
} // namespace mc::support
