#include "support/trace.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mc::support {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndSpanIsNoOp)
{
    TraceRecorder rec;
    EXPECT_FALSE(rec.enabled());
    {
        TraceSpan span(nullptr, "run", "engine");
        span.arg("k", "v");
    }
    EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, SpanRecordsCompleteEvent)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan span(&rec, "wait_for_db", "engine");
        span.arg("function", "PILocalGet");
    }
    ASSERT_EQ(rec.events().size(), 1u);
    const TraceEvent& e = rec.events()[0];
    EXPECT_EQ(e.name, "wait_for_db");
    EXPECT_EQ(e.category, "engine");
    ASSERT_EQ(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].first, "function");
    EXPECT_EQ(e.args[0].second, "PILocalGet");
}

TEST(TraceRecorder, FinishIsIdempotent)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    TraceSpan span(&rec, "run", "engine");
    span.finish();
    span.finish();
    EXPECT_EQ(rec.events().size(), 1u);
}

TEST(TraceRecorder, TimestampsAreMonotonic)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan a(&rec, "first", "engine");
    }
    {
        TraceSpan b(&rec, "second", "engine");
    }
    ASSERT_EQ(rec.events().size(), 2u);
    EXPECT_LE(rec.events()[0].ts_us, rec.events()[1].ts_us);
}

TEST(TraceRecorder, JsonIsWellFormedChromeTraceFormat)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan span(&rec, "msglen_check", "engine");
        span.arg("function", "NILocalGet");
        span.arg("visits", "42");
    }
    {
        TraceSpan span(&rec, "protocol:\"sci\"", "driver");
    }

    std::ostringstream os;
    rec.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));

    const auto& events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.array.size(), 2u);
    const auto& first = events.array[0];
    EXPECT_EQ(first.at("name").string, "msglen_check");
    EXPECT_EQ(first.at("cat").string, "engine");
    EXPECT_EQ(first.at("ph").string, "X");
    EXPECT_EQ(first.at("pid").number, 1.0);
    EXPECT_TRUE(first.has("ts"));
    EXPECT_TRUE(first.has("dur"));
    EXPECT_EQ(first.at("args").at("visits").string, "42");
    // Quote in the span name survives escaping.
    EXPECT_EQ(events.array[1].at("name").string, "protocol:\"sci\"");
}

TEST(TraceRecorder, EmptyRecorderWritesValidJson)
{
    TraceRecorder rec;
    std::ostringstream os;
    rec.writeJson(os);
    testjson::Value root;
    ASSERT_NO_THROW(root = testjson::parse(os.str()));
    EXPECT_TRUE(root.at("traceEvents").isArray());
    EXPECT_EQ(root.at("traceEvents").array.size(), 0u);
}

TEST(TraceRecorder, ClearDropsEvents)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    {
        TraceSpan span(&rec, "run", "engine");
    }
    rec.clear();
    EXPECT_TRUE(rec.events().empty());
}

} // namespace
} // namespace mc::support
