/**
 * @file
 * Unit tests for the --ledger JSONL stream: event shapes, run_end
 * tallies, the thread-local per-unit visit accumulator, and the
 * disabled-by-default no-op path.
 */
#include "support/run_ledger.h"

#include "json_test_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mc::support {
namespace {

std::string
tempLedgerPath(const char* tag)
{
    return std::string(::testing::TempDir()) + "/mccheck_ledger_" + tag +
           ".jsonl";
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

TEST(RunLedger, DisabledLedgerEmitsNothing)
{
    // The global ledger starts closed; unit/runEnd must be no-ops.
    RunLedger& ledger = RunLedger::global();
    EXPECT_FALSE(ledger.enabled());
    LedgerUnitEvent event;
    event.function = "f";
    event.checker = "c";
    ledger.unit(event);     // must not crash
    ledger.runEnd(0, 0, 0); // must not crash
}

TEST(RunLedger, EmitsValidJsonlWithRunEndTallies)
{
    const std::string path = tempLedgerPath("roundtrip");
    std::remove(path.c_str());
    {
        RunLedger ledger;
        ASSERT_TRUE(ledger.open(path));
        ledger.runStart({"--protocol", "sci", "--witness"}, true, 16, 4);

        LedgerUnitEvent hit;
        hit.function = "PILocalGet";
        hit.checker = "wait_for_db";
        hit.wall_ms = 1.25;
        hit.visits = 0;
        hit.cache = "hit";
        ledger.unit(hit);

        LedgerUnitEvent miss;
        miss.function = "NILocalPut";
        miss.checker = "wait_for_db";
        miss.wall_ms = 3.5;
        miss.visits = 42;
        miss.cache = "miss";
        miss.budget_stop = "steps";
        miss.truncated = true;
        miss.degraded_parse = true;
        ledger.unit(miss);

        LedgerUnitEvent failed;
        failed.function = "weird \"name\"";
        failed.checker = "lanes";
        failed.failed = true;
        ledger.unit(failed);

        ledger.runEnd(2, 1, 3);
    }

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 5u);

    std::vector<testjson::Value> events;
    for (const std::string& line : lines) {
        testjson::Value v;
        ASSERT_NO_THROW(v = testjson::parse(line)) << line;
        events.push_back(std::move(v));
    }

    EXPECT_EQ(events[0].at("event").string, "run_start");
    EXPECT_TRUE(events[0].at("witness").boolean);
    EXPECT_EQ(events[0].at("witness_limit").number, 16.0);
    EXPECT_EQ(events[0].at("jobs").number, 4.0);
    ASSERT_EQ(events[0].at("args").array.size(), 3u);
    EXPECT_EQ(events[0].at("args").array[2].string, "--witness");

    EXPECT_EQ(events[1].at("event").string, "unit");
    EXPECT_EQ(events[1].at("cache").string, "hit");
    EXPECT_EQ(events[2].at("visits").number, 42.0);
    EXPECT_EQ(events[2].at("budget_stop").string, "steps");
    EXPECT_TRUE(events[2].at("truncated").boolean);
    EXPECT_TRUE(events[2].at("degraded_parse").boolean);
    EXPECT_EQ(events[3].at("function").string, "weird \"name\"");
    EXPECT_TRUE(events[3].at("failed").boolean);

    const testjson::Value& end = events[4];
    EXPECT_EQ(end.at("event").string, "run_end");
    EXPECT_EQ(end.at("exit_code").number, 2.0);
    EXPECT_EQ(end.at("errors").number, 1.0);
    EXPECT_EQ(end.at("warnings").number, 3.0);
    EXPECT_EQ(end.at("units").number, 3.0);
    EXPECT_EQ(end.at("unit_failures").number, 1.0);
    EXPECT_EQ(end.at("budget_truncations").number, 1.0);
    EXPECT_EQ(end.at("cache_hits").number, 1.0);
    EXPECT_EQ(end.at("cache_misses").number, 1.0);
    EXPECT_EQ(end.at("total_visits").number, 42.0);

    std::remove(path.c_str());
}

TEST(RunLedger, AppendsAcrossOpens)
{
    const std::string path = tempLedgerPath("append");
    std::remove(path.c_str());
    {
        RunLedger ledger;
        ASSERT_TRUE(ledger.open(path));
        ledger.runEnd(0, 0, 0);
    }
    {
        RunLedger ledger;
        ASSERT_TRUE(ledger.open(path));
        ledger.runEnd(1, 2, 0);
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0], lines[1]);
    std::remove(path.c_str());
}

TEST(RunLedger, RunEndClosesTheStream)
{
    const std::string path = tempLedgerPath("closed");
    std::remove(path.c_str());
    RunLedger ledger;
    ASSERT_TRUE(ledger.open(path));
    ledger.runEnd(0, 0, 0);
    EXPECT_FALSE(ledger.enabled());
    LedgerUnitEvent event;
    ledger.unit(event); // after runEnd: dropped, not appended
    EXPECT_EQ(readLines(path).size(), 1u);
    std::remove(path.c_str());
}

TEST(LedgerUnitStats, ScopeInstallsAndRestoresThreadLocal)
{
    EXPECT_EQ(LedgerUnitStats::current(), nullptr);
    LedgerUnitStats outer;
    {
        LedgerUnitScope outer_scope(&outer);
        EXPECT_EQ(LedgerUnitStats::current(), &outer);
        LedgerUnitStats inner;
        {
            LedgerUnitScope inner_scope(&inner);
            EXPECT_EQ(LedgerUnitStats::current(), &inner);
            LedgerUnitStats::current()->visits += 7;
        }
        EXPECT_EQ(LedgerUnitStats::current(), &outer);
        LedgerUnitStats::current()->visits += 1;
        EXPECT_EQ(inner.visits, 7u);
    }
    EXPECT_EQ(LedgerUnitStats::current(), nullptr);
    EXPECT_EQ(outer.visits, 1u);
}

} // namespace
} // namespace mc::support
