#include "support/metrics.h"
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mc::support {
namespace {

TEST(ThreadPool, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    ThreadPool pool; // jobs == 0 resolves to defaultJobs()
    EXPECT_EQ(pool.jobs(), ThreadPool::defaultJobs());
}

TEST(ThreadPool, SingleLaneRunsInlineWithNoThreads)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(jobs);
        constexpr std::size_t kN = 1000;
        std::vector<std::atomic<int>> hits(kN);
        pool.parallelFor(kN, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ThreadPool, ParallelForZeroAndOneIndex)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForUsesMultipleThreadsWhenAvailable)
{
    // With 4 lanes and bodies that block until at least two lanes are
    // inside, the pool must genuinely run bodies concurrently. (Trivially
    // true on 1 hardware core too: the workers exist regardless.)
    ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> ids;
    std::atomic<int> inside{0};
    pool.parallelFor(8, [&](std::size_t) {
        inside.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        }
        // Give other lanes a chance to overlap; no correctness impact.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    EXPECT_EQ(inside.load(), 8);
    EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPool, ParallelForRethrowsFirstBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](std::size_t i) {
                             if (i == 7)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must still be usable after a failed loop.
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SubmittedTasksAllRunBeforeDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    } // dtor drains the queues
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SuppressedExceptionsAreCountedNotLost)
{
    // Only the first body exception rethrows; the rest used to vanish
    // silently. They must now tally into pool.suppressed_exceptions
    // (and a stderr note) so a multi-unit crash is visible as such.
    MetricsRegistry& metrics = MetricsRegistry::global();
    const bool was_enabled = metrics.enabled();
    metrics.setEnabled(true);
    metrics.counter("pool.suppressed_exceptions").reset();
    ThreadPool pool(4);
    // Four lanes, four indices: the barrier holds every body until all
    // four have claimed an index, then all four throw — one rethrows,
    // exactly three must be counted as suppressed. (Without the
    // rendezvous the count would race with the early-drain of remaining
    // indices.)
    std::barrier<> rendezvous(4);
    EXPECT_THROW(pool.parallelFor(4,
                                  [&](std::size_t i) {
                                      rendezvous.arrive_and_wait();
                                      throw std::runtime_error(
                                          "boom " + std::to_string(i));
                                  }),
                 std::runtime_error);
    EXPECT_EQ(metrics.counter("pool.suppressed_exceptions").value(), 3u);
    metrics.counter("pool.suppressed_exceptions").reset();
    metrics.setEnabled(was_enabled);
}

TEST(ThreadPool, SingleLaneSuppressesNothing)
{
    MetricsRegistry& metrics = MetricsRegistry::global();
    const bool was_enabled = metrics.enabled();
    metrics.setEnabled(true);
    metrics.counter("pool.suppressed_exceptions").reset();
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     4,
                     [&](std::size_t) {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The sequential lane stops at the first throw: nothing to suppress.
    EXPECT_EQ(metrics.counter("pool.suppressed_exceptions").value(), 0u);
    metrics.setEnabled(was_enabled);
}

TEST(ThreadPool, UnevenWorkSelfBalances)
{
    // One giant index next to many tiny ones: the atomic-counter loop
    // hands indices out dynamically, so the total still sums correctly
    // and nothing deadlocks regardless of which lane draws the big one.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> total{0};
    pool.parallelFor(50, [&](std::size_t i) {
        std::uint64_t n = i == 0 ? 200000 : 100;
        std::uint64_t acc = 0;
        for (std::uint64_t k = 0; k < n; ++k)
            acc += k;
        total.fetch_add(acc, std::memory_order_relaxed);
    });
    EXPECT_GT(total.load(), 0u);
}

} // namespace
} // namespace mc::support
