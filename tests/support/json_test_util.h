#ifndef MCHECK_TESTS_SUPPORT_JSON_TEST_UTIL_H
#define MCHECK_TESTS_SUPPORT_JSON_TEST_UTIL_H

/**
 * @file
 * A deliberately small recursive-descent JSON reader for tests: enough to
 * assert that the metrics / trace / diagnostic emitters produce
 * well-formed JSON and to navigate into the result. Throws
 * std::runtime_error on malformed input — tests wrap parses in
 * ASSERT_NO_THROW.
 */

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mc::testjson {

struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    bool has(const std::string& key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }

    const Value&
    at(const std::string& key) const
    {
        if (!has(key))
            throw std::runtime_error("missing key: " + key);
        return object.at(key);
    }
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage after JSON value");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c + "'");
        ++pos_;
    }

    Value
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            Value v;
            v.kind = Value::Kind::String;
            v.string = parseString();
            return v;
          }
          case 't':
          case 'f': return parseLiteralBool();
          case 'n': {
            parseLiteral("null");
            return Value{};
          }
          default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            v.object.emplace(std::move(key), parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                throw std::runtime_error("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                throw std::runtime_error("raw control char in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                throw std::runtime_error("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    throw std::runtime_error("bad \\u escape");
                int code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += h - 'A' + 10;
                    else
                        throw std::runtime_error("bad \\u escape");
                }
                // Tests only emit ASCII escapes; keep it simple.
                out += static_cast<char>(code);
                break;
              }
              default: throw std::runtime_error("unknown escape");
            }
        }
    }

    Value
    parseLiteralBool()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    void
    parseLiteral(std::string_view lit)
    {
        if (text_.compare(pos_, lit.size(), lit) != 0)
            throw std::runtime_error("bad literal");
        pos_ += lit.size();
    }

    Value
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            throw std::runtime_error("expected a value");
        Value v;
        v.kind = Value::Kind::Number;
        v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

inline Value
parse(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace mc::testjson

#endif // MCHECK_TESTS_SUPPORT_JSON_TEST_UTIL_H
