/**
 * @file
 * Fault-injection probes: arming specs, keyed scheduling-independence,
 * counted Nth-call firing, and env-var arming.
 */
#include "support/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

namespace mc::support {
namespace {

#if defined(MCHECK_FAULT_INJECTION)

struct DisarmedFixture : ::testing::Test
{
    void SetUp() override { fault::disarm(); }
    void TearDown() override { fault::disarm(); }
};

using FaultArm = DisarmedFixture;
using FaultProbe = DisarmedFixture;

TEST_F(FaultArm, AcceptsSiteColonN)
{
    EXPECT_TRUE(fault::arm("checker.unit:3"));
    EXPECT_TRUE(fault::armed());
    fault::disarm();
    EXPECT_FALSE(fault::armed());
}

TEST_F(FaultArm, RejectsMalformedSpecs)
{
    EXPECT_FALSE(fault::arm(""));
    EXPECT_FALSE(fault::arm("nosite"));
    EXPECT_FALSE(fault::arm("site:"));
    EXPECT_FALSE(fault::arm(":3"));
    EXPECT_FALSE(fault::arm("site:0"));
    EXPECT_FALSE(fault::arm("site:abc"));
    EXPECT_FALSE(fault::arm("site:12x"));
    EXPECT_FALSE(fault::armed());
}

TEST_F(FaultProbe, UnarmedProbesAreInert)
{
    EXPECT_NO_THROW(fault::probe("checker.unit", "any/key"));
    EXPECT_NO_THROW(fault::probe("parser.top_level"));
}

TEST_F(FaultProbe, OnlyTheArmedSiteFires)
{
    ASSERT_TRUE(fault::arm("checker.unit:1"));
    EXPECT_NO_THROW(fault::probe("walker.walk", "sm/fn"));
    EXPECT_THROW(fault::probe("checker.unit", "fn/chk"), InjectedFault);
}

TEST_F(FaultProbe, KeyedFiringIsAPureFunctionOfTheKey)
{
    ASSERT_TRUE(fault::arm("checker.unit:3"));
    const std::vector<std::string> keys = {
        "a/chk", "b/chk", "c/chk", "d/chk", "e/chk", "f/chk",
        "g/chk", "h/chk", "i/chk", "j/chk", "k/chk", "l/chk"};
    auto firingSet = [&](bool reversed) {
        std::set<std::string> fired;
        auto order = keys;
        if (reversed)
            std::reverse(order.begin(), order.end());
        for (const std::string& key : order) {
            try {
                fault::probe("checker.unit", key);
            } catch (const InjectedFault& f) {
                fired.insert(f.key());
            }
        }
        return fired;
    };
    const auto forward = firingSet(false);
    const auto backward = firingSet(true);
    EXPECT_EQ(forward, backward)
        << "keyed probes must not depend on call order";
    EXPECT_FALSE(forward.empty()) << "n=3 over 12 keys hit nothing";
    EXPECT_LT(forward.size(), keys.size());
}

TEST_F(FaultProbe, CountedProbeFiresEveryNth)
{
    ASSERT_TRUE(fault::arm("parser.top_level:3"));
    int fired = 0;
    for (int i = 0; i < 9; ++i) {
        try {
            fault::probe("parser.top_level");
        } catch (const InjectedFault&) {
            ++fired;
        }
    }
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(fault::triggered(), 3u);
}

TEST_F(FaultProbe, ExceptionCarriesSiteAndKey)
{
    ASSERT_TRUE(fault::arm("cache.lookup:1"));
    try {
        fault::probe("cache.lookup", "deadbeefdeadbeef");
        FAIL() << "probe did not fire";
    } catch (const InjectedFault& f) {
        EXPECT_EQ(f.site(), "cache.lookup");
        EXPECT_EQ(f.key(), "deadbeefdeadbeef");
        EXPECT_NE(std::string(f.what()).find("cache.lookup"),
                  std::string::npos);
    }
}

TEST_F(FaultArm, ArmsFromEnvironment)
{
    ASSERT_EQ(setenv("MCCHECK_FAULT_INJECT", "pool.task:2", 1), 0);
    EXPECT_TRUE(fault::armFromEnv());
    EXPECT_TRUE(fault::armed());
    unsetenv("MCCHECK_FAULT_INJECT");
    fault::disarm();
    EXPECT_FALSE(fault::armFromEnv());
}

#else

TEST(FaultInjection, CompiledOutProbesAreFree)
{
    EXPECT_FALSE(fault::arm("checker.unit:1"));
    EXPECT_FALSE(fault::armed());
    EXPECT_NO_THROW(fault::probe("checker.unit", "fn/chk"));
}

#endif

} // namespace
} // namespace mc::support
