/**
 * @file
 * SymbolInterner unit and property tests: ids are dense, round-trip
 * through name(), and are stable under concurrent interning.
 */
#include "support/interner.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mc::support {
namespace {

TEST(Interner, IdsAreDenseInFirstInternOrder)
{
    SymbolInterner interner;
    EXPECT_EQ(interner.intern("alpha"), 0u);
    EXPECT_EQ(interner.intern("beta"), 1u);
    EXPECT_EQ(interner.intern("gamma"), 2u);
    EXPECT_EQ(interner.size(), 3u);
}

TEST(Interner, InternIsIdempotent)
{
    SymbolInterner interner;
    SymbolId a = interner.intern("WAIT_FOR_DB_FULL");
    EXPECT_EQ(interner.intern("WAIT_FOR_DB_FULL"), a);
    EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, NameRoundTrips)
{
    SymbolInterner interner;
    SymbolId a = interner.intern("MISCBUS_READ_DB");
    EXPECT_EQ(interner.name(a), "MISCBUS_READ_DB");
}

TEST(Interner, LookupDoesNotIntern)
{
    SymbolInterner interner;
    EXPECT_FALSE(interner.lookup("absent").has_value());
    EXPECT_EQ(interner.size(), 0u);
    SymbolId a = interner.intern("present");
    ASSERT_TRUE(interner.lookup("present").has_value());
    EXPECT_EQ(*interner.lookup("present"), a);
}

TEST(Interner, EmptyStringIsAValidSymbol)
{
    SymbolInterner interner;
    SymbolId empty = interner.intern("");
    EXPECT_NE(empty, kInvalidSymbol);
    EXPECT_EQ(interner.name(empty), "");
    EXPECT_EQ(interner.intern(""), empty);
}

/** Property: over many random strings, intern/name round-trips and
 *  equal strings always get equal ids (distinct strings distinct ids). */
TEST(Interner, PropertyRoundTripRandomStrings)
{
    SymbolInterner interner;
    std::mt19937 rng(20260806);
    std::uniform_int_distribution<int> len(0, 24);
    std::uniform_int_distribution<int> ch(0, 62);
    const char* alphabet =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    std::vector<std::string> strings;
    for (int i = 0; i < 500; ++i) {
        std::string s;
        int n = len(rng);
        for (int j = 0; j < n; ++j)
            s += alphabet[static_cast<std::size_t>(ch(rng)) % 63];
        strings.push_back(std::move(s));
    }
    std::vector<SymbolId> ids;
    for (const std::string& s : strings)
        ids.push_back(interner.intern(s));
    std::set<std::string> distinct(strings.begin(), strings.end());
    EXPECT_EQ(interner.size(), distinct.size());
    for (std::size_t i = 0; i < strings.size(); ++i) {
        EXPECT_EQ(interner.name(ids[i]), strings[i]);
        EXPECT_EQ(interner.intern(strings[i]), ids[i]);
        for (std::size_t j = 0; j < i; ++j)
            EXPECT_EQ(ids[i] == ids[j], strings[i] == strings[j]);
    }
}

/** Concurrent interns of an overlapping vocabulary agree on one id per
 *  string and the table ends exactly the union (exercised under TSan). */
TEST(Interner, ConcurrentInterningIsConsistent)
{
    SymbolInterner interner;
    constexpr int kThreads = 4;
    constexpr int kWords = 200;
    std::vector<std::vector<SymbolId>> seen(
        kThreads, std::vector<SymbolId>(kWords, kInvalidSymbol));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int w = 0; w < kWords; ++w) {
                // Every thread interns the same words, shifted so the
                // first-intern thread differs per word.
                int word = (w + t * 7) % kWords;
                seen[static_cast<std::size_t>(t)]
                    [static_cast<std::size_t>(word)] = interner.intern(
                        "word_" + std::to_string(word));
            }
        });
    for (std::thread& th : threads)
        th.join();
    EXPECT_EQ(interner.size(), static_cast<std::size_t>(kWords));
    for (int w = 0; w < kWords; ++w) {
        SymbolId id = seen[0][static_cast<std::size_t>(w)];
        EXPECT_EQ(interner.name(id), "word_" + std::to_string(w));
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(seen[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(w)],
                      id);
    }
}

} // namespace
} // namespace mc::support
