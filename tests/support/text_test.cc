#include "support/rng.h"
#include "support/text.h"

#include <gtest/gtest.h>

namespace mc::support {
namespace {

TEST(Text, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Text, SplitSingleField)
{
    auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(Text, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(Text, StartsWith)
{
    EXPECT_TRUE(startsWith("include \"x.h\"", "include"));
    EXPECT_FALSE(startsWith("inc", "include"));
}

TEST(Text, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Text, FormatTableAligns)
{
    std::string table = formatTable({"Protocol", "Errors"},
                                    {{"bitvector", "4"}, {"sci", "0"}});
    // Header, rule, two rows.
    auto lines = split(table, '\n');
    ASSERT_GE(lines.size(), 4u);
    EXPECT_NE(lines[0].find("Protocol"), std::string::npos);
    EXPECT_NE(lines[1].find("---"), std::string::npos);
    EXPECT_NE(lines[2].find("bitvector"), std::string::npos);
    // Columns aligned: "Errors" column starts at same offset in all rows.
    auto pos_header = lines[0].find("Errors");
    auto pos_row = lines[2].find("4");
    EXPECT_EQ(pos_header, pos_row);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.range(2, 4);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 4);
        saw_lo |= v == 2;
        saw_hi |= v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkDivergesFromParent)
{
    Rng parent(9);
    Rng child = parent.fork();
    // Streams should differ in the first few values.
    bool differs = false;
    for (int i = 0; i < 4; ++i)
        differs |= parent.next() != child.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(rng.chance(1, 1));
        EXPECT_FALSE(rng.chance(0, 10));
    }
}

} // namespace
} // namespace mc::support
