#include "flash/macros.h"
#include "flash/protocol_spec.h"

#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::flash {
namespace {

const lang::CallExpr*
parseCall(lang::Program& program, const std::string& call_text)
{
    static int n = 0;
    program.addSource("m" + std::to_string(++n) + ".c",
                      "void f(void) { " + call_text + "; }");
    return lang::stmtAsCall(*program.functions().back()->body->stmts[0]);
}

TEST(Macros, Classification)
{
    EXPECT_EQ(classifyMacro("PI_SEND"), MacroKind::SendPi);
    EXPECT_EQ(classifyMacro("IO_SEND"), MacroKind::SendIo);
    EXPECT_EQ(classifyMacro("NI_SEND"), MacroKind::SendNi);
    EXPECT_EQ(classifyMacro("WAIT_FOR_DB_FULL"), MacroKind::WaitDbFull);
    EXPECT_EQ(classifyMacro("MISCBUS_READ_DB"), MacroKind::ReadDb);
    EXPECT_EQ(classifyMacro("MISCBUS_READ_DB_OLD"),
              MacroKind::ReadDbDeprecated);
    EXPECT_EQ(classifyMacro("ALLOCATE_DB"), MacroKind::AllocDb);
    EXPECT_EQ(classifyMacro("FREE_DB"), MacroKind::FreeDb);
    EXPECT_EQ(classifyMacro("MAYBE_FREE_DB_C"), MacroKind::MaybeFreeDb);
    EXPECT_EQ(classifyMacro("DIR_WRITEBACK"), MacroKind::DirWriteback);
    EXPECT_EQ(classifyMacro("has_buffer"), MacroKind::AnnotHasBuffer);
    EXPECT_EQ(classifyMacro("NOT_A_MACRO"), MacroKind::None);
    EXPECT_EQ(classifyMacro(""), MacroKind::None);
}

TEST(Macros, SendPredicates)
{
    EXPECT_TRUE(isSend(MacroKind::SendPi));
    EXPECT_TRUE(isSend(MacroKind::SendNi));
    EXPECT_FALSE(isSend(MacroKind::FreeDb));
    EXPECT_TRUE(isAnnotation(MacroKind::AnnotNoFreeNeeded));
    EXPECT_FALSE(isAnnotation(MacroKind::SendPi));
}

TEST(Macros, HasDataArgExtraction)
{
    lang::Program p;
    auto* pi = parseCall(p, "PI_SEND(F_DATA, k, s, w, d, n)");
    ASSERT_TRUE(sendHasDataArg(*pi).has_value());
    EXPECT_EQ(*sendHasDataArg(*pi), "F_DATA");

    auto* ni = parseCall(p, "NI_SEND(MSG_PUT, F_NODATA, k, w, d, n)");
    ASSERT_TRUE(sendHasDataArg(*ni).has_value());
    EXPECT_EQ(*sendHasDataArg(*ni), "F_NODATA");
}

TEST(Macros, RuntimeHasDataArgIsNullopt)
{
    lang::Program p;
    auto* call = parseCall(p, "PI_SEND(mode_flag, k, s, w, d, n)");
    EXPECT_FALSE(sendHasDataArg(*call).has_value());
}

TEST(Macros, WaitArgExtraction)
{
    lang::Program p;
    auto* call = parseCall(p, "IO_SEND(F_NODATA, k, s, F_WAIT, d, n)");
    ASSERT_TRUE(sendWaitArg(*call).has_value());
    EXPECT_EQ(*sendWaitArg(*call), "F_WAIT");
    auto* ni = parseCall(p, "NI_SEND(MSG_GET, F_DATA, k, F_NOWAIT, d, n)");
    EXPECT_EQ(*sendWaitArg(*ni), "F_NOWAIT");
}

TEST(Macros, OpcodeExtraction)
{
    lang::Program p;
    auto* ni = parseCall(p, "NI_SEND(MSG_INVAL, F_NODATA, k, w, d, n)");
    ASSERT_TRUE(niSendOpcode(*ni).has_value());
    EXPECT_EQ(*niSendOpcode(*ni), "MSG_INVAL");
    auto* wait = parseCall(p, "WAIT_FOR_SPACE(MSG_GET)");
    ASSERT_TRUE(waitForSpaceOpcode(*wait).has_value());
    EXPECT_EQ(*waitForSpaceOpcode(*wait), "MSG_GET");
    auto* pi = parseCall(p, "PI_SEND(F_DATA, k, s, w, d, n)");
    EXPECT_FALSE(niSendOpcode(*pi).has_value());
}

TEST(Macros, TooFewArgsIsSafe)
{
    lang::Program p;
    auto* call = parseCall(p, "NI_SEND()");
    EXPECT_FALSE(sendHasDataArg(*call).has_value());
    EXPECT_FALSE(sendWaitArg(*call).has_value());
    EXPECT_FALSE(niSendOpcode(*call).has_value());
}

TEST(Macros, InterfaceOf)
{
    EXPECT_EQ(interfaceOf(MacroKind::SendPi), Interface::Pi);
    EXPECT_EQ(interfaceOf(MacroKind::WaitIoReply), Interface::Io);
    EXPECT_EQ(interfaceOf(MacroKind::SendNi), Interface::Ni);
    EXPECT_EQ(interfaceOf(MacroKind::FreeDb), Interface::None);
}

TEST(ProtocolSpec, HandlerRegistrationAndKinds)
{
    ProtocolSpec spec;
    HandlerSpec h;
    h.name = "H";
    h.kind = HandlerKind::Hardware;
    spec.addHandler(h);
    HandlerSpec s;
    s.name = "S";
    s.kind = HandlerKind::Software;
    spec.addHandler(s);

    EXPECT_EQ(spec.kindOf("H"), HandlerKind::Hardware);
    EXPECT_EQ(spec.kindOf("S"), HandlerKind::Software);
    EXPECT_EQ(spec.kindOf("unknown"), HandlerKind::Normal);
    EXPECT_TRUE(spec.isHandler("H"));
    EXPECT_TRUE(spec.isHandler("S"));
    EXPECT_FALSE(spec.isHandler("unknown"));
    EXPECT_NE(spec.handler("H"), nullptr);
    EXPECT_EQ(spec.handler("nope"), nullptr);
}

TEST(ProtocolSpec, LaneMapping)
{
    ProtocolSpec spec;
    spec.setLane("MSG_GET", 0);
    spec.setLane("MSG_PUT", 3);
    EXPECT_EQ(spec.laneOf("MSG_GET"), 0);
    EXPECT_EQ(spec.laneOf("MSG_PUT"), 3);
    EXPECT_EQ(spec.laneOf("MSG_UNKNOWN"), -1);
    spec.setLane("MSG_GET", 2); // reassignment wins
    EXPECT_EQ(spec.laneOf("MSG_GET"), 2);
}

TEST(ProtocolSpec, DefaultAllowanceIsOnePerLane)
{
    HandlerSpec h;
    for (int lane = 0; lane < kLaneCount; ++lane)
        EXPECT_EQ(h.lane_allowance[static_cast<std::size_t>(lane)], 1);
}

TEST(ProtocolSpec, HandlerKindNames)
{
    EXPECT_STREQ(handlerKindName(HandlerKind::Hardware), "hardware");
    EXPECT_STREQ(handlerKindName(HandlerKind::Software), "software");
    EXPECT_STREQ(handlerKindName(HandlerKind::Normal), "normal");
}

} // namespace
} // namespace mc::flash
