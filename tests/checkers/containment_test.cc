/**
 * @file
 * Per-unit fault containment: injected faults stay inside their
 * (function, checker) unit, degraded output is deterministic across job
 * counts, --fail-fast escalates, and resource budgets truncate
 * gracefully.
 */
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "checkers/unit_guard.h"
#include "support/fault_injection.h"
#include "support/text.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mc::checkers {
namespace {

#if defined(MCHECK_FAULT_INJECTION)
constexpr bool kFaultsCompiledIn = true;
#else
constexpr bool kFaultsCompiledIn = false;
#endif

/** Disarm on scope exit so one test's arming cannot leak into another. */
struct ArmedScope
{
    explicit ArmedScope(const std::string& spec)
    {
        EXPECT_TRUE(support::fault::arm(spec));
    }
    ~ArmedScope() { support::fault::disarm(); }
};

/** Three clean-ish handlers so multiple units exist per checker. */
struct Fixture
{
    lang::Program program;
    flash::ProtocolSpec spec;

    Fixture()
    {
        addHandler("PILocalGet",
                   "MSG_T* m = MISCBUS_GET_MSG();\nSEND(m);\n");
        addHandler("PIRemoteGet", "int x = 1;\n");
        addHandler("SwPut", "int y = 2;\n");
    }

    void
    addHandler(const std::string& name, const std::string& body)
    {
        flash::HandlerSpec hs;
        hs.name = name;
        hs.kind = support::startsWith(name, "Sw")
                      ? flash::HandlerKind::Software
                      : flash::HandlerKind::Hardware;
        spec.addHandler(hs);
        program.addSource(name + ".c",
                          "void " + name + "(void) {\n" + body + "}\n");
    }

    /** One full parallel run; returns the rendered diagnostics. */
    std::string
    run(unsigned jobs, RunHealth& health, bool fail_fast = false,
        support::BudgetLimits budget = {})
    {
        auto set = makeAllCheckers();
        support::DiagnosticSink sink;
        ParallelRunOptions options;
        options.jobs = jobs;
        options.fail_fast = fail_fast;
        options.unit_budget = budget;
        options.health = &health;
        runCheckersParallel(program, spec, set.pointers(), sink,
                            options);
        std::ostringstream os;
        sink.print(os, &program.sourceManager());
        return os.str();
    }
};

TEST(UnitGuard, ContainsExceptions)
{
    UnitGuard guard("fn/checker");
    UnitOutcome outcome = guard.run(
        [] { throw std::runtime_error("checker bug"); });
    EXPECT_TRUE(outcome.failed);
    EXPECT_EQ(outcome.error, "checker bug");
}

TEST(UnitGuard, ContainsNonStandardExceptions)
{
    UnitGuard guard("fn/checker");
    UnitOutcome outcome = guard.run([] { throw 42; });
    EXPECT_TRUE(outcome.failed);
    EXPECT_NE(outcome.error.find("fn/checker"), std::string::npos);
}

TEST(UnitGuard, RethrowModePropagates)
{
    UnitGuard guard("fn/checker", support::BudgetLimits{},
                    /*rethrow=*/true);
    EXPECT_THROW(
        guard.run([] { throw std::runtime_error("boom"); }),
        std::runtime_error);
}

TEST(UnitGuard, CleanBodyReportsBudgetUsage)
{
    support::BudgetLimits limits;
    limits.max_steps = 4;
    UnitGuard guard("fn/checker", limits);
    UnitOutcome outcome = guard.run([] {
        support::Budget* budget = support::Budget::current();
        ASSERT_NE(budget, nullptr);
        budget->chargeStep(10);
    });
    EXPECT_FALSE(outcome.failed);
    EXPECT_EQ(outcome.budget_stop, support::BudgetStop::Steps);
    EXPECT_EQ(outcome.steps, 10u);
}

TEST(Containment, InjectedFaultDegradesButCompletes)
{
    if (!kFaultsCompiledIn)
        GTEST_SKIP() << "fault injection compiled out";
    ArmedScope armed("checker.unit:1");
    Fixture fx;
    RunHealth health;
    const std::string out = fx.run(2, health);
    EXPECT_GT(health.unit_failures, 0u);
    EXPECT_TRUE(health.degraded());
    EXPECT_NE(out.find("analysis incomplete"), std::string::npos);
    EXPECT_NE(out.find("unit-failure"), std::string::npos);
}

TEST(Containment, DegradedOutputIdenticalAcrossJobCounts)
{
    if (!kFaultsCompiledIn)
        GTEST_SKIP() << "fault injection compiled out";
    // n=3: a keyed subset of units faults; the subset depends only on
    // unit identity, so every job count must degrade identically.
    std::string first;
    std::uint64_t first_failures = 0;
    for (unsigned jobs : {1u, 2u, 4u}) {
        ArmedScope armed("checker.unit:3");
        Fixture fx;
        RunHealth health;
        const std::string out = fx.run(jobs, health);
        if (first.empty()) {
            first = out;
            first_failures = health.unit_failures;
            EXPECT_GT(first_failures, 0u)
                << "n=3 hit no unit; pick a different modulus";
        } else {
            EXPECT_EQ(out, first) << "degraded output depends on --jobs";
            EXPECT_EQ(health.unit_failures, first_failures);
        }
    }
}

TEST(Containment, HealthyUnitsUnaffectedByFaultyOnes)
{
    if (!kFaultsCompiledIn)
        GTEST_SKIP() << "fault injection compiled out";
    // Baseline without faults.
    std::string baseline;
    {
        Fixture fx;
        RunHealth health;
        baseline = fx.run(2, health);
        EXPECT_EQ(health.unit_failures, 0u);
    }
    // Every diagnostic in the degraded run that is not an engine marker
    // must also exist in the baseline: containment adds markers, it
    // never invents or corrupts findings.
    ArmedScope armed("checker.unit:3");
    Fixture fx;
    RunHealth health;
    auto set = makeAllCheckers();
    support::DiagnosticSink sink;
    ParallelRunOptions options;
    options.jobs = 2;
    options.health = &health;
    runCheckersParallel(fx.program, fx.spec, set.pointers(), sink,
                        options);
    for (const support::Diagnostic& d : sink.diagnostics()) {
        if (d.checker == "engine")
            continue;
        EXPECT_NE(baseline.find(d.message), std::string::npos)
            << "degraded run invented finding: " << d.message;
    }
}

TEST(Containment, FailFastEscalates)
{
    if (!kFaultsCompiledIn)
        GTEST_SKIP() << "fault injection compiled out";
    ArmedScope armed("checker.unit:1");
    Fixture fx;
    RunHealth health;
    EXPECT_THROW(fx.run(1, health, /*fail_fast=*/true),
                 support::InjectedFault);
}

TEST(Containment, StepBudgetTruncatesGracefully)
{
    Fixture fx;
    RunHealth health;
    support::BudgetLimits budget;
    budget.max_steps = 1;
    const std::string out = fx.run(2, health, false, budget);
    EXPECT_GT(health.budget_truncations, 0u);
    EXPECT_EQ(health.unit_failures, 0u);
    EXPECT_NE(out.find("budget-exhausted"), std::string::npos);
}

TEST(Containment, BudgetTruncationDeterministicAcrossJobs)
{
    support::BudgetLimits budget;
    budget.max_steps = 1;
    std::string first;
    for (unsigned jobs : {1u, 4u}) {
        Fixture fx;
        RunHealth health;
        const std::string out = fx.run(jobs, health, false, budget);
        if (first.empty())
            first = out;
        else
            EXPECT_EQ(out, first)
                << "budget truncation depends on --jobs";
    }
}

TEST(Containment, WalkerFaultContainedToo)
{
    if (!kFaultsCompiledIn)
        GTEST_SKIP() << "fault injection compiled out";
    ArmedScope armed("walker.walk:1");
    Fixture fx;
    RunHealth health;
    const std::string out = fx.run(2, health);
    EXPECT_GT(health.unit_failures, 0u);
    EXPECT_NE(out.find("analysis incomplete"), std::string::npos);
}

} // namespace
} // namespace mc::checkers
