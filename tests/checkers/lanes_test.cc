#include "checkers/lanes.h"
#include "tests/checkers/harness.h"

#include <gtest/gtest.h>

namespace mc::checkers {
namespace {

using flash::HandlerKind;
using testing::Harness;

/** Register opcodes on lanes 0..3. */
void
setupLanes(Harness& h)
{
    h.spec.setLane("MSG_GET", 0);
    h.spec.setLane("MSG_PUT", 1);
    h.spec.setLane("MSG_ACK", 2);
    h.spec.setLane("MSG_INVAL", 3);
}

void
addLaneHandler(Harness& h, const std::string& name,
               const std::string& body, std::array<int, 4> allowance)
{
    flash::HandlerSpec hs;
    hs.name = name;
    hs.kind = HandlerKind::Hardware;
    hs.lane_allowance = allowance;
    h.spec.addHandler(hs);
    h.addSource(name + ".c", "void " + name + "(void) {" + body + "}");
}

TEST(Lanes, WithinAllowanceClean)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "NI_SEND(MSG_PUT, F_DATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Lanes, ExceedingAllowanceFlagged)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
    EXPECT_TRUE(h.hasErrorRule("quota-exceeded"));
}

TEST(Lanes, WaitForSpaceResetsBudget)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "WAIT_FOR_SPACE(MSG_GET);"
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Lanes, InterproceduralSendCounted)
{
    // The paper's first lanes bug: a workaround inserted by a
    // non-author added a send inside a helper, blowing the quota.
    Harness h;
    setupLanes(h);
    h.addSource("helper.c",
                "void hw_workaround(void) {"
                "  NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                "}");
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "hw_workaround();",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    ASSERT_EQ(h.errors(), 1);
    // The back-trace names the call chain.
    const auto& diag = h.sink.diagnostics()[0];
    ASSERT_GE(diag.trace.size(), 2u);
    EXPECT_NE(diag.trace[0].find("handler H"), std::string::npos);
    bool mentions_helper = false;
    for (const auto& frame : diag.trace)
        mentions_helper |= frame.find("hw_workaround") != std::string::npos;
    EXPECT_TRUE(mentions_helper);
}

TEST(Lanes, BranchesTakeMaximum)
{
    // Max over paths matters: one branch is fine, the other overflows.
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "if (c) {"
                   "  NI_SEND(MSG_ACK, F_NODATA, k, w, d, n);"
                   "} else {"
                   "  NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "  NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "}",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(Lanes, NonSendingCycleIsFixedPoint)
{
    // "cycles that do not send ... the extension can safely ignore them."
    Harness h;
    setupLanes(h);
    h.addSource("helper.c",
                "void spin(void) { if (busy) { spin(); } }");
    addLaneHandler(h, "H",
                   "spin();"
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
    EXPECT_EQ(h.warnings(), 0);
}

TEST(Lanes, SendingCycleWarned)
{
    Harness h;
    setupLanes(h);
    h.addSource("helper.c",
                "void pump(void) {"
                "  NI_SEND(MSG_PUT, F_DATA, k, w, d, n);"
                "  if (more) { pump(); }"
                "}");
    addLaneHandler(h, "H", "pump();", {4, 4, 4, 4});
    LanesChecker checker;
    h.run(checker);
    EXPECT_GE(h.warnings(), 1);
    bool has_cycle_warning = false;
    for (const auto& d : h.sink.diagnostics())
        has_cycle_warning |= d.rule == "sending-cycle";
    EXPECT_TRUE(has_cycle_warning);
}

TEST(Lanes, LoopWithoutSendsInsideHandlerIgnored)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "while (pending) { step(); }"
                   "NI_SEND(MSG_INVAL, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Lanes, PerLaneBudgetsIndependent)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "NI_SEND(MSG_PUT, F_DATA, k, w, d, n);"
                   "NI_SEND(MSG_ACK, F_NODATA, k, w, d, n);"
                   "NI_SEND(MSG_INVAL, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Lanes, AllowanceOfTwoPermitsTwoSends)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);",
                   {2, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Lanes, WaitForSpaceInsideCalleeResetsCallerBudget)
{
    // The space check may live in a helper; the traversal must apply it
    // to the inter-procedural path.
    Harness h;
    setupLanes(h);
    h.addSource("helper.c", "void drain_get_lane(void) {"
                            "  WAIT_FOR_SPACE(MSG_GET);"
                            "}");
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "drain_get_lane();"
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Lanes, DeepCallChainTraversed)
{
    Harness h;
    setupLanes(h);
    h.addSource("c1.c", "void level1(void) { level2(); }");
    h.addSource("c2.c", "void level2(void) { level3(); }");
    h.addSource("c3.c", "void level3(void) {"
                        "  NI_SEND(MSG_PUT, F_DATA, k, w, d, n);"
                        "}");
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_PUT, F_DATA, k, w, d, n);"
                   "level1();",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    ASSERT_EQ(h.errors(), 1);
    // The back-trace walks all three frames.
    const auto& trace = h.sink.diagnostics()[0].trace;
    EXPECT_GE(trace.size(), 4u);
}

TEST(Lanes, UnknownOpcodeSendIgnored)
{
    Harness h;
    setupLanes(h);
    addLaneHandler(h, "H",
                   "NI_SEND(MSG_UNMAPPED, F_NODATA, k, w, d, n);"
                   "NI_SEND(MSG_UNMAPPED, F_NODATA, k, w, d, n);",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0); // no lane assignment -> not counted
}

TEST(Lanes, TextRoundtripGivesIdenticalResults)
{
    // The paper's pipeline writes flow graphs to files and reads them
    // back; the checker's roundtrip mode must change nothing.
    auto run = [](bool roundtrip) {
        Harness h;
        setupLanes(h);
        h.addSource("helper.c",
                    "void send_one(void) {"
                    "  NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                    "}");
        addLaneHandler(h, "B",
                       "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                       "send_one();",
                       {1, 1, 1, 1});
        LanesChecker::Options options;
        options.roundtrip_through_text = roundtrip;
        LanesChecker checker(options);
        h.run(checker);
        std::vector<std::string> out;
        for (const auto& d : h.sink.diagnostics())
            out.push_back(d.rule + "@" + std::to_string(d.loc.line));
        return out;
    };
    EXPECT_EQ(run(false), run(true));
    EXPECT_FALSE(run(true).empty());
}

TEST(Lanes, SharedHelperAnalyzedPerCallingContext)
{
    // The helper is fine from A (fresh budget) but overflows from B
    // (budget already spent).
    Harness h;
    setupLanes(h);
    h.addSource("helper.c",
                "void send_one(void) {"
                "  NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                "}");
    addLaneHandler(h, "A", "send_one();", {1, 1, 1, 1});
    addLaneHandler(h, "B",
                   "NI_SEND(MSG_GET, F_NODATA, k, w, d, n);"
                   "send_one();",
                   {1, 1, 1, 1});
    LanesChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

} // namespace
} // namespace mc::checkers
