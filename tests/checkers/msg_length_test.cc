#include "checkers/msg_length.h"
#include "tests/checkers/harness.h"

#include <gtest/gtest.h>

namespace mc::checkers {
namespace {

using flash::HandlerKind;
using testing::Harness;

TEST(MsgLength, ConsistentDataSendClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;"
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(MsgLength, DataSendWithZeroLenFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"
                 "PI_SEND(F_DATA, keep, swap, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    ASSERT_EQ(h.errors(), 1);
    EXPECT_EQ(h.sink.diagnostics()[0].message, "data send, zero len");
}

TEST(MsgLength, NodataSendWithNonzeroLenFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_WORD;"
                 "IO_SEND(F_NODATA, keep, swap, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    ASSERT_EQ(h.errors(), 1);
    EXPECT_EQ(h.sink.diagnostics()[0].message, "nodata send, nonzero len");
}

TEST(MsgLength, SendBeforeAnyAssignmentIgnored)
{
    // Handlers often inherit the incoming message's length; the checker
    // deliberately does not warn when the initial value is unknown.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "NI_SEND(MSG_ACK, F_NODATA, keep, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(MsgLength, AssignmentHundredsOfLinesBeforeSend)
{
    // "It is not unusual for a length assignment to be hundreds of lines
    // away from the message send that uses it."
    std::string filler;
    for (int i = 0; i < 120; ++i)
        filler += "pad" + std::to_string(i) + " = " + std::to_string(i) +
                  ";\n";
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n" + filler +
                     "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(MsgLength, ReassignmentChangesState)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"
                 "NI_SEND(MSG_ACK, F_NODATA, keep, wait, dec, null);"
                 "HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;"
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(MsgLength, BadPathThroughBranchFlagged)
{
    // Error only on the else path; path-sensitivity required.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (have_data) {"
                 "  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;"
                 "} else {"
                 "  HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"
                 "}"
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(MsgLength, RuntimeParameterNotMatched)
{
    // The coma false-positive shape: the has-data parameter is a run-time
    // variable. The figure's patterns only match literal F_DATA/F_NODATA,
    // so this send is not checked at all (the FPs in the paper came from
    // the checker pruning too little, not from this pattern).
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"
                 "PI_SEND(data_flag, keep, swap, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(MsgLength, AppliedCountsSendsAndAssignments)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_WORD;"
                 "PI_SEND(F_DATA, keep, swap, wait, dec, null);"
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);");
    MsgLengthChecker checker;
    auto stats = h.run(checker);
    EXPECT_EQ(stats[0].applied, 3);
}

TEST(MsgLength, UncachedReadHandlerShape)
{
    // The dyn_ptr/rac bug shape from the paper: uncached-read handlers
    // forget the length was set to a data length upstream and send nodata.
    Harness h;
    h.addHandler("PIUncachedRead", HandlerKind::Hardware,
                 "HANDLER_GLOBALS(header.nh.len) = LEN_WORD;"
                 "if (queue_full) {"
                 "  NI_SEND(MSG_NAK, F_NODATA, keep, wait, dec, null);"
                 "  return;"
                 "}"
                 "PI_SEND(F_DATA, keep, swap, wait, dec, null);");
    MsgLengthChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

} // namespace
} // namespace mc::checkers
