#include "checkers/buffer_alloc.h"
#include "checkers/directory.h"
#include "checkers/exec_restrict.h"
#include "checkers/no_float.h"
#include "checkers/send_wait.h"
#include "tests/checkers/harness.h"

#include <gtest/gtest.h>

namespace mc::checkers {
namespace {

using flash::HandlerKind;
using testing::Harness;

// ---------------------------------------------------------------------
// Buffer allocation failure checks (Section 9)
// ---------------------------------------------------------------------

TEST(BufferAlloc, CheckedAllocationClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "if (buf == 0) { return; }"
                 "MISCBUS_WRITE_DB(a, v);");
    BufferAllocChecker checker;
    auto stats = h.run(checker);
    EXPECT_EQ(h.errors(), 0);
    EXPECT_EQ(stats[0].applied, 1);
}

TEST(BufferAlloc, UncheckedWriteFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "MISCBUS_WRITE_DB(a, v);");
    BufferAllocChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferAlloc, UncheckedSendFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "NI_SEND(MSG_PUT, F_DATA, k, w, d, n);");
    BufferAllocChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferAlloc, NegationCheckAccepted)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "if (!buf) { return; }"
                 "MISCBUS_WRITE_DB(a, v);");
    BufferAllocChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferAlloc, DeclInitFormTracked)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "int buf = ALLOCATE_DB();"
                 "MISCBUS_WRITE_DB(a, v);");
    BufferAllocChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferAlloc, DebugPrintBeforeCheckIsTheKnownFalsePositive)
{
    // The paper's 2 FPs: debugging code printed the value before the
    // check. The tool flags it; triage calls it an FP.
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "DEBUG_PRINT(buf);"
                 "if (buf == 0) { return; }"
                 "MISCBUS_WRITE_DB(a, v);");
    BufferAllocChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferAlloc, CheckOnOnlyOnePathFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "if (mode) { if (buf == 0) { return; } }"
                 "MISCBUS_WRITE_DB(a, v);");
    BufferAllocChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

// ---------------------------------------------------------------------
// Send-wait checks (Section 9)
// ---------------------------------------------------------------------

TEST(SendWait, PairedSendWaitClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "PI_SEND(F_NODATA, k, s, F_WAIT, d, n);"
                 "WAIT_FOR_PI_REPLY();");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(SendWait, MissingWaitFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "PI_SEND(F_NODATA, k, s, F_WAIT, d, n);");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-wait"));
}

TEST(SendWait, WrongInterfaceFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "IO_SEND(F_NODATA, k, s, F_WAIT, d, n);"
                 "WAIT_FOR_PI_REPLY();");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("wait-wrong-interface"));
}

TEST(SendWait, SecondSendBeforeWaitFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "PI_SEND(F_NODATA, k, s, F_WAIT, d, n);"
                 "NI_SEND(MSG_ACK, F_NODATA, k, F_NOWAIT, d, n);"
                 "WAIT_FOR_PI_REPLY();");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("send-while-waiting"));
}

TEST(SendWait, NoWaitSendNeedsNoWait)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "PI_SEND(F_NODATA, k, s, F_NOWAIT, d, n);");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(SendWait, WaitOnOnlyOnePathFlagged)
{
    // Intervention-handler shape: wait happens in one branch only.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "PI_SEND(F_NODATA, k, s, F_WAIT, d, n);"
                 "if (c) { WAIT_FOR_PI_REPLY(); }");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-wait"));
}

TEST(SendWait, AbstractionBreakingRawWaitIsFalsePositive)
{
    // The paper's 8 FPs: a raw poll loop replaces the macro; the checker
    // cannot see it and reports a missing wait.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "PI_SEND(F_NODATA, k, s, F_WAIT, d, n);"
                 "while (!PI_STATUS_REG()) { spin(); }");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-wait"));
}

TEST(SendWait, WaitWithoutSendWarned)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "WAIT_FOR_PI_REPLY();");
    SendWaitChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasWarningRule("wait-without-send"));
}

// ---------------------------------------------------------------------
// Directory entry checks (Section 9)
// ---------------------------------------------------------------------

TEST(Directory, LoadModifyWritebackClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "DIR_LOAD();"
                 "DIR_WRITE(state, DIRTY);"
                 "DIR_WRITEBACK();");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Directory, UseBeforeLoadFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "DIR_WRITE(state, DIRTY);");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("use-before-load"));
}

TEST(Directory, ReadBeforeLoadFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "x = DIR_READ(state);");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("use-before-load"));
}

TEST(Directory, MissingWritebackFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "DIR_LOAD(); DIR_WRITE(state, DIRTY);");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-writeback"));
}

TEST(Directory, SpeculativeNakPathSuppressed)
{
    // Speculative handlers modify in anticipation and intentionally drop
    // the change when they NAK.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "DIR_LOAD();"
                 "DIR_WRITE(state, PENDING);"
                 "if (conflict) {"
                 "  NI_SEND(MSG_NAK, F_NODATA, k, w, d, n);"
                 "  return;"
                 "}"
                 "DIR_WRITEBACK();");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Directory, BackoutWithoutNakFlagged)
{
    // "some handlers back out of a speculatively modified directory entry
    // without sending a NAK" — those remain reported (counted FP in the
    // paper's triage).
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "DIR_LOAD();"
                 "DIR_WRITE(state, PENDING);"
                 "if (conflict) { return; }"
                 "DIR_WRITEBACK();");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-writeback"));
}

TEST(Directory, DeferredSubroutineMarksCallerModified)
{
    Harness h;
    h.spec.dir_deferred_routines.insert("update_sharers");
    h.addHandler("H", HandlerKind::Hardware,
                 "DIR_LOAD();"
                 "update_sharers();");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-writeback"));
}

TEST(Directory, AnnotatedSubroutineExemptItself)
{
    Harness h;
    h.addSource("helper.c",
                "void update_sharers(void) {"
                "  expects_dir_writeback();"
                "  DIR_LOAD();"
                "  DIR_WRITE(sharers, v);"
                "}");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(Directory, WritebackWithoutLoadWarned)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "DIR_WRITEBACK();");
    DirectoryChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasWarningRule("writeback-without-load"));
}

// ---------------------------------------------------------------------
// Execution restrictions (Section 8)
// ---------------------------------------------------------------------

TEST(ExecRestrict, WellFormedHardwareHandlerClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_DEFS(); HANDLER_PROLOGUE(); work();");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
    EXPECT_EQ(checker.handlersChecked(), 1);
}

TEST(ExecRestrict, HandlerWithParamsFlagged)
{
    Harness h;
    flash::HandlerSpec hs;
    hs.name = "H";
    hs.kind = HandlerKind::Hardware;
    h.spec.addHandler(hs);
    h.addSource("h.c", "void H(int x) { HANDLER_DEFS(); "
                       "HANDLER_PROLOGUE(); }");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("handler-takes-params"));
}

TEST(ExecRestrict, HandlerReturningValueFlagged)
{
    Harness h;
    flash::HandlerSpec hs;
    hs.name = "H";
    hs.kind = HandlerKind::Hardware;
    h.spec.addHandler(hs);
    h.addSource("h.c", "int H(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); "
                       "return 0; }");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("handler-returns-value"));
}

TEST(ExecRestrict, MissingHookFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "work();");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-hook"));
}

TEST(ExecRestrict, SecondHookMissingFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "HANDLER_DEFS(); work();");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-hook"));
}

TEST(ExecRestrict, SoftwareHandlerUsesSwHooks)
{
    Harness h;
    h.addHandler("S", HandlerKind::Software,
                 "SWHANDLER_DEFS(); SWHANDLER_PROLOGUE(); work();");
    h.addHandler("Wrong", HandlerKind::Software,
                 "HANDLER_DEFS(); HANDLER_PROLOGUE(); work();");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(ExecRestrict, SoftwareHandlerExtractedFromCode)
{
    // Not in the spec, but opens with SWHANDLER_DEFS: the checker
    // classifies it from the code and demands the second hook.
    Harness h;
    h.addSource("sw.c", "void unlisted(void) { SWHANDLER_DEFS(); "
                        "work(); }");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-hook"));

    Harness ok;
    ok.addSource("sw.c", "void unlisted(void) { SWHANDLER_DEFS(); "
                         "SWHANDLER_PROLOGUE(); work(); }");
    ExecRestrictChecker checker2;
    ok.run(checker2);
    EXPECT_EQ(ok.errors(), 0);
}

TEST(ExecRestrict, NormalRoutineNeedsProcHook)
{
    Harness h;
    h.addSource("u.c", "void util(void) { work(); }");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-hook"));
}

TEST(ExecRestrict, NoStackHandlerRules)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "int small;"
                 "small = 1;",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(ExecRestrict, NoStackMissingAnnotation)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_DEFS(); HANDLER_PROLOGUE();",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("no-stack-missing"));
}

TEST(ExecRestrict, NoStackAddressOfLocalFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "int v;"
                 "use(&v);",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("no-stack-addr-of"));
}

TEST(ExecRestrict, NoStackArrayFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "int arr[4];",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("no-stack-array"));
}

TEST(ExecRestrict, NoStackTooManyLocalsFlagged)
{
    std::string body = "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();";
    for (int i = 0; i < 20; ++i)
        body += "int v" + std::to_string(i) + ";";
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, body, /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("no-stack-too-many-locals"));
}

TEST(ExecRestrict, SetStackPtrPairing)
{
    Harness h;
    h.addSource("callee.c", "void callee(void) { PROC_HOOK(); }");
    h.addHandler("H", HandlerKind::Hardware,
                 "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "SET_STACKPTR();"
                 "callee();",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(ExecRestrict, CallWithoutSetStackPtrFlagged)
{
    Harness h;
    h.addSource("callee.c", "void callee(void) { PROC_HOOK(); }");
    h.addHandler("H", HandlerKind::Hardware,
                 "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "callee();",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("missing-set-stackptr"));
}

TEST(ExecRestrict, SpuriousSetStackPtrFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "NO_STACK(); HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "SET_STACKPTR();"
                 "x = 1;",
                 /*no_stack=*/true);
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("spurious-set-stackptr"));
}

TEST(ExecRestrict, DeprecatedMacroWarned)
{
    Harness h;
    h.spec.deprecated.insert("LEGACY_SEND");
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "LEGACY_SEND(x);");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasWarningRule("deprecated-macro"));
}

TEST(ExecRestrict, VarsCountedForTable5)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "HANDLER_DEFS(); HANDLER_PROLOGUE();"
                 "int a; int b; int c;");
    ExecRestrictChecker checker;
    h.run(checker);
    EXPECT_EQ(checker.varsChecked(), 3);
}

// ---------------------------------------------------------------------
// No-float (Section 8)
// ---------------------------------------------------------------------

TEST(NoFloat, IntegerCodeClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "x = a + b * 3;");
    NoFloatChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(NoFloat, FloatLiteralFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "x = 1.5;");
    NoFloatChecker checker;
    h.run(checker);
    EXPECT_GE(h.errors(), 1);
}

TEST(NoFloat, FloatVariableFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "float f;");
    NoFloatChecker checker;
    h.run(checker);
    EXPECT_GE(h.errors(), 1);
}

TEST(NoFloat, FloatPropagationThroughArithmetic)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "double r;"
                 "y = r + 1;");
    NoFloatChecker checker;
    h.run(checker);
    EXPECT_GE(h.errors(), 2); // the decl and the float-typed expression
}

TEST(NoFloat, FloatReturnAndParamFlagged)
{
    Harness h;
    h.addSource("f.c", "float scale(float v) { PROC_HOOK(); return v; }");
    NoFloatChecker checker;
    h.run(checker);
    EXPECT_GE(h.errors(), 2);
}

} // namespace
} // namespace mc::checkers
