#ifndef MCHECK_TESTS_CHECKERS_HARNESS_H
#define MCHECK_TESTS_CHECKERS_HARNESS_H

#include "checkers/checker.h"

#include <string>
#include <vector>

namespace mc::checkers::testing {

/**
 * Shared fixture for checker tests: a program, a protocol spec, and a
 * sink, with helpers to add handler bodies and run one checker.
 */
struct Harness
{
    lang::Program program;
    flash::ProtocolSpec spec;
    support::DiagnosticSink sink;

    /** Add a function `name` with `body`, registered as `kind`. */
    void
    addHandler(const std::string& name, flash::HandlerKind kind,
               const std::string& body, bool no_stack = false)
    {
        flash::HandlerSpec hs;
        hs.name = name;
        hs.kind = kind;
        hs.no_stack = no_stack;
        spec.addHandler(hs);
        static int file_counter = 0;
        program.addSource(name + std::to_string(++file_counter) + ".c",
                          "void " + name + "(void) {" + body + "}");
    }

    /** Add an unregistered (Normal) routine with raw source. */
    void
    addSource(const std::string& name, const std::string& source)
    {
        program.addSource(name, source);
    }

    std::vector<CheckerRunStats>
    run(Checker& checker)
    {
        return runCheckers(program, spec, {&checker}, sink);
    }

    int errors() const { return sink.count(support::Severity::Error); }
    int warnings() const { return sink.count(support::Severity::Warning); }

    /** Messages of all error diagnostics, for content assertions. */
    std::vector<std::string>
    errorRules() const
    {
        std::vector<std::string> out;
        for (const auto& d : sink.diagnostics())
            if (d.severity == support::Severity::Error)
                out.push_back(d.rule);
        return out;
    }

    bool
    hasErrorRule(const std::string& rule) const
    {
        for (const auto& d : sink.diagnostics())
            if (d.severity == support::Severity::Error && d.rule == rule)
                return true;
        return false;
    }

    bool
    hasWarningRule(const std::string& rule) const
    {
        for (const auto& d : sink.diagnostics())
            if (d.severity == support::Severity::Warning && d.rule == rule)
                return true;
        return false;
    }
};

} // namespace mc::checkers::testing

#endif // MCHECK_TESTS_CHECKERS_HARNESS_H
