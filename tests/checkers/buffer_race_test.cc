#include "checkers/buffer_race.h"
#include "checkers/buffer_race_magik.h"
#include "tests/checkers/harness.h"

#include <gtest/gtest.h>

namespace mc::checkers {
namespace {

using flash::HandlerKind;
using testing::Harness;

TEST(BufferRace, CleanHandlerPasses)
{
    Harness h;
    h.addHandler("PILocalGet", HandlerKind::Hardware,
                 "WAIT_FOR_DB_FULL(addr);"
                 "MISCBUS_READ_DB(addr, word0);");
    BufferRaceChecker checker;
    auto stats = h.run(checker);
    EXPECT_EQ(h.errors(), 0);
    EXPECT_EQ(stats[0].applied, 1);
}

TEST(BufferRace, ReadWithoutWaitFlagged)
{
    Harness h;
    h.addHandler("PILocalGet", HandlerKind::Hardware,
                 "MISCBUS_READ_DB(addr, word0);");
    BufferRaceChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferRace, OldStyleMacroAlsoChecked)
{
    Harness h;
    h.addHandler("NIRemotePut", HandlerKind::Hardware,
                 "MISCBUS_READ_DB_OLD(addr);");
    BufferRaceChecker checker;
    auto stats = h.run(checker);
    EXPECT_EQ(h.errors(), 1);
    EXPECT_EQ(stats[0].applied, 1);
}

TEST(BufferRace, WaitOnOnePathOnly)
{
    // The paper's rare-corner-case shape: only one branch synchronizes.
    Harness h;
    h.addHandler("NILocalGet", HandlerKind::Hardware,
                 "if (cached) { WAIT_FOR_DB_FULL(addr); }"
                 "MISCBUS_READ_DB(addr, b);");
    BufferRaceChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferRace, WaitAsLateAsPossibleStillClean)
{
    // WAIT_FOR_DB_FULL is "called as late as possible" on paths that
    // need it; reads on other paths don't exist, so no error.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (need_data) {"
                 "  setup();"
                 "  WAIT_FOR_DB_FULL(addr);"
                 "  MISCBUS_READ_DB(addr, b);"
                 "} else {"
                 "  no_data_path();"
                 "}");
    BufferRaceChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferRace, FirstByteOnlyReadStillRace)
{
    // "in a couple of cases only the first byte of the buffer was read
    // without explicit synchronization" — still flagged.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "MISCBUS_READ_DB(addr, byte0);"
                 "WAIT_FOR_DB_FULL(addr);"
                 "MISCBUS_READ_DB(addr, rest);");
    BufferRaceChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

TEST(BufferRace, MultipleFunctionsIndependent)
{
    Harness h;
    h.addHandler("Good", HandlerKind::Hardware,
                 "WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b);");
    h.addHandler("Bad", HandlerKind::Hardware, "MISCBUS_READ_DB(a, b);");
    BufferRaceChecker checker;
    auto stats = h.run(checker);
    EXPECT_EQ(h.errors(), 1);
    EXPECT_EQ(stats[0].applied, 2);
}

TEST(BufferRace, MagikStyleCheckerAgreesSiteForSite)
{
    // The Section 11 predecessor style must report exactly the same
    // sites as the metal version on tricky shapes.
    const char* bodies[] = {
        "MISCBUS_READ_DB(a, b);",
        "WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b);",
        "if (c) { WAIT_FOR_DB_FULL(a); } MISCBUS_READ_DB(a, b);",
        "while (c) { MISCBUS_READ_DB(a, b); }",
        "if (MISCBUS_READ_DB(a, b)) { x = 1; }",
        "MISCBUS_READ_DB_OLD(a); WAIT_FOR_DB_FULL(a);"
        "MISCBUS_READ_DB(a, b);",
    };
    for (const char* body : bodies) {
        Harness metal_h;
        metal_h.addHandler("H", HandlerKind::Hardware, body);
        BufferRaceChecker metal_checker;
        metal_h.run(metal_checker);

        Harness magik_h;
        magik_h.addHandler("H", HandlerKind::Hardware, body);
        BufferRaceMagikChecker magik_checker;
        magik_h.run(magik_checker);

        EXPECT_EQ(metal_h.errors(), magik_h.errors()) << body;
        ASSERT_EQ(metal_h.sink.diagnostics().size(),
                  magik_h.sink.diagnostics().size());
        for (std::size_t i = 0; i < metal_h.sink.diagnostics().size();
             ++i)
            EXPECT_EQ(metal_h.sink.diagnostics()[i].loc.line,
                      magik_h.sink.diagnostics()[i].loc.line)
                << body;
    }
}

TEST(BufferRace, DebugReadIntentionalViolationStillFlagged)
{
    // The paper's single false positive: debugging code that reads the
    // buffer on purpose. The checker must still flag it (triage marks it
    // FP, not the tool).
    Harness h;
    h.addHandler("DebugDump", HandlerKind::Normal,
                 "MISCBUS_READ_DB(addr, dump_word);");
    BufferRaceChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 1);
}

} // namespace
} // namespace mc::checkers
