/**
 * @file
 * Determinism tests for the parallel checking engine: for any job count,
 * runCheckersParallel must leave the sink byte-identical to the
 * sequential runner — same diagnostics, same rendered output, same
 * per-checker statistics, same merged metric sums.
 */
#include "checkers/checker.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "support/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace mc::checkers {
namespace {

struct RunResult
{
    std::string text;
    std::string json;
    std::string sarif;
    std::vector<CheckerRunStats> stats;
    /** checker.* counter values published while this run was active. */
    std::map<std::string, std::uint64_t> counters;
};

/** Check `loaded` with `jobs` lanes and capture everything observable. */
RunResult
runWith(const corpus::LoadedProtocol& loaded, unsigned jobs)
{
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    metrics.setEnabled(true);
    metrics.reset();

    auto set = makeAllCheckers();
    support::DiagnosticSink sink;
    RunResult out;
    if (jobs == 0) {
        out.stats = runCheckers(*loaded.program, loaded.gen.spec,
                                set.pointers(), sink);
    } else {
        ParallelRunOptions options;
        options.jobs = jobs;
        out.stats = runCheckersParallel(*loaded.program, loaded.gen.spec,
                                        set.pointers(), sink, options);
    }

    const support::SourceManager& sm = loaded.program->sourceManager();
    std::ostringstream text, json, sarif;
    sink.print(text, &sm);
    sink.printJson(json, &sm);
    sink.printSarif(sarif, &sm);
    out.text = text.str();
    out.json = json.str();
    out.sarif = sarif.str();
    for (const auto& [name, counter] : metrics.counters())
        if (name.rfind("checker.", 0) == 0 ||
            name.rfind("engine.", 0) == 0)
            out.counters[name] = counter.value();
    metrics.setEnabled(false);
    metrics.reset();
    return out;
}

void
expectSameResults(const RunResult& a, const RunResult& b,
                  const std::string& what)
{
    EXPECT_EQ(a.text, b.text) << what;
    EXPECT_EQ(a.json, b.json) << what;
    EXPECT_EQ(a.sarif, b.sarif) << what;
    ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
    for (std::size_t i = 0; i < a.stats.size(); ++i) {
        EXPECT_EQ(a.stats[i].checker, b.stats[i].checker) << what;
        EXPECT_EQ(a.stats[i].errors, b.stats[i].errors)
            << what << " checker=" << a.stats[i].checker;
        EXPECT_EQ(a.stats[i].warnings, b.stats[i].warnings)
            << what << " checker=" << a.stats[i].checker;
        EXPECT_EQ(a.stats[i].applied, b.stats[i].applied)
            << what << " checker=" << a.stats[i].checker;
    }
    // Counter sums merge exactly: same applied/error counts and the same
    // engine work regardless of which thread performed it. (Timers and
    // gauges legitimately differ run to run.)
    EXPECT_EQ(a.counters, b.counters) << what;
}

TEST(ParallelCheckers, MatchesSequentialRunnerByteForByte)
{
    for (const char* name : {"bitvector", "sci"}) {
        corpus::LoadedProtocol loaded =
            corpus::loadProtocol(corpus::profileByName(name));
        RunResult sequential = runWith(loaded, 0);
        RunResult one_lane = runWith(loaded, 1);
        RunResult four_lanes = runWith(loaded, 4);
        ASSERT_FALSE(sequential.text.empty()) << name;
        expectSameResults(sequential, one_lane,
                          std::string(name) + " jobs=1");
        expectSameResults(sequential, four_lanes,
                          std::string(name) + " jobs=4");
    }
}

TEST(ParallelCheckers, RepeatedParallelRunsAreStable)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("dyn_ptr"));
    RunResult first = runWith(loaded, 4);
    RunResult second = runWith(loaded, 4);
    expectSameResults(first, second, "dyn_ptr repeat jobs=4");
}

TEST(ParallelCheckers, AbsorbMergesInterProceduralState)
{
    // The lanes checker is the inter-procedural one: its program pass
    // consumes per-function summaries. If absorb dropped or reordered
    // them, the parallel run's lanes errors would differ from the
    // sequential run's. rac exercises lanes findings.
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("rac"));
    RunResult sequential = runWith(loaded, 0);
    RunResult parallel = runWith(loaded, 4);
    expectSameResults(sequential, parallel, "rac jobs=4");
}

TEST(ParallelCheckers, FallsBackWhenCheckerUnknownToFactory)
{
    /** A checker the registry factory cannot rebuild. */
    class LocalChecker : public Checker
    {
      public:
        std::string name() const override { return "local_test_checker"; }
    };

    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));
    LocalChecker local;
    auto set = makeAllCheckers();
    std::vector<Checker*> checkers = set.pointers();
    checkers.push_back(&local);

    support::DiagnosticSink seq_sink;
    auto seq_checkers = makeAllCheckers();
    std::vector<Checker*> seq_ptrs = seq_checkers.pointers();
    LocalChecker seq_local;
    seq_ptrs.push_back(&seq_local);
    auto seq_stats = runCheckers(*loaded.program, loaded.gen.spec,
                                 seq_ptrs, seq_sink);

    support::DiagnosticSink par_sink;
    ParallelRunOptions options;
    options.jobs = 4;
    auto par_stats = runCheckersParallel(*loaded.program, loaded.gen.spec,
                                         checkers, par_sink, options);

    ASSERT_EQ(seq_stats.size(), par_stats.size());
    for (std::size_t i = 0; i < seq_stats.size(); ++i) {
        EXPECT_EQ(seq_stats[i].checker, par_stats[i].checker);
        EXPECT_EQ(seq_stats[i].errors, par_stats[i].errors);
    }
    EXPECT_EQ(seq_sink.diagnostics().size(), par_sink.diagnostics().size());
}

} // namespace
} // namespace mc::checkers
