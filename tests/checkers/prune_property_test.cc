/**
 * @file
 * Property tests for path-feasibility pruning over the seeded corpus:
 *
 *  - Monotone shrinkage: findings(constraints) is a subset of
 *    findings(correlated), which is a subset of findings(off). Pruning
 *    may only remove infeasible-path reports, never add.
 *  - Error retention: every seeded true error of Tables 2-7 that the
 *    paper configuration reports is still reported at every strategy.
 *  - Determinism per strategy: rendered JSON is byte-identical across
 *    --jobs 1/4 and cold/warm analysis cache (the cache keys embed the
 *    strategy, so a warm cache from one strategy never leaks findings
 *    into another).
 */
#include "cache/analysis_cache.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "metal/feasibility.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace mc {
namespace {

namespace fs = std::filesystem;

/** A finding identity: dedup key the sink itself uses, plus severity. */
std::multiset<std::string>
findingKeys(const support::DiagnosticSink& sink)
{
    std::multiset<std::string> keys;
    for (const support::Diagnostic& d : sink.diagnostics()) {
        std::ostringstream key;
        key << d.loc.file_id << ':' << d.loc.line << ':' << d.loc.column
            << ':' << d.checker << ':' << d.rule << ':'
            << static_cast<int>(d.severity);
        keys.insert(key.str());
    }
    return keys;
}

struct Checked
{
    std::multiset<std::string> keys;
    std::string json;
    std::map<std::string, int> errors_found;
};

Checked
checkProtocol(const corpus::LoadedProtocol& loaded,
              metal::PruneStrategy strategy, unsigned jobs,
              cache::AnalysisCache* cache)
{
    checkers::CheckerSetOptions copts;
    copts.prune_strategy = strategy;
    auto set = checkers::makeAllCheckers(copts);
    support::DiagnosticSink sink;
    checkers::ParallelRunOptions options;
    options.jobs = jobs;
    options.cache = cache;
    options.checker_options = copts;
    checkers::runCheckersParallel(*loaded.program, loaded.gen.spec,
                                  set.pointers(), sink, options);
    Checked out;
    out.keys = findingKeys(sink);
    std::ostringstream json;
    sink.write(json, support::OutputFormat::Json,
               &loaded.program->sourceManager());
    out.json = json.str();
    for (const checkers::CheckerMeta& meta : checkers::table7Meta()) {
        corpus::Reconciliation rec =
            corpus::reconcile(loaded.gen.ledger, sink.diagnostics(),
                              loaded.file_function, meta.name);
        out.errors_found[meta.name] =
            rec.foundWithClass(corpus::SeedClass::Error);
    }
    return out;
}

bool
isSubset(const std::multiset<std::string>& inner,
         const std::multiset<std::string>& outer)
{
    return std::includes(outer.begin(), outer.end(), inner.begin(),
                         inner.end());
}

TEST(PruneProperty, FindingsShrinkMonotonicallyAndErrorsSurvive)
{
    for (const corpus::ProtocolProfile& profile :
         corpus::paperProfiles()) {
        corpus::LoadedProtocol loaded = corpus::loadProtocol(profile);
        Checked off = checkProtocol(loaded, metal::PruneStrategy::Off, 1,
                                    nullptr);
        Checked corr = checkProtocol(
            loaded, metal::PruneStrategy::Correlated, 1, nullptr);
        Checked cons = checkProtocol(
            loaded, metal::PruneStrategy::Constraints, 1, nullptr);

        EXPECT_TRUE(isSubset(corr.keys, off.keys))
            << profile.name << ": correlated added findings";
        EXPECT_TRUE(isSubset(cons.keys, corr.keys))
            << profile.name << ": constraints added findings vs "
                               "correlated";

        EXPECT_EQ(corr.errors_found, off.errors_found)
            << profile.name << ": correlated lost a seeded error";
        EXPECT_EQ(cons.errors_found, off.errors_found)
            << profile.name << ": constraints lost a seeded error";
    }
}

TEST(PruneProperty, EachStrategyIsDeterministicAcrossJobsAndCache)
{
    fs::path cache_root =
        fs::temp_directory_path() / "mccheck_prune_property_cache";
    fs::remove_all(cache_root);

    // One protocol exercising all strategies end to end keeps the test
    // fast; byte-determinism across every protocol is pinned separately
    // by the compare_prune ctest harness.
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("coma"));
    for (metal::PruneStrategy strategy :
         {metal::PruneStrategy::Off, metal::PruneStrategy::Correlated,
          metal::PruneStrategy::Constraints}) {
        const std::string label = metal::pruneStrategyName(strategy);
        // All strategies share one cache directory on purpose: the
        // strategy byte in the unit key must keep entries separate.
        cache::AnalysisCache fill(cache_root.string());
        Checked j1 = checkProtocol(loaded, strategy, 1, nullptr);
        Checked j4 = checkProtocol(loaded, strategy, 4, nullptr);
        EXPECT_EQ(j1.json, j4.json) << label << ": jobs changed bytes";
        checkProtocol(loaded, strategy, 1, &fill); // cold fill
        cache::AnalysisCache warm(cache_root.string());
        Checked cached = checkProtocol(loaded, strategy, 4, &warm);
        EXPECT_GT(warm.stats().hits, 0u) << label;
        EXPECT_EQ(j1.json, cached.json)
            << label << ": warm cache changed bytes";
    }
    fs::remove_all(cache_root);
}

} // namespace
} // namespace mc
