#include "checkers/buffer_mgmt.h"
#include "tests/checkers/harness.h"

#include <gtest/gtest.h>

namespace mc::checkers {
namespace {

using flash::HandlerKind;
using testing::Harness;

TEST(BufferMgmt, HardwareHandlerMustFree)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "work();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("leak"));
}

TEST(BufferMgmt, HardwareHandlerFreeingIsClean)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "NI_SEND(MSG_ACK, F_NODATA, keep, wait, dec, null);"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, DoubleFreeFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "FREE_DB(); FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("double-free"));
}

TEST(BufferMgmt, DoubleFreeOnOnePathOnly)
{
    // The shared-heritage bug shape: a free inside a branch followed by
    // an unconditional free.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (fast_path) { FREE_DB(); }"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("double-free"));
}

TEST(BufferMgmt, SendAfterFreeFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "FREE_DB();"
                 "NI_SEND(MSG_ACK, F_NODATA, keep, wait, dec, null);");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("send-without-buffer"));
}

TEST(BufferMgmt, SoftwareHandlerMustAllocateBeforeSending)
{
    Harness h;
    h.addHandler("SwH", HandlerKind::Software,
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("send-without-buffer"));
}

TEST(BufferMgmt, SoftwareHandlerAllocSendFreeClean)
{
    Harness h;
    h.addHandler("SwH", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, AllocWhileHoldingLeaksCurrent)
{
    // "overwrites the current buffer pointer with a newly allocated
    // buffer before freeing the first".
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "buf = ALLOCATE_DB(); FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("alloc-overwrites"));
}

TEST(BufferMgmt, UseAfterFreeFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "FREE_DB(); MISCBUS_READ_DB(a, b);");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("use-after-free"));
}

TEST(BufferMgmt, FreeingRoutineTableConsulted)
{
    Harness h;
    h.spec.freeing_routines.insert("send_reply_and_free");
    h.addHandler("H", HandlerKind::Hardware,
                 "send_reply_and_free();"
                 "FREE_DB();"); // second free: double free
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("double-free"));
}

TEST(BufferMgmt, FreeingRoutineCheckedForConsistency)
{
    // A routine in the freeing table that doesn't free is itself flagged.
    Harness h;
    h.spec.freeing_routines.insert("send_reply_and_free");
    h.addSource("helper.c", "void send_reply_and_free(void) { work(); }");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("leak"));
}

TEST(BufferMgmt, BufferUsingRoutineMustNotFree)
{
    Harness h;
    h.spec.buffer_using_routines.insert("peek_buffer");
    h.addSource("helper.c", "void peek_buffer(void) { FREE_DB(); }");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("helper-freed"));
}

TEST(BufferMgmt, HasBufferAnnotationSuppresses)
{
    Harness h;
    h.addHandler("H", HandlerKind::Software,
                 "has_buffer();"
                 "NI_SEND(MSG_PUT, F_DATA, keep, wait, dec, null);"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
    EXPECT_EQ(checker.annotationsSeen(), 1);
    EXPECT_EQ(checker.annotationsUnneeded(), 0);
}

TEST(BufferMgmt, NoFreeNeededAnnotationSuppressesLeak)
{
    // "special purpose paths in handlers that explicitly did not
    // deallocate buffers so that a subsequent handler could use it".
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (handoff) { no_free_needed(); return; }"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, UnneededAnnotationReported)
{
    // has_buffer() where every path already holds one: checkable comment
    // gone stale.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware, "has_buffer(); FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasWarningRule("annotation-unneeded"));
    EXPECT_EQ(checker.annotationsUnneeded(), 1);
}

TEST(BufferMgmt, ValueSensitiveFreeBranch)
{
    // Section 6.1: `if (MAYBE_FREE_DB_A())` frees only on the true edge.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (MAYBE_FREE_DB_A()) { return; }"
                 "FREE_DB();");
    BufferMgmtChecker checker; // value-sensitive by default
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, NaiveModeCascadesOnMaybeFree)
{
    // With the refinement off, MAYBE_FREE frees on both edges and the
    // legitimate FREE_DB afterwards becomes a (false) double free.
    Harness h;
    BufferMgmtChecker::Options options;
    options.value_sensitive_frees = false;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (MAYBE_FREE_DB_A()) { return; }"
                 "FREE_DB();");
    BufferMgmtChecker checker(options);
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("double-free"));
}

TEST(BufferMgmt, ManualRefcountAggressivelyFlagged)
{
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "DB_REFCNT_INCR();"
                 "FREE_DB(); FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("manual-refcount"));
}

TEST(BufferMgmt, AllocFailureBranchRetractsBuffer)
{
    // `if (buf == 0) return;` — the failing edge never had a buffer, so
    // returning without a free is NOT a leak.
    Harness h;
    h.addHandler("SwH", HandlerKind::Software,
                 "buf = ALLOCATE_DB();"
                 "if (buf == 0) { return; }"
                 "NI_SEND(MSG_PUT, F_DATA, k, w, d, n);"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, AllocFailurePolarityVariants)
{
    // All four spellings of the failure test must be understood.
    const char* bodies[] = {
        "buf = ALLOCATE_DB(); if (buf == 0) { return; } FREE_DB();",
        "buf = ALLOCATE_DB(); if (!buf) { return; } FREE_DB();",
        "buf = ALLOCATE_DB(); if (buf != 0) { FREE_DB(); } ",
        "buf = ALLOCATE_DB(); if (buf) { FREE_DB(); } ",
    };
    for (const char* body : bodies) {
        Harness h;
        h.addHandler("SwH", HandlerKind::Software, body);
        BufferMgmtChecker checker;
        h.run(checker);
        EXPECT_EQ(h.errors(), 0) << body;
    }
}

TEST(BufferMgmt, DeclFormAllocTracked)
{
    Harness h;
    h.addHandler("SwH", HandlerKind::Software,
                 "int buf = ALLOCATE_DB();"
                 "if (buf == 0) { return; }"
                 "FREE_DB();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, NormalRoutinesSkipped)
{
    Harness h;
    h.addSource("util.c", "void helper(void) { FREE_DB(); }");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_EQ(h.errors(), 0);
}

TEST(BufferMgmt, LeakOnObscurePathOnly)
{
    // "low-grade buffer leak that only deadlocks the system after several
    // days": the leak is on the rarely-executed else path.
    Harness h;
    h.addHandler("H", HandlerKind::Hardware,
                 "if (common_case) { FREE_DB(); return; }"
                 "rare_path_work();");
    BufferMgmtChecker checker;
    h.run(checker);
    EXPECT_TRUE(h.hasErrorRule("leak"));
}

} // namespace
} // namespace mc::checkers
