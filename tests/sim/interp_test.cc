#include "sim/interp.h"

#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::sim {
namespace {

/**
 * Harness: run a handler whose last act is MISCBUS_WRITE_DB(0, <expr>);
 * the machine write path is stubbed, so instead we expose results via
 * the header-length register, which tests can read back... Simpler: the
 * interpreter exposes no raw memory, so tests observe behavior through
 * MagicNode effects (header length, sends, buffer ops) and failure
 * records.
 */
struct SimRun
{
    lang::Program program;
    flash::ProtocolSpec spec;
    MagicNode node{MagicNode::Config(), 42};

    explicit SimRun(const std::string& body, std::int64_t payload = 7)
    {
        spec.setLane("MSG_PUT", 1);
        program.addSource("t.c", "void H(void) {" + body + "}");
        node.deliverMessage(payload, "H");
    }

    void
    go()
    {
        Interpreter interp(program, spec, node);
        interp.runFunction(*program.findFunction("H"));
        node.finishHandler();
    }
};

/** Evaluate `expr` by storing it into the header length register. */
std::int64_t
evalViaHeader(const std::string& expr, std::int64_t payload = 7)
{
    SimRun run("HANDLER_GLOBALS(header.nh.len) = " + expr + "; FREE_DB();",
            payload);
    run.go();
    // A mismatching send would be needed to observe the value... use the
    // length-mismatch failure as the probe: send F_DATA; if expr == 0 we
    // get a mismatch.
    return run.node.failureCount(FailureKind::LengthMismatch);
}

TEST(Interpreter, ArithmeticAndPrecedence)
{
    // (2 + 3 * 4) == 14 -> nonzero header -> F_NODATA send mismatches.
    SimRun run("HANDLER_GLOBALS(header.nh.len) = 2 + 3 * 4;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 1);
}

TEST(Interpreter, ZeroExpressionIsZero)
{
    SimRun run("HANDLER_GLOBALS(header.nh.len) = 5 - 5;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 0);
}

TEST(Interpreter, PayloadFlowsThroughLocals)
{
    // payload 7: (t0 & 4) != 0 -> takes the branch -> double free.
    SimRun run("int t0 = MSG_WORD0();"
            "if (t0 & 4) { FREE_DB(); }"
            "FREE_DB();",
            /*payload=*/7);
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::DoubleFree), 1);
}

TEST(Interpreter, PayloadBranchNotTaken)
{
    SimRun run("int t0 = MSG_WORD0();"
            "if (t0 & 4) { FREE_DB(); }"
            "FREE_DB();",
            /*payload=*/3);
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::DoubleFree), 0);
}

TEST(Interpreter, WhileLoopAndCompoundAssign)
{
    // Loop 5 times accumulating; end value 0+1+2+3+4 = 10 != 0.
    SimRun run("int i = 0; int acc = 0;"
            "while (i < 5) { acc += i; i++; }"
            "HANDLER_GLOBALS(header.nh.len) = acc;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 1);
}

TEST(Interpreter, ForLoopWithBreakContinue)
{
    // Sum even numbers below 10 but break at 6: 0+2+4 = 6.
    SimRun run("int acc = 0;"
            "for (int i = 0; i < 10; i++) {"
            "  if (i == 6) { break; }"
            "  if (i % 2) { continue; }"
            "  acc += i;"
            "}"
            "HANDLER_GLOBALS(header.nh.len) = acc - 6;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    // acc - 6 == 0 -> no mismatch for F_NODATA.
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 0);
}

TEST(Interpreter, DoWhileRunsBodyFirst)
{
    SimRun run("int n = 0;"
            "do { n++; } while (n < 0);"
            "HANDLER_GLOBALS(header.nh.len) = n;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 1);
}

TEST(Interpreter, SwitchSelectsCaseAndFallsThrough)
{
    // case 2 falls into case 3; acc = 20 + 30 = 50.
    SimRun run("int acc = 0;"
            "switch (2) {"
            "  case 1: acc = 10; break;"
            "  case 2: acc += 20;"
            "  case 3: acc += 30; break;"
            "  default: acc = 99;"
            "}"
            "HANDLER_GLOBALS(header.nh.len) = acc - 50;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 0);
}

TEST(Interpreter, SwitchDefaultTaken)
{
    SimRun run("int acc = 0;"
            "switch (9) { case 1: acc = 1; break; default: acc = 7; }"
            "HANDLER_GLOBALS(header.nh.len) = acc - 7;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 0);
}

TEST(Interpreter, TernaryAndLogicalShortCircuit)
{
    // CRASH() is unknown (returns 0); short-circuit avoids even that.
    SimRun run("int v = 1 ? 4 : CRASH();"
            "int w = 0 && CRASH();"
            "HANDLER_GLOBALS(header.nh.len) = v - 4 + w;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 0);
}

TEST(Interpreter, EarlyReturnSkipsRest)
{
    SimRun run("FREE_DB(); return; FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::DoubleFree), 0);
}

TEST(Interpreter, UserFunctionCalls)
{
    SimRun run("helper();");
    run.program.addSource("h.c", "void helper(void) { FREE_DB(); }");
    run.go();
    // helper freed the buffer: the handler does not leak.
    EXPECT_EQ(run.node.freeBufferCount(),
              MagicNode::Config().buffer_count);
}

TEST(Interpreter, RecursionGuardTerminates)
{
    SimRun run("spin();");
    run.program.addSource("s.c", "void spin(void) { spin(); }");
    run.go(); // must not crash or hang
    SUCCEED();
}

TEST(Interpreter, InfiniteLoopBudgetTerminates)
{
    SimRun run("while (1) { x = x + 1; } FREE_DB();");
    run.go(); // the step budget cuts it off
    SUCCEED();
}

TEST(Interpreter, ConstantsHaveHardwareValues)
{
    // LEN_NODATA == 0: assigning it then sending F_NODATA is consistent.
    SimRun run("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"
            "NI_SEND(MSG_PUT, F_NODATA, F_KEEP, F_NOWAIT, F_DEC, F_NULL);"
            "FREE_DB();");
    run.go();
    EXPECT_EQ(run.node.failureCount(FailureKind::LengthMismatch), 0);
}

TEST(Interpreter, EvalViaHeaderProbeSanity)
{
    (void)evalViaHeader; // probe helper kept for further tests
    SUCCEED();
}

} // namespace
} // namespace mc::sim
