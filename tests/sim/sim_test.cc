#include "sim/workload.h"

#include "corpus/generator.h"

#include <gtest/gtest.h>

namespace mc::sim {
namespace {

/** A tiny hand-written clean protocol: simulation must be failure-free. */
struct CleanProtocol
{
    lang::Program program;
    flash::ProtocolSpec spec;

    CleanProtocol()
    {
        spec.name = "clean";
        spec.setLane("MSG_PUT", 1);
        spec.setLane("MSG_ACK", 2);

        flash::HandlerSpec h;
        h.name = "CleanGet";
        h.kind = flash::HandlerKind::Hardware;
        h.lane_allowance = {1, 1, 1, 1};
        spec.addHandler(h);
        program.addSource("clean/CleanGet.c",
                          "void CleanGet(void) {\n"
                          "    HANDLER_DEFS();\n"
                          "    HANDLER_PROLOGUE();\n"
                          "    int t0 = MSG_WORD0();\n"
                          "    WAIT_FOR_DB_FULL(t0);\n"
                          "    t0 = MISCBUS_READ_DB(t0, t0);\n"
                          "    DIR_LOAD();\n"
                          "    if (DIR_READ(state) == DIRTY) {\n"
                          "        DIR_WRITE(state, CLEAN);\n"
                          "        DIR_WRITEBACK();\n"
                          "    }\n"
                          "    HANDLER_GLOBALS(header.nh.len) = "
                          "LEN_CACHELINE;\n"
                          "    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, "
                          "F_DEC, F_NULL);\n"
                          "    FREE_DB();\n"
                          "}\n");

        flash::HandlerSpec w;
        w.name = "CleanIntervention";
        w.kind = flash::HandlerKind::Hardware;
        spec.addHandler(w);
        program.addSource("clean/CleanIntervention.c",
                          "void CleanIntervention(void) {\n"
                          "    HANDLER_DEFS();\n"
                          "    HANDLER_PROLOGUE();\n"
                          "    HANDLER_GLOBALS(header.nh.len) = "
                          "LEN_NODATA;\n"
                          "    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, "
                          "F_DEC, F_NULL);\n"
                          "    WAIT_FOR_PI_REPLY();\n"
                          "    HANDLER_GLOBALS(header.nh.len) = "
                          "LEN_NODATA;\n"
                          "    NI_SEND(MSG_ACK, F_NODATA, F_KEEP, "
                          "F_NOWAIT, F_DEC, F_NULL);\n"
                          "    FREE_DB();\n"
                          "}\n");
    }
};

TEST(Simulator, CleanProtocolRunsFailureFree)
{
    CleanProtocol clean;
    WorkloadDriver driver(clean.program, clean.spec);
    WorkloadResult result = driver.run(20000);
    EXPECT_EQ(result.messages_handled, 20000u);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.failures.empty())
        << failureKindName(result.failures.front().kind) << " in "
        << result.failures.front().handler;
}

TEST(Simulator, DoubleFreeDetectedDynamically)
{
    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec h;
    h.name = "Buggy";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    program.addSource("p/Buggy.c", "void Buggy(void) {\n"
                                   "    int t0 = MSG_WORD0();\n"
                                   "    if ((t0 & 15) == 3) {\n"
                                   "        FREE_DB();\n"
                                   "    }\n"
                                   "    FREE_DB();\n"
                                   "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(1000);
    EXPECT_GT(result.count(FailureKind::DoubleFree), 0);
    // Only ~1/16 of messages take the bad path.
    EXPECT_LT(result.count(FailureKind::DoubleFree), 300);
}

TEST(Simulator, LeakEventuallyExhaustsPool)
{
    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec h;
    h.name = "Leaky";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    program.addSource("p/Leaky.c", "void Leaky(void) {\n"
                                   "    int t0 = MSG_WORD0();\n"
                                   "    if ((t0 & 15) != 7) {\n"
                                   "        FREE_DB();\n"
                                   "        return;\n"
                                   "    }\n"
                                   "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(1u << 16);
    // 64 buffers leak at ~1/16 per message: the pool dies after roughly
    // a thousand messages — not immediately, not never.
    EXPECT_TRUE(result.deadlocked);
    EXPECT_GT(result.messages_handled, 200u);
    EXPECT_LT(result.messages_handled, 10000u);
}

TEST(Simulator, RaceManifestsRarely)
{
    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec h;
    h.name = "Racy";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    // Reads without synchronization, always.
    program.addSource("p/Racy.c", "void Racy(void) {\n"
                                  "    int t0 = MSG_WORD0();\n"
                                  "    t0 = MISCBUS_READ_DB(t0, t0);\n"
                                  "    FREE_DB();\n"
                                  "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(20000);
    int races = result.count(FailureKind::RaceCorruption);
    // Manifests only when the fill happens to be slow (~2%).
    EXPECT_GT(races, 0);
    EXPECT_LT(races, 2000);
}

TEST(Simulator, LengthMismatchObserved)
{
    lang::Program program;
    flash::ProtocolSpec spec;
    spec.setLane("MSG_PUT", 1);
    flash::HandlerSpec h;
    h.name = "BadLen";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    program.addSource("p/BadLen.c",
                      "void BadLen(void) {\n"
                      "    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n"
                      "    NI_SEND(MSG_PUT, F_DATA, F_KEEP, F_NOWAIT, "
                      "F_DEC, F_NULL);\n"
                      "    FREE_DB();\n"
                      "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(100);
    EXPECT_GT(result.count(FailureKind::LengthMismatch), 0);
}

TEST(Simulator, MissedWaitObserved)
{
    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec h;
    h.name = "NoWait";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    program.addSource("p/NoWait.c",
                      "void NoWait(void) {\n"
                      "    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n"
                      "    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, "
                      "F_DEC, F_NULL);\n"
                      "    FREE_DB();\n"
                      "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(50);
    EXPECT_GT(result.count(FailureKind::MissedWait), 0);
}

TEST(Simulator, RawPollSatisfiesWaitDynamically)
{
    // The send-wait checker's false positive: a raw status poll really
    // does complete the wait on the (simulated) hardware.
    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec h;
    h.name = "RawPoll";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    program.addSource("p/RawPoll.c",
                      "void RawPoll(void) {\n"
                      "    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;\n"
                      "    PI_SEND(F_NODATA, F_KEEP, F_SWAP, F_WAIT, "
                      "F_DEC, F_NULL);\n"
                      "    while (PI_STATUS_REG() == 0) {\n"
                      "        ;\n"
                      "    }\n"
                      "    FREE_DB();\n"
                      "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(200);
    EXPECT_EQ(result.count(FailureKind::MissedWait), 0);
}

TEST(Simulator, StaleDirectoryObserved)
{
    lang::Program program;
    flash::ProtocolSpec spec;
    flash::HandlerSpec h;
    h.name = "DropDir";
    h.kind = flash::HandlerKind::Hardware;
    spec.addHandler(h);
    program.addSource("p/DropDir.c", "void DropDir(void) {\n"
                                     "    DIR_LOAD();\n"
                                     "    DIR_WRITE(state, DIRTY);\n"
                                     "    FREE_DB();\n"
                                     "}\n");
    WorkloadDriver driver(program, spec);
    WorkloadResult result = driver.run(50);
    EXPECT_GT(result.count(FailureKind::StaleDirectory), 0);
}

TEST(Simulator, GeneratedProtocolFailuresMatchSeededBugClasses)
{
    // bitvector seeds: 4 races, 3 msglen bugs, 2 double frees, 1 lanes
    // bug. A long dynamic run should observe (at least) corruption,
    // double frees, and length mismatches — sporadically.
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));
    WorkloadDriver driver(*loaded.program, loaded.gen.spec,
                          MagicNode::Config(), 0x1234);
    WorkloadResult result = driver.run(60000);
    EXPECT_GT(result.messages_handled, 5000u);
    EXPECT_GT(result.count(FailureKind::DoubleFree), 0);
    EXPECT_GT(result.count(FailureKind::LengthMismatch), 0);
    // The race needs a slow fill AND the corner-case path: very rare.
    // We assert only that the run did not somehow observe it instantly.
    auto it = result.first_manifestation.find(FailureKind::RaceCorruption);
    if (it != result.first_manifestation.end())
        EXPECT_GT(it->second, 10u);
}

TEST(Simulator, CleanProtocolOfCorpusKindsStable)
{
    // coma seeds no dynamically-manifesting buffer bugs (only hook and
    // directory-FP seeds); its dynamic run must not exhaust the pool.
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("coma"));
    WorkloadDriver driver(*loaded.program, loaded.gen.spec);
    WorkloadResult result = driver.run(20000);
    EXPECT_FALSE(result.deadlocked);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));
    WorkloadDriver a(*loaded.program, loaded.gen.spec,
                     MagicNode::Config(), 99);
    WorkloadDriver b(*loaded.program, loaded.gen.spec,
                     MagicNode::Config(), 99);
    WorkloadResult ra = a.run(5000);
    WorkloadResult rb = b.run(5000);
    EXPECT_EQ(ra.messages_handled, rb.messages_handled);
    EXPECT_EQ(ra.failures.size(), rb.failures.size());
    EXPECT_EQ(ra.cycles, rb.cycles);
}

} // namespace
} // namespace mc::sim
