#include "sim/machine.h"

#include <gtest/gtest.h>

namespace mc::sim {
namespace {

MagicNode::Config
smallConfig()
{
    MagicNode::Config config;
    config.buffer_count = 4;
    config.lane_queue_capacity = 2;
    config.slow_fill_percent = 0;
    return config;
}

TEST(MagicNode, DeliverAllocatesOneBuffer)
{
    MagicNode node(smallConfig(), 1);
    EXPECT_TRUE(node.deliverMessage(5, "H"));
    EXPECT_EQ(node.freeBufferCount(), 3);
    EXPECT_EQ(node.payload(), 5);
    node.freeCurrentBuffer();
    node.finishHandler();
    EXPECT_EQ(node.freeBufferCount(), 4);
}

TEST(MagicNode, LeakReportedAndSlotLost)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    EXPECT_TRUE(node.finishHandler()); // never freed
    EXPECT_EQ(node.freeBufferCount(), 3);
}

TEST(MagicNode, PoolExhaustionAfterLeaks)
{
    MagicNode node(smallConfig(), 1);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(node.deliverMessage(i, "H"));
        node.finishHandler(); // leak each time
    }
    EXPECT_FALSE(node.deliverMessage(9, "H"));
    EXPECT_EQ(node.failureCount(FailureKind::BufferExhaustion), 1);
}

TEST(MagicNode, DoubleFreeDetected)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.freeCurrentBuffer();
    node.freeCurrentBuffer();
    EXPECT_EQ(node.failureCount(FailureKind::DoubleFree), 1);
}

TEST(MagicNode, UseAfterFreeOnRead)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.freeCurrentBuffer();
    node.readBuffer();
    EXPECT_EQ(node.failureCount(FailureKind::UseAfterFree), 1);
}

TEST(MagicNode, SlowFillRaceWindow)
{
    MagicNode::Config config = smallConfig();
    config.slow_fill_percent = 100;
    config.slow_fill_delay = 50;
    MagicNode node(config, 1);
    node.deliverMessage(1, "H");
    // Immediate read: inside the fill window.
    node.readBuffer();
    EXPECT_EQ(node.failureCount(FailureKind::RaceCorruption), 1);
    // After waiting, reads are clean and return the payload.
    node.waitForFill();
    EXPECT_EQ(node.readBuffer(), 1);
    EXPECT_EQ(node.failureCount(FailureKind::RaceCorruption), 1);
}

TEST(MagicNode, LengthMismatchBothDirections)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.setHeaderLength(kLenNoData);
    node.send('N', /*has_data=*/true, false, 0);
    node.setHeaderLength(kLenCacheline);
    node.send('N', /*has_data=*/false, false, 0);
    node.setHeaderLength(kLenCacheline);
    node.send('N', /*has_data=*/true, false, 0); // consistent
    EXPECT_EQ(node.failureCount(FailureKind::LengthMismatch), 2);
}

TEST(MagicNode, LaneQueueOverflow)
{
    MagicNode node(smallConfig(), 1); // capacity 2
    node.deliverMessage(1, "H");
    node.setHeaderLength(kLenNoData);
    node.send('N', false, false, 0);
    node.send('N', false, false, 0);
    EXPECT_EQ(node.failureCount(FailureKind::LaneOverflow), 0);
    node.send('N', false, false, 0);
    EXPECT_EQ(node.failureCount(FailureKind::LaneOverflow), 1);
}

TEST(MagicNode, WaitForSpaceDrainsLane)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.setHeaderLength(kLenNoData);
    node.send('N', false, false, 0);
    node.send('N', false, false, 0);
    node.waitForSpace(0);
    node.send('N', false, false, 0);
    node.send('N', false, false, 0);
    EXPECT_EQ(node.failureCount(FailureKind::LaneOverflow), 0);
}

TEST(MagicNode, LanesDrainBetweenMessages)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.setHeaderLength(kLenNoData);
    node.send('N', false, false, 0);
    node.send('N', false, false, 0);
    node.freeCurrentBuffer();
    node.finishHandler();
    node.deliverMessage(2, "H"); // drains one slot per lane
    node.send('N', false, false, 0);
    EXPECT_EQ(node.failureCount(FailureKind::LaneOverflow), 0);
}

TEST(MagicNode, MissedWaitAtHandlerEnd)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.setHeaderLength(kLenNoData);
    node.send('P', false, /*wait=*/true, -1);
    node.freeCurrentBuffer();
    node.finishHandler();
    EXPECT_EQ(node.failureCount(FailureKind::MissedWait), 1);
}

TEST(MagicNode, WaitClearsPending)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.setHeaderLength(kLenNoData);
    node.send('P', false, true, -1);
    node.waitForReply('P');
    node.freeCurrentBuffer();
    node.finishHandler();
    EXPECT_EQ(node.failureCount(FailureKind::MissedWait), 0);
}

TEST(MagicNode, WrongInterfaceWaitFlagged)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.send('P', false, true, -1);
    node.waitForReply('I');
    EXPECT_EQ(node.failureCount(FailureKind::MissedWait), 1);
}

TEST(MagicNode, PollSatisfiesWaitInvisibly)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.send('P', false, true, -1);
    EXPECT_EQ(node.pollStatus('P'), 1);
    node.freeCurrentBuffer();
    node.finishHandler();
    EXPECT_EQ(node.failureCount(FailureKind::MissedWait), 0);
}

TEST(MagicNode, DirectoryStaleAfterDroppedModification)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.dirLoad();
    node.dirWrite(42);
    node.freeCurrentBuffer();
    node.finishHandler(); // modification dropped -> stale
    node.deliverMessage(2, "H");
    node.dirLoad();
    EXPECT_EQ(node.failureCount(FailureKind::StaleDirectory), 1);
}

TEST(MagicNode, WritebackKeepsDirectoryFresh)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.dirLoad();
    node.dirWrite(42);
    node.dirWriteback();
    node.freeCurrentBuffer();
    node.finishHandler();
    node.deliverMessage(2, "H");
    node.dirLoad();
    EXPECT_EQ(node.failureCount(FailureKind::StaleDirectory), 0);
    EXPECT_EQ(node.dirRead(), 42);
}

TEST(MagicNode, HandoffReturnsBufferWithoutLeak)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.markHandoff();
    EXPECT_FALSE(node.finishHandler());
    EXPECT_EQ(node.freeBufferCount(), 4);
}

TEST(MagicNode, MaybeFreeFollowsPayloadBit)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(0b0010, "H");
    EXPECT_EQ(node.maybeFreeBuffer(1), 1); // bit 1 set: frees
    EXPECT_FALSE(node.finishHandler());

    node.deliverMessage(0b0000, "H");
    EXPECT_EQ(node.maybeFreeBuffer(1), 0); // bit clear: keeps
    node.freeCurrentBuffer();
    node.finishHandler();
    EXPECT_EQ(node.failureCount(FailureKind::DoubleFree), 0);
}

TEST(MagicNode, AllocateWhileHoldingLeaksOldSlot)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    EXPECT_EQ(node.freeBufferCount(), 3);
    node.allocateBuffer(); // overwrites the current pointer
    EXPECT_EQ(node.freeBufferCount(), 2);
    node.freeCurrentBuffer();
    node.finishHandler();
    // The original message buffer is stranded.
    EXPECT_EQ(node.freeBufferCount(), 3);
}

TEST(MagicNode, FirstFailureMessageTracksIndex)
{
    MagicNode node(smallConfig(), 1);
    node.deliverMessage(1, "H");
    node.freeCurrentBuffer();
    node.finishHandler();
    node.deliverMessage(2, "H");
    node.freeCurrentBuffer();
    node.freeCurrentBuffer(); // double free on message #2
    node.finishHandler();
    EXPECT_EQ(node.firstFailureMessage(FailureKind::DoubleFree), 2u);
    EXPECT_EQ(node.firstFailureMessage(FailureKind::RaceCorruption), 0u);
}

} // namespace
} // namespace mc::sim
