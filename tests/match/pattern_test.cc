#include "match/pattern.h"
#include "lang/program.h"

#include <gtest/gtest.h>

#include <set>

namespace mc::match {
namespace {

using lang::Program;

struct Fixture
{
    PatternContext pc;
    Program program;

    const lang::Stmt*
    stmt(const std::string& body, std::size_t index = 0)
    {
        static int n = 0;
        program.addSource("t" + std::to_string(++n) + ".c",
                          "void f(void) {" + body + "}");
        return program.functions().back()->body->stmts[index];
    }
};

std::vector<WildcardDecl>
scalars(std::initializer_list<const char*> names)
{
    std::vector<WildcardDecl> out;
    for (const char* name : names)
        out.push_back(WildcardDecl{name, WildcardKind::Scalar});
    return out;
}

TEST(Pattern, ExactCallMatch)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ WAIT_FOR_DB_FULL(addr); }",
                                 scalars({"addr"}));
    auto m = p.matchStmt(*f.stmt("WAIT_FOR_DB_FULL(hdr_addr);"));
    ASSERT_TRUE(m.has_value());
    const lang::Expr* bound = m->lookup("addr");
    ASSERT_NE(bound, nullptr);
    EXPECT_EQ(lang::exprToString(*bound), "hdr_addr");
}

TEST(Pattern, WildcardBindsComplexExpression)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ MISCBUS_READ_DB(addr, buf); }",
                                 scalars({"addr", "buf"}));
    auto m = p.matchStmt(
        *f.stmt("MISCBUS_READ_DB(base + 8 * i, bufs[i]);"));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(lang::exprToString(*m->lookup("addr")), "(base + (8 * i))");
    EXPECT_EQ(lang::exprToString(*m->lookup("buf")), "bufs[i]");
}

TEST(Pattern, DifferentCalleeDoesNotMatch)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ WAIT_FOR_DB_FULL(addr); }",
                                 scalars({"addr"}));
    EXPECT_FALSE(p.matchStmt(*f.stmt("OTHER_MACRO(x);")).has_value());
}

TEST(Pattern, ArityMustAgree)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ M(a, b); }", scalars({"a", "b"}));
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(x);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(x, y, z);")).has_value());
}

TEST(Pattern, AssignmentTemplateFromFigure3)
{
    Fixture f;
    Pattern p = Pattern::compile(
        f.pc, "{ HANDLER_GLOBALS(header.nh.len) = LEN_NODATA }", {});
    EXPECT_TRUE(
        p.matchStmt(*f.stmt("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"))
            .has_value());
    EXPECT_FALSE(
        p.matchStmt(*f.stmt("HANDLER_GLOBALS(header.nh.len) = LEN_WORD;"))
            .has_value());
}

TEST(Pattern, ConsistentBindingRequired)
{
    Fixture f;
    // Same wildcard twice: both occurrences must match equal expressions.
    Pattern p = Pattern::compile(f.pc, "{ M(v, v); }", scalars({"v"}));
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(x, x);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(x, y);")).has_value());
}

TEST(Pattern, ScalarRejectsFloatAndString)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ M(v); }", scalars({"v"}));
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(3);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(1.5);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(\"s\");")).has_value());
}

TEST(Pattern, IdentKindRequiresIdentifier)
{
    Fixture f;
    Pattern p = Pattern::compile(
        f.pc, "{ M(v); }", {WildcardDecl{"v", WildcardKind::Ident}});
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(name);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(a + b);")).has_value());
}

TEST(Pattern, ConstantKind)
{
    Fixture f;
    Pattern p = Pattern::compile(
        f.pc, "{ M(v); }", {WildcardDecl{"v", WildcardKind::Constant}});
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(7);")).has_value());
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(LEN_WORD);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("M(x + 1);")).has_value());
}

TEST(Pattern, AnyExprMatchesEverything)
{
    Fixture f;
    Pattern p = Pattern::compile(
        f.pc, "{ M(v); }", {WildcardDecl{"v", WildcardKind::AnyExpr}});
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(1.5);")).has_value());
    EXPECT_TRUE(p.matchStmt(*f.stmt("M(f(g(x)));")).has_value());
}

TEST(Pattern, AlternativesViaAddAlternatives)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ PI_SEND(F_DATA, k); }",
                                 scalars({"k"}));
    p.addAlternatives(Pattern::compile(f.pc, "{ IO_SEND(F_DATA, k); }",
                                       scalars({"k"})));
    EXPECT_EQ(p.alternativeCount(), 2u);
    EXPECT_TRUE(p.matchStmt(*f.stmt("PI_SEND(F_DATA, x);")).has_value());
    EXPECT_TRUE(p.matchStmt(*f.stmt("IO_SEND(F_DATA, y);")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("NI_SEND(F_DATA, y);")).has_value());
}

TEST(Pattern, MatchInStmtFindsNestedCall)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ ALLOCATE_DB(); }", {});
    // The allocation is buried in a condition.
    EXPECT_TRUE(
        p.matchInStmt(*f.stmt("if (ALLOCATE_DB()) { x = 1; }"))
            .has_value());
    // And inside an assignment RHS.
    EXPECT_TRUE(
        p.matchInStmt(*f.stmt("buf = ALLOCATE_DB();")).has_value());
}

TEST(Pattern, MatchInStmtFindsInReturnValue)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ g(x); }",
                                 scalars({"x"}));
    EXPECT_TRUE(p.matchInStmt(*f.stmt("return g(42);")).has_value());
}

TEST(Pattern, ReturnTemplateMatchesOnlyReturn)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ return; }", {});
    EXPECT_TRUE(p.matchStmt(*f.stmt("return;")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("x = 1;")).has_value());
}

TEST(Pattern, MemberChainsMatchStructurally)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ h.nh.len = v }", scalars({"v"}));
    EXPECT_TRUE(p.matchStmt(*f.stmt("h.nh.len = 4;")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("h.nh.op = 4;")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("g.nh.len = 4;")).has_value());
}

TEST(Pattern, MissingBracesRejected)
{
    Fixture f;
    EXPECT_THROW(Pattern::compile(f.pc, "WAIT(x);", {}), lang::ParseError);
}

TEST(Pattern, MultipleStatementsRejected)
{
    Fixture f;
    EXPECT_THROW(Pattern::compile(f.pc, "{ a(); b(); }", {}),
                 lang::ParseError);
}

TEST(Pattern, PrefilterRequiresTheMacroIdentifier)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ WAIT_FOR_DB_FULL(addr); }",
                                 scalars({"addr"}));
    std::set<std::string> with{"WAIT_FOR_DB_FULL", "x"};
    std::set<std::string> without{"OTHER", "x"};
    EXPECT_TRUE(p.couldMatch(with));
    EXPECT_FALSE(p.couldMatch(without));
}

TEST(Pattern, PrefilterAnyAlternativeSuffices)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ PI_SEND(F_DATA, k); }",
                                 scalars({"k"}));
    p.addAlternatives(Pattern::compile(f.pc, "{ IO_SEND(F_DATA, k); }",
                                       scalars({"k"})));
    EXPECT_TRUE(p.couldMatch({"IO_SEND"}));
    EXPECT_TRUE(p.couldMatch({"PI_SEND"}));
    EXPECT_FALSE(p.couldMatch({"NI_SEND"}));
}

TEST(Pattern, PrefilterNeverRejectsAMatchingStatement)
{
    // Soundness: for a spread of pattern/statement pairs, whenever the
    // full matcher succeeds the prefilter must have said yes.
    Fixture f;
    const char* patterns[] = {
        "{ WAIT_FOR_DB_FULL(v); }",
        "{ h.nh.len = v }",
        "{ M(v, v); }",
        "{ return; }",
    };
    const char* stmts[] = {
        "WAIT_FOR_DB_FULL(a);", "h.nh.len = 3;", "M(q, q);",
        "x = WAIT_FOR_DB_FULL(a) + 1;", "unrelated();",
    };
    for (const char* pattern_text : patterns) {
        Pattern p = Pattern::compile(f.pc, pattern_text, scalars({"v"}));
        for (const char* stmt_text : stmts) {
            const lang::Stmt* stmt = f.stmt(stmt_text);
            std::set<std::string> idents;
            Pattern::collectIdents(*stmt, idents);
            if (p.matchInStmt(*stmt).has_value())
                EXPECT_TRUE(p.couldMatch(idents))
                    << pattern_text << " vs " << stmt_text;
        }
    }
}

TEST(Pattern, PrefilterPureWildcardPatternAlwaysCandidate)
{
    Fixture f;
    Pattern p = Pattern::compile(
        f.pc, "{ v }", {WildcardDecl{"v", WildcardKind::AnyExpr}});
    EXPECT_TRUE(p.couldMatch({}));
}

TEST(Pattern, UnaryAndBinaryOperatorsMustAgree)
{
    Fixture f;
    Pattern p = Pattern::compile(f.pc, "{ x = a + b }",
                                 scalars({"a", "b"}));
    EXPECT_TRUE(p.matchStmt(*f.stmt("x = p + q;")).has_value());
    EXPECT_FALSE(p.matchStmt(*f.stmt("x = p - q;")).has_value());
}

} // namespace
} // namespace mc::match
