/**
 * @file
 * Shard supervisor: dispatch/response round-trips, crash requeue and
 * per-unit quarantine, heartbeat-vs-deadline supervision, exec-failure
 * containment, and spawn exhaustion. Workers are /bin/sh one-liners so
 * the tests exercise the real fork/socketpair/poll machinery without
 * dragging in the checking engine.
 */
#include "shard/supervisor.h"

#include "support/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace mc::shard {
namespace {

std::string
renderRequest(const std::vector<std::uint64_t>& units)
{
    std::string line = "req";
    for (std::uint64_t u : units)
        line += " u" + std::to_string(u);
    return line;
}

/** Hook state shared by most tests. */
struct Recorder
{
    std::map<std::uint64_t, unsigned> resolved; // unit -> attempts
    std::vector<std::string> lines;
    std::map<std::uint64_t, unsigned> quarantined; // unit -> crashes
    std::set<std::string> actions;

    SupervisorHooks hooks()
    {
        SupervisorHooks h;
        h.make_request = renderRequest;
        h.on_result = [this](const std::vector<std::uint64_t>& units,
                             const std::string& line, unsigned,
                             const std::vector<unsigned>& attempts) {
            lines.push_back(line);
            for (std::size_t i = 0; i < units.size(); ++i)
                resolved[units[i]] = attempts[i];
        };
        h.on_quarantine = [this](std::uint64_t unit, unsigned crashes) {
            quarantined[unit] = crashes;
        };
        h.on_event = [this](unsigned, const char* action,
                            std::uint64_t) { actions.insert(action); };
        return h;
    }
};

std::vector<std::uint64_t>
iota(std::uint64_t n)
{
    std::vector<std::uint64_t> units;
    for (std::uint64_t u = 0; u < n; ++u)
        units.push_back(u);
    return units;
}

TEST(Supervisor, EchoWorkersResolveEveryUnitOnce)
{
    SupervisorOptions opts;
    opts.workers = 2;
    opts.batch_units = 4;
    opts.worker_argv = {"/bin/sh", "-c",
                        "while read line; do echo \"ok $line\"; done"};
    Recorder rec;
    Supervisor(opts).run(iota(10), rec.hooks());

    ASSERT_EQ(rec.resolved.size(), 10u);
    for (const auto& [unit, attempts] : rec.resolved) {
        EXPECT_LT(unit, 10u);
        EXPECT_EQ(attempts, 1u);
    }
    EXPECT_TRUE(rec.quarantined.empty());
    // 10 units in batches of 4 -> 3 request/response round-trips.
    ASSERT_EQ(rec.lines.size(), 3u);
    for (const std::string& line : rec.lines)
        EXPECT_EQ(line.rfind("ok req", 0), 0u) << line;
    EXPECT_TRUE(rec.actions.count("spawn"));
}

TEST(Supervisor, HeartbeatLinesAreDiscardedNotResponses)
{
    SupervisorOptions opts;
    opts.workers = 1;
    opts.batch_units = 8;
    // Two heartbeat lines precede every real response.
    opts.worker_argv = {
        "/bin/sh", "-c",
        "while read line; do"
        " echo '{\"heartbeat\": 1}'; echo '{\"heartbeat\": 2}';"
        " echo \"ok $line\"; done"};
    Recorder rec;
    Supervisor(opts).run(iota(6), rec.hooks());

    EXPECT_EQ(rec.resolved.size(), 6u);
    ASSERT_EQ(rec.lines.size(), 1u);
    EXPECT_EQ(rec.lines[0].rfind("ok req", 0), 0u);
}

TEST(Supervisor, PoisonUnitQuarantinesAloneInnocentsRetry)
{
    SupervisorOptions opts;
    opts.workers = 1;
    opts.batch_units = 5;
    opts.backoff_base_ms = 1;
    opts.crashes_to_quarantine = 2;
    // Any request mentioning unit 7 kills the worker mid-batch.
    opts.worker_argv = {"/bin/sh", "-c",
                        "while read line; do case \"$line\" in"
                        " *u7*) exit 9;;"
                        " *) echo \"ok $line\";; esac; done"};
    Recorder rec;
    Supervisor(opts).run(iota(10), rec.hooks());

    // Unit 7 crossed the threshold alone; everyone else resolved.
    ASSERT_EQ(rec.quarantined.size(), 1u);
    EXPECT_EQ(rec.quarantined.count(7), 1u);
    EXPECT_EQ(rec.quarantined[7], 2u);
    EXPECT_EQ(rec.resolved.size(), 9u);
    EXPECT_EQ(rec.resolved.count(7), 0u);
    // Batch {0..4} succeeded first try; {5,6,8,9} rode along with the
    // poison unit once, then resolved as singletons on attempt 2.
    for (std::uint64_t u : {0, 1, 2, 3, 4})
        EXPECT_EQ(rec.resolved[u], 1u) << "unit " << u;
    for (std::uint64_t u : {5, 6, 8, 9})
        EXPECT_EQ(rec.resolved[u], 2u) << "unit " << u;
    EXPECT_TRUE(rec.actions.count("crash"));
}

TEST(Supervisor, HungWorkerWithLiveHeartbeatHitsBatchDeadline)
{
    SupervisorOptions opts;
    opts.workers = 1;
    opts.batch_units = 2;
    opts.batch_timeout_ms = 200;
    opts.backoff_base_ms = 1;
    opts.crashes_to_quarantine = 1;
    // Never answers, but heartbeats keep the activity clock fresh —
    // only the per-batch deadline can catch this worker.
    opts.worker_argv = {"/bin/sh", "-c",
                        "read line; while :; do"
                        " echo '{\"heartbeat\": 1}'; sleep 0.05; done"};
    Recorder rec;
    Supervisor(opts).run(iota(2), rec.hooks());

    EXPECT_TRUE(rec.resolved.empty());
    EXPECT_EQ(rec.quarantined.size(), 2u);
    EXPECT_TRUE(rec.actions.count("timeout_kill"));
}

TEST(Supervisor, ExecFailureDegradesToQuarantineNotHang)
{
    SupervisorOptions opts;
    opts.workers = 1;
    opts.batch_units = 2;
    opts.backoff_base_ms = 1;
    opts.crashes_to_quarantine = 2;
    // exec fails in the child; the supervisor sees an instant EOF and
    // the normal crash machinery contains it.
    opts.worker_argv = {"/nonexistent/mccheck-shard-worker"};
    Recorder rec;
    Supervisor(opts).run(iota(3), rec.hooks());

    EXPECT_TRUE(rec.resolved.empty());
    EXPECT_EQ(rec.quarantined.size(), 3u);
    EXPECT_TRUE(rec.actions.count("crash"));
}

TEST(Supervisor, EmptyUnitListIsANoOp)
{
    SupervisorOptions opts;
    opts.worker_argv = {"/bin/sh", "-c", "cat"};
    Recorder rec;
    Supervisor(opts).run({}, rec.hooks());
    EXPECT_TRUE(rec.resolved.empty());
    EXPECT_TRUE(rec.actions.empty());
}

TEST(Supervisor, MissingWorkerCommandThrows)
{
    Recorder rec;
    EXPECT_THROW(Supervisor(SupervisorOptions{}).run(iota(1), rec.hooks()),
                 std::runtime_error);
}

#if defined(MCHECK_FAULT_INJECTION)

struct SupervisorFault : ::testing::Test
{
    void SetUp() override { support::fault::disarm(); }
    void TearDown() override { support::fault::disarm(); }
};

TEST_F(SupervisorFault, SpawnExhaustionThrowsWithTheInjectedSite)
{
    ASSERT_TRUE(support::fault::arm("worker.spawn:1"));
    SupervisorOptions opts;
    opts.workers = 2;
    opts.backoff_base_ms = 1;
    opts.max_spawn_attempts = 3;
    opts.worker_argv = {"/bin/sh", "-c", "cat"};
    Recorder rec;
    try {
        Supervisor(opts).run(iota(4), rec.hooks());
        FAIL() << "expected spawn exhaustion to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what())
                      .find("shard workers exhausted spawn attempts"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("worker.spawn"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(rec.resolved.empty());
    EXPECT_TRUE(rec.actions.count("spawn_failure"));
}

#endif // MCHECK_FAULT_INJECTION

} // namespace
} // namespace mc::shard
