/**
 * @file
 * Analysis-cache tests: on-disk round-trips, the corruption contract
 * (truncated / version-mismatched / bit-flipped entries fall back to
 * cold analysis with a warning — never a crash, never stale findings),
 * fingerprint sensitivity, eviction, and warm-vs-cold byte-identity of
 * the full checking pipeline.
 */
#include "cache/analysis_cache.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "corpus/profile.h"
#include "lang/fingerprint.h"
#include "support/hash.h"
#include "support/version.h"
#include "support/witness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mc::cache {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed on destruction. */
class TempCacheDir
{
  public:
    explicit TempCacheDir(const std::string& tag)
        : path_(fs::path(::testing::TempDir()) /
                ("mccheck_cache_test_" + tag))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempCacheDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

CachedUnit
sampleUnit()
{
    CachedUnit unit;
    unit.checker = "lanes";
    unit.function = "PILocalGet";
    unit.state = "applied 3\nfunction PILocalGet\n  calls helper 2\n";
    CachedDiagnostic d;
    d.severity = 1;
    d.file = "sci/PILocalGet.c";
    d.line = 12;
    d.column = 5;
    d.checker = "lanes";
    d.rule = "lane-overflow";
    d.message = "message with spaces, 100% odd chars & a\ttab";
    d.trace = {"PILocalGet -> helper", "helper: SEND at line 9"};
    CachedWitnessStep step;
    step.from = "start";
    step.to = "buf checked";
    step.file = "sci/PILocalGet.c";
    step.line = 9;
    step.column = 3;
    step.note = "rule lane-overflow, addr = h->addr";
    d.wsteps.push_back(step);
    step.to = "stop";
    step.note = "rule done";
    d.wsteps.push_back(step);
    d.wblocks = {0, 2, 5};
    d.wtruncated = true;
    unit.diags.push_back(d);
    d.trace.clear();
    d.wsteps.clear();
    d.wblocks.clear();
    d.wtruncated = false;
    d.severity = 0;
    d.message = "second finding";
    unit.diags.push_back(d);
    return unit;
}

void
expectSameUnit(const CachedUnit& a, const CachedUnit& b)
{
    EXPECT_EQ(a.checker, b.checker);
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.state, b.state);
    ASSERT_EQ(a.diags.size(), b.diags.size());
    for (std::size_t i = 0; i < a.diags.size(); ++i) {
        EXPECT_EQ(a.diags[i].severity, b.diags[i].severity);
        EXPECT_EQ(a.diags[i].file, b.diags[i].file);
        EXPECT_EQ(a.diags[i].line, b.diags[i].line);
        EXPECT_EQ(a.diags[i].column, b.diags[i].column);
        EXPECT_EQ(a.diags[i].checker, b.diags[i].checker);
        EXPECT_EQ(a.diags[i].rule, b.diags[i].rule);
        EXPECT_EQ(a.diags[i].message, b.diags[i].message);
        EXPECT_EQ(a.diags[i].trace, b.diags[i].trace);
        EXPECT_EQ(a.diags[i].wblocks, b.diags[i].wblocks);
        EXPECT_EQ(a.diags[i].wtruncated, b.diags[i].wtruncated);
        ASSERT_EQ(a.diags[i].wsteps.size(), b.diags[i].wsteps.size());
        for (std::size_t s = 0; s < a.diags[i].wsteps.size(); ++s) {
            const CachedWitnessStep& ws = a.diags[i].wsteps[s];
            const CachedWitnessStep& bs = b.diags[i].wsteps[s];
            EXPECT_EQ(ws.from, bs.from);
            EXPECT_EQ(ws.to, bs.to);
            EXPECT_EQ(ws.file, bs.file);
            EXPECT_EQ(ws.line, bs.line);
            EXPECT_EQ(ws.column, bs.column);
            EXPECT_EQ(ws.note, bs.note);
        }
    }
}

TEST(CacheEncoding, RoundTripsEveryField)
{
    CachedUnit unit = sampleUnit();
    std::string text = AnalysisCache::encodeUnit(unit);
    CachedUnit decoded;
    std::string error;
    ASSERT_TRUE(AnalysisCache::decodeUnit(text, decoded, error)) << error;
    expectSameUnit(unit, decoded);
}

TEST(CacheEncoding, RoundTripsEmptyUnit)
{
    CachedUnit unit;
    unit.checker = "no_float";
    unit.function = "f";
    std::string text = AnalysisCache::encodeUnit(unit);
    CachedUnit decoded;
    std::string error;
    ASSERT_TRUE(AnalysisCache::decodeUnit(text, decoded, error)) << error;
    expectSameUnit(unit, decoded);
}

TEST(CacheEncoding, RejectsEveryTruncation)
{
    std::string text = AnalysisCache::encodeUnit(sampleUnit());
    for (std::size_t len = 0; len < text.size(); ++len) {
        CachedUnit decoded;
        std::string error;
        EXPECT_FALSE(AnalysisCache::decodeUnit(text.substr(0, len),
                                               decoded, error))
            << "prefix of length " << len << " decoded successfully";
        EXPECT_FALSE(error.empty()) << "no reason for prefix " << len;
    }
}

TEST(CacheEncoding, RejectsEverySingleBitFlip)
{
    std::string text = AnalysisCache::encodeUnit(sampleUnit());
    for (std::size_t i = 0; i < text.size(); ++i) {
        std::string flipped = text;
        flipped[i] = static_cast<char>(flipped[i] ^ 0x20);
        if (flipped == text)
            continue; // the XOR was a no-op for this byte
        CachedUnit decoded;
        std::string error;
        EXPECT_FALSE(AnalysisCache::decodeUnit(flipped, decoded, error))
            << "bit flip at offset " << i << " decoded successfully";
    }
}

TEST(CacheEncoding, RejectsFormatAndToolVersionMismatch)
{
    // Re-checksum the tampered bodies so the version gate itself (not the
    // checksum) is what rejects them.
    auto reseal = [](std::string body) {
        return body + "sum " + support::hashHex(support::fnv1a(body)) +
               "\n";
    };
    std::string text = AnalysisCache::encodeUnit(sampleUnit());
    std::string body = text.substr(0, text.rfind("sum "));
    std::string header = body.substr(0, body.find('\n'));
    std::string rest = body.substr(body.find('\n'));

    CachedUnit decoded;
    std::string error;
    std::string wrong_format = reseal("mccheck-cache 999 " +
                                      std::string(support::kToolVersion) +
                                      rest);
    EXPECT_FALSE(AnalysisCache::decodeUnit(wrong_format, decoded, error));
    EXPECT_EQ(error, "cache format version mismatch");

    std::string wrong_tool =
        reseal("mccheck-cache " + std::to_string(kCacheFormatVersion) +
               " 0.0.1" + rest);
    EXPECT_FALSE(AnalysisCache::decodeUnit(wrong_tool, decoded, error));
    EXPECT_EQ(error, "tool version mismatch");
    (void)header;
}

TEST(CacheStore, PersistsAcrossInstances)
{
    TempCacheDir dir("persist");
    CachedUnit unit = sampleUnit();
    {
        AnalysisCache cache(dir.str());
        cache.store(42, unit);
        EXPECT_EQ(cache.stats().stores, 1u);
    }
    AnalysisCache cache(dir.str());
    CachedUnit loaded;
    ASSERT_TRUE(cache.lookup(42, loaded));
    expectSameUnit(unit, loaded);
    EXPECT_EQ(cache.stats().hits, 1u);
    // A different key is a plain miss: no warning, nothing corrupt.
    EXPECT_FALSE(cache.lookup(43, loaded));
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().corrupt, 0u);
    EXPECT_TRUE(cache.takeWarnings().empty());
}

TEST(CacheStore, TruncatedEntryFallsBackColdAndIsDeleted)
{
    TempCacheDir dir("truncated");
    AnalysisCache cache(dir.str());
    cache.store(7, sampleUnit());
    std::string path = cache.entryPath(7);
    fs::resize_file(path, 20);

    CachedUnit loaded;
    EXPECT_FALSE(cache.lookup(7, loaded));
    EXPECT_EQ(cache.stats().corrupt, 1u);
    std::vector<std::string> warnings = cache.takeWarnings();
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("unusable"), std::string::npos);
    // Read-write mode deletes the corpse so the next store is clean.
    EXPECT_FALSE(fs::exists(path));
}

TEST(CacheStore, BitFlippedEntryFallsBackCold)
{
    TempCacheDir dir("bitflip");
    AnalysisCache cache(dir.str());
    cache.store(9, sampleUnit());
    std::string path = cache.entryPath(9);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 1);
    std::ofstream(path, std::ios::binary) << text;

    CachedUnit loaded;
    EXPECT_FALSE(cache.lookup(9, loaded));
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_FALSE(cache.takeWarnings().empty());
}

TEST(CacheStore, ReadonlyDropsStoresAndKeepsCorpses)
{
    TempCacheDir dir("readonly");
    {
        AnalysisCache rw(dir.str());
        rw.store(1, sampleUnit());
        fs::resize_file(rw.entryPath(1), 10);
    }
    AnalysisCache ro(dir.str(), /*readonly=*/true);
    EXPECT_TRUE(ro.readonly());
    CachedUnit loaded;
    EXPECT_FALSE(ro.lookup(1, loaded));
    // The corrupt entry stays on disk for post-mortem in readonly mode.
    EXPECT_TRUE(fs::exists(ro.entryPath(1)));
    ro.store(2, sampleUnit());
    EXPECT_EQ(ro.stats().stores, 0u);
    EXPECT_FALSE(fs::exists(ro.entryPath(2)));
}

TEST(CacheStore, MissingReadonlyDirectoryThrows)
{
    EXPECT_THROW(AnalysisCache("/nonexistent/mccheck/cache/dir",
                               /*readonly=*/true),
                 std::runtime_error);
}

TEST(CacheStore, TrimEvictsOldestEntriesFirst)
{
    TempCacheDir dir("trim");
    AnalysisCache cache(dir.str());
    for (std::uint64_t key = 1; key <= 3; ++key)
        cache.store(key, sampleUnit());
    // Age the entries explicitly — filesystem mtime granularity is too
    // coarse to rely on store order.
    auto now = fs::last_write_time(cache.entryPath(3));
    fs::last_write_time(cache.entryPath(1), now - std::chrono::hours(2));
    fs::last_write_time(cache.entryPath(2), now - std::chrono::hours(1));

    std::uintmax_t one_entry = fs::file_size(cache.entryPath(3));
    cache.trim(2 * one_entry);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath(1)));
    EXPECT_TRUE(fs::exists(cache.entryPath(2)));
    EXPECT_TRUE(fs::exists(cache.entryPath(3)));

    cache.trim(0);
    EXPECT_EQ(cache.stats().evictions, 3u);
    EXPECT_FALSE(fs::exists(cache.entryPath(2)));
    EXPECT_FALSE(fs::exists(cache.entryPath(3)));
}

TEST(CacheStore, TrimToleratesConcurrentPublisher)
{
    // Regression: trim scans the directory, then stats and removes the
    // entries it saw. A second process (or thread) publishing and
    // re-publishing entries in that window makes files appear, change
    // size, and vanish mid-scan; every filesystem call in trim must
    // tolerate that instead of throwing or double-counting evictions.
    TempCacheDir dir("trim_race");
    AnalysisCache writer(dir.str());
    AnalysisCache trimmer(dir.str());

    std::atomic<bool> done{false};
    std::thread publisher([&] {
        for (std::uint64_t round = 0; round < 50; ++round)
            for (std::uint64_t key = 1; key <= 20; ++key)
                writer.store(key, sampleUnit());
        done.store(true);
    });

    while (!done.load())
        trimmer.trim(1); // 1 byte: try to evict everything it sees
    publisher.join();
    trimmer.trim(1);

    // No exception escaped, and the survivors are decodable (trim never
    // removes half a file — entries are published by rename).
    std::uint64_t decodable = 0;
    for (const auto& entry : fs::directory_iterator(dir.str())) {
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        CachedUnit unit;
        std::string error;
        if (AnalysisCache::decodeUnit(os.str(), unit, error))
            ++decodable;
        else
            ADD_FAILURE() << "undecodable survivor " << entry.path()
                          << ": " << error;
    }
    (void)decodable;
}

// ---- fingerprint sensitivity ------------------------------------------

std::uint64_t
fingerprintOf(const std::string& source)
{
    lang::Program program;
    program.addSource("fp.c", source);
    auto fps = lang::fingerprintFunctions(program);
    EXPECT_EQ(fps.size(), 1u);
    return fps.begin()->second;
}

TEST(Fingerprint, StableAcrossRuns)
{
    const std::string src = "void H(void) { x = y + 1; }";
    EXPECT_EQ(fingerprintOf(src), fingerprintOf(src));
}

TEST(Fingerprint, ChangesWhenTokensChange)
{
    EXPECT_NE(fingerprintOf("void H(void) { x = y + 1; }"),
              fingerprintOf("void H(void) { x = y + 2; }"));
}

TEST(Fingerprint, ChangesWhenLinesShift)
{
    // Diagnostics carry line numbers, so a shifted body — identical
    // token text — must still invalidate.
    EXPECT_NE(fingerprintOf("void H(void) { x = y + 1; }"),
              fingerprintOf("\nvoid H(void) { x = y + 1; }"));
}

TEST(Fingerprint, IgnoresTrailingComment)
{
    // A comment after the last token moves no token and no line: replay
    // stays valid, so the fingerprint may (and does) stay put.
    EXPECT_EQ(fingerprintOf("void H(void) { x = y + 1; }"),
              fingerprintOf("void H(void) { x = y + 1; } /* note */"));
}

TEST(Fingerprint, DistinguishesFunctionsWithinAUnit)
{
    lang::Program program;
    program.addSource("two.c",
                      "void A(void) { x = 1; }\nvoid B(void) { x = 1; }");
    auto fps = lang::fingerprintFunctions(program);
    ASSERT_EQ(fps.size(), 2u);
    EXPECT_NE(fps.at("A"), fps.at("B"));
}

// ---- end-to-end: warm replay is byte-identical to cold ----------------

struct PipelineResult
{
    std::string text;
    std::string json;
    std::string sarif;
};

PipelineResult
runPipeline(const corpus::LoadedProtocol& loaded, AnalysisCache* cache,
            unsigned jobs)
{
    auto set = checkers::makeAllCheckers();
    support::DiagnosticSink sink;
    checkers::ParallelRunOptions options;
    options.jobs = jobs;
    options.cache = cache;
    checkers::runCheckersParallel(*loaded.program, loaded.gen.spec,
                                  set.pointers(), sink, options);
    const support::SourceManager& sm = loaded.program->sourceManager();
    PipelineResult out;
    std::ostringstream text, json, sarif;
    sink.print(text, &sm);
    sink.printJson(json, &sm);
    sink.printSarif(sarif, &sm);
    out.text = text.str();
    out.json = json.str();
    out.sarif = sarif.str();
    return out;
}

TEST(CachePipeline, WarmRunReplaysByteIdentical)
{
    TempCacheDir dir("pipeline");
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));

    PipelineResult uncached = runPipeline(loaded, nullptr, 2);
    ASSERT_FALSE(uncached.text.empty());

    AnalysisCache cold_cache(dir.str());
    PipelineResult cold = runPipeline(loaded, &cold_cache, 2);
    EXPECT_GT(cold_cache.stats().stores, 0u);
    EXPECT_EQ(cold_cache.stats().hits, 0u);

    AnalysisCache warm_cache(dir.str());
    PipelineResult warm = runPipeline(loaded, &warm_cache, 2);
    EXPECT_GT(warm_cache.stats().hits, 0u);
    EXPECT_EQ(warm_cache.stats().misses, 0u);

    EXPECT_EQ(uncached.text, cold.text);
    EXPECT_EQ(cold.text, warm.text);
    EXPECT_EQ(cold.json, warm.json);
    EXPECT_EQ(cold.sarif, warm.sarif);

    // jobs=1 with a cache still replays, and still matches.
    AnalysisCache warm1_cache(dir.str());
    PipelineResult warm1 = runPipeline(loaded, &warm1_cache, 1);
    EXPECT_GT(warm1_cache.stats().hits, 0u);
    EXPECT_EQ(cold.json, warm1.json);
}

TEST(CachePipeline, WitnessSurvivesWarmReplayByteIdentical)
{
    // Witnesses ride the cache: a warm run must replay the same witness
    // bytes a cold run captured, and witness-on entries must not collide
    // with the witness-off entries other tests stored (the config is part
    // of the unit key).
    TempCacheDir dir("pipeline_witness");
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));

    support::setWitnessConfig(true, support::kDefaultWitnessLimit);
    AnalysisCache cold_cache(dir.str());
    PipelineResult cold = runPipeline(loaded, &cold_cache, 2);
    EXPECT_GT(cold_cache.stats().stores, 0u);

    AnalysisCache warm_cache(dir.str());
    PipelineResult warm = runPipeline(loaded, &warm_cache, 2);
    support::setWitnessConfig(false, 0);

    EXPECT_GT(warm_cache.stats().hits, 0u);
    EXPECT_EQ(warm_cache.stats().misses, 0u);
    EXPECT_EQ(cold.text, warm.text);
    EXPECT_EQ(cold.json, warm.json);
    EXPECT_EQ(cold.sarif, warm.sarif);
    // The witness actually made it into the replayed output.
    EXPECT_NE(warm.json.find("\"witness\""), std::string::npos);
}

TEST(CachePipeline, CorruptedEntriesReanalyzeNotReplay)
{
    TempCacheDir dir("pipeline_corrupt");
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));

    AnalysisCache cold_cache(dir.str());
    PipelineResult cold = runPipeline(loaded, &cold_cache, 2);

    // Corrupt every third entry on disk; the warm run must notice each
    // one, re-analyze those units, and still produce identical bytes.
    std::size_t mangled = 0;
    std::size_t index = 0;
    for (const auto& e : fs::directory_iterator(dir.str()))
        if (e.path().extension() == ".mcu" && index++ % 3 == 0) {
            fs::resize_file(e.path(), fs::file_size(e.path()) / 2);
            ++mangled;
        }
    ASSERT_GT(mangled, 0u);

    AnalysisCache warm_cache(dir.str());
    PipelineResult warm = runPipeline(loaded, &warm_cache, 2);
    EXPECT_EQ(warm_cache.stats().corrupt, mangled);
    EXPECT_EQ(warm_cache.stats().misses, mangled);
    EXPECT_GT(warm_cache.stats().hits, 0u);
    EXPECT_EQ(cold.text, warm.text);
    EXPECT_EQ(cold.json, warm.json);
}

} // namespace
} // namespace mc::cache
