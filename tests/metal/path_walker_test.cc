#include "metal/path_walker.h"

#include "lang/program.h"

#include <gtest/gtest.h>

namespace mc::metal {
namespace {

/** Trivial state that records the statements visited, in order. */
struct TraceState
{
    std::shared_ptr<std::vector<std::string>> log =
        std::make_shared<std::vector<std::string>>();
    bool stop = false;

    std::string key() const { return stop ? "1" : "0"; }
    bool dead() const { return stop; }
};

struct Built
{
    lang::Program program;
    cfg::Cfg cfg;
};

std::unique_ptr<Built>
build(const std::string& body)
{
    auto b = std::make_unique<Built>();
    b->program.addSource("t.c", "void f(void) {" + body + "}");
    b->cfg = cfg::CfgBuilder::build(*b->program.findFunction("f"));
    return b;
}

TEST(PathWalker, VisitsEveryStatementOnce)
{
    auto b = build("a(); b(); c();");
    std::vector<std::string> seen;
    PathWalker<TraceState>::Hooks hooks;
    hooks.on_stmt = [&](TraceState&, const lang::Stmt& stmt) {
        seen.push_back(lang::stmtToString(stmt));
    };
    PathWalker<TraceState> walker(std::move(hooks));
    walker.walk(b->cfg, TraceState{});
    EXPECT_EQ(seen, (std::vector<std::string>{"a();", "b();", "c();"}));
}

TEST(PathWalker, ExitHookRunsPerDistinctExitState)
{
    auto b = build("if (c) { x(); }");
    int exits = 0;
    PathWalker<TraceState>::Hooks hooks;
    hooks.on_exit = [&](TraceState&) { ++exits; };
    PathWalker<TraceState> walker(std::move(hooks));
    walker.walk(b->cfg, TraceState{});
    // Both paths reach the exit in the same state: visited once.
    EXPECT_EQ(exits, 1);
}

TEST(PathWalker, BranchHookSeesBothEdges)
{
    auto b = build("if (c) { x(); } else { y(); }");
    std::vector<std::size_t> edges;
    PathWalker<TraceState>::Hooks hooks;
    hooks.on_branch = [&](TraceState&, const lang::Expr& cond,
                          std::size_t edge) {
        EXPECT_EQ(lang::exprToString(cond), "c");
        edges.push_back(edge);
    };
    PathWalker<TraceState> walker(std::move(hooks));
    walker.walk(b->cfg, TraceState{});
    ASSERT_EQ(edges.size(), 2u);
}

TEST(PathWalker, DeadStateStopsPath)
{
    auto b = build("a(); b();");
    int visited = 0;
    PathWalker<TraceState>::Hooks hooks;
    hooks.on_stmt = [&](TraceState& st, const lang::Stmt&) {
        ++visited;
        st.stop = true; // die after the first statement
    };
    PathWalker<TraceState> walker(std::move(hooks));
    walker.walk(b->cfg, TraceState{});
    EXPECT_EQ(visited, 1);
}

TEST(PathWalker, VisitCapReportsTruncation)
{
    auto b = build("if (a) x(); if (b) y(); if (c) z();");
    PathWalker<TraceState>::Hooks hooks;
    PathWalker<TraceState> walker(std::move(hooks), /*max_visits=*/2);
    auto result = walker.walk(b->cfg, TraceState{});
    EXPECT_TRUE(result.truncated);
    // A capped walk performs exactly max_visits fully-processed visits.
    // The off-by-one this pins down: counting before checking the cap
    // reported max_visits + 1, with the final visit's block never
    // actually processed.
    EXPECT_EQ(result.visits, 2u);
}

TEST(PathWalker, CapEqualToNeededVisitsDoesNotTruncate)
{
    // A cap exactly equal to the walk's natural visit count must let the
    // walk finish: every counted visit is fully processed, so nothing is
    // left when the counter reaches the cap.
    auto b = build("if (a) x(); if (b) y();");
    PathWalker<TraceState> uncapped(PathWalker<TraceState>::Hooks{});
    auto full = uncapped.walk(b->cfg, TraceState{});
    ASSERT_FALSE(full.truncated);
    ASSERT_GT(full.visits, 0u);

    PathWalker<TraceState> capped(PathWalker<TraceState>::Hooks{},
                                  /*max_visits=*/full.visits);
    auto result = capped.walk(b->cfg, TraceState{});
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.visits, full.visits);
    EXPECT_EQ(result.cache_hits, full.cache_hits);
}

/** State that counts how many times it is deep-copied. */
struct CopyCountState
{
    std::shared_ptr<int> copies = std::make_shared<int>(0);

    CopyCountState() = default;
    CopyCountState(const CopyCountState& o) : copies(o.copies)
    {
        ++*copies;
    }
    CopyCountState(CopyCountState&&) = default;
    CopyCountState&
    operator=(const CopyCountState& o)
    {
        copies = o.copies;
        ++*copies;
        return *this;
    }
    CopyCountState& operator=(CopyCountState&&) = default;

    std::string key() const { return "k"; }
    bool dead() const { return false; }
};

TEST(PathWalker, StraightLineWalkCopiesStateOnlyAtSeed)
{
    // Single-successor blocks hand their state to the successor by move;
    // the only copy is seeding the entry from the caller's initial state.
    auto b = build("a(); b(); c();");
    PathWalker<CopyCountState> walker(PathWalker<CopyCountState>::Hooks{});
    CopyCountState initial;
    auto result = walker.walk(b->cfg, initial);
    EXPECT_GT(result.visits, 0u);
    EXPECT_EQ(*initial.copies, 1);
}

TEST(PathWalker, BranchForkCopiesStateOncePerExtraEdge)
{
    // A two-way branch needs one copy (first edge); the last edge steals
    // the popped entry's state. One branch + the seed copy = 2.
    auto b = build("if (c) { x(); } else { y(); } z();");
    PathWalker<CopyCountState> walker(PathWalker<CopyCountState>::Hooks{});
    CopyCountState initial;
    auto result = walker.walk(b->cfg, initial);
    EXPECT_GT(result.visits, 0u);
    EXPECT_EQ(*initial.copies, 2);
}

// ---------------------------------------------------------------------
// Correlated-branch pruning (the Section 5 "more elaborate analysis")
// ---------------------------------------------------------------------

/** State counting how many exits were reached. */
struct CountState
{
    int marker = 0;
    std::string key() const { return std::to_string(marker); }
    bool dead() const { return false; }
};

std::uint64_t
prunedEdges(const std::string& body)
{
    auto b = build(body);
    PathWalker<CountState>::Hooks hooks;
    PathWalker<CountState>::WalkOptions options;
    options.prune_strategy = PruneStrategy::Correlated;
    PathWalker<CountState> walker(std::move(hooks), options);
    return walker.walk(b->cfg, CountState{}).pruned_edges;
}

TEST(PathWalker, ResultCountsCacheHitsAndPeakFrontier)
{
    // A diamond whose arms re-converge in the same state: the join block
    // is reached twice but visited once — the second arrival is a cache
    // hit. The branch forks two pending entries, so the frontier peaks
    // at two or more.
    auto b = build("if (c) { x(); } else { y(); } z();");
    PathWalker<TraceState> walker(PathWalker<TraceState>::Hooks{});
    auto result = walker.walk(b->cfg, TraceState{});
    EXPECT_GT(result.visits, 0u);
    EXPECT_GE(result.cache_hits, 1u);
    EXPECT_GE(result.peak_frontier, 2u);
    EXPECT_FALSE(result.truncated);
}

TEST(PathWalker, StraightLineHasNoCacheHits)
{
    auto b = build("a(); b(); c();");
    PathWalker<TraceState> walker(PathWalker<TraceState>::Hooks{});
    auto result = walker.walk(b->cfg, TraceState{});
    EXPECT_EQ(result.cache_hits, 0u);
    EXPECT_EQ(result.peak_frontier, 1u);
}

TEST(PathWalkerPruning, SameConditionTwicePrunesImpossiblePaths)
{
    // 4 static paths, 2 impossible.
    EXPECT_EQ(prunedEdges("if (c) { a(); } else { b(); }"
                          "if (c) { d(); } else { e(); }"),
              2u);
}

TEST(PathWalkerPruning, NegatedConditionCorrelates)
{
    EXPECT_EQ(prunedEdges("if (c) { a(); }"
                          "if (!c) { b(); }"),
              2u);
}

TEST(PathWalkerPruning, IndependentConditionsNotPruned)
{
    EXPECT_EQ(prunedEdges("if (c) { a(); } if (d) { b(); }"), 0u);
}

TEST(PathWalkerPruning, AssignmentInvalidatesCorrelation)
{
    // c changes between the tests: both outcomes are possible again.
    EXPECT_EQ(prunedEdges("if (c) { a(); }"
                          "c = next();"
                          "if (c) { b(); }"),
              0u);
}

TEST(PathWalkerPruning, IncrementInvalidatesCorrelation)
{
    EXPECT_EQ(prunedEdges("if (n > 3) { a(); }"
                          "n++;"
                          "if (n > 3) { b(); }"),
              0u);
}

TEST(PathWalkerPruning, CallConditionsNeverCorrelated)
{
    // MAYBE_FREE-style conditions can change value per call.
    EXPECT_EQ(prunedEdges("if (POLL()) { a(); }"
                          "if (POLL()) { b(); }"),
              0u);
}

TEST(PathWalkerPruning, CompoundConditionCorrelates)
{
    EXPECT_EQ(prunedEdges("if (a > 2 && b) { x(); }"
                          "if (a > 2 && b) { y(); } else { z(); }"),
              2u);
}

TEST(PathWalkerPruning, UnrelatedAssignmentKeepsCorrelation)
{
    EXPECT_EQ(prunedEdges("if (c) { a(); }"
                          "other = 5;"
                          "if (c) { b(); }"),
              2u);
}

TEST(PathWalkerPruning, PrefixNameDoesNotInvalidate)
{
    // Assigning `cc` must not invalidate outcomes about `c`.
    EXPECT_EQ(prunedEdges("if (c) { a(); }"
                          "cc = 5;"
                          "if (c) { b(); }"),
              2u);
}

TEST(PathWalkerPruning, OffByDefault)
{
    auto b = build("if (c) { a(); } if (c) { b(); }");
    PathWalker<CountState>::Hooks hooks;
    PathWalker<CountState> walker(std::move(hooks));
    EXPECT_EQ(walker.walk(b->cfg, CountState{}).pruned_edges, 0u);
}

} // namespace
} // namespace mc::metal
