/**
 * @file
 * Unit tests for the semantic branch-feasibility domain (PR: "kill
 * infeasible-path false positives") and its integration with the path
 * walker: the ValueFact/ConstraintSet lattice, condition
 * classification, edge pruning through PathWalker, invalidation on
 * assignment and address-taking, the n-ary skip counter, and the
 * hook-ordering regression (pruned edges must never fire on_branch).
 */
#include "metal/feasibility.h"

#include "lang/program.h"
#include "metal/path_walker.h"

#include <gtest/gtest.h>

namespace mc::metal {
namespace {

// ---------------------------------------------------------------------
// Strategy spellings
// ---------------------------------------------------------------------

TEST(PruneStrategyNames, RoundTrip)
{
    for (PruneStrategy s :
         {PruneStrategy::Off, PruneStrategy::Correlated,
          PruneStrategy::Constraints})
        EXPECT_EQ(parsePruneStrategy(pruneStrategyName(s)), s);
    EXPECT_FALSE(parsePruneStrategy("on").has_value());
    EXPECT_FALSE(parsePruneStrategy("").has_value());
    EXPECT_FALSE(parsePruneStrategy("Correlated").has_value());
}

// ---------------------------------------------------------------------
// ValueFact: the single-symbol lattice
// ---------------------------------------------------------------------

TEST(ValueFact, EqualityThenContradictingBoundIsInfeasible)
{
    ValueFact f;
    ASSERT_TRUE(f.assume(CmpOp::Eq, 5));
    EXPECT_TRUE(f.feasible(CmpOp::Eq, 5));
    EXPECT_FALSE(f.feasible(CmpOp::Gt, 10));
    EXPECT_FALSE(f.feasible(CmpOp::Ne, 5));
    EXPECT_TRUE(f.feasible(CmpOp::Le, 5));
}

TEST(ValueFact, IntervalsNarrowAndContradict)
{
    ValueFact f;
    ASSERT_TRUE(f.assume(CmpOp::Gt, 4)); // x >= 5
    ASSERT_TRUE(f.assume(CmpOp::Le, 9)); // x <= 9
    EXPECT_TRUE(f.feasible(CmpOp::Eq, 7));
    EXPECT_FALSE(f.feasible(CmpOp::Lt, 5));
    EXPECT_FALSE(f.feasible(CmpOp::Eq, 10));
    EXPECT_FALSE(f.assume(CmpOp::Gt, 9)); // empties the interval
}

TEST(ValueFact, DisequalitiesCanEmptyAnInterval)
{
    // x in [5, 6], x != 5, x != 6 -> unsatisfiable.
    ValueFact f;
    ASSERT_TRUE(f.assume(CmpOp::Ge, 5));
    ASSERT_TRUE(f.assume(CmpOp::Le, 6));
    ASSERT_TRUE(f.assume(CmpOp::Ne, 5));
    EXPECT_FALSE(f.feasible(CmpOp::Ne, 6));
    EXPECT_FALSE(f.assume(CmpOp::Ne, 6));
}

TEST(ValueFact, DisequalityOverflowDropsSoundly)
{
    // More exclusions than the cap: extras are dropped (weaker, never
    // wrong) — the fact stays satisfiable and keeps answering
    // conservatively.
    ValueFact f;
    for (std::int64_t v = 0;
         v < static_cast<std::int64_t>(ValueFact::kMaxDisequalities) + 4;
         ++v)
        ASSERT_TRUE(f.assume(CmpOp::Ne, v));
    EXPECT_LE(f.not_equal.size(), ValueFact::kMaxDisequalities);
    EXPECT_TRUE(f.feasible(CmpOp::Gt, 100));
}

TEST(ValueFact, ExtremeBoundsDoNotOverflow)
{
    ValueFact f;
    ASSERT_TRUE(f.assume(CmpOp::Le, INT64_MIN)); // x == INT64_MIN
    EXPECT_FALSE(f.feasible(CmpOp::Lt, INT64_MIN));
    ValueFact g;
    ASSERT_TRUE(g.assume(CmpOp::Ge, INT64_MAX));
    EXPECT_FALSE(g.feasible(CmpOp::Gt, INT64_MAX));
}

// ---------------------------------------------------------------------
// ConstraintSet: per-path store
// ---------------------------------------------------------------------

TEST(ConstraintSet, TracksSymbolsIndependently)
{
    support::SymbolId x = support::SymbolInterner::global().intern("x");
    support::SymbolId y = support::SymbolInterner::global().intern("y");
    ConstraintSet cs;
    ASSERT_TRUE(cs.assume(x, CmpOp::Eq, 5));
    EXPECT_FALSE(cs.feasible(x, CmpOp::Gt, 10));
    EXPECT_TRUE(cs.feasible(y, CmpOp::Gt, 10)); // y unconstrained
    cs.invalidate(x);
    EXPECT_TRUE(cs.feasible(x, CmpOp::Gt, 10));
    EXPECT_TRUE(cs.empty());
}

TEST(ConstraintSet, DigestIsCanonicalAcrossInsertionOrder)
{
    support::SymbolId x = support::SymbolInterner::global().intern("x");
    support::SymbolId y = support::SymbolInterner::global().intern("y");
    ConstraintSet a, b;
    ASSERT_TRUE(a.assume(x, CmpOp::Eq, 1));
    ASSERT_TRUE(a.assume(y, CmpOp::Gt, 2));
    ASSERT_TRUE(b.assume(y, CmpOp::Gt, 2));
    ASSERT_TRUE(b.assume(x, CmpOp::Eq, 1));
    support::Fnv1a ha, hb;
    a.hashInto(ha);
    b.hashInto(hb);
    EXPECT_EQ(ha.value(), hb.value());
}

// ---------------------------------------------------------------------
// classifyCond
// ---------------------------------------------------------------------

struct Built
{
    lang::Program program;
    cfg::Cfg cfg;
};

std::unique_ptr<Built>
build(const std::string& body, const std::string& prelude = "")
{
    auto b = std::make_unique<Built>();
    b->program.addSource("t.c",
                         prelude + "void f(void) {" + body + "}");
    b->cfg = cfg::CfgBuilder::build(*b->program.findFunction("f"));
    return b;
}

/** The condition of the first branch block in `body`. */
const lang::Expr*
firstCond(const Built& b)
{
    for (const cfg::BasicBlock& bb : b.cfg.blocks())
        if (bb.branch_cond)
            return bb.branch_cond;
    return nullptr;
}

TEST(ClassifyCond, ComparisonAgainstLiteral)
{
    auto b = build("if (x == 5) { a(); }");
    CondAtom atom = classifyCond(*firstCond(*b));
    ASSERT_TRUE(atom.supported);
    EXPECT_EQ(atom.sym, support::SymbolInterner::global().intern("x"));
    EXPECT_EQ(atom.op, CmpOp::Eq);
    EXPECT_EQ(atom.literal, 5);
    EXPECT_FALSE(atom.flip);
}

TEST(ClassifyCond, MirrorsWhenIdentOnRight)
{
    // `5 < x` is `x > 5`.
    auto b = build("if (5 < x) { a(); }");
    CondAtom atom = classifyCond(*firstCond(*b));
    ASSERT_TRUE(atom.supported);
    EXPECT_EQ(atom.op, CmpOp::Gt);
    EXPECT_EQ(atom.literal, 5);
}

TEST(ClassifyCond, BareIdentIsTruthiness)
{
    auto b = build("if (x) { a(); }");
    CondAtom atom = classifyCond(*firstCond(*b));
    ASSERT_TRUE(atom.supported);
    EXPECT_EQ(atom.op, CmpOp::Ne);
    EXPECT_EQ(atom.literal, 0);
    EXPECT_FALSE(atom.flip);
}

TEST(ClassifyCond, NotPrefixFoldsIntoFlip)
{
    auto b = build("if (!!!x) { a(); }");
    CondAtom atom = classifyCond(*firstCond(*b));
    ASSERT_TRUE(atom.supported);
    EXPECT_EQ(atom.op, CmpOp::Ne);
    EXPECT_TRUE(atom.flip);
}

TEST(ClassifyCond, NegativeAndCharLiterals)
{
    auto neg = build("if (x > -3) { a(); }");
    CondAtom a1 = classifyCond(*firstCond(*neg));
    ASSERT_TRUE(a1.supported);
    EXPECT_EQ(a1.literal, -3);

    auto ch = build("if (x == 'A') { a(); }");
    CondAtom a2 = classifyCond(*firstCond(*ch));
    ASSERT_TRUE(a2.supported);
    EXPECT_EQ(a2.literal, 'A');
}

TEST(ClassifyCond, EnumConstantsResolveToTheirValue)
{
    auto b = build("if (x == OP_PUT) { a(); }",
                   "enum Op { OP_GET, OP_PUT = 5, OP_ACK };");
    CondAtom atom = classifyCond(*firstCond(*b));
    ASSERT_TRUE(atom.supported);
    EXPECT_EQ(atom.sym, support::SymbolInterner::global().intern("x"));
    EXPECT_EQ(atom.op, CmpOp::Eq);
    EXPECT_EQ(atom.literal, 5);
}

TEST(ClassifyCond, UnsupportedShapesContributeNothing)
{
    for (const char* cond :
         {"f(x) == 5", "x + 1 == 5", "(x & 7) == 5", "x == y",
          "*p == 5", "x == 5 && y == 2"}) {
        auto b = build(std::string("if (") + cond + ") { a(); }");
        EXPECT_FALSE(classifyCond(*firstCond(*b)).supported)
            << "condition: " << cond;
    }
}

// ---------------------------------------------------------------------
// PathWalker integration
// ---------------------------------------------------------------------

/** Minimal live state (exercises the integral-key fast path too). */
struct NullState
{
    std::uint32_t key() const { return 0; }
    bool dead() const { return false; }
};

struct WalkCounts
{
    typename PathWalker<NullState>::Result result;
    /** (condition text, edge) pairs, in hook order. */
    std::vector<std::pair<std::string, std::size_t>> branches;
    std::vector<std::string> stmts;
};

WalkCounts
walkWith(const Built& b, PruneStrategy strategy)
{
    WalkCounts out;
    typename PathWalker<NullState>::Hooks hooks;
    hooks.on_branch = [&](NullState&, const lang::Expr& cond,
                          std::size_t edge) {
        out.branches.emplace_back(lang::exprToString(cond), edge);
    };
    hooks.on_stmt = [&](NullState&, const lang::Stmt& stmt) {
        out.stmts.push_back(lang::stmtToString(stmt));
    };
    typename PathWalker<NullState>::WalkOptions options;
    options.prune_strategy = strategy;
    PathWalker<NullState> walker(std::move(hooks), options);
    out.result = walker.walk(b.cfg, NullState{});
    return out;
}

bool
sawStmt(const WalkCounts& w, const std::string& text)
{
    for (const std::string& s : w.stmts)
        if (s == text)
            return true;
    return false;
}

TEST(FeasibilityWalk, EqualityThenBoundPrunes)
{
    // The motivating shape: x == 5 then x > 10. The conditions never
    // render to the same text, so Correlated keeps both inner edges;
    // Constraints prunes the true edge and a() is never reached.
    auto b = build("if (x == 5) { if (x > 10) { a(); } b(); }");
    WalkCounts corr = walkWith(*b, PruneStrategy::Correlated);
    EXPECT_EQ(corr.result.pruned_edges, 0u);
    EXPECT_TRUE(sawStmt(corr, "a();"));

    WalkCounts cons = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_EQ(cons.result.pruned_edges, 1u);
    EXPECT_FALSE(sawStmt(cons, "a();"));
    EXPECT_TRUE(sawStmt(cons, "b();"));
}

TEST(FeasibilityWalk, IntervalContradictionPrunes)
{
    auto b = build("if (x > 10) { if (x < 5) { a(); } b(); }");
    WalkCounts cons = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_EQ(cons.result.pruned_edges, 1u);
    EXPECT_FALSE(sawStmt(cons, "a();"));
    EXPECT_TRUE(sawStmt(cons, "b();"));
}

TEST(FeasibilityWalk, FalseEdgeAssertsTheNegation)
{
    // else-edge of `x < 3` asserts x >= 3, contradicting x == 0.
    auto b = build("if (x == 0) { if (x < 3) { a(); } else { c(); } }");
    WalkCounts cons = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_EQ(cons.result.pruned_edges, 1u);
    EXPECT_TRUE(sawStmt(cons, "a();"));
    EXPECT_FALSE(sawStmt(cons, "c();"));
}

TEST(FeasibilityWalk, TruthinessContradictsEquality)
{
    auto b = build("if (x == 0) { if (x) { a(); } }");
    WalkCounts cons = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_EQ(cons.result.pruned_edges, 1u);
    EXPECT_FALSE(sawStmt(cons, "a();"));
}

TEST(FeasibilityWalk, AssignmentInvalidatesConstraints)
{
    // x is reassigned between the tests: nothing may be pruned.
    auto b = build("if (x == 5) { x = g(); if (x > 10) { a(); } }");
    WalkCounts cons = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_EQ(cons.result.pruned_edges, 0u);
    EXPECT_TRUE(sawStmt(cons, "a();"));
}

TEST(FeasibilityWalk, AddressTakenInvalidatesConstraints)
{
    // g(&x) may write x through the pointer: nothing may be pruned.
    auto b = build("if (x == 5) { g(&x); if (x > 10) { a(); } }");
    WalkCounts cons = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_EQ(cons.result.pruned_edges, 0u);
    EXPECT_TRUE(sawStmt(cons, "a();"));
}

TEST(FeasibilityWalk, CallConditionsNeverConstrain)
{
    // f(x)'s value can change between tests; neither strategy prunes.
    auto b = build("if (f(x) == 5) { if (f(x) > 10) { a(); } }");
    for (PruneStrategy s :
         {PruneStrategy::Correlated, PruneStrategy::Constraints}) {
        WalkCounts w = walkWith(*b, s);
        EXPECT_EQ(w.result.pruned_edges, 0u);
        EXPECT_TRUE(sawStmt(w, "a();"));
    }
}

TEST(FeasibilityWalk, ConstraintsSubsumeCorrelated)
{
    // A textually repeated condition prunes under both strategies.
    auto b = build("if (c) { a(); } else { b(); }"
                   "if (c) { d(); } else { e(); }");
    EXPECT_EQ(walkWith(*b, PruneStrategy::Correlated).result.pruned_edges,
              2u);
    EXPECT_EQ(
        walkWith(*b, PruneStrategy::Constraints).result.pruned_edges, 2u);
}

// ---------------------------------------------------------------------
// Satellite 1 regression: pruned edges never fire on_branch
// ---------------------------------------------------------------------

TEST(FeasibilityWalk, PrunedEdgesNeverFireOnBranch)
{
    // Two correlated branches: the second branch is visited once per
    // recorded outcome and only its feasible edge may invoke on_branch.
    // Before the fix the hook fired (and the client state transitioned)
    // on the contradictory edge too, then the fork was discarded.
    auto b = build("if (c) { a(); } else { b(); }"
                   "if (c) { d(); } else { e(); }");
    WalkCounts w = walkWith(*b, PruneStrategy::Correlated);
    EXPECT_EQ(w.result.pruned_edges, 2u);
    // Branch 1 fires both edges; branch 2 is reached twice (the two arm
    // states converge only after it) and fires exactly one edge each:
    // 2 + 2 = 4. The broken ordering produced 6.
    std::size_t c_edges = 0;
    for (const auto& [text, edge] : w.branches)
        if (text == "c")
            ++c_edges;
    EXPECT_EQ(c_edges, 4u);
    // The hook-observed edge count plus pruned edges must equal every
    // two-way branch visit's full fan-out.
    EXPECT_EQ(c_edges + w.result.pruned_edges, 6u);
}

TEST(FeasibilityWalk, OffStrategyFiresEveryEdge)
{
    // Without pruning there are no path facts, so the two arms converge
    // at the second branch (same client state): 2 branch visits, both
    // edges fired each = 4 hook calls, nothing pruned.
    auto b = build("if (c) { a(); } else { b(); }"
                   "if (c) { d(); } else { e(); }");
    WalkCounts w = walkWith(*b, PruneStrategy::Off);
    EXPECT_EQ(w.result.pruned_edges, 0u);
    EXPECT_EQ(w.branches.size(), 4u);
}

// ---------------------------------------------------------------------
// Satellite 2: n-ary branches are skipped loudly
// ---------------------------------------------------------------------

TEST(FeasibilityWalk, SwitchFanOutCountsNarySkips)
{
    // A switch fans out >2 ways; pruning cannot classify its edges and
    // must say so instead of silently doing nothing.
    auto b = build("switch (op) { case 1: a(); break; "
                   "case 2: bb(); break; default: c(); } z();");
    WalkCounts off = walkWith(*b, PruneStrategy::Off);
    EXPECT_EQ(off.result.prune_skipped_nary, 0u);
    for (PruneStrategy s :
         {PruneStrategy::Correlated, PruneStrategy::Constraints}) {
        WalkCounts w = walkWith(*b, s);
        EXPECT_EQ(w.result.pruned_edges, 0u);
        EXPECT_GE(w.result.prune_skipped_nary, 1u);
        // Every arm still walked.
        EXPECT_TRUE(sawStmt(w, "a();"));
        EXPECT_TRUE(sawStmt(w, "bb();"));
        EXPECT_TRUE(sawStmt(w, "c();"));
    }
}

TEST(FeasibilityWalk, SwitchArmsStillPruneLaterTwoWayBranches)
{
    // The n-ary skip is per-block, not per-walk: two-way branches after
    // the switch still prune.
    auto b = build("switch (op) { case 1: a(); break; "
                   "case 2: bb(); break; default: c(); }"
                   "if (x == 5) { if (x > 10) { d(); } }");
    WalkCounts w = walkWith(*b, PruneStrategy::Constraints);
    EXPECT_GE(w.result.prune_skipped_nary, 1u);
    EXPECT_GE(w.result.pruned_edges, 1u);
    EXPECT_FALSE(sawStmt(w, "d();"));
}

// ---------------------------------------------------------------------
// Decision cache
// ---------------------------------------------------------------------

/** State whose key distinguishes which arm of the first branch ran. */
struct MarkState
{
    std::uint32_t marker = 0;
    std::uint32_t key() const { return marker; }
    bool dead() const { return false; }
};

TEST(FeasibilityWalk, RepeatedDecisionsHitThePruneCache)
{
    // The first branch's condition is a call — impure, so it leaves no
    // path facts — but the client state diverges across its arms, so
    // the later branches are each visited twice with *identical* facts.
    // The second arrival's feasibility questions answer from the
    // (block, edge, digest) decision cache.
    auto b = build("if (g()) { a(); } else { b(); }"
                   "if (x == 5) { if (x > 10) { d(); } }");
    typename PathWalker<MarkState>::Hooks hooks;
    std::vector<std::string> stmts;
    hooks.on_stmt = [&](MarkState& st, const lang::Stmt& stmt) {
        const std::string text = lang::stmtToString(stmt);
        if (text == "a();")
            st.marker = 1;
        else if (text == "b();")
            st.marker = 2;
        stmts.push_back(text);
    };
    typename PathWalker<MarkState>::WalkOptions options;
    options.prune_strategy = PruneStrategy::Constraints;
    PathWalker<MarkState> walker(std::move(hooks), options);
    auto result = walker.walk(b->cfg, MarkState{});
    // Both arms prune the inner `x > 10` true edge; the second arm's
    // verdicts come from the cache.
    EXPECT_EQ(result.pruned_edges, 2u);
    EXPECT_GE(result.prune_cache_hits, 2u);
    for (const std::string& s : stmts)
        EXPECT_NE(s, "d();");
}

} // namespace
} // namespace mc::metal
