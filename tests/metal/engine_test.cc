#include "metal/engine.h"
#include "metal/metal_parser.h"

#include "cfg/cfg.h"
#include "lang/program.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "support/witness.h"

#include <gtest/gtest.h>

namespace mc::metal {
namespace {

const char* kWaitForDb = R"metal(
sm wait_for_db {
    decl { scalar } addr, buf;
    start:
        { WAIT_FOR_DB_FULL(addr); } ==> stop
      | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); }
      ;
}
)metal";

const char* kMsgLen = R"metal(
sm msglen_check {
    pat zero_assign = { len = LEN_NODATA } ;
    pat nonzero_assign = { len = LEN_WORD } | { len = LEN_CACHELINE } ;
    decl { unsigned } keep;
    pat send_data = { PI_SEND(F_DATA, keep) } ;
    pat send_nodata = { PI_SEND(F_NODATA, keep) } ;
    all:
        zero_assign ==> zero_len
      | nonzero_assign ==> nonzero_len
      ;
    zero_len:
        send_data ==> { err("data send, zero len"); } ;
    nonzero_len:
        send_nodata ==> { err("nodata send, nonzero len"); } ;
}
)metal";

struct Run
{
    lang::Program program;
    support::DiagnosticSink sink;
    SmRunResult result;
};

std::unique_ptr<Run>
run(const char* metal_src, const std::string& body)
{
    auto r = std::make_unique<Run>();
    MetalProgram mp = parseMetal(metal_src);
    r->program.addSource("t.c", "void f(void) {" + body + "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*r->program.findFunction("f"));
    r->result = runStateMachine(*mp.sm, cfg, r->sink);
    return r;
}

TEST(Engine, ReadAfterWaitIsClean)
{
    auto r = run(kWaitForDb,
                 "WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 0);
}

TEST(Engine, ReadWithoutWaitIsError)
{
    auto r = run(kWaitForDb, "MISCBUS_READ_DB(a, b);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
    EXPECT_EQ(r->sink.diagnostics()[0].message, "Buffer not synchronized");
}

TEST(Engine, ErrorOnlyOnUnsynchronizedPath)
{
    // One path waits, the other does not: the read is an error because
    // SOME path reaches it without the wait.
    auto r = run(kWaitForDb,
                 "if (c) { WAIT_FOR_DB_FULL(a); } MISCBUS_READ_DB(a, b);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
}

TEST(Engine, StopStateEndsPathChecking)
{
    // After the wait, later reads are fine even when followed by more
    // reads on the same path.
    auto r = run(kWaitForDb,
                 "WAIT_FOR_DB_FULL(a);"
                 "MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(a, c);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 0);
}

TEST(Engine, ContinuesInStateAfterError)
{
    // Figure 2: the error rule has no transition, so it keeps checking
    // and flags further reads on the same path.
    auto r = run(kWaitForDb,
                 "MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(a2, b2);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 2);
}

TEST(Engine, ReadInsideLoopChecked)
{
    auto r = run(kWaitForDb, "while (c) { MISCBUS_READ_DB(a, b); }");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
}

TEST(Engine, ReadBuriedInConditionChecked)
{
    auto r = run(kWaitForDb, "if (MISCBUS_READ_DB(a, b)) { x = 1; }");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
}

TEST(Engine, MsgLenZeroThenDataSendIsError)
{
    auto r = run(kMsgLen, "len = LEN_NODATA; PI_SEND(F_DATA, k);");
    ASSERT_EQ(r->sink.count(support::Severity::Error), 1);
    EXPECT_EQ(r->sink.diagnostics()[0].message, "data send, zero len");
}

TEST(Engine, MsgLenNonzeroThenNodataSendIsError)
{
    auto r = run(kMsgLen, "len = LEN_CACHELINE; PI_SEND(F_NODATA, k);");
    ASSERT_EQ(r->sink.count(support::Severity::Error), 1);
    EXPECT_EQ(r->sink.diagnostics()[0].message, "nodata send, nonzero len");
}

TEST(Engine, MsgLenConsistentPairsAreClean)
{
    auto r = run(kMsgLen,
                 "len = LEN_WORD; PI_SEND(F_DATA, k);"
                 "len = LEN_NODATA; PI_SEND(F_NODATA, k);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 0);
}

TEST(Engine, MsgLenSendsBeforeAnyAssignIgnored)
{
    // The SM starts in `all`: sends with unknown initial length are
    // deliberately not flagged (the checker "does not warn about any
    // message sends" in its start state).
    auto r = run(kMsgLen, "PI_SEND(F_DATA, k); PI_SEND(F_NODATA, k);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 0);
}

TEST(Engine, MsgLenAllRulesApplyInEveryState)
{
    // zero -> send ok -> reassign nonzero -> bad nodata send.
    auto r = run(kMsgLen,
                 "len = LEN_NODATA; PI_SEND(F_NODATA, k);"
                 "len = LEN_WORD; PI_SEND(F_NODATA, k);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
}

TEST(Engine, MsgLenErrorOnlyOnBadPath)
{
    // Error reachable only along the else path.
    auto r = run(kMsgLen,
                 "if (c) { len = LEN_WORD; } else { len = LEN_NODATA; }"
                 "PI_SEND(F_DATA, k);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
}

TEST(Engine, FiringsCountedPerRule)
{
    auto r = run(kWaitForDb,
                 "MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(c, d);");
    int total = 0;
    for (const auto& [rule, n] : r->result.firings)
        total += n;
    EXPECT_EQ(total, 2);
}

TEST(Engine, BlockStateCachingTerminatesOnBigFunctions)
{
    // 2^30 paths; the (block, state) cache must keep this linear.
    std::string body;
    for (int i = 0; i < 30; ++i)
        body += "if (c" + std::to_string(i) + ") { x = 1; } else "
                "{ x = 2; }\n";
    body += "MISCBUS_READ_DB(a, b);";
    auto r = run(kWaitForDb, body);
    EXPECT_EQ(r->sink.count(support::Severity::Error), 1);
    EXPECT_FALSE(r->result.truncated);
    EXPECT_LT(r->result.visits, 1000u);
}

TEST(Engine, WarnActionReportsWarningSeverity)
{
    auto r = run("sm t { s: { RISKY(); } ==> { warn(\"sketchy\"); } ; }",
                 "RISKY();");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 0);
    EXPECT_EQ(r->sink.count(support::Severity::Warning), 1);
}

TEST(Engine, PruningRemovesCorrelatedBranchFalsePositive)
{
    // The coma shape: length and flag chosen by the same condition.
    const std::string body =
        "if (use_data == 1) { len = LEN_WORD; }"
        "else { len = LEN_NODATA; }"
        "if (use_data == 1) { PI_SEND(F_DATA, k); }"
        "else { PI_SEND(F_NODATA, k); }";

    // Without pruning: two impossible-path reports.
    auto base = run(kMsgLen, body);
    EXPECT_EQ(base->sink.count(support::Severity::Error), 2);

    // With pruning: silent.
    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kMsgLen);
    program.addSource("t.c", "void f(void) {" + body + "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    SmRunOptions options;
    options.prune_strategy = PruneStrategy::Correlated;
    auto result = runStateMachine(*mp.sm, cfg, sink, options);
    EXPECT_EQ(sink.count(support::Severity::Error), 0);
    EXPECT_GE(result.visits, 1u);
}

TEST(Engine, PruningKeepsRealErrors)
{
    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kMsgLen);
    program.addSource("t.c",
                      "void f(void) {"
                      "  len = LEN_NODATA;"
                      "  if (q) { PI_SEND(F_DATA, k); }"
                      "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    SmRunOptions options;
    options.prune_strategy = PruneStrategy::Correlated;
    runStateMachine(*mp.sm, cfg, sink, options);
    EXPECT_EQ(sink.count(support::Severity::Error), 1);
}

TEST(Engine, RunResultCarriesWalkerObservability)
{
    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kWaitForDb);
    // Two independent diamonds: paths re-converge in the same SM state,
    // so the (block, state) cache must fold them (cache_hits > 0), and
    // the pending-path frontier must have exceeded one entry.
    program.addSource("t.c",
                      "void f(void) {"
                      "  if (a) { x = 1; } else { x = 2; }"
                      "  if (b) { y = 1; } else { y = 2; }"
                      "  WAIT_FOR_DB_FULL(p);"
                      "  MISCBUS_READ_DB(p, q);"
                      "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    auto result = runStateMachine(*mp.sm, cfg, sink);
    EXPECT_GT(result.cache_hits, 0u);
    EXPECT_GE(result.peak_frontier, 2u);
    // WAIT_FOR_DB_FULL transitions start -> stop.
    EXPECT_GE(result.transitions, 1u);
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(sink.count(support::Severity::Error), 0);
}

TEST(Engine, PublishesMetricsWhenRegistryEnabled)
{
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    metrics.clear();
    metrics.setEnabled(true);

    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kWaitForDb);
    program.addSource("t.c",
                      "void f(void) { MISCBUS_READ_DB(a, b); }");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    auto result = runStateMachine(*mp.sm, cfg, sink);

    EXPECT_EQ(metrics.counterValue("engine.runs"), 1u);
    EXPECT_EQ(metrics.counterValue("engine.visits"), result.visits);
    EXPECT_EQ(metrics.counterValue("engine.rule_firings"), 1u);
    EXPECT_GE(metrics.gaugeValue("engine.peak_frontier"), 1u);
    EXPECT_EQ(metrics.timers().count("engine.sm.wait_for_db"), 1u);

    metrics.setEnabled(false);
    metrics.clear();
}

TEST(Engine, PublishesTraceSpanWhenRecorderEnabled)
{
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    tracer.clear();
    tracer.setEnabled(true);

    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kWaitForDb);
    program.addSource("t.c",
                      "void handler(void) { WAIT_FOR_DB_FULL(a); }");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("handler"));
    runStateMachine(*mp.sm, cfg, sink);

    std::vector<support::TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 1u);
    const support::TraceEvent& e = events[0];
    EXPECT_EQ(e.name, "wait_for_db");
    EXPECT_EQ(e.category, "engine");
    ASSERT_FALSE(e.args.empty());
    EXPECT_EQ(e.args[0].first, "function");
    EXPECT_EQ(e.args[0].second, "handler");

    tracer.setEnabled(false);
    tracer.clear();
}

TEST(Engine, NothingPublishedWhenDisabled)
{
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    metrics.clear();
    tracer.clear();
    ASSERT_FALSE(metrics.enabled());
    ASSERT_FALSE(tracer.enabled());

    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kWaitForDb);
    program.addSource("t.c",
                      "void f(void) { MISCBUS_READ_DB(a, b); }");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    runStateMachine(*mp.sm, cfg, sink);

    EXPECT_TRUE(metrics.counters().empty());
    EXPECT_TRUE(tracer.events().empty());
}

/** Enables witness capture for one test, restoring the off default. */
struct WitnessGuard
{
    explicit WitnessGuard(unsigned limit = support::kDefaultWitnessLimit)
    {
        support::setWitnessConfig(true, limit);
    }
    ~WitnessGuard() { support::setWitnessConfig(false, 0); }
};

std::unique_ptr<Run>
runWithStrategy(const char* metal_src, const std::string& body,
                MatchStrategy strategy)
{
    auto r = std::make_unique<Run>();
    MetalProgram mp = parseMetal(metal_src);
    r->program.addSource("t.c", "void f(void) {" + body + "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*r->program.findFunction("f"));
    SmRunOptions options;
    options.match_strategy = strategy;
    r->result = runStateMachine(*mp.sm, cfg, r->sink, options);
    return r;
}

TEST(EngineWitness, OffByDefaultRecordsNothing)
{
    auto r = run(kWaitForDb, "MISCBUS_READ_DB(a, b);");
    EXPECT_EQ(r->result.witness_steps, 0u);
    ASSERT_EQ(r->sink.count(support::Severity::Error), 1);
    EXPECT_TRUE(r->sink.diagnostics()[0].witness.empty());
}

TEST(EngineWitness, FindingCarriesTransitionHistoryAndBlockPath)
{
    WitnessGuard guard;
    // The wait on one branch transitions start -> stop; the unguarded
    // branch reaches the read still in start.
    auto r = run(kWaitForDb,
                 "if (c) { WAIT_FOR_DB_FULL(a); } MISCBUS_READ_DB(a, b);");
    EXPECT_GE(r->result.witness_steps, 2u);
    ASSERT_EQ(r->sink.count(support::Severity::Error), 1);
    const support::Witness& w = r->sink.diagnostics()[0].witness;
    ASSERT_FALSE(w.empty());
    EXPECT_FALSE(w.blocks.empty());
    ASSERT_FALSE(w.steps.empty());
    // The finding's own firing is the last step on its path.
    const support::WitnessStep& last = w.steps.back();
    EXPECT_EQ(last.from_state, "start");
    EXPECT_EQ(last.to_state, "start");
    EXPECT_NE(last.note.find("rule"), std::string::npos);
    // Bound wildcards render into the note ("addr = a").
    EXPECT_NE(last.note.find("addr = a"), std::string::npos);
    EXPECT_FALSE(w.truncated);
}

TEST(EngineWitness, TransitionStepsRecordedEvenWithoutFindings)
{
    WitnessGuard guard;
    // No error: the wait's start -> stop transition is still a step.
    auto r = run(kWaitForDb, "WAIT_FOR_DB_FULL(a);");
    EXPECT_EQ(r->sink.count(support::Severity::Error), 0);
    EXPECT_GE(r->result.witness_steps, 1u);
}

TEST(EngineWitness, StepsIdenticalAcrossMatchStrategies)
{
    WitnessGuard guard;
    const std::string body =
        "len = LEN_NODATA; PI_SEND(F_NODATA, k);"
        "len = LEN_WORD; PI_SEND(F_NODATA, k);";
    auto table = runWithStrategy(kMsgLen, body, MatchStrategy::Table);
    auto legacy = runWithStrategy(kMsgLen, body, MatchStrategy::Legacy);

    EXPECT_GT(table->result.witness_steps, 0u);
    EXPECT_EQ(table->result.witness_steps, legacy->result.witness_steps);

    ASSERT_EQ(table->sink.diagnostics().size(),
              legacy->sink.diagnostics().size());
    for (std::size_t d = 0; d < table->sink.diagnostics().size(); ++d) {
        const support::Witness& tw = table->sink.diagnostics()[d].witness;
        const support::Witness& lw = legacy->sink.diagnostics()[d].witness;
        EXPECT_EQ(tw.blocks, lw.blocks);
        EXPECT_EQ(tw.truncated, lw.truncated);
        ASSERT_EQ(tw.steps.size(), lw.steps.size());
        for (std::size_t s = 0; s < tw.steps.size(); ++s) {
            EXPECT_EQ(tw.steps[s].from_state, lw.steps[s].from_state);
            EXPECT_EQ(tw.steps[s].to_state, lw.steps[s].to_state);
            EXPECT_EQ(tw.steps[s].note, lw.steps[s].note);
            EXPECT_EQ(tw.steps[s].loc, lw.steps[s].loc);
        }
    }
}

TEST(EngineWitness, LimitCapsStepsAndMarksTruncation)
{
    WitnessGuard guard(1);
    // Two firings on one path; the second exceeds the 1-step cap.
    auto r = run(kWaitForDb,
                 "MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(c, d);");
    ASSERT_EQ(r->sink.count(support::Severity::Error), 2);
    EXPECT_EQ(r->result.witness_steps, 1u);
    const support::Witness& second = r->sink.diagnostics()[1].witness;
    EXPECT_EQ(second.steps.size(), 1u);
    EXPECT_TRUE(second.truncated);
}

TEST(EngineWitness, PrunedEdgesAnnotateTheSurvivingPath)
{
    WitnessGuard guard;
    // Under constraint pruning the inner `x > 10` true edge contradicts
    // `x == 5`; the surviving path notes the pruned edge so a finding's
    // provenance explains why a branch was never explored.
    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kMsgLen);
    program.addSource("t.c",
                      "void f(void) {"
                      "  len = LEN_NODATA;"
                      "  if (x == 5) { if (x > 10) { a(); }"
                      "    PI_SEND(F_DATA, k); }"
                      "}");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    SmRunOptions options;
    options.prune_strategy = PruneStrategy::Constraints;
    auto result = runStateMachine(*mp.sm, cfg, sink, options);
    EXPECT_EQ(result.pruned_edges, 1u);
    ASSERT_EQ(sink.count(support::Severity::Error), 1);
    const support::Witness& w = sink.diagnostics()[0].witness;
    ASSERT_FALSE(w.steps.empty());
    bool noted = false;
    for (const support::WitnessStep& step : w.steps)
        if (step.from_state == "path" && step.to_state == "pruned" &&
            step.note.find("infeasible edge") != std::string::npos &&
            step.note.find("cannot be true") != std::string::npos)
            noted = true;
    EXPECT_TRUE(noted);
}

TEST(Engine, DiagnosticLocationPointsAtOffendingRead)
{
    lang::Program program;
    support::DiagnosticSink sink;
    MetalProgram mp = parseMetal(kWaitForDb);
    program.addSource("proto.c",
                      "void f(void) {\n"
                      "  x = 1;\n"
                      "  MISCBUS_READ_DB(a, b);\n"
                      "}\n");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    runStateMachine(*mp.sm, cfg, sink);
    ASSERT_EQ(sink.count(support::Severity::Error), 1);
    EXPECT_EQ(sink.diagnostics()[0].loc.line, 3);
}

} // namespace
} // namespace mc::metal
