/**
 * @file
 * Byte-for-byte differential of the table-driven matcher against the
 * legacy re-match-per-visit strategy: for all five paper protocols, the
 * rendered diagnostics (text, JSON, SARIF) must be identical at --jobs 1
 * and 4, cold and against a warm analysis cache. This pins the tentpole
 * optimization's hard constraint: the strategy may never change output.
 */
#include "cache/analysis_cache.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "corpus/generator.h"
#include "metal/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace mc {
namespace {

namespace fs = std::filesystem;

/** One protocol checked under one configuration, rendered three ways. */
struct Rendered
{
    std::string text;
    std::string json;
    std::string sarif;
    std::uint64_t cache_hits = 0;
};

Rendered
checkProtocol(const corpus::LoadedProtocol& loaded, unsigned jobs,
              cache::AnalysisCache* cache,
              metal::PruneStrategy prune = metal::PruneStrategy::Off)
{
    checkers::CheckerSetOptions set_options;
    set_options.prune_strategy = prune;
    auto set = checkers::makeAllCheckers(set_options);
    support::DiagnosticSink sink;
    checkers::ParallelRunOptions options;
    options.jobs = jobs;
    options.cache = cache;
    checkers::runCheckersParallel(*loaded.program, loaded.gen.spec,
                                  set.pointers(), sink, options);
    Rendered out;
    const support::SourceManager* sm = &loaded.program->sourceManager();
    std::ostringstream text, json, sarif;
    sink.write(text, support::OutputFormat::Text, sm);
    sink.write(json, support::OutputFormat::Json, sm);
    sink.write(sarif, support::OutputFormat::Sarif, sm);
    out.text = text.str();
    out.json = json.str();
    out.sarif = sarif.str();
    if (cache)
        out.cache_hits = cache->stats().hits;
    return out;
}

class StrategyDifferential : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        // The strategy default is process-global; never leak Legacy into
        // other tests.
        metal::setDefaultMatchStrategy(metal::MatchStrategy::Table);
    }
};

TEST_F(StrategyDifferential, ByteIdenticalAcrossProtocolsJobsAndCache)
{
    fs::path cache_root =
        fs::temp_directory_path() / "mccheck_strategy_diff_cache";
    fs::remove_all(cache_root);

    for (const char* name :
         {"bitvector", "dyn_ptr", "sci", "coma", "rac"}) {
        corpus::LoadedProtocol loaded =
            corpus::loadProtocol(corpus::profileByName(name));
        // renders[strategy] = {cold j1, cold j4, warm j1, warm j4}
        std::map<std::string, std::vector<Rendered>> renders;
        for (const char* strategy : {"table", "legacy"}) {
            metal::setDefaultMatchStrategy(
                strategy == std::string("legacy")
                    ? metal::MatchStrategy::Legacy
                    : metal::MatchStrategy::Table);
            fs::path dir =
                cache_root / (std::string(name) + "_" + strategy);
            std::vector<Rendered>& out = renders[strategy];
            for (unsigned jobs : {1u, 4u})
                out.push_back(checkProtocol(loaded, jobs, nullptr));
            {
                // Cold fill (not compared; hits may be zero).
                cache::AnalysisCache cache(dir.string());
                checkProtocol(loaded, 1, &cache);
            }
            for (unsigned jobs : {1u, 4u}) {
                cache::AnalysisCache cache(dir.string());
                out.push_back(checkProtocol(loaded, jobs, &cache));
                EXPECT_GT(out.back().cache_hits, 0u)
                    << name << " " << strategy << " jobs=" << jobs;
            }
        }
        const std::vector<Rendered>& table = renders["table"];
        const std::vector<Rendered>& legacy = renders["legacy"];
        ASSERT_EQ(table.size(), 4u);
        ASSERT_EQ(legacy.size(), 4u);
        const char* arm[] = {"cold j1", "cold j4", "warm j1", "warm j4"};
        for (std::size_t i = 0; i < table.size(); ++i) {
            // Strategy differential, same arm.
            EXPECT_EQ(table[i].text, legacy[i].text)
                << name << " text " << arm[i];
            EXPECT_EQ(table[i].json, legacy[i].json)
                << name << " json " << arm[i];
            EXPECT_EQ(table[i].sarif, legacy[i].sarif)
                << name << " sarif " << arm[i];
            // And every arm agrees with the first (jobs/cache
            // determinism within a strategy).
            EXPECT_EQ(table[i].json, table[0].json)
                << name << " table arm " << arm[i];
            EXPECT_EQ(legacy[i].json, legacy[0].json)
                << name << " legacy arm " << arm[i];
        }
    }
    fs::remove_all(cache_root);
}

/**
 * The same differential crossed with --prune-paths constraints: pruning
 * changes which paths are walked (and thus which diagnostics survive),
 * so the two strategies must agree under it independently of the
 * prune-off arms above. The walker disables the table's block-skip
 * prefilter while pruning, making this the arm that would catch a skip
 * hook leaking into feasibility invalidation.
 */
TEST_F(StrategyDifferential, ByteIdenticalUnderConstraintsPruning)
{
    for (const char* name :
         {"bitvector", "dyn_ptr", "sci", "coma", "rac"}) {
        corpus::LoadedProtocol loaded =
            corpus::loadProtocol(corpus::profileByName(name));
        std::map<std::string, std::vector<Rendered>> renders;
        for (const char* strategy : {"table", "legacy"}) {
            metal::setDefaultMatchStrategy(
                strategy == std::string("legacy")
                    ? metal::MatchStrategy::Legacy
                    : metal::MatchStrategy::Table);
            std::vector<Rendered>& out = renders[strategy];
            for (unsigned jobs : {1u, 4u})
                out.push_back(
                    checkProtocol(loaded, jobs, nullptr,
                                  metal::PruneStrategy::Constraints));
        }
        const std::vector<Rendered>& table = renders["table"];
        const std::vector<Rendered>& legacy = renders["legacy"];
        ASSERT_EQ(table.size(), 2u);
        ASSERT_EQ(legacy.size(), 2u);
        const char* arm[] = {"prune j1", "prune j4"};
        for (std::size_t i = 0; i < table.size(); ++i) {
            EXPECT_EQ(table[i].text, legacy[i].text)
                << name << " text " << arm[i];
            EXPECT_EQ(table[i].json, legacy[i].json)
                << name << " json " << arm[i];
            EXPECT_EQ(table[i].sarif, legacy[i].sarif)
                << name << " sarif " << arm[i];
            EXPECT_EQ(table[i].json, table[0].json)
                << name << " table arm " << arm[i];
            EXPECT_EQ(legacy[i].json, legacy[0].json)
                << name << " legacy arm " << arm[i];
        }
    }
}

} // namespace
} // namespace mc
