#include "metal/metal_parser.h"

#include <gtest/gtest.h>

namespace mc::metal {
namespace {

// The paper's Figure 2 checker, essentially verbatim.
const char* kFigure2 = R"metal(
{ #include "flash-includes.h" }
sm wait_for_db {
    /* Declare two variables 'addr' and 'buf' that can
     * match any integer expression. */
    decl { scalar } addr, buf;

    start:
        { WAIT_FOR_DB_FULL(addr); } ==> stop
      | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); }
      ;
}
)metal";

// The paper's Figure 3 checker, essentially verbatim.
const char* kFigure3 = R"metal(
{ #include "flash-includes.h" }
sm msglen_check {
    pat zero_assign =
        { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
    pat nonzero_assign =
        { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
      | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;

    decl { unsigned } keep, swap, wait, dec, null, type;
    pat send_data =
        { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
      | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
      | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;
    pat send_nodata =
        { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
      | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
      | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;

    all:
        zero_assign ==> zero_len
      | nonzero_assign ==> nonzero_len
      ;

    zero_len:
        send_data ==> { err("data send, zero len"); } ;

    nonzero_len:
        send_nodata ==> { err("nodata send, nonzero len"); } ;
}
)metal";

TEST(MetalParser, Figure2Parses)
{
    MetalProgram p = parseMetal(kFigure2, "figure2.metal");
    EXPECT_EQ(p.name, "wait_for_db");
    EXPECT_EQ(p.prelude, "#include \"flash-includes.h\"");
    EXPECT_EQ(p.sm->startState(), "start");
    ASSERT_EQ(p.sm->rulesFor("start").size(), 2u);
    EXPECT_EQ(p.sm->rulesFor("start")[0].next_state, "stop");
    EXPECT_TRUE(p.sm->rulesFor("start")[0].action == nullptr);
    EXPECT_TRUE(p.sm->rulesFor("start")[1].next_state.empty());
    EXPECT_TRUE(p.sm->rulesFor("start")[1].action != nullptr);
}

TEST(MetalParser, Figure3Parses)
{
    MetalProgram p = parseMetal(kFigure3, "figure3.metal");
    EXPECT_EQ(p.name, "msglen_check");
    // Figure 3 "starts in the special state all that does not warn about
    // any message sends" — the first state defined is the start state.
    EXPECT_EQ(p.sm->startState(), "all");
    EXPECT_EQ(p.sm->allRules().size(), 2u);
    EXPECT_EQ(p.sm->rulesFor("zero_len").size(), 1u);
    EXPECT_EQ(p.sm->rulesFor("nonzero_len").size(), 1u);
    // Named patterns expanded to all alternatives.
    EXPECT_EQ(p.sm->rulesFor("zero_len")[0].pattern.alternativeCount(), 3u);
}

TEST(MetalParser, PreludeOptional)
{
    MetalProgram p = parseMetal("sm tiny { s: { f(); } ==> stop ; }");
    EXPECT_EQ(p.name, "tiny");
    EXPECT_TRUE(p.prelude.empty());
}

TEST(MetalParser, StateAndActionTogether)
{
    MetalProgram p = parseMetal(
        "sm t { s: { f(); } ==> next { err(\"boom\"); } ; "
        "next: { g(); } ==> stop ; }");
    ASSERT_EQ(p.sm->rulesFor("s").size(), 1u);
    EXPECT_EQ(p.sm->rulesFor("s")[0].next_state, "next");
    EXPECT_TRUE(p.sm->rulesFor("s")[0].action != nullptr);
}

TEST(MetalParser, WarnAction)
{
    MetalProgram p = parseMetal(
        "sm t { s: { f(); } ==> { warn(\"sus\"); } ; }");
    EXPECT_TRUE(p.sm->rulesFor("s")[0].action != nullptr);
}

TEST(MetalParser, NamedPatternComposesNamedPattern)
{
    MetalProgram p = parseMetal(
        "sm t {\n"
        "  pat a = { f(); } ;\n"
        "  pat b = a | { g(); } ;\n"
        "  s: b ==> stop ;\n"
        "}");
    EXPECT_EQ(p.sm->rulesFor("s")[0].pattern.alternativeCount(), 2u);
}

TEST(MetalParser, RuleIdsDeriveFromMessages)
{
    MetalProgram p = parseMetal(
        "sm t { s: { f(); } ==> { err(\"Data Send, zero len!\"); } ; }");
    EXPECT_EQ(p.sm->rulesFor("s")[0].id, "data-send-zero-len");
}

TEST(MetalParser, UnknownPatternNameFails)
{
    EXPECT_THROW(parseMetal("sm t { s: nope ==> stop ; }"),
                 MetalParseError);
}

TEST(MetalParser, UnknownWildcardKindFails)
{
    EXPECT_THROW(
        parseMetal("sm t { decl { quux } v; s: { f(v); } ==> stop ; }"),
        MetalParseError);
}

TEST(MetalParser, MissingArrowFails)
{
    EXPECT_THROW(parseMetal("sm t { s: { f(); } stop ; }"),
                 MetalParseError);
}

TEST(MetalParser, UnterminatedPreludeFails)
{
    EXPECT_THROW(parseMetal("{ #include \"x.h\" sm t { }"),
                 MetalParseError);
}

TEST(MetalParser, SourceLineCounting)
{
    EXPECT_EQ(metalSourceLines("a\n\nb\n// comment\n/* c */\nd"), 3);
    EXPECT_EQ(metalSourceLines("/* multi\nline\ncomment */ x"), 1);
    EXPECT_EQ(metalSourceLines(""), 0);
}

TEST(MetalParser, Figure2Within20Lines)
{
    // Table 7 reports the buffer race checker at 12 lines; ours must stay
    // in the same ballpark (under 20).
    EXPECT_LE(metalSourceLines(
                  "sm wait_for_db {\n"
                  "  decl { scalar } addr, buf;\n"
                  "  start:\n"
                  "    { WAIT_FOR_DB_FULL(addr); } ==> stop\n"
                  "  | { MISCBUS_READ_DB(addr, buf); } ==>\n"
                  "      { err(\"Buffer not synchronized\"); }\n"
                  "  ;\n"
                  "}\n"),
              20);
}

} // namespace
} // namespace mc::metal
