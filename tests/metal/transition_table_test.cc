/**
 * @file
 * CompiledSm / TransitionTable unit tests, the couldMatch-prefilter
 * completeness property, and the table-vs-legacy differential over real
 * corpus functions: every engine counter and firing must be identical
 * under both matching strategies.
 */
#include "metal/transition_table.h"

#include "cfg/cfg.h"
#include "corpus/generator.h"
#include "lang/program.h"
#include "metal/engine.h"
#include "metal/metal_parser.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace mc::metal {
namespace {

const char* kWaitForDb = R"metal(
sm wait_for_db {
    decl { scalar } addr, buf;
    start:
        { WAIT_FOR_DB_FULL(addr); } ==> stop
      | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); }
      ;
}
)metal";

const char* kMsgLen = R"metal(
sm msglen_check {
    pat zero_assign = { len = LEN_NODATA } ;
    pat nonzero_assign = { len = LEN_WORD } | { len = LEN_CACHELINE } ;
    decl { unsigned } keep;
    pat send_data = { PI_SEND(F_DATA, keep) } ;
    pat send_nodata = { PI_SEND(F_NODATA, keep) } ;
    all:
        zero_assign ==> zero_len
      | nonzero_assign ==> nonzero_len
      ;
    zero_len:
        send_data ==> { err("data send, zero len"); } ;
    nonzero_len:
        send_nodata ==> { err("nodata send, nonzero len"); } ;
}
)metal";

TEST(CompiledSm, StateIndexingIsStartStopFirst)
{
    MetalProgram mp = parseMetal(kWaitForDb);
    const CompiledSm& csm = mp.sm->compiled();
    EXPECT_EQ(csm.stateName(csm.start()), mp.sm->startState());
    EXPECT_EQ(csm.stateName(csm.stop()), StateMachine::kStop);
    EXPECT_NE(csm.start(), csm.stop());
    EXPECT_GE(csm.stateCount(), 2u);
}

TEST(CompiledSm, CompiledIsCachedPerMachine)
{
    MetalProgram mp = parseMetal(kWaitForDb);
    EXPECT_EQ(&mp.sm->compiled(), &mp.sm->compiled());
}

TEST(CompiledSm, CandidatesPreserveFirstMatchOrder)
{
    MetalProgram mp = parseMetal(kMsgLen);
    const CompiledSm& csm = mp.sm->compiled();
    // Every non-stop state's candidate list is its own rules followed by
    // the `all` rules, so a state with own rules lists them first.
    for (StateIdx s = 0; s < csm.stateCount(); ++s) {
        if (s == csm.stop())
            continue;
        const auto& own = mp.sm->rulesFor(csm.stateName(s));
        const auto& cands = csm.candidatesFor(s);
        ASSERT_GE(cands.size(), own.size());
        for (std::size_t i = 0; i < own.size(); ++i)
            EXPECT_EQ(cands[i].rule, &own[i]);
    }
}

TEST(CompiledSm, SymMaskAssignsDistinctBits)
{
    MetalProgram mp = parseMetal(kMsgLen);
    const CompiledSm& csm = mp.sm->compiled();
    std::set<std::uint64_t> bits;
    std::vector<support::SymbolId> syms;
    for (StateIdx s = 0; s < csm.stateCount(); ++s)
        for (const CompiledSm::Candidate& cand : csm.candidatesFor(s)) {
            syms.clear();
            if (!cand.rule->pattern.requiredSyms(syms))
                continue;
            for (support::SymbolId sym : syms) {
                std::uint64_t bit = csm.symMask(sym);
                ASSERT_NE(bit, 0u);
                // Power of two, and the same sym always the same bit.
                EXPECT_EQ(bit & (bit - 1), 0u);
                bits.insert(bit);
                EXPECT_EQ(csm.symMask(sym), bit);
            }
            // req_mask covers exactly its alternatives' bits.
            std::uint64_t want = 0;
            for (support::SymbolId sym : syms)
                want |= csm.symMask(sym);
            EXPECT_EQ(cand.req_mask, want);
        }
    EXPECT_FALSE(bits.empty());
    EXPECT_EQ(csm.symMask(support::kInvalidSymbol), 0u);
}

TEST(TransitionTable, CellMatchesAndTransitions)
{
    MetalProgram mp = parseMetal(kWaitForDb);
    lang::Program program;
    program.addSource("t.c",
                      "void f(void) { x = 1; WAIT_FOR_DB_FULL(a); }");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    const CompiledSm& csm = mp.sm->compiled();
    TransitionTable table(csm, cfg);

    // Find the block holding the two statements.
    int block = -1;
    for (const cfg::BasicBlock& bb : cfg.blocks())
        if (bb.stmts.size() == 2)
            block = bb.id;
    ASSERT_NE(block, -1);

    const TransitionTable::Cell& miss = table.cell(block, 0, csm.start());
    EXPECT_EQ(miss.rule, nullptr);
    EXPECT_EQ(miss.next, csm.start());

    const TransitionTable::Cell& hit = table.cell(block, 1, csm.start());
    ASSERT_NE(hit.rule, nullptr);
    EXPECT_EQ(hit.next, csm.stop());
    // The wildcard `addr` bound to the call argument.
    EXPECT_NE(table.bindings(hit).lookup("addr"), nullptr);
    // Idempotent: the same cell comes back ready.
    EXPECT_EQ(&table.cell(block, 1, csm.start()), &hit);
}

TEST(TransitionTable, StopStateCellsAreInert)
{
    MetalProgram mp = parseMetal(kWaitForDb);
    lang::Program program;
    program.addSource("t.c", "void f(void) { MISCBUS_READ_DB(a, b); }");
    cfg::Cfg cfg = cfg::CfgBuilder::build(*program.findFunction("f"));
    const CompiledSm& csm = mp.sm->compiled();
    TransitionTable table(csm, cfg);
    for (const cfg::BasicBlock& bb : cfg.blocks())
        for (std::size_t pos = 0; pos < bb.stmts.size(); ++pos) {
            const TransitionTable::Cell& cell =
                table.cell(bb.id, pos, csm.stop());
            EXPECT_EQ(cell.rule, nullptr);
            EXPECT_EQ(cell.next, csm.stop());
        }
}

/** All rule patterns of both paper checkers. */
std::vector<const match::Pattern*>
allPatterns(const StateMachine& sm)
{
    std::vector<const match::Pattern*> out;
    for (const std::string& state : sm.states())
        for (const StateMachine::Rule& rule : sm.rulesFor(state))
            out.push_back(&rule.pattern);
    return out;
}

/**
 * Property: the prefilters never reject a statement the full match
 * accepts — for every (statement, pattern) pair over a real protocol,
 * matchInStmt() success implies couldMatch(idents) and
 * couldMatchIds(ids). Also: the id-based and string-based ident
 * collections agree through the interner.
 */
TEST(TransitionTable, PrefilterNeverRejectsAMatch)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("sci"));
    MetalProgram wait = parseMetal(kWaitForDb);
    MetalProgram msg = parseMetal(kMsgLen);
    std::vector<const match::Pattern*> patterns = allPatterns(*wait.sm);
    for (const match::Pattern* p : allPatterns(*msg.sm))
        patterns.push_back(p);
    ASSERT_FALSE(patterns.empty());

    auto& interner = support::SymbolInterner::global();
    std::uint64_t stmts = 0, matches = 0;
    for (const lang::FunctionDecl* fn : loaded.program->functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        for (const cfg::BasicBlock& bb : cfg.blocks())
            for (const lang::Stmt* stmt : bb.stmts) {
                ++stmts;
                std::set<std::string> idents;
                match::Pattern::collectIdents(*stmt, idents);
                std::vector<support::SymbolId> ids;
                match::Pattern::collectIdentIds(*stmt, ids);
                // The two collections are the same set of names.
                ASSERT_EQ(ids.size(), idents.size());
                for (support::SymbolId id : ids)
                    EXPECT_TRUE(
                        idents.count(std::string(interner.name(id))));
                for (const match::Pattern* pattern : patterns) {
                    if (!pattern->matchInStmt(*stmt))
                        continue;
                    ++matches;
                    EXPECT_TRUE(pattern->couldMatch(idents));
                    EXPECT_TRUE(pattern->couldMatchIds(ids));
                }
            }
    }
    // The property is vacuous unless the corpus actually exercised it.
    EXPECT_GT(stmts, 1000u);
    EXPECT_GT(matches, 0u);
}

/**
 * Differential: both strategies produce identical engine results —
 * firings (rule and count), visits, transitions, cache hits, frontier —
 * for every function of a real protocol, under both walk modes.
 */
TEST(TransitionTable, StrategiesAgreeOnEveryCorpusFunction)
{
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("bitvector"));
    MetalProgram wait = parseMetal(kWaitForDb);
    MetalProgram msg = parseMetal(kMsgLen);
    for (bool prune : {false, true}) {
        SmRunOptions legacy_options, table_options;
        legacy_options.match_strategy = MatchStrategy::Legacy;
        legacy_options.prune_strategy = prune ? PruneStrategy::Correlated : PruneStrategy::Off;
        table_options.match_strategy = MatchStrategy::Table;
        table_options.prune_strategy = prune ? PruneStrategy::Correlated : PruneStrategy::Off;
        for (const lang::FunctionDecl* fn : loaded.program->functions()) {
            cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
            for (StateMachine* sm : {wait.sm.get(), msg.sm.get()}) {
                support::DiagnosticSink legacy_sink, table_sink;
                SmRunResult legacy = runStateMachine(*sm, cfg, legacy_sink,
                                                     legacy_options);
                SmRunResult table = runStateMachine(*sm, cfg, table_sink,
                                                    table_options);
                ASSERT_EQ(legacy.firings, table.firings)
                    << fn->name << " prune=" << prune;
                ASSERT_EQ(legacy.visits, table.visits) << fn->name;
                ASSERT_EQ(legacy.transitions, table.transitions)
                    << fn->name;
                ASSERT_EQ(legacy.cache_hits, table.cache_hits)
                    << fn->name;
                ASSERT_EQ(legacy.pruned_edges, table.pruned_edges)
                    << fn->name;
                ASSERT_EQ(legacy.peak_frontier, table.peak_frontier)
                    << fn->name;
                ASSERT_EQ(legacy_sink.diagnostics().size(),
                          table_sink.diagnostics().size())
                    << fn->name;
            }
        }
    }
}

TEST(TransitionTable, BlockSkipNeverRejectsAMatch)
{
    // The block-range prefilter's exactness property, stated directly:
    // whenever blockSkippable(block, state) says "skip", no candidate
    // rule of that state may match any statement of that block. One
    // false skip would silently drop a diagnostic, so this sweeps every
    // (function, machine, state, block) combination of a full protocol.
    corpus::LoadedProtocol loaded =
        corpus::loadProtocol(corpus::profileByName("sci"));
    MetalProgram wait = parseMetal(kWaitForDb);
    MetalProgram msg = parseMetal(kMsgLen);

    std::uint64_t skipped = 0, scanned = 0;
    for (const lang::FunctionDecl* fn : loaded.program->functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        for (StateMachine* sm : {wait.sm.get(), msg.sm.get()}) {
            const CompiledSm& csm = sm->compiled();
            TransitionTable table(csm, cfg);
            const std::vector<cfg::BasicBlock>& blocks = cfg.blocks();
            for (StateIdx s = 0; s < csm.stateCount(); ++s) {
                for (std::size_t b = 0; b < blocks.size(); ++b) {
                    if (!table.blockSkippable(static_cast<int>(b), s)) {
                        ++scanned;
                        continue;
                    }
                    ++skipped;
                    for (const lang::Stmt* stmt : blocks[b].stmts)
                        for (const CompiledSm::Candidate& cand :
                             csm.candidatesFor(s))
                            EXPECT_FALSE(
                                cand.rule->pattern.matchInStmt(*stmt))
                                << fn->name << " block " << b
                                << " state " << csm.stateName(s);
                }
            }
        }
    }
    // Vacuity guards: the sweep must have exercised both outcomes.
    EXPECT_GT(skipped, 0u);
    EXPECT_GT(scanned, 0u);
}

} // namespace
} // namespace mc::metal
