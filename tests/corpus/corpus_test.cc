#include "corpus/generator.h"

#include "checkers/buffer_mgmt.h"
#include "checkers/exec_restrict.h"
#include "checkers/registry.h"
#include "cfg/path_stats.h"

#include <gtest/gtest.h>

namespace mc::corpus {
namespace {

using checkers::CheckerSetOptions;
using checkers::makeAllCheckers;
using checkers::runCheckers;

/** Cache one loaded+checked protocol per profile across tests. */
struct CheckedProtocol
{
    LoadedProtocol loaded;
    support::DiagnosticSink sink;
    std::vector<checkers::CheckerRunStats> stats;
    checkers::CheckerSet set;

    explicit CheckedProtocol(const ProtocolProfile& profile)
        : loaded(loadProtocol(profile)), set(makeAllCheckers())
    {
        stats = runCheckers(*loaded.program, loaded.gen.spec,
                            set.pointers(), sink);
    }

    Reconciliation
    reconcile(const std::string& checker) const
    {
        return mc::corpus::reconcile(loaded.gen.ledger, sink.diagnostics(),
                                     loaded.file_function, checker);
    }
};

const CheckedProtocol&
checkedProtocol(const std::string& name)
{
    static std::map<std::string, std::unique_ptr<CheckedProtocol>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<CheckedProtocol>(
                                    profileByName(name)))
                 .first;
    }
    return *it->second;
}

class CorpusProtocolTest : public ::testing::TestWithParam<const char*>
{
};

TEST_P(CorpusProtocolTest, GeneratesDeterministically)
{
    const ProtocolProfile& profile = profileByName(GetParam());
    GeneratedProtocol a = generateProtocol(profile);
    GeneratedProtocol b = generateProtocol(profile);
    ASSERT_EQ(a.files.size(), b.files.size());
    for (std::size_t i = 0; i < a.files.size(); ++i) {
        EXPECT_EQ(a.files[i].name, b.files[i].name);
        EXPECT_EQ(a.files[i].source, b.files[i].source);
    }
}

TEST_P(CorpusProtocolTest, ParsesCleanly)
{
    const CheckedProtocol& cp = checkedProtocol(GetParam());
    EXPECT_GT(cp.loaded.program->functions().size(), 10u);
}

TEST_P(CorpusProtocolTest, LocNearTable1Target)
{
    const ProtocolProfile& profile = profileByName(GetParam());
    const CheckedProtocol& cp = checkedProtocol(GetParam());
    int loc = cp.loaded.gen.totalLoc();
    EXPECT_GT(loc, profile.target_loc * 80 / 100)
        << "protocol " << profile.name;
    EXPECT_LT(loc, profile.target_loc * 120 / 100)
        << "protocol " << profile.name;
}

TEST_P(CorpusProtocolTest, EveryCheckerReconcilesExactly)
{
    const CheckedProtocol& cp = checkedProtocol(GetParam());
    for (const auto& meta : checkers::table7Meta()) {
        Reconciliation rec = cp.reconcile(meta.name);
        EXPECT_TRUE(rec.missed.empty())
            << meta.name << ": " << rec.missed.size()
            << " seeded sites not reported; first: "
            << (rec.missed.empty() ? ""
                                   : rec.missed[0]->handler + "/" +
                                         rec.missed[0]->rule);
        // Unexpected diagnostics = reports not traceable to a seeded
        // site. Warnings that are by-design side effects (deprecated
        // macros, etc.) are not seeded, so restrict to errors.
        int unexpected_errors = 0;
        std::string first;
        for (const support::Diagnostic* d : rec.unexpected) {
            if (d->severity == support::Severity::Error) {
                ++unexpected_errors;
                if (first.empty())
                    first = d->rule + ": " + d->message;
            }
        }
        EXPECT_EQ(unexpected_errors, 0)
            << meta.name << " unexpected: " << first;
    }
}

TEST_P(CorpusProtocolTest, ErrorAndFpCountsMatchPlan)
{
    const ProtocolProfile& profile = profileByName(GetParam());
    const CheckedProtocol& cp = checkedProtocol(GetParam());

    auto found = [&](const std::string& checker, SeedClass cls) {
        return cp.reconcile(checker).foundWithClass(cls);
    };

    EXPECT_EQ(found("wait_for_db", SeedClass::Error),
              profile.race_errors);
    EXPECT_EQ(found("wait_for_db", SeedClass::FalsePositive),
              profile.race_fps);
    EXPECT_EQ(found("msglen_check", SeedClass::Error),
              profile.msglen_errors);
    EXPECT_EQ(found("msglen_check", SeedClass::FalsePositive),
              profile.msglen_fp_pairs * 2);
    EXPECT_EQ(found("buffer_mgmt", SeedClass::Error),
              profile.bm_double_free + profile.bm_leak);
    EXPECT_EQ(found("buffer_mgmt", SeedClass::Minor), profile.bm_minor);
    EXPECT_EQ(found("lanes", SeedClass::Error), profile.lanes_errors);
    EXPECT_EQ(found("exec_restrict", SeedClass::Violation),
              profile.hooks_missing);
    EXPECT_EQ(found("exec_restrict", SeedClass::Minor),
              profile.hooks_minor);
    EXPECT_EQ(found("alloc_check", SeedClass::FalsePositive),
              profile.alloc_fps);
    EXPECT_EQ(found("dir_check", SeedClass::Error), profile.dir_errors);
    EXPECT_EQ(found("dir_check", SeedClass::FalsePositive),
              profile.dir_fp_subroutine + profile.dir_fp_speculative +
                  profile.dir_fp_abstraction);
    EXPECT_EQ(found("send_wait", SeedClass::FalsePositive),
              profile.sendwait_fps);
}

TEST_P(CorpusProtocolTest, AppliedCountsNearPaperTargets)
{
    const ProtocolProfile& profile = profileByName(GetParam());
    const CheckedProtocol& cp = checkedProtocol(GetParam());
    auto applied = [&](const std::string& checker) {
        for (const auto& s : cp.stats)
            if (s.checker == checker)
                return s.applied;
        return -1;
    };
    EXPECT_EQ(applied("wait_for_db"), profile.db_reads);
    EXPECT_GE(applied("alloc_check"), profile.alloc_sites);
    if (profile.dir_segments > 0)
        EXPECT_GE(applied("dir_check"), profile.dir_segments * 3);
    EXPECT_GE(applied("msglen_check"), profile.send_segments * 2);
}

TEST_P(CorpusProtocolTest, AnnotationEconomicsMatchPlan)
{
    const ProtocolProfile& profile = profileByName(GetParam());
    const CheckedProtocol& cp = checkedProtocol(GetParam());
    const Ledger& ledger = cp.loaded.gen.ledger;
    EXPECT_EQ(ledger.count("buffer_mgmt", SeedClass::UsefulAnnotation),
              profile.bm_useful_annotations);
    EXPECT_EQ(ledger.count("buffer_mgmt", SeedClass::UselessAnnotation),
              profile.bm_useless_annotations);
    // No annotation may be reported stale.
    auto* bm = cp.set.byName("buffer_mgmt");
    auto* checker = dynamic_cast<checkers::BufferMgmtChecker*>(bm);
    ASSERT_NE(checker, nullptr);
    EXPECT_EQ(checker->annotationsUnneeded(), 0);
}

TEST_P(CorpusProtocolTest, PathStatsComputable)
{
    const CheckedProtocol& cp = checkedProtocol(GetParam());
    cfg::ProtocolPathStats agg;
    for (const lang::FunctionDecl* fn : cp.loaded.program->functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        agg.add(cfg::computePathStats(cfg));
    }
    EXPECT_GT(agg.total_paths, 50u);
    EXPECT_GT(agg.avg_length_lines, 5.0);
    EXPECT_GT(agg.max_length_lines, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CorpusProtocolTest,
                         ::testing::Values("bitvector", "dyn_ptr", "sci",
                                           "coma", "rac", "common"));

TEST(CorpusAblation, ValueSensitivityRemovesCascade)
{
    // Section 6.1: without the refinement, every MAYBE_FREE site
    // produces a small cascade of errors.
    const ProtocolProfile& profile = profileByName("dyn_ptr");
    LoadedProtocol loaded = loadProtocol(profile);

    CheckerSetOptions naive;
    naive.value_sensitive_frees = false;
    auto naive_set = makeAllCheckers(naive);
    support::DiagnosticSink naive_sink;
    runCheckers(*loaded.program, loaded.gen.spec, naive_set.pointers(),
                naive_sink);

    auto smart_set = makeAllCheckers();
    support::DiagnosticSink smart_sink;
    runCheckers(*loaded.program, loaded.gen.spec, smart_set.pointers(),
                smart_sink);

    int naive_bm =
        naive_sink.countForChecker("buffer_mgmt", support::Severity::Error);
    int smart_bm =
        smart_sink.countForChecker("buffer_mgmt", support::Severity::Error);
    EXPECT_GE(naive_bm - smart_bm, profile.maybe_free_sites);
}

TEST(CorpusLedger, TotalsMatchTable7)
{
    // 34 errors and 69 false positives across the five protocols and the
    // common code (Table 7).
    int errors = 0;
    int fps = 0;
    for (const ProtocolProfile& profile : paperProfiles()) {
        GeneratedProtocol gen = generateProtocol(profile);
        for (const SeededItem& item : gen.ledger.items()) {
            if (item.cls == SeedClass::Error)
                ++errors;
            else if (item.cls == SeedClass::FalsePositive)
                ++fps;
            else if (item.cls == SeedClass::UselessAnnotation)
                ++fps; // Table 7 folds useless annotations into FPs
        }
    }
    EXPECT_EQ(errors, 34);
    EXPECT_EQ(fps, 69);
}

} // namespace
} // namespace mc::corpus
