#include "corpus/ledger.h"

#include <gtest/gtest.h>

namespace mc::corpus {
namespace {

SeededItem
item(const std::string& handler, const std::string& checker,
     const std::string& rule, SeedClass cls)
{
    SeededItem it;
    it.protocol = "p";
    it.handler = handler;
    it.checker = checker;
    it.rule = rule;
    it.cls = cls;
    return it;
}

support::Diagnostic
diag(std::int32_t file, const std::string& checker,
     const std::string& rule)
{
    support::Diagnostic d;
    d.severity = support::Severity::Error;
    d.loc = {file, 1, 1};
    d.checker = checker;
    d.rule = rule;
    return d;
}

TEST(Ledger, CountsByClassAndChecker)
{
    Ledger ledger;
    ledger.add(item("A", "c1", "r", SeedClass::Error));
    ledger.add(item("B", "c1", "r", SeedClass::FalsePositive));
    ledger.add(item("C", "c2", "r", SeedClass::Error));
    ledger.add(item("D", "c1", "", SeedClass::UsefulAnnotation));
    EXPECT_EQ(ledger.count("c1", SeedClass::Error), 1);
    EXPECT_EQ(ledger.count("c1", SeedClass::FalsePositive), 1);
    EXPECT_EQ(ledger.count("c2", SeedClass::Error), 1);
    EXPECT_EQ(ledger.countReports("c1"), 2); // annotations are silent
}

TEST(Ledger, MergeAppends)
{
    Ledger a;
    a.add(item("A", "c", "r", SeedClass::Error));
    Ledger b;
    b.add(item("B", "c", "r", SeedClass::Error));
    a.merge(b);
    EXPECT_EQ(a.count("c", SeedClass::Error), 2);
}

TEST(Reconcile, ExactMatch)
{
    Ledger ledger;
    ledger.add(item("H", "c", "leak", SeedClass::Error));
    std::map<std::int32_t, std::string> files{{1, "H"}};
    std::vector<support::Diagnostic> diags{diag(1, "c", "leak")};
    Reconciliation rec = reconcile(ledger, diags, files, "c");
    EXPECT_EQ(rec.found.size(), 1u);
    EXPECT_TRUE(rec.missed.empty());
    EXPECT_TRUE(rec.unexpected.empty());
}

TEST(Reconcile, MissedWhenNoDiagnostic)
{
    Ledger ledger;
    ledger.add(item("H", "c", "leak", SeedClass::Error));
    Reconciliation rec = reconcile(ledger, {}, {{1, "H"}}, "c");
    EXPECT_TRUE(rec.found.empty());
    ASSERT_EQ(rec.missed.size(), 1u);
    EXPECT_EQ(rec.missed[0]->handler, "H");
}

TEST(Reconcile, UnexpectedWhenNoSeed)
{
    Ledger ledger;
    std::vector<support::Diagnostic> diags{diag(1, "c", "leak")};
    Reconciliation rec = reconcile(ledger, diags, {{1, "H"}}, "c");
    ASSERT_EQ(rec.unexpected.size(), 1u);
    EXPECT_EQ(rec.unexpected[0]->rule, "leak");
}

TEST(Reconcile, WrongHandlerIsUnexpectedAndMissed)
{
    Ledger ledger;
    ledger.add(item("H", "c", "leak", SeedClass::Error));
    std::vector<support::Diagnostic> diags{diag(2, "c", "leak")};
    Reconciliation rec =
        reconcile(ledger, diags, {{1, "H"}, {2, "Other"}}, "c");
    EXPECT_EQ(rec.unexpected.size(), 1u);
    EXPECT_EQ(rec.missed.size(), 1u);
}

TEST(Reconcile, MultisetMatching)
{
    // Two seeded double frees in one handler need two diagnostics.
    Ledger ledger;
    ledger.add(item("H", "c", "double-free", SeedClass::Error));
    ledger.add(item("H", "c", "double-free", SeedClass::FalsePositive));
    std::map<std::int32_t, std::string> files{{1, "H"}};

    std::vector<support::Diagnostic> one{diag(1, "c", "double-free")};
    Reconciliation partial = reconcile(ledger, one, files, "c");
    EXPECT_EQ(partial.found.size(), 1u);
    EXPECT_EQ(partial.missed.size(), 1u);

    std::vector<support::Diagnostic> two{diag(1, "c", "double-free"),
                                         diag(1, "c", "double-free")};
    Reconciliation full = reconcile(ledger, two, files, "c");
    EXPECT_EQ(full.found.size(), 2u);
    EXPECT_TRUE(full.missed.empty());
}

TEST(Reconcile, OtherCheckersDiagnosticsIgnored)
{
    Ledger ledger;
    ledger.add(item("H", "c", "leak", SeedClass::Error));
    std::vector<support::Diagnostic> diags{diag(1, "other", "leak"),
                                           diag(1, "c", "leak")};
    Reconciliation rec = reconcile(ledger, diags, {{1, "H"}}, "c");
    EXPECT_EQ(rec.found.size(), 1u);
    EXPECT_TRUE(rec.unexpected.empty());
}

TEST(Reconcile, AnnotationsAreNeverExpectedAsDiagnostics)
{
    Ledger ledger;
    ledger.add(item("H", "c", "", SeedClass::UsefulAnnotation));
    ledger.add(item("H", "c", "", SeedClass::UselessAnnotation));
    Reconciliation rec = reconcile(ledger, {}, {{1, "H"}}, "c");
    EXPECT_TRUE(rec.missed.empty());
}

TEST(Reconcile, FoundWithClassFilters)
{
    Ledger ledger;
    ledger.add(item("H", "c", "r", SeedClass::Error));
    ledger.add(item("H", "c", "r", SeedClass::Minor));
    std::vector<support::Diagnostic> diags{diag(1, "c", "r"),
                                           diag(1, "c", "r")};
    Reconciliation rec = reconcile(ledger, diags, {{1, "H"}}, "c");
    EXPECT_EQ(rec.foundWithClass(SeedClass::Error), 1);
    EXPECT_EQ(rec.foundWithClass(SeedClass::Minor), 1);
    EXPECT_EQ(rec.foundWithClass(SeedClass::FalsePositive), 0);
}

TEST(Ledger, SeedClassNames)
{
    EXPECT_STREQ(seedClassName(SeedClass::Error), "error");
    EXPECT_STREQ(seedClassName(SeedClass::Violation), "violation");
    EXPECT_STREQ(seedClassName(SeedClass::FalsePositive),
                 "false-positive");
    EXPECT_STREQ(seedClassName(SeedClass::Minor), "minor");
    EXPECT_STREQ(seedClassName(SeedClass::UsefulAnnotation),
                 "useful-annotation");
    EXPECT_STREQ(seedClassName(SeedClass::UselessAnnotation),
                 "useless-annotation");
}

} // namespace
} // namespace mc::corpus
