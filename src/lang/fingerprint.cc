#include "lang/fingerprint.h"

#include "lang/lexer.h"
#include "support/hash.h"

namespace mc::lang {

std::uint64_t
unitFingerprint(const support::SourceManager& sm, std::int32_t file_id)
{
    support::Fnv1a h;
    h.str(sm.fileName(file_id));
    Lexer lexer(sm, file_id);
    // Units reaching the cache already parsed once, so lexAll cannot
    // throw here; a LexError would simply propagate to the caller.
    for (const Token& tok : lexer.lexAll()) {
        // The End marker carries no diagnostic position — hashing its
        // location would make a trailing comment invalidate the unit.
        if (tok.kind == TokKind::End)
            break;
        h.u8(static_cast<std::uint8_t>(tok.kind));
        h.str(tok.text);
        h.i64(tok.loc.line);
        h.i64(tok.loc.column);
    }
    for (const std::string& directive : lexer.directives())
        h.str(directive);
    return h.value();
}

std::map<std::string, std::uint64_t>
fingerprintFunctions(const Program& program)
{
    std::map<std::string, std::uint64_t> out;
    for (const TranslationUnit& unit : program.units()) {
        // A unit that needed frontend recovery gets no fingerprints at
        // all: its token stream contains the garbage region, so caching
        // sibling results keyed on it would be fragile, and a lex-failed
        // unit cannot even be re-lexed here. Its functions are simply
        // re-analyzed every run until the unit is fixed.
        if (!unit.issues.empty())
            continue;
        std::uint64_t unit_fp =
            unitFingerprint(program.sourceManager(), unit.file_id);
        for (const FunctionDecl* fn : unit.functionDefinitions())
            out[fn->name] =
                support::Fnv1a().u64(unit_fp).str(fn->name).value();
    }
    return out;
}

} // namespace mc::lang
