#include "lang/sema.h"

#include <vector>

namespace mc::lang {

/** Lexical scope stack mapping names to declarations. */
class Sema::ScopeStack
{
  public:
    void push() { scopes_.emplace_back(); }
    void pop() { scopes_.pop_back(); }

    void
    declare(const std::string& name, const Decl* decl)
    {
        scopes_.back()[name] = decl;
    }

    const Decl*
    lookup(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        return nullptr;
    }

  private:
    std::vector<std::map<std::string, const Decl*>> scopes_;
};

namespace {

TypeId
declType(const Decl& decl, AstContext& ctx)
{
    switch (decl.dkind) {
      case DeclKind::Var:
        return static_cast<const VarDecl&>(decl).type;
      case DeclKind::Param:
        return static_cast<const ParamDecl&>(decl).type;
      case DeclKind::EnumConst:
        return ctx.types().builtin(TypeKind::Int);
      default:
        return kInvalidType;
    }
}

class FunctionAnalyzer
{
  public:
    FunctionAnalyzer(AstContext& ctx, Sema::ScopeStack& scopes)
        : ctx_(ctx), scopes_(scopes)
    {}

    void
    analyzeStmt(Stmt* stmt)
    {
        switch (stmt->skind) {
          case StmtKind::Expr:
            analyzeExpr(static_cast<ExprStmt*>(stmt)->expr);
            return;
          case StmtKind::Decl: {
            auto* s = static_cast<DeclStmt*>(stmt);
            for (VarDecl* v : s->decls) {
                if (v->init)
                    analyzeExpr(v->init);
                scopes_.declare(v->name, v);
            }
            return;
          }
          case StmtKind::Compound: {
            auto* s = static_cast<CompoundStmt*>(stmt);
            scopes_.push();
            for (Stmt* child : s->stmts)
                analyzeStmt(child);
            scopes_.pop();
            return;
          }
          case StmtKind::If: {
            auto* s = static_cast<IfStmt*>(stmt);
            analyzeExpr(s->cond);
            analyzeStmt(s->then_branch);
            if (s->else_branch)
                analyzeStmt(s->else_branch);
            return;
          }
          case StmtKind::While: {
            auto* s = static_cast<WhileStmt*>(stmt);
            analyzeExpr(s->cond);
            analyzeStmt(s->body);
            return;
          }
          case StmtKind::DoWhile: {
            auto* s = static_cast<DoWhileStmt*>(stmt);
            analyzeStmt(s->body);
            analyzeExpr(s->cond);
            return;
          }
          case StmtKind::For: {
            auto* s = static_cast<ForStmt*>(stmt);
            scopes_.push();
            if (s->init)
                analyzeStmt(s->init);
            if (s->cond)
                analyzeExpr(s->cond);
            if (s->step)
                analyzeExpr(s->step);
            analyzeStmt(s->body);
            scopes_.pop();
            return;
          }
          case StmtKind::Switch: {
            auto* s = static_cast<SwitchStmt*>(stmt);
            analyzeExpr(s->cond);
            analyzeStmt(s->body);
            return;
          }
          case StmtKind::Case:
            analyzeExpr(static_cast<CaseStmt*>(stmt)->value);
            return;
          case StmtKind::Return: {
            auto* s = static_cast<ReturnStmt*>(stmt);
            if (s->value)
                analyzeExpr(s->value);
            return;
          }
          default:
            return;
        }
    }

    void
    analyzeExpr(Expr* expr)
    {
        if (!expr)
            return;
        switch (expr->ekind) {
          case ExprKind::IntLit:
          case ExprKind::FloatLit:
          case ExprKind::CharLit:
          case ExprKind::StringLit:
            return; // typed at parse time
          case ExprKind::Ident: {
            auto* e = static_cast<IdentExpr*>(expr);
            e->decl = scopes_.lookup(e->name);
            if (e->decl)
                e->type = declType(*e->decl, ctx_);
            return;
          }
          case ExprKind::Unary: {
            auto* e = static_cast<UnaryExpr*>(expr);
            analyzeExpr(e->operand);
            switch (e->op) {
              case UnaryOp::Deref: {
                const Type& t = ctx_.types().type(e->operand->type);
                if (t.kind == TypeKind::Pointer ||
                    t.kind == TypeKind::Array)
                    e->type = t.base;
                return;
              }
              case UnaryOp::AddrOf:
                if (e->operand->type != kInvalidType)
                    e->type = ctx_.types().pointerTo(e->operand->type);
                return;
              case UnaryOp::Not:
                e->type = ctx_.types().builtin(TypeKind::Int);
                return;
              default:
                e->type = e->operand->type;
                return;
            }
          }
          case ExprKind::Binary: {
            auto* e = static_cast<BinaryExpr*>(expr);
            analyzeExpr(e->lhs);
            analyzeExpr(e->rhs);
            if (isAssignment(e->op)) {
                e->type = e->lhs->type;
                return;
            }
            switch (e->op) {
              case BinaryOp::Lt:
              case BinaryOp::Gt:
              case BinaryOp::Le:
              case BinaryOp::Ge:
              case BinaryOp::Eq:
              case BinaryOp::Ne:
              case BinaryOp::LogAnd:
              case BinaryOp::LogOr:
                e->type = ctx_.types().builtin(TypeKind::Int);
                return;
              case BinaryOp::Comma:
                e->type = e->rhs->type;
                return;
              default: {
                const TypeTable& types = ctx_.types();
                if (types.isFloating(e->lhs->type) ||
                    types.isFloating(e->rhs->type))
                    e->type = ctx_.types().builtin(TypeKind::Double);
                else if (e->lhs->type != kInvalidType)
                    e->type = e->lhs->type;
                else
                    e->type = e->rhs->type;
                return;
              }
            }
          }
          case ExprKind::Ternary: {
            auto* e = static_cast<TernaryExpr*>(expr);
            analyzeExpr(e->cond);
            analyzeExpr(e->then_expr);
            analyzeExpr(e->else_expr);
            e->type = e->then_expr->type != kInvalidType
                          ? e->then_expr->type
                          : e->else_expr->type;
            return;
          }
          case ExprKind::Call: {
            auto* e = static_cast<CallExpr*>(expr);
            if (e->callee->ekind == ExprKind::Ident) {
                auto* callee = static_cast<IdentExpr*>(e->callee);
                callee->decl = scopes_.lookup(callee->name);
                if (callee->decl &&
                    callee->decl->dkind == DeclKind::Function)
                    e->type = static_cast<const FunctionDecl*>(callee->decl)
                                  ->return_type;
            } else {
                analyzeExpr(e->callee);
            }
            for (Expr* arg : e->args)
                analyzeExpr(arg);
            return;
          }
          case ExprKind::Member: {
            auto* e = static_cast<MemberExpr*>(expr);
            analyzeExpr(e->base);
            return; // field types are not modeled
          }
          case ExprKind::Index: {
            auto* e = static_cast<IndexExpr*>(expr);
            analyzeExpr(e->base);
            analyzeExpr(e->index);
            const Type& t = ctx_.types().type(e->base->type);
            if (t.kind == TypeKind::Pointer || t.kind == TypeKind::Array)
                e->type = t.base;
            return;
          }
          case ExprKind::Cast: {
            auto* e = static_cast<CastExpr*>(expr);
            analyzeExpr(e->operand);
            e->type = e->target;
            return;
          }
          case ExprKind::Sizeof: {
            auto* e = static_cast<SizeofExpr*>(expr);
            if (e->operand)
                analyzeExpr(e->operand);
            e->type = ctx_.types().builtin(TypeKind::UInt);
            return;
          }
        }
    }

  private:
    AstContext& ctx_;
    Sema::ScopeStack& scopes_;
};

} // namespace

void
Sema::addGlobal(const Decl* decl)
{
    if (decl && !decl->name.empty())
        globals_[decl->name] = decl;
}

void
Sema::analyzeFunction(FunctionDecl& fn)
{
    ScopeStack scopes;
    scopes.push();
    for (const auto& [name, decl] : globals_)
        scopes.declare(name, decl);
    scopes.push();
    for (ParamDecl* p : fn.params)
        if (!p->name.empty())
            scopes.declare(p->name, p);
    FunctionAnalyzer analyzer(ctx_, scopes);
    if (fn.body)
        analyzer.analyzeStmt(fn.body);
    scopes.pop();
    scopes.pop();
}

void
Sema::run(TranslationUnit& tu)
{
    // First pass: register globals, functions, and enum constants so uses
    // before definitions resolve.
    for (Decl* d : tu.decls) {
        switch (d->dkind) {
          case DeclKind::Var:
          case DeclKind::Function:
            addGlobal(d);
            break;
          case DeclKind::Enum:
            for (const EnumConstDecl* c :
                 static_cast<const EnumDecl*>(d)->constants)
                addGlobal(c);
            break;
          default:
            break;
        }
    }
    for (Decl* d : tu.decls) {
        if (d->dkind == DeclKind::Function) {
            auto* fn = static_cast<FunctionDecl*>(d);
            if (fn->body)
                analyzeFunction(*fn);
        }
    }
}

} // namespace mc::lang
