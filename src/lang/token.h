#ifndef MCHECK_LANG_TOKEN_H
#define MCHECK_LANG_TOKEN_H

#include "support/source_location.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mc::lang {

/**
 * Token kinds for the FLASH protocol C dialect.
 *
 * The dialect is the subset of C that FLASH protocol handlers are written
 * in, with preprocessor macros appearing as ordinary identifiers / call
 * expressions (the paper notes their adaptation work was confined to macro
 * headers; we adopt the post-expansion surface syntax directly).
 */
enum class TokKind : std::uint8_t
{
    End,
    Identifier,
    IntLiteral,
    FloatLiteral,
    CharLiteral,
    StringLiteral,

    // Keywords.
    KwVoid, KwChar, KwShort, KwInt, KwLong, KwUnsigned, KwSigned,
    KwFloat, KwDouble, KwStruct, KwUnion, KwEnum, KwTypedef,
    KwStatic, KwExtern, KwConst, KwVolatile, KwInline, KwRegister,
    KwIf, KwElse, KwWhile, KwFor, KwDo, KwSwitch, KwCase, KwDefault,
    KwBreak, KwContinue, KwReturn, KwGoto, KwSizeof,

    // Punctuation and operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semicolon, Comma, Colon, Question, Ellipsis,
    Dot, Arrow,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    AmpAmp, PipePipe,
    PlusPlus, MinusMinus,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
    PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign,
    ShrAssign,
};

/** Human-readable spelling of a token kind (for diagnostics). */
const char* tokKindName(TokKind kind);

/** One lexed token. `text` views into the SourceManager-owned buffer. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string_view text;
    support::SourceLoc loc;

    /** Integer value for IntLiteral / CharLiteral tokens. */
    std::int64_t int_value = 0;
    /** Value for FloatLiteral tokens. */
    double float_value = 0.0;

    bool is(TokKind k) const { return kind == k; }
};

/** Maps an identifier spelling to a keyword kind, or Identifier if none. */
TokKind keywordKind(std::string_view text);

/** True for type-introducing keywords (void, int, struct, ...). */
bool isTypeKeyword(TokKind kind);

/** True for assignment operators (=, +=, ...). */
bool isAssignOp(TokKind kind);

} // namespace mc::lang

#endif // MCHECK_LANG_TOKEN_H
