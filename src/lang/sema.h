#ifndef MCHECK_LANG_SEMA_H
#define MCHECK_LANG_SEMA_H

#include "lang/ast.h"

namespace mc::lang {

/**
 * Light semantic analysis over one translation unit.
 *
 * Resolves identifier uses to their declarations (locals, parameters,
 * globals, enum constants, functions) and propagates types through
 * expressions where derivable. Checkers rely on this for:
 *  - the no-float rule (every expression with floating type is flagged);
 *  - the no-stack rules (address-of-local detection, local counting);
 *  - wildcard kind filters in patterns (a `scalar` wildcard refuses to
 *    bind expressions of floating type).
 *
 * Unresolvable names (externs, macros modeled as calls) are left with a
 * null decl and unknown type; analyses treat unknown conservatively.
 */
class Sema
{
  public:
    explicit Sema(AstContext& ctx) : ctx_(ctx) {}

    /** Run over all declarations of `tu`. Idempotent. */
    void run(TranslationUnit& tu);

    /**
     * Register a global scope name available to subsequently analyzed
     * units (e.g. functions from earlier units of the same protocol).
     */
    void addGlobal(const Decl* decl);

    class ScopeStack;

  private:
    AstContext& ctx_;

    void analyzeFunction(FunctionDecl& fn);

    std::map<std::string, const Decl*> globals_;
};

} // namespace mc::lang

#endif // MCHECK_LANG_SEMA_H
