#ifndef MCHECK_LANG_TYPE_H
#define MCHECK_LANG_TYPE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mc::lang {

/** Index of a type in a TypeTable. kInvalidType means "unknown". */
using TypeId = std::int32_t;
inline constexpr TypeId kInvalidType = -1;

/** Kind of a type in the FLASH dialect's small type system. */
enum class TypeKind : std::uint8_t
{
    Void,
    Char,
    Short,
    Int,
    Long,
    UChar,
    UShort,
    UInt,
    ULong,
    Float,
    Double,
    Pointer,
    Array,
    Struct,
    Union,
    Enum,
    /** A typedef name whose definition was not seen. */
    Named,
};

/** One interned type. Aggregate types reference others by TypeId. */
struct Type
{
    TypeKind kind = TypeKind::Int;
    /** Pointee for Pointer, element for Array. */
    TypeId base = kInvalidType;
    /** Element count for Array (0 if unsized). */
    std::int64_t array_size = 0;
    /** Tag or typedef name for Struct/Union/Enum/Named. */
    std::string name;
};

/**
 * Interns types so a TypeId comparison is a type-identity comparison.
 *
 * The table also records struct/union layouts (field types in order) so
 * the execution-restriction checker can evaluate the paper's rule that
 * no-stack handlers "do not declare arrays or structures larger than 64
 * bits".
 */
class TypeTable
{
  public:
    TypeTable();

    TypeTable(const TypeTable&) = delete;
    TypeTable& operator=(const TypeTable&) = delete;

    /** Builtin (non-aggregate, non-derived) type of the given kind. */
    TypeId builtin(TypeKind kind);

    /** Pointer to `pointee`. */
    TypeId pointerTo(TypeId pointee);

    /** Array of `count` elements of `element`. */
    TypeId arrayOf(TypeId element, std::int64_t count);

    /** Struct/union/enum/typedef-name type with tag `name`. */
    TypeId named(TypeKind kind, const std::string& name);

    /** Record the field types of a struct/union definition. */
    void defineRecord(TypeId record, std::vector<TypeId> field_types);

    const Type& type(TypeId id) const;

    /** True for Float / Double (the no-float checker's predicate). */
    bool isFloating(TypeId id) const;

    /** True for integral builtins and enums. */
    bool isInteger(TypeId id) const;

    /**
     * Size in bits, for the 64-bit stack-residency rule. Unknown types
     * conservatively report 64 bits (register-safe); unsized arrays
     * report a large value so they always trip the rule.
     */
    std::int64_t sizeInBits(TypeId id) const;

    /** "unsigned int", "struct Foo *", ... for diagnostics. */
    std::string describe(TypeId id) const;

  private:
    std::vector<Type> types_;
    std::map<std::string, TypeId> by_key_;
    std::map<TypeId, std::vector<TypeId>> record_fields_;

    TypeId intern(const std::string& key, Type t);
};

} // namespace mc::lang

#endif // MCHECK_LANG_TYPE_H
