#ifndef MCHECK_LANG_LEXER_H
#define MCHECK_LANG_LEXER_H

#include "lang/token.h"
#include "support/source_manager.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace mc::lang {

/** Thrown on malformed input (unterminated literal, stray byte, ...). */
class LexError : public std::runtime_error
{
  public:
    LexError(support::SourceLoc loc, const std::string& message)
        : std::runtime_error(message), loc_(loc)
    {}

    const support::SourceLoc& loc() const { return loc_; }

  private:
    support::SourceLoc loc_;
};

/**
 * Lexer for the FLASH protocol C dialect.
 *
 * Comments (// and block) are skipped. Preprocessor directives (#include,
 * #define, ...) are skipped to end-of-line and recorded so callers can see
 * which headers a translation unit pulls in; line continuations inside
 * directives are honored. Token text views into the buffer owned by the
 * SourceManager, which must outlive the tokens.
 */
class Lexer
{
  public:
    /**
     * Lex the file registered as `file_id` with `sm`.
     * @param sm Source manager that owns the file contents.
     * @param file_id Id returned by SourceManager::addFile.
     */
    Lexer(const support::SourceManager& sm, std::int32_t file_id);

    /** Lex the entire file into a token vector ending with an End token. */
    std::vector<Token> lexAll();

    /** Directive lines seen so far (e.g. "include \"flash.h\""). */
    const std::vector<std::string>& directives() const { return directives_; }

  private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool match(char c);
    bool atEnd() const { return pos_ >= text_.size(); }
    support::SourceLoc here() const;
    void skipTrivia();
    Token makeToken(TokKind kind, std::size_t begin,
                    const support::SourceLoc& loc) const;
    Token lexNumber(const support::SourceLoc& loc);
    Token lexIdentifier(const support::SourceLoc& loc);
    Token lexString(const support::SourceLoc& loc);
    Token lexChar(const support::SourceLoc& loc);

    std::string_view text_;
    std::int32_t file_id_;
    std::size_t pos_ = 0;
    std::int32_t line_ = 1;
    std::int32_t col_ = 1;
    std::vector<std::string> directives_;
};

/**
 * Convenience: register `source` with `sm` under `name` and lex it fully.
 */
std::vector<Token> lexString(support::SourceManager& sm, std::string name,
                             std::string source);

} // namespace mc::lang

#endif // MCHECK_LANG_LEXER_H
