#include "lang/parser.h"

#include "support/fault_injection.h"

#include <cassert>
#include <sstream>

namespace mc::lang {

namespace {

/** Binding strength for binary operators; higher binds tighter. */
int
binaryPrecedence(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return 1;
      case TokKind::AmpAmp: return 2;
      case TokKind::Pipe: return 3;
      case TokKind::Caret: return 4;
      case TokKind::Amp: return 5;
      case TokKind::EqEq:
      case TokKind::NotEq: return 6;
      case TokKind::Lt:
      case TokKind::Gt:
      case TokKind::Le:
      case TokKind::Ge: return 7;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      default: return 0;
    }
}

BinaryOp
binaryOpFor(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return BinaryOp::LogOr;
      case TokKind::AmpAmp: return BinaryOp::LogAnd;
      case TokKind::Pipe: return BinaryOp::BitOr;
      case TokKind::Caret: return BinaryOp::BitXor;
      case TokKind::Amp: return BinaryOp::BitAnd;
      case TokKind::EqEq: return BinaryOp::Eq;
      case TokKind::NotEq: return BinaryOp::Ne;
      case TokKind::Lt: return BinaryOp::Lt;
      case TokKind::Gt: return BinaryOp::Gt;
      case TokKind::Le: return BinaryOp::Le;
      case TokKind::Ge: return BinaryOp::Ge;
      case TokKind::Shl: return BinaryOp::Shl;
      case TokKind::Shr: return BinaryOp::Shr;
      case TokKind::Plus: return BinaryOp::Add;
      case TokKind::Minus: return BinaryOp::Sub;
      case TokKind::Star: return BinaryOp::Mul;
      case TokKind::Slash: return BinaryOp::Div;
      case TokKind::Percent: return BinaryOp::Rem;
      default: break;
    }
    assert(false && "not a binary operator");
    return BinaryOp::Add;
}

BinaryOp
assignOpFor(TokKind kind)
{
    switch (kind) {
      case TokKind::Assign: return BinaryOp::Assign;
      case TokKind::PlusAssign: return BinaryOp::AddAssign;
      case TokKind::MinusAssign: return BinaryOp::SubAssign;
      case TokKind::StarAssign: return BinaryOp::MulAssign;
      case TokKind::SlashAssign: return BinaryOp::DivAssign;
      case TokKind::PercentAssign: return BinaryOp::RemAssign;
      case TokKind::AmpAssign: return BinaryOp::AndAssign;
      case TokKind::PipeAssign: return BinaryOp::OrAssign;
      case TokKind::CaretAssign: return BinaryOp::XorAssign;
      case TokKind::ShlAssign: return BinaryOp::ShlAssign;
      case TokKind::ShrAssign: return BinaryOp::ShrAssign;
      default: break;
    }
    assert(false && "not an assignment operator");
    return BinaryOp::Assign;
}

} // namespace

Parser::Parser(AstContext& ctx, std::vector<Token> tokens,
               ParserSymbols* symbols, Options options)
    : ctx_(ctx), tokens_(std::move(tokens)),
      symbols_(symbols ? symbols : &local_symbols_), options_(options)
{
    assert(!tokens_.empty() && tokens_.back().kind == TokKind::End);
}

const Token&
Parser::peek(int ahead) const
{
    std::size_t p = pos_ + static_cast<std::size_t>(ahead);
    if (p >= tokens_.size())
        return tokens_.back();
    return tokens_[p];
}

const Token&
Parser::advance()
{
    const Token& tok = tokens_[pos_];
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return tok;
}

bool
Parser::accept(TokKind kind)
{
    if (check(kind)) {
        advance();
        return true;
    }
    return false;
}

const Token&
Parser::expect(TokKind kind, const char* context)
{
    if (!check(kind)) {
        std::ostringstream os;
        os << "expected '" << tokKindName(kind) << "' " << context
           << ", found '" << tokKindName(peek().kind) << '\'';
        fail(os.str());
    }
    return advance();
}

void
Parser::fail(const std::string& message) const
{
    throw ParseError(peek().loc, message);
}

// --------------------------------------------------------------------------
// Types
// --------------------------------------------------------------------------

bool
Parser::isTypeName(std::string_view name) const
{
    return symbols_->typedefs.count(std::string(name)) > 0;
}

bool
Parser::atTypeStart() const
{
    TokKind k = peek().kind;
    if (isTypeKeyword(k) || k == TokKind::KwConst ||
        k == TokKind::KwVolatile || k == TokKind::KwStatic ||
        k == TokKind::KwExtern || k == TokKind::KwRegister ||
        k == TokKind::KwInline)
        return true;
    if (k == TokKind::Identifier && isTypeName(peek().text)) {
        // `T x`, `T *x`: a type name followed by something that can start
        // a declarator. `T = 3` is an expression.
        TokKind n = peek(1).kind;
        return n == TokKind::Identifier || n == TokKind::Star ||
               n == TokKind::RParen; // cast `(T)`
    }
    return false;
}

TypeId
Parser::parseTypeSpecifier()
{
    TypeTable& types = ctx_.types();

    // Skip qualifiers and storage classes that don't change the type.
    while (accept(TokKind::KwConst) || accept(TokKind::KwVolatile) ||
           accept(TokKind::KwRegister)) {
    }

    if (accept(TokKind::KwStruct)) {
        const Token& tag = expect(TokKind::Identifier, "after 'struct'");
        return types.named(TypeKind::Struct, std::string(tag.text));
    }
    if (accept(TokKind::KwUnion)) {
        const Token& tag = expect(TokKind::Identifier, "after 'union'");
        return types.named(TypeKind::Union, std::string(tag.text));
    }
    if (accept(TokKind::KwEnum)) {
        const Token& tag = expect(TokKind::Identifier, "after 'enum'");
        return types.named(TypeKind::Enum, std::string(tag.text));
    }

    bool is_unsigned = false;
    bool is_signed = false;
    int longs = 0;
    bool saw_base = false;
    TypeKind base = TypeKind::Int;

    while (true) {
        TokKind k = peek().kind;
        if (k == TokKind::KwUnsigned) {
            is_unsigned = true;
            advance();
        } else if (k == TokKind::KwSigned) {
            is_signed = true;
            advance();
        } else if (k == TokKind::KwLong) {
            ++longs;
            advance();
        } else if (k == TokKind::KwShort) {
            base = TypeKind::Short;
            saw_base = true;
            advance();
        } else if (k == TokKind::KwVoid) {
            base = TypeKind::Void;
            saw_base = true;
            advance();
        } else if (k == TokKind::KwChar) {
            base = TypeKind::Char;
            saw_base = true;
            advance();
        } else if (k == TokKind::KwInt) {
            base = TypeKind::Int;
            saw_base = true;
            advance();
        } else if (k == TokKind::KwFloat) {
            base = TypeKind::Float;
            saw_base = true;
            advance();
        } else if (k == TokKind::KwDouble) {
            base = TypeKind::Double;
            saw_base = true;
            advance();
        } else if (k == TokKind::KwConst || k == TokKind::KwVolatile) {
            advance();
        } else {
            break;
        }
    }

    if (!saw_base && !is_unsigned && !is_signed && longs == 0) {
        // Must be a typedef name.
        if (check(TokKind::Identifier) && isTypeName(peek().text)) {
            auto it = symbols_->typedefs.find(std::string(peek().text));
            advance();
            return it->second;
        }
        fail("expected a type");
    }

    if (longs > 0 && base == TypeKind::Int)
        base = TypeKind::Long;
    if (is_unsigned) {
        switch (base) {
          case TypeKind::Char: base = TypeKind::UChar; break;
          case TypeKind::Short: base = TypeKind::UShort; break;
          case TypeKind::Long: base = TypeKind::ULong; break;
          default: base = TypeKind::UInt; break;
        }
    }
    return types.builtin(base);
}

TypeId
Parser::parseDeclaratorPointers(TypeId base)
{
    TypeId t = base;
    while (accept(TokKind::Star)) {
        while (accept(TokKind::KwConst) || accept(TokKind::KwVolatile)) {
        }
        t = ctx_.types().pointerTo(t);
    }
    return t;
}

// --------------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------------

TranslationUnit
Parser::parseTranslationUnit(std::int32_t file_id)
{
    TranslationUnit tu;
    tu.file_id = file_id;
    while (!check(TokKind::End)) {
        if (!options_.recover) {
            tu.decls.push_back(parseTopLevel());
            continue;
        }
        std::size_t start = pos_;
        support::SourceLoc start_loc = peek().loc;
        try {
            support::fault::probe("parser.top_level");
            tu.decls.push_back(parseTopLevel());
        } catch (const ParseError& err) {
            tu.decls.push_back(
                poisonAndSync(start, start_loc, err.loc(), err.what()));
        } catch (const support::InjectedFault& fault) {
            tu.decls.push_back(
                poisonAndSync(start, start_loc, start_loc, fault.what()));
        }
    }
    tu.issues = issues_;
    return tu;
}

/**
 * Panic-mode recovery: record the issue, then emit a PoisonedDecl
 * covering everything from the failed declaration's first token to the
 * resynchronization point.
 */
PoisonedDecl*
Parser::poisonAndSync(std::size_t start_pos, support::SourceLoc start_loc,
                      support::SourceLoc error_loc,
                      const std::string& message)
{
    issues_.push_back(ParseIssue{error_loc, message, "parse-error"});

    auto* decl = ctx_.make<PoisonedDecl>();
    decl->loc = start_loc;
    decl->error_loc = error_loc;
    decl->message = message;
    decl->name = guessDeclaratorName(start_pos);

    synchronizeTopLevel(start_pos);
    decl->end_loc = peek().loc;
    return decl;
}

/**
 * Skip tokens until a top-level boundary: a `;` at brace depth zero (a
 * malformed global or typedef) or the `}` that returns the depth to
 * zero (the end of a malformed function body). Depth is measured over
 * everything consumed since `start_pos`, so an error deep inside a body
 * still resynchronizes at that body's closing brace. Always consumes at
 * least one token (unless already at End) so recovery cannot loop.
 */
void
Parser::synchronizeTopLevel(std::size_t start_pos)
{
    int depth = 0;
    for (std::size_t i = start_pos; i < pos_; ++i) {
        if (tokens_[i].kind == TokKind::LBrace)
            ++depth;
        else if (tokens_[i].kind == TokKind::RBrace)
            --depth;
    }

    while (!check(TokKind::End)) {
        TokKind k = peek().kind;
        if (k == TokKind::LBrace) {
            ++depth;
        } else if (k == TokKind::RBrace) {
            --depth;
            if (depth <= 0) {
                advance();
                // A struct/enum definition's body ends `};` — eat the
                // semicolon so it isn't mistaken for a stray statement.
                accept(TokKind::Semicolon);
                return;
            }
        } else if (depth <= 0 && k == TokKind::Semicolon) {
            advance();
            return;
        }
        advance();
    }
}

/**
 * Best-effort name for the poisoned region: the identifier directly
 * before the first '(' (a function declarator), else the last
 * identifier before the error. Purely cosmetic — used in diagnostics.
 */
std::string
Parser::guessDeclaratorName(std::size_t start_pos) const
{
    std::string last_ident;
    for (std::size_t i = start_pos; i < pos_ && i < tokens_.size(); ++i) {
        const Token& tok = tokens_[i];
        if (tok.kind == TokKind::LParen && !last_ident.empty())
            return last_ident;
        if (tok.kind == TokKind::Identifier)
            last_ident = std::string(tok.text);
    }
    return last_ident;
}

Decl*
Parser::parseTopLevel()
{
    if (check(TokKind::KwTypedef))
        return parseTypedef();
    if ((check(TokKind::KwStruct) || check(TokKind::KwUnion)) &&
        peek(1).kind == TokKind::Identifier &&
        peek(2).kind == TokKind::LBrace)
        return parseRecordDefinition();
    if (check(TokKind::KwEnum) && peek(1).kind == TokKind::Identifier &&
        peek(2).kind == TokKind::LBrace)
        return parseEnumDefinition();
    return parseFunctionOrGlobal();
}

Decl*
Parser::parseTypedef()
{
    support::SourceLoc loc = peek().loc;
    expect(TokKind::KwTypedef, "at typedef");
    TypeId base = parseTypeSpecifier();
    TypeId type = parseDeclaratorPointers(base);
    const Token& name = expect(TokKind::Identifier, "in typedef");
    expect(TokKind::Semicolon, "after typedef");

    auto* decl = ctx_.make<TypedefDecl>();
    decl->loc = loc;
    decl->name = std::string(name.text);
    decl->type = type;
    symbols_->typedefs[decl->name] = type;
    return decl;
}

RecordDecl*
Parser::parseRecordDefinition()
{
    support::SourceLoc loc = peek().loc;
    bool is_union = check(TokKind::KwUnion);
    advance(); // struct / union
    const Token& tag = expect(TokKind::Identifier, "after struct/union");

    auto* decl = ctx_.make<RecordDecl>();
    decl->loc = loc;
    decl->is_union = is_union;
    decl->name = std::string(tag.text);
    decl->type = ctx_.types().named(
        is_union ? TypeKind::Union : TypeKind::Struct, decl->name);

    expect(TokKind::LBrace, "to open struct body");
    std::vector<TypeId> field_types;
    while (!check(TokKind::RBrace)) {
        TypeId base = parseTypeSpecifier();
        do {
            TypeId ft = parseDeclaratorPointers(base);
            const Token& fname =
                expect(TokKind::Identifier, "as field name");
            if (accept(TokKind::LBracket)) {
                const Token& size =
                    expect(TokKind::IntLiteral, "as array size");
                expect(TokKind::RBracket, "after array size");
                ft = ctx_.types().arrayOf(ft, size.int_value);
            }
            auto* field = ctx_.make<VarDecl>();
            field->loc = fname.loc;
            field->name = std::string(fname.text);
            field->type = ft;
            decl->fields.push_back(field);
            field_types.push_back(ft);
        } while (accept(TokKind::Comma));
        expect(TokKind::Semicolon, "after field");
    }
    expect(TokKind::RBrace, "to close struct body");
    expect(TokKind::Semicolon, "after struct definition");
    ctx_.types().defineRecord(decl->type, std::move(field_types));
    return decl;
}

EnumDecl*
Parser::parseEnumDefinition()
{
    support::SourceLoc loc = peek().loc;
    expect(TokKind::KwEnum, "at enum");
    const Token& tag = expect(TokKind::Identifier, "after enum");

    auto* decl = ctx_.make<EnumDecl>();
    decl->loc = loc;
    decl->name = std::string(tag.text);
    decl->type = ctx_.types().named(TypeKind::Enum, decl->name);

    expect(TokKind::LBrace, "to open enum body");
    std::int64_t next_value = 0;
    while (!check(TokKind::RBrace)) {
        const Token& cname =
            expect(TokKind::Identifier, "as enum constant");
        auto* constant = ctx_.make<EnumConstDecl>();
        constant->loc = cname.loc;
        constant->name = std::string(cname.text);
        if (accept(TokKind::Assign)) {
            bool negative = accept(TokKind::Minus);
            const Token& value =
                expect(TokKind::IntLiteral, "as enum value");
            constant->value =
                negative ? -value.int_value : value.int_value;
        } else {
            constant->value = next_value;
        }
        next_value = constant->value + 1;
        decl->constants.push_back(constant);
        if (!accept(TokKind::Comma))
            break;
    }
    expect(TokKind::RBrace, "to close enum body");
    expect(TokKind::Semicolon, "after enum definition");
    return decl;
}

Decl*
Parser::parseFunctionOrGlobal()
{
    support::SourceLoc loc = peek().loc;
    bool is_static = false;
    bool is_inline = false;
    bool is_extern = false;
    while (true) {
        if (accept(TokKind::KwStatic)) {
            is_static = true;
        } else if (accept(TokKind::KwInline)) {
            is_inline = true;
        } else if (accept(TokKind::KwExtern)) {
            is_extern = true;
        } else {
            break;
        }
    }

    TypeId base = parseTypeSpecifier();
    TypeId type = parseDeclaratorPointers(base);
    const Token& name = expect(TokKind::Identifier, "as declarator name");

    if (check(TokKind::LParen))
        return parseFunctionRest(type, std::string(name.text), loc,
                                 is_static, is_inline);

    // Global variable(s).
    auto* first = ctx_.make<VarDecl>();
    first->loc = loc;
    first->name = std::string(name.text);
    first->type = type;
    first->is_static = is_static;
    first->is_extern = is_extern;
    if (accept(TokKind::LBracket)) {
        const Token& size = expect(TokKind::IntLiteral, "as array size");
        expect(TokKind::RBracket, "after array size");
        first->type = ctx_.types().arrayOf(first->type, size.int_value);
    }
    if (accept(TokKind::Assign))
        first->init = parseAssignment();
    // Additional declarators share the base type; we return only the first
    // decl from the top level and attach the rest as separate decls is not
    // needed for the dialect — the corpus emits one global per statement.
    expect(TokKind::Semicolon, "after global variable");
    return first;
}

FunctionDecl*
Parser::parseFunctionRest(TypeId ret, std::string name,
                          support::SourceLoc loc, bool is_static,
                          bool is_inline)
{
    auto* fn = ctx_.make<FunctionDecl>();
    fn->loc = loc;
    fn->name = std::move(name);
    fn->return_type = ret;
    fn->is_static = is_static;
    fn->is_inline = is_inline;

    expect(TokKind::LParen, "to open parameter list");
    if (!check(TokKind::RParen)) {
        if (check(TokKind::KwVoid) && peek(1).kind == TokKind::RParen) {
            advance();
        } else {
            do {
                TypeId base = parseTypeSpecifier();
                TypeId pt = parseDeclaratorPointers(base);
                auto* param = ctx_.make<ParamDecl>();
                param->loc = peek().loc;
                param->type = pt;
                if (check(TokKind::Identifier))
                    param->name = std::string(advance().text);
                fn->params.push_back(param);
            } while (accept(TokKind::Comma));
        }
    }
    expect(TokKind::RParen, "to close parameter list");

    if (accept(TokKind::Semicolon))
        return fn; // prototype

    fn->body = parseCompound();
    return fn;
}

DeclStmt*
Parser::parseLocalDecl()
{
    auto* stmt = ctx_.make<DeclStmt>();
    stmt->loc = peek().loc;

    bool is_static = accept(TokKind::KwStatic);
    TypeId base = parseTypeSpecifier();
    do {
        TypeId type = parseDeclaratorPointers(base);
        const Token& name = expect(TokKind::Identifier, "as variable name");
        auto* var = ctx_.make<VarDecl>();
        var->loc = name.loc;
        var->name = std::string(name.text);
        var->type = type;
        var->is_static = is_static;
        if (accept(TokKind::LBracket)) {
            const Token& size =
                expect(TokKind::IntLiteral, "as array size");
            expect(TokKind::RBracket, "after array size");
            var->type = ctx_.types().arrayOf(var->type, size.int_value);
        }
        if (accept(TokKind::Assign))
            var->init = parseAssignment();
        stmt->decls.push_back(var);
    } while (accept(TokKind::Comma));
    expectStatementEnd();
    return stmt;
}

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

void
Parser::expectStatementEnd()
{
    if (accept(TokKind::Semicolon))
        return;
    if (options_.allow_missing_semicolon &&
        (check(TokKind::RBrace) || check(TokKind::End)))
        return;
    fail("expected ';' to end statement");
}

Stmt*
Parser::parseSingleStatement()
{
    Stmt* stmt = parseStatement();
    if (!check(TokKind::End))
        fail("trailing tokens after statement");
    return stmt;
}

Expr*
Parser::parseSingleExpression()
{
    Expr* expr = parseExpression();
    if (!check(TokKind::End))
        fail("trailing tokens after expression");
    return expr;
}

Stmt*
Parser::parseStatement()
{
    support::SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case TokKind::LBrace:
        return parseCompound();
      case TokKind::KwIf:
        return parseIf();
      case TokKind::KwWhile:
        return parseWhile();
      case TokKind::KwDo:
        return parseDoWhile();
      case TokKind::KwFor:
        return parseFor();
      case TokKind::KwSwitch:
        return parseSwitch();
      case TokKind::KwCase: {
        advance();
        auto* stmt = ctx_.make<CaseStmt>();
        stmt->loc = loc;
        stmt->value = parseTernary();
        expect(TokKind::Colon, "after case value");
        return stmt;
      }
      case TokKind::KwDefault: {
        advance();
        expect(TokKind::Colon, "after 'default'");
        auto* stmt = ctx_.make<DefaultStmt>();
        stmt->loc = loc;
        return stmt;
      }
      case TokKind::KwBreak: {
        advance();
        expectStatementEnd();
        auto* stmt = ctx_.make<BreakStmt>();
        stmt->loc = loc;
        return stmt;
      }
      case TokKind::KwContinue: {
        advance();
        expectStatementEnd();
        auto* stmt = ctx_.make<ContinueStmt>();
        stmt->loc = loc;
        return stmt;
      }
      case TokKind::KwReturn: {
        advance();
        auto* stmt = ctx_.make<ReturnStmt>();
        stmt->loc = loc;
        if (!check(TokKind::Semicolon) && !check(TokKind::RBrace))
            stmt->value = parseExpression();
        expectStatementEnd();
        return stmt;
      }
      case TokKind::KwGoto: {
        advance();
        const Token& label = expect(TokKind::Identifier, "after 'goto'");
        expectStatementEnd();
        auto* stmt = ctx_.make<GotoStmt>();
        stmt->loc = loc;
        stmt->label = std::string(label.text);
        return stmt;
      }
      case TokKind::Semicolon: {
        advance();
        auto* stmt = ctx_.make<EmptyStmt>();
        stmt->loc = loc;
        return stmt;
      }
      default:
        break;
    }

    // Label: `name ':'` (not followed by another ':' — no C++ scoping).
    if (check(TokKind::Identifier) && peek(1).kind == TokKind::Colon) {
        auto* stmt = ctx_.make<LabelStmt>();
        stmt->loc = loc;
        stmt->name = std::string(advance().text);
        advance(); // ':'
        return stmt;
    }

    if (atTypeStart())
        return parseLocalDecl();

    auto* stmt = ctx_.make<ExprStmt>();
    stmt->loc = loc;
    stmt->expr = parseExpression();
    expectStatementEnd();
    return stmt;
}

CompoundStmt*
Parser::parseCompound()
{
    auto* block = ctx_.make<CompoundStmt>();
    block->loc = peek().loc;
    expect(TokKind::LBrace, "to open block");
    while (!check(TokKind::RBrace)) {
        if (check(TokKind::End))
            fail("unexpected end of file inside block");
        block->stmts.push_back(parseStatement());
    }
    expect(TokKind::RBrace, "to close block");
    return block;
}

Stmt*
Parser::parseIf()
{
    auto* stmt = ctx_.make<IfStmt>();
    stmt->loc = peek().loc;
    expect(TokKind::KwIf, "at if");
    expect(TokKind::LParen, "after 'if'");
    stmt->cond = parseExpression();
    expect(TokKind::RParen, "after if condition");
    stmt->then_branch = parseStatement();
    if (accept(TokKind::KwElse))
        stmt->else_branch = parseStatement();
    return stmt;
}

Stmt*
Parser::parseWhile()
{
    auto* stmt = ctx_.make<WhileStmt>();
    stmt->loc = peek().loc;
    expect(TokKind::KwWhile, "at while");
    expect(TokKind::LParen, "after 'while'");
    stmt->cond = parseExpression();
    expect(TokKind::RParen, "after while condition");
    stmt->body = parseStatement();
    return stmt;
}

Stmt*
Parser::parseDoWhile()
{
    auto* stmt = ctx_.make<DoWhileStmt>();
    stmt->loc = peek().loc;
    expect(TokKind::KwDo, "at do");
    stmt->body = parseStatement();
    expect(TokKind::KwWhile, "after do body");
    expect(TokKind::LParen, "after 'while'");
    stmt->cond = parseExpression();
    expect(TokKind::RParen, "after do-while condition");
    expectStatementEnd();
    return stmt;
}

Stmt*
Parser::parseFor()
{
    auto* stmt = ctx_.make<ForStmt>();
    stmt->loc = peek().loc;
    expect(TokKind::KwFor, "at for");
    expect(TokKind::LParen, "after 'for'");
    if (!accept(TokKind::Semicolon)) {
        if (atTypeStart()) {
            stmt->init = parseLocalDecl();
        } else {
            auto* init = ctx_.make<ExprStmt>();
            init->loc = peek().loc;
            init->expr = parseExpression();
            expect(TokKind::Semicolon, "after for initializer");
            stmt->init = init;
        }
    }
    if (!check(TokKind::Semicolon))
        stmt->cond = parseExpression();
    expect(TokKind::Semicolon, "after for condition");
    if (!check(TokKind::RParen))
        stmt->step = parseExpression();
    expect(TokKind::RParen, "after for step");
    stmt->body = parseStatement();
    return stmt;
}

Stmt*
Parser::parseSwitch()
{
    auto* stmt = ctx_.make<SwitchStmt>();
    stmt->loc = peek().loc;
    expect(TokKind::KwSwitch, "at switch");
    expect(TokKind::LParen, "after 'switch'");
    stmt->cond = parseExpression();
    expect(TokKind::RParen, "after switch condition");
    stmt->body = parseStatement();
    return stmt;
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

Expr*
Parser::parseExpression()
{
    Expr* expr = parseAssignment();
    while (check(TokKind::Comma)) {
        support::SourceLoc loc = peek().loc;
        advance();
        auto* comma = ctx_.make<BinaryExpr>();
        comma->loc = loc;
        comma->op = BinaryOp::Comma;
        comma->lhs = expr;
        comma->rhs = parseAssignment();
        expr = comma;
    }
    return expr;
}

Expr*
Parser::parseAssignment()
{
    Expr* lhs = parseTernary();
    if (isAssignOp(peek().kind)) {
        support::SourceLoc loc = peek().loc;
        BinaryOp op = assignOpFor(advance().kind);
        auto* assign = ctx_.make<BinaryExpr>();
        assign->loc = loc;
        assign->op = op;
        assign->lhs = lhs;
        assign->rhs = parseAssignment();
        return assign;
    }
    return lhs;
}

Expr*
Parser::parseTernary()
{
    Expr* cond = parseBinary(1);
    if (!check(TokKind::Question))
        return cond;
    support::SourceLoc loc = peek().loc;
    advance();
    auto* ternary = ctx_.make<TernaryExpr>();
    ternary->loc = loc;
    ternary->cond = cond;
    ternary->then_expr = parseExpression();
    expect(TokKind::Colon, "in ternary expression");
    ternary->else_expr = parseAssignment();
    return ternary;
}

Expr*
Parser::parseBinary(int min_precedence)
{
    Expr* lhs = parseUnary();
    while (true) {
        int prec = binaryPrecedence(peek().kind);
        if (prec < min_precedence || prec == 0)
            return lhs;
        support::SourceLoc loc = peek().loc;
        BinaryOp op = binaryOpFor(advance().kind);
        Expr* rhs = parseBinary(prec + 1);
        auto* bin = ctx_.make<BinaryExpr>();
        bin->loc = loc;
        bin->op = op;
        bin->lhs = lhs;
        bin->rhs = rhs;
        lhs = bin;
    }
}

bool
Parser::looksLikeCast() const
{
    if (!check(TokKind::LParen))
        return false;
    TokKind k = peek(1).kind;
    if (isTypeKeyword(k))
        return true;
    if (k == TokKind::Identifier && isTypeName(peek(1).text)) {
        TokKind after = peek(2).kind;
        return after == TokKind::RParen || after == TokKind::Star;
    }
    return false;
}

Expr*
Parser::parseUnary()
{
    support::SourceLoc loc = peek().loc;
    auto make_unary = [&](UnaryOp op) -> Expr* {
        advance();
        auto* u = ctx_.make<UnaryExpr>();
        u->loc = loc;
        u->op = op;
        u->operand = parseUnary();
        return u;
    };

    switch (peek().kind) {
      case TokKind::Plus: return make_unary(UnaryOp::Plus);
      case TokKind::Minus: return make_unary(UnaryOp::Neg);
      case TokKind::Bang: return make_unary(UnaryOp::Not);
      case TokKind::Tilde: return make_unary(UnaryOp::BitNot);
      case TokKind::Star: return make_unary(UnaryOp::Deref);
      case TokKind::Amp: return make_unary(UnaryOp::AddrOf);
      case TokKind::PlusPlus: return make_unary(UnaryOp::PreInc);
      case TokKind::MinusMinus: return make_unary(UnaryOp::PreDec);
      case TokKind::KwSizeof: {
        advance();
        auto* s = ctx_.make<SizeofExpr>();
        s->loc = loc;
        if (check(TokKind::LParen) &&
            (isTypeKeyword(peek(1).kind) ||
             (peek(1).kind == TokKind::Identifier &&
              isTypeName(peek(1).text)))) {
            advance();
            TypeId base = parseTypeSpecifier();
            s->type_operand = parseDeclaratorPointers(base);
            expect(TokKind::RParen, "after sizeof type");
        } else {
            s->operand = parseUnary();
        }
        return s;
      }
      case TokKind::LParen:
        if (looksLikeCast()) {
            advance();
            TypeId base = parseTypeSpecifier();
            TypeId target = parseDeclaratorPointers(base);
            expect(TokKind::RParen, "after cast type");
            auto* cast = ctx_.make<CastExpr>();
            cast->loc = loc;
            cast->target = target;
            cast->operand = parseUnary();
            return cast;
        }
        break;
      default:
        break;
    }
    return parsePostfix(parsePrimary());
}

Expr*
Parser::parsePostfix(Expr* base)
{
    while (true) {
        support::SourceLoc loc = peek().loc;
        if (accept(TokKind::LParen)) {
            auto* call = ctx_.make<CallExpr>();
            call->loc = base->loc;
            call->callee = base;
            if (!check(TokKind::RParen)) {
                do {
                    call->args.push_back(parseAssignment());
                } while (accept(TokKind::Comma));
            }
            expect(TokKind::RParen, "to close call");
            base = call;
        } else if (accept(TokKind::LBracket)) {
            auto* index = ctx_.make<IndexExpr>();
            index->loc = loc;
            index->base = base;
            index->index = parseExpression();
            expect(TokKind::RBracket, "to close index");
            base = index;
        } else if (check(TokKind::Dot) || check(TokKind::Arrow)) {
            bool arrow = advance().kind == TokKind::Arrow;
            const Token& member =
                expect(TokKind::Identifier, "as member name");
            auto* mem = ctx_.make<MemberExpr>();
            mem->loc = loc;
            mem->base = base;
            mem->member = std::string(member.text);
            mem->is_arrow = arrow;
            base = mem;
        } else if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
            bool inc = advance().kind == TokKind::PlusPlus;
            auto* u = ctx_.make<UnaryExpr>();
            u->loc = loc;
            u->op = inc ? UnaryOp::PostInc : UnaryOp::PostDec;
            u->operand = base;
            base = u;
        } else {
            return base;
        }
    }
}

Expr*
Parser::parsePrimary()
{
    support::SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case TokKind::IntLiteral: {
        const Token& tok = advance();
        auto* lit = ctx_.make<IntLitExpr>();
        lit->loc = loc;
        lit->value = tok.int_value;
        lit->spelling = std::string(tok.text);
        lit->type = ctx_.types().builtin(TypeKind::Int);
        return lit;
      }
      case TokKind::FloatLiteral: {
        const Token& tok = advance();
        auto* lit = ctx_.make<FloatLitExpr>();
        lit->loc = loc;
        lit->value = tok.float_value;
        lit->type = ctx_.types().builtin(TypeKind::Double);
        return lit;
      }
      case TokKind::CharLiteral: {
        const Token& tok = advance();
        auto* lit = ctx_.make<CharLitExpr>();
        lit->loc = loc;
        lit->value = tok.int_value;
        lit->type = ctx_.types().builtin(TypeKind::Char);
        return lit;
      }
      case TokKind::StringLiteral: {
        const Token& tok = advance();
        auto* lit = ctx_.make<StringLitExpr>();
        lit->loc = loc;
        lit->value = std::string(tok.text);
        return lit;
      }
      case TokKind::Identifier: {
        const Token& tok = advance();
        auto* ident = ctx_.make<IdentExpr>();
        ident->loc = loc;
        ident->name = std::string(tok.text);
        return ident;
      }
      case TokKind::LParen: {
        advance();
        Expr* inner = parseExpression();
        expect(TokKind::RParen, "to close parenthesized expression");
        return inner;
      }
      default:
        fail(std::string("expected an expression, found '") +
             tokKindName(peek().kind) + '\'');
    }
}

TranslationUnit
parseSource(AstContext& ctx, support::SourceManager& sm, std::string name,
            std::string source, ParserSymbols* symbols)
{
    std::int32_t id = sm.addFile(std::move(name), std::move(source));
    Lexer lexer(sm, id);
    std::vector<Token> tokens = lexer.lexAll();
    Parser parser(ctx, std::move(tokens), symbols);
    TranslationUnit tu = parser.parseTranslationUnit(id);
    tu.directives = lexer.directives();
    return tu;
}

} // namespace mc::lang
