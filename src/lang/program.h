#ifndef MCHECK_LANG_PROGRAM_H
#define MCHECK_LANG_PROGRAM_H

#include "lang/ast.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "support/source_manager.h"

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mc::lang {

/**
 * A whole program under analysis: one AST arena, one source manager, and
 * every translation unit of (for example) one FLASH protocol.
 *
 * This is the unit the checkers run over: a protocol is a Program built
 * from its handler source files plus the protocol's common code.
 */
class Program
{
  public:
    /**
     * @param recover Enable frontend fault isolation: syntax errors in
     *   one declaration poison that declaration (panic-mode recovery)
     *   instead of aborting the unit, and a lex error yields an empty
     *   poisoned unit instead of propagating. Issues are recorded on
     *   each TranslationUnit; addSource never throws for malformed
     *   input in this mode.
     */
    explicit Program(bool recover = false) : sema_(ctx_), recover_(recover) {}

    Program(const Program&) = delete;
    Program& operator=(const Program&) = delete;

    /**
     * Parse `source` as a new translation unit named `name`, run Sema
     * over it, and index its function definitions.
     * Throws LexError / ParseError on malformed input unless the
     * program was built with recover = true.
     */
    TranslationUnit& addSource(std::string name, std::string source);

    /**
     * Re-parse the translation unit registered under `name` with new
     * contents, in place: the file keeps its id (so diagnostic emission
     * order matches a fresh program built from the same file list), the
     * unit keeps its slot, and every *other* unit's AST stays resident —
     * this is the per-unit invalidation step of the checking daemon.
     * Returns nullptr (and changes nothing) if no unit was built from a
     * file of that name; the caller falls back to a full rebuild.
     *
     * Granularity caveat, shared with the analysis cache (see
     * lang/fingerprint.h): identifiers in *unchanged* units that resolved
     * into the replaced unit keep their old declaration pointers. The
     * arena is append-only so they stay valid, but they can go
     * semantically stale if the edit changes a shared declaration's type.
     * Unchanged units replay from the fingerprint-keyed cache, which has
     * exactly the same per-file granularity, so the daemon and a warm
     * batch run agree byte-for-byte. The corpus and FLASH layout keep one
     * handler per file, making cross-file edits of shared declarations a
     * full-rebuild event in practice (the server rebuilds whenever the
     * file *set* changes).
     *
     * Replaced declarations leak into the arena by design (append-only
     * allocation is what keeps resident ASTs cheap to fork); a long-lived
     * caller should track `arenaWasteEstimate` and rebuild when it grows
     * past its comfort.
     */
    TranslationUnit* updateSource(const std::string& name,
                                  std::string source);

    /** Bytes of source text whose parsed declarations were replaced by
     *  updateSource — a proxy for arena waste a rebuild would reclaim. */
    std::size_t arenaWasteEstimate() const { return arena_waste_; }

    /** True when any unit recorded a frontend issue (recovery mode). */
    bool degraded() const;

    bool recovering() const { return recover_; }

    AstContext& ctx() { return ctx_; }
    const AstContext& ctx() const { return ctx_; }

    support::SourceManager& sourceManager() { return sm_; }
    const support::SourceManager& sourceManager() const { return sm_; }

    const std::deque<TranslationUnit>& units() const { return units_; }

    /** Function definitions across all units, in addition order. */
    const std::vector<const FunctionDecl*>& functions() const
    {
        return functions_;
    }

    /** Definition of `name`, or nullptr. */
    const FunctionDecl* findFunction(const std::string& name) const;

  private:
    AstContext ctx_;
    support::SourceManager sm_;
    ParserSymbols symbols_;
    Sema sema_;
    /** Lex + parse one registered file into a unit (recover rules). */
    TranslationUnit parseUnit(std::int32_t file_id);

    /** Rebuild functions_/by_name_ from units_ in slot order. */
    void reindexFunctions();

    std::deque<TranslationUnit> units_;
    std::vector<const FunctionDecl*> functions_;
    std::map<std::string, const FunctionDecl*> by_name_;
    bool recover_ = false;
    std::size_t arena_waste_ = 0;
};

} // namespace mc::lang

#endif // MCHECK_LANG_PROGRAM_H
