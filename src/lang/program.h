#ifndef MCHECK_LANG_PROGRAM_H
#define MCHECK_LANG_PROGRAM_H

#include "lang/ast.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "support/source_manager.h"

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mc::lang {

/**
 * A whole program under analysis: one AST arena, one source manager, and
 * every translation unit of (for example) one FLASH protocol.
 *
 * This is the unit the checkers run over: a protocol is a Program built
 * from its handler source files plus the protocol's common code.
 */
class Program
{
  public:
    /**
     * @param recover Enable frontend fault isolation: syntax errors in
     *   one declaration poison that declaration (panic-mode recovery)
     *   instead of aborting the unit, and a lex error yields an empty
     *   poisoned unit instead of propagating. Issues are recorded on
     *   each TranslationUnit; addSource never throws for malformed
     *   input in this mode.
     */
    explicit Program(bool recover = false) : sema_(ctx_), recover_(recover) {}

    Program(const Program&) = delete;
    Program& operator=(const Program&) = delete;

    /**
     * Parse `source` as a new translation unit named `name`, run Sema
     * over it, and index its function definitions.
     * Throws LexError / ParseError on malformed input unless the
     * program was built with recover = true.
     */
    TranslationUnit& addSource(std::string name, std::string source);

    /** True when any unit recorded a frontend issue (recovery mode). */
    bool degraded() const;

    bool recovering() const { return recover_; }

    AstContext& ctx() { return ctx_; }
    const AstContext& ctx() const { return ctx_; }

    support::SourceManager& sourceManager() { return sm_; }
    const support::SourceManager& sourceManager() const { return sm_; }

    const std::deque<TranslationUnit>& units() const { return units_; }

    /** Function definitions across all units, in addition order. */
    const std::vector<const FunctionDecl*>& functions() const
    {
        return functions_;
    }

    /** Definition of `name`, or nullptr. */
    const FunctionDecl* findFunction(const std::string& name) const;

  private:
    AstContext ctx_;
    support::SourceManager sm_;
    ParserSymbols symbols_;
    Sema sema_;
    std::deque<TranslationUnit> units_;
    std::vector<const FunctionDecl*> functions_;
    std::map<std::string, const FunctionDecl*> by_name_;
    bool recover_ = false;
};

} // namespace mc::lang

#endif // MCHECK_LANG_PROGRAM_H
