#include "lang/program.h"

namespace mc::lang {

TranslationUnit
Program::parseUnit(std::int32_t id)
{
    TranslationUnit tu;
    try {
        Lexer lexer(sm_, id);
        std::vector<Token> tokens = lexer.lexAll();
        ParserOptions options;
        options.recover = recover_;
        Parser parser(ctx_, std::move(tokens), &symbols_, options);
        tu = parser.parseTranslationUnit(id);
        tu.directives = lexer.directives();
    } catch (const LexError& err) {
        if (!recover_)
            throw;
        // The token stream is unusable; the whole unit becomes one
        // poisoned region so downstream phases see the file existed.
        tu = TranslationUnit{};
        tu.file_id = id;
        auto* poison = ctx_.make<PoisonedDecl>();
        poison->loc = err.loc();
        poison->error_loc = err.loc();
        poison->end_loc = err.loc();
        poison->message = err.what();
        tu.decls.push_back(poison);
        tu.issues.push_back(ParseIssue{err.loc(), err.what(), "lex-error"});
    }
    return tu;
}

TranslationUnit&
Program::addSource(std::string name, std::string source)
{
    std::int32_t id = sm_.addFile(std::move(name), std::move(source));
    units_.push_back(parseUnit(id));
    TranslationUnit& stored = units_.back();
    sema_.run(stored);
    for (const FunctionDecl* fn : stored.functionDefinitions()) {
        functions_.push_back(fn);
        by_name_[fn->name] = fn;
    }
    return stored;
}

TranslationUnit*
Program::updateSource(const std::string& name, std::string source)
{
    std::int32_t id = sm_.findFile(name);
    if (id < 0)
        return nullptr;
    std::size_t slot = units_.size();
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (units_[i].file_id == id) {
            slot = i;
            break;
        }
    }
    if (slot == units_.size())
        return nullptr;
    arena_waste_ += sm_.fileContents(id).size();
    if (!sm_.replaceFile(id, std::move(source)))
        return nullptr;
    units_[slot] = parseUnit(id);
    TranslationUnit& stored = units_[slot];
    sema_.run(stored);
    reindexFunctions();
    return &stored;
}

void
Program::reindexFunctions()
{
    functions_.clear();
    by_name_.clear();
    // Slot order is addition order, so the rebuilt index matches what a
    // fresh program built from the same file list would produce.
    for (TranslationUnit& unit : units_) {
        for (const FunctionDecl* fn : unit.functionDefinitions()) {
            functions_.push_back(fn);
            by_name_[fn->name] = fn;
        }
    }
}

bool
Program::degraded() const
{
    for (const TranslationUnit& unit : units_)
        if (!unit.issues.empty())
            return true;
    return false;
}

const FunctionDecl*
Program::findFunction(const std::string& name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

} // namespace mc::lang
