#include "lang/program.h"

namespace mc::lang {

TranslationUnit&
Program::addSource(std::string name, std::string source)
{
    std::int32_t id = sm_.addFile(std::move(name), std::move(source));
    TranslationUnit tu;
    try {
        Lexer lexer(sm_, id);
        std::vector<Token> tokens = lexer.lexAll();
        ParserOptions options;
        options.recover = recover_;
        Parser parser(ctx_, std::move(tokens), &symbols_, options);
        tu = parser.parseTranslationUnit(id);
        tu.directives = lexer.directives();
    } catch (const LexError& err) {
        if (!recover_)
            throw;
        // The token stream is unusable; the whole unit becomes one
        // poisoned region so downstream phases see the file existed.
        tu = TranslationUnit{};
        tu.file_id = id;
        auto* poison = ctx_.make<PoisonedDecl>();
        poison->loc = err.loc();
        poison->error_loc = err.loc();
        poison->end_loc = err.loc();
        poison->message = err.what();
        tu.decls.push_back(poison);
        tu.issues.push_back(ParseIssue{err.loc(), err.what(), "lex-error"});
    }
    units_.push_back(std::move(tu));
    TranslationUnit& stored = units_.back();
    sema_.run(stored);
    for (const FunctionDecl* fn : stored.functionDefinitions()) {
        functions_.push_back(fn);
        by_name_[fn->name] = fn;
    }
    return stored;
}

bool
Program::degraded() const
{
    for (const TranslationUnit& unit : units_)
        if (!unit.issues.empty())
            return true;
    return false;
}

const FunctionDecl*
Program::findFunction(const std::string& name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

} // namespace mc::lang
