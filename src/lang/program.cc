#include "lang/program.h"

namespace mc::lang {

TranslationUnit&
Program::addSource(std::string name, std::string source)
{
    std::int32_t id = sm_.addFile(std::move(name), std::move(source));
    Lexer lexer(sm_, id);
    std::vector<Token> tokens = lexer.lexAll();
    Parser parser(ctx_, std::move(tokens), &symbols_);
    TranslationUnit tu = parser.parseTranslationUnit(id);
    tu.directives = lexer.directives();
    units_.push_back(std::move(tu));
    TranslationUnit& stored = units_.back();
    sema_.run(stored);
    for (const FunctionDecl* fn : stored.functionDefinitions()) {
        functions_.push_back(fn);
        by_name_[fn->name] = fn;
    }
    return stored;
}

const FunctionDecl*
Program::findFunction(const std::string& name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

} // namespace mc::lang
