#ifndef MCHECK_LANG_FINGERPRINT_H
#define MCHECK_LANG_FINGERPRINT_H

#include "lang/program.h"

#include <cstdint>
#include <map>
#include <string>

namespace mc::lang {

/**
 * Stable content fingerprints for the analysis cache (frontend half of
 * the cache key: "has this function changed since the last run?").
 *
 * A translation unit's fingerprint hashes its file name, its
 * preprocessor directives, and its full token stream *with positions*
 * (kind, spelling, line, column per token). Positions are included
 * deliberately: diagnostics carry line/column numbers, so an edit that
 * only shifts code (added blank line, re-indent) must invalidate cached
 * findings even though the token values are unchanged. Conversely a
 * trailing comment adds no tokens and shifts nothing, so it correctly
 * leaves the fingerprint alone.
 *
 * A function's fingerprint is its unit's fingerprint combined with the
 * function name. Hashing the whole unit rather than carving out the
 * function's own token range is a correctness choice: any edit to a file
 * invalidates every function it defines, which can never replay stale
 * results (the corpus and FLASH layout keep one handler per file, so in
 * practice this is per-function granularity anyway).
 */

/** Fingerprint of one registered file's token stream. Stable across runs. */
std::uint64_t unitFingerprint(const support::SourceManager& sm,
                              std::int32_t file_id);

/**
 * Fingerprints for every function definition in `program`, keyed by
 * function name (definitions are unique per program).
 */
std::map<std::string, std::uint64_t>
fingerprintFunctions(const Program& program);

} // namespace mc::lang

#endif // MCHECK_LANG_FINGERPRINT_H
