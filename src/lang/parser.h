#ifndef MCHECK_LANG_PARSER_H
#define MCHECK_LANG_PARSER_H

#include "lang/ast.h"
#include "lang/lexer.h"

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace mc::lang {

/** Thrown on syntax errors; carries the offending location. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(support::SourceLoc loc, const std::string& message)
        : std::runtime_error(message), loc_(loc)
    {}

    const support::SourceLoc& loc() const { return loc_; }

  private:
    support::SourceLoc loc_;
};

/**
 * Typedef environment shared between the translation units of a program,
 * so a typedef in one (header-like) unit is visible when parsing later
 * units.
 */
struct ParserSymbols
{
    std::map<std::string, TypeId> typedefs;
};

/**
 * Recursive-descent parser for the FLASH protocol C dialect.
 *
 * Supports: functions, global/local variables, typedefs, struct/union/enum
 * definitions, the full C statement set (if/else, while, do-while, for,
 * switch/case, break/continue, return, goto/labels), and the full C
 * expression grammar with standard precedence. FLASH macros appear as call
 * expressions; no preprocessing is performed.
 */
struct ParserOptions
{
    /**
     * Permit a statement to omit its trailing ';' when followed by '}' —
     * used when parsing metal patterns, which conventionally leave the
     * semicolon off (see Figure 3 of the paper).
     */
    bool allow_missing_semicolon = false;

    /**
     * Panic-mode error recovery: instead of aborting the unit at the
     * first syntax error, record a ParseIssue, emit a PoisonedDecl for
     * the malformed region, resynchronize at the next top-level
     * boundary (a `;` or a body-closing `}` at brace depth zero), and
     * keep parsing. The other declarations of the unit still parse and
     * check. Single-statement/expression entry points ignore this flag.
     */
    bool recover = false;
};

class Parser
{
  public:
    using Options = ParserOptions;

    /**
     * @param ctx Arena receiving all created nodes.
     * @param tokens Token stream from a Lexer (must end with End).
     * @param symbols Shared typedef environment (may be null).
     */
    Parser(AstContext& ctx, std::vector<Token> tokens,
           ParserSymbols* symbols = nullptr, Options options = Options());

    /** Parse a whole file's worth of top-level declarations. */
    TranslationUnit parseTranslationUnit(std::int32_t file_id);

    /** Parse exactly one statement (used by the pattern compiler). */
    Stmt* parseSingleStatement();

    /** Parse exactly one expression (used by the pattern compiler). */
    Expr* parseSingleExpression();

    /** Issues recovered from so far (recovery mode only). */
    const std::vector<ParseIssue>& issues() const { return issues_; }

  private:
    // Error recovery.
    PoisonedDecl* poisonAndSync(std::size_t start_pos,
                                support::SourceLoc start_loc,
                                support::SourceLoc error_loc,
                                const std::string& message);
    void synchronizeTopLevel(std::size_t start_pos);
    std::string guessDeclaratorName(std::size_t start_pos) const;

    // Token access.
    const Token& peek(int ahead = 0) const;
    const Token& advance();
    bool check(TokKind kind) const { return peek().kind == kind; }
    bool accept(TokKind kind);
    const Token& expect(TokKind kind, const char* context);
    [[noreturn]] void fail(const std::string& message) const;

    // Types.
    bool atTypeStart() const;
    bool isTypeName(std::string_view name) const;
    TypeId parseTypeSpecifier();
    TypeId parseDeclaratorPointers(TypeId base);

    // Declarations.
    Decl* parseTopLevel();
    Decl* parseTypedef();
    RecordDecl* parseRecordDefinition();
    EnumDecl* parseEnumDefinition();
    Decl* parseFunctionOrGlobal();
    FunctionDecl* parseFunctionRest(TypeId ret, std::string name,
                                    support::SourceLoc loc, bool is_static,
                                    bool is_inline);
    DeclStmt* parseLocalDecl();

    // Statements.
    Stmt* parseStatement();
    CompoundStmt* parseCompound();
    Stmt* parseIf();
    Stmt* parseWhile();
    Stmt* parseDoWhile();
    Stmt* parseFor();
    Stmt* parseSwitch();
    void expectStatementEnd();

    // Expressions.
    Expr* parseExpression();      // includes comma operator
    Expr* parseAssignment();
    Expr* parseTernary();
    Expr* parseBinary(int min_precedence);
    Expr* parseUnary();
    Expr* parsePostfix(Expr* base);
    Expr* parsePrimary();
    bool looksLikeCast() const;

    AstContext& ctx_;
    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    ParserSymbols local_symbols_;
    ParserSymbols* symbols_;
    Options options_;
    std::vector<ParseIssue> issues_;
};

/**
 * Convenience: register `source` with `sm`, lex, and parse it.
 * Throws LexError / ParseError on malformed input.
 */
TranslationUnit parseSource(AstContext& ctx, support::SourceManager& sm,
                            std::string name, std::string source,
                            ParserSymbols* symbols = nullptr);

} // namespace mc::lang

#endif // MCHECK_LANG_PARSER_H
