#include "lang/token.h"

#include <unordered_map>

namespace mc::lang {

const char*
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::End: return "<eof>";
      case TokKind::Identifier: return "identifier";
      case TokKind::IntLiteral: return "integer literal";
      case TokKind::FloatLiteral: return "float literal";
      case TokKind::CharLiteral: return "char literal";
      case TokKind::StringLiteral: return "string literal";
      case TokKind::KwVoid: return "void";
      case TokKind::KwChar: return "char";
      case TokKind::KwShort: return "short";
      case TokKind::KwInt: return "int";
      case TokKind::KwLong: return "long";
      case TokKind::KwUnsigned: return "unsigned";
      case TokKind::KwSigned: return "signed";
      case TokKind::KwFloat: return "float";
      case TokKind::KwDouble: return "double";
      case TokKind::KwStruct: return "struct";
      case TokKind::KwUnion: return "union";
      case TokKind::KwEnum: return "enum";
      case TokKind::KwTypedef: return "typedef";
      case TokKind::KwStatic: return "static";
      case TokKind::KwExtern: return "extern";
      case TokKind::KwConst: return "const";
      case TokKind::KwVolatile: return "volatile";
      case TokKind::KwInline: return "inline";
      case TokKind::KwRegister: return "register";
      case TokKind::KwIf: return "if";
      case TokKind::KwElse: return "else";
      case TokKind::KwWhile: return "while";
      case TokKind::KwFor: return "for";
      case TokKind::KwDo: return "do";
      case TokKind::KwSwitch: return "switch";
      case TokKind::KwCase: return "case";
      case TokKind::KwDefault: return "default";
      case TokKind::KwBreak: return "break";
      case TokKind::KwContinue: return "continue";
      case TokKind::KwReturn: return "return";
      case TokKind::KwGoto: return "goto";
      case TokKind::KwSizeof: return "sizeof";
      case TokKind::LParen: return "(";
      case TokKind::RParen: return ")";
      case TokKind::LBrace: return "{";
      case TokKind::RBrace: return "}";
      case TokKind::LBracket: return "[";
      case TokKind::RBracket: return "]";
      case TokKind::Semicolon: return ";";
      case TokKind::Comma: return ",";
      case TokKind::Colon: return ":";
      case TokKind::Question: return "?";
      case TokKind::Ellipsis: return "...";
      case TokKind::Dot: return ".";
      case TokKind::Arrow: return "->";
      case TokKind::Plus: return "+";
      case TokKind::Minus: return "-";
      case TokKind::Star: return "*";
      case TokKind::Slash: return "/";
      case TokKind::Percent: return "%";
      case TokKind::Amp: return "&";
      case TokKind::Pipe: return "|";
      case TokKind::Caret: return "^";
      case TokKind::Tilde: return "~";
      case TokKind::Bang: return "!";
      case TokKind::Shl: return "<<";
      case TokKind::Shr: return ">>";
      case TokKind::Lt: return "<";
      case TokKind::Gt: return ">";
      case TokKind::Le: return "<=";
      case TokKind::Ge: return ">=";
      case TokKind::EqEq: return "==";
      case TokKind::NotEq: return "!=";
      case TokKind::AmpAmp: return "&&";
      case TokKind::PipePipe: return "||";
      case TokKind::PlusPlus: return "++";
      case TokKind::MinusMinus: return "--";
      case TokKind::Assign: return "=";
      case TokKind::PlusAssign: return "+=";
      case TokKind::MinusAssign: return "-=";
      case TokKind::StarAssign: return "*=";
      case TokKind::SlashAssign: return "/=";
      case TokKind::PercentAssign: return "%=";
      case TokKind::AmpAssign: return "&=";
      case TokKind::PipeAssign: return "|=";
      case TokKind::CaretAssign: return "^=";
      case TokKind::ShlAssign: return "<<=";
      case TokKind::ShrAssign: return ">>=";
    }
    return "<bad token>";
}

TokKind
keywordKind(std::string_view text)
{
    static const std::unordered_map<std::string_view, TokKind> table = {
        {"void", TokKind::KwVoid},         {"char", TokKind::KwChar},
        {"short", TokKind::KwShort},       {"int", TokKind::KwInt},
        {"long", TokKind::KwLong},         {"unsigned", TokKind::KwUnsigned},
        {"signed", TokKind::KwSigned},     {"float", TokKind::KwFloat},
        {"double", TokKind::KwDouble},     {"struct", TokKind::KwStruct},
        {"union", TokKind::KwUnion},       {"enum", TokKind::KwEnum},
        {"typedef", TokKind::KwTypedef},   {"static", TokKind::KwStatic},
        {"extern", TokKind::KwExtern},     {"const", TokKind::KwConst},
        {"volatile", TokKind::KwVolatile}, {"inline", TokKind::KwInline},
        {"register", TokKind::KwRegister}, {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},         {"while", TokKind::KwWhile},
        {"for", TokKind::KwFor},           {"do", TokKind::KwDo},
        {"switch", TokKind::KwSwitch},     {"case", TokKind::KwCase},
        {"default", TokKind::KwDefault},   {"break", TokKind::KwBreak},
        {"continue", TokKind::KwContinue}, {"return", TokKind::KwReturn},
        {"goto", TokKind::KwGoto},         {"sizeof", TokKind::KwSizeof},
    };
    auto it = table.find(text);
    return it == table.end() ? TokKind::Identifier : it->second;
}

bool
isTypeKeyword(TokKind kind)
{
    switch (kind) {
      case TokKind::KwVoid:
      case TokKind::KwChar:
      case TokKind::KwShort:
      case TokKind::KwInt:
      case TokKind::KwLong:
      case TokKind::KwUnsigned:
      case TokKind::KwSigned:
      case TokKind::KwFloat:
      case TokKind::KwDouble:
      case TokKind::KwStruct:
      case TokKind::KwUnion:
      case TokKind::KwEnum:
        return true;
      default:
        return false;
    }
}

bool
isAssignOp(TokKind kind)
{
    switch (kind) {
      case TokKind::Assign:
      case TokKind::PlusAssign:
      case TokKind::MinusAssign:
      case TokKind::StarAssign:
      case TokKind::SlashAssign:
      case TokKind::PercentAssign:
      case TokKind::AmpAssign:
      case TokKind::PipeAssign:
      case TokKind::CaretAssign:
      case TokKind::ShlAssign:
      case TokKind::ShrAssign:
        return true;
      default:
        return false;
    }
}

} // namespace mc::lang
