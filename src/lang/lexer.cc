#include "lang/lexer.h"

#include "support/text.h"

#include <cctype>
#include <cstdlib>

namespace mc::lang {

Lexer::Lexer(const support::SourceManager& sm, std::int32_t file_id)
    : text_(sm.fileContents(file_id)), file_id_(file_id)
{}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> out;
    while (true) {
        Token tok = next();
        out.push_back(tok);
        if (tok.kind == TokKind::End)
            return out;
    }
}

char
Lexer::peek(int ahead) const
{
    std::size_t p = pos_ + static_cast<std::size_t>(ahead);
    return p < text_.size() ? text_[p] : '\0';
}

char
Lexer::advance()
{
    char c = text_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

bool
Lexer::match(char c)
{
    if (atEnd() || text_[pos_] != c)
        return false;
    advance();
    return true;
}

support::SourceLoc
Lexer::here() const
{
    return support::SourceLoc{file_id_, line_, col_};
}

void
Lexer::skipTrivia()
{
    while (!atEnd()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            support::SourceLoc start = here();
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (atEnd())
                    throw LexError(start, "unterminated block comment");
                advance();
            }
            advance();
            advance();
        } else if (c == '#' && col_ == 1) {
            // Preprocessor directive: record and skip to end of line,
            // honoring backslash continuations.
            std::string directive;
            advance();
            while (!atEnd() && peek() != '\n') {
                if (peek() == '\\' && peek(1) == '\n') {
                    advance();
                    advance();
                    directive += ' ';
                    continue;
                }
                directive += advance();
            }
            directives_.push_back(std::string(support::trim(directive)));
        } else {
            return;
        }
    }
}

Token
Lexer::makeToken(TokKind kind, std::size_t begin,
                 const support::SourceLoc& loc) const
{
    Token tok;
    tok.kind = kind;
    tok.text = text_.substr(begin, pos_ - begin);
    tok.loc = loc;
    return tok;
}

Token
Lexer::lexNumber(const support::SourceLoc& loc)
{
    std::size_t begin = pos_;
    bool is_float = false;
    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        is_hex = true;
        advance();
        advance();
        while (std::isxdigit(static_cast<unsigned char>(peek())))
            advance();
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
            advance();
        if (peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(peek(1)))) {
            is_float = true;
            advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            char sign = peek(1);
            char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
            if (std::isdigit(static_cast<unsigned char>(digit))) {
                is_float = true;
                advance();
                if (peek() == '+' || peek() == '-')
                    advance();
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    advance();
            }
        }
    }
    std::size_t value_end = pos_;
    if (is_float) {
        if (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L')
            advance();
    } else {
        while (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
               peek() == 'L')
            advance();
    }
    Token tok = makeToken(is_float ? TokKind::FloatLiteral
                                   : TokKind::IntLiteral,
                          begin, loc);
    std::string value(text_.substr(begin, value_end - begin));
    if (is_float)
        tok.float_value = std::strtod(value.c_str(), nullptr);
    else
        tok.int_value = static_cast<std::int64_t>(
            std::strtoull(value.c_str(), nullptr, is_hex ? 16 : 10));
    return tok;
}

Token
Lexer::lexIdentifier(const support::SourceLoc& loc)
{
    std::size_t begin = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        advance();
    Token tok = makeToken(TokKind::Identifier, begin, loc);
    tok.kind = keywordKind(tok.text);
    return tok;
}

Token
Lexer::lexString(const support::SourceLoc& loc)
{
    std::size_t begin = pos_;
    advance(); // opening quote
    while (peek() != '"') {
        if (atEnd() || peek() == '\n')
            throw LexError(loc, "unterminated string literal");
        if (peek() == '\\')
            advance();
        advance();
    }
    advance(); // closing quote
    return makeToken(TokKind::StringLiteral, begin, loc);
}

Token
Lexer::lexChar(const support::SourceLoc& loc)
{
    std::size_t begin = pos_;
    advance(); // opening quote
    std::int64_t value = 0;
    if (peek() == '\\') {
        advance();
        char esc = advance();
        switch (esc) {
          case 'n': value = '\n'; break;
          case 't': value = '\t'; break;
          case 'r': value = '\r'; break;
          case '0': value = '\0'; break;
          case '\\': value = '\\'; break;
          case '\'': value = '\''; break;
          default: value = esc; break;
        }
    } else {
        if (atEnd() || peek() == '\n')
            throw LexError(loc, "unterminated char literal");
        value = advance();
    }
    if (!match('\''))
        throw LexError(loc, "unterminated char literal");
    Token tok = makeToken(TokKind::CharLiteral, begin, loc);
    tok.int_value = value;
    return tok;
}

Token
Lexer::next()
{
    skipTrivia();
    support::SourceLoc loc = here();
    if (atEnd())
        return Token{TokKind::End, "", loc, 0, 0.0};

    char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber(loc);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifier(loc);
    if (c == '"')
        return lexString(loc);
    if (c == '\'')
        return lexChar(loc);

    std::size_t begin = pos_;
    advance();
    auto tok = [&](TokKind kind) { return makeToken(kind, begin, loc); };
    switch (c) {
      case '(': return tok(TokKind::LParen);
      case ')': return tok(TokKind::RParen);
      case '{': return tok(TokKind::LBrace);
      case '}': return tok(TokKind::RBrace);
      case '[': return tok(TokKind::LBracket);
      case ']': return tok(TokKind::RBracket);
      case ';': return tok(TokKind::Semicolon);
      case ',': return tok(TokKind::Comma);
      case '?': return tok(TokKind::Question);
      case '~': return tok(TokKind::Tilde);
      case ':': return tok(TokKind::Colon);
      case '.':
        if (peek() == '.' && peek(1) == '.') {
            advance();
            advance();
            return tok(TokKind::Ellipsis);
        }
        return tok(TokKind::Dot);
      case '+':
        if (match('+')) return tok(TokKind::PlusPlus);
        if (match('=')) return tok(TokKind::PlusAssign);
        return tok(TokKind::Plus);
      case '-':
        if (match('-')) return tok(TokKind::MinusMinus);
        if (match('=')) return tok(TokKind::MinusAssign);
        if (match('>')) return tok(TokKind::Arrow);
        return tok(TokKind::Minus);
      case '*':
        if (match('=')) return tok(TokKind::StarAssign);
        return tok(TokKind::Star);
      case '/':
        if (match('=')) return tok(TokKind::SlashAssign);
        return tok(TokKind::Slash);
      case '%':
        if (match('=')) return tok(TokKind::PercentAssign);
        return tok(TokKind::Percent);
      case '&':
        if (match('&')) return tok(TokKind::AmpAmp);
        if (match('=')) return tok(TokKind::AmpAssign);
        return tok(TokKind::Amp);
      case '|':
        if (match('|')) return tok(TokKind::PipePipe);
        if (match('=')) return tok(TokKind::PipeAssign);
        return tok(TokKind::Pipe);
      case '^':
        if (match('=')) return tok(TokKind::CaretAssign);
        return tok(TokKind::Caret);
      case '!':
        if (match('=')) return tok(TokKind::NotEq);
        return tok(TokKind::Bang);
      case '<':
        if (match('<'))
            return match('=') ? tok(TokKind::ShlAssign) : tok(TokKind::Shl);
        if (match('=')) return tok(TokKind::Le);
        return tok(TokKind::Lt);
      case '>':
        if (match('>'))
            return match('=') ? tok(TokKind::ShrAssign) : tok(TokKind::Shr);
        if (match('=')) return tok(TokKind::Ge);
        return tok(TokKind::Gt);
      case '=':
        if (match('=')) return tok(TokKind::EqEq);
        return tok(TokKind::Assign);
      default:
        throw LexError(loc, std::string("unexpected character '") + c + "'");
    }
}

std::vector<Token>
lexString(support::SourceManager& sm, std::string name, std::string source)
{
    std::int32_t id = sm.addFile(std::move(name), std::move(source));
    Lexer lexer(sm, id);
    return lexer.lexAll();
}

} // namespace mc::lang
