#include "lang/type.h"

#include <sstream>

namespace mc::lang {

namespace {

const char*
builtinName(TypeKind kind)
{
    switch (kind) {
      case TypeKind::Void: return "void";
      case TypeKind::Char: return "char";
      case TypeKind::Short: return "short";
      case TypeKind::Int: return "int";
      case TypeKind::Long: return "long";
      case TypeKind::UChar: return "unsigned char";
      case TypeKind::UShort: return "unsigned short";
      case TypeKind::UInt: return "unsigned int";
      case TypeKind::ULong: return "unsigned long";
      case TypeKind::Float: return "float";
      case TypeKind::Double: return "double";
      default: return "?";
    }
}

} // namespace

TypeTable::TypeTable() = default;

TypeId
TypeTable::intern(const std::string& key, Type t)
{
    auto it = by_key_.find(key);
    if (it != by_key_.end())
        return it->second;
    TypeId id = static_cast<TypeId>(types_.size());
    types_.push_back(std::move(t));
    by_key_.emplace(key, id);
    return id;
}

TypeId
TypeTable::builtin(TypeKind kind)
{
    Type t;
    t.kind = kind;
    return intern(std::string("b:") + builtinName(kind), t);
}

TypeId
TypeTable::pointerTo(TypeId pointee)
{
    std::ostringstream key;
    key << "p:" << pointee;
    Type t;
    t.kind = TypeKind::Pointer;
    t.base = pointee;
    return intern(key.str(), t);
}

TypeId
TypeTable::arrayOf(TypeId element, std::int64_t count)
{
    std::ostringstream key;
    key << "a:" << element << ':' << count;
    Type t;
    t.kind = TypeKind::Array;
    t.base = element;
    t.array_size = count;
    return intern(key.str(), t);
}

TypeId
TypeTable::named(TypeKind kind, const std::string& name)
{
    std::ostringstream key;
    key << "n:" << static_cast<int>(kind) << ':' << name;
    Type t;
    t.kind = kind;
    t.name = name;
    return intern(key.str(), t);
}

void
TypeTable::defineRecord(TypeId record, std::vector<TypeId> field_types)
{
    record_fields_[record] = std::move(field_types);
}

const Type&
TypeTable::type(TypeId id) const
{
    static const Type unknown{TypeKind::Named, kInvalidType, 0, "<unknown>"};
    if (id < 0 || id >= static_cast<TypeId>(types_.size()))
        return unknown;
    return types_[static_cast<std::size_t>(id)];
}

bool
TypeTable::isFloating(TypeId id) const
{
    TypeKind k = type(id).kind;
    return k == TypeKind::Float || k == TypeKind::Double;
}

bool
TypeTable::isInteger(TypeId id) const
{
    switch (type(id).kind) {
      case TypeKind::Char:
      case TypeKind::Short:
      case TypeKind::Int:
      case TypeKind::Long:
      case TypeKind::UChar:
      case TypeKind::UShort:
      case TypeKind::UInt:
      case TypeKind::ULong:
      case TypeKind::Enum:
        return true;
      default:
        return false;
    }
}

std::int64_t
TypeTable::sizeInBits(TypeId id) const
{
    const Type& t = type(id);
    switch (t.kind) {
      case TypeKind::Void: return 0;
      case TypeKind::Char:
      case TypeKind::UChar: return 8;
      case TypeKind::Short:
      case TypeKind::UShort: return 16;
      case TypeKind::Int:
      case TypeKind::UInt:
      case TypeKind::Enum:
      case TypeKind::Float: return 32;
      case TypeKind::Long:
      case TypeKind::ULong:
      case TypeKind::Double:
      case TypeKind::Pointer: return 64;
      case TypeKind::Array: {
        if (t.array_size <= 0)
            return 1 << 20; // unsized arrays always trip the 64-bit rule
        return t.array_size * sizeInBits(t.base);
      }
      case TypeKind::Struct:
      case TypeKind::Union: {
        auto it = record_fields_.find(id);
        if (it == record_fields_.end())
            return 1 << 20; // opaque records are never register-safe
        std::int64_t bits = 0;
        for (TypeId f : it->second) {
            std::int64_t fb = sizeInBits(f);
            if (t.kind == TypeKind::Union)
                bits = fb > bits ? fb : bits;
            else
                bits += fb;
        }
        return bits;
      }
      case TypeKind::Named:
        return 64; // unknown typedefs are assumed register-sized
    }
    return 64;
}

std::string
TypeTable::describe(TypeId id) const
{
    if (id == kInvalidType)
        return "<unknown>";
    const Type& t = type(id);
    switch (t.kind) {
      case TypeKind::Pointer:
        return describe(t.base) + " *";
      case TypeKind::Array: {
        std::ostringstream os;
        os << describe(t.base) << '[' << t.array_size << ']';
        return os.str();
      }
      case TypeKind::Struct: return "struct " + t.name;
      case TypeKind::Union: return "union " + t.name;
      case TypeKind::Enum: return "enum " + t.name;
      case TypeKind::Named: return t.name;
      default: return builtinName(t.kind);
    }
}

} // namespace mc::lang
