#ifndef MCHECK_LANG_AST_H
#define MCHECK_LANG_AST_H

#include "lang/type.h"
#include "support/interner.h"
#include "support/source_location.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mc::lang {

class AstContext;

/** Root of the AST node hierarchy. Nodes are owned by an AstContext. */
struct Node
{
    support::SourceLoc loc;

    virtual ~Node() = default;
};

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

enum class ExprKind : std::uint8_t
{
    IntLit, FloatLit, CharLit, StringLit, Ident,
    Unary, Binary, Ternary, Call, Member, Index, Cast, Sizeof,
};

enum class UnaryOp : std::uint8_t
{
    Plus, Neg, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec,
};

enum class BinaryOp : std::uint8_t
{
    Add, Sub, Mul, Div, Rem, Shl, Shr,
    Lt, Gt, Le, Ge, Eq, Ne,
    BitAnd, BitOr, BitXor, LogAnd, LogOr, Comma,
    Assign, AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
    AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign,
};

/** True for `=` and compound assignments. */
bool isAssignment(BinaryOp op);

/** C spelling of the operator ("+", "<<=", ...). */
const char* unaryOpSpelling(UnaryOp op);
const char* binaryOpSpelling(BinaryOp op);

struct Decl;

struct Expr : Node
{
    ExprKind ekind;
    /** Filled in by Sema where derivable; kInvalidType otherwise. */
    TypeId type = kInvalidType;

    explicit Expr(ExprKind k) : ekind(k) {}
};

struct IntLitExpr : Expr
{
    std::int64_t value = 0;
    /** Original spelling, so 0x10 and 16 stay distinguishable. */
    std::string spelling;

    IntLitExpr() : Expr(ExprKind::IntLit) {}
};

struct FloatLitExpr : Expr
{
    double value = 0.0;

    FloatLitExpr() : Expr(ExprKind::FloatLit) {}
};

struct CharLitExpr : Expr
{
    std::int64_t value = 0;

    CharLitExpr() : Expr(ExprKind::CharLit) {}
};

struct StringLitExpr : Expr
{
    /** Spelling including quotes. */
    std::string value;

    StringLitExpr() : Expr(ExprKind::StringLit) {}
};

struct IdentExpr : Expr
{
    std::string name;
    /** Resolved by Sema when the name has a visible declaration. */
    const Decl* decl = nullptr;
    /**
     * Lazily cached interned id of `name` (see identSymbol()). Relaxed
     * atomic: concurrent fills race benignly — every writer stores the
     * same value, since the global interner is idempotent per string.
     */
    mutable std::atomic<support::SymbolId> sym_cache{
        support::kInvalidSymbol};

    IdentExpr() : Expr(ExprKind::Ident) {}
};

/**
 * The interned symbol id of an identifier node, cached on the node so the
 * matching hot path pays the interner's hash-and-lock cost once per node
 * per process instead of once per visit.
 */
inline support::SymbolId
identSymbol(const IdentExpr& e)
{
    support::SymbolId sym = e.sym_cache.load(std::memory_order_relaxed);
    if (sym == support::kInvalidSymbol) {
        sym = support::SymbolInterner::global().intern(e.name);
        e.sym_cache.store(sym, std::memory_order_relaxed);
    }
    return sym;
}

struct UnaryExpr : Expr
{
    UnaryOp op = UnaryOp::Plus;
    Expr* operand = nullptr;

    UnaryExpr() : Expr(ExprKind::Unary) {}
};

struct BinaryExpr : Expr
{
    BinaryOp op = BinaryOp::Add;
    Expr* lhs = nullptr;
    Expr* rhs = nullptr;

    BinaryExpr() : Expr(ExprKind::Binary) {}
};

struct TernaryExpr : Expr
{
    Expr* cond = nullptr;
    Expr* then_expr = nullptr;
    Expr* else_expr = nullptr;

    TernaryExpr() : Expr(ExprKind::Ternary) {}
};

struct CallExpr : Expr
{
    Expr* callee = nullptr;
    std::vector<Expr*> args;

    CallExpr() : Expr(ExprKind::Call) {}

    /**
     * Name of the called function/macro if the callee is a plain
     * identifier, else "".
     */
    std::string_view calleeName() const;
};

struct MemberExpr : Expr
{
    Expr* base = nullptr;
    std::string member;
    bool is_arrow = false;

    MemberExpr() : Expr(ExprKind::Member) {}
};

struct IndexExpr : Expr
{
    Expr* base = nullptr;
    Expr* index = nullptr;

    IndexExpr() : Expr(ExprKind::Index) {}
};

struct CastExpr : Expr
{
    TypeId target = kInvalidType;
    Expr* operand = nullptr;

    CastExpr() : Expr(ExprKind::Cast) {}
};

struct SizeofExpr : Expr
{
    /** Exactly one of these is set. */
    Expr* operand = nullptr;
    TypeId type_operand = kInvalidType;

    SizeofExpr() : Expr(ExprKind::Sizeof) {}
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

enum class StmtKind : std::uint8_t
{
    Expr, Decl, Compound, If, While, DoWhile, For, Switch,
    Case, Default, Break, Continue, Return, Goto, Label, Empty,
};

struct Stmt : Node
{
    StmtKind skind;

    /** Payload of the lazily installed identifier-scan cache. */
    struct IdentScan
    {
        /** Sorted unique interned ids of every identifier in the stmt. */
        std::vector<support::SymbolId> ids;
    };
    /**
     * Identifier-scan cache, installed once per node by stmtIdentIds()
     * (compare-and-swap; losers of a racy double-compute delete their
     * copy). Mutable/atomic for the same reason as IdentExpr::sym_cache:
     * the AST is immutable after Sema, and concurrent checkers may warm
     * the cache for the same node simultaneously.
     */
    mutable std::atomic<const IdentScan*> ident_scan{nullptr};

    explicit Stmt(StmtKind k) : skind(k) {}
    ~Stmt() override
    {
        delete ident_scan.load(std::memory_order_relaxed);
    }
};

struct VarDecl;

struct ExprStmt : Stmt
{
    Expr* expr = nullptr;

    ExprStmt() : Stmt(StmtKind::Expr) {}
};

struct DeclStmt : Stmt
{
    std::vector<VarDecl*> decls;

    DeclStmt() : Stmt(StmtKind::Decl) {}
};

struct CompoundStmt : Stmt
{
    std::vector<Stmt*> stmts;

    CompoundStmt() : Stmt(StmtKind::Compound) {}
};

struct IfStmt : Stmt
{
    Expr* cond = nullptr;
    Stmt* then_branch = nullptr;
    Stmt* else_branch = nullptr; // may be null

    IfStmt() : Stmt(StmtKind::If) {}
};

struct WhileStmt : Stmt
{
    Expr* cond = nullptr;
    Stmt* body = nullptr;

    WhileStmt() : Stmt(StmtKind::While) {}
};

struct DoWhileStmt : Stmt
{
    Stmt* body = nullptr;
    Expr* cond = nullptr;

    DoWhileStmt() : Stmt(StmtKind::DoWhile) {}
};

struct ForStmt : Stmt
{
    Stmt* init = nullptr;  // ExprStmt, DeclStmt, or null
    Expr* cond = nullptr;  // may be null
    Expr* step = nullptr;  // may be null
    Stmt* body = nullptr;

    ForStmt() : Stmt(StmtKind::For) {}
};

struct SwitchStmt : Stmt
{
    Expr* cond = nullptr;
    /** Usually a CompoundStmt containing Case/Default markers. */
    Stmt* body = nullptr;

    SwitchStmt() : Stmt(StmtKind::Switch) {}
};

/** `case V:` marker inside a switch body (labels the next statement). */
struct CaseStmt : Stmt
{
    Expr* value = nullptr;

    CaseStmt() : Stmt(StmtKind::Case) {}
};

struct DefaultStmt : Stmt
{
    DefaultStmt() : Stmt(StmtKind::Default) {}
};

struct BreakStmt : Stmt
{
    BreakStmt() : Stmt(StmtKind::Break) {}
};

struct ContinueStmt : Stmt
{
    ContinueStmt() : Stmt(StmtKind::Continue) {}
};

struct ReturnStmt : Stmt
{
    Expr* value = nullptr; // may be null

    ReturnStmt() : Stmt(StmtKind::Return) {}
};

struct GotoStmt : Stmt
{
    std::string label;

    GotoStmt() : Stmt(StmtKind::Goto) {}
};

/** `name:` marker preceding the next statement in a compound. */
struct LabelStmt : Stmt
{
    std::string name;

    LabelStmt() : Stmt(StmtKind::Label) {}
};

struct EmptyStmt : Stmt
{
    EmptyStmt() : Stmt(StmtKind::Empty) {}
};

// --------------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------------

enum class DeclKind : std::uint8_t
{
    Var, Param, Function, Record, Typedef, Enum, EnumConst, Poisoned,
};

struct Decl : Node
{
    DeclKind dkind;
    std::string name;

    explicit Decl(DeclKind k) : dkind(k) {}
};

struct VarDecl : Decl
{
    TypeId type = kInvalidType;
    Expr* init = nullptr; // may be null
    bool is_static = false;
    bool is_extern = false;

    VarDecl() : Decl(DeclKind::Var) {}
};

struct ParamDecl : Decl
{
    TypeId type = kInvalidType;

    ParamDecl() : Decl(DeclKind::Param) {}
};

struct FunctionDecl : Decl
{
    TypeId return_type = kInvalidType;
    std::vector<ParamDecl*> params;
    CompoundStmt* body = nullptr; // null for prototypes
    bool is_static = false;
    bool is_inline = false;

    FunctionDecl() : Decl(DeclKind::Function) {}

    bool isDefinition() const { return body != nullptr; }
};

struct RecordDecl : Decl
{
    bool is_union = false;
    std::vector<VarDecl*> fields;
    TypeId type = kInvalidType;

    RecordDecl() : Decl(DeclKind::Record) {}
};

struct TypedefDecl : Decl
{
    TypeId type = kInvalidType;

    TypedefDecl() : Decl(DeclKind::Typedef) {}
};

struct EnumConstDecl : Decl
{
    std::int64_t value = 0;

    EnumConstDecl() : Decl(DeclKind::EnumConst) {}
};

struct EnumDecl : Decl
{
    std::vector<EnumConstDecl*> constants;
    TypeId type = kInvalidType;

    EnumDecl() : Decl(DeclKind::Enum) {}
};

/**
 * Placeholder for a top-level declaration that failed to parse when the
 * parser runs in recovery mode. It marks the skipped source region so
 * later phases know something lived here; `name` is the best-effort
 * declarator name ("" when unrecognizable). Poisoned decls are never
 * function definitions, so checkers and fingerprints skip them
 * naturally.
 */
struct PoisonedDecl : Decl
{
    /** The parse error that poisoned this region. */
    std::string message;
    /** Where the error was reported (loc is where the region starts). */
    support::SourceLoc error_loc;
    /** First location after the skipped region. */
    support::SourceLoc end_loc;

    PoisonedDecl() : Decl(DeclKind::Poisoned) {}
};

// --------------------------------------------------------------------------
// Containers
// --------------------------------------------------------------------------

/**
 * One problem found while turning a source file into an AST (a syntax
 * error recovered from, or a lex error that emptied the unit).
 */
struct ParseIssue
{
    support::SourceLoc loc;
    std::string message;
    /** Diagnostic rule id: "parse-error" or "lex-error". */
    std::string rule = "parse-error";
};

/** All top-level declarations parsed from one source file. */
struct TranslationUnit
{
    std::int32_t file_id = 0;
    std::vector<Decl*> decls;
    std::vector<std::string> directives;
    /** Recovered-from frontend errors; non-empty means degraded. */
    std::vector<ParseIssue> issues;

    /** Function definitions in declaration order. */
    std::vector<const FunctionDecl*> functionDefinitions() const;
};

/**
 * Arena that owns every AST node and the type table for one program.
 *
 * Raw Node pointers elsewhere in the system are non-owning borrows whose
 * lifetime is that of the context.
 */
class AstContext
{
  public:
    AstContext() = default;

    AstContext(const AstContext&) = delete;
    AstContext& operator=(const AstContext&) = delete;

    /** Allocate a node of type T constructed from `args`. */
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        auto node = std::make_unique<T>(std::forward<Args>(args)...);
        T* raw = node.get();
        nodes_.push_back(std::move(node));
        return raw;
    }

    TypeTable& types() { return types_; }
    const TypeTable& types() const { return types_; }

    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    TypeTable types_;
};

// --------------------------------------------------------------------------
// Traversal and utility functions
// --------------------------------------------------------------------------

/** Invoke `fn` on each direct child expression of `expr`. */
void forEachChildExpr(const Expr& expr,
                      const std::function<void(const Expr&)>& fn);

/** Invoke `fn` on `expr` and all subexpressions, pre-order. */
void forEachSubExpr(const Expr& expr,
                    const std::function<void(const Expr&)>& fn);

/**
 * Invoke `fn` on the expressions directly owned by `stmt` (condition of an
 * if, value of a return, ...), without descending into sub-statements.
 */
void forEachTopLevelExpr(const Stmt& stmt,
                         const std::function<void(const Expr&)>& fn);

/**
 * Invoke `fn` on every IdentExpr occurring in `stmt`'s top-level
 * expressions (including subexpressions). This is the ident-collection
 * primitive behind pattern prefilters.
 */
void forEachIdent(const Stmt& stmt,
                  const std::function<void(const IdentExpr&)>& fn);

/**
 * The sorted unique interned identifier ids of `stmt`, computed once per
 * node and cached on it (Stmt::ident_scan). This is the per-statement
 * input of pattern prefilters; the cache makes it free on every engine
 * run after the first. Thread-safe; the reference lives as long as the
 * statement's AST.
 */
const std::vector<support::SymbolId>& stmtIdentIds(const Stmt& stmt);

/**
 * Replace `out` with the sorted unique interned identifier ids of
 * `stmt`, without touching the per-node cache — the allocation-reusing
 * collector behind arena lowering (cfg/flat_cfg.h), where spans are
 * stored inline instead of per node. stmtIdentIds() shares this logic.
 */
void collectStmtIdentIds(const Stmt& stmt,
                         std::vector<support::SymbolId>& out);

/**
 * Statically-dispatched twin of forEachIdent for hot paths: same visit
 * order and coverage, but direct switch recursion instead of per-node
 * std::function indirection.
 */
template <typename Fn>
void
visitIdentsFast(const Expr& expr, Fn&& fn)
{
    switch (expr.ekind) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::CharLit:
      case ExprKind::StringLit:
        return;
      case ExprKind::Ident:
        fn(static_cast<const IdentExpr&>(expr));
        return;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        if (u.operand) visitIdentsFast(*u.operand, fn);
        return;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        if (b.lhs) visitIdentsFast(*b.lhs, fn);
        if (b.rhs) visitIdentsFast(*b.rhs, fn);
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        if (t.cond) visitIdentsFast(*t.cond, fn);
        if (t.then_expr) visitIdentsFast(*t.then_expr, fn);
        if (t.else_expr) visitIdentsFast(*t.else_expr, fn);
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        if (c.callee) visitIdentsFast(*c.callee, fn);
        for (const Expr* a : c.args)
            if (a) visitIdentsFast(*a, fn);
        return;
      }
      case ExprKind::Member: {
        const auto& m = static_cast<const MemberExpr&>(expr);
        if (m.base) visitIdentsFast(*m.base, fn);
        return;
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        if (i.base) visitIdentsFast(*i.base, fn);
        if (i.index) visitIdentsFast(*i.index, fn);
        return;
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(expr);
        if (c.operand) visitIdentsFast(*c.operand, fn);
        return;
      }
      case ExprKind::Sizeof: {
        const auto& s = static_cast<const SizeofExpr&>(expr);
        if (s.operand) visitIdentsFast(*s.operand, fn);
        return;
      }
    }
}

template <typename Fn>
void
visitIdentsFast(const Stmt& stmt, Fn&& fn)
{
    switch (stmt.skind) {
      case StmtKind::Expr: {
        const auto& s = static_cast<const ExprStmt&>(stmt);
        if (s.expr) visitIdentsFast(*s.expr, fn);
        return;
      }
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        for (const VarDecl* v : s.decls)
            if (v->init) visitIdentsFast(*v->init, fn);
        return;
      }
      case StmtKind::If:
        if (const Expr* e = static_cast<const IfStmt&>(stmt).cond)
            visitIdentsFast(*e, fn);
        return;
      case StmtKind::While:
        if (const Expr* e = static_cast<const WhileStmt&>(stmt).cond)
            visitIdentsFast(*e, fn);
        return;
      case StmtKind::DoWhile:
        if (const Expr* e = static_cast<const DoWhileStmt&>(stmt).cond)
            visitIdentsFast(*e, fn);
        return;
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        if (s.cond) visitIdentsFast(*s.cond, fn);
        if (s.step) visitIdentsFast(*s.step, fn);
        return;
      }
      case StmtKind::Switch:
        if (const Expr* e = static_cast<const SwitchStmt&>(stmt).cond)
            visitIdentsFast(*e, fn);
        return;
      case StmtKind::Case:
        if (const Expr* e = static_cast<const CaseStmt&>(stmt).value)
            visitIdentsFast(*e, fn);
        return;
      case StmtKind::Return:
        if (const Expr* e = static_cast<const ReturnStmt&>(stmt).value)
            visitIdentsFast(*e, fn);
        return;
      default:
        return;
    }
}

/** Invoke `fn` on `stmt` and all nested statements, pre-order. */
void forEachStmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn);

/** Structural equality of expressions (ignores locations and types). */
bool exprEquals(const Expr& a, const Expr& b);

/** Render an expression as C source (for diagnostics and tests). */
std::string exprToString(const Expr& expr);

/** Render a statement as a single line of C-ish source. */
std::string stmtToString(const Stmt& stmt);

/** `expr` as a CallExpr if it is one (directly), else nullptr. */
const CallExpr* asCall(const Expr& expr);

/**
 * If `stmt` is an expression statement whose expression is a call (or an
 * assignment whose RHS is a call), return that call.
 */
const CallExpr* stmtAsCall(const Stmt& stmt);

} // namespace mc::lang

#endif // MCHECK_LANG_AST_H
