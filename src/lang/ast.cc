#include "lang/ast.h"

#include <algorithm>
#include <sstream>

namespace mc::lang {

bool
isAssignment(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Assign:
      case BinaryOp::AddAssign:
      case BinaryOp::SubAssign:
      case BinaryOp::MulAssign:
      case BinaryOp::DivAssign:
      case BinaryOp::RemAssign:
      case BinaryOp::AndAssign:
      case BinaryOp::OrAssign:
      case BinaryOp::XorAssign:
      case BinaryOp::ShlAssign:
      case BinaryOp::ShrAssign:
        return true;
      default:
        return false;
    }
}

const char*
unaryOpSpelling(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Plus: return "+";
      case UnaryOp::Neg: return "-";
      case UnaryOp::Not: return "!";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::Deref: return "*";
      case UnaryOp::AddrOf: return "&";
      case UnaryOp::PreInc:
      case UnaryOp::PostInc: return "++";
      case UnaryOp::PreDec:
      case UnaryOp::PostDec: return "--";
    }
    return "?";
}

const char*
binaryOpSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Rem: return "%";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::LogAnd: return "&&";
      case BinaryOp::LogOr: return "||";
      case BinaryOp::Comma: return ",";
      case BinaryOp::Assign: return "=";
      case BinaryOp::AddAssign: return "+=";
      case BinaryOp::SubAssign: return "-=";
      case BinaryOp::MulAssign: return "*=";
      case BinaryOp::DivAssign: return "/=";
      case BinaryOp::RemAssign: return "%=";
      case BinaryOp::AndAssign: return "&=";
      case BinaryOp::OrAssign: return "|=";
      case BinaryOp::XorAssign: return "^=";
      case BinaryOp::ShlAssign: return "<<=";
      case BinaryOp::ShrAssign: return ">>=";
    }
    return "?";
}

std::string_view
CallExpr::calleeName() const
{
    if (callee && callee->ekind == ExprKind::Ident)
        return static_cast<const IdentExpr*>(callee)->name;
    return {};
}

std::vector<const FunctionDecl*>
TranslationUnit::functionDefinitions() const
{
    std::vector<const FunctionDecl*> out;
    for (const Decl* d : decls) {
        if (d->dkind == DeclKind::Function) {
            const auto* fn = static_cast<const FunctionDecl*>(d);
            if (fn->isDefinition())
                out.push_back(fn);
        }
    }
    return out;
}

void
forEachChildExpr(const Expr& expr, const std::function<void(const Expr&)>& fn)
{
    switch (expr.ekind) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::CharLit:
      case ExprKind::StringLit:
      case ExprKind::Ident:
        return;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        if (u.operand) fn(*u.operand);
        return;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        if (b.lhs) fn(*b.lhs);
        if (b.rhs) fn(*b.rhs);
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        if (t.cond) fn(*t.cond);
        if (t.then_expr) fn(*t.then_expr);
        if (t.else_expr) fn(*t.else_expr);
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        if (c.callee) fn(*c.callee);
        for (const Expr* a : c.args)
            if (a) fn(*a);
        return;
      }
      case ExprKind::Member: {
        const auto& m = static_cast<const MemberExpr&>(expr);
        if (m.base) fn(*m.base);
        return;
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        if (i.base) fn(*i.base);
        if (i.index) fn(*i.index);
        return;
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(expr);
        if (c.operand) fn(*c.operand);
        return;
      }
      case ExprKind::Sizeof: {
        const auto& s = static_cast<const SizeofExpr&>(expr);
        if (s.operand) fn(*s.operand);
        return;
      }
    }
}

void
forEachSubExpr(const Expr& expr, const std::function<void(const Expr&)>& fn)
{
    fn(expr);
    forEachChildExpr(expr,
                     [&](const Expr& child) { forEachSubExpr(child, fn); });
}

void
forEachTopLevelExpr(const Stmt& stmt,
                    const std::function<void(const Expr&)>& fn)
{
    switch (stmt.skind) {
      case StmtKind::Expr: {
        const auto& s = static_cast<const ExprStmt&>(stmt);
        if (s.expr) fn(*s.expr);
        return;
      }
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        for (const VarDecl* v : s.decls)
            if (v->init) fn(*v->init);
        return;
      }
      case StmtKind::If:
        if (const Expr* e = static_cast<const IfStmt&>(stmt).cond) fn(*e);
        return;
      case StmtKind::While:
        if (const Expr* e = static_cast<const WhileStmt&>(stmt).cond) fn(*e);
        return;
      case StmtKind::DoWhile:
        if (const Expr* e = static_cast<const DoWhileStmt&>(stmt).cond)
            fn(*e);
        return;
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        if (s.cond) fn(*s.cond);
        if (s.step) fn(*s.step);
        return;
      }
      case StmtKind::Switch:
        if (const Expr* e = static_cast<const SwitchStmt&>(stmt).cond)
            fn(*e);
        return;
      case StmtKind::Case:
        if (const Expr* e = static_cast<const CaseStmt&>(stmt).value) fn(*e);
        return;
      case StmtKind::Return:
        if (const Expr* e = static_cast<const ReturnStmt&>(stmt).value)
            fn(*e);
        return;
      default:
        return;
    }
}

void
forEachIdent(const Stmt& stmt,
             const std::function<void(const IdentExpr&)>& fn)
{
    forEachTopLevelExpr(stmt, [&](const Expr& top) {
        forEachSubExpr(top, [&](const Expr& e) {
            if (e.ekind == ExprKind::Ident)
                fn(static_cast<const IdentExpr&>(e));
        });
    });
}

void
collectStmtIdentIds(const Stmt& stmt,
                    std::vector<support::SymbolId>& out)
{
    out.clear();
    visitIdentsFast(stmt, [&](const IdentExpr& e) {
        out.push_back(identSymbol(e));
    });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

const std::vector<support::SymbolId>&
stmtIdentIds(const Stmt& stmt)
{
    const Stmt::IdentScan* scan =
        stmt.ident_scan.load(std::memory_order_acquire);
    if (!scan) {
        auto* fresh = new Stmt::IdentScan;
        collectStmtIdentIds(stmt, fresh->ids);
        const Stmt::IdentScan* expected = nullptr;
        if (stmt.ident_scan.compare_exchange_strong(
                expected, fresh, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            scan = fresh;
        } else {
            delete fresh; // another thread won the install race
            scan = expected;
        }
    }
    return scan->ids;
}

void
forEachStmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn)
{
    fn(stmt);
    switch (stmt.skind) {
      case StmtKind::Compound: {
        const auto& s = static_cast<const CompoundStmt&>(stmt);
        for (const Stmt* child : s.stmts)
            forEachStmt(*child, fn);
        return;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        if (s.then_branch) forEachStmt(*s.then_branch, fn);
        if (s.else_branch) forEachStmt(*s.else_branch, fn);
        return;
      }
      case StmtKind::While:
        if (const Stmt* b = static_cast<const WhileStmt&>(stmt).body)
            forEachStmt(*b, fn);
        return;
      case StmtKind::DoWhile:
        if (const Stmt* b = static_cast<const DoWhileStmt&>(stmt).body)
            forEachStmt(*b, fn);
        return;
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        if (s.init) forEachStmt(*s.init, fn);
        if (s.body) forEachStmt(*s.body, fn);
        return;
      }
      case StmtKind::Switch:
        if (const Stmt* b = static_cast<const SwitchStmt&>(stmt).body)
            forEachStmt(*b, fn);
        return;
      default:
        return;
    }
}

bool
exprEquals(const Expr& a, const Expr& b)
{
    if (a.ekind != b.ekind)
        return false;
    switch (a.ekind) {
      case ExprKind::IntLit:
        return static_cast<const IntLitExpr&>(a).value ==
               static_cast<const IntLitExpr&>(b).value;
      case ExprKind::FloatLit:
        return static_cast<const FloatLitExpr&>(a).value ==
               static_cast<const FloatLitExpr&>(b).value;
      case ExprKind::CharLit:
        return static_cast<const CharLitExpr&>(a).value ==
               static_cast<const CharLitExpr&>(b).value;
      case ExprKind::StringLit:
        return static_cast<const StringLitExpr&>(a).value ==
               static_cast<const StringLitExpr&>(b).value;
      case ExprKind::Ident:
        return static_cast<const IdentExpr&>(a).name ==
               static_cast<const IdentExpr&>(b).name;
      case ExprKind::Unary: {
        const auto& ua = static_cast<const UnaryExpr&>(a);
        const auto& ub = static_cast<const UnaryExpr&>(b);
        return ua.op == ub.op && exprEquals(*ua.operand, *ub.operand);
      }
      case ExprKind::Binary: {
        const auto& ba = static_cast<const BinaryExpr&>(a);
        const auto& bb = static_cast<const BinaryExpr&>(b);
        return ba.op == bb.op && exprEquals(*ba.lhs, *bb.lhs) &&
               exprEquals(*ba.rhs, *bb.rhs);
      }
      case ExprKind::Ternary: {
        const auto& ta = static_cast<const TernaryExpr&>(a);
        const auto& tb = static_cast<const TernaryExpr&>(b);
        return exprEquals(*ta.cond, *tb.cond) &&
               exprEquals(*ta.then_expr, *tb.then_expr) &&
               exprEquals(*ta.else_expr, *tb.else_expr);
      }
      case ExprKind::Call: {
        const auto& ca = static_cast<const CallExpr&>(a);
        const auto& cb = static_cast<const CallExpr&>(b);
        if (!exprEquals(*ca.callee, *cb.callee) ||
            ca.args.size() != cb.args.size())
            return false;
        for (std::size_t i = 0; i < ca.args.size(); ++i)
            if (!exprEquals(*ca.args[i], *cb.args[i]))
                return false;
        return true;
      }
      case ExprKind::Member: {
        const auto& ma = static_cast<const MemberExpr&>(a);
        const auto& mb = static_cast<const MemberExpr&>(b);
        return ma.member == mb.member && ma.is_arrow == mb.is_arrow &&
               exprEquals(*ma.base, *mb.base);
      }
      case ExprKind::Index: {
        const auto& ia = static_cast<const IndexExpr&>(a);
        const auto& ib = static_cast<const IndexExpr&>(b);
        return exprEquals(*ia.base, *ib.base) &&
               exprEquals(*ia.index, *ib.index);
      }
      case ExprKind::Cast: {
        const auto& ca = static_cast<const CastExpr&>(a);
        const auto& cb = static_cast<const CastExpr&>(b);
        // Target types may come from different TypeTables; compare
        // operands only. Checkers never rely on cast-type equality.
        return exprEquals(*ca.operand, *cb.operand);
      }
      case ExprKind::Sizeof: {
        const auto& sa = static_cast<const SizeofExpr&>(a);
        const auto& sb = static_cast<const SizeofExpr&>(b);
        if ((sa.operand == nullptr) != (sb.operand == nullptr))
            return false;
        if (sa.operand)
            return exprEquals(*sa.operand, *sb.operand);
        return true;
      }
    }
    return false;
}

namespace {

void
printExpr(std::ostream& os, const Expr& expr)
{
    switch (expr.ekind) {
      case ExprKind::IntLit: {
        const auto& e = static_cast<const IntLitExpr&>(expr);
        if (!e.spelling.empty())
            os << e.spelling;
        else
            os << e.value;
        return;
      }
      case ExprKind::FloatLit:
        os << static_cast<const FloatLitExpr&>(expr).value;
        return;
      case ExprKind::CharLit:
        os << '\'' << static_cast<char>(
                          static_cast<const CharLitExpr&>(expr).value)
           << '\'';
        return;
      case ExprKind::StringLit:
        os << static_cast<const StringLitExpr&>(expr).value;
        return;
      case ExprKind::Ident:
        os << static_cast<const IdentExpr&>(expr).name;
        return;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        if (u.op == UnaryOp::PostInc || u.op == UnaryOp::PostDec) {
            printExpr(os, *u.operand);
            os << unaryOpSpelling(u.op);
            return;
        }
        os << unaryOpSpelling(u.op);
        // Parenthesize a nested prefix operand so `-(-x)` does not print
        // as `--x` (and `&(&x)` as `&&x`), which would re-lex as one
        // token.
        bool nested_prefix =
            u.operand->ekind == ExprKind::Unary &&
            static_cast<const UnaryExpr*>(u.operand)->op !=
                UnaryOp::PostInc &&
            static_cast<const UnaryExpr*>(u.operand)->op !=
                UnaryOp::PostDec;
        if (nested_prefix) {
            os << '(';
            printExpr(os, *u.operand);
            os << ')';
        } else {
            printExpr(os, *u.operand);
        }
        return;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        os << '(';
        printExpr(os, *b.lhs);
        os << ' ' << binaryOpSpelling(b.op) << ' ';
        printExpr(os, *b.rhs);
        os << ')';
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        os << '(';
        printExpr(os, *t.cond);
        os << " ? ";
        printExpr(os, *t.then_expr);
        os << " : ";
        printExpr(os, *t.else_expr);
        os << ')';
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        printExpr(os, *c.callee);
        os << '(';
        for (std::size_t i = 0; i < c.args.size(); ++i) {
            if (i) os << ", ";
            printExpr(os, *c.args[i]);
        }
        os << ')';
        return;
      }
      case ExprKind::Member: {
        const auto& m = static_cast<const MemberExpr&>(expr);
        printExpr(os, *m.base);
        os << (m.is_arrow ? "->" : ".") << m.member;
        return;
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        printExpr(os, *i.base);
        os << '[';
        printExpr(os, *i.index);
        os << ']';
        return;
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(expr);
        os << "(cast)";
        printExpr(os, *c.operand);
        return;
      }
      case ExprKind::Sizeof: {
        const auto& s = static_cast<const SizeofExpr&>(expr);
        os << "sizeof(";
        if (s.operand)
            printExpr(os, *s.operand);
        else
            os << "type";
        os << ')';
        return;
      }
    }
}

} // namespace

std::string
exprToString(const Expr& expr)
{
    std::ostringstream os;
    printExpr(os, expr);
    return os.str();
}

std::string
stmtToString(const Stmt& stmt)
{
    std::ostringstream os;
    switch (stmt.skind) {
      case StmtKind::Expr:
        printExpr(os, *static_cast<const ExprStmt&>(stmt).expr);
        os << ';';
        break;
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        os << "decl";
        for (const VarDecl* v : s.decls)
            os << ' ' << v->name;
        os << ';';
        break;
      }
      case StmtKind::Compound: os << "{...}"; break;
      case StmtKind::If: {
        os << "if (";
        printExpr(os, *static_cast<const IfStmt&>(stmt).cond);
        os << ") ...";
        break;
      }
      case StmtKind::While: {
        os << "while (";
        printExpr(os, *static_cast<const WhileStmt&>(stmt).cond);
        os << ") ...";
        break;
      }
      case StmtKind::DoWhile: os << "do ... while (...)"; break;
      case StmtKind::For: os << "for (...) ..."; break;
      case StmtKind::Switch: {
        os << "switch (";
        printExpr(os, *static_cast<const SwitchStmt&>(stmt).cond);
        os << ") ...";
        break;
      }
      case StmtKind::Case: {
        os << "case ";
        printExpr(os, *static_cast<const CaseStmt&>(stmt).value);
        os << ':';
        break;
      }
      case StmtKind::Default: os << "default:"; break;
      case StmtKind::Break: os << "break;"; break;
      case StmtKind::Continue: os << "continue;"; break;
      case StmtKind::Return: {
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        os << "return";
        if (s.value) {
            os << ' ';
            printExpr(os, *s.value);
        }
        os << ';';
        break;
      }
      case StmtKind::Goto:
        os << "goto " << static_cast<const GotoStmt&>(stmt).label << ';';
        break;
      case StmtKind::Label:
        os << static_cast<const LabelStmt&>(stmt).name << ':';
        break;
      case StmtKind::Empty: os << ';'; break;
    }
    return os.str();
}

const CallExpr*
asCall(const Expr& expr)
{
    if (expr.ekind == ExprKind::Call)
        return static_cast<const CallExpr*>(&expr);
    return nullptr;
}

const CallExpr*
stmtAsCall(const Stmt& stmt)
{
    if (stmt.skind != StmtKind::Expr)
        return nullptr;
    const Expr* e = static_cast<const ExprStmt&>(stmt).expr;
    if (!e)
        return nullptr;
    if (const CallExpr* call = asCall(*e))
        return call;
    if (e->ekind == ExprKind::Binary) {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        if (isAssignment(b.op))
            return asCall(*b.rhs);
    }
    return nullptr;
}

} // namespace mc::lang
