#include "server/resident.h"

#include "support/hash.h"

#include <fstream>
#include <sstream>

namespace mc::server {

namespace {

/** Resident file snapshots kept before the least-recently-used drops. */
constexpr std::size_t kMaxFileSnapshots = 4;

/**
 * Arena waste (bytes of replaced source) past which an in-place
 * re-parse is traded for a full rebuild: append-only arenas make edits
 * cheap but never reclaim, so a long editing session must eventually
 * start fresh. 8 MiB is ~40 re-parses of the largest corpus handler.
 */
constexpr std::size_t kArenaWasteRebuildBytes = 8ull << 20;

/** Read every file in request order; false with the batch error line. */
bool
readAll(const std::vector<std::string>& files, const FileReader& reader,
        std::vector<std::string>& contents,
        std::vector<std::uint64_t>& hashes, std::string& error_line)
{
    contents.assign(files.size(), {});
    hashes.assign(files.size(), 0);
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::string error;
        if (!reader(files[i], contents[i], error)) {
            error_line = "mccheck: " + error;
            return false;
        }
        hashes[i] = support::fnv1a(contents[i]);
    }
    return true;
}

/**
 * Parse every file into `program` (consumes `contents`). Recovery mode
 * matches both batch file modes, so malformed input degrades instead of
 * throwing; the catch blocks mirror batch loadSources for defense in
 * depth, producing its exact error line.
 */
bool
buildInto(lang::Program& program, const std::vector<std::string>& files,
          std::vector<std::string>& contents, std::string& error_line)
{
    for (std::size_t i = 0; i < files.size(); ++i) {
        try {
            program.addSource(files[i], std::move(contents[i]));
        } catch (const lang::ParseError& e) {
            std::ostringstream os;
            os << files[i] << ':' << e.loc().line << ':' << e.loc().column
               << ": parse error: " << e.what();
            error_line = os.str();
            return false;
        } catch (const lang::LexError& e) {
            std::ostringstream os;
            os << files[i] << ':' << e.loc().line << ": lex error: "
               << e.what();
            error_line = os.str();
            return false;
        }
    }
    return true;
}

} // namespace

bool
readDiskFile(const std::string& path, std::string& contents,
             std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
    return true;
}

ResidentState::ResidentState()
    : memory_cache_(cache::AnalysisCache::inMemory())
{}

void
ResidentState::openDocument(const std::string& path, std::string text)
{
    documents_[path] = std::move(text);
}

bool
ResidentState::closeDocument(const std::string& path)
{
    return documents_.erase(path) > 0;
}

bool
ResidentState::hasDocument(const std::string& path) const
{
    return documents_.count(path) > 0;
}

bool
ResidentState::readFile(const std::string& path, std::string& contents,
                        std::string& error) const
{
    auto it = documents_.find(path);
    if (it != documents_.end()) {
        contents = it->second;
        return true;
    }
    return readDiskFile(path, contents, error);
}

ResidentState::FileSnapshot*
ResidentState::findSnapshot(const std::vector<std::string>& files)
{
    for (FileSnapshot& snap : snapshots_)
        if (snap.files == files)
            return &snap;
    return nullptr;
}

PreparedProgram
buildProgramOneShot(const std::vector<std::string>& files,
                    const FileReader& reader)
{
    PreparedProgram prepared;
    std::vector<std::string> contents;
    std::vector<std::uint64_t> hashes;
    if (!readAll(files, reader, contents, hashes, prepared.error))
        return prepared;
    auto program = std::make_unique<lang::Program>(/*recover=*/true);
    if (!buildInto(*program, files, contents, prepared.error))
        return prepared;
    prepared.program = program.get();
    prepared.owned = std::move(program);
    prepared.files_reparsed = files.size();
    prepared.ok = true;
    return prepared;
}

PreparedProgram
ResidentState::prepareFiles(const std::vector<std::string>& files,
                            const FileReader& reader)
{
    PreparedProgram prepared;

    // Read every input up front, in request order, so "cannot open"
    // surfaces for the same (first) file a batch run would report.
    std::vector<std::string> contents;
    std::vector<std::uint64_t> hashes;
    if (!readAll(files, reader, contents, hashes, prepared.error))
        return prepared;

    FileSnapshot* snap = findSnapshot(files);
    if (snap &&
        snap->program->arenaWasteEstimate() <= kArenaWasteRebuildBytes) {
        bool in_place_ok = true;
        std::uint64_t reparsed = 0;
        for (std::size_t i = 0; i < files.size() && in_place_ok; ++i) {
            if (snap->hashes[i] == hashes[i])
                continue;
            // Copied, not moved: if a later file's in-place update fails
            // the rebuild below still needs every file's contents.
            if (snap->program->updateSource(files[i], contents[i])) {
                snap->hashes[i] = hashes[i];
                ++reparsed;
            } else {
                in_place_ok = false;
            }
        }
        if (in_place_ok) {
            snap->last_used = ++use_seq_;
            prepared.program = snap->program.get();
            prepared.cfg_cache = snap->cfg_cache.get();
            prepared.files_reparsed = reparsed;
            prepared.reused = true;
            prepared.ok = true;
            return prepared;
        }
    }

    // Full (re)build.
    auto program = std::make_unique<lang::Program>(/*recover=*/true);
    if (!buildInto(*program, files, contents, prepared.error))
        return prepared;

    if (snap) {
        // Same file list, but reuse fell through (arena pressure or a
        // failed in-place update): replace the stale snapshot's guts.
        snap->hashes = std::move(hashes);
        snap->program = std::move(program);
        snap->cfg_cache = std::make_unique<checkers::CfgCache>();
        snap->last_used = ++use_seq_;
    } else {
        if (snapshots_.size() >= kMaxFileSnapshots) {
            std::size_t oldest = 0;
            for (std::size_t i = 1; i < snapshots_.size(); ++i)
                if (snapshots_[i].last_used <
                    snapshots_[oldest].last_used)
                    oldest = i;
            snapshots_.erase(snapshots_.begin() +
                             static_cast<std::ptrdiff_t>(oldest));
        }
        FileSnapshot fresh;
        fresh.files = files;
        fresh.hashes = std::move(hashes);
        fresh.program = std::move(program);
        fresh.cfg_cache = std::make_unique<checkers::CfgCache>();
        fresh.last_used = ++use_seq_;
        snapshots_.push_back(std::move(fresh));
        snap = &snapshots_.back();
    }

    prepared.program = snap->program.get();
    prepared.cfg_cache = snap->cfg_cache.get();
    prepared.files_reparsed = files.size();
    prepared.ok = true;
    return prepared;
}

corpus::LoadedProtocol&
ResidentState::protocolSnapshot(const std::string& protocol,
                                checkers::CfgCache*& cfgs, bool& reused)
{
    auto it = protocols_.find(protocol);
    if (it == protocols_.end()) {
        ProtocolSnapshot snap;
        snap.loaded =
            corpus::loadProtocol(corpus::profileByName(protocol));
        snap.cfg_cache = std::make_unique<checkers::CfgCache>();
        it = protocols_.emplace(protocol, std::move(snap)).first;
        reused = false;
    } else {
        reused = true;
    }
    cfgs = it->second.cfg_cache.get();
    return it->second.loaded;
}

const metal::MetalProgram&
ResidentState::metalProgram(const std::string& source,
                            const std::string& origin)
{
    const std::uint64_t key = support::fnv1a(source);
    auto it = metal_.find(key);
    if (it == metal_.end())
        it = metal_.emplace(key, metal::parseMetal(source, origin)).first;
    return it->second;
}

std::size_t
ResidentState::residentFunctionCount() const
{
    std::size_t n = 0;
    for (const FileSnapshot& snap : snapshots_)
        n += snap.program->functions().size();
    for (const auto& [name, snap] : protocols_)
        n += snap.loaded.program->functions().size();
    return n;
}

std::size_t
ResidentState::residentCfgCount() const
{
    std::size_t n = 0;
    for (const FileSnapshot& snap : snapshots_)
        n += snap.cfg_cache->size();
    for (const auto& [name, snap] : protocols_)
        n += snap.cfg_cache->size();
    return n;
}

std::size_t
ResidentState::arenaWasteBytes() const
{
    std::size_t n = 0;
    for (const FileSnapshot& snap : snapshots_)
        n += snap.program->arenaWasteEstimate();
    return n;
}

} // namespace mc::server
