#ifndef MCHECK_SERVER_CHECK_UNITS_H
#define MCHECK_SERVER_CHECK_UNITS_H

#include "flash/protocol_spec.h"
#include "lang/program.h"
#include "server/check_request.h"
#include "server/json.h"

#include <cstdint>
#include <vector>

namespace mc::server {

class ResidentState;

/**
 * The synthetic handler-classification spec Files mode checks against:
 * CamelCase names are handlers (Sw* software, the rest hardware),
 * lower-case names are ordinary functions. Shared between the batch
 * Files pipeline and the shard worker so both classify identically.
 */
flash::ProtocolSpec cliFilesSpec(const lang::Program& program);

/**
 * Execute one `check_units` worker request: run exactly the requested
 * (function x checker) unit ids — u = f * ncheckers + c over
 * program.functions() x makeAllCheckers order — each under a UnitGuard
 * with the request's budget, always keep-going (fail-fast is the
 * coordinator's business), and return a result object:
 *
 *     {"units": [{"unit": u, "failed": b, "error": s,
 *                 "budget_stop": s, "wall_ms": n, "visits": n,
 *                 "pruned_edges": n, "prune_cache_hits": n,
 *                 "prune_skipped_nary": n, "data": s}, ...],
 *      "units_total": n}
 *
 * `data` is the cache-format encoding (AnalysisCache::encodeUnit) of
 * the unit's serialized checker state plus its private sink's
 * diagnostics — the same checksummed representation warm cache runs
 * replay, so the coordinator's merge cannot tell a worker result from
 * a cache hit. A failed unit carries a fresh instance's state and the
 * single "analysis incomplete" warning, mirroring in-process
 * containment byte for byte.
 *
 * Protocol and Files modes only. Throws on malformed requests (unknown
 * protocol, unreadable files, out-of-range unit ids); the daemon turns
 * that into a structured error response.
 */
JsonValue runCheckUnits(const CheckRequest& request,
                        const std::vector<std::uint64_t>& units,
                        ResidentState* resident);

} // namespace mc::server

#endif // MCHECK_SERVER_CHECK_UNITS_H
