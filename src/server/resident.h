#ifndef MCHECK_SERVER_RESIDENT_H
#define MCHECK_SERVER_RESIDENT_H

#include "cache/analysis_cache.h"
#include "checkers/parallel.h"
#include "corpus/generator.h"
#include "lang/program.h"
#include "metal/metal_parser.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mc::server {

/** Source reader: (path, contents-out, error-out) -> ok. */
using FileReader =
    std::function<bool(const std::string&, std::string&, std::string&)>;

/** Read `path` from disk. The reader every batch run uses. */
bool readDiskFile(const std::string& path, std::string& contents,
                  std::string& error);

struct PreparedProgram;

/**
 * Build a program for `files` with no resident state: read through
 * `reader`, parse fresh, hand ownership to the caller. The batch
 * driver's path; also the daemon's when it has no snapshot to reuse.
 */
PreparedProgram
buildProgramOneShot(const std::vector<std::string>& files,
                    const FileReader& reader);

/**
 * A program ready to check, plus where it came from. When `reused` the
 * program (and its CFG cache) belong to the ResidentState that served
 * it; otherwise `owned` carries a freshly built program the caller
 * drops after the run.
 */
struct PreparedProgram
{
    lang::Program* program = nullptr;
    std::unique_ptr<lang::Program> owned;
    /** Resident CFGs for this program; null for one-shot runs. */
    checkers::CfgCache* cfg_cache = nullptr;
    /** Files lexed+parsed to satisfy this request. */
    std::uint64_t files_reparsed = 0;
    /** A resident snapshot matched (even if some files re-parsed). */
    bool reused = false;
    bool ok = false;
    /** "cannot open <path>" (first failing file, in request order). */
    std::string error;
};

/**
 * Everything the checking daemon keeps warm between requests.
 *
 * Three tiers, cheapest reuse first:
 *
 *  1. Process globals (symbol interner, compiled SM transition tables,
 *     registered metric nodes) are resident for free — they live for
 *     the process regardless.
 *  2. Per-unit analysis results live in `memoryCache` (or the disk
 *     cache the daemon was pointed at), keyed by token-stream
 *     fingerprints: an edited file invalidates exactly its own
 *     functions' entries.
 *  3. Parsed programs + their CFGs live in snapshots keyed by the
 *     *ordered file list*. A request over the same file set reuses the
 *     snapshot; files whose content hash changed re-parse in place
 *     (Program::updateSource — file ids stay stable, so diagnostic
 *     emission order matches a cold batch run); a different file set
 *     rebuilds from scratch.
 *
 * Byte-parity invariant: nothing here may change output bytes. Reuse
 * either reproduces exactly what a fresh build would produce (stable
 * file ids + slot-ordered function index) or replays through the same
 * fingerprint-keyed cache path a warm batch run takes.
 *
 * Not internally synchronized: the daemon serializes every access under
 * its request-execution mutex (which the protocol needs anyway — witness
 * configuration and match strategy are process globals set per request).
 */
class ResidentState
{
  public:
    ResidentState();

    // ---- document overlays (open/change/close) ------------------------

    /** Insert or replace the overlay for `path`. */
    void openDocument(const std::string& path, std::string text);
    /** Drop the overlay; false if none existed. */
    bool closeDocument(const std::string& path);
    bool hasDocument(const std::string& path) const;
    std::size_t documentCount() const { return documents_.size(); }

    /** Overlay-first reader (falls back to disk). */
    bool readFile(const std::string& path, std::string& contents,
                  std::string& error) const;

    // ---- resident per-unit results ------------------------------------

    /** The in-memory analysis cache (used when no disk cache is set). */
    cache::AnalysisCache& memoryCache() { return *memory_cache_; }

    // ---- program snapshots --------------------------------------------

    /**
     * Program for `files` read through `reader`: reuse + in-place
     * re-parse when a snapshot matches, full (re)build otherwise. The
     * result is published as this state's snapshot for that file list.
     */
    PreparedProgram prepareFiles(const std::vector<std::string>& files,
                                 const FileReader& reader);

    /**
     * Generated-protocol program for `protocol`, loaded once and reused
     * verbatim afterwards (generation is deterministic, so the resident
     * program equals a fresh load). Throws std::out_of_range for names
     * profileByName does not know. `reused` reports whether a resident
     * snapshot served the request.
     */
    corpus::LoadedProtocol& protocolSnapshot(const std::string& protocol,
                                             checkers::CfgCache*& cfgs,
                                             bool& reused);

    /**
     * Parse-or-reuse a metal checker by its *source text* (keyed by
     * content, so an edited .metal re-compiles and an untouched one is
     * free). `origin` names the source in parse errors, matching what a
     * batch loadMetalFile run reports. Throws metal::MetalParseError on
     * malformed source.
     */
    const metal::MetalProgram& metalProgram(const std::string& source,
                                            const std::string& origin);

    // ---- introspection for the `status` method ------------------------

    std::size_t fileSnapshotCount() const { return snapshots_.size(); }
    std::size_t protocolSnapshotCount() const { return protocols_.size(); }
    std::size_t metalProgramCount() const { return metal_.size(); }
    /** Functions resident across all program snapshots. */
    std::size_t residentFunctionCount() const;
    /** CFGs resident across all snapshot caches. */
    std::size_t residentCfgCount() const;
    /** Arena bytes wasted by in-place re-parses (rebuild pressure). */
    std::size_t arenaWasteBytes() const;

  private:
    struct FileSnapshot
    {
        std::vector<std::string> files;
        std::vector<std::uint64_t> hashes;
        std::unique_ptr<lang::Program> program;
        std::unique_ptr<checkers::CfgCache> cfg_cache;
        std::uint64_t last_used = 0;
    };

    struct ProtocolSnapshot
    {
        corpus::LoadedProtocol loaded;
        std::unique_ptr<checkers::CfgCache> cfg_cache;
    };

    FileSnapshot* findSnapshot(const std::vector<std::string>& files);

    std::map<std::string, std::string> documents_;
    std::unique_ptr<cache::AnalysisCache> memory_cache_;
    std::vector<FileSnapshot> snapshots_;
    std::map<std::string, ProtocolSnapshot> protocols_;
    std::map<std::uint64_t, metal::MetalProgram> metal_;
    std::uint64_t use_seq_ = 0;
};

} // namespace mc::server

#endif // MCHECK_SERVER_RESIDENT_H
