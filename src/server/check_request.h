#ifndef MCHECK_SERVER_CHECK_REQUEST_H
#define MCHECK_SERVER_CHECK_REQUEST_H

#include "cache/analysis_cache.h"
#include "metal/engine.h"
#include "support/diagnostics.h"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace mc::server {

class ResidentState;

/**
 * One checking run, described independently of who asked for it.
 *
 * This is the seam between the front ends and the engine: the batch CLI
 * (mccheck) parses argv into one of these and runs it against fresh
 * state; the daemon (mccheckd) decodes a protocol request into the same
 * struct and runs it against resident state. Both paths execute the
 * identical pipeline below, which is what makes daemon responses
 * byte-identical to batch stdout *by construction* rather than by
 * parallel maintenance of two emitters.
 */
struct CheckRequest
{
    enum class Mode
    {
        /** Generate and check a named paper protocol. */
        Protocol,
        /** Run one user metal checker over dialect sources. */
        Metal,
        /** Check loose FLASH-dialect sources with the built-in set. */
        Files,
    };

    Mode mode = Mode::Files;
    /** Protocol name (Mode::Protocol). */
    std::string protocol;
    /** Path of the .metal checker (Mode::Metal). */
    std::string metal_path;
    /** Dialect sources (Mode::Metal, Mode::Files). */
    std::vector<std::string> files;

    support::OutputFormat format = support::OutputFormat::Text;
    /** Checking concurrency; 0 = one lane per hardware thread. */
    unsigned jobs = 0;
    metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off;
    /** Per-unit wall-clock budget in ms; 0 = unlimited. */
    unsigned long unit_timeout_ms = 0;
    /** Per-unit path-walker step budget; 0 = unlimited. */
    unsigned long unit_max_steps = 0;
    bool fail_fast = false;
    /** Witness capture (process-global, installed per run; part of the
     *  cache key, so resident entries never cross configurations). */
    bool witness = false;
    /** Witness step/block cap; 0 = the built-in default. */
    unsigned witness_limit = 0;
    /** SM matching strategy (process-global default, installed per run;
     *  both strategies produce identical bytes). */
    metal::MatchStrategy match_strategy = metal::MatchStrategy::Table;

    /**
     * Worker processes for sharded checking (`--shards N`). 0 runs the
     * in-process engine; any other value routes (function x checker)
     * units through the shard supervisor, whose merge is byte-identical
     * to the in-process run at every shard count. Protocol and Files
     * modes only.
     */
    unsigned shards = 0;
    /** Units per shard work batch. */
    std::size_t shard_batch_units = 16;
    /** Per-batch wall-clock deadline in ms (0 = none). */
    unsigned long shard_batch_timeout_ms = 0;
    /** Worker-respawn backoff base in ms (timing only, never bytes). */
    unsigned long shard_backoff_ms = 50;
    /** argv of the worker command (the driver points it at itself). */
    std::vector<std::string> shard_worker_argv;

    /**
     * Source reader: (path, contents-out, error-out) -> ok. Unset means
     * read from disk. The daemon injects an overlay-first reader here so
     * `open`/`change` documents shadow the filesystem; everything
     * downstream (fingerprints, cache keys, parse) sees overlay bytes
     * with no special cases.
     */
    std::function<bool(const std::string&, std::string&, std::string&)>
        read_file;
};

/** What one run produced, beyond the bytes written to the streams. */
struct CheckOutcome
{
    /** The documented mccheck exit scheme: 0/1/2/3. */
    int exit_code = 3;
    int errors = 0;
    int warnings = 0;
    /** (function x checker) work units this run covered. */
    std::uint64_t units_total = 0;
    /** Units replayed from the analysis cache instead of re-walked. */
    std::uint64_t units_reused = 0;
    /** Source files lexed+parsed serving this run. */
    std::uint64_t files_reparsed = 0;
    /** A resident Program snapshot satisfied the run without rebuild. */
    bool program_reused = false;
};

/**
 * Execute `request`, writing findings to `out` (the bytes a batch run
 * would put on stdout) and operational messages to `err` (stderr).
 *
 * `cache` may be null (no caching). `resident` may be null (batch: all
 * state is built fresh and dropped); when set, programs, CFGs, and
 * compiled metal checkers are reused from / published into it, keyed so
 * that reuse can never change output bytes — unchanged units replay via
 * the fingerprint-keyed cache exactly as a warm batch run would.
 *
 * Never throws: internal errors (unknown protocol, --fail-fast aborts,
 * escaped faults) render as the batch driver's "mccheck: <what>" line on
 * `err` with exit_code 3.
 */
CheckOutcome runCheckRequest(const CheckRequest& request,
                             cache::AnalysisCache* cache,
                             ResidentState* resident, std::ostream& out,
                             std::ostream& err);

} // namespace mc::server

#endif // MCHECK_SERVER_CHECK_REQUEST_H
