#ifndef MCHECK_SERVER_PROTOCOL_H
#define MCHECK_SERVER_PROTOCOL_H

#include "server/check_request.h"
#include "server/json.h"

#include <cstdint>
#include <string>

namespace mc::server {

/**
 * The mccheckd wire protocol: one JSON object per line, LSP-flavored.
 *
 * Requests carry an optional integral `id`, a `method`, and (for
 * methods that take arguments) a `params` object:
 *
 *     {"id": 1, "method": "check", "params": {"protocol": "sci",
 *                                             "format": "json"}}
 *     {"id": 2, "method": "open", "params": {"path": "h.c",
 *                                            "text": "void f() {}"}}
 *     {"id": 3, "method": "change", "params": {"path": "h.c",
 *                                              "text": "..."}}
 *     {"id": 4, "method": "close", "params": {"path": "h.c"}}
 *     {"id": 5, "method": "status"}
 *     {"id": 6, "method": "shutdown"}
 *     {"id": 7, "method": "check_units", "params": {"protocol": "sci",
 *                                                   "units": [0, 9]}}
 *
 * `check_units` is the shard-worker method: it takes the `check`
 * params (minus output formatting concerns) plus an explicit list of
 * (function x checker) unit ids, and answers with per-unit encoded
 * results instead of rendered findings. The `mccheck --shards N`
 * coordinator speaks it to `mccheck --shard-worker` processes.
 *
 * Responses echo the id with either a `result` object or an `error`
 * object ({"code": <int>, "message": <string>}). Requests without an id
 * are assigned the daemon's next sequence number, which the response
 * carries. The full shape is frozen in tools/daemon_protocol_schema.json
 * and documented in docs/daemon.md.
 *
 * Error codes follow JSON-RPC where a standard code exists.
 */
namespace protocol {

inline constexpr int kParseError = -32700;
inline constexpr int kInvalidRequest = -32600;
inline constexpr int kMethodNotFound = -32601;
inline constexpr int kInvalidParams = -32602;
/** An internal failure (injected fault, escaped exception). */
inline constexpr int kServerError = -32000;
/** Request line exceeded the daemon's size bound. */
inline constexpr int kRequestTooLarge = -32001;
/** Admission control: too many check requests in flight. */
inline constexpr int kServerBusy = -32002;

} // namespace protocol

/** {"id": <id>, "error": {"code": ..., "message": ...}} (id null when
 *  the request never yielded one). */
JsonValue makeErrorResponse(bool has_id, std::int64_t id, int code,
                            const std::string& message);

/** {"id": <id>, "result": <result>} */
JsonValue makeResultResponse(std::int64_t id, JsonValue result);

/**
 * Decode a `check` request's params into a CheckRequest. Strict: any
 * unknown key, wrong type, or out-of-range value is rejected with a
 * message naming the offender (the daemon returns it as an
 * InvalidParams error). `default_jobs` fills `jobs` when absent.
 */
bool parseCheckParams(const JsonValue* params, unsigned default_jobs,
                      CheckRequest& out, std::string& error);

/**
 * Decode a `check_units` request's params: the `units` array of
 * non-negative unit ids is split off, everything else must satisfy
 * parseCheckParams. Unit ids are NOT range-checked here — the handler
 * knows the grid size.
 */
bool parseCheckUnitsParams(const JsonValue* params, unsigned default_jobs,
                           CheckRequest& out,
                           std::vector<std::uint64_t>& units,
                           std::string& error);

} // namespace mc::server

#endif // MCHECK_SERVER_PROTOCOL_H
