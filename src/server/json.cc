#include "server/json.h"

#include "support/text.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace mc::server {

namespace {

constexpr int kMaxDepth = 64;

/** Cursor over the input with one-token-lookahead helpers. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string& what)
    {
        if (error.empty()) {
            std::ostringstream os;
            os << what << " at offset " << pos;
            error = os.str();
        }
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool atEnd()
    {
        skipWs();
        return pos >= text.size();
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parseValue(JsonValue& out, int depth);
    bool parseString(std::string& out);
    bool parseNumber(JsonValue& out);
    bool parseLiteral(std::string_view word);
};

void
appendUtf8(std::string& out, unsigned cp)
{
    if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
}

bool
parseHex4(std::string_view text, std::size_t pos, unsigned& out)
{
    if (pos + 4 > text.size())
        return false;
    out = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        char c = text[pos + i];
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<unsigned>(c - 'A' + 10);
        else
            return false;
        out = (out << 4) | digit;
    }
    return true;
}

bool
Parser::parseString(std::string& out)
{
    skipWs();
    if (pos >= text.size() || text[pos] != '"')
        return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
        unsigned char c = static_cast<unsigned char>(text[pos]);
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c < 0x20)
            return fail("raw control character in string");
        if (c != '\\') {
            out.push_back(static_cast<char>(c));
            ++pos;
            continue;
        }
        if (pos + 1 >= text.size())
            return fail("truncated escape");
        char esc = text[pos + 1];
        pos += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            if (!parseHex4(text, pos, cp))
                return fail("bad \\u escape");
            pos += 4;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
                // Surrogate pair: the low half must follow immediately.
                unsigned lo = 0;
                if (pos + 2 > text.size() || text[pos] != '\\' ||
                    text[pos + 1] != 'u' ||
                    !parseHex4(text, pos + 2, lo) || lo < 0xDC00 ||
                    lo > 0xDFFF)
                    return fail("unpaired surrogate");
                pos += 6;
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                return fail("unpaired surrogate");
            }
            appendUtf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
    }
    return fail("unterminated string");
}

bool
Parser::parseNumber(JsonValue& out)
{
    std::size_t start = pos;
    bool integral = true;
    if (pos < text.size() && text[pos] == '-')
        ++pos;
    if (pos >= text.size() ||
        !(text[pos] >= '0' && text[pos] <= '9'))
        return fail("malformed number");
    const bool leading_zero = text[pos] == '0';
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9')
        ++pos;
    if (leading_zero && pos - start > (text[start] == '-' ? 2u : 1u))
        return fail("leading zero in number");
    if (pos < text.size() && text[pos] == '.') {
        integral = false;
        ++pos;
        if (pos >= text.size() ||
            !(text[pos] >= '0' && text[pos] <= '9'))
            return fail("malformed number");
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9')
            ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
        integral = false;
        ++pos;
        if (pos < text.size() && (text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (pos >= text.size() ||
            !(text[pos] >= '0' && text[pos] <= '9'))
            return fail("malformed number");
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9')
            ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    if (integral) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0') {
            out = JsonValue::number(static_cast<std::int64_t>(v));
            return true;
        }
        // Out of int64 range: fall through to double, losing exactness.
    }
    out = JsonValue::number(std::strtod(token.c_str(), nullptr));
    return true;
}

bool
Parser::parseLiteral(std::string_view word)
{
    if (text.substr(pos, word.size()) != word)
        return fail("malformed literal");
    pos += word.size();
    return true;
}

bool
Parser::parseValue(JsonValue& out, int depth)
{
    if (depth > kMaxDepth)
        return fail("nesting too deep");
    skipWs();
    if (pos >= text.size())
        return fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
        ++pos;
        out = JsonValue::object();
        if (consume('}'))
            return true;
        while (true) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.set(std::move(key), std::move(value));
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }
    if (c == '[') {
        ++pos;
        out = JsonValue::array();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.push(std::move(value));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }
    if (c == '"') {
        std::string s;
        if (!parseString(s))
            return false;
        out = JsonValue::string(std::move(s));
        return true;
    }
    if (c == 't') {
        if (!parseLiteral("true"))
            return false;
        out = JsonValue::boolean(true);
        return true;
    }
    if (c == 'f') {
        if (!parseLiteral("false"))
            return false;
        out = JsonValue::boolean(false);
        return true;
    }
    if (c == 'n') {
        if (!parseLiteral("null"))
            return false;
        out = JsonValue();
        return true;
    }
    return parseNumber(out);
}

void
dumpInto(const JsonValue& v, std::string& out)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case JsonValue::Kind::Number: {
        if (v.isIntegral()) {
            out += std::to_string(v.asInt());
        } else {
            std::ostringstream os;
            os.precision(15);
            os << v.asDouble();
            out += os.str();
        }
        break;
      }
      case JsonValue::Kind::String:
        out += '"';
        out += support::jsonEscape(v.asString());
        out += '"';
        break;
      case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue& item : v.items()) {
            if (!first)
                out += ", ";
            first = false;
            dumpInto(item, out);
        }
        out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [key, value] : v.members()) {
            if (!first)
                out += ", ";
            first = false;
            out += '"';
            out += support::jsonEscape(key);
            out += "\": ";
            dumpInto(value, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    // A double that happens to be integral still dumps as a plain
    // integer when it round-trips exactly (wall_ms of 0 reads "0").
    if (std::nearbyint(d) == d && std::abs(d) < 9.0e15) {
        v.int_ = static_cast<std::int64_t>(d);
        v.integral_ = true;
    }
    return v;
}

JsonValue
JsonValue::number(std::int64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(i);
    v.int_ = i;
    v.integral_ = true;
    return v;
}

JsonValue
JsonValue::number(std::uint64_t u)
{
    return number(static_cast<std::int64_t>(u));
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind_ == Kind::Bool ? bool_ : dflt;
}

double
JsonValue::asDouble(double dflt) const
{
    return kind_ == Kind::Number ? num_ : dflt;
}

std::int64_t
JsonValue::asInt(std::int64_t dflt, bool* ok) const
{
    if (kind_ == Kind::Number && integral_) {
        if (ok)
            *ok = true;
        return int_;
    }
    if (ok)
        *ok = false;
    return dflt;
}

void
JsonValue::push(JsonValue v)
{
    items_.push_back(std::move(v));
}

const JsonValue*
JsonValue::get(const std::string& key) const
{
    for (const auto& [k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

void
JsonValue::set(std::string key, JsonValue v)
{
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpInto(*this, out);
    return out;
}

bool
JsonValue::parse(std::string_view text, JsonValue& out, std::string& error)
{
    Parser p{text, 0, {}};
    JsonValue value;
    if (!p.parseValue(value, 0)) {
        error = p.error;
        return false;
    }
    if (!p.atEnd()) {
        p.fail("trailing characters after value");
        error = p.error;
        return false;
    }
    out = std::move(value);
    return true;
}

} // namespace mc::server
