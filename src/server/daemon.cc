#include "server/daemon.h"

#include "server/check_request.h"
#include "server/check_units.h"
#include "server/protocol.h"
#include "support/fault_injection.h"
#include "support/metrics.h"
#include "support/version.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>

namespace mc::server {

namespace {

using Clock = std::chrono::steady_clock;

/** `status` reports the last this many requests. */
constexpr std::size_t kRecentRequests = 32;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

JsonValue
uintNumber(std::uint64_t v)
{
    return JsonValue::number(v);
}

/** Extract a required string member, or fail with a naming message. */
bool
takeString(const JsonValue* params, const std::string& key,
           std::string& out, std::string& error)
{
    const JsonValue* v = params ? params->get(key) : nullptr;
    if (!v || !v->isString()) {
        error = "'" + key + "' must be a string";
        return false;
    }
    out = v->asString();
    return true;
}

} // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options))
{
    if (!options_.cache_dir.empty())
        disk_cache_ = std::make_unique<cache::AnalysisCache>(
            options_.cache_dir, options_.cache_readonly);
}

cache::AnalysisCache&
Daemon::cache()
{
    return disk_cache_ ? *disk_cache_ : resident_.memoryCache();
}

void
Daemon::finishRequest(const support::LedgerRequestEvent& event)
{
    {
        std::lock_guard<std::mutex> lock(exec_mu_);
        ++handled_;
        if (event.status != "ok")
            ++errors_;
        recent_.push_back(RequestRecord{event.id, event.method,
                                        event.status, event.wall_ms});
        while (recent_.size() > kRecentRequests)
            recent_.pop_front();
    }
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter("server.requests").add(1);
        if (event.status != "ok")
            metrics.counter("server.request_errors").add(1);
    }
    support::RunLedger& ledger = support::RunLedger::global();
    if (ledger.enabled())
        ledger.request(event);
}

std::string
Daemon::handleRequestLine(const std::string& line)
{
    const Clock::time_point t0 = Clock::now();

    support::LedgerRequestEvent event;
    event.id = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    event.method = "?";
    event.status = "error";
    event.exit_code = 3;

    auto finish = [&](JsonValue response) {
        event.wall_ms = millisSince(t0);
        finishRequest(event);
        return response.dump();
    };

    if (line.size() > options_.max_request_bytes)
        return finish(makeErrorResponse(
            /*has_id=*/false, 0, protocol::kRequestTooLarge,
            "request exceeds " +
                std::to_string(options_.max_request_bytes) + " bytes"));

    JsonValue request;
    std::string parse_error;
    if (!JsonValue::parse(line, request, parse_error))
        return finish(makeErrorResponse(/*has_id=*/false, 0,
                                        protocol::kParseError,
                                        parse_error));
    if (!request.isObject())
        return finish(makeErrorResponse(/*has_id=*/false, 0,
                                        protocol::kInvalidRequest,
                                        "request must be a JSON object"));

    if (const JsonValue* id = request.get("id")) {
        bool ok = false;
        std::int64_t n = id->asInt(0, &ok);
        if (!ok || n < 0)
            return finish(makeErrorResponse(
                /*has_id=*/false, 0, protocol::kInvalidRequest,
                "'id' must be a non-negative integer"));
        event.id = static_cast<std::uint64_t>(n);
    }
    const std::int64_t id = static_cast<std::int64_t>(event.id);

    const JsonValue* method = request.get("method");
    if (!method || !method->isString())
        return finish(makeErrorResponse(/*has_id=*/true, id,
                                        protocol::kInvalidRequest,
                                        "'method' must be a string"));
    event.method = method->asString();

    // The request-level containment probe: an armed `server.request`
    // fault aborts this request exactly here — after decode, before any
    // state is touched — proving an error response poisons nothing.
    try {
        support::fault::probe("server.request", event.method);
    } catch (const support::InjectedFault& e) {
        return finish(makeErrorResponse(/*has_id=*/true, id,
                                        protocol::kServerError, e.what()));
    }

    // Admission control for the expensive methods: bound how many
    // check requests may be queued on the execution mutex at once.
    const bool is_check =
        event.method == "check" || event.method == "check_units";
    if (is_check) {
        unsigned in_flight =
            checks_in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (in_flight > options_.max_in_flight) {
            checks_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
            rejected_.fetch_add(1, std::memory_order_relaxed);
            support::MetricsRegistry& metrics =
                support::MetricsRegistry::global();
            if (metrics.enabled())
                metrics.counter("server.requests_rejected").add(1);
            return finish(makeErrorResponse(
                /*has_id=*/true, id, protocol::kServerBusy,
                "too many check requests in flight"));
        }
        // High-water mark of concurrently admitted checks: how close
        // the daemon has come to its admission bound.
        unsigned hwm = in_flight_hwm_.load(std::memory_order_relaxed);
        while (in_flight > hwm &&
               !in_flight_hwm_.compare_exchange_weak(
                   hwm, in_flight, std::memory_order_relaxed)) {
        }
    }

    JsonValue response;
    {
        std::lock_guard<std::mutex> lock(exec_mu_);
        try {
            response =
                dispatch(event.method, request.get("params"), event);
        } catch (const std::exception& e) {
            response = makeErrorResponse(/*has_id=*/true, id,
                                         protocol::kServerError, e.what());
            event.status = "error";
            event.exit_code = 3;
        }
    }
    if (is_check)
        checks_in_flight_.fetch_sub(1, std::memory_order_acq_rel);

    return finish(std::move(response));
}

JsonValue
Daemon::dispatch(const std::string& method, const JsonValue* params,
                 support::LedgerRequestEvent& event)
{
    const std::int64_t id = static_cast<std::int64_t>(event.id);

    if (method == "check")
        return handleCheck(params, event);

    if (method == "check_units")
        return handleCheckUnits(params, event);

    if (method == "open" || method == "change" || method == "close") {
        std::string error;
        JsonValue result =
            method == "close"
                ? handleClose(params, error)
                : handleOpen(params, /*must_exist=*/method == "change",
                             error);
        if (!error.empty())
            return makeErrorResponse(/*has_id=*/true, id,
                                     protocol::kInvalidParams, error);
        event.status = "ok";
        event.exit_code = 0;
        return makeResultResponse(id, std::move(result));
    }

    if (method == "status") {
        event.status = "ok";
        event.exit_code = 0;
        return makeResultResponse(id, statusResult());
    }

    if (method == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        event.status = "ok";
        event.exit_code = 0;
        JsonValue result = JsonValue::object();
        result.set("ok", JsonValue::boolean(true));
        return makeResultResponse(id, std::move(result));
    }

    return makeErrorResponse(/*has_id=*/true, id,
                             protocol::kMethodNotFound,
                             "unknown method '" + method + "'");
}

JsonValue
Daemon::handleCheck(const JsonValue* params,
                    support::LedgerRequestEvent& event)
{
    const std::int64_t id = static_cast<std::int64_t>(event.id);

    CheckRequest request;
    std::string error;
    if (!parseCheckParams(params, options_.default_jobs, request, error))
        return makeErrorResponse(/*has_id=*/true, id,
                                 protocol::kInvalidParams, error);

    // Overlay-first reads: open/changed documents shadow the disk, so
    // an editor can check unsaved buffers through the same pipeline.
    request.read_file = [this](const std::string& path,
                               std::string& contents, std::string& err) {
        return resident_.readFile(path, contents, err);
    };

    const Clock::time_point t0 = Clock::now();
    std::ostringstream out;
    std::ostringstream err;
    const CheckOutcome outcome =
        runCheckRequest(request, &cache(), &resident_, out, err);
    const double wall_ms = millisSince(t0);

    if (options_.cache_limit_mb > 0)
        cache().trim(options_.cache_limit_mb * 1024ull * 1024ull);
    std::string stderr_text = err.str();
    for (const std::string& warning : cache().takeWarnings())
        stderr_text += "mccheck: cache: " + warning + "\n";

    event.status = "ok";
    event.exit_code = outcome.exit_code;
    event.units_total = outcome.units_total;
    event.units_reused = outcome.units_reused;
    event.files_reparsed = outcome.files_reparsed;
    event.program_reused = outcome.program_reused;

    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter("server.checks").add(1);
        metrics.counter("server.units_total").add(outcome.units_total);
        metrics.counter("server.units_reused").add(outcome.units_reused);
        metrics.counter("server.files_reparsed")
            .add(outcome.files_reparsed);
        if (outcome.program_reused)
            metrics.counter("server.programs_reused").add(1);
    }

    JsonValue stats = JsonValue::object();
    stats.set("units_total", uintNumber(outcome.units_total));
    stats.set("units_reused", uintNumber(outcome.units_reused));
    stats.set("files_reparsed", uintNumber(outcome.files_reparsed));
    stats.set("program_reused", JsonValue::boolean(outcome.program_reused));
    stats.set("wall_ms", JsonValue::number(wall_ms));

    JsonValue result = JsonValue::object();
    result.set("exit_code",
               JsonValue::number(static_cast<std::int64_t>(
                   outcome.exit_code)));
    result.set("errors", JsonValue::number(
                             static_cast<std::int64_t>(outcome.errors)));
    result.set("warnings",
               JsonValue::number(
                   static_cast<std::int64_t>(outcome.warnings)));
    result.set("output", JsonValue::string(out.str()));
    result.set("stderr", JsonValue::string(std::move(stderr_text)));
    result.set("stats", std::move(stats));
    return makeResultResponse(id, std::move(result));
}

JsonValue
Daemon::handleCheckUnits(const JsonValue* params,
                         support::LedgerRequestEvent& event)
{
    const std::int64_t id = static_cast<std::int64_t>(event.id);

    CheckRequest request;
    std::vector<std::uint64_t> units;
    std::string error;
    if (!parseCheckUnitsParams(params, options_.default_jobs, request,
                               units, error))
        return makeErrorResponse(/*has_id=*/true, id,
                                 protocol::kInvalidParams, error);

    request.read_file = [this](const std::string& path,
                               std::string& contents, std::string& err) {
        return resident_.readFile(path, contents, err);
    };

    // Unlike handleCheck this may throw (unknown protocol, out-of-range
    // unit): the dispatch-level catch renders it as a kServerError
    // response, which the shard coordinator treats as fatal.
    JsonValue result = runCheckUnits(request, units, &resident_);

    event.status = "ok";
    event.exit_code = 0;
    event.units_total = units.size();

    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter("server.unit_requests").add(1);
        metrics.counter("server.units_total").add(units.size());
    }
    return makeResultResponse(id, std::move(result));
}

JsonValue
Daemon::handleOpen(const JsonValue* params, bool must_exist,
                   std::string& error)
{
    std::string path;
    std::string text;
    if (!takeString(params, "path", path, error) ||
        !takeString(params, "text", text, error))
        return JsonValue();
    if (must_exist && !resident_.hasDocument(path)) {
        error = "no open document '" + path + "'";
        return JsonValue();
    }
    resident_.openDocument(path, std::move(text));
    JsonValue result = JsonValue::object();
    result.set("ok", JsonValue::boolean(true));
    result.set("documents", uintNumber(resident_.documentCount()));
    return result;
}

JsonValue
Daemon::handleClose(const JsonValue* params, std::string& error)
{
    std::string path;
    if (!takeString(params, "path", path, error))
        return JsonValue();
    const bool existed = resident_.closeDocument(path);
    JsonValue result = JsonValue::object();
    result.set("ok", JsonValue::boolean(existed));
    result.set("documents", uintNumber(resident_.documentCount()));
    return result;
}

JsonValue
Daemon::statusResult()
{
    // Callers hold exec_mu_, so recent_/handled_/errors_ reads are safe.
    JsonValue requests = JsonValue::object();
    requests.set("handled", uintNumber(handled_));
    requests.set("errors", uintNumber(errors_));
    requests.set("max_in_flight", uintNumber(options_.max_in_flight));
    requests.set("rejected",
                 uintNumber(rejected_.load(std::memory_order_relaxed)));
    requests.set("in_flight_hwm",
                 uintNumber(in_flight_hwm_.load(
                     std::memory_order_relaxed)));
    JsonValue recent = JsonValue::array();
    for (const RequestRecord& record : recent_) {
        JsonValue entry = JsonValue::object();
        entry.set("id", uintNumber(record.id));
        entry.set("method", JsonValue::string(record.method));
        entry.set("status", JsonValue::string(record.status));
        entry.set("wall_ms", JsonValue::number(record.wall_ms));
        recent.push(std::move(entry));
    }
    requests.set("recent", std::move(recent));

    JsonValue resident = JsonValue::object();
    resident.set("file_snapshots",
                 uintNumber(resident_.fileSnapshotCount()));
    resident.set("protocol_snapshots",
                 uintNumber(resident_.protocolSnapshotCount()));
    resident.set("metal_programs",
                 uintNumber(resident_.metalProgramCount()));
    resident.set("functions", uintNumber(resident_.residentFunctionCount()));
    resident.set("cfgs", uintNumber(resident_.residentCfgCount()));
    resident.set("arena_waste_bytes",
                 uintNumber(resident_.arenaWasteBytes()));

    cache::AnalysisCache& store = cache();
    const cache::CacheStats cs = store.stats();
    JsonValue cache_info = JsonValue::object();
    cache_info.set("memory", JsonValue::boolean(store.memoryBacked()));
    cache_info.set("dir", JsonValue::string(store.dir()));
    cache_info.set("readonly", JsonValue::boolean(store.readonly()));
    cache_info.set("entries", uintNumber(store.entryCount()));
    if (store.memoryBacked())
        cache_info.set("resident_bytes", uintNumber(store.residentBytes()));
    cache_info.set("hits", uintNumber(cs.hits));
    cache_info.set("misses", uintNumber(cs.misses));
    cache_info.set("stores", uintNumber(cs.stores));
    cache_info.set("evictions", uintNumber(cs.evictions));

    JsonValue result = JsonValue::object();
    result.set("tool", JsonValue::string(support::kToolName));
    result.set("version", JsonValue::string(support::kToolVersion));
    result.set("requests", std::move(requests));
    result.set("documents", uintNumber(resident_.documentCount()));
    result.set("resident", std::move(resident));
    result.set("cache", std::move(cache_info));
    return result;
}

int
Daemon::serveStream(std::istream& in, std::ostream& out)
{
    std::string line;
    while (!shutdownRequested() && std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.find_first_not_of(" \t") == std::string::npos)
            continue;
        out << handleRequestLine(line) << '\n' << std::flush;
    }
    return 0;
}

} // namespace mc::server
