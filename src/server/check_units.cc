/**
 * @file
 * The shard worker's half of sharded checking.
 *
 * A worker is an `mccheck --shard-worker` process holding a Daemon;
 * `check_units` requests name explicit unit ids instead of "everything",
 * and the response carries each unit's outcome in the analysis cache's
 * encoded form. Determinism rests on three properties: unit ids index
 * the same (function x checker) grid the coordinator enumerates, the
 * per-unit pipeline below is the in-process phase-2 body verbatim
 * (same guard, same probes, same containment warnings), and results
 * travel in the cache encoding whose replay path is already proven
 * byte-neutral by the warm/cold differential suite.
 */
#include "server/check_units.h"

#include "cfg/cfg.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "checkers/unit_guard.h"
#include "corpus/generator.h"
#include "server/resident.h"
#include "support/budget.h"
#include "support/fault_injection.h"
#include "support/run_ledger.h"
#include "support/text.h"
#include "support/witness.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace mc::server {

flash::ProtocolSpec
cliFilesSpec(const lang::Program& program)
{
    flash::ProtocolSpec spec;
    spec.name = "<cli>";
    for (const lang::FunctionDecl* fn : program.functions()) {
        flash::HandlerSpec hs;
        hs.name = fn->name;
        bool camel_case =
            !fn->name.empty() &&
            std::isupper(static_cast<unsigned char>(fn->name[0]));
        if (!camel_case)
            hs.kind = flash::HandlerKind::Normal;
        else if (support::startsWith(fn->name, "Sw"))
            hs.kind = flash::HandlerKind::Software;
        else
            hs.kind = flash::HandlerKind::Hardware;
        spec.addHandler(hs);
    }
    return spec;
}

namespace {

support::BudgetLimits
unitBudget(const CheckRequest& req)
{
    support::BudgetLimits limits;
    limits.deadline = std::chrono::milliseconds(req.unit_timeout_ms);
    limits.max_steps = req.unit_max_steps;
    return limits;
}

} // namespace

JsonValue
runCheckUnits(const CheckRequest& request,
              const std::vector<std::uint64_t>& units,
              ResidentState* resident)
{
    // Process-global per-run configuration, exactly as runCheckRequest
    // installs it — the daemon's execution mutex serializes requests,
    // so the globals cannot leak across concurrent batches.
    support::setWitnessConfig(request.witness, request.witness_limit);
    metal::setDefaultMatchStrategy(request.match_strategy);

    FileReader reader =
        request.read_file ? request.read_file : FileReader(readDiskFile);

    corpus::LoadedProtocol local_proto;
    PreparedProgram prepared;
    lang::Program* program = nullptr;
    checkers::CfgCache* cfg_cache = nullptr;
    std::unique_ptr<checkers::CfgCache> local_cfgs;
    const flash::ProtocolSpec* spec = nullptr;
    flash::ProtocolSpec files_spec;

    switch (request.mode) {
      case CheckRequest::Mode::Protocol: {
        corpus::LoadedProtocol* loaded = &local_proto;
        if (resident) {
            bool reused = false;
            loaded = &resident->protocolSnapshot(request.protocol,
                                                 cfg_cache, reused);
        } else {
            local_proto =
                corpus::loadProtocol(corpus::profileByName(request.protocol));
        }
        program = &*loaded->program;
        spec = &loaded->gen.spec;
        break;
      }
      case CheckRequest::Mode::Files: {
        prepared = resident
                       ? resident->prepareFiles(request.files, reader)
                       : buildProgramOneShot(request.files, reader);
        if (!prepared.ok)
            throw std::runtime_error(prepared.error);
        program = prepared.program;
        cfg_cache = prepared.cfg_cache;
        files_spec = cliFilesSpec(*program);
        spec = &files_spec;
        break;
      }
      case CheckRequest::Mode::Metal:
        throw std::runtime_error(
            "check_units supports protocol and files modes only");
    }
    if (!cfg_cache) {
        local_cfgs = std::make_unique<checkers::CfgCache>();
        cfg_cache = local_cfgs.get();
    }

    checkers::CheckerSetOptions copts;
    copts.prune_strategy = request.prune_strategy;
    auto set = checkers::makeAllCheckers(copts);
    std::vector<checkers::Checker*> all = set.pointers();
    const std::vector<const lang::FunctionDecl*>& fns =
        program->functions();
    const std::size_t ncheckers = all.size();
    const std::size_t nunits = fns.size() * ncheckers;

    using Clock = std::chrono::steady_clock;
    JsonValue entries = JsonValue::array();
    for (std::uint64_t u : units) {
        if (u >= nunits)
            throw std::runtime_error("unit id out of range: " +
                                     std::to_string(u));
        const std::size_t f = static_cast<std::size_t>(u) / ncheckers;
        const std::size_t c = static_cast<std::size_t>(u) % ncheckers;
        const std::string label = fns[f]->name + "/" + all[c]->name();

        // Worker-process fault sites. Unlike checker.unit these are NOT
        // contained: they simulate the worker dying mid-batch (_Exit,
        // as an OOM kill or segfault would look from outside) or
        // wedging (an infinite stall under a live heartbeat thread).
        // Keyed by unit identity so the same units misbehave at any
        // shard count.
        try {
            support::fault::probe("worker.request", label);
        } catch (const support::InjectedFault&) {
            std::_Exit(9);
        }
        try {
            support::fault::probe("worker.hang", label);
        } catch (const support::InjectedFault&) {
            for (;;)
                std::this_thread::sleep_for(std::chrono::hours(1));
        }

        auto checker = checkers::makeChecker(all[c]->name(), copts);
        if (!checker)
            throw std::runtime_error("checker '" + all[c]->name() +
                                     "' cannot run sharded");
        support::DiagnosticSink scratch;
        checkers::CheckContext uctx{*program, *spec, scratch};
        support::LedgerUnitStats unit_stats;
        support::LedgerUnitScope stats_scope(&unit_stats);
        const Clock::time_point t0 = Clock::now();
        checkers::UnitGuard guard(label, unitBudget(request),
                                  /*rethrow=*/false);
        checkers::UnitOutcome outcome = guard.run([&] {
            support::fault::probe("checker.unit", label);
            const cfg::Cfg* cfg = nullptr;
            {
                std::lock_guard<std::mutex> lock(cfg_cache->mu);
                auto it = cfg_cache->cfgs.find(fns[f]);
                if (it != cfg_cache->cfgs.end())
                    cfg = &it->second;
            }
            if (!cfg) {
                cfg::Cfg built = cfg::CfgBuilder::build(*fns[f]);
                built.backEdges();
                std::lock_guard<std::mutex> lock(cfg_cache->mu);
                cfg = &cfg_cache->cfgs.emplace(fns[f], std::move(built))
                           .first->second;
            }
            checker->checkFunction(*fns[f], *cfg, uctx);
        });
        const auto elapsed = Clock::now() - t0;

        // Mirror the in-process phase-2 containment byte for byte: a
        // failed unit contributes a *fresh* instance's state and one
        // "analysis incomplete" warning; a truncated one keeps its
        // partial findings plus the "budget-exhausted" marker.
        support::DiagnosticSink unit_sink;
        if (outcome.failed) {
            checker = checkers::makeChecker(all[c]->name(), copts);
            unit_sink.warning(fns[f]->loc, "engine", "unit-failure",
                              "analysis incomplete: " + all[c]->name() +
                                  " failed on '" + fns[f]->name +
                                  "': " + outcome.error);
        } else {
            for (const support::Diagnostic& d : scratch.diagnostics())
                unit_sink.report(d);
            if (outcome.budget_stop != support::BudgetStop::None)
                unit_sink.warning(
                    fns[f]->loc, "engine", "budget-exhausted",
                    "analysis truncated: " + all[c]->name() + " on '" +
                        fns[f]->name + "' exhausted its " +
                        support::budgetStopName(outcome.budget_stop) +
                        " budget");
        }

        cache::CachedUnit unit;
        unit.checker = all[c]->name();
        unit.function = fns[f]->name;
        std::ostringstream state;
        checker->saveState(state);
        unit.state = state.str();
        for (const support::Diagnostic& d : unit_sink.diagnostics())
            unit.diags.push_back(cache::AnalysisCache::toCached(
                d, program->sourceManager()));

        JsonValue entry = JsonValue::object();
        entry.set("unit", JsonValue::number(u));
        entry.set("failed", JsonValue::boolean(outcome.failed));
        entry.set("error", JsonValue::string(outcome.error));
        entry.set("budget_stop",
                  JsonValue::string(
                      support::budgetStopName(outcome.budget_stop)));
        entry.set("wall_ms",
                  JsonValue::number(
                      std::chrono::duration<double, std::milli>(elapsed)
                          .count()));
        entry.set("visits", JsonValue::number(unit_stats.visits));
        entry.set("pruned_edges",
                  JsonValue::number(unit_stats.pruned_edges));
        entry.set("prune_cache_hits",
                  JsonValue::number(unit_stats.prune_cache_hits));
        entry.set("prune_skipped_nary",
                  JsonValue::number(unit_stats.prune_skipped_nary));
        entry.set("data", JsonValue::string(
                              cache::AnalysisCache::encodeUnit(unit)));
        entries.push(std::move(entry));
    }

    JsonValue result = JsonValue::object();
    result.set("units", std::move(entries));
    result.set("units_total",
               JsonValue::number(static_cast<std::uint64_t>(nunits)));
    return result;
}

} // namespace mc::server
