#ifndef MCHECK_SERVER_SHARDED_CHECK_H
#define MCHECK_SERVER_SHARDED_CHECK_H

#include "cache/analysis_cache.h"
#include "checkers/parallel.h"
#include "server/check_request.h"

#include <vector>

namespace mc::server {

/** Engine-side knobs for runCheckersSharded (the request itself carries
 *  the shard topology: worker count, argv, batch size, timeouts). */
struct ShardRunOptions
{
    /**
     * Factory options for replayed checker instances. Must match the
     * options the master `checkers` were built with — and the options
     * the workers derive from the same CheckRequest.
     */
    checkers::CheckerSetOptions checker_options;
    /**
     * Persistent analysis cache. Looked up sequentially before any
     * worker is spawned (hits never cross a process boundary) and
     * populated with worker results, so a warm re-run spawns workers
     * only for units that actually changed.
     */
    cache::AnalysisCache* cache = nullptr;
    /**
     * Abort on the first failed or quarantined unit, in deterministic
     * merge order, instead of containing it. The abort surfaces as a
     * thrown std::runtime_error carrying the unit's failure message.
     */
    bool fail_fast = false;
    /** Optional out-param receiving the run's containment tally. */
    checkers::RunHealth* health = nullptr;
};

/**
 * Multi-process drop-in for runCheckersParallel: same inputs, same
 * bytes in the sink at any shard count — including `--shards 1`, which
 * still crosses a process boundary and therefore exercises the whole
 * worker protocol.
 *
 * (function x checker) units are batched in deterministic order and
 * dispatched by a shard::Supervisor to `request.shards` worker
 * processes (`request.shard_worker_argv`) speaking the mccheckd line
 * protocol's `check_units` method over socketpairs. Each worker runs
 * its units under the same UnitGuard + containment rules as the
 * in-process phase 2 and returns results in the analysis cache's
 * encoded form; the coordinator replays them — checker state through
 * loadState, diagnostics through the private-sink merge — in exactly
 * the sequential visit order, so the shared sink cannot tell a sharded
 * run from an in-process one.
 *
 * Robustness: a worker that crashes, EOFs, stalls past the heartbeat
 * activity window, or blows the per-batch deadline is killed and
 * respawned with capped exponential backoff; its un-acked units are
 * requeued as singleton batches. A unit that kills workers
 * crashes_to_quarantine times *alone* is quarantined: it merges as a
 * contained "analysis incomplete" unit failure (engine/unit-failure
 * warning, degraded exit code 2), identical bytes at any shard count.
 *
 * Throws std::runtime_error when no worker can be kept alive, when a
 * worker answers with a protocol error or undecodable payload, or on
 * the first failure under fail_fast — all rendered by runCheckRequest
 * as the fatal "mccheck: <what>" line (exit 3).
 */
std::vector<checkers::CheckerRunStats>
runCheckersSharded(const lang::Program& program,
                   const flash::ProtocolSpec& spec,
                   const std::vector<checkers::Checker*>& checkers,
                   support::DiagnosticSink& sink,
                   const CheckRequest& request,
                   const ShardRunOptions& options);

} // namespace mc::server

#endif // MCHECK_SERVER_SHARDED_CHECK_H
