#ifndef MCHECK_SERVER_DAEMON_H
#define MCHECK_SERVER_DAEMON_H

#include "cache/analysis_cache.h"
#include "server/json.h"
#include "server/resident.h"
#include "support/run_ledger.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

namespace mc::server {

/** Construction-time knobs for a Daemon (the mccheckd CLI maps flags
 *  straight onto these). */
struct DaemonOptions
{
    /**
     * Persistent analysis cache directory. Empty means per-unit results
     * live in the resident in-memory cache instead — still
     * fingerprint-keyed, still byte-neutral, just process-lifetime.
     */
    std::string cache_dir;
    bool cache_readonly = false;
    /** Cache cap in MiB, enforced after each check request; 0 = off. */
    unsigned long cache_limit_mb = 0;
    /** Default --jobs for check requests that don't override it. */
    unsigned default_jobs = 0;
    /** Requests longer than this are rejected (kRequestTooLarge). */
    std::size_t max_request_bytes = 8u << 20;
    /**
     * Admission control: `check` requests in flight (queued on the
     * execution mutex + running) beyond this bound are rejected with
     * kServerBusy instead of piling up. 0 rejects every check.
     */
    unsigned max_in_flight = 8;
};

/**
 * The long-lived checking server behind mccheckd.
 *
 * One instance holds all resident state (ResidentState plus the
 * analysis cache) and maps protocol request lines to response lines.
 * `handleRequestLine` is safe to call from any thread: request
 * *decoding* is lock-free, request *execution* serializes on one
 * mutex — which is not an implementation shortcut but a correctness
 * requirement, because a check run installs process-global witness and
 * match-strategy configuration. Serialization also makes concurrent
 * responses byte-identical to serial ones: each response depends only
 * on its request and the (totally ordered) resident state.
 *
 * Failure containment mirrors the batch engine's: a request that fails
 * (malformed JSON, unknown method, oversized line, injected
 * `server.request` fault, escaped exception) produces a structured
 * error response and leaves resident state untouched — the next
 * request sees a healthy server.
 */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);

    /**
     * Handle one request line, returning the response line (no
     * trailing newline). Never throws.
     */
    std::string handleRequestLine(const std::string& line);

    /**
     * Serve newline-delimited requests from `in` until EOF or a
     * `shutdown` request; one response line per request, flushed
     * immediately. Returns the process exit code (0).
     */
    int serveStream(std::istream& in, std::ostream& out);

    bool shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    /**
     * Ask the serve loops to wind down, exactly as a `shutdown` request
     * would. Async-signal-safe (one atomic store) so mccheckd's
     * SIGTERM/SIGINT handlers may call it directly — the loops then
     * exit, and the normal shutdown path flushes the ledger `run_end`
     * and cache statistics a hard kill would lose.
     */
    void requestShutdown()
    {
        shutdown_.store(true, std::memory_order_release);
    }

    /** The cache check requests run against (disk or resident). */
    cache::AnalysisCache& cache();

    /** Test access; synchronize externally (or use protocol requests). */
    ResidentState& resident() { return resident_; }

  private:
    struct RequestRecord
    {
        std::uint64_t id = 0;
        std::string method;
        std::string status;
        double wall_ms = 0.0;
    };

    JsonValue dispatch(const std::string& method, const JsonValue* params,
                       support::LedgerRequestEvent& event);
    JsonValue handleCheck(const JsonValue* params,
                          support::LedgerRequestEvent& event);
    JsonValue handleCheckUnits(const JsonValue* params,
                               support::LedgerRequestEvent& event);
    JsonValue handleOpen(const JsonValue* params, bool must_exist,
                         std::string& error);
    JsonValue handleClose(const JsonValue* params, std::string& error);
    JsonValue statusResult();
    void finishRequest(const support::LedgerRequestEvent& event);

    DaemonOptions options_;
    std::unique_ptr<cache::AnalysisCache> disk_cache_;
    ResidentState resident_;

    /** Serializes request execution (see class comment). */
    std::mutex exec_mu_;
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<unsigned> checks_in_flight_{0};
    std::atomic<bool> shutdown_{false};

    /** Backpressure telemetry for `status` (atomics: the rejection path
     *  never takes exec_mu_). */
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<unsigned> in_flight_hwm_{0};

    /** Rolling per-request timing for `status` (exec_mu_-guarded). */
    std::deque<RequestRecord> recent_;
    std::uint64_t handled_ = 0;
    std::uint64_t errors_ = 0;
};

} // namespace mc::server

#endif // MCHECK_SERVER_DAEMON_H
