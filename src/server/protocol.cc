#include "server/protocol.h"

#include "metal/engine.h"

#include <optional>

namespace mc::server {

JsonValue
makeErrorResponse(bool has_id, std::int64_t id, int code,
                  const std::string& message)
{
    JsonValue error = JsonValue::object();
    error.set("code", JsonValue::number(static_cast<std::int64_t>(code)));
    error.set("message", JsonValue::string(message));
    JsonValue response = JsonValue::object();
    response.set("id", has_id ? JsonValue::number(id) : JsonValue());
    response.set("error", std::move(error));
    return response;
}

JsonValue
makeResultResponse(std::int64_t id, JsonValue result)
{
    JsonValue response = JsonValue::object();
    response.set("id", JsonValue::number(id));
    response.set("result", std::move(result));
    return response;
}

namespace {

bool
failParam(std::string& error, const std::string& what)
{
    error = what;
    return false;
}

/** Positive integral param in [1, max]; absent leaves `out` untouched. */
bool
takeCount(const JsonValue& params, const std::string& key,
          std::uint64_t max, std::optional<std::uint64_t>& out,
          std::string& error)
{
    const JsonValue* v = params.get(key);
    if (!v)
        return true;
    bool ok = false;
    std::int64_t n = v->asInt(0, &ok);
    if (!ok || n < 1 || static_cast<std::uint64_t>(n) > max)
        return failParam(error, "'" + key + "' must be an integer in 1.." +
                                    std::to_string(max));
    out = static_cast<std::uint64_t>(n);
    return true;
}

bool
takeBool(const JsonValue& params, const std::string& key, bool& out,
         std::string& error)
{
    const JsonValue* v = params.get(key);
    if (!v)
        return true;
    if (!v->isBool())
        return failParam(error, "'" + key + "' must be a boolean");
    out = v->asBool();
    return true;
}

} // namespace

bool
parseCheckParams(const JsonValue* params, unsigned default_jobs,
                 CheckRequest& out, std::string& error)
{
    if (!params || !params->isObject())
        return failParam(error, "'check' needs a params object");

    // Strictness keeps the wire honest: a typo'd key is an error the
    // client sees, not an option silently ignored — and it keeps this
    // decoder and tools/daemon_protocol_schema.json provably in sync
    // (the schema-validation test round-trips both).
    static const char* const kKnown[] = {
        "protocol",     "metal",          "files",
        "format",       "jobs",           "prune_paths",
        "match_strategy", "witness",      "witness_limit",
        "unit_timeout_ms", "unit_max_steps", "fail_fast",
    };
    for (const auto& [key, value] : params->members()) {
        bool known = false;
        for (const char* k : kKnown)
            known = known || key == k;
        if (!known)
            return failParam(error, "unknown check param '" + key + "'");
    }

    const JsonValue* protocol = params->get("protocol");
    const JsonValue* metal = params->get("metal");
    const JsonValue* files = params->get("files");

    if (files) {
        if (!files->isArray())
            return failParam(error, "'files' must be an array of paths");
        for (const JsonValue& f : files->items()) {
            if (!f.isString())
                return failParam(error,
                                 "'files' must be an array of paths");
            out.files.push_back(f.asString());
        }
    }

    if (protocol) {
        if (!protocol->isString())
            return failParam(error, "'protocol' must be a string");
        if (metal || files)
            return failParam(
                error, "'protocol' excludes 'metal' and 'files'");
        out.mode = CheckRequest::Mode::Protocol;
        out.protocol = protocol->asString();
    } else if (metal) {
        if (!metal->isString())
            return failParam(error, "'metal' must be a string path");
        if (out.files.empty())
            return failParam(error, "'metal' needs source files to check");
        out.mode = CheckRequest::Mode::Metal;
        out.metal_path = metal->asString();
    } else if (files) {
        if (out.files.empty())
            return failParam(error, "no input files");
        out.mode = CheckRequest::Mode::Files;
    } else {
        return failParam(error,
                         "check needs 'protocol', 'metal', or 'files'");
    }

    if (const JsonValue* format = params->get("format")) {
        if (!format->isString() ||
            !support::parseOutputFormat(format->asString(), out.format))
            return failParam(error,
                             "'format' must be text, json, or sarif");
    }

    out.jobs = default_jobs;
    std::optional<std::uint64_t> jobs;
    if (!takeCount(*params, "jobs", 1024, jobs, error))
        return false;
    if (jobs)
        out.jobs = static_cast<unsigned>(*jobs);

    if (const JsonValue* prune = params->get("prune_paths")) {
        std::optional<metal::PruneStrategy> strategy;
        if (prune->isString())
            strategy = metal::parsePruneStrategy(prune->asString());
        if (!strategy)
            return failParam(error, "'prune_paths' must be off, "
                                    "correlated, or constraints");
        out.prune_strategy = *strategy;
    }

    if (const JsonValue* match = params->get("match_strategy")) {
        if (match->isString() && match->asString() == "table")
            out.match_strategy = metal::MatchStrategy::Table;
        else if (match->isString() && match->asString() == "legacy")
            out.match_strategy = metal::MatchStrategy::Legacy;
        else
            return failParam(error,
                             "'match_strategy' must be table or legacy");
    }

    if (!takeBool(*params, "witness", out.witness, error))
        return false;
    std::optional<std::uint64_t> witness_limit;
    if (!takeCount(*params, "witness_limit", 1u << 20, witness_limit,
                   error))
        return false;
    if (witness_limit)
        out.witness_limit = static_cast<unsigned>(*witness_limit);

    std::optional<std::uint64_t> timeout;
    if (!takeCount(*params, "unit_timeout_ms", ~0ull >> 1, timeout, error))
        return false;
    if (timeout)
        out.unit_timeout_ms = static_cast<unsigned long>(*timeout);
    std::optional<std::uint64_t> steps;
    if (!takeCount(*params, "unit_max_steps", ~0ull >> 1, steps, error))
        return false;
    if (steps)
        out.unit_max_steps = static_cast<unsigned long>(*steps);

    if (!takeBool(*params, "fail_fast", out.fail_fast, error))
        return false;

    return true;
}

bool
parseCheckUnitsParams(const JsonValue* params, unsigned default_jobs,
                      CheckRequest& out,
                      std::vector<std::uint64_t>& units,
                      std::string& error)
{
    if (!params || !params->isObject())
        return failParam(error, "'check_units' needs a params object");
    const JsonValue* list = params->get("units");
    if (!list || !list->isArray())
        return failParam(error, "'units' must be an array of unit ids");
    for (const JsonValue& v : list->items()) {
        bool ok = false;
        std::int64_t n = v.asInt(0, &ok);
        if (!ok || n < 0)
            return failParam(
                error, "'units' must be an array of non-negative unit ids");
        units.push_back(static_cast<std::uint64_t>(n));
    }
    if (units.empty())
        return failParam(error, "'units' must name at least one unit");
    // Everything else is the `check` vocabulary, decoded by the same
    // strict parser so the two methods can never drift apart.
    JsonValue rest = JsonValue::object();
    for (const auto& [key, value] : params->members())
        if (key != "units")
            rest.set(key, value);
    return parseCheckParams(&rest, default_jobs, out, error);
}

} // namespace mc::server
