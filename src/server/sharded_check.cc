/**
 * @file
 * The coordinator's half of sharded checking.
 *
 * Determinism is the whole design: every decision that shapes output
 * bytes — unit enumeration, batch membership, cache keys, quarantine
 * thresholds, merge order — is a pure function of unit identity, never
 * of scheduling, worker count, or wall-clock time. Workers only ever
 * influence *when* a result arrives, not *what* it says, and the merge
 * below replays results in the sequential visit order regardless of
 * arrival order. The compare_shards differential suite pins this:
 * shards 1/2/4 must be byte-identical, clean and under injected
 * worker kills alike.
 */
#include "server/sharded_check.h"

#include "checkers/registry.h"
#include "flash/protocol_spec.h"
#include "lang/fingerprint.h"
#include "metal/feasibility.h"
#include "server/json.h"
#include "shard/supervisor.h"
#include "support/fault_injection.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/trace.h"
#include "support/witness.h"

#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mc::server {

namespace {

/** Per-unit outcome as reported by a worker (or synthesized locally
 *  for quarantined units). */
struct UnitResult
{
    bool resolved = false;
    bool failed = false;
    std::string error;
    /** budgetStopName spelling: "none", "deadline", "steps", "bytes". */
    std::string budget_stop = "none";
    double wall_ms = 0.0;
    std::uint64_t visits = 0;
    std::uint64_t pruned_edges = 0;
    std::uint64_t prune_cache_hits = 0;
    std::uint64_t prune_skipped_nary = 0;
    int worker = -1;
    std::uint64_t attempts = 0;
    /** The decoded wire payload (state + diags), for cache stores. */
    cache::CachedUnit payload;
};

/**
 * Render one check_units request line. The vocabulary is the `check`
 * params that shape analysis *results*; presentation knobs (format,
 * jobs) and containment policy (fail_fast — workers always contain,
 * the coordinator enforces the policy at merge) stay home.
 */
std::string
makeCheckUnitsRequest(const CheckRequest& request,
                      const std::vector<std::uint64_t>& units,
                      std::uint64_t id)
{
    JsonValue params = JsonValue::object();
    if (request.mode == CheckRequest::Mode::Protocol) {
        params.set("protocol", JsonValue::string(request.protocol));
    } else {
        JsonValue files = JsonValue::array();
        for (const std::string& f : request.files)
            files.push(JsonValue::string(f));
        params.set("files", std::move(files));
    }
    params.set("prune_paths",
               JsonValue::string(
                   metal::pruneStrategyName(request.prune_strategy)));
    params.set("match_strategy",
               JsonValue::string(request.match_strategy ==
                                         metal::MatchStrategy::Legacy
                                     ? "legacy"
                                     : "table"));
    params.set("witness", JsonValue::boolean(request.witness));
    if (request.witness_limit != 0)
        params.set("witness_limit",
                   JsonValue::number(
                       static_cast<std::uint64_t>(request.witness_limit)));
    if (request.unit_timeout_ms != 0)
        params.set("unit_timeout_ms",
                   JsonValue::number(static_cast<std::uint64_t>(
                       request.unit_timeout_ms)));
    if (request.unit_max_steps != 0)
        params.set("unit_max_steps",
                   JsonValue::number(static_cast<std::uint64_t>(
                       request.unit_max_steps)));
    JsonValue ids = JsonValue::array();
    for (std::uint64_t u : units)
        ids.push(JsonValue::number(u));
    params.set("units", std::move(ids));

    JsonValue line = JsonValue::object();
    line.set("id", JsonValue::number(id));
    line.set("method", JsonValue::string("check_units"));
    line.set("params", std::move(params));
    return line.dump();
}

/** Decode one worker response line into per-unit results. Anything
 *  malformed is fatal: the worker is alive but talking nonsense, which
 *  retrying cannot fix. */
void
absorbWorkerResponse(const std::vector<std::uint64_t>& units,
                     const std::string& line, unsigned slot,
                     const std::vector<unsigned>& attempts,
                     std::vector<UnitResult>& results)
{
    JsonValue response;
    std::string parse_error;
    if (!JsonValue::parse(line, response, parse_error) ||
        !response.isObject())
        throw std::runtime_error(
            "shard worker sent a malformed response: " + parse_error);
    if (const JsonValue* error = response.get("error")) {
        const JsonValue* message = error->get("message");
        throw std::runtime_error(
            "shard worker error: " +
            (message && message->isString() ? message->asString()
                                            : error->dump()));
    }
    const JsonValue* result = response.get("result");
    const JsonValue* entries = result ? result->get("units") : nullptr;
    if (!entries || !entries->isArray() ||
        entries->items().size() != units.size())
        throw std::runtime_error(
            "shard worker response does not cover its batch");
    for (std::size_t i = 0; i < units.size(); ++i) {
        const JsonValue& entry = entries->items()[i];
        const JsonValue* unit_id = entry.get("unit");
        if (!unit_id ||
            static_cast<std::uint64_t>(unit_id->asInt(-1)) != units[i])
            throw std::runtime_error(
                "shard worker response units out of order");
        UnitResult& r = results[units[i]];
        r.resolved = true;
        const JsonValue* failed = entry.get("failed");
        r.failed = failed && failed->asBool();
        if (const JsonValue* error = entry.get("error"))
            r.error = error->asString();
        if (const JsonValue* stop = entry.get("budget_stop"))
            r.budget_stop = stop->asString();
        if (const JsonValue* ms = entry.get("wall_ms"))
            r.wall_ms = ms->asDouble();
        if (const JsonValue* v = entry.get("visits"))
            r.visits = static_cast<std::uint64_t>(v->asInt());
        if (const JsonValue* v = entry.get("pruned_edges"))
            r.pruned_edges = static_cast<std::uint64_t>(v->asInt());
        if (const JsonValue* v = entry.get("prune_cache_hits"))
            r.prune_cache_hits = static_cast<std::uint64_t>(v->asInt());
        if (const JsonValue* v = entry.get("prune_skipped_nary"))
            r.prune_skipped_nary = static_cast<std::uint64_t>(v->asInt());
        r.worker = static_cast<int>(slot);
        r.attempts = i < attempts.size() ? attempts[i] : 1;
        const JsonValue* data = entry.get("data");
        std::string decode_error;
        if (!data || !data->isString() ||
            !cache::AnalysisCache::decodeUnit(data->asString(), r.payload,
                                              decode_error))
            throw std::runtime_error(
                "shard worker returned an undecodable unit result: " +
                decode_error);
    }
}

} // namespace

std::vector<checkers::CheckerRunStats>
runCheckersSharded(const lang::Program& program,
                   const flash::ProtocolSpec& spec,
                   const std::vector<checkers::Checker*>& checkers,
                   support::DiagnosticSink& sink,
                   const CheckRequest& request,
                   const ShardRunOptions& options)
{
    // Sharding rides on the registry factory exactly as the in-process
    // unit machinery does: a checker the factory cannot rebuild cannot
    // be replayed from a worker's serialized state either.
    bool clonable = true;
    for (checkers::Checker* checker : checkers)
        if (!checkers::makeChecker(checker->name(),
                                   options.checker_options))
            clonable = false;
    if (!clonable)
        return checkers::runCheckers(program, spec, checkers, sink);

    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    using Clock = std::chrono::steady_clock;

    const std::vector<const lang::FunctionDecl*>& fns =
        program.functions();
    const std::size_t nfns = fns.size();
    const std::size_t ncheckers = checkers.size();
    const std::size_t nunits = nfns * ncheckers;

    std::vector<int> base_errors;
    std::vector<int> base_warnings;
    for (checkers::Checker* checker : checkers) {
        checker->reset();
        base_errors.push_back(sink.countForChecker(
            checker->name(), support::Severity::Error));
        base_warnings.push_back(sink.countForChecker(
            checker->name(), support::Severity::Warning));
    }

    if (metrics.enabled()) {
        metrics.gauge("shard.workers").observe(request.shards);
        metrics.counter("shard.work_units").add(nunits);
        metrics.counter("engine.unit_failures").add(0);
        metrics.counter("budget.truncations").add(0);
        metrics.counter("witness.truncations").add(0);
        metrics.counter("ledger.events").add(0);
        metrics.histogram("unit.wall_ns");
        metrics.histogram("unit.visits");
    }

    std::vector<std::unique_ptr<checkers::Checker>> unit_checkers(nunits);
    std::vector<support::DiagnosticSink> unit_sinks(nunits);
    std::vector<char> unit_hit(nunits, 0);
    std::vector<std::uint64_t> unit_keys(nunits, 0);

    // Phase 0: sequential cache lookup, same keys and same demote-to-miss
    // rules as runCheckersParallel — a hit replays locally and its unit
    // never reaches a worker.
    if (cache::AnalysisCache* cache = options.cache) {
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                "cache.lookup", "cache");
        std::map<std::string, std::uint64_t> fn_fps =
            lang::fingerprintFunctions(program);
        std::map<std::string, std::int32_t> file_ids =
            cache::AnalysisCache::fileIdsByName(program.sourceManager());
        std::uint64_t spec_fp = flash::specFingerprint(spec);
        for (std::size_t u = 0; u < nunits; ++u) {
            std::size_t f = u / ncheckers;
            std::size_t c = u % ncheckers;
            auto fp = fn_fps.find(fns[f]->name);
            if (fp == fn_fps.end())
                continue;
            unit_keys[u] = checkers::unitCacheKey(
                checkers[c]->name(), options.checker_options, spec_fp,
                fp->second);
            cache::CachedUnit unit;
            if (!cache->lookup(unit_keys[u], unit))
                continue;
            if (unit.checker != checkers[c]->name() ||
                unit.function != fns[f]->name)
                continue; // key collision; vanishingly unlikely, run cold
            std::vector<support::Diagnostic> replayed;
            bool ok = true;
            for (const cache::CachedDiagnostic& cached : unit.diags) {
                support::Diagnostic d;
                if (!cache::AnalysisCache::fromCached(cached, file_ids,
                                                      d)) {
                    ok = false;
                    break;
                }
                replayed.push_back(std::move(d));
            }
            if (!ok)
                continue;
            auto rebuilt = checkers::makeChecker(checkers[c]->name(),
                                                 options.checker_options);
            std::istringstream state(unit.state);
            if (!rebuilt->loadState(state))
                continue;
            for (support::Diagnostic& d : replayed)
                unit_sinks[u].report(std::move(d));
            unit_checkers[u] = std::move(rebuilt);
            unit_hit[u] = 1;
        }
    }

    std::vector<std::uint64_t> misses;
    for (std::size_t u = 0; u < nunits; ++u)
        if (!unit_hit[u])
            misses.push_back(u);

    std::vector<UnitResult> results(nunits);
    std::vector<char> quarantined(nunits, 0);
    support::RunLedger& ledger = support::RunLedger::global();

    if (!misses.empty()) {
        shard::SupervisorOptions sopts;
        sopts.workers = request.shards;
        sopts.worker_argv = request.shard_worker_argv;
        sopts.batch_units = request.shard_batch_units;
        sopts.batch_timeout_ms = request.shard_batch_timeout_ms;
        sopts.backoff_base_ms = request.shard_backoff_ms;

        shard::SupervisorHooks hooks;
        std::uint64_t seq = 0;
        hooks.make_request =
            [&](const std::vector<std::uint64_t>& units) {
                return makeCheckUnitsRequest(request, units, ++seq);
            };
        hooks.on_result = [&](const std::vector<std::uint64_t>& units,
                              const std::string& line, unsigned slot,
                              const std::vector<unsigned>& attempts) {
            absorbWorkerResponse(units, line, slot, attempts, results);
        };
        hooks.on_quarantine = [&](std::uint64_t unit, unsigned crashes) {
            quarantined[unit] = 1;
            results[unit].resolved = true;
            results[unit].attempts = crashes;
        };
        hooks.on_event = [&](unsigned slot, const char* action,
                             std::uint64_t detail) {
            if (ledger.enabled())
                ledger.worker(slot, action, detail);
        };

        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                "shard.supervise", "shard");
        shard::Supervisor(sopts).run(misses, hooks);
    }

    // Replay worker results into the same per-unit (checker, sink) slots
    // phase 0 fills for hits — from here on the merge cannot tell a
    // cache hit from a worker result from an in-process unit. Replay
    // failures are fatal, not demotable: the unit already ran, and
    // silently re-running it could mask a determinism bug.
    std::map<std::string, std::int32_t> file_ids =
        cache::AnalysisCache::fileIdsByName(program.sourceManager());
    for (std::uint64_t u : misses) {
        const std::size_t f = static_cast<std::size_t>(u) / ncheckers;
        const std::size_t c = static_cast<std::size_t>(u) % ncheckers;
        UnitResult& r = results[u];
        if (!r.resolved)
            throw std::runtime_error("shard run left unit '" +
                                     fns[f]->name + "/" +
                                     checkers[c]->name() + "' unresolved");
        if (quarantined[u]) {
            // Synthesized locally, byte-for-byte the shape of every
            // other contained unit failure — and a pure function of
            // unit identity, so any shard count quarantines the same
            // units with the same bytes.
            r.failed = true;
            r.error = "shard worker crashed; unit quarantined";
            unit_checkers[u] = checkers::makeChecker(
                checkers[c]->name(), options.checker_options);
            unit_sinks[u].warning(
                fns[f]->loc, "engine", "unit-failure",
                "analysis incomplete: " + checkers[c]->name() +
                    " failed on '" + fns[f]->name + "': " + r.error);
            continue;
        }
        auto rebuilt = checkers::makeChecker(checkers[c]->name(),
                                             options.checker_options);
        std::istringstream state(r.payload.state);
        if (!rebuilt->loadState(state))
            throw std::runtime_error(
                "shard worker returned unloadable checker state for '" +
                fns[f]->name + "/" + checkers[c]->name() + "'");
        for (const cache::CachedDiagnostic& cached : r.payload.diags) {
            support::Diagnostic d;
            if (!cache::AnalysisCache::fromCached(cached, file_ids, d))
                throw std::runtime_error(
                    "shard worker diagnostic names unknown file '" +
                    cached.file + "'");
            unit_sinks[u].report(std::move(d));
        }
        unit_checkers[u] = std::move(rebuilt);
        if (options.cache && !options.cache->readonly() &&
            unit_keys[u] != 0 && !r.failed && r.budget_stop == "none")
            options.cache->store(unit_keys[u], r.payload);
    }

    // Sequential merge in the sequential runner's visit order — the
    // same loop as runCheckersParallel, with worker-reported timing and
    // walk stats standing in for locally measured ones.
    std::set<std::int32_t> degraded_files;
    if (ledger.enabled())
        for (const lang::TranslationUnit& tu : program.units())
            if (!tu.issues.empty())
                degraded_files.insert(tu.file_id);
    std::vector<Clock::duration> elapsed(ncheckers,
                                         Clock::duration::zero());
    std::uint64_t failures = 0;
    std::uint64_t truncations = 0;
    std::uint64_t witness_truncations = 0;
    for (std::size_t u = 0; u < nunits; ++u) {
        std::size_t f = u / ncheckers;
        std::size_t c = u % ncheckers;
        const std::string label =
            fns[f]->name + "/" + checkers[c]->name();
        UnitResult& r = results[u];
        // On an injected merge fault the unit's sink is *replaced*, not
        // appended to — a failed unit contributes no partial findings,
        // exactly like every other contained unit failure. The sink
        // holds a mutex (not assignable), so replacement is a local.
        support::DiagnosticSink fault_sink;
        support::DiagnosticSink* merged = &unit_sinks[u];
        try {
            // Keyed by unit identity: the same units fault at any shard
            // count, and the containment below is the standard unit
            // failure, so injected merge faults stay byte-deterministic.
            support::fault::probe("shard.merge", label);
        } catch (const support::InjectedFault& e) {
            r.failed = true;
            r.error = e.what();
            unit_hit[u] = 0;
            unit_checkers[u] = checkers::makeChecker(
                checkers[c]->name(), options.checker_options);
            fault_sink.warning(
                fns[f]->loc, "engine", "unit-failure",
                "analysis incomplete: " + checkers[c]->name() +
                    " failed on '" + fns[f]->name + "': " + r.error);
            merged = &fault_sink;
        }
        bool unit_failed = !unit_hit[u] && r.failed;
        bool truncated = !unit_hit[u] && r.budget_stop != "none";
        if (options.fail_fast && unit_failed)
            throw std::runtime_error("unit '" + label +
                                     "' failed: " + r.error);
        checkers[c]->absorb(*unit_checkers[u]);
        elapsed[c] += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(r.wall_ms));
        for (const support::Diagnostic& d : merged->diagnostics()) {
            witness_truncations += d.witness.truncated ? 1 : 0;
            sink.report(d);
        }
        failures += unit_failed ? 1 : 0;
        truncations += truncated ? 1 : 0;
        if (ledger.enabled()) {
            support::LedgerUnitEvent event;
            event.function = fns[f]->name;
            event.checker = checkers[c]->name();
            event.wall_ms = r.wall_ms;
            event.visits = r.visits;
            event.pruned_edges = r.pruned_edges;
            event.prune_cache_hits = r.prune_cache_hits;
            event.prune_skipped_nary = r.prune_skipped_nary;
            event.cache =
                !options.cache ? "off" : unit_hit[u] ? "hit" : "miss";
            event.budget_stop =
                unit_hit[u] ? "none" : r.budget_stop.c_str();
            event.truncated = truncated;
            event.failed = unit_failed;
            event.degraded_parse =
                degraded_files.count(fns[f]->loc.file_id) != 0;
            event.worker = unit_hit[u] ? -1 : r.worker;
            event.attempts = unit_hit[u] ? 0 : r.attempts;
            ledger.unit(event);
        }
        if (metrics.enabled() && !unit_hit[u]) {
            metrics.histogram("unit.wall_ns")
                .observe(static_cast<std::uint64_t>(r.wall_ms * 1e6));
            metrics.histogram("unit.visits").observe(r.visits);
        }
    }
    if (options.health) {
        options.health->unit_failures += failures;
        options.health->budget_truncations += truncations;
    }
    if (metrics.enabled()) {
        metrics.counter("engine.unit_failures").add(failures);
        metrics.counter("budget.truncations").add(truncations);
        metrics.counter("witness.truncations").add(witness_truncations);
    }

    checkers::CheckContext ctx{program, spec, sink};
    for (std::size_t i = 0; i < ncheckers; ++i) {
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                checkers[i]->name() + ".program",
                                "checker");
        Clock::time_point t0 = Clock::now();
        checkers[i]->checkProgram(ctx);
        elapsed[i] += Clock::now() - t0;
    }

    std::vector<checkers::CheckerRunStats> stats;
    for (std::size_t i = 0; i < ncheckers; ++i) {
        checkers::CheckerRunStats s;
        s.checker = checkers[i]->name();
        s.errors = sink.countForChecker(s.checker,
                                        support::Severity::Error) -
                   base_errors[i];
        s.warnings = sink.countForChecker(s.checker,
                                          support::Severity::Warning) -
                     base_warnings[i];
        s.applied = checkers[i]->applied();
        s.wall_ms =
            std::chrono::duration<double, std::milli>(elapsed[i]).count();
        if (metrics.enabled()) {
            metrics.timer("checker." + s.checker)
                .add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed[i]));
            metrics.counter("checker." + s.checker + ".errors")
                .add(static_cast<std::uint64_t>(s.errors));
            metrics.counter("checker." + s.checker + ".warnings")
                .add(static_cast<std::uint64_t>(s.warnings));
            metrics.counter("checker." + s.checker + ".applied")
                .add(static_cast<std::uint64_t>(s.applied));
        }
        stats.push_back(std::move(s));
    }
    return stats;
}

} // namespace mc::server
