/**
 * @file
 * The checking pipeline shared by mccheck (batch) and mccheckd (daemon).
 *
 * This code moved here from the batch driver so both front ends execute
 * the same functions against the same streams: every byte a daemon
 * `check` response carries was produced by the code that produces batch
 * stdout, which is what the daemon-vs-batch differential suite pins.
 *
 * Output is deterministic for any jobs value, warm or cold cache, and
 * one-shot or resident program state: diagnostics are ordered by (file,
 * line, column, checker, rule) at emission, the parallel runner merges
 * worker results in the sequential visit order, cached units replay
 * their stored diagnostics and checker state through that same merge
 * path, and resident programs keep their file ids stable across
 * in-place re-parses so emission order cannot drift.
 */
#include "server/check_request.h"

#include "cfg/cfg.h"
#include "checkers/parallel.h"
#include "checkers/registry.h"
#include "checkers/unit_guard.h"
#include "corpus/generator.h"
#include "flash/protocol_spec.h"
#include "lang/fingerprint.h"
#include "metal/metal_parser.h"
#include "server/check_units.h"
#include "server/resident.h"
#include "server/sharded_check.h"
#include "support/budget.h"
#include "support/fault_injection.h"
#include "support/hash.h"
#include "support/metrics.h"
#include "support/run_ledger.h"
#include "support/text.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "support/version.h"
#include "support/witness.h"

#include <cctype>
#include <chrono>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace mc::server {

namespace {

/** Per-unit resource limits from the request's budget knobs. */
support::BudgetLimits
unitBudget(const CheckRequest& req)
{
    support::BudgetLimits limits;
    limits.deadline = std::chrono::milliseconds(req.unit_timeout_ms);
    limits.max_steps = req.unit_max_steps;
    return limits;
}

/**
 * Map a finished run to the documented exit scheme: degraded (2) wins
 * over findings (1) — an incomplete analysis can neither prove nor
 * refute cleanliness, and the caller must not mistake "no errors
 * reported" for "no errors present".
 */
int
exitCode(bool degraded, const support::DiagnosticSink& sink)
{
    if (degraded)
        return 2;
    return sink.count(support::Severity::Error) > 0 ? 1 : 0;
}

/**
 * Surface recovered frontend failures (parse/lex errors that poisoned a
 * declaration) as ordinary diagnostics so they reach every output
 * format, SARIF included, through the same sorted emission path.
 */
void
reportFrontendIssues(const lang::Program& program,
                     support::DiagnosticSink& sink)
{
    for (const lang::TranslationUnit& unit : program.units())
        for (const lang::ParseIssue& issue : unit.issues)
            sink.error(issue.loc, "frontend", issue.rule, issue.message);
}

/** Render run stats + diagnostics in the selected format. */
void
emitFindings(const CheckRequest& req,
             const support::DiagnosticSink& sink,
             const support::SourceManager* sm,
             const std::vector<checkers::CheckerRunStats>* stats,
             std::ostream& out, CheckOutcome& outcome)
{
    outcome.errors = sink.count(support::Severity::Error);
    outcome.warnings = sink.count(support::Severity::Warning);
    if (req.format == support::OutputFormat::Text) {
        sink.print(out, sm);
        if (stats) {
            out << '\n';
            std::vector<std::vector<std::string>> rows;
            for (const auto& s : *stats) {
                std::ostringstream ms;
                ms.precision(2);
                ms << std::fixed << s.wall_ms;
                rows.push_back({s.checker, std::to_string(s.errors),
                                std::to_string(s.warnings),
                                std::to_string(s.applied), ms.str()});
            }
            out << support::formatTable(
                {"checker", "errors", "warnings", "applied", "wall_ms"},
                rows);
        }
    } else {
        sink.write(out, req.format, sm);
    }
}

FileReader
sourceReader(const CheckRequest& req)
{
    return req.read_file ? req.read_file : FileReader(readDiskFile);
}

/**
 * Run the checker set in-process or — when the request asks for shards
 * — across supervised worker processes. Both paths produce identical
 * sink bytes; only the execution substrate differs.
 */
std::vector<checkers::CheckerRunStats>
runCheckerSet(const CheckRequest& req, cache::AnalysisCache* cache,
              const lang::Program& program,
              const flash::ProtocolSpec& spec,
              const std::vector<checkers::Checker*>& checkers,
              support::DiagnosticSink& sink,
              const checkers::CheckerSetOptions& copts,
              checkers::RunHealth& health, checkers::CfgCache* cfgs)
{
    if (req.shards > 0) {
        ShardRunOptions srun;
        srun.checker_options = copts;
        srun.cache = cache;
        srun.fail_fast = req.fail_fast;
        srun.health = &health;
        return runCheckersSharded(program, spec, checkers, sink, req,
                                  srun);
    }
    checkers::ParallelRunOptions prun;
    prun.jobs = req.jobs;
    prun.cache = cache;
    prun.unit_budget = unitBudget(req);
    prun.fail_fast = req.fail_fast;
    prun.health = &health;
    prun.checker_options = copts;
    prun.cfg_cache = cfgs;
    return checkers::runCheckersParallel(program, spec, checkers, sink,
                                         prun);
}

PreparedProgram
prepareSources(const CheckRequest& req, ResidentState* resident)
{
    if (resident)
        return resident->prepareFiles(req.files, sourceReader(req));
    return buildProgramOneShot(req.files, sourceReader(req));
}

int
checkProtocol(const CheckRequest& req, cache::AnalysisCache* cache,
              ResidentState* resident, std::ostream& out,
              CheckOutcome& outcome)
{
    corpus::LoadedProtocol local;
    corpus::LoadedProtocol* loaded = &local;
    checkers::CfgCache* cfgs = nullptr;
    bool reused = false;
    if (resident) {
        loaded = &resident->protocolSnapshot(req.protocol, cfgs, reused);
    } else {
        local = corpus::loadProtocol(corpus::profileByName(req.protocol));
    }
    outcome.program_reused = reused;
    outcome.files_reparsed = reused ? 0 : loaded->gen.files.size();
    support::TraceRecorder& tracer = support::TraceRecorder::global();
    support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                            "protocol:" + req.protocol, "driver");
    checkers::CheckerSetOptions copts;
    copts.prune_strategy = req.prune_strategy;
    auto set = checkers::makeAllCheckers(copts);
    support::DiagnosticSink sink;
    reportFrontendIssues(*loaded->program, sink);
    checkers::RunHealth health;
    auto stats =
        runCheckerSet(req, cache, *loaded->program, loaded->gen.spec,
                      set.pointers(), sink, copts, health, cfgs);
    span.finish();
    outcome.units_total =
        loaded->program->functions().size() * set.pointers().size();
    emitFindings(req, sink, &loaded->program->sourceManager(), &stats,
                 out, outcome);
    return exitCode(loaded->program->degraded() ||
                        health.unit_failures > 0 ||
                        health.budget_truncations > 0,
                    sink);
}

/** Run one user-written metal checker over dialect sources. */
int
runMetalChecker(const CheckRequest& req, cache::AnalysisCache* cache,
                ResidentState* resident, std::ostream& out,
                std::ostream& err, CheckOutcome& outcome)
{
    std::string metal_source;
    {
        std::string error;
        if (!sourceReader(req)(req.metal_path, metal_source, error)) {
            // The batch loadMetalFile error line, byte for byte.
            err << "mccheck: cannot open metal file: " << req.metal_path
                << '\n';
            return 3;
        }
    }
    metal::MetalProgram local_checker;
    const metal::MetalProgram* checker = &local_checker;
    try {
        if (resident) {
            checker =
                &resident->metalProgram(metal_source, req.metal_path);
        } else {
            local_checker =
                metal::parseMetal(metal_source, req.metal_path);
        }
    } catch (const metal::MetalParseError& e) {
        err << "mccheck: " << e.what() << '\n';
        return 3;
    }

    PreparedProgram prepared = prepareSources(req, resident);
    if (!prepared.ok) {
        err << prepared.error << '\n';
        return 3;
    }
    lang::Program& program = *prepared.program;
    outcome.files_reparsed = prepared.files_reparsed;
    outcome.program_reused = prepared.reused;

    // Fan functions out across the pool, each into a private sink; merge
    // in program function order so the shared sink sees the same
    // diagnostic sequence a sequential loop would produce. The parsed
    // state machine is shared read-only across lanes. Each function runs
    // under a UnitGuard with the request budget, mirroring the parallel
    // checker runner's containment: a walk that throws is replaced by an
    // "analysis incomplete" warning and the run degrades instead of
    // dying.
    //
    // With a cache, each function's walk outcome (its private sink's
    // diagnostics) is keyed by the metal source text plus the function's
    // token-stream fingerprint, so re-checks after an edit replay every
    // untouched function. Functions in degraded units have no
    // fingerprint and bypass the cache entirely.
    const std::vector<const lang::FunctionDecl*>& fns =
        program.functions();
    const std::string unit_checker = "metal:" + checker->name;
    using Clock = std::chrono::steady_clock;
    std::vector<support::DiagnosticSink> fn_sinks(fns.size());
    std::vector<char> fn_failed(fns.size(), 0);
    std::vector<char> fn_hit(fns.size(), 0);
    std::vector<Clock::duration> fn_elapsed(fns.size(),
                                            Clock::duration::zero());
    std::vector<support::LedgerUnitStats> fn_walk_stats(fns.size());
    std::vector<support::BudgetStop> fn_stop(fns.size(),
                                             support::BudgetStop::None);
    std::map<std::string, std::uint64_t> fn_fps;
    std::map<std::string, std::int32_t> file_ids;
    std::vector<std::uint64_t> keys(fns.size(), 0);
    if (cache) {
        fn_fps = lang::fingerprintFunctions(program);
        file_ids =
            cache::AnalysisCache::fileIdsByName(program.sourceManager());
    }
    checkers::CfgCache* cfg_cache = prepared.cfg_cache;
    support::ThreadPool pool(req.jobs);
    pool.parallelFor(fns.size(), [&](std::size_t f) {
        Clock::time_point t0 = Clock::now();
        auto fp = fn_fps.find(fns[f]->name);
        if (cache && fp != fn_fps.end()) {
            // Witness capture changes the cached bytes, so witness-on
            // and witness-off runs (and different caps) key separately.
            keys[f] = support::Fnv1a()
                          .i64(cache::kCacheFormatVersion)
                          .str(support::kToolVersion)
                          .str(unit_checker)
                          .str(metal_source)
                          .u8(support::witnessEnabled() ? 1 : 0)
                          .u64(support::witnessLimit())
                          .u8(static_cast<std::uint8_t>(
                              req.prune_strategy))
                          .u64(fp->second)
                          .value();
            cache::CachedUnit unit;
            if (cache->lookup(keys[f], unit) &&
                unit.function == fns[f]->name) {
                bool ok = true;
                std::vector<support::Diagnostic> replayed;
                for (const cache::CachedDiagnostic& cached : unit.diags) {
                    support::Diagnostic d;
                    if (!cache::AnalysisCache::fromCached(cached, file_ids,
                                                          d)) {
                        ok = false;
                        break;
                    }
                    replayed.push_back(std::move(d));
                }
                if (ok) {
                    for (support::Diagnostic& d : replayed)
                        fn_sinks[f].report(std::move(d));
                    fn_hit[f] = 1;
                    fn_elapsed[f] = Clock::now() - t0;
                    return;
                }
            }
        }
        const std::string label = fns[f]->name + "/" + unit_checker;
        support::DiagnosticSink scratch;
        support::LedgerUnitStats unit_stats;
        support::LedgerUnitScope stats_scope(&unit_stats);
        checkers::UnitGuard guard(label, unitBudget(req),
                                  req.fail_fast);
        checkers::UnitOutcome outcome_u = guard.run([&] {
            support::fault::probe("checker.unit", label);
            // Resident CFGs: look up by declaration pointer, build and
            // publish (backEdges pre-warmed while single-owner) on miss.
            // One-shot runs build locally exactly as batch always did.
            const cfg::Cfg* cfg = nullptr;
            cfg::Cfg local_cfg;
            if (cfg_cache) {
                {
                    std::lock_guard<std::mutex> lock(cfg_cache->mu);
                    auto it = cfg_cache->cfgs.find(fns[f]);
                    if (it != cfg_cache->cfgs.end())
                        cfg = &it->second;
                }
                if (!cfg) {
                    cfg::Cfg built = cfg::CfgBuilder::build(*fns[f]);
                    built.backEdges();
                    std::lock_guard<std::mutex> lock(cfg_cache->mu);
                    cfg = &cfg_cache->cfgs
                               .emplace(fns[f], std::move(built))
                               .first->second;
                }
            } else {
                local_cfg = cfg::CfgBuilder::build(*fns[f]);
                cfg = &local_cfg;
            }
            metal::SmRunOptions run_options;
            run_options.prune_strategy = req.prune_strategy;
            metal::runStateMachine(*checker->sm, *cfg, scratch,
                                   run_options);
        });
        fn_elapsed[f] = Clock::now() - t0;
        fn_walk_stats[f] = unit_stats;
        fn_stop[f] = outcome_u.budget_stop;
        if (outcome_u.failed) {
            fn_failed[f] = 1;
            fn_sinks[f].warning(fns[f]->loc, "engine", "unit-failure",
                                "analysis incomplete: " + unit_checker +
                                    " failed on '" + fns[f]->name +
                                    "': " + outcome_u.error);
            return;
        }
        for (const support::Diagnostic& d : scratch.diagnostics())
            fn_sinks[f].report(d);
        if (outcome_u.budget_stop != support::BudgetStop::None)
            fn_sinks[f].warning(
                fns[f]->loc, "engine", "budget-exhausted",
                "analysis truncated: " + unit_checker + " on '" +
                    fns[f]->name + "' exhausted its " +
                    support::budgetStopName(outcome_u.budget_stop) +
                    " budget");
        if (cache && !cache->readonly() && keys[f] != 0 &&
            outcome_u.budget_stop == support::BudgetStop::None) {
            cache::CachedUnit unit;
            unit.checker = unit_checker;
            unit.function = fns[f]->name;
            for (const support::Diagnostic& d : fn_sinks[f].diagnostics())
                unit.diags.push_back(cache::AnalysisCache::toCached(
                    d, program.sourceManager()));
            cache->store(keys[f], unit);
        }
    });
    support::DiagnosticSink sink;
    reportFrontendIssues(program, sink);
    support::RunLedger& ledger = support::RunLedger::global();
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    std::set<std::int32_t> degraded_files;
    if (ledger.enabled())
        for (const lang::TranslationUnit& tu : program.units())
            if (!tu.issues.empty())
                degraded_files.insert(tu.file_id);
    std::uint64_t failures = 0;
    std::uint64_t truncations = 0;
    std::uint64_t witness_truncations = 0;
    for (std::size_t f = 0; f < fns.size(); ++f) {
        for (const support::Diagnostic& d : fn_sinks[f].diagnostics()) {
            witness_truncations += d.witness.truncated ? 1 : 0;
            sink.report(d);
        }
        failures += fn_failed[f] ? 1 : 0;
        truncations +=
            fn_stop[f] != support::BudgetStop::None ? 1 : 0;
        if (ledger.enabled()) {
            support::LedgerUnitEvent event;
            event.function = fns[f]->name;
            event.checker = unit_checker;
            event.wall_ms = std::chrono::duration<double, std::milli>(
                                fn_elapsed[f])
                                .count();
            event.visits = fn_walk_stats[f].visits;
            event.pruned_edges = fn_walk_stats[f].pruned_edges;
            event.prune_cache_hits = fn_walk_stats[f].prune_cache_hits;
            event.prune_skipped_nary =
                fn_walk_stats[f].prune_skipped_nary;
            event.cache = !cache ? "off" : fn_hit[f] ? "hit" : "miss";
            event.budget_stop = support::budgetStopName(fn_stop[f]);
            event.truncated = fn_stop[f] != support::BudgetStop::None;
            event.failed = fn_failed[f] != 0;
            event.degraded_parse =
                degraded_files.count(fns[f]->loc.file_id) != 0;
            ledger.unit(event);
        }
        if (metrics.enabled() && !fn_hit[f]) {
            metrics.histogram("unit.wall_ns")
                .observe(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        fn_elapsed[f])
                        .count()));
            metrics.histogram("unit.visits")
                .observe(fn_walk_stats[f].visits);
        }
    }
    if (metrics.enabled()) {
        metrics.counter("engine.unit_failures").add(failures);
        metrics.counter("budget.truncations").add(truncations);
        metrics.counter("witness.truncations").add(witness_truncations);
    }
    outcome.units_total = fns.size();
    emitFindings(req, sink, &program.sourceManager(), nullptr, out,
                 outcome);
    if (req.format == support::OutputFormat::Text)
        out << "sm '" << checker->name << "': "
            << sink.count(support::Severity::Error) << " error(s), "
            << sink.count(support::Severity::Warning)
            << " warning(s)\n";
    return exitCode(program.degraded() || failures > 0 ||
                        truncations > 0,
                    sink);
}

int
checkFiles(const CheckRequest& req, cache::AnalysisCache* cache,
           ResidentState* resident, std::ostream& out, std::ostream& err,
           CheckOutcome& outcome)
{
    PreparedProgram prepared = prepareSources(req, resident);
    if (!prepared.ok) {
        err << prepared.error << '\n';
        return 3;
    }
    lang::Program& program = *prepared.program;
    outcome.files_reparsed = prepared.files_reparsed;
    outcome.program_reused = prepared.reused;

    // The (function name -> handler kind) classification lives in
    // cliFilesSpec so shard workers classify identically to this
    // in-process path.
    flash::ProtocolSpec spec = cliFilesSpec(program);

    checkers::CheckerSetOptions copts;
    copts.prune_strategy = req.prune_strategy;
    auto set = checkers::makeAllCheckers(copts);
    support::DiagnosticSink sink;
    reportFrontendIssues(program, sink);
    checkers::RunHealth health;
    auto stats = runCheckerSet(req, cache, program, spec, set.pointers(),
                               sink, copts, health, prepared.cfg_cache);
    outcome.units_total =
        program.functions().size() * set.pointers().size();
    emitFindings(req, sink, &program.sourceManager(), nullptr, out,
                 outcome);
    if (req.format == support::OutputFormat::Text)
        out << sink.count(support::Severity::Error) << " error(s), "
            << sink.count(support::Severity::Warning)
            << " warning(s)\n";
    (void)stats;
    return exitCode(program.degraded() || health.unit_failures > 0 ||
                        health.budget_truncations > 0,
                    sink);
}

std::uint64_t
cacheHits(cache::AnalysisCache* cache)
{
    return cache ? cache->stats().hits : 0;
}

} // namespace

CheckOutcome
runCheckRequest(const CheckRequest& request, cache::AnalysisCache* cache,
                ResidentState* resident, std::ostream& out,
                std::ostream& err)
{
    CheckOutcome outcome;
    // Per-run process-global configuration. Both are folded into every
    // cache key (witness) or proven byte-neutral (match strategy), so a
    // resident cache can never leak one configuration's results into
    // another's run.
    support::setWitnessConfig(request.witness, request.witness_limit);
    metal::setDefaultMatchStrategy(request.match_strategy);
    const std::uint64_t hits_before = cacheHits(cache);
    try {
        switch (request.mode) {
          case CheckRequest::Mode::Protocol:
            outcome.exit_code =
                checkProtocol(request, cache, resident, out, outcome);
            break;
          case CheckRequest::Mode::Metal:
            outcome.exit_code = runMetalChecker(request, cache, resident,
                                                out, err, outcome);
            break;
          case CheckRequest::Mode::Files:
            outcome.exit_code =
                checkFiles(request, cache, resident, out, err, outcome);
            break;
        }
    } catch (const std::exception& e) {
        // Anything that escapes containment — unknown protocol names,
        // --fail-fast rethrows, fault-injection probes outside any
        // UnitGuard — is fatal, rendered exactly as the batch driver
        // renders it.
        err << "mccheck: " << e.what() << '\n';
        outcome.exit_code = 3;
    }
    outcome.units_reused = cacheHits(cache) - hits_before;
    return outcome;
}

} // namespace mc::server
