#ifndef MCHECK_SERVER_JSON_H
#define MCHECK_SERVER_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mc::server {

/**
 * A parsed JSON value for the daemon's wire protocol.
 *
 * Deliberately minimal: the request protocol is line-delimited JSON
 * objects with string/number/bool scalars, string arrays, and one level
 * of nested params, so this models exactly the JSON data model and
 * nothing more (no comments, no NaN, no trailing commas). Objects
 * preserve insertion order — responses render fields in the order the
 * handler set them, which keeps wire bytes deterministic and diffable.
 *
 * Numbers remember whether their value is a whole number:
 * `asInt` refuses fractional values rather than silently truncating a
 * malformed "jobs": 1.5 (while "jobs": 3.0 reads as 3, matching JSON
 * Schema's value-based notion of integer).
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue number(std::int64_t v);
    static JsonValue number(std::uint64_t v);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool dflt = false) const;
    double asDouble(double dflt = 0.0) const;
    /** Integral value; `ok` (if given) reports non-integral numbers. */
    std::int64_t asInt(std::int64_t dflt = 0, bool* ok = nullptr) const;
    const std::string& asString() const { return string_; }

    /** True when the number's *value* is a representable whole number
     *  (JSON Schema's notion of integer: 3 and 3.0 qualify, 1.5 does
     *  not). Whole numbers dump without a fractional part. */
    bool isIntegral() const { return kind_ == Kind::Number && integral_; }

    // ---- arrays -------------------------------------------------------
    const std::vector<JsonValue>& items() const { return items_; }
    void push(JsonValue v);

    // ---- objects (insertion-ordered) ----------------------------------
    const std::vector<std::pair<std::string, JsonValue>>& members() const
    {
        return members_;
    }
    /** Member by key, or nullptr. */
    const JsonValue* get(const std::string& key) const;
    /** Insert or overwrite a member (insertion position kept). */
    void set(std::string key, JsonValue v);

    /** Render compactly (no whitespace beyond ", " / ": " separators). */
    std::string dump() const;

    /**
     * Parse one complete JSON document. Trailing non-whitespace, control
     * characters in strings, bad escapes, and nesting deeper than 64
     * levels are all errors (reason in `error`).
     */
    static bool parse(std::string_view text, JsonValue& out,
                      std::string& error);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool integral_ = false;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace mc::server

#endif // MCHECK_SERVER_JSON_H
