#ifndef MCHECK_SIM_INTERP_H
#define MCHECK_SIM_INTERP_H

#include "flash/protocol_spec.h"
#include "lang/program.h"
#include "sim/machine.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mc::sim {

/**
 * Direct AST interpreter for the FLASH dialect.
 *
 * Executes handler bodies against a MagicNode: FLASH macros become node
 * operations (sends, buffer ops, directory ops), calls to functions
 * defined in the program are interpreted recursively, and the protocol
 * constants (F_DATA, LEN_*, MSG_*, ...) evaluate to their hardware
 * values. This is the FlashLite role: the same protocol sources the
 * static checkers analyze also *run*.
 */
struct InterpreterOptions
{
    /** Statement budget per handler invocation (loop guard). */
    std::uint64_t max_steps = 200000;
    /** Call-depth budget (recursion guard). */
    int max_depth = 64;
};

class Interpreter
{
  public:
    using Options = InterpreterOptions;

    Interpreter(const lang::Program& program,
                const flash::ProtocolSpec& spec, MagicNode& node,
                Options options = InterpreterOptions());

    /** Run a handler (a void, zero-parameter function definition). */
    void runFunction(const lang::FunctionDecl& fn);

    /** Total statements executed across all runs. */
    std::uint64_t stepsExecuted() const { return total_steps_ + steps_; }

  private:
    class Env;
    enum class Flow : std::uint8_t { Normal, Break, Continue, Return };

    Flow execStmt(const lang::Stmt& stmt, Env& env);
    Flow execSwitch(const lang::SwitchStmt& stmt, Env& env);
    std::int64_t eval(const lang::Expr& expr, Env& env);
    std::int64_t evalCall(const lang::CallExpr& call, Env& env);
    std::int64_t constantValue(const std::string& name) const;
    void assign(const lang::Expr& lhs, std::int64_t value, Env& env);

    const lang::Program& program_;
    const flash::ProtocolSpec& spec_;
    MagicNode& node_;
    Options options_;
    /** Steps in the current top-level invocation (budget-limited). */
    std::uint64_t steps_ = 0;
    /** Steps from completed invocations. */
    std::uint64_t total_steps_ = 0;
    int depth_ = 0;
    std::map<std::string, std::int64_t> constants_;
};

} // namespace mc::sim

#endif // MCHECK_SIM_INTERP_H
