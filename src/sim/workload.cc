#include "sim/workload.h"

namespace mc::sim {

int
WorkloadResult::count(FailureKind kind) const
{
    int n = 0;
    for (const Failure& failure : failures)
        if (failure.kind == kind)
            ++n;
    return n;
}

int
WorkloadResult::totalLeaks() const
{
    int n = 0;
    for (const auto& [handler, leaks] : leaks_by_handler)
        n += leaks;
    return n;
}

WorkloadDriver::WorkloadDriver(const lang::Program& program,
                               const flash::ProtocolSpec& spec,
                               MagicNode::Config config, std::uint64_t seed)
    : program_(program), spec_(spec), config_(config), seed_(seed)
{
    for (const auto& [name, handler] : spec.handlers()) {
        if (handler.kind != flash::HandlerKind::Hardware)
            continue;
        if (const lang::FunctionDecl* fn = program.findFunction(name))
            handlers_.push_back(fn);
    }
}

WorkloadResult
WorkloadDriver::run(std::uint64_t messages)
{
    WorkloadResult result;
    if (handlers_.empty())
        return result;

    MagicNode node(config_, seed_ ^ 0xabcdef12ull);
    Interpreter interp(program_, spec_, node);
    support::Rng rng(seed_);

    for (std::uint64_t i = 0; i < messages; ++i) {
        const lang::FunctionDecl* handler =
            handlers_[static_cast<std::size_t>(
                rng.below(handlers_.size()))];
        std::int64_t payload = static_cast<std::int64_t>(rng.below(32));
        if (!node.deliverMessage(payload, handler->name)) {
            result.deadlocked = true;
            break;
        }
        interp.runFunction(*handler);
        if (node.finishHandler())
            ++result.leaks_by_handler[handler->name];
        ++result.messages_handled;
    }

    result.cycles = node.cycle();
    result.failures = node.failures();
    for (const Failure& failure : result.failures) {
        auto [it, inserted] = result.first_manifestation.emplace(
            failure.kind, failure.message_index);
        (void)it;
        (void)inserted;
    }
    return result;
}

} // namespace mc::sim
