#include "sim/interp.h"

#include "flash/macros.h"

#include <cassert>

namespace mc::sim {

using namespace mc::lang;

/** Scoped variable environment. Assignment to unknown names creates a
 *  binding in the innermost scope (the dialect leaves protocol globals
 *  undeclared). */
class Interpreter::Env
{
  public:
    Env() { scopes_.emplace_back(); }

    void push() { scopes_.emplace_back(); }
    void pop() { scopes_.pop_back(); }

    std::int64_t*
    find(const std::string& name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    void
    declare(const std::string& name, std::int64_t value)
    {
        scopes_.back()[name] = value;
    }

    void
    set(const std::string& name, std::int64_t value)
    {
        if (std::int64_t* slot = find(name))
            *slot = value;
        else
            scopes_.back()[name] = value;
    }

  private:
    std::vector<std::map<std::string, std::int64_t>> scopes_;
};

Interpreter::Interpreter(const Program& program,
                         const flash::ProtocolSpec& spec, MagicNode& node,
                         Options options)
    : program_(program), spec_(spec), node_(node), options_(options)
{
    constants_ = {
        {"F_DATA", 1},      {"F_NODATA", 0},   {"F_WAIT", 1},
        {"F_NOWAIT", 0},    {"F_KEEP", 0},     {"F_SWAP", 0},
        {"F_DEC", 0},       {"F_NULL", 0},     {"LEN_NODATA", kLenNoData},
        {"LEN_WORD", kLenWord},                {"LEN_CACHELINE",
                                                kLenCacheline},
        {"DIRTY", 1},       {"CLEAN", 0},      {"PENDING", 2},
        {"DIR_BASE", 4096},
    };
    int opcode_value = 16;
    for (const auto& [opcode, lane] : spec.opcodeLanes())
        constants_[opcode] = opcode_value++;
}

std::int64_t
Interpreter::constantValue(const std::string& name) const
{
    auto it = constants_.find(name);
    return it == constants_.end() ? 0 : it->second;
}

void
Interpreter::runFunction(const FunctionDecl& fn)
{
    if (!fn.body || depth_ >= options_.max_depth)
        return;
    if (depth_ == 0) {
        // The statement budget is per handler invocation.
        total_steps_ += steps_;
        steps_ = 0;
    }
    ++depth_;
    Env env;
    execStmt(*fn.body, env);
    --depth_;
}

Interpreter::Flow
Interpreter::execStmt(const Stmt& stmt, Env& env)
{
    if (++steps_ > options_.max_steps)
        return Flow::Return;
    node_.tick();

    switch (stmt.skind) {
      case StmtKind::Compound: {
        const auto& block = static_cast<const CompoundStmt&>(stmt);
        env.push();
        Flow flow = Flow::Normal;
        for (const Stmt* child : block.stmts) {
            flow = execStmt(*child, env);
            if (flow != Flow::Normal)
                break;
        }
        env.pop();
        return flow;
      }
      case StmtKind::Expr:
        eval(*static_cast<const ExprStmt&>(stmt).expr, env);
        return Flow::Normal;
      case StmtKind::Decl: {
        const auto& decl = static_cast<const DeclStmt&>(stmt);
        for (const VarDecl* var : decl.decls) {
            std::int64_t value = var->init ? eval(*var->init, env) : 0;
            env.declare(var->name, value);
        }
        return Flow::Normal;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        if (eval(*s.cond, env) != 0)
            return execStmt(*s.then_branch, env);
        if (s.else_branch)
            return execStmt(*s.else_branch, env);
        return Flow::Normal;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        while (eval(*s.cond, env) != 0) {
            Flow flow = execStmt(*s.body, env);
            if (flow == Flow::Break)
                break;
            if (flow == Flow::Return)
                return flow;
            if (steps_ > options_.max_steps)
                return Flow::Return;
        }
        return Flow::Normal;
      }
      case StmtKind::DoWhile: {
        const auto& s = static_cast<const DoWhileStmt&>(stmt);
        do {
            Flow flow = execStmt(*s.body, env);
            if (flow == Flow::Break)
                break;
            if (flow == Flow::Return)
                return flow;
            if (steps_ > options_.max_steps)
                return Flow::Return;
        } while (eval(*s.cond, env) != 0);
        return Flow::Normal;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        env.push();
        if (s.init)
            execStmt(*s.init, env);
        while (!s.cond || eval(*s.cond, env) != 0) {
            Flow flow = execStmt(*s.body, env);
            if (flow == Flow::Break)
                break;
            if (flow == Flow::Return) {
                env.pop();
                return flow;
            }
            if (s.step)
                eval(*s.step, env);
            if (steps_ > options_.max_steps)
                break;
        }
        env.pop();
        return Flow::Normal;
      }
      case StmtKind::Switch:
        return execSwitch(static_cast<const SwitchStmt&>(stmt), env);
      case StmtKind::Break:
        return Flow::Break;
      case StmtKind::Continue:
        return Flow::Continue;
      case StmtKind::Return: {
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        if (s.value)
            eval(*s.value, env);
        return Flow::Return;
      }
      case StmtKind::Goto:
      case StmtKind::Label:
        // The corpus does not emit gotos; treat a stray one as a no-op
        // label / fallthrough for robustness.
        return Flow::Normal;
      case StmtKind::Case:
      case StmtKind::Default:
      case StmtKind::Empty:
        return Flow::Normal;
    }
    return Flow::Normal;
}

Interpreter::Flow
Interpreter::execSwitch(const SwitchStmt& stmt, Env& env)
{
    std::int64_t selector = eval(*stmt.cond, env);
    if (!stmt.body || stmt.body->skind != StmtKind::Compound)
        return Flow::Normal;
    const auto& body = static_cast<const CompoundStmt&>(*stmt.body);

    // Find the matching case (or default) index, then execute with
    // fallthrough until break.
    std::size_t start = body.stmts.size();
    std::size_t default_at = body.stmts.size();
    for (std::size_t i = 0; i < body.stmts.size(); ++i) {
        const Stmt* child = body.stmts[i];
        if (child->skind == StmtKind::Case) {
            std::int64_t value =
                eval(*static_cast<const CaseStmt*>(child)->value, env);
            if (value == selector && start == body.stmts.size())
                start = i;
        } else if (child->skind == StmtKind::Default) {
            default_at = i;
        }
    }
    if (start == body.stmts.size())
        start = default_at;

    env.push();
    Flow flow = Flow::Normal;
    for (std::size_t i = start; i < body.stmts.size(); ++i) {
        flow = execStmt(*body.stmts[i], env);
        if (flow == Flow::Break) {
            flow = Flow::Normal;
            break;
        }
        if (flow == Flow::Return || flow == Flow::Continue)
            break;
    }
    env.pop();
    return flow;
}

void
Interpreter::assign(const Expr& lhs, std::int64_t value, Env& env)
{
    if (lhs.ekind == ExprKind::Ident) {
        env.set(static_cast<const IdentExpr&>(lhs).name, value);
        return;
    }
    // HANDLER_GLOBALS(header.nh.len) = LEN_x;
    if (const CallExpr* call = asCall(lhs)) {
        if (flash::classifyMacro(call->calleeName()) ==
            flash::MacroKind::HandlerGlobals) {
            node_.setHeaderLength(value);
            return;
        }
    }
    // Member/index stores have no modeled backing memory; drop them.
}

std::int64_t
Interpreter::eval(const Expr& expr, Env& env)
{
    switch (expr.ekind) {
      case ExprKind::IntLit:
        return static_cast<const IntLitExpr&>(expr).value;
      case ExprKind::FloatLit:
        return static_cast<std::int64_t>(
            static_cast<const FloatLitExpr&>(expr).value);
      case ExprKind::CharLit:
        return static_cast<const CharLitExpr&>(expr).value;
      case ExprKind::StringLit:
        return 1;
      case ExprKind::Ident: {
        const auto& ident = static_cast<const IdentExpr&>(expr);
        if (std::int64_t* slot = env.find(ident.name))
            return *slot;
        return constantValue(ident.name);
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        switch (u.op) {
          case UnaryOp::Plus: return eval(*u.operand, env);
          case UnaryOp::Neg: return -eval(*u.operand, env);
          case UnaryOp::Not: return eval(*u.operand, env) == 0 ? 1 : 0;
          case UnaryOp::BitNot: return ~eval(*u.operand, env);
          case UnaryOp::Deref: return eval(*u.operand, env);
          case UnaryOp::AddrOf: return eval(*u.operand, env);
          case UnaryOp::PreInc:
          case UnaryOp::PostInc: {
            std::int64_t old = eval(*u.operand, env);
            assign(*u.operand, old + 1, env);
            return u.op == UnaryOp::PreInc ? old + 1 : old;
          }
          case UnaryOp::PreDec:
          case UnaryOp::PostDec: {
            std::int64_t old = eval(*u.operand, env);
            assign(*u.operand, old - 1, env);
            return u.op == UnaryOp::PreDec ? old - 1 : old;
          }
        }
        return 0;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        if (isAssignment(b.op)) {
            std::int64_t rhs = eval(*b.rhs, env);
            std::int64_t result = rhs;
            if (b.op != BinaryOp::Assign) {
                std::int64_t lhs = eval(*b.lhs, env);
                switch (b.op) {
                  case BinaryOp::AddAssign: result = lhs + rhs; break;
                  case BinaryOp::SubAssign: result = lhs - rhs; break;
                  case BinaryOp::MulAssign: result = lhs * rhs; break;
                  case BinaryOp::DivAssign:
                    result = rhs != 0 ? lhs / rhs : 0;
                    break;
                  case BinaryOp::RemAssign:
                    result = rhs != 0 ? lhs % rhs : 0;
                    break;
                  case BinaryOp::AndAssign: result = lhs & rhs; break;
                  case BinaryOp::OrAssign: result = lhs | rhs; break;
                  case BinaryOp::XorAssign: result = lhs ^ rhs; break;
                  case BinaryOp::ShlAssign:
                    result = lhs << (rhs & 63);
                    break;
                  case BinaryOp::ShrAssign:
                    result = lhs >> (rhs & 63);
                    break;
                  default: break;
                }
            }
            assign(*b.lhs, result, env);
            return result;
        }
        if (b.op == BinaryOp::LogAnd)
            return eval(*b.lhs, env) != 0 && eval(*b.rhs, env) != 0 ? 1
                                                                    : 0;
        if (b.op == BinaryOp::LogOr)
            return eval(*b.lhs, env) != 0 || eval(*b.rhs, env) != 0 ? 1
                                                                    : 0;
        if (b.op == BinaryOp::Comma) {
            eval(*b.lhs, env);
            return eval(*b.rhs, env);
        }
        std::int64_t lhs = eval(*b.lhs, env);
        std::int64_t rhs = eval(*b.rhs, env);
        switch (b.op) {
          case BinaryOp::Add: return lhs + rhs;
          case BinaryOp::Sub: return lhs - rhs;
          case BinaryOp::Mul: return lhs * rhs;
          case BinaryOp::Div: return rhs != 0 ? lhs / rhs : 0;
          case BinaryOp::Rem: return rhs != 0 ? lhs % rhs : 0;
          case BinaryOp::Shl: return lhs << (rhs & 63);
          case BinaryOp::Shr: return lhs >> (rhs & 63);
          case BinaryOp::Lt: return lhs < rhs;
          case BinaryOp::Gt: return lhs > rhs;
          case BinaryOp::Le: return lhs <= rhs;
          case BinaryOp::Ge: return lhs >= rhs;
          case BinaryOp::Eq: return lhs == rhs;
          case BinaryOp::Ne: return lhs != rhs;
          case BinaryOp::BitAnd: return lhs & rhs;
          case BinaryOp::BitOr: return lhs | rhs;
          case BinaryOp::BitXor: return lhs ^ rhs;
          default: return 0;
        }
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        return eval(*t.cond, env) != 0 ? eval(*t.then_expr, env)
                                       : eval(*t.else_expr, env);
      }
      case ExprKind::Call:
        return evalCall(static_cast<const CallExpr&>(expr), env);
      case ExprKind::Member:
      case ExprKind::Index:
        return 0; // no modeled memory behind aggregates
      case ExprKind::Cast:
        return eval(*static_cast<const CastExpr&>(expr).operand, env);
      case ExprKind::Sizeof:
        return 8;
    }
    return 0;
}

std::int64_t
Interpreter::evalCall(const CallExpr& call, Env& env)
{
    std::string callee(call.calleeName());
    flash::MacroKind kind = flash::classifyMacro(callee);

    auto arg = [&](std::size_t i) -> std::int64_t {
        return i < call.args.size() ? eval(*call.args[i], env) : 0;
    };
    auto arg_lane = [&](std::size_t i) -> int {
        if (i >= call.args.size() ||
            call.args[i]->ekind != ExprKind::Ident)
            return -1;
        return spec_.laneOf(
            static_cast<const IdentExpr*>(call.args[i])->name);
    };

    switch (kind) {
      case flash::MacroKind::SendPi:
        node_.send('P', arg(0) != 0, arg(3) != 0, -1);
        return 0;
      case flash::MacroKind::SendIo:
        node_.send('I', arg(0) != 0, arg(3) != 0, -1);
        return 0;
      case flash::MacroKind::SendNi:
        node_.send('N', arg(1) != 0, arg(3) != 0, arg_lane(0));
        return 0;
      case flash::MacroKind::WaitDbFull:
        node_.waitForFill();
        return 0;
      case flash::MacroKind::ReadDb:
      case flash::MacroKind::ReadDbDeprecated:
        return node_.readBuffer();
      case flash::MacroKind::WriteDb:
        node_.writeBuffer(arg(1));
        return 0;
      case flash::MacroKind::AllocDb:
        return node_.allocateBuffer();
      case flash::MacroKind::FreeDb:
        node_.freeCurrentBuffer();
        return 0;
      case flash::MacroKind::MaybeFreeDb:
        return node_.maybeFreeBuffer(
            callee.back() - 'A'); // MAYBE_FREE_DB_A..D
      case flash::MacroKind::RefcntIncr:
        return 0;
      case flash::MacroKind::DirLoad:
        node_.dirLoad();
        return 0;
      case flash::MacroKind::DirRead:
        return node_.dirRead();
      case flash::MacroKind::DirWrite:
        node_.dirWrite(arg(1));
        return 0;
      case flash::MacroKind::DirWriteback:
        node_.dirWriteback();
        return 0;
      case flash::MacroKind::WaitPiReply:
        node_.waitForReply('P');
        return 0;
      case flash::MacroKind::WaitIoReply:
        node_.waitForReply('I');
        return 0;
      case flash::MacroKind::WaitForSpace:
        node_.waitForSpace(arg_lane(0));
        return 0;
      case flash::MacroKind::AnnotNoFreeNeeded:
        node_.markHandoff();
        return 0;
      case flash::MacroKind::AnnotHasBuffer:
      case flash::MacroKind::AnnotExpectsDirWriteback:
      case flash::MacroKind::HandlerDefs:
      case flash::MacroKind::HandlerPrologue:
      case flash::MacroKind::SwHandlerDefs:
      case flash::MacroKind::SwHandlerPrologue:
      case flash::MacroKind::ProcHook:
      case flash::MacroKind::NoStack:
      case flash::MacroKind::SetStackPtr:
      case flash::MacroKind::HandlerGlobals:
        return 0;
      case flash::MacroKind::None:
        break;
    }

    // Simulator intrinsics outside the checker vocabulary.
    if (callee == "MSG_WORD0")
        return node_.payload();
    if (callee == "URGENCY_LEVEL")
        return node_.urgencyLevel();
    if (callee == "RETRY_NEEDED")
        return node_.retryNeeded();
    if (callee == "PI_STATUS_REG")
        return node_.pollStatus('P');
    if (callee == "IO_STATUS_REG")
        return node_.pollStatus('I');
    if (callee == "FATAL_ERROR") {
        node_.fatalError();
        return 0;
    }
    if (callee == "DEBUG_PRINT" || callee == "PASSTHRU_FORWARD")
        return 0;

    // Protocol-defined functions are interpreted recursively.
    if (const FunctionDecl* fn = program_.findFunction(callee)) {
        runFunction(*fn);
        return 0;
    }
    return 0;
}

} // namespace mc::sim
