#include "sim/machine.h"

#include <algorithm>

namespace mc::sim {

const char*
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::RaceCorruption: return "race-corruption";
      case FailureKind::DoubleFree: return "double-free";
      case FailureKind::UseAfterFree: return "use-after-free";
      case FailureKind::BufferExhaustion: return "buffer-exhaustion";
      case FailureKind::LengthMismatch: return "length-mismatch";
      case FailureKind::LaneOverflow: return "lane-overflow";
      case FailureKind::MissedWait: return "missed-wait";
      case FailureKind::StaleDirectory: return "stale-directory";
      case FailureKind::FatalStop: return "fatal-stop";
    }
    return "?";
}

MagicNode::MagicNode(const Config& config, std::uint64_t seed)
    : config_(config), rng_(seed),
      buffer_refcount_(static_cast<std::size_t>(config.buffer_count), 0)
{}

void
MagicNode::fail(FailureKind kind)
{
    Failure failure;
    failure.kind = kind;
    failure.cycle = cycle_;
    failure.message_index = message_index_;
    failure.handler = current_handler_;
    failures_.push_back(std::move(failure));
}

void
MagicNode::drainLanes()
{
    // The network drains one message per lane per handler slot.
    for (int& depth : lane_queue_)
        depth = std::max(0, depth - 1);
}

bool
MagicNode::deliverMessage(std::int64_t payload, const std::string& handler)
{
    ++message_index_;
    current_handler_ = handler;
    payload_ = payload;
    header_len_ = kLenNoData;
    pending_wait_ = 0;
    retry_budget_ = 2;
    drainLanes();

    current_buffer_ = -1;
    for (std::size_t i = 0; i < buffer_refcount_.size(); ++i) {
        if (buffer_refcount_[i] == 0) {
            current_buffer_ = static_cast<int>(i);
            break;
        }
    }
    if (current_buffer_ < 0) {
        fail(FailureKind::BufferExhaustion);
        return false;
    }
    buffer_refcount_[static_cast<std::size_t>(current_buffer_)] = 1;
    current_buffer_valid_ = true;

    // The interface fills the buffer body while the handler starts.
    std::uint64_t delay = 0;
    if (rng_.chance(static_cast<std::uint64_t>(config_.slow_fill_percent),
                    100))
        delay = static_cast<std::uint64_t>(config_.slow_fill_delay);
    fill_ready_cycle_ = cycle_ + delay;
    return true;
}

bool
MagicNode::finishHandler()
{
    if (pending_wait_ != 0) {
        fail(FailureKind::MissedWait);
        pending_wait_ = 0;
    }
    // A buffer still referenced when the handler ends is lost: the slot
    // stays allocated forever (the paper's low-grade leak). Nothing to
    // record immediately — exhaustion surfaces later.
    bool leaked =
        current_buffer_ >= 0 && current_buffer_valid_ &&
        buffer_refcount_[static_cast<std::size_t>(current_buffer_)] > 0;
    current_buffer_ = -1;
    current_buffer_valid_ = false;
    if (dir_dirty_entry_) {
        // Modified entry dropped without writeback: memory goes stale.
        dir_stale_ = true;
        dir_have_entry_ = false;
        dir_dirty_entry_ = false;
    }
    return leaked;
}

std::int64_t
MagicNode::allocateBuffer()
{
    // Allocating while holding simply overwrites the current pointer;
    // the old buffer's reference is lost (leaked slot).
    for (std::size_t i = 0; i < buffer_refcount_.size(); ++i) {
        if (buffer_refcount_[i] == 0) {
            buffer_refcount_[i] = 1;
            current_buffer_ = static_cast<int>(i);
            current_buffer_valid_ = true;
            fill_ready_cycle_ = cycle_;
            return static_cast<std::int64_t>(i) + 1;
        }
    }
    fail(FailureKind::BufferExhaustion);
    return 0;
}

void
MagicNode::freeCurrentBuffer()
{
    if (current_buffer_ < 0 || !current_buffer_valid_ ||
        buffer_refcount_[static_cast<std::size_t>(current_buffer_)] <= 0) {
        fail(FailureKind::DoubleFree);
        return;
    }
    --buffer_refcount_[static_cast<std::size_t>(current_buffer_)];
    current_buffer_valid_ = false;
}

std::int64_t
MagicNode::maybeFreeBuffer(int which)
{
    bool do_free = ((payload_ >> which) & 1) != 0;
    if (do_free) {
        freeCurrentBuffer();
        return 1;
    }
    return 0;
}

void
MagicNode::waitForFill()
{
    cycle_ = std::max(cycle_, fill_ready_cycle_);
}

std::int64_t
MagicNode::readBuffer()
{
    if (current_buffer_ >= 0 && !current_buffer_valid_) {
        fail(FailureKind::UseAfterFree);
        return 0;
    }
    if (cycle_ < fill_ready_cycle_) {
        // The hardware has not finished filling: the read returns
        // garbage — silent data corruption.
        fail(FailureKind::RaceCorruption);
        return static_cast<std::int64_t>(rng_.next() & 0xffff);
    }
    return payload_;
}

void
MagicNode::writeBuffer(std::int64_t value)
{
    (void)value;
    if (current_buffer_ >= 0 && !current_buffer_valid_)
        fail(FailureKind::UseAfterFree);
}

void
MagicNode::markHandoff()
{
    // A later handler owns the buffer now; model its eventual free.
    if (current_buffer_ >= 0 && current_buffer_valid_) {
        --buffer_refcount_[static_cast<std::size_t>(current_buffer_)];
        current_buffer_valid_ = false;
    }
}

int
MagicNode::freeBufferCount() const
{
    int n = 0;
    for (int refcount : buffer_refcount_)
        if (refcount == 0)
            ++n;
    return n;
}

void
MagicNode::setHeaderLength(std::int64_t len)
{
    header_len_ = len;
}

void
MagicNode::send(char iface, bool has_data, bool wait, int lane)
{
    if (current_buffer_ >= 0 && !current_buffer_valid_)
        fail(FailureKind::UseAfterFree);
    if (has_data && header_len_ == kLenNoData)
        fail(FailureKind::LengthMismatch);
    if (!has_data && header_len_ != kLenNoData)
        fail(FailureKind::LengthMismatch);
    if (lane >= 0 && lane < flash::kLaneCount) {
        int& depth = lane_queue_[static_cast<std::size_t>(lane)];
        if (++depth > config_.lane_queue_capacity) {
            fail(FailureKind::LaneOverflow);
            depth = config_.lane_queue_capacity;
        }
    }
    if (wait) {
        if (pending_wait_ != 0)
            fail(FailureKind::MissedWait);
        pending_wait_ = iface;
    }
    tick();
}

void
MagicNode::waitForReply(char iface)
{
    if (pending_wait_ == iface) {
        pending_wait_ = 0;
        tick(3);
        return;
    }
    // Waiting on the wrong (or no) interface: the machine would hang;
    // record and recover so the run can continue.
    fail(FailureKind::MissedWait);
    pending_wait_ = 0;
}

std::int64_t
MagicNode::pollStatus(char iface)
{
    // The raw-poll idiom: works on hardware, invisible to the checker.
    if (pending_wait_ == iface)
        pending_wait_ = 0;
    tick();
    return 1;
}

void
MagicNode::waitForSpace(int lane)
{
    if (lane >= 0 && lane < flash::kLaneCount)
        lane_queue_[static_cast<std::size_t>(lane)] = 0;
    tick(2);
}

void
MagicNode::dirLoad()
{
    if (dir_stale_) {
        fail(FailureKind::StaleDirectory);
        dir_stale_ = false; // observed once
    }
    dir_loaded_ = dir_memory_;
    dir_have_entry_ = true;
    dir_dirty_entry_ = false;
    tick();
}

std::int64_t
MagicNode::dirRead()
{
    tick();
    return dir_have_entry_ ? dir_loaded_ : 0;
}

void
MagicNode::dirWrite(std::int64_t value)
{
    dir_loaded_ = value;
    dir_dirty_entry_ = true;
    tick();
}

void
MagicNode::dirWriteback()
{
    dir_memory_ = dir_loaded_;
    dir_dirty_entry_ = false;
    tick();
}

std::int64_t
MagicNode::urgencyLevel()
{
    return payload_ & 7;
}

std::int64_t
MagicNode::retryNeeded()
{
    return retry_budget_-- > 0 ? 1 : 0;
}

void
MagicNode::fatalError()
{
    fail(FailureKind::FatalStop);
}

std::uint64_t
MagicNode::firstFailureMessage(FailureKind kind) const
{
    for (const Failure& failure : failures_)
        if (failure.kind == kind)
            return failure.message_index;
    return 0;
}

int
MagicNode::failureCount(FailureKind kind) const
{
    int n = 0;
    for (const Failure& failure : failures_)
        if (failure.kind == kind)
            ++n;
    return n;
}

} // namespace mc::sim
