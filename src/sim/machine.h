#ifndef MCHECK_SIM_MACHINE_H
#define MCHECK_SIM_MACHINE_H

#include "flash/protocol_spec.h"
#include "support/rng.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mc::sim {

/**
 * Dynamic failure categories the simulated MAGIC node can observe.
 *
 * These are the run-time manifestations of the bug classes the static
 * checkers find at compile time; the dynamic-vs-static bench compares the
 * two detection routes.
 */
enum class FailureKind : std::uint8_t
{
    /** Data read from a buffer the interface was still filling. */
    RaceCorruption,
    /** A buffer's reference count went negative. */
    DoubleFree,
    /** A freed buffer's contents were used. */
    UseAfterFree,
    /** The buffer pool drained to empty (system deadlock). */
    BufferExhaustion,
    /** A send's length field disagreed with its has-data flag. */
    LengthMismatch,
    /** A lane's output queue overflowed (deadlock risk). */
    LaneOverflow,
    /** A synchronous send's reply was never waited for. */
    MissedWait,
    /** A directory entry was read while a stale copy was unwritten. */
    StaleDirectory,
    /** FATAL_ERROR() executed. */
    FatalStop,
};

const char* failureKindName(FailureKind kind);
inline constexpr int kFailureKindCount = 9;

/** One observed dynamic failure. */
struct Failure
{
    FailureKind kind;
    std::uint64_t cycle = 0;
    std::uint64_t message_index = 0;
    std::string handler;
};

/** Message-length constants as hardware sees them. */
enum : std::int64_t
{
    kLenNoData = 0,
    kLenWord = 8,
    kLenCacheline = 128,
};

/**
 * The simulated MAGIC node: data-buffer pool with manual reference
 * counts, four outbound network lanes with finite queues, a directory,
 * and the PI/IO interfaces. The interpreter calls into this for every
 * FLASH macro; failures are recorded rather than aborting, so long runs
 * can count manifestation frequencies.
 */
class MagicNode
{
  public:
    struct Config
    {
        int buffer_count = 64;
        int lane_queue_capacity = 4;
        /** Percent of messages whose buffer fill is slow. */
        int slow_fill_percent = 2;
        /** Fill delay (cycles) when slow. */
        int slow_fill_delay = 40;
    };

    explicit MagicNode(const Config& config, std::uint64_t seed);

    // ---- time ----------------------------------------------------------
    std::uint64_t cycle() const { return cycle_; }
    void tick(std::uint64_t n = 1) { cycle_ += n; }

    // ---- message lifecycle ----------------------------------------------
    /**
     * Hardware delivers a message: allocates a buffer for it (recording
     * BufferExhaustion and returning false if none), sets the fill time,
     * and stores the payload. Call before running the handler.
     */
    bool deliverMessage(std::int64_t payload, const std::string& handler);

    /**
     * Ends the current handler invocation; settles leak/wait checks.
     * Returns true if the handler leaked its buffer (exited while still
     * holding the reference).
     */
    bool finishHandler();

    std::int64_t payload() const { return payload_; }

    // ---- data buffers ----------------------------------------------------
    std::int64_t allocateBuffer();
    void freeCurrentBuffer();
    /** MAYBE_FREE helpers: frees based on a payload bit; returns 0/1. */
    std::int64_t maybeFreeBuffer(int which);
    void waitForFill();
    std::int64_t readBuffer();
    void writeBuffer(std::int64_t value);
    /** no_free_needed(): the buffer is handed to a later handler. */
    void markHandoff();
    int freeBufferCount() const;

    // ---- sends and waits ---------------------------------------------------
    void setHeaderLength(std::int64_t len);
    /**
     * A send on `iface` ('P','I','N'), has_data flag, wait flag, and for
     * NI sends the opcode's lane (-1 otherwise).
     */
    void send(char iface, bool has_data, bool wait, int lane);
    void waitForReply(char iface);
    /** Raw status-register poll: satisfies a pending wait invisibly. */
    std::int64_t pollStatus(char iface);
    void waitForSpace(int lane);

    // ---- directory -----------------------------------------------------------
    void dirLoad();
    std::int64_t dirRead();
    void dirWrite(std::int64_t value);
    void dirWriteback();

    // ---- misc intrinsics -------------------------------------------------------
    std::int64_t urgencyLevel();
    std::int64_t retryNeeded();
    void fatalError();

    // ---- results ---------------------------------------------------------------
    const std::vector<Failure>& failures() const { return failures_; }

    /** First manifestation of `kind`, or 0 if never observed. */
    std::uint64_t firstFailureMessage(FailureKind kind) const;

    int failureCount(FailureKind kind) const;

    std::uint64_t messagesHandled() const { return message_index_; }

  private:
    void fail(FailureKind kind);
    void drainLanes();

    Config config_;
    support::Rng rng_;
    std::uint64_t cycle_ = 0;
    std::uint64_t message_index_ = 0;
    std::string current_handler_;

    // Buffer pool: refcount per slot (0 = free).
    std::vector<int> buffer_refcount_;
    int current_buffer_ = -1;
    bool current_buffer_valid_ = false;
    std::uint64_t fill_ready_cycle_ = 0;
    std::int64_t payload_ = 0;

    std::int64_t header_len_ = kLenNoData;
    std::array<int, flash::kLaneCount> lane_queue_{0, 0, 0, 0};
    char pending_wait_ = 0; // 0 none, else 'P'/'I'

    // One-line directory model: the line every handler touches, plus a
    // staleness flag set when modifications are dropped.
    std::int64_t dir_memory_ = 1;
    std::int64_t dir_loaded_ = 0;
    bool dir_have_entry_ = false;
    bool dir_dirty_entry_ = false;
    bool dir_stale_ = false;

    int retry_budget_ = 0;

    std::vector<Failure> failures_;
};

} // namespace mc::sim

#endif // MCHECK_SIM_MACHINE_H
