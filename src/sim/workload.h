#ifndef MCHECK_SIM_WORKLOAD_H
#define MCHECK_SIM_WORKLOAD_H

#include "sim/interp.h"

#include <map>
#include <string>

namespace mc::sim {

/** Outcome of one simulation run. */
struct WorkloadResult
{
    std::uint64_t messages_handled = 0;
    std::uint64_t cycles = 0;
    bool deadlocked = false;

    /** All failures observed, in order. */
    std::vector<Failure> failures;

    /** First message index at which each failure kind manifested. */
    std::map<FailureKind, std::uint64_t> first_manifestation;

    /** Total failures of one kind. */
    int count(FailureKind kind) const;

    /** Buffer leaks attributed to the handler that dropped the
     *  reference — the "low-grade leak" diagnosis the paper says takes
     *  days of investigation (here: free). */
    std::map<std::string, int> leaks_by_handler;

    int totalLeaks() const;
};

/**
 * Drives a protocol under a synthetic message workload, the FlashLite
 * role: random messages dispatched to the protocol's hardware handlers,
 * each executed by the interpreter against the MAGIC node model.
 *
 * The run stops early if the node deadlocks (buffer pool exhausted).
 */
class WorkloadDriver
{
  public:
    WorkloadDriver(const lang::Program& program,
                   const flash::ProtocolSpec& spec,
                   MagicNode::Config config = MagicNode::Config(),
                   std::uint64_t seed = 0x5eedf00dull);

    /** Handle up to `messages` messages. */
    WorkloadResult run(std::uint64_t messages);

  private:
    const lang::Program& program_;
    const flash::ProtocolSpec& spec_;
    MagicNode::Config config_;
    std::uint64_t seed_;
    std::vector<const lang::FunctionDecl*> handlers_;
};

} // namespace mc::sim

#endif // MCHECK_SIM_WORKLOAD_H
