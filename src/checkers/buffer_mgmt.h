#ifndef MCHECK_CHECKERS_BUFFER_MGMT_H
#define MCHECK_CHECKERS_BUFFER_MGMT_H

#include "checkers/checker.h"
#include "metal/feasibility.h"

#include <istream>
#include <ostream>

namespace mc::checkers {

/**
 * Buffer management checker (paper Section 6) — the conservative
 * four-rule discipline that makes manual reference counting checkable:
 *
 *  1. hardware handlers begin execution with a data buffer they must
 *     free;
 *  2. software handlers begin without a buffer and must allocate one
 *     before sending;
 *  3. after a free, no send may occur until another buffer is allocated;
 *  4. once a buffer is allocated it must be freed before another
 *     allocation.
 *
 * Frees are FREE_DB() or calls to routines in the spec's freeing table;
 * buffer uses are reads/writes/sends or calls to routines in the
 * buffer-using table (both tables are also checked for consistency when
 * the listed routines are themselves analyzed).
 *
 * Annotations (Section 6's false-positive escape hatch):
 *   has_buffer()       asserts a buffer is present;
 *   no_free_needed()   waives the must-free obligation on this path.
 * An annotation that changes nothing on any path is reported as
 * unnecessary — the paper's "checkable comments".
 *
 * `valueSensitiveFrees` enables the Section 6.1 twelve-line refinement:
 * branching on a MAYBE_FREE_DB_x() call takes the freed state on the true
 * edge only. With it disabled the call conservatively frees on both
 * edges, reproducing the paper's "small cascade of errors".
 *
 * After the Section 11 betrayal (a manual double-increment of the
 * reference count that blinded the tool), the checker "aggressively
 * objects" to any DB_REFCNT_INCR() occurrence.
 */
class BufferMgmtChecker : public Checker
{
  public:
    struct Options
    {
        bool value_sensitive_frees = true;
        /** Path-feasibility pruning for the buffer-state walk. */
        metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off;
    };

    BufferMgmtChecker() = default;
    explicit BufferMgmtChecker(Options options) : options_(options) {}

    std::string name() const override { return "buffer_mgmt"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

    void
    reset() override
    {
        Checker::reset();
        annotations_seen_ = 0;
        annotations_unneeded_ = 0;
    }

    void
    absorb(Checker& other) override
    {
        Checker::absorb(other);
        if (auto* o = dynamic_cast<BufferMgmtChecker*>(&other)) {
            annotations_seen_ += o->annotations_seen_;
            annotations_unneeded_ += o->annotations_unneeded_;
        }
    }

    void
    saveState(std::ostream& os) const override
    {
        Checker::saveState(os);
        os << "annotations " << annotations_seen_ << ' '
           << annotations_unneeded_ << '\n';
    }

    bool
    loadState(std::istream& is) override
    {
        if (!Checker::loadState(is))
            return false;
        std::string tag;
        int seen = 0;
        int unneeded = 0;
        if (!(is >> tag >> seen >> unneeded) || tag != "annotations" ||
            seen < 0 || unneeded < 0)
            return false;
        annotations_seen_ = seen;
        annotations_unneeded_ = unneeded;
        return true;
    }

    /** Annotation sites encountered across the run. */
    int annotationsSeen() const { return annotations_seen_; }

    /** Annotations that changed nothing on any path (reported). */
    int annotationsUnneeded() const { return annotations_unneeded_; }

  private:
    Options options_;
    int annotations_seen_ = 0;
    int annotations_unneeded_ = 0;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_BUFFER_MGMT_H
