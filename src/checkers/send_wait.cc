#include "checkers/send_wait.h"

#include "flash/macros.h"
#include "metal/path_walker.h"

namespace mc::checkers {

using namespace mc::lang;
using flash::Interface;
using flash::MacroKind;

namespace {

struct WaitState
{
    Interface awaiting = Interface::None;
    support::SourceLoc pending_send;

    std::string
    key() const
    {
        return std::string(1, static_cast<char>('0' +
                                                static_cast<int>(awaiting)));
    }

    bool dead() const { return false; }
};

const char*
interfaceName(Interface iface)
{
    switch (iface) {
      case Interface::Pi: return "PI";
      case Interface::Io: return "IO";
      case Interface::Ni: return "NI";
      default: return "?";
    }
}

} // namespace

void
SendWaitChecker::checkFunction(const FunctionDecl& fn, const cfg::Cfg& cfg,
                               CheckContext& ctx)
{
    (void)fn;

    mc::metal::PathWalker<WaitState>::Hooks hooks;
    hooks.on_stmt = [&](WaitState& st, const Stmt& stmt) {
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                const CallExpr* call = asCall(e);
                if (!call)
                    return;
                MacroKind kind =
                    flash::classifyMacro(call->calleeName());

                if (flash::isSend(kind)) {
                    if (st.awaiting != Interface::None) {
                        ctx.sink.error(
                            e.loc, name(), "send-while-waiting",
                            std::string("send issued while a wait on the ") +
                                interfaceName(st.awaiting) +
                                " interface is pending");
                        st.awaiting = Interface::None; // stop the cascade
                    }
                    auto wait_flag = flash::sendWaitArg(*call);
                    if (wait_flag && *wait_flag == flash::kFWait) {
                        st.awaiting = flash::interfaceOf(kind);
                        st.pending_send = e.loc;
                        ++applied_;
                    }
                    return;
                }

                if (kind == MacroKind::WaitPiReply ||
                    kind == MacroKind::WaitIoReply) {
                    ++applied_;
                    Interface wait_iface = flash::interfaceOf(kind);
                    if (st.awaiting == Interface::None) {
                        ctx.sink.warning(e.loc, name(), "wait-without-send",
                                         "wait with no pending synchronous "
                                         "send");
                        return;
                    }
                    if (st.awaiting != wait_iface) {
                        ctx.sink.error(
                            e.loc, name(), "wait-wrong-interface",
                            std::string("wait on the ") +
                                interfaceName(wait_iface) +
                                " interface but the pending send targeted " +
                                interfaceName(st.awaiting));
                    }
                    st.awaiting = Interface::None;
                }
            });
        });
    };
    hooks.on_exit = [&](WaitState& st) {
        if (st.awaiting != Interface::None) {
            ctx.sink.error(st.pending_send, name(), "missing-wait",
                           std::string("send with F_WAIT on the ") +
                               interfaceName(st.awaiting) +
                               " interface is never waited for");
        }
    };

    mc::metal::PathWalker<WaitState>::WalkOptions wopts;
    wopts.prune_strategy = prune_strategy_;
    mc::metal::PathWalker<WaitState> walker(std::move(hooks), wopts);
    walker.walk(cfg, WaitState{});
}

} // namespace mc::checkers
