#include "checkers/unit_guard.h"

namespace mc::checkers {

UnitOutcome
UnitGuard::run(const std::function<void()>& body) const
{
    UnitOutcome outcome;
    support::Budget budget(limits_);
    support::BudgetScope scope(&budget);
    try {
        body();
    } catch (const std::exception& e) {
        outcome.failed = true;
        outcome.error = e.what();
        if (rethrow_)
            throw;
    } catch (...) {
        outcome.failed = true;
        outcome.error = "non-standard exception in unit " + label_;
        if (rethrow_)
            throw;
    }
    outcome.budget_stop = budget.stop();
    outcome.steps = budget.steps();
    outcome.elapsed = budget.elapsed();
    return outcome;
}

} // namespace mc::checkers
