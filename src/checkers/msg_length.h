#ifndef MCHECK_CHECKERS_MSG_LENGTH_H
#define MCHECK_CHECKERS_MSG_LENGTH_H

#include "checkers/checker.h"
#include "metal/feasibility.h"
#include "metal/metal_parser.h"

namespace mc::checkers {

/**
 * Message length / has-data consistency checker (paper Section 5,
 * Figure 3).
 *
 * Tracks the last assignment to the header length field along every path
 * and flags sends whose has-data parameter disagrees with it: data sends
 * with a zero length, no-data sends with a non-zero length. Sends seen
 * before any assignment are ignored (the SM starts in `all`).
 *
 * This checker found the most bugs in FLASH code (18 of the paper's 34).
 *
 * `applied()` counts consistency-check applications: sends seen while the
 * length value was known, plus length assignments tracked (Table 3).
 */
class MsgLengthChecker : public Checker
{
  public:
    /**
     * @param prune_strategy Path-feasibility pruning — the analysis
     * that would have removed the paper's two coma false positives
     * (Section 5 notes "the checker could have statically pruned the
     * impossible execution paths with a more elaborate analysis, but
     * the effort seemed unjustified"). Off by default to match the
     * paper's checker.
     */
    explicit MsgLengthChecker(
        metal::PruneStrategy prune_strategy = metal::PruneStrategy::Off);

    std::string name() const override { return "msglen_check"; }

    void checkFunction(const lang::FunctionDecl& fn, const cfg::Cfg& cfg,
                       CheckContext& ctx) override;

    /** The metal source this checker executes. */
    static const char* metalSource();

  private:
    mc::metal::MetalProgram program_;
    metal::PruneStrategy prune_strategy_ = metal::PruneStrategy::Off;
};

} // namespace mc::checkers

#endif // MCHECK_CHECKERS_MSG_LENGTH_H
