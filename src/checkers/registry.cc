#include "checkers/registry.h"

#include "checkers/buffer_alloc.h"
#include "checkers/buffer_mgmt.h"
#include "checkers/buffer_race.h"
#include "checkers/directory.h"
#include "checkers/exec_restrict.h"
#include "checkers/lanes.h"
#include "checkers/msg_length.h"
#include "checkers/no_float.h"
#include "checkers/send_wait.h"

namespace mc::checkers {

Checker*
CheckerSet::byName(const std::string& name) const
{
    for (const auto& c : owned)
        if (c->name() == name)
            return c.get();
    return nullptr;
}

std::unique_ptr<Checker>
makeChecker(const std::string& name, const CheckerSetOptions& options)
{
    if (name == "buffer_mgmt") {
        BufferMgmtChecker::Options bm;
        bm.value_sensitive_frees = options.value_sensitive_frees;
        bm.prune_strategy = options.prune_strategy;
        return std::make_unique<BufferMgmtChecker>(bm);
    }
    if (name == "msglen_check")
        return std::make_unique<MsgLengthChecker>(options.prune_strategy);
    if (name == "lanes")
        return std::make_unique<LanesChecker>();
    if (name == "wait_for_db")
        return std::make_unique<BufferRaceChecker>(options.prune_strategy);
    if (name == "alloc_check")
        return std::make_unique<BufferAllocChecker>(
            options.prune_strategy);
    if (name == "dir_check")
        return std::make_unique<DirectoryChecker>(options.prune_strategy);
    if (name == "send_wait")
        return std::make_unique<SendWaitChecker>(options.prune_strategy);
    if (name == "exec_restrict")
        return std::make_unique<ExecRestrictChecker>();
    if (name == "no_float")
        return std::make_unique<NoFloatChecker>();
    return nullptr;
}

const std::vector<std::string>&
allCheckerNames()
{
    static const std::vector<std::string> names = {
        "buffer_mgmt", "msglen_check", "lanes",
        "wait_for_db", "alloc_check",  "dir_check",
        "send_wait",   "exec_restrict", "no_float",
    };
    return names;
}

CheckerSet
makeAllCheckers(const CheckerSetOptions& options)
{
    CheckerSet set;
    for (const std::string& name : allCheckerNames())
        set.owned.push_back(makeChecker(name, options));
    return set;
}

const std::vector<CheckerMeta>&
table7Meta()
{
    static const std::vector<CheckerMeta> meta = {
        {"buffer_mgmt", "Buffer management", 94, 9, 25},
        {"msglen_check", "Message length", 29, 18, 2},
        {"lanes", "Lanes", 220, 2, 0},
        {"wait_for_db", "Buffer race", 12, 4, 1},
        {"alloc_check", "Buffer allocation", 16, 0, 2},
        {"dir_check", "Directory management", 51, 1, 31},
        {"send_wait", "Send-wait", 40, 0, 8},
        {"exec_restrict", "Execution-restriction", 84, 0, 0},
        {"no_float", "No-float", 7, 0, 0},
    };
    return meta;
}

} // namespace mc::checkers
