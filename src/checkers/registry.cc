#include "checkers/registry.h"

#include "checkers/buffer_alloc.h"
#include "checkers/buffer_mgmt.h"
#include "checkers/buffer_race.h"
#include "checkers/directory.h"
#include "checkers/exec_restrict.h"
#include "checkers/lanes.h"
#include "checkers/msg_length.h"
#include "checkers/no_float.h"
#include "checkers/send_wait.h"

namespace mc::checkers {

Checker*
CheckerSet::byName(const std::string& name) const
{
    for (const auto& c : owned)
        if (c->name() == name)
            return c.get();
    return nullptr;
}

CheckerSet
makeAllCheckers(const CheckerSetOptions& options)
{
    CheckerSet set;
    BufferMgmtChecker::Options bm;
    bm.value_sensitive_frees = options.value_sensitive_frees;
    set.owned.push_back(std::make_unique<BufferMgmtChecker>(bm));
    set.owned.push_back(
        std::make_unique<MsgLengthChecker>(options.prune_impossible_paths));
    set.owned.push_back(std::make_unique<LanesChecker>());
    set.owned.push_back(std::make_unique<BufferRaceChecker>());
    set.owned.push_back(std::make_unique<BufferAllocChecker>());
    set.owned.push_back(std::make_unique<DirectoryChecker>());
    set.owned.push_back(std::make_unique<SendWaitChecker>());
    set.owned.push_back(std::make_unique<ExecRestrictChecker>());
    set.owned.push_back(std::make_unique<NoFloatChecker>());
    return set;
}

const std::vector<CheckerMeta>&
table7Meta()
{
    static const std::vector<CheckerMeta> meta = {
        {"buffer_mgmt", "Buffer management", 94, 9, 25},
        {"msglen_check", "Message length", 29, 18, 2},
        {"lanes", "Lanes", 220, 2, 0},
        {"wait_for_db", "Buffer race", 12, 4, 1},
        {"alloc_check", "Buffer allocation", 16, 0, 2},
        {"dir_check", "Directory management", 51, 1, 31},
        {"send_wait", "Send-wait", 40, 0, 8},
        {"exec_restrict", "Execution-restriction", 84, 0, 0},
        {"no_float", "No-float", 7, 0, 0},
    };
    return meta;
}

} // namespace mc::checkers
