#include "checkers/exec_restrict.h"

#include "flash/macros.h"

namespace mc::checkers {

using namespace mc::lang;
using flash::HandlerKind;
using flash::MacroKind;

namespace {

/** The macro kind of a statement that is exactly `MACRO();`. */
MacroKind
stmtMacroKind(const Stmt& stmt)
{
    const CallExpr* call = stmtAsCall(stmt);
    if (!call)
        return MacroKind::None;
    return flash::classifyMacro(call->calleeName());
}

/** True if `stmt` is a call statement to a protocol-defined function. */
bool
isProtocolCallStmt(const Stmt& stmt, CheckContext& ctx)
{
    const CallExpr* call = stmtAsCall(stmt);
    if (!call)
        return false;
    std::string name(call->calleeName());
    if (name.empty())
        return false;
    if (flash::classifyMacro(name) != MacroKind::None)
        return false;
    return ctx.program.findFunction(name) != nullptr ||
           ctx.spec.handler(name) != nullptr;
}

} // namespace

void
ExecRestrictChecker::checkSignature(const FunctionDecl& fn,
                                    CheckContext& ctx)
{
    const TypeTable& types = ctx.program.ctx().types();
    if (types.type(fn.return_type).kind != TypeKind::Void)
        ctx.sink.error(fn.loc, name(), "handler-returns-value",
                       "handler '" + fn.name +
                           "' must have void return type");
    if (!fn.params.empty())
        ctx.sink.error(fn.loc, name(), "handler-takes-params",
                       "handler '" + fn.name +
                           "' must take no parameters");
}

void
ExecRestrictChecker::checkHooks(const FunctionDecl& fn, CheckContext& ctx)
{
    HandlerKind kind = ctx.spec.kindOf(fn.name);

    // The paper's checker "automatically constructs a list of all
    // hardware handlers and software handlers by extracting the former
    // from the protocol specification and the latter from the protocol
    // code": a routine that opens with the software-handler hook is a
    // software handler even if the spec does not list it.
    if (kind == HandlerKind::Normal && !fn.body->stmts.empty() &&
        stmtMacroKind(*fn.body->stmts.front()) ==
            MacroKind::SwHandlerDefs)
        kind = HandlerKind::Software;

    // Collect leading statements, skipping the NO_STACK annotation which
    // may lawfully precede the hooks.
    std::vector<const Stmt*> lead;
    for (const Stmt* stmt : fn.body->stmts) {
        if (stmtMacroKind(*stmt) == MacroKind::NoStack)
            continue;
        lead.push_back(stmt);
        if (lead.size() >= 2)
            break;
    }

    auto leadKind = [&](std::size_t i) {
        return i < lead.size() ? stmtMacroKind(*lead[i]) : MacroKind::None;
    };

    switch (kind) {
      case HandlerKind::Hardware:
        if (leadKind(0) != MacroKind::HandlerDefs)
            ctx.sink.error(fn.loc, name(), "missing-hook",
                           "handler '" + fn.name +
                               "' must begin with HANDLER_DEFS()");
        else if (leadKind(1) != MacroKind::HandlerPrologue)
            ctx.sink.error(fn.loc, name(), "missing-hook",
                           "handler '" + fn.name +
                               "' must call HANDLER_PROLOGUE() second");
        break;
      case HandlerKind::Software:
        if (leadKind(0) != MacroKind::SwHandlerDefs)
            ctx.sink.error(fn.loc, name(), "missing-hook",
                           "software handler '" + fn.name +
                               "' must begin with SWHANDLER_DEFS()");
        else if (leadKind(1) != MacroKind::SwHandlerPrologue)
            ctx.sink.error(fn.loc, name(), "missing-hook",
                           "software handler '" + fn.name +
                               "' must call SWHANDLER_PROLOGUE() second");
        break;
      case HandlerKind::Normal:
        if (leadKind(0) != MacroKind::ProcHook)
            ctx.sink.error(fn.loc, name(), "missing-hook",
                           "routine '" + fn.name +
                               "' must begin with PROC_HOOK()");
        break;
    }
}

void
ExecRestrictChecker::checkNoStack(const FunctionDecl& fn, CheckContext& ctx)
{
    const TypeTable& types = ctx.program.ctx().types();

    // Exactly one NO_STACK annotation, at the beginning (within the first
    // three statements, allowing the simulation hooks around it).
    int no_stack_count = 0;
    std::size_t index = 0;
    for (const Stmt* stmt : fn.body->stmts) {
        if (stmtMacroKind(*stmt) == MacroKind::NoStack) {
            ++no_stack_count;
            if (index >= 3)
                ctx.sink.error(stmt->loc, name(), "no-stack-misplaced",
                               "NO_STACK() must appear at the beginning "
                               "of the handler");
        }
        ++index;
    }
    if (no_stack_count == 0)
        ctx.sink.error(fn.loc, name(), "no-stack-missing",
                       "no-stack handler '" + fn.name +
                           "' lacks its NO_STACK() annotation");
    else if (no_stack_count > 1)
        ctx.sink.error(fn.loc, name(), "no-stack-duplicate",
                       "handler '" + fn.name +
                           "' has more than one NO_STACK() annotation");

    // Locals: count, size, arrays, address-taken.
    int locals = 0;
    forEachStmt(*fn.body, [&](const Stmt& stmt) {
        if (stmt.skind == StmtKind::Decl) {
            for (const VarDecl* v :
                 static_cast<const DeclStmt&>(stmt).decls) {
                ++locals;
                const Type& t = types.type(v->type);
                if (t.kind == TypeKind::Array)
                    ctx.sink.error(v->loc, name(), "no-stack-array",
                                   "no-stack handler declares array '" +
                                       v->name + "'");
                else if (types.sizeInBits(v->type) > 64)
                    ctx.sink.error(v->loc, name(), "no-stack-large-var",
                                   "no-stack handler declares '" + v->name +
                                       "' larger than 64 bits");
            }
        }
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                if (e.ekind != ExprKind::Unary)
                    return;
                const auto& u = static_cast<const UnaryExpr&>(e);
                if (u.op != UnaryOp::AddrOf)
                    return;
                if (u.operand->ekind != ExprKind::Ident)
                    return;
                const auto* ident =
                    static_cast<const IdentExpr*>(u.operand);
                if (ident->decl && (ident->decl->dkind == DeclKind::Var ||
                                    ident->decl->dkind == DeclKind::Param))
                    ctx.sink.error(e.loc, name(), "no-stack-addr-of",
                                   "no-stack handler takes the address of "
                                   "local '" +
                                       ident->name + "'");
            });
        });
    });
    if (locals > kMaxNoStackLocals)
        ctx.sink.error(fn.loc, name(), "no-stack-too-many-locals",
                       "no-stack handler '" + fn.name + "' declares " +
                           std::to_string(locals) + " locals (max " +
                           std::to_string(kMaxNoStackLocals) + ")");

    // SET_STACKPTR pairing with calls, per compound statement sequence.
    forEachStmt(*fn.body, [&](const Stmt& stmt) {
        if (stmt.skind != StmtKind::Compound)
            return;
        const auto& block = static_cast<const CompoundStmt&>(stmt);
        for (std::size_t i = 0; i < block.stmts.size(); ++i) {
            const Stmt* s = block.stmts[i];
            if (stmtMacroKind(*s) == MacroKind::SetStackPtr) {
                bool followed =
                    i + 1 < block.stmts.size() &&
                    isProtocolCallStmt(*block.stmts[i + 1], ctx);
                if (!followed)
                    ctx.sink.error(s->loc, name(), "spurious-set-stackptr",
                                   "SET_STACKPTR() not followed by a "
                                   "call");
            } else if (isProtocolCallStmt(*s, ctx)) {
                bool preceded =
                    i > 0 && stmtMacroKind(*block.stmts[i - 1]) ==
                                 MacroKind::SetStackPtr;
                if (!preceded)
                    ctx.sink.error(s->loc, name(), "missing-set-stackptr",
                                   "call from no-stack handler without "
                                   "SET_STACKPTR()");
            }
        }
    });
}

void
ExecRestrictChecker::checkDeprecated(const FunctionDecl& fn,
                                     CheckContext& ctx)
{
    forEachStmt(*fn.body, [&](const Stmt& stmt) {
        forEachTopLevelExpr(stmt, [&](const Expr& top) {
            forEachSubExpr(top, [&](const Expr& e) {
                const CallExpr* call = asCall(e);
                if (!call)
                    return;
                std::string callee(call->calleeName());
                bool deprecated =
                    flash::classifyMacro(callee) ==
                        MacroKind::ReadDbDeprecated ||
                    ctx.spec.deprecated.count(callee) > 0;
                if (deprecated)
                    ctx.sink.warning(e.loc, name(), "deprecated-macro",
                                     "use of deprecated macro '" + callee +
                                         "'");
            });
        });
    });
}

void
ExecRestrictChecker::checkFunction(const FunctionDecl& fn,
                                   const cfg::Cfg& cfg, CheckContext& ctx)
{
    (void)cfg;
    ++handlers_checked_;
    ++applied_;

    const flash::HandlerSpec* spec = ctx.spec.handler(fn.name);
    HandlerKind kind = ctx.spec.kindOf(fn.name);

    vars_checked_ += static_cast<int>(fn.params.size());
    forEachStmt(*fn.body, [&](const Stmt& stmt) {
        if (stmt.skind == StmtKind::Decl)
            vars_checked_ += static_cast<int>(
                static_cast<const DeclStmt&>(stmt).decls.size());
    });

    if (kind == HandlerKind::Hardware || kind == HandlerKind::Software)
        checkSignature(fn, ctx);
    checkHooks(fn, ctx);
    if (spec && spec->no_stack)
        checkNoStack(fn, ctx);
    checkDeprecated(fn, ctx);
}

} // namespace mc::checkers
