#include "checkers/checker.h"

namespace mc::checkers {

std::vector<CheckerRunStats>
runCheckers(const lang::Program& program, const flash::ProtocolSpec& spec,
            const std::vector<Checker*>& checkers,
            support::DiagnosticSink& sink)
{
    CheckContext ctx{program, spec, sink};

    // Baseline per-checker counts, so stats reflect only this run even if
    // the sink already held diagnostics.
    std::vector<int> base_errors;
    std::vector<int> base_warnings;
    for (Checker* checker : checkers) {
        checker->reset();
        base_errors.push_back(sink.countForChecker(
            checker->name(), support::Severity::Error));
        base_warnings.push_back(sink.countForChecker(
            checker->name(), support::Severity::Warning));
    }

    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        for (Checker* checker : checkers)
            checker->checkFunction(*fn, cfg, ctx);
    }
    for (Checker* checker : checkers)
        checker->checkProgram(ctx);

    std::vector<CheckerRunStats> stats;
    for (std::size_t i = 0; i < checkers.size(); ++i) {
        CheckerRunStats s;
        s.checker = checkers[i]->name();
        s.errors = sink.countForChecker(s.checker,
                                        support::Severity::Error) -
                   base_errors[i];
        s.warnings = sink.countForChecker(s.checker,
                                          support::Severity::Warning) -
                     base_warnings[i];
        s.applied = checkers[i]->applied();
        stats.push_back(std::move(s));
    }
    return stats;
}

} // namespace mc::checkers
