#include "checkers/checker.h"

#include "support/metrics.h"
#include "support/trace.h"

#include <chrono>
#include <istream>
#include <ostream>

namespace mc::checkers {

void
Checker::saveState(std::ostream& os) const
{
    os << "applied " << applied_ << '\n';
}

bool
Checker::loadState(std::istream& is)
{
    std::string tag;
    int n = 0;
    if (!(is >> tag >> n) || tag != "applied" || n < 0)
        return false;
    applied_ = n;
    return true;
}

std::vector<CheckerRunStats>
runCheckers(const lang::Program& program, const flash::ProtocolSpec& spec,
            const std::vector<Checker*>& checkers,
            support::DiagnosticSink& sink)
{
    CheckContext ctx{program, spec, sink};
    support::MetricsRegistry& metrics = support::MetricsRegistry::global();
    support::TraceRecorder& tracer = support::TraceRecorder::global();

    // Pre-registered to match the parallel runner's report: the
    // sequential runner has no unit containment, so both are honestly
    // zero — but the key set must not depend on which runner ran.
    if (metrics.enabled()) {
        metrics.counter("engine.unit_failures").add(0);
        metrics.counter("budget.truncations").add(0);
    }

    // Baseline per-checker counts, so stats reflect only this run even if
    // the sink already held diagnostics.
    std::vector<int> base_errors;
    std::vector<int> base_warnings;
    for (Checker* checker : checkers) {
        checker->reset();
        base_errors.push_back(sink.countForChecker(
            checker->name(), support::Severity::Error));
        base_warnings.push_back(sink.countForChecker(
            checker->name(), support::Severity::Warning));
    }

    // Per-checker wall time, accumulated across every function pass plus
    // the program-level pass. One steady_clock read per (function,
    // checker) pair — microseconds against the checking work itself.
    using Clock = std::chrono::steady_clock;
    std::vector<Clock::duration> elapsed(checkers.size(),
                                         Clock::duration::zero());

    for (const lang::FunctionDecl* fn : program.functions()) {
        cfg::Cfg cfg = cfg::CfgBuilder::build(*fn);
        for (std::size_t i = 0; i < checkers.size(); ++i) {
            support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                    checkers[i]->name(), "checker");
            if (tracer.enabled())
                span.arg("function", fn->name);
            Clock::time_point t0 = Clock::now();
            checkers[i]->checkFunction(*fn, cfg, ctx);
            elapsed[i] += Clock::now() - t0;
        }
    }
    for (std::size_t i = 0; i < checkers.size(); ++i) {
        support::TraceSpan span(tracer.enabled() ? &tracer : nullptr,
                                checkers[i]->name() + ".program",
                                "checker");
        Clock::time_point t0 = Clock::now();
        checkers[i]->checkProgram(ctx);
        elapsed[i] += Clock::now() - t0;
    }

    std::vector<CheckerRunStats> stats;
    for (std::size_t i = 0; i < checkers.size(); ++i) {
        CheckerRunStats s;
        s.checker = checkers[i]->name();
        s.errors = sink.countForChecker(s.checker,
                                        support::Severity::Error) -
                   base_errors[i];
        s.warnings = sink.countForChecker(s.checker,
                                          support::Severity::Warning) -
                     base_warnings[i];
        s.applied = checkers[i]->applied();
        s.wall_ms =
            std::chrono::duration<double, std::milli>(elapsed[i]).count();
        if (metrics.enabled()) {
            metrics.timer("checker." + s.checker)
                .add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed[i]));
            metrics.counter("checker." + s.checker + ".errors")
                .add(static_cast<std::uint64_t>(s.errors));
            metrics.counter("checker." + s.checker + ".warnings")
                .add(static_cast<std::uint64_t>(s.warnings));
            metrics.counter("checker." + s.checker + ".applied")
                .add(static_cast<std::uint64_t>(s.applied));
        }
        stats.push_back(std::move(s));
    }
    return stats;
}

} // namespace mc::checkers
