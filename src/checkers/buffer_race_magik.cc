#include "checkers/buffer_race_magik.h"

#include <set>

namespace mc::checkers {

using namespace mc::lang;

namespace {

/** Manually recognize a call to one of the interesting macros. */
enum class Op : std::uint8_t { None, Wait, Read };

Op
classify(const Expr& expr)
{
    if (expr.ekind != ExprKind::Call)
        return Op::None;
    const auto& call = static_cast<const CallExpr&>(expr);
    if (call.callee->ekind != ExprKind::Ident)
        return Op::None;
    const std::string& callee =
        static_cast<const IdentExpr*>(call.callee)->name;
    if (callee == "WAIT_FOR_DB_FULL")
        return Op::Wait;
    if (callee == "MISCBUS_READ_DB" || callee == "MISCBUS_READ_DB_OLD")
        return Op::Read;
    return Op::None;
}

/** Manual pre-order walk over an expression tree. */
void
walkExpr(const Expr& expr, std::vector<const Expr*>& out)
{
    out.push_back(&expr);
    forEachChildExpr(expr,
                     [&](const Expr& child) { walkExpr(child, out); });
}

/** All macro operations inside one statement, in evaluation order. */
std::vector<std::pair<Op, const Expr*>>
opsInStatement(const Stmt& stmt)
{
    std::vector<std::pair<Op, const Expr*>> ops;
    forEachTopLevelExpr(stmt, [&](const Expr& top) {
        std::vector<const Expr*> nodes;
        walkExpr(top, nodes);
        for (const Expr* node : nodes) {
            Op op = classify(*node);
            if (op != Op::None)
                ops.emplace_back(op, node);
        }
    });
    return ops;
}

/**
 * Recursive flow-graph search: from `block` with synchronization state
 * `synced`, flag every read reachable before a wait. The visited set is
 * on (block, synced) pairs, the hand-written analogue of the SM engine's
 * cache.
 */
void
search(const cfg::Cfg& cfg, int block_id, bool synced,
       std::set<std::pair<int, bool>>& visited, CheckContext& ctx,
       const std::string& checker_name)
{
    if (!visited.emplace(block_id, synced).second)
        return;
    const cfg::BasicBlock& bb = cfg.block(block_id);
    for (const Stmt* stmt : bb.stmts) {
        if (synced)
            break; // nothing further to check on this path
        for (const auto& [op, expr] : opsInStatement(*stmt)) {
            if (op == Op::Wait) {
                synced = true;
                break;
            }
            ctx.sink.error(stmt->loc, checker_name,
                           "buffer-not-synchronized",
                           "Buffer not synchronized");
        }
    }
    if (synced)
        return; // the metal `stop` state
    for (int succ : bb.succs)
        search(cfg, succ, synced, visited, ctx, checker_name);
}

} // namespace

void
BufferRaceMagikChecker::checkFunction(const FunctionDecl& fn,
                                      const cfg::Cfg& cfg,
                                      CheckContext& ctx)
{
    (void)fn;
    std::set<std::pair<int, bool>> visited;
    search(cfg, cfg.entryId(), false, visited, ctx, name());

    for (const cfg::BasicBlock& bb : cfg.blocks())
        for (const Stmt* stmt : bb.stmts)
            for (const auto& [op, expr] : opsInStatement(*stmt))
                if (op == Op::Read)
                    ++applied_;
}

} // namespace mc::checkers
